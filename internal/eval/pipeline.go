package eval

import (
	"context"
	"sync"
	"time"

	"repro/internal/dataset"
)

// This file decomposes the evaluation path into an explicit staged
// pipeline: a Source yields per-question Events in a canonical order,
// an Inference stage fills in the model response, a JudgeStage scores
// it, and a Sink consumes completed events strictly in Seq order. An
// optional Observer sees every event right after the sink — in the
// same deterministic order — which is the hook point for metrics,
// tracing and progress reporting. Runner composes these stages; the
// composed pipeline is byte-identical to the old monolithic loop while
// adding context cancellation with graceful partial results.

// Event is the per-question unit of work flowing through the pipeline.
// The Source seeds Seq, Model and Question; Inference fills Response;
// JudgeStage fills Correct; the delivery layer stamps At just before
// the Sink and Observer see the event.
type Event struct {
	// Seq is the event's position in the run's canonical order: the
	// question index for single-model runs, the flattened model-major
	// (model, question) task index for grid runs.
	Seq      int
	Model    Model
	Question *dataset.Question
	Response string
	Correct  bool
	// At is the delivery timestamp from the pipeline clock seam. It is
	// observability-only: reports never contain it, so runs stay
	// byte-identical regardless of wall-clock behaviour.
	At time.Time
	// Adaptive marks events annotated by an adaptive ItemScheduler:
	// Ability/AbilitySE carry the model's posterior ability estimate
	// after this outcome, and StopReason is non-empty on the model's
	// final event ("separated", "precise", "budget", "exhausted").
	// Static sources leave all four zero; reports never contain them,
	// so the byte-identity guarantees are untouched.
	Adaptive   bool
	Ability    float64
	AbilitySE  float64
	StopReason string
	// scratch is the executing worker's judge Scratch, set by Run for the
	// Infer/Judge stages and cleared before delivery. It is owned by
	// exactly one worker goroutine (poolown discipline) and must never
	// escape into a delivered event.
	scratch *Scratch
}

// Source yields a statically known task list in canonical order.
// Event(i) must be a pure function of i so any worker may materialise
// any task. A Source is the degenerate, feedback-free case of the
// ItemScheduler seam (scheduler.go): the pipeline wraps it in a trivial
// scheduler and the resulting run is byte-identical to the pre-seam
// indexed loop.
type Source interface {
	Len() int
	Event(i int) Event
}

// Inference fills Event.Response from the event's model and question.
type Inference interface {
	Infer(ctx context.Context, ev *Event)
}

// JudgeStage fills Event.Correct from the question and response.
type JudgeStage interface {
	Judge(ctx context.Context, ev *Event)
}

// Sink consumes completed events. The pipeline calls Consume strictly
// in Seq order from one goroutine at a time, so sinks need no locking
// of their own.
type Sink interface {
	Consume(ev Event)
}

// Observer receives every event immediately after the sink, under the
// same in-order single-goroutine guarantee. Cancelling the run's
// context from inside Observe stops delivery after the current event,
// which makes observer-triggered cancellation deterministic: the
// partial report is exactly the events observed so far.
type Observer interface {
	Observe(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event)

// Observe calls f.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Pipeline wires the four stages plus the optional observer. Workers
// has the Runner.EffectiveWorkers convention already applied: <= 1
// runs serially, larger values size the pool. Exactly one of Scheduler
// and Source drives the run; when both are set, Scheduler wins.
type Pipeline struct {
	// Scheduler is the dynamic task source (scheduler.go). Nil means
	// wrap Source in the trivial static scheduler.
	Scheduler ItemScheduler
	Source    Source
	Infer     Inference
	Judge     JudgeStage
	Sink      Sink
	Observer  Observer
	Workers   int
	// Clock stamps Event.At at delivery; nil uses the package clock
	// seam (clock.go). Tests pin it for reproducible timestamps.
	Clock func() time.Time
}

// Run executes the pipeline until the scheduler drains or ctx is
// cancelled, returning ctx.Err(). Workers pull tasks cooperatively:
// cancellation is checked between questions (a question in flight
// finishes), and the in-order delivery gate re-checks the context
// before every emit, so after cancel the sink holds a consistent
// prefix of the canonical order — a graceful partial report — and
// every delivered result is byte-identical to the full run's.
//
// Judged outcomes feed back into the scheduler from inside the reorder
// buffer, strictly in Seq order, before the sink sees them — the
// Judge→Scheduler back-edge that makes adaptive runs deterministic: the
// scheduler's state evolves along the canonical event order no matter
// how many workers race ahead of it.
func (p *Pipeline) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	clock := p.Clock
	if clock == nil {
		clock = now
	}
	sched := p.Scheduler
	if sched == nil {
		sched = newSourceScheduler(p.Source)
	}
	gate := newSchedGate()
	d := &delivery{
		pending: make(map[int]Event),
		sink:    p.Sink,
		obs:     p.Observer,
		clock:   clock,
		sched:   sched,
		gate:    gate,
	}
	nw := p.Workers
	if s, ok := sched.(schedulerSize); ok && nw > s.SizeHint() {
		nw = s.SizeHint()
	}
	if nw < 1 {
		nw = 1
	}
	// One Scratch per worker slot, checked out for the whole run: each
	// slot belongs to exactly one goroutine, so the buffers are reused
	// across every event that worker judges without locking or
	// per-event pool traffic.
	scratches := make([]*Scratch, nw)
	for i := range scratches {
		scratches[i] = getScratch()
	}
	work := func(w int) {
		for ctx.Err() == nil {
			ev, st := sched.Next()
			if st == ScheduleWait {
				// Arm the gate, then re-check: a Record between the
				// first Next and arm would otherwise be a missed
				// wake-up. The static path never reaches here.
				wake := gate.arm()
				ev, st = sched.Next()
				if st == ScheduleWait {
					select {
					case <-wake:
					case <-ctx.Done():
					}
					continue
				}
			}
			if st == ScheduleDone {
				return
			}
			ev.scratch = scratches[w]
			p.Infer.Infer(ctx, &ev)
			p.Judge.Judge(ctx, &ev)
			ev.scratch = nil
			d.deliver(ctx, ev)
		}
	}
	if nw == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			go func() {
				defer wg.Done()
				work(w)
			}()
		}
		wg.Wait()
	}
	for _, sc := range scratches {
		putScratch(sc)
	}
	return ctx.Err()
}

// delivery is the reorder buffer between the parallel stages and the
// ordered sink: workers complete events in scheduling order, deliver
// parks them until their Seq is next, and the contiguous prefix drains
// under one mutex — which is what serialises Sink/Observer calls and
// keeps them in canonical order for any worker count.
type delivery struct {
	mu      sync.Mutex
	next    int           // lowest Seq not yet emitted
	pending map[int]Event // completed events waiting for their turn
	stopped bool          // context cancelled; drop instead of emit
	sink    Sink
	obs     Observer
	clock   func() time.Time
	sched   ItemScheduler
	gate    *schedGate
}

func (d *delivery) deliver(ctx context.Context, ev Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Workers parked on ScheduleWait re-poll after every delivery
	// attempt: Record below may have issued new work, and on
	// cancellation the pulse is harmless (waiters also watch ctx).
	defer d.gate.pulse()
	if d.stopped {
		return
	}
	d.pending[ev.Seq] = ev
	for {
		if ctx.Err() != nil {
			// Stop emitting the moment cancellation is visible — even
			// for events already buffered — so an observer that cancels
			// during Observe cuts the report off deterministically
			// right after its event.
			d.stopped = true
			return
		}
		nxt, ok := d.pending[d.next]
		if !ok {
			return
		}
		delete(d.pending, d.next)
		d.next++
		// The scheduler hears the judged outcome first — in canonical
		// Seq order — and may annotate the event (ability, stop reason)
		// before the sink and observer see it.
		d.sched.Record(&nxt)
		nxt.At = d.clock()
		if d.sink != nil {
			d.sink.Consume(nxt)
		}
		if d.obs != nil {
			d.obs.Observe(nxt)
		}
	}
}

// --- Concrete stages used by Runner ------------------------------------

// benchmarkSource streams one model over a question list; Seq is the
// question index.
type benchmarkSource struct {
	model     Model
	questions []*dataset.Question
}

func (s benchmarkSource) Len() int { return len(s.questions) }

func (s benchmarkSource) Event(i int) Event {
	return Event{Seq: i, Model: s.model, Question: s.questions[i]}
}

// gridSource streams the flattened model-major (model, question) grid,
// so the worker pool stays busy across model boundaries — a cheap
// model finishing early does not idle its workers while an expensive
// one lags.
type gridSource struct {
	models    []Model
	questions []*dataset.Question
}

func (s gridSource) Len() int { return len(s.models) * len(s.questions) }

func (s gridSource) Event(t int) Event {
	nq := len(s.questions)
	return Event{Seq: t, Model: s.models[t/nq], Question: s.questions[t%nq]}
}

// modelInference asks the event's model for an answer.
type modelInference struct {
	opts InferenceOptions
}

func (st modelInference) Infer(_ context.Context, ev *Event) {
	ev.Response = ev.Model.Answer(ev.Question, st.opts)
}

// judgeStage scores the response with the equivalence judge, reusing
// the executing worker's Scratch so the steady-state judge path does
// not allocate.
type judgeStage struct {
	judge Judge
}

func (st judgeStage) Judge(_ context.Context, ev *Event) {
	ev.Correct = st.judge.CorrectWith(ev.Question, ev.Response, ev.scratch)
}

// reportSink appends each event to its model's report. Events arrive
// in Seq order and the grid is model-major, so every report's Results
// fill in question order, and a cancelled run leaves each report with
// a clean prefix (earlier models complete, later models empty).
type reportSink struct {
	nq      int // questions per model; divides Seq into (model, question)
	reports []*Report
}

func (s *reportSink) Consume(ev Event) {
	mi := 0
	if s.nq > 0 {
		mi = ev.Seq / s.nq
	}
	s.reports[mi].Results = append(s.reports[mi].Results, QuestionResult{
		QuestionID: ev.Question.ID,
		Category:   ev.Question.Category,
		Response:   ev.Response,
		Correct:    ev.Correct,
	})
}
