// Resolution: the §IV-B study — rasterise a question at 1x/8x/16x
// downsampling (writing real PNGs) and measure how GPT-4o's Pass@1 on
// the Digital category degrades with resolution.
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	// Write the same figure at three resolutions, as the paper did.
	outDir := "resolution-out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	q := suite.Benchmark.Questions[0]
	for _, f := range []int{1, 8, 16} {
		img := chipvqa.RenderQuestion(q, f)
		path := filepath.Join(outDir, fmt.Sprintf("%s_%dx.png", q.ID, f))
		file, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := png.Encode(file, img); err != nil {
			log.Fatal(err)
		}
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
		b := img.Bounds()
		fmt.Printf("wrote %s (%dx%d)\n", path, b.Dx(), b.Dy())
	}

	// Measure the Digital-category degradation.
	m, err := suite.Model("GPT4o")
	if err != nil {
		log.Fatal(err)
	}
	digital := &dataset.Benchmark{Name: "digital", Questions: suite.Benchmark.Filter(
		func(q *chipvqa.Question) bool { return q.Category == chipvqa.Digital })}
	fmt.Println("\nGPT-4o on the Digital category:")
	for _, f := range []int{1, 8, 16} {
		r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: f}}
		rep := r.Evaluate(m, digital)
		fmt.Printf("  %2dx downsampled: Pass@1 = %.2f\n", f, rep.Pass1())
	}
	fmt.Println("\n8x downsampling preserves the pass rate; 16x drops it —")
	fmt.Println("small annotations become unreadable below ~1 device pixel per stroke.")
}
