package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/eval"
)

// The command functions print to stdout; these tests only assert they
// succeed on valid inputs and fail cleanly on invalid ones. The numeric
// content they print is covered by the library test suites.

func TestCmdStats(t *testing.T) {
	if err := cmdStats(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats(context.Background(), []string{"-coverage"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEvalGap(t *testing.T) {
	if err := cmdEval(context.Background(), []string{"-gap"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdAgent(t *testing.T) {
	if err := cmdAgent(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdResolution(t *testing.T) {
	if err := cmdResolution(context.Background(), []string{"-model", "GPT4o", "-category", "Digital"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdResolution(context.Background(), []string{"-category", "NoSuchCategory"}); err == nil {
		t.Error("bad category accepted")
	}
	if err := cmdResolution(context.Background(), []string{"-model", "NoSuchModel"}); err == nil {
		t.Error("bad model accepted")
	}
}

func TestCmdExportAndRender(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	if err := cmdExport(context.Background(), []string{"-o", jsonPath}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(jsonPath); err != nil || fi.Size() == 0 {
		t.Fatalf("export produced %v, %v", fi, err)
	}
	renderDir := filepath.Join(dir, "renders")
	if err := cmdRender(context.Background(), []string{"-dir", renderDir, "-q", "d01"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(renderDir, "d01.png")); err != nil {
		t.Fatalf("render missing: %v", err)
	}
	// Downsampled render.
	if err := cmdRender(context.Background(), []string{"-dir", renderDir, "-q", "d01", "-factor", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdAsk(t *testing.T) {
	if err := cmdAsk(context.Background(), []string{"-model", "GPT4o", "-q", "m03"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAsk(context.Background(), []string{"-q", "d09", "-agent"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAsk(context.Background(), []string{"-q", "a01", "-challenge"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAsk(context.Background(), []string{"-q", "nope"}); err == nil {
		t.Error("unknown question accepted")
	}
}

func TestCmdExtended(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ext.json")
	if err := cmdExtended(context.Background(), []string{"-seed", "cli-test", "-n", "3", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("extended export missing: %v", err)
	}
}

func TestCmdCompare(t *testing.T) {
	if err := cmdCompare(context.Background(), []string{"-a", "GPT4o", "-b", "kosmos-2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompare(context.Background(), []string{"-a", "ghost"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestCmdFineTune(t *testing.T) {
	if err := cmdFineTune(context.Background(), []string{"-model", "LLaVA-7b"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFineTune(context.Background(), []string{"-model", "ghost"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestCmdChallenge(t *testing.T) {
	if err := cmdChallenge(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestCmdEvalInterrupted simulates a SIGINT that fired before any work
// ran: the command must surface context.Canceled (so main exits 1)
// while still printing the table for whatever prefix completed.
func TestCmdEvalInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cmdEval(ctx, nil); err != context.Canceled {
		t.Fatalf("cmdEval on dead ctx = %v, want context.Canceled", err)
	}
	if err := cmdChallenge(ctx, nil); err != context.Canceled {
		t.Fatalf("cmdChallenge on dead ctx = %v, want context.Canceled", err)
	}
	// items refuses to analyse a truncated grid — error, no output.
	if err := cmdItems(ctx, []string{"-k", "3"}); err != context.Canceled {
		t.Fatalf("cmdItems on dead ctx = %v, want context.Canceled", err)
	}
}

// TestCmdRenderInterrupted pins the ctxflow fix: render honours
// cancellation at question boundaries, so a dead context stops the run
// before any PNG is written instead of plowing through all 142 files.
func TestCmdRenderInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := filepath.Join(t.TempDir(), "renders")
	if err := cmdRender(ctx, []string{"-dir", dir}); err != context.Canceled {
		t.Fatalf("cmdRender on dead ctx = %v, want context.Canceled", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("cancelled render still wrote %d files", len(entries))
	}
}

// TestCmdInterruptedFileCommands covers the remaining cancellation
// seams added with the ctxflow analyzer: export must not create the
// output file, pack must stop at a shard boundary, compare and
// finetune must surface the context error before their sweeps.
func TestCmdInterruptedFileCommands(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "bench.json")
	if err := cmdExport(ctx, []string{"-o", jsonPath}); err != context.Canceled {
		t.Fatalf("cmdExport on dead ctx = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(jsonPath); !os.IsNotExist(err) {
		t.Fatalf("cancelled export left %s behind (stat err %v)", jsonPath, err)
	}

	packPath := filepath.Join(dir, "x.cvqb")
	if err := cmdPack(ctx, []string{"-o", packPath, "-n", "2"}); err != context.Canceled {
		t.Fatalf("cmdPack on dead ctx = %v, want context.Canceled", err)
	}

	if err := cmdCompare(ctx, nil); err != context.Canceled {
		t.Fatalf("cmdCompare on dead ctx = %v, want context.Canceled", err)
	}
	if err := cmdFineTune(ctx, nil); err != context.Canceled {
		t.Fatalf("cmdFineTune on dead ctx = %v, want context.Canceled", err)
	}
}

// TestUsageWriter pins the help contract: `chipvqa help` writes usage to
// the writer it is handed (stdout, exit 0) rather than stderr.
func TestUsageWriter(t *testing.T) {
	var buf strings.Builder
	usage(&buf)
	out := buf.String()
	for _, want := range []string{"usage: chipvqa", "eval", "extended", "-workers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdItems(t *testing.T) {
	if err := cmdItems(context.Background(), []string{"-k", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdItems(context.Background(), []string{"-challenge", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdItems(context.Background(), []string{"-json"}); err != nil {
		t.Fatal(err)
	}
}

// TestItemsJSONByteStable: the chipvqa-items/1 document is byte-identical
// across worker counts, sorted by question ID, and never serialises a
// solver list as null.
func TestItemsJSONByteStable(t *testing.T) {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	var models []chipvqa.Model
	for _, name := range suite.ModelNames() {
		m, err := suite.Model(name)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	var docs [][]byte
	for _, workers := range []int{1, 8} {
		r := eval.Runner{Workers: workers}
		reports, err := r.EvaluateAllContext(context.Background(), models, suite.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		items, err := eval.ItemAnalysis(reports)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := writeItemsJSON(&buf, "standard", len(models), items); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.Bytes())
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Fatal("items JSON differs between workers=1 and workers=8")
	}
	var doc itemsDocument
	if err := json.Unmarshal(docs[0], &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "chipvqa-items/1" {
		t.Fatalf("schema %q", doc.Schema)
	}
	if doc.Models != len(models) || len(doc.Items) != suite.Benchmark.Len() {
		t.Fatalf("models %d items %d, want %d and %d", doc.Models, len(doc.Items), len(models), suite.Benchmark.Len())
	}
	ids := make([]string, len(doc.Items))
	for i, it := range doc.Items {
		ids[i] = it.QuestionID
		if it.CorrectModels == nil {
			t.Fatalf("item %s: correct_models decoded as nil (serialised null?)", it.QuestionID)
		}
		if !sort.StringsAreSorted(it.CorrectModels) {
			t.Fatalf("item %s: solvers %v not sorted", it.QuestionID, it.CorrectModels)
		}
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatal("items not sorted by question_id")
	}
	if bytes.Contains(docs[0], []byte("null")) {
		t.Fatal("document contains a JSON null")
	}
}

func TestCmdAdaptive(t *testing.T) {
	if err := cmdAdaptive(context.Background(), []string{"-seed", "cli-test", "-n", "4", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	// A cancelled run reports the prefix and returns the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cmdAdaptive(ctx, []string{"-seed", "cli-test", "-n", "4"}); err == nil {
		t.Error("cancelled adaptive run returned nil error")
	}
}

func TestCmdBenchDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("old.json", `{
		"schema": "chipvqa-bench/2",
		"bootstrap_ci_ns_per_op": 1000000,
		"table_ii_serial_ns_per_op": 500,
		"dropped_ns_per_op": 42
	}`)
	better := write("better.json", `{
		"schema": "chipvqa-bench/3",
		"bootstrap_ci_ns_per_op": 50000,
		"bootstrap_ci_allocs_per_op": 14,
		"table_ii_serial_ns_per_op": 550,
		"table_ii_grid": [{"workers": 1, "ns_per_op": 7, "allocs_per_op": 0}]
	}`)
	if err := cmdBenchDiff(context.Background(), []string{old, better}); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
	slow := write("slow.json", `{"bootstrap_ci_ns_per_op": 1300000, "table_ii_serial_ns_per_op": 500}`)
	if err := cmdBenchDiff(context.Background(), []string{old, slow}); err == nil {
		t.Error(">20% ns/op growth not rejected")
	}
	// Within tolerance: 10% growth passes the default 20% gate.
	mild := write("mild.json", `{"bootstrap_ci_ns_per_op": 1100000, "table_ii_serial_ns_per_op": 500}`)
	if err := cmdBenchDiff(context.Background(), []string{old, mild}); err != nil {
		t.Errorf("10%% growth rejected at default tolerance: %v", err)
	}
	// Any allocs/op increase is a regression, even with ns/op flat.
	allocOld := write("alloc-old.json", `{"judge_all_ns_per_op": 100, "judge_all_allocs_per_op": 0}`)
	allocNew := write("alloc-new.json", `{"judge_all_ns_per_op": 100, "judge_all_allocs_per_op": 3}`)
	if err := cmdBenchDiff(context.Background(), []string{allocOld, allocNew}); err == nil {
		t.Error("allocs/op increase not rejected")
	}
	// Any rank-agreement decrease is a regression (quality gate, schema
	// v5); an increase or equality passes.
	rankOld := write("rank-old.json", `{"adaptive_rank_agreement": 1.0, "adaptive_questions_asked": 600}`)
	rankBad := write("rank-bad.json", `{"adaptive_rank_agreement": 0.95, "adaptive_questions_asked": 500}`)
	if err := cmdBenchDiff(context.Background(), []string{rankOld, rankBad}); err == nil {
		t.Error("rank_agreement decrease not rejected")
	}
	if err := cmdBenchDiff(context.Background(), []string{rankOld, rankOld}); err != nil {
		t.Errorf("flat rank_agreement rejected: %v", err)
	}
	if err := cmdBenchDiff(context.Background(), []string{old}); err == nil {
		t.Error("missing operand accepted")
	}
	if err := cmdBenchDiff(context.Background(), []string{old, filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("unreadable snapshot accepted")
	}
	if err := cmdBenchDiff(context.Background(), []string{old, write("bad.json", "{")}); err == nil {
		t.Error("malformed JSON accepted")
	}
}
