package manuf

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/visual"
)

// GenerateExtra produces additional Manufacture questions, cycling
// through seed-parameterised instances of the package's templates.
func GenerateExtra(seed string, count int) []*dataset.Question {
	return GenerateExtraRange(seed, 0, count)
}

// GenerateExtraRange produces only the extended questions with indices
// in [lo, hi); each is a pure function of (seed, index), so a window is
// byte-identical to the same slice of a full build.
func GenerateExtraRange(seed string, lo, hi int) []*dataset.Question {
	if hi <= lo {
		return nil
	}
	qs := make([]*dataset.Question, 0, hi-lo)
	for i := lo; i < hi; i++ {
		qs = append(qs, ExtraAt(seed, i))
	}
	return qs
}

// ExtraAt builds the i-th extended Manufacture question of a fold.
func ExtraAt(seed string, i int) *dataset.Question {
	inst := fmt.Sprintf("%s-%d", seed, i)
	id := fmt.Sprintf("xm-%s-%02d", seed, i)
	switch i % 6 {
	case 0:
		return extraEtchTime(id, inst)
	case 1:
		return extraRayleigh(id, inst)
	case 2:
		return extraYield(id, inst)
	case 3:
		return extraDOF(id, inst)
	case 4:
		return extraAerialCD(id, inst)
	default:
		return extraMEEF(id, inst)
	}
}

func extraEtchTime(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-etch", inst)
	thickness := float64(200 + 100*r.IntN(6))
	over := float64(5+5*r.IntN(4)) / 100
	rate := float64(50 + 50*r.IntN(4))
	p := EtchProcess{Name: "wet etch", Rate: rate}
	tm := p.TimeToClear(thickness, over)
	scene := visual.NewAnnotatedFigure(visual.KindFigure, "Patterned film cross-section",
		"photoresist opening over the target film",
		[]string{fmt.Sprintf("film thickness: %g nm", thickness),
			fmt.Sprintf("etch rate: %g nm/min", rate),
			fmt.Sprintf("required over-etch: %g%%", over*100)})
	return dataset.NewSANumber(id, dataset.Manufacture, "etch-time",
		fmt.Sprintf("The film in the figure is %g nm thick and etches at %g nm/min. "+
			"How long must the wafer stay in the etchant to record a %g%% over-etch? "+
			"Answer in minutes.", thickness, rate, over*100),
		scene, tm, "min", 0.02, 0.6)
}

func extraRayleigh(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-litho", inst)
	sys := []LithoSystem{ArF(), KrF(), EUV()}[r.IntN(3)]
	res := sys.Resolution()
	scene := visual.NewBlockDiagram(visual.KindDiagram, "Projection lithography column",
		[]string{"SOURCE", "MASK", "LENS", "WAFER"},
		[]string{fmt.Sprintf("lambda = %g nm", sys.WavelengthNM),
			fmt.Sprintf("NA = %g", sys.NA),
			fmt.Sprintf("k1 = %g", sys.K1)})
	return dataset.NewSANumber(id, dataset.Manufacture, "rayleigh",
		"The scanner in the figure operates with the wavelength, NA and k1 annotated. "+
			"Per the Rayleigh criterion R = k1*lambda/NA, what minimum feature size can it "+
			"resolve, in nm?",
		scene, res, "nm", 0.02, 0.55)
}

func extraYield(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-yield", inst)
	area := float64(1+r.IntN(4)) * 0.5
	density := float64(1+r.IntN(6)) * 0.2
	y := PoissonYield(area, density) * 100
	scene := visual.NewTableScene(visual.KindMixed, "Die and defect data",
		[]string{"parameter", "value"},
		[][]string{
			{"die area", fmt.Sprintf("%g cm2", area)},
			{"defect density", fmt.Sprintf("%g /cm2", density)},
			{"model", "Poisson"},
		}, map[int]bool{1: true})
	return dataset.NewSANumber(id, dataset.Manufacture, "poisson-yield",
		"Using the Poisson yield model Y = exp(-A*D) with the die area and defect "+
			"density tabulated in the figure, what die yield results, in percent?",
		scene, y, "%", 0.02, 0.55)
}

func extraDOF(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-dof", inst)
	sys := []LithoSystem{ArF(), KrF()}[r.IntN(2)]
	dof := sys.DepthOfFocus()
	scene := visual.NewBlockDiagram(visual.KindDiagram, "Focus budget",
		[]string{"LENS", "FOCAL PLANE", "WAFER TOPO"},
		[]string{fmt.Sprintf("lambda = %g nm", sys.WavelengthNM),
			fmt.Sprintf("NA = %g", sys.NA),
			fmt.Sprintf("k2 = %g", sys.K2)})
	return dataset.NewSANumber(id, dataset.Manufacture, "dof",
		"For the scanner in the figure, compute the Rayleigh depth of focus "+
			"DOF = k2*lambda/NA^2, in nm.",
		scene, dof, "nm", 0.02, 0.6)
}

func extraAerialCD(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-aerial", inst)
	sim := NewAerialSimulator(KrF())
	cd := float64(200 + 20*r.IntN(5))
	pitch := cd * float64(2+r.IntN(3))
	features, x0 := LineInGrating(cd, pitch, 5)
	printed := sim.PrintedCD(features, x0)
	scene := visual.NewAnnotatedFigure(visual.KindFigure, "Aerial image of a line grating",
		"five-line grating with the centre line's image profile plotted",
		[]string{fmt.Sprintf("drawn CD: %g nm, pitch: %g nm", cd, pitch),
			"KrF scanner: lambda 248 nm, NA 0.8",
			"Gaussian PSF (sigma = 0.61*lambda/NA / 2.2), resist threshold 0.5"})
	return dataset.NewSANumber(id, dataset.Manufacture, "aerial-cd",
		fmt.Sprintf("The aerial-image simulation in the figure exposes a five-line "+
			"grating (drawn CD %g nm at %g nm pitch) on the KrF tool described. Under the "+
			"threshold resist model, what linewidth does the centre line print, in nm?",
			cd, pitch),
		scene, printed, "nm", 0.04, 0.85)
}

func extraMEEF(id, inst string) *dataset.Question {
	r := rng.New("manuf-extra-meef", inst)
	maskErr := float64(2 + r.IntN(8))
	meef := float64(1 + r.IntN(4))
	delta := MaskErrorFactor(maskErr, meef, 4)
	scene := layoutSceneManuf("Mask vs wafer CD",
		[]string{fmt.Sprintf("mask CD error: %g nm (at mask scale)", maskErr),
			fmt.Sprintf("MEEF = %g", meef), "4x reduction scanner"})
	return dataset.NewSANumber(id, dataset.Manufacture, "meef",
		"A mask feature in the figure carries the CD error annotated. With the MEEF "+
			"and reduction ratio shown, what CD error appears on the wafer, in nm?",
		scene, delta, "nm", 0.02, 0.6)
}
