// Package vlm implements the simulated vision-language models the
// reproduction evaluates. Real VLM inference is unavailable offline, so
// each model is a capability profile driving the Fig. 2 pipeline stages:
// a perception stage over the question's scene graph (sensitive to image
// resolution, which is what makes the §IV-B ablation work), and a
// solve stage whose per-category success rates are calibrated to the
// Pass@1 values the paper reports in Table II. DESIGN.md §2 documents
// this substitution; EXPERIMENTS.md records paper-vs-measured numbers.
package vlm

import "repro/internal/dataset"

// CategoryRates holds one Pass@1 value per discipline, in Table I order
// (Digital, Analog, Architecture, Manufacture, Physical).
type CategoryRates [dataset.NumCategories]float64

// Profile describes one simulated VLM.
type Profile struct {
	Name     string
	Backbone string // underlying LLM, for the backbone-scaling study
	// BackboneStrength in (0,1]: the text-side capability. The paper's
	// second finding is that VLM accuracy tracks this; the profiles
	// encode it so the LLaVA case study is reproducible.
	BackboneStrength float64
	// Perception in (0,1]: visual front-end quality; scales how robust
	// the model is to resolution loss.
	Perception float64
	// SupportsSystemPrompt mirrors §IV: Paligemma and Kosmos-2 need the
	// system prompt folded into the user prompt.
	SupportsSystemPrompt bool
	// OpenSource distinguishes the proprietary models for the gap study.
	OpenSource bool

	// WithChoice and NoChoice are the Table II calibration targets:
	// per-category Pass@1 on the standard and challenge collections.
	WithChoice CategoryRates
	NoChoice   CategoryRates
}

// Profiles returns the twelve models of Table II in the paper's row
// order. The Pass@1 targets are transcribed from Table II.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "LLaVA-7b", Backbone: "Mistral-7b", BackboneStrength: 0.35,
			Perception: 0.80, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.37, 0.20, 0.20, 0.05, 0.22},
			NoChoice:   CategoryRates{0.03, 0.00, 0.10, 0.05, 0.09},
		},
		{
			Name: "LLaVA-13b", Backbone: "Vicuna-13b", BackboneStrength: 0.40,
			Perception: 0.80, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.23, 0.16, 0.25, 0.10, 0.17},
			NoChoice:   CategoryRates{0.00, 0.02, 0.20, 0.15, 0.04},
		},
		{
			Name: "LLaVA-34b", Backbone: "Yi-34b", BackboneStrength: 0.52,
			Perception: 0.82, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.26, 0.32, 0.20, 0.15, 0.22},
			NoChoice:   CategoryRates{0.06, 0.05, 0.10, 0.15, 0.17},
		},
		{
			Name: "LLaVA-LLaMa-3", Backbone: "LLaMa-3-8b", BackboneStrength: 0.48,
			Perception: 0.82, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.37, 0.18, 0.30, 0.20, 0.22},
			NoChoice:   CategoryRates{0.03, 0.00, 0.15, 0.05, 0.13},
		},
		{
			Name: "NeVA-22b", Backbone: "NeVA", BackboneStrength: 0.45,
			Perception: 0.80, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.37, 0.23, 0.15, 0.05, 0.22},
			NoChoice:   CategoryRates{0.03, 0.07, 0.10, 0.20, 0.04},
		},
		{
			Name: "fuyu-8b", Backbone: "Fuyu", BackboneStrength: 0.30,
			Perception: 0.75, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.11, 0.30, 0.10, 0.05, 0.13},
			NoChoice:   CategoryRates{0.00, 0.00, 0.05, 0.05, 0.13},
		},
		{
			Name: "paligemma", Backbone: "Gemma", BackboneStrength: 0.22,
			Perception: 0.70, SupportsSystemPrompt: false, OpenSource: true,
			WithChoice: CategoryRates{0.03, 0.07, 0.15, 0.20, 0.04},
			NoChoice:   CategoryRates{0.03, 0.00, 0.05, 0.05, 0.04},
		},
		{
			Name: "kosmos-2", Backbone: "Kosmos", BackboneStrength: 0.15,
			Perception: 0.65, SupportsSystemPrompt: false, OpenSource: true,
			WithChoice: CategoryRates{0.06, 0.00, 0.05, 0.05, 0.00},
			NoChoice:   CategoryRates{0.03, 0.02, 0.00, 0.05, 0.09},
		},
		{
			Name: "phi3-vision", Backbone: "Phi-3", BackboneStrength: 0.50,
			Perception: 0.82, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.29, 0.18, 0.10, 0.10, 0.30},
			NoChoice:   CategoryRates{0.09, 0.05, 0.00, 0.15, 0.17},
		},
		{
			Name: "VILA-Yi-34B", Backbone: "Yi-34b", BackboneStrength: 0.55,
			Perception: 0.84, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.43, 0.36, 0.30, 0.05, 0.17},
			NoChoice:   CategoryRates{0.06, 0.02, 0.25, 0.00, 0.22},
		},
		{
			Name: "LLaMA-3.2-90B", Backbone: "LLaMa-3.2", BackboneStrength: 0.70,
			Perception: 0.88, SupportsSystemPrompt: true, OpenSource: true,
			WithChoice: CategoryRates{0.37, 0.25, 0.15, 0.35, 0.48},
			NoChoice:   CategoryRates{0.06, 0.09, 0.10, 0.35, 0.39},
		},
		{
			Name: "GPT4o", Backbone: "GPT-4o", BackboneStrength: 0.85,
			Perception: 0.95, SupportsSystemPrompt: true, OpenSource: false,
			WithChoice: CategoryRates{0.49, 0.51, 0.30, 0.20, 0.61},
			NoChoice:   CategoryRates{0.17, 0.09, 0.15, 0.30, 0.48},
		},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// LLaVAFamily returns the LLaVA-series profiles ordered by backbone
// strength — the case study behind the paper's second finding.
func LLaVAFamily() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		switch p.Name {
		case "LLaVA-7b", "LLaVA-13b", "LLaVA-LLaMa-3", "LLaVA-34b":
			out = append(out, p)
		}
	}
	// Order by backbone strength ascending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].BackboneStrength > out[j].BackboneStrength; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
