#!/bin/sh
# Record the repo's perf trajectory: time the evaluation engine
# (Table II serial vs parallel, the cached resolution sweep, bootstrap
# CI) and write a BENCH_N.json snapshot at the repo root.
#
# Usage: scripts/bench.sh [N]   (default N=1 -> BENCH_1.json)
set -e
cd "$(dirname "$0")/.."
N="${1:-1}"
go run ./cmd/chipvqa bench -o "BENCH_${N}.json"
