package arch

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/visual"
)

// GenerateExtra produces additional Architecture questions, cycling
// through seed-parameterised instances of the package's templates.
func GenerateExtra(seed string, count int) []*dataset.Question {
	return GenerateExtraRange(seed, 0, count)
}

// GenerateExtraRange produces only the extended questions with indices
// in [lo, hi); each is a pure function of (seed, index), so a window is
// byte-identical to the same slice of a full build.
func GenerateExtraRange(seed string, lo, hi int) []*dataset.Question {
	if hi <= lo {
		return nil
	}
	qs := make([]*dataset.Question, 0, hi-lo)
	for i := lo; i < hi; i++ {
		qs = append(qs, ExtraAt(seed, i))
	}
	return qs
}

// ExtraAt builds the i-th extended Architecture question of a fold.
func ExtraAt(seed string, i int) *dataset.Question {
	inst := fmt.Sprintf("%s-%d", seed, i)
	id := fmt.Sprintf("xr-%s-%02d", seed, i)
	switch i % 6 {
	case 0:
		return extraCacheSets(id, inst)
	case 1:
		return extraAMAT(id, inst)
	case 2:
		return extraMeshHops(id, inst)
	case 3:
		return extraPipelineCPI(id, inst)
	case 4:
		return extraOoO(id, inst)
	default:
		return extraPredictor(id, inst)
	}
}

func extraCacheSets(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-cache", inst)
	sizeKiB := []int{8, 16, 32, 64}[r.IntN(4)]
	block := []int{32, 64}[r.IntN(2)]
	ways := []int{1, 2, 4, 8}[r.IntN(4)]
	cfg := CacheConfig{SizeBytes: sizeKiB * 1024, BlockSize: block, Ways: ways}
	sets := cfg.Sets()
	scene := visual.NewTableScene(visual.KindTable, "Cache parameters",
		[]string{"parameter", "value"},
		[][]string{
			{"capacity", fmt.Sprintf("%d KiB", sizeKiB)},
			{"block size", fmt.Sprintf("%d B", block)},
			{"associativity", fmt.Sprintf("%d-way", ways)},
		}, map[int]bool{1: true})
	return dataset.NewSANumber(id, dataset.Architecture, "cache-sets",
		"For the cache described by the parameter table in the figure, how many sets "+
			"does the cache have?",
		scene, float64(sets), "sets", 0, 0.5)
}

func extraAMAT(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-amat", inst)
	hit := float64(1 + r.IntN(3))
	missRate := float64(1+r.IntN(10)) / 100
	penalty := float64(50 + 10*r.IntN(10))
	amat := AMAT(hit, penalty, missRate)
	scene := visual.NewBlockDiagram(visual.KindDiagram, "Memory hierarchy",
		[]string{"CPU", "L1", "DRAM"},
		[]string{fmt.Sprintf("L1 hit time: %g cycles", hit),
			fmt.Sprintf("L1 miss rate: %g%%", missRate*100),
			fmt.Sprintf("miss penalty: %g cycles", penalty)})
	return dataset.NewSANumber(id, dataset.Architecture, "amat",
		"For the memory hierarchy in the figure with the hit time, miss rate and miss "+
			"penalty annotated, what is the average memory access time in cycles?",
		scene, amat, "cycles", 0.02, 0.5)
}

func extraMeshHops(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-mesh", inst)
	const side = 5
	x0, y0 := r.IntN(side), r.IntN(side)
	x1, y1 := r.IntN(side), r.IntN(side)
	if x0 == x1 && y0 == y1 {
		x1 = (x1 + 2) % side
	}
	hops := MeshHops(x0, y0, x1, y1)
	scene := visual.NewGridScene(visual.KindDiagram, "5x5 on-chip mesh", side, side,
		map[[2]int]string{{x0, y0}: "SRC", {x1, y1}: "DST"})
	return dataset.NewSANumber(id, dataset.Architecture, "mesh-hops",
		fmt.Sprintf("In the 5x5 mesh of the figure, what is the minimal hop count from "+
			"SRC at (%d,%d) to DST at (%d,%d) under dimension-order routing?", x0, y0, x1, y1),
		scene, float64(hops), "hops", 0, 0.45)
}

func extraPipelineCPI(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-cpi", inst)
	n := 4 + r.IntN(4)
	prog := make([]Instr, n)
	for i := range prog {
		if r.IntN(3) == 0 {
			prog[i] = Instr{Op: OpLoad, Dest: 1 + r.IntN(6), Src1: 7}
		} else {
			src := 1 + r.IntN(6)
			prog[i] = Instr{Op: OpALU, Dest: 1 + r.IntN(6), Src1: src, Src2: 7}
		}
	}
	res := SimulatePipeline(prog, ClassicFiveStage())
	lines := make([]string, n)
	for i, ins := range prog {
		lines[i] = ins.Format()
	}
	scene := visual.NewBlockDiagram(visual.KindDiagram, "Fully forwarded 5-stage pipeline",
		[]string{"IF", "ID", "EX", "MEM", "WB"}, lines)
	return dataset.NewSANumber(id, dataset.Architecture, "pipeline-cpi",
		fmt.Sprintf("The fully forwarded 5-stage pipeline in the figure executes the "+
			"%d-instruction program listed. Counting pipeline fill, what is the CPI?", n),
		scene, res.CPI(), "CPI", 0.02, 0.65)
}

func extraOoO(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-ooo", inst)
	n := 4 + r.IntN(5)
	prog := make([]Instr, n)
	for i := range prog {
		if r.IntN(4) == 0 {
			prog[i] = Instr{Op: OpLoad, Dest: 1 + r.IntN(6), Src1: 7}
		} else {
			prog[i] = Instr{Op: OpALU, Dest: 1 + r.IntN(6), Src1: 1 + r.IntN(6)}
		}
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		panic(err)
	}
	lines := make([]string, n)
	for i, ins := range prog {
		lines[i] = ins.Format()
	}
	scene := visual.NewBlockDiagram(visual.KindDiagram, "2-wide out-of-order core",
		[]string{"RENAME", "ISSUE Q", "2x ALU", "1x MEM"},
		append([]string{"ALU latency 1, load latency 3"}, lines...))
	return dataset.NewSANumber(id, dataset.Architecture, "ooo-cycles",
		fmt.Sprintf("The 2-wide out-of-order core in the figure (two 1-cycle ALUs, one "+
			"3-cycle memory unit, perfect renaming) executes the %d-instruction program "+
			"listed. In how many cycles does the last instruction complete?", n),
		scene, float64(res.Cycles), "cycles", 0, 0.8)
}

func extraPredictor(id, inst string) *dataset.Question {
	r := rng.New("arch-extra-pred", inst)
	iters := 3 + r.IntN(4)
	reps := 2 + r.IntN(3)
	outcomes := LoopOutcomes(iters, reps)
	miss := RunPredictor(NewTwoBit(4), 0x40, outcomes)
	scene := visual.NewAnnotatedFigure(visual.KindFigure, "2-bit saturating counter FSM",
		"states: 00 01 10 11; taken moves right, not-taken moves left",
		[]string{"initial state: 01 (weakly not-taken)",
			fmt.Sprintf("branch: loop of %d iterations, run %d times", iters, reps)})
	return dataset.NewSANumber(id, dataset.Architecture, "2bit-predictor",
		fmt.Sprintf("A 2-bit saturating-counter predictor (figure) starts weakly "+
			"not-taken and sees a loop branch that is taken %d times then falls through, "+
			"repeated %d times. How many mispredictions occur in total?", iters-1, reps),
		scene, float64(miss), "mispredictions", 0, 0.7)
}
