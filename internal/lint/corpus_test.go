package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runCorpus loads the corpus package in testdata/<name>, runs the given
// analyzers, and checks every diagnostic against `// want "regexp"`
// expectation comments: each want must be matched by a diagnostic on
// its line, and every diagnostic must be wanted. Multiple quoted
// regexps on one want comment expect that many diagnostics on the line.
func runCorpus(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("load corpus %s: %v", name, err)
	}
	wants := collectWants(t, pkg)
	diags := Run([]*Package{pkg}, analyzers)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		rendered := "[" + d.Analyzer + "] " + d.Message
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(rendered) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// A want is one expectation parsed from a corpus comment.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

// wantRx extracts the quoted regexps of a want comment; both "..." and
// `...` quoting are accepted (backticks avoid escaping in regexps).
var wantRx = regexp.MustCompile("\"([^\"]+)\"|`([^`]+)`")

// collectWants parses `// want "..."` comments out of a loaded package.
func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					rx, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

func TestNoDetermCorpus(t *testing.T) { runCorpus(t, "nodeterm", NoDeterm) }
func TestMapOrderCorpus(t *testing.T) { runCorpus(t, "maporder", MapOrder) }
func TestPoolOwnCorpus(t *testing.T)  { runCorpus(t, "poolown", PoolOwn) }
func TestErrDropCorpus(t *testing.T)  { runCorpus(t, "errdrop", ErrDrop) }
func TestHotAllocCorpus(t *testing.T) { runCorpus(t, "hotalloc", HotAlloc) }
func TestCtxFlowCorpus(t *testing.T)  { runCorpus(t, "ctxflow", CtxFlow) }
func TestGoLeakCorpus(t *testing.T)   { runCorpus(t, "goleak", GoLeak) }
func TestLockSafeCorpus(t *testing.T) { runCorpus(t, "locksafe", LockSafe) }

// TestDirectiveCorpus pins the suppression-placement index: a package
// dense with trailing and own-line directives must suppress exactly
// the covered lines (all directives used, so the stale check stays
// silent) while uncovered sites still fire.
func TestDirectiveCorpus(t *testing.T) { runCorpus(t, "directive", NoDeterm) }

// TestModuleIsLintClean is the meta-test behind the build gate: the
// real module, in full, must produce zero diagnostics from every
// analyzer. cmd/chipvqa-lint enforces the same property from the
// command line; this keeps it enforced by `go test ./...` alone.
func TestModuleIsLintClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("module not lint-clean: %s", d)
	}
}
