package visual

import (
	"bytes"
	"sync"
	"testing"
)

func TestSceneCacheRenderMemoized(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindSchematic)
	a := c.Render(s)
	b := c.Render(s)
	if a != b {
		t.Error("second render did not return the cached image")
	}
	if !bytes.Equal(a.Pix, Render(s).Pix) {
		t.Error("cached render differs from a direct render")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v, want 1 miss + 1 hit", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate %v, want 0.5", got)
	}
}

func TestSceneCacheDownsampled(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindLayout)
	got := c.Downsampled(s, 8)
	want := Downsample(Render(s), 8)
	if got.Bounds() != want.Bounds() || !bytes.Equal(got.Pix, want.Pix) {
		t.Error("cached downsample differs from direct pipeline")
	}
	if c.Downsampled(s, 8) != got {
		t.Error("second downsample not cached")
	}
	// factor <= 1 is the full render entry, not a separate key.
	if c.Downsampled(s, 1) != c.Render(s) {
		t.Error("factor 1 should share the render entry")
	}
	// Distinct factors are distinct entries.
	if c.Downsampled(s, 16) == got {
		t.Error("16x shares the 8x entry")
	}
}

func TestSceneCacheCriticalLossesAndCriticals(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindSchematic)
	crit := c.Criticals(s)
	direct := s.CriticalElements()
	if len(crit) != len(direct) {
		t.Fatalf("criticals %d, want %d", len(crit), len(direct))
	}
	for _, factor := range []int{8, 16} {
		losses := c.CriticalLosses(s, factor)
		if len(losses) != len(direct) {
			t.Fatalf("factor %d: %d losses for %d criticals", factor, len(losses), len(direct))
		}
		for i, e := range direct {
			if want := LegibilityLoss(factor, e.Salience); losses[i] != want {
				t.Errorf("factor %d element %d: loss %v, want %v", factor, i, losses[i], want)
			}
		}
	}
	// Memoized: same backing slice on the second call.
	a := c.CriticalLosses(s, 16)
	b := c.CriticalLosses(s, 16)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("losses recomputed on second call")
	}
}

// TestSceneCacheReset pins Stats() behaviour across Reset(): the hit,
// miss, eviction and byte counters all restart from zero, the budget
// (configuration, not a counter) survives, and previously cached
// artifacts recompute.
func TestSceneCacheReset(t *testing.T) {
	w := renderWeight(t)
	c := NewSceneCache()
	budget := w + 1024 // one render plus the small loss/critical entries
	c.SetBudget(budget)
	s := sampleScene(KindCurve)
	img := c.Render(s)
	_ = c.CriticalLosses(s, 8)
	_ = c.Criticals(s)
	_ = c.Render(sampleScene(KindTable)) // second render forces an eviction
	before := c.Stats()
	if before.Evictions == 0 || before.EvictedBytes == 0 || before.Bytes == 0 || before.PeakBytes == 0 {
		t.Fatalf("expected byte pressure before reset, stats %+v", before)
	}
	c.Reset()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 || st.EvictedBytes != 0 ||
		st.Bytes != 0 || st.PeakBytes != 0 {
		t.Errorf("stats after reset %+v", st)
	}
	if st.Budget != budget {
		t.Errorf("reset dropped the budget: %d, want %d", st.Budget, budget)
	}
	if c.Render(s) == img {
		t.Error("reset kept the cached render")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("post-reset render should miss, stats %+v", st)
	}
}

// renderWeight learns the byte weight the cache charges for one cached
// render from a throwaway cache. All sampleScenes share canvas
// dimensions, so every render entry weighs the same.
func renderWeight(t *testing.T) int64 {
	t.Helper()
	c := NewSceneCache()
	c.Render(sampleScene(KindSchematic))
	w := c.Stats().Bytes
	if w <= 0 {
		t.Fatalf("render weight = %d", w)
	}
	return w
}

// TestSceneCacheBudgetEviction checks the LRU contract: under a budget
// sized for two renders the least-recently-used entry is the one
// evicted, retained and peak bytes never exceed the budget, and the
// same access sequence produces identical stats on every run.
func TestSceneCacheBudgetEviction(t *testing.T) {
	w := renderWeight(t)
	run := func() (CacheStats, bool) {
		c := NewSceneCache()
		c.SetBudget(2*w + w/2) // room for exactly two renders
		s1 := sampleScene(KindSchematic)
		s2 := sampleScene(KindDiagram)
		s3 := sampleScene(KindLayout)
		img1 := c.Render(s1)
		_ = c.Render(s2)
		_ = c.Render(s1) // touch: s2 becomes the coldest entry
		_ = c.Render(s3) // over budget: must evict s2, keep s1
		kept := c.Render(s1) == img1
		return c.Stats(), kept
	}
	st, kept := run()
	if !kept {
		t.Error("recently-used render was evicted instead of the LRU one")
	}
	if st.Evictions != 1 || st.EvictedBytes != w {
		t.Errorf("evictions %d (%d bytes), want 1 (%d bytes)", st.Evictions, st.EvictedBytes, w)
	}
	if st.Bytes > st.Budget || st.PeakBytes > st.Budget {
		t.Errorf("bytes %d / peak %d exceed budget %d", st.Bytes, st.PeakBytes, st.Budget)
	}
	if again, _ := run(); again != st {
		t.Errorf("same access sequence, different stats: %+v vs %+v", again, st)
	}
}

// TestSceneCacheAcquireRelease covers the three ownership outcomes of
// eviction: a pinned buffer survives until its (idempotent) release and
// is then pooled; an entry that was ever handed out share-style is
// never pooled; and eviction while pinned defers pooling to the last
// release.
func TestSceneCacheAcquireRelease(t *testing.T) {
	// Budget below any entry weight: every insert evicts itself.
	c := NewSceneCache()
	c.SetBudget(1)
	img, release := c.AcquireRender(sampleScene(KindSchematic))
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 0 {
		t.Fatalf("self-eviction expected at insert, stats %+v", st)
	}
	if img.Pix == nil {
		t.Fatal("pinned buffer recycled while its handle is outstanding")
	}
	release()
	if img.Pix != nil {
		t.Error("last release of an evicted acquired entry must pool the buffer")
	}
	release() // idempotent: must not double-free

	// Share-style handout poisons pooling even for an acquired entry.
	c2 := NewSceneCache()
	s2 := sampleScene(KindDiagram)
	img2, release2 := c2.AcquireRender(s2)
	if c2.Render(s2) != img2 {
		t.Fatal("acquired and shared lookups disagree on the cached image")
	}
	c2.SetBudget(1) // evict everything
	release2()
	if img2.Pix == nil {
		t.Error("shared image pooled; share-style readers may still hold it")
	}

	// Eviction of a pinned-only entry defers pooling to release time.
	c3 := NewSceneCache()
	img3, release3 := c3.AcquireRender(sampleScene(KindLayout))
	c3.SetBudget(1)
	if st := c3.Stats(); st.Bytes != 0 || st.Evictions != 1 {
		t.Errorf("pinned entry should leave the accounting at eviction, stats %+v", st)
	}
	if img3.Pix == nil {
		t.Fatal("pinned buffer recycled at eviction instead of at release")
	}
	release3()
	if img3.Pix != nil {
		t.Error("deferred pool return did not happen at the last release")
	}
}

func TestSceneCacheAcquireDownsampled(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindSchematic)
	img, release := c.AcquireDownsampled(s, 8)
	defer release()
	if c.Downsampled(s, 8) != img {
		t.Error("acquired and cached downsample disagree")
	}
	full, release1 := c.AcquireDownsampled(s, 1)
	defer release1()
	if full != c.Render(s) {
		t.Error("factor <= 1 should pin the full-resolution render entry")
	}
}

// TestSceneCacheConcurrentEviction churns a two-render budget from many
// goroutines mixing shared and pinned lookups; the mutex must keep the
// accounting consistent (run under -race) and peak bytes must never
// exceed the budget.
func TestSceneCacheConcurrentEviction(t *testing.T) {
	w := renderWeight(t)
	c := NewSceneCache()
	c.SetBudget(2 * w)
	scenes := []*Scene{
		sampleScene(KindSchematic), sampleScene(KindDiagram), sampleScene(KindLayout),
		sampleScene(KindCurve), sampleScene(KindTable), sampleScene(KindFlow),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, s := range scenes {
					if (g+i)%2 == 0 {
						img := c.Render(s) // shared: valid even after eviction
						_ = img.Pix[0]
					} else {
						img, release := c.AcquireRender(s)
						_ = img.Pix[0]
						release()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.PeakBytes > st.Budget {
		t.Errorf("peak %d exceeds budget %d", st.PeakBytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Error("six scenes under a two-render budget should evict")
	}
}

func TestSceneCacheConcurrent(t *testing.T) {
	c := NewSceneCache()
	scenes := []*Scene{
		sampleScene(KindSchematic),
		sampleScene(KindDiagram),
		sampleScene(KindLayout),
	}
	var wg sync.WaitGroup
	const goroutines = 16
	// Record pointer identities (image pointer, first loss element) so
	// we can check every goroutine saw the same cached artifacts.
	ptrs := make([][]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, s := range scenes {
				losses := c.CriticalLosses(s, 8)
				ptrs[g] = append(ptrs[g], c.Downsampled(s, 8), &losses[0])
			}
		}(g)
	}
	wg.Wait()
	// Every goroutine must observe the same cached artifacts.
	for g := 1; g < goroutines; g++ {
		for i := range ptrs[0] {
			if ptrs[g][i] != ptrs[0][i] {
				t.Fatalf("goroutine %d artifact %d differs", g, i)
			}
		}
	}
	// Each (scene, factor) computed once: 3 scenes x (render + 8x + losses).
	if st := c.Stats(); st.Misses != 9 {
		t.Errorf("misses %d, want 9 (%+v)", st.Misses, st)
	}
}

func TestCloneIsPrivate(t *testing.T) {
	s := sampleScene(KindSchematic)
	orig := CachedRender(s)
	cp := Clone(orig)
	if !bytes.Equal(orig.Pix, cp.Pix) {
		t.Fatal("clone differs from original")
	}
	before := orig.Pix[0]
	cp.Pix[0] = before ^ 0xff
	if orig.Pix[0] != before {
		t.Error("mutating the clone changed the cached image")
	}
}
