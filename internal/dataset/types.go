// Package dataset defines the ChipVQA benchmark data model: questions,
// answers, categories and the benchmark container, together with the
// Table I statistics machinery and the multiple-choice → short-answer
// "challenge" transform of §IV-A.
package dataset

import (
	"fmt"

	"repro/internal/visual"
)

// Category is one of the five chip-design disciplines of the benchmark.
type Category int

// The five disciplines, in the order of Table I.
const (
	Digital Category = iota
	Analog
	Architecture
	Manufacture
	Physical
	numCategories
)

// NumCategories is the number of disciplines.
const NumCategories = int(numCategories)

var categoryNames = [...]string{
	"Digital Design",
	"Analog Design",
	"Architecture",
	"Manufacture",
	"Physical Design",
}

var categoryShort = [...]string{"Digital", "Analog", "Architecture", "Manufacture", "Physical"}

// String returns the full Table I discipline name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Short returns the abbreviated name used in Table II column headers.
func (c Category) Short() string {
	if c < 0 || int(c) >= len(categoryShort) {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryShort[c]
}

// Categories lists all disciplines in Table I order.
func Categories() []Category {
	return []Category{Digital, Analog, Architecture, Manufacture, Physical}
}

// QType distinguishes the two question formats.
type QType int

// Question formats.
const (
	MultipleChoice QType = iota // four answer options presented in the prompt
	ShortAnswer                 // open-ended response
)

// String names the question type the way Table I abbreviates it.
func (t QType) String() string {
	if t == MultipleChoice {
		return "MC"
	}
	return "SA"
}

// AnswerKind says how a golden answer should be compared against a model
// response by the evaluation judge.
type AnswerKind int

// Golden answer kinds.
const (
	AnswerChoice     AnswerKind = iota // index into the question's Choices
	AnswerNumber                       // numeric value with unit and tolerance
	AnswerExpression                   // boolean expression, compared canonically
	AnswerPhrase                       // short free text with accepted synonyms
)

// Answer is the golden answer of a question.
type Answer struct {
	Kind AnswerKind

	// Choice is the index of the correct option for AnswerChoice.
	Choice int

	// Number, Unit and Tolerance describe an AnswerNumber golden value.
	// Tolerance is relative (0.02 = ±2%); zero means exact after
	// normalisation.
	Number    float64
	Unit      string
	Tolerance float64

	// Text holds the canonical expression or phrase for
	// AnswerExpression / AnswerPhrase, and the canonical text of the
	// correct option for AnswerChoice (used by the challenge transform).
	Text string

	// Accept lists additional strings the judge treats as equivalent.
	Accept []string
}

// Question is one VQA triplet: a text prompt, a visual, and a golden
// answer (plus four options when the question is multiple choice).
type Question struct {
	ID       string
	Category Category
	Type     QType
	Topic    string // free-form topic tag, e.g. "kmap", "bode", "steiner"

	Prompt  string
	Choices []string // exactly 4 entries for MultipleChoice, nil otherwise
	Golden  Answer

	Visual *visual.Scene

	// Challenge marks a question belonging to the challenge collection
	// (the §IV-A variant where every multiple-choice question was
	// rewritten as short answer). The two collections were evaluated in
	// separate runs in the paper, so a model's answer to the same
	// native short-answer question may differ between them.
	Challenge bool

	// Difficulty in (0,1]: 1 is hardest. Feeds the reasoning gate of the
	// simulated models; roughly "college course" (≤0.4) through
	// "practical research topic" (≥0.8) per the paper's framing.
	Difficulty float64
}

// Validate checks structural invariants of a question.
func (q *Question) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("dataset: question has empty ID")
	}
	if q.Category < 0 || q.Category >= numCategories {
		return fmt.Errorf("dataset: %s: bad category %d", q.ID, q.Category)
	}
	if q.Prompt == "" {
		return fmt.Errorf("dataset: %s: empty prompt", q.ID)
	}
	if q.Visual == nil {
		return fmt.Errorf("dataset: %s: no visual (every ChipVQA question has at least one)", q.ID)
	}
	switch q.Type {
	case MultipleChoice:
		if len(q.Choices) != 4 {
			return fmt.Errorf("dataset: %s: multiple choice needs 4 options, got %d", q.ID, len(q.Choices))
		}
		if q.Golden.Kind != AnswerChoice {
			return fmt.Errorf("dataset: %s: multiple choice golden answer must be AnswerChoice", q.ID)
		}
		if q.Golden.Choice < 0 || q.Golden.Choice >= len(q.Choices) {
			return fmt.Errorf("dataset: %s: golden choice %d out of range", q.ID, q.Golden.Choice)
		}
		if q.Golden.Text == "" {
			return fmt.Errorf("dataset: %s: golden Text must carry the correct option's content", q.ID)
		}
	case ShortAnswer:
		if len(q.Choices) != 0 {
			return fmt.Errorf("dataset: %s: short answer must not carry options", q.ID)
		}
		if q.Golden.Kind == AnswerChoice {
			return fmt.Errorf("dataset: %s: short answer golden cannot be AnswerChoice", q.ID)
		}
	default:
		return fmt.Errorf("dataset: %s: unknown question type %d", q.ID, q.Type)
	}
	if q.Difficulty <= 0 || q.Difficulty > 1 {
		return fmt.Errorf("dataset: %s: difficulty %v outside (0,1]", q.ID, q.Difficulty)
	}
	return nil
}

// Benchmark is an ordered collection of questions.
type Benchmark struct {
	Name      string
	Questions []*Question
}

// Len returns the number of questions.
func (b *Benchmark) Len() int { return len(b.Questions) }

// ByCategory groups the questions by discipline, preserving order.
func (b *Benchmark) ByCategory() map[Category][]*Question {
	m := make(map[Category][]*Question)
	for _, q := range b.Questions {
		m[q.Category] = append(m[q.Category], q)
	}
	return m
}

// Filter returns the questions for which keep reports true.
func (b *Benchmark) Filter(keep func(*Question) bool) []*Question {
	var out []*Question
	for _, q := range b.Questions {
		if keep(q) {
			out = append(out, q)
		}
	}
	return out
}

// Validate checks every question.
func (b *Benchmark) Validate() error {
	seen := make(map[string]bool, len(b.Questions))
	for _, q := range b.Questions {
		if err := q.Validate(); err != nil {
			return err
		}
		if seen[q.ID] {
			return fmt.Errorf("dataset: duplicate question ID %s", q.ID)
		}
		seen[q.ID] = true
	}
	return nil
}

// ChoiceLetter formats a choice index as the letter used in prompts.
func ChoiceLetter(i int) string { return string(rune('a' + i)) }

// FormatPrompt renders the full text prompt a model receives, appending
// lettered options for multiple-choice questions — the paper notes that
// these options act like retrieval-augmented context.
func (q *Question) FormatPrompt() string {
	if q.Type != MultipleChoice {
		return q.Prompt
	}
	s := q.Prompt
	for i, c := range q.Choices {
		s += fmt.Sprintf("\n%s) %s", ChoiceLetter(i), c)
	}
	return s
}
