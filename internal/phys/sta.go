package phys

import (
	"fmt"
	"sort"
)

// TimingGraph is a combinational timing DAG: nodes with pin delays and
// directed edges (net/cell arcs) with delays.
type TimingGraph struct {
	nodes map[string]bool
	succ  map[string][]timingArc
	pred  map[string][]timingArc
}

type timingArc struct {
	to    string
	delay float64
}

// NewTimingGraph returns an empty timing graph.
func NewTimingGraph() *TimingGraph {
	return &TimingGraph{
		nodes: make(map[string]bool),
		succ:  make(map[string][]timingArc),
		pred:  make(map[string][]timingArc),
	}
}

// AddArc adds a directed delay arc from a to b.
func (g *TimingGraph) AddArc(a, b string, delay float64) *TimingGraph {
	g.nodes[a] = true
	g.nodes[b] = true
	g.succ[a] = append(g.succ[a], timingArc{to: b, delay: delay})
	g.pred[b] = append(g.pred[b], timingArc{to: a, delay: delay})
	return g
}

// topoOrder returns a topological order, or an error on cycles.
func (g *TimingGraph) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	var names []string
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		indeg[n] = len(g.pred[n])
	}
	var queue []string
	for _, n := range names {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, a := range g.succ[n] {
			indeg[a.to]--
			if indeg[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("phys: timing graph has a cycle")
	}
	return order, nil
}

// TimingReport holds arrival and required times plus slack per node.
type TimingReport struct {
	Arrival  map[string]float64
	Required map[string]float64
	Slack    map[string]float64
	// CriticalPath lists the nodes of the worst path, source to sink.
	CriticalPath []string
	// WNS is the worst negative slack (or the smallest slack when all
	// paths meet timing).
	WNS float64
}

// Analyze performs static timing analysis against the clock period:
// forward arrival propagation, backward required propagation from sinks
// (required = period), and slack = required - arrival.
func (g *TimingGraph) Analyze(period float64) (*TimingReport, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	arr := make(map[string]float64, len(order))
	from := make(map[string]string, len(order))
	for _, n := range order {
		for _, a := range g.succ[n] {
			if t := arr[n] + a.delay; t > arr[a.to] || from[a.to] == "" {
				if t >= arr[a.to] {
					arr[a.to] = t
					from[a.to] = n
				}
			}
		}
	}
	req := make(map[string]float64, len(order))
	for _, n := range order {
		req[n] = period
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		for _, a := range g.succ[n] {
			if r := req[a.to] - a.delay; r < req[n] {
				req[n] = r
			}
		}
	}
	slack := make(map[string]float64, len(order))
	wns := period
	worstSink := ""
	for _, n := range order {
		slack[n] = req[n] - arr[n]
		if len(g.succ[n]) == 0 { // sink
			if s := period - arr[n]; s < wns || worstSink == "" {
				wns = s
				worstSink = n
			}
		}
	}
	// Trace critical path back from the worst sink.
	var path []string
	for cur := worstSink; cur != ""; cur = from[cur] {
		path = append([]string{cur}, path...)
		if _, ok := from[cur]; !ok {
			break
		}
	}
	return &TimingReport{
		Arrival:      arr,
		Required:     req,
		Slack:        slack,
		CriticalPath: path,
		WNS:          wns,
	}, nil
}

// CriticalDelay returns the longest source-to-sink delay.
func (g *TimingGraph) CriticalDelay() (float64, error) {
	r, err := g.Analyze(0)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for n, a := range r.Arrival {
		if len(g.succ[n]) == 0 && a > worst {
			worst = a
		}
	}
	return worst, nil
}

// UsefulSkew computes the maximum clock frequency gain from retiming a
// two-stage path: with path delays d1 (launch->mid) and d2 (mid->capture)
// the unskewed period is max(d1, d2); applying skew s to the mid flop
// balances them to (d1+d2)/2 when |d1-d2|/2 skew is legal.
func UsefulSkew(d1, d2 float64) (periodBefore, periodAfter, skew float64) {
	periodBefore = d1
	if d2 > d1 {
		periodBefore = d2
	}
	periodAfter = (d1 + d2) / 2
	skew = (d1 - d2) / 2
	return periodBefore, periodAfter, skew
}
