// Command chipvqa regenerates every table and figure of the ChipVQA
// paper from the reproduction:
//
//	chipvqa stats              Table I benchmark statistics
//	chipvqa stats -coverage    Fig. 1/3 discipline x visual coverage
//	chipvqa eval               Table II, standard collection
//	chipvqa challenge          Table II, challenge collection
//	chipvqa eval -gap          per-model MC vs SA gap (§IV-A RAG effect)
//	chipvqa agent              Table III agent study
//	chipvqa resolution         §IV-B image resolution study
//	chipvqa export -o FILE     benchmark as JSON
//	chipvqa pack -o FILE       extended fold in the compact binary format
//	chipvqa render -dir DIR    rasterise every question to PNG
//	chipvqa ask -model M -q ID one model on one question (with transcript)
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"image/png"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"testing"

	"repro"
	"repro/internal/agent"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/visual"
	"repro/internal/vlm"
)

// Exit codes follow the chipvqa-lint contract: 0 success, 1 runtime
// failure (including an interrupted evaluation, which still prints the
// partial report it has), 2 usage error. flag.ExitOnError FlagSets
// (newFlagSet) exit 2 with usage on stderr by construction.
func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the run's context: evaluation commands drain
	// cooperatively and report the consistent partial prefix they have
	// instead of dying mid-sweep, and `serve` begins its graceful drain.
	// Once the context is cancelled, stop() restores default signal
	// handling so a second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = cmdStats(ctx, args)
	case "eval":
		err = cmdEval(ctx, args)
	case "challenge":
		err = cmdChallenge(ctx, args)
	case "agent":
		err = cmdAgent(ctx, args)
	case "resolution":
		err = cmdResolution(ctx, args)
	case "export":
		err = cmdExport(ctx, args)
	case "render":
		err = cmdRender(ctx, args)
	case "ask":
		err = cmdAsk(ctx, args)
	case "extended":
		err = cmdExtended(ctx, args)
	case "pack":
		err = cmdPack(ctx, args)
	case "compare":
		err = cmdCompare(ctx, args)
	case "items":
		err = cmdItems(ctx, args)
	case "adaptive":
		err = cmdAdaptive(ctx, args)
	case "finetune":
		err = cmdFineTune(ctx, args)
	case "bench":
		err = cmdBench(ctx, args)
	case "benchdiff":
		err = cmdBenchDiff(ctx, args)
	case "serve":
		err = cmdServe(ctx, args)
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "chipvqa: unknown command %q\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipvqa:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks command-line misuse detected after flag parsing
// (wrong positional arity, contradictory flags); main exits 2 for it,
// matching the flag.ExitOnError contract for parse failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// usagef builds a usageError.
func usagef(format string, args ...any) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

// exitCode maps a command's error to the process exit code: 0 success,
// 1 runtime failure or regression finding, 2 usage error.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// newFlagSet builds a subcommand FlagSet with the shared contract:
// parse failures print the flag defaults to stderr and exit 2 (usage
// error), matching chipvqa-lint.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chipvqa %s [flags]\n", name)
		fs.PrintDefaults()
	}
	return fs
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: chipvqa <command> [flags]

commands:
  stats        Table I statistics (-coverage for the Fig. 1/3 matrix)
  eval         Table II zero-shot evaluation, standard collection (-gap for MC/SA gaps)
  challenge    Table II challenge collection (multiple choice removed)
  agent        Table III agent study
  resolution   image-resolution study of §IV-B (-model, -category)
  export       write the benchmark as JSON (-o file)
  render       rasterise question visuals to PNG (-dir out, -factor N)
  ask          run one model on one question (-model, -q, -agent)
  extended     generate an extended collection (-seed, -n per category, -o file;
               -packed file loads a .cvqb pack, -stream -eval evaluates shard-at-a-time,
               -cachebudget N caps scene-cache bytes)
  pack         write an extended fold in the compact binary format (-seed, -n, -o, -check)
  compare      paired McNemar test + bootstrap CIs between two models (-a, -b)
  finetune     domain-adaptation learning-curve study (-model)
  items        per-question difficulty and discrimination analysis (-k, -challenge,
               -json for the machine-readable chipvqa-items/1 document)
  adaptive     IRT adaptive evaluation over an extended fold: calibrate a 2PL item
               bank from the full grid, then early-stopping tournament
               (-seed, -n, -budget, -runseed)
  bench        time the evaluation engine and write a perf snapshot (-o file)
  benchdiff    compare two bench snapshots; non-zero exit on regression (-tol)
  serve        eval-as-a-service HTTP daemon (-addr, -max-sessions,
               -workers-per-session, -drain-timeout, -packed file, -accesslog file)

evaluation commands take -workers N: 0 = auto (GOMAXPROCS), 1 = serial.`)
}

// workersFlag registers the shared -workers knob: 0 (default) lets the
// engine pick GOMAXPROCS, 1 forces serial, N pins the pool size.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "evaluation workers (0 = auto/GOMAXPROCS, 1 = serial)")
}

// cmdStats only formats in-memory tables, so it takes no cancellation
// point: the blank context keeps the command signature uniform.
func cmdStats(_ context.Context, args []string) error {
	fs := newFlagSet("stats")
	coverage := fs.Bool("coverage", false, "print the category x visual-type coverage matrix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	if *coverage {
		fmt.Print(dataset.FormatCoverage(suite.Benchmark.CoverageMatrix()))
		return nil
	}
	fmt.Print(suite.FormatTableI())
	return nil
}

func cmdEval(ctx context.Context, args []string) error {
	fs := newFlagSet("eval")
	gap := fs.Bool("gap", false, "print per-model MC-vs-SA gap instead of the full table")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	suite.Workers = *workers
	with, without, runErr := suite.TableIIContext(ctx)
	if *gap {
		fmt.Printf("%-20s %8s %8s %8s\n", "Model", "w/ MC", "w/o MC", "gap")
		for i := range with {
			w, n := with[i].Pass1(), without[i].Pass1()
			fmt.Printf("%-20s %8.2f %8.2f %8.2f\n", with[i].ModelName, w, n, w-n)
		}
	} else {
		fmt.Println("TABLE II  Zero-Shot Evaluation on ChipVQA (w/ and w/o multiple choice)")
		fmt.Print(chipvqa.FormatTableII(with, without))
	}
	if runErr != nil {
		// Interrupted: the table above covers the deterministic prefix
		// the pipeline finished; exit 1 per the CLI contract.
		fmt.Println("(run interrupted — table covers the completed prefix only)")
		return runErr
	}
	return nil
}

func cmdChallenge(ctx context.Context, args []string) error {
	fs := newFlagSet("challenge")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	suite.Workers = *workers
	var reports []*chipvqa.Report
	var runErr error
	for _, name := range suite.ModelNames() {
		rep, err := suite.EvaluateChallengeContext(ctx, name)
		if err != nil {
			// Keep the partial report: the models (and questions) already
			// judged still form a consistent prefix worth printing.
			reports = append(reports, rep)
			runErr = err
			break
		}
		reports = append(reports, rep)
	}
	fmt.Println("ChipVQA challenge collection (all questions short answer)")
	fmt.Print(chipvqa.FormatTableII(reports, nil))
	if runErr != nil {
		fmt.Println("(run interrupted — table covers the completed prefix only)")
	}
	return runErr
}

func cmdAgent(ctx context.Context, args []string) error {
	fs := newFlagSet("agent")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	suite.Workers = *workers
	vals, err := suite.TableIIIContext(ctx)
	if err != nil {
		return err
	}
	fmt.Println("TABLE III  Evaluation of Agent System on ChipVQA")
	fmt.Printf("%-12s %-8s %8s\n", "Collection", "Model", "Pass@1")
	fmt.Printf("%-12s %-8s %8.2f\n", "With Choice", "GPT4o", vals[0])
	fmt.Printf("%-12s %-8s %8.2f\n", "", "Agent", vals[1])
	fmt.Printf("%-12s %-8s %8.2f\n", "No Choice", "GPT4o", vals[2])
	fmt.Printf("%-12s %-8s %8.2f\n", "", "Agent", vals[3])
	return nil
}

func cmdResolution(ctx context.Context, args []string) error {
	fs := newFlagSet("resolution")
	model := fs.String("model", "GPT4o", "model to evaluate")
	category := fs.String("category", "Digital", "category (short name) or 'all'")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	m, err := suite.Model(*model)
	if err != nil {
		return err
	}
	questions := suite.Benchmark.Filter(func(q *chipvqa.Question) bool {
		return *category == "all" || q.Category.Short() == *category
	})
	if len(questions) == 0 {
		return fmt.Errorf("no questions in category %q", *category)
	}
	sub := &dataset.Benchmark{Name: *category, Questions: questions}
	fmt.Printf("Resolution study (§IV-B): model=%s category=%s (%d questions)\n",
		*model, *category, len(questions))
	for _, f := range []int{1, 8, 16} {
		r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: f}, Workers: *workers}
		if *workers == 0 {
			r.Workers = -1 // auto
		}
		rep, err := r.EvaluateContext(ctx, m, sub)
		if err != nil {
			return err
		}
		fmt.Printf("  downsample %2dx: Pass@1 = %.2f\n", f, rep.Pass1())
	}
	return nil
}

func cmdExport(ctx context.Context, args []string) error {
	fs := newFlagSet("export")
	out := fs.String("o", "chipvqa.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err // interrupted before the file exists: leave nothing behind
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	err = suite.ExportJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr // a failed close loses buffered output; surface it
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d questions to %s\n", suite.Benchmark.Len(), *out)
	return nil
}

func cmdRender(ctx context.Context, args []string) error {
	fs := newFlagSet("render")
	dir := fs.String("dir", "renders", "output directory")
	factor := fs.Int("factor", 1, "downsample factor (1, 8, 16)")
	only := fs.String("q", "", "render only this question ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	count := 0
	for _, q := range suite.Benchmark.Questions {
		// One render per question can mean hundreds of files: honour
		// SIGINT between questions so an interrupted run stops at a
		// file boundary instead of plowing through the whole set.
		if err := ctx.Err(); err != nil {
			return err
		}
		if *only != "" && q.ID != *only {
			continue
		}
		// PNG encoding only reads pixels, so the shared cached image is
		// enough — no private clone per question.
		img := chipvqa.QuestionImage(q, *factor)
		path := filepath.Join(*dir, fmt.Sprintf("%s.png", q.ID))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = png.Encode(f, img)
		if cerr := f.Close(); err == nil {
			err = cerr // a failed close loses buffered pixels; surface it
		}
		if err != nil {
			return err
		}
		count++
	}
	fmt.Printf("rendered %d images to %s (factor %dx)\n", count, *dir, *factor)
	return nil
}

// cmdAsk evaluates one (model, question) pair — far too quick to need
// a cancellation point, hence the blank context.
func cmdAsk(_ context.Context, args []string) error {
	fs := newFlagSet("ask")
	model := fs.String("model", "GPT4o", "model name")
	qid := fs.String("q", "d01", "question ID")
	useAgent := fs.Bool("agent", false, "route through the agent system")
	challenge := fs.Bool("challenge", false, "use the challenge (no-choice) variant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	bench := suite.Benchmark
	if *challenge {
		bench = suite.ChallengeSet
	}
	var q *chipvqa.Question
	for _, cand := range bench.Questions {
		if cand.ID == *qid {
			q = cand
			break
		}
	}
	if q == nil {
		return fmt.Errorf("unknown question %q", *qid)
	}
	fmt.Printf("question %s [%s, %s, visual: %s]\n%s\n\n",
		q.ID, q.Category, q.Type, q.Visual.Kind, q.FormatPrompt())
	var resp string
	judge := eval.Judge{}
	if *useAgent {
		base, err := suite.Model(*model)
		if err != nil {
			return err
		}
		sim, ok := base.(*vlm.SimulatedVLM)
		if !ok {
			return fmt.Errorf("model %q cannot act as a vision tool", *model)
		}
		ag := agent.New(sim)
		var transcript []agent.ToolCall
		resp, transcript = ag.Run(q, eval.InferenceOptions{})
		fmt.Print(agent.FormatTranscript(transcript))
	} else {
		m, err := suite.Model(*model)
		if err != nil {
			return err
		}
		resp = m.Answer(q, eval.InferenceOptions{})
	}
	fmt.Printf("\nmodel response: %s\n", resp)
	fmt.Printf("judged correct: %v\n", judge.Correct(q, resp))
	return nil
}

func cmdExtended(ctx context.Context, args []string) error {
	fs := newFlagSet("extended")
	seed := fs.String("seed", "fold-a", "fold seed; different seeds give disjoint collections")
	n := fs.Int("n", 10, "questions per category")
	out := fs.String("o", "", "optional JSON output file")
	evalModels := fs.Bool("eval", false, "also evaluate all models on the extended collection")
	packed := fs.String("packed", "", "load the fold from a packed .cvqb file instead of generating")
	stream := fs.Bool("stream", false, "with -eval: evaluate shard-at-a-time, never holding the fold in memory")
	shardSize := fs.Int("shard", 512, "shard size for -stream")
	budget := fs.Int64("cachebudget", 0, "scene-cache byte budget (0 = unlimited)")
	downsample := fs.Int("downsample", 1, "image downsample factor for evaluation (1 = full resolution; §IV-B uses 8 and 16)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	if *budget > 0 {
		chipvqa.SetRenderCacheBudget(*budget)
	}
	if *stream && (*out != "" || !*evalModels) {
		return fmt.Errorf("-stream requires -eval and is incompatible with -o (the fold is never materialised)")
	}
	// shardStream drives the streaming path from whichever producer was
	// asked for: shards decoded from a pack, or shards regenerated from
	// the seed.
	shardStream := func(yield func(chipvqa.Shard) error) error {
		if *packed != "" {
			f, err := os.Open(*packed)
			if err != nil {
				return err
			}
			err = dataset.StreamPack(f, *shardSize, yield)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}
		return chipvqa.StreamExtended(*seed, *n, *shardSize, yield)
	}
	if *stream {
		r := eval.Runner{Workers: *workers, Opts: eval.InferenceOptions{DownsampleFactor: *downsample}}
		if *workers == 0 {
			r.Workers = -1 // auto
		}
		var models []chipvqa.Model
		for _, name := range suite.ModelNames() {
			m, err := suite.Model(name)
			if err != nil {
				return err
			}
			models = append(models, m)
		}
		reports := make([]*chipvqa.Report, len(models))
		for i := range reports {
			reports[i] = &chipvqa.Report{}
		}
		total := 0
		err := r.EvaluateShardsContext(ctx, models, func(yield func(chipvqa.Shard) error) error {
			return shardStream(func(sh chipvqa.Shard) error {
				total += len(sh.Questions)
				return yield(sh)
			})
		}, reports)
		fmt.Printf("streamed %d questions (shard size %d)\n", total, *shardSize)
		fmt.Print(chipvqa.FormatTableII(reports, nil))
		if *budget > 0 {
			st := chipvqa.RenderCacheStats()
			fmt.Printf("scene cache: peak %d bytes of %d budget, %d evictions\n",
				st.PeakBytes, st.Budget, st.Evictions)
		}
		if err != nil {
			fmt.Println("(run interrupted — table covers the completed prefix only)")
			return err
		}
		return nil
	}
	var ext *chipvqa.Benchmark
	if *packed != "" {
		data, err := os.ReadFile(*packed)
		if err != nil {
			return err
		}
		if ext, err = dataset.ReadPackBytes(data); err != nil {
			return fmt.Errorf("%s: %w", *packed, err)
		}
	} else if ext, err = suite.Extended(*seed, *n); err != nil {
		return err
	}
	stats := ext.ComputeStats()
	fmt.Printf("extended collection %q: %d questions (%d MC / %d SA)\n",
		ext.Name, stats.Total, stats.MC, stats.SA)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		err = ext.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr // a failed close loses buffered output; surface it
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *evalModels {
		r := eval.Runner{Workers: *workers, Opts: eval.InferenceOptions{DownsampleFactor: *downsample}}
		if *workers == 0 {
			r.Workers = -1 // auto
		}
		var models []chipvqa.Model
		for _, name := range suite.ModelNames() {
			m, err := suite.Model(name)
			if err != nil {
				return err
			}
			models = append(models, m)
		}
		reports, err := r.EvaluateAllContext(ctx, models, ext)
		fmt.Print(chipvqa.FormatTableII(reports, nil))
		if *budget > 0 {
			st := chipvqa.RenderCacheStats()
			fmt.Printf("scene cache: peak %d bytes of %d budget, %d evictions\n",
				st.PeakBytes, st.Budget, st.Evictions)
		}
		if err != nil {
			fmt.Println("(run interrupted — table covers the completed prefix only)")
			return err
		}
	}
	return nil
}

// cmdPack writes an extended fold in the compact binary pack format,
// streaming shards straight into the encoder so the fold is never held
// in memory whole. -check reloads the file through the full validation
// path (CRC, framing, per-question Validate) and times the cold load.
func cmdPack(ctx context.Context, args []string) error {
	fs := newFlagSet("pack")
	seed := fs.String("seed", "fold-a", "fold seed; different seeds give disjoint collections")
	n := fs.Int("n", 10, "questions per category")
	shardSize := fs.Int("shard", 512, "shard size for the streaming writer")
	out := fs.String("o", "chipvqa.cvqb", "packed output file")
	check := fs.Bool("check", false, "read the pack back and verify it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	pw := dataset.NewPackWriter(f, fmt.Sprintf("ChipVQA-extended-%s", *seed))
	count := 0
	start := now()
	err = chipvqa.StreamExtended(*seed, *n, *shardSize, func(sh chipvqa.Shard) error {
		// Shards stream for as long as -n asks; stop at a shard
		// boundary when interrupted instead of finishing the fold.
		if err := ctx.Err(); err != nil {
			return err
		}
		count += len(sh.Questions)
		return pw.WriteShard(sh)
	})
	if cerr := pw.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr // a failed close loses buffered bytes; surface it
	}
	if err != nil {
		return err
	}
	elapsed := now().Sub(start)
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("packed %d questions (%d bytes) to %s in %.0f ms\n",
		count, info.Size(), *out, float64(elapsed.Nanoseconds())/1e6)
	if *check {
		data, err := os.ReadFile(*out)
		if err != nil {
			return err
		}
		start = now()
		loaded, err := dataset.ReadPackBytes(data)
		if err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		loadMS := float64(now().Sub(start).Nanoseconds()) / 1e6
		if loaded.Len() != count {
			return fmt.Errorf("check failed: loaded %d questions, packed %d", loaded.Len(), count)
		}
		fmt.Printf("check: loaded %d questions in %.0f ms (CRC and per-question validation passed)\n",
			loaded.Len(), loadMS)
	}
	return nil
}

func cmdCompare(ctx context.Context, args []string) error {
	fs := newFlagSet("compare")
	a := fs.String("a", "GPT4o", "first model")
	b := fs.String("b", "LLaMA-3.2-90B", "second model")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	suite.Workers = *workers
	res, cis, err := suite.CompareContext(ctx, *a, *b)
	if err != nil {
		return err
	}
	fmt.Printf("%s: Pass@1 %s\n", *a, cis[0])
	fmt.Printf("%s: Pass@1 %s\n", *b, cis[1])
	fmt.Printf("McNemar (paired, continuity-corrected): %s\n", res)
	if res.Significant(0.05) {
		fmt.Println("difference is significant at the 5% level")
	} else {
		fmt.Println("difference is NOT significant at the 5% level on 142 questions")
	}
	return nil
}

func cmdFineTune(ctx context.Context, args []string) error {
	fs := newFlagSet("finetune")
	model := fs.String("model", "LLaVA-7b", "base model to adapt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	base, err := suite.Model(*model)
	if err != nil {
		return err
	}
	sim, ok := base.(*vlm.SimulatedVLM)
	if !ok {
		return fmt.Errorf("model %q cannot be fine-tuned", *model)
	}
	pool, err := suite.Extended("train-pool", 30)
	if err != nil {
		return err
	}
	test, err := suite.Extended("test-fold", 10)
	if err != nil {
		return err
	}
	fmt.Printf("domain-adaptation study: base=%s, train pool=%d, held-out test=%d\n",
		*model, pool.Len(), test.Len())
	// The learning-curve sweep evaluates five adapted models; bail out
	// before it rather than after an interrupt has been ignored.
	if err := ctx.Err(); err != nil {
		return err
	}
	curve := vlm.LearningCurve(sim, pool, test, []int{0, 5, 10, 20, 30}, vlm.DefaultTraining())
	for _, pt := range curve {
		fmt.Printf("  train %2d/category: held-out Pass@1 = %.3f\n", pt.TrainPerCategory, pt.Pass1)
	}
	fmt.Println("(simulated adaptation; see DESIGN.md for the exposure model)")
	return nil
}

func cmdItems(ctx context.Context, args []string) error {
	fs := newFlagSet("items")
	k := fs.Int("k", 10, "how many hardest items to list")
	challenge := fs.Bool("challenge", false, "analyse the challenge collection instead")
	asJSON := fs.Bool("json", false, "emit the machine-readable chipvqa-items/1 document instead of text")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	bench := suite.Benchmark
	collection := "standard"
	if *challenge {
		bench = suite.ChallengeSet
		collection = "challenge"
	}
	r := eval.Runner{Workers: *workers}
	if *workers == 0 {
		r.Workers = -1 // auto
	}
	var models []chipvqa.Model
	for _, name := range suite.ModelNames() {
		m, err := suite.Model(name)
		if err != nil {
			return err
		}
		models = append(models, m)
	}
	// Item statistics over a truncated grid would be silently biased, so
	// an interrupted run aborts instead of analysing the partial prefix.
	reports, err := r.EvaluateAllContext(ctx, models, bench)
	if err != nil {
		return err
	}
	items, err := eval.ItemAnalysis(reports)
	if err != nil {
		return err
	}
	if *asJSON {
		return writeItemsJSON(os.Stdout, collection, len(models), items)
	}
	fmt.Print(eval.FormatItemReport(items, *k))
	return nil
}

// itemsDocument is the machine-readable form of the item analysis. The
// schema is versioned like the bench snapshots, items are sorted by
// QuestionID and solver lists alphabetically, so the document is
// byte-stable across runs and worker counts.
type itemsDocument struct {
	Schema     string       `json:"schema"`
	Collection string       `json:"collection"`
	Models     int          `json:"models"`
	Items      []itemRecord `json:"items"`
}

type itemRecord struct {
	QuestionID     string   `json:"question_id"`
	Category       string   `json:"category"`
	Difficulty     float64  `json:"difficulty"`
	Discrimination float64  `json:"discrimination"`
	CorrectModels  []string `json:"correct_models"`
}

func writeItemsJSON(w io.Writer, collection string, nModels int, items []eval.ItemStats) error {
	doc := itemsDocument{
		Schema:     "chipvqa-items/1",
		Collection: collection,
		Models:     nModels,
		Items:      make([]itemRecord, 0, len(items)),
	}
	for _, it := range items {
		solvers := append([]string(nil), it.CorrectModels...)
		sort.Strings(solvers)
		if solvers == nil {
			solvers = []string{} // unsolved items serialise as [], not null
		}
		doc.Items = append(doc.Items, itemRecord{
			QuestionID:     it.QuestionID,
			Category:       it.Category.String(),
			Difficulty:     it.Difficulty,
			Discrimination: it.Discrimination,
			CorrectModels:  solvers,
		})
	}
	sort.Slice(doc.Items, func(i, j int) bool {
		return doc.Items[i].QuestionID < doc.Items[j].QuestionID
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func cmdAdaptive(ctx context.Context, args []string) error {
	fs := newFlagSet("adaptive")
	seed := fs.String("seed", "fold-j", "extended-fold seed to calibrate and tournament against")
	n := fs.Int("n", 30, "questions per category in the extended fold")
	budget := fs.Int("budget", 0, "total question budget across all models (0 = a third of the full grid)")
	runSeed := fs.String("runseed", "", "tournament tie-break seed (default \"adaptive\")")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	suite.Workers = *workers
	cfg := chipvqa.AdaptiveConfig{Seed: *runSeed, TotalBudget: *budget}
	res, runErr := suite.AdaptiveContext(ctx, *seed, *n, cfg)
	if runErr != nil && res == nil {
		return runErr
	}
	fmt.Printf("ADAPTIVE  IRT tournament over extended fold %q (%d models, %d-question bank)\n",
		*seed, len(res.Standings), res.GridQuestions/max(len(res.Standings), 1))
	standings := append([]chipvqa.AdaptiveStanding(nil), res.Standings...)
	sort.Slice(standings, func(i, j int) bool {
		if standings[i].Ability != standings[j].Ability {
			return standings[i].Ability > standings[j].Ability
		}
		return standings[i].Model < standings[j].Model
	})
	fmt.Printf("%-20s %8s %6s %6s  %s\n", "Model", "ability", "se", "asked", "stop")
	for _, s := range standings {
		fmt.Printf("%-20s %8.3f %6.3f %6d  %s\n", s.Model, s.Ability, s.SE, s.Asked, s.StopReason)
	}
	fmt.Printf("questions asked %d / %d full grid (%.1f%%)\n",
		res.QuestionsAsked, res.GridQuestions,
		100*float64(res.QuestionsAsked)/float64(max(res.GridQuestions, 1)))
	if res.RankAgreement == res.RankAgreement { // not NaN
		fmt.Printf("rank agreement vs full-grid Pass@1: %.3f\n", res.RankAgreement)
	}
	if runErr != nil {
		fmt.Println("(run interrupted — standings cover the recorded prefix only)")
		return runErr
	}
	return nil
}

// benchSnapshot is the schema of the repo's recorded perf trajectory
// (BENCH_1.json and successors): wall time of the headline Table II
// sweep under the serial and parallel engines, the cached render path,
// the zero-alloc judge/normalise hot paths, and the scene-cache
// effectiveness counters. Schema v3 adds an *_allocs_per_op sibling to
// every benchmarked *_ns_per_op field (allocation regressions are as
// real as time regressions on the hot paths of DESIGN.md §12), the
// judge/normalise micro-benchmarks, and the sharded table_ii_grid
// section recording the same grid sweep at worker counts 1/2/4/8 with
// a byte-identity assertion across them. Schema v4 adds the scale
// section of DESIGN.md §13: binary-pack encode/decode times at 10k
// questions, the cold-load-vs-regeneration speedup, streaming-eval
// throughput at 10k and 100k questions, and the scene-cache byte
// pressure of the budgeted streaming run. Schema v5 adds the adaptive
// section of DESIGN.md §15: the IRT tournament's question count
// against the full grid and its rank agreement with the full-grid
// ranking — benchdiff fails on any rank-agreement decrease.
type benchSnapshot struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Table II standard collection: 12 models x 142 questions. The
	// parallel run is pinned to GOMAXPROCS = NumCPU so snapshots taken
	// under a restricted GOMAXPROCS still record the machine's capability.
	TableIISerialNsPerOp       int64   `json:"table_ii_serial_ns_per_op"`
	TableIISerialAllocsPerOp   int64   `json:"table_ii_serial_allocs_per_op"`
	TableIIParallelNsPerOp     int64   `json:"table_ii_parallel_ns_per_op"`
	TableIIParallelAllocsPerOp int64   `json:"table_ii_parallel_allocs_per_op"`
	TableIISpeedup             float64 `json:"table_ii_speedup"`

	// Sharded grid sweep: the full (model, question) grid through
	// EvaluateAllInto at fixed worker counts. The digest of every
	// sharded run is asserted byte-identical to the workers=1 run
	// before timing; the scaling is recorded but not asserted (a 1-CPU
	// host legitimately shows none).
	TableIIGrid []gridPoint `json:"table_ii_grid"`

	// §IV-B-style 16x resolution pass over the full collection: cold is
	// the first pass after a cache reset (pays every scene derivation),
	// warm is the steady state.
	Resolution16ColdNs          int64 `json:"resolution16_cold_ns"`
	Resolution16WarmNsPerOp     int64 `json:"resolution16_warm_ns_per_op"`
	Resolution16WarmAllocsPerOp int64 `json:"resolution16_warm_allocs_per_op"`

	// Raster kernel, no cache: rasterise every question's scene from
	// scratch and hand each frame back to the pixel pool. This is the
	// span kernel's headline number.
	RenderAllColdNsPerOp     int64 `json:"render_all_cold_ns_per_op"`
	RenderAllColdAllocsPerOp int64 `json:"render_all_cold_allocs_per_op"`

	// Rendering every question at 8x through the scene cache: warm is
	// the zero-copy QuestionImage accessor, clone is RenderQuestion's
	// private copy — the gap is the per-call cost of cloning.
	RenderAll8xWarmNsPerOp      int64 `json:"render_all_8x_warm_ns_per_op"`
	RenderAll8xWarmAllocsPerOp  int64 `json:"render_all_8x_warm_allocs_per_op"`
	RenderAll8xCloneNsPerOp     int64 `json:"render_all_8x_clone_ns_per_op"`
	RenderAll8xCloneAllocsPerOp int64 `json:"render_all_8x_clone_allocs_per_op"`

	// 2000-resample bootstrap CI over one report (chunk-parallel,
	// batched binomial resampling).
	BootstrapCINsPerOp     int64 `json:"bootstrap_ci_ns_per_op"`
	BootstrapCIAllocsPerOp int64 `json:"bootstrap_ci_allocs_per_op"`

	// Judging all 142 stored (question, response) pairs of one report,
	// and re-normalising the 142 canonical golden texts: the zero-alloc
	// hot paths — both allocs_per_op fields must be 0 in the steady
	// state (TestJudgeZeroAlloc / TestNormalizeZeroAlloc pin this).
	JudgeAllNsPerOp      int64 `json:"judge_all_ns_per_op"`
	JudgeAllAllocsPerOp  int64 `json:"judge_all_allocs_per_op"`
	NormalizeNsPerOp     int64 `json:"normalize_ns_per_op"`
	NormalizeAllocsPerOp int64 `json:"normalize_allocs_per_op"`

	RenderCacheHits    uint64  `json:"render_cache_hits"`
	RenderCacheMisses  uint64  `json:"render_cache_misses"`
	RenderCacheHitRate float64 `json:"render_cache_hit_rate"`

	// Scale section (schema v4). pack_10k_cold_ns generates and encodes
	// a 10k-question fold; pack_load_10k_ns cold-decodes the same bytes;
	// the speedup is their ratio (the codec's reason to exist — see the
	// >= 10x gate in internal/core). Streaming-eval throughput runs one
	// model shard-at-a-time under a 1 MiB scene-cache budget; generation
	// is inline, so qps is the end-to-end streaming number. The cache
	// fields record the byte pressure of the 100k run.
	Pack10kColdNs        int64   `json:"pack_10k_cold_ns"`
	Pack10kBytes         int64   `json:"pack_10k_bytes"`
	PackLoad10kNs        int64   `json:"pack_load_10k_ns"`
	PackLoad10kSpeedup   float64 `json:"pack_load_10k_speedup"`
	StreamEval10kQPS     float64 `json:"stream_eval_10k_qps"`
	StreamEval100kQPS    float64 `json:"stream_eval_100k_qps"`
	StreamCacheBudget    int64   `json:"stream_cache_budget_bytes"`
	StreamCachePeakBytes int64   `json:"stream_cache_peak_bytes"`
	StreamCacheEvictions uint64  `json:"stream_cache_evictions"`

	// Adaptive section (schema v5): the acceptance-fold IRT tournament.
	// adaptive_rank_agreement compares the adaptive ability ranking to
	// the full-grid Pass@1 ranking (1.0 = every strict pair reproduced)
	// and is quality-gated by benchdiff: any decrease fails the diff.
	AdaptiveQuestionsAsked    int     `json:"adaptive_questions_asked"`
	AdaptiveFullGridQuestions int     `json:"adaptive_full_grid_questions"`
	AdaptiveRankAgreement     float64 `json:"adaptive_rank_agreement"`
	AdaptiveNs                int64   `json:"adaptive_ns"`
}

// gridPoint is one worker-count sample of the sharded grid sweep.
type gridPoint struct {
	Workers     int   `json:"workers"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// reportsDigest condenses a report set into a hash covering everything
// determinism guarantees: model order, question order, responses and
// verdicts. Two runs are byte-identical iff their digests match.
func reportsDigest(reports []*chipvqa.Report) string {
	h := sha256.New()
	for _, r := range reports {
		_, _ = h.Write([]byte(r.ModelName))
		for _, q := range r.Results {
			_, _ = h.Write([]byte{0})
			_, _ = h.Write([]byte(q.QuestionID))
			_, _ = h.Write([]byte(q.Response))
			if q.Correct {
				_, _ = h.Write([]byte{1})
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func cmdBench(ctx context.Context, args []string) error {
	fs := newFlagSet("bench")
	out := fs.String("o", "BENCH_1.json", "snapshot output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	names := suite.ModelNames()
	tableII := func(workers int) testing.BenchmarkResult {
		suite.Workers = workers
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, name := range names {
					if _, err := suite.Evaluate(name); err != nil {
						panic(err)
					}
				}
			}
		})
	}
	fmt.Println("timing Table II sweep (12 models x 142 questions)...")
	serial := tableII(1)
	// Pin the parallel run to the machine's full core count even when the
	// process was started with a lower GOMAXPROCS, then restore.
	prevProcs := runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := tableII(-1)
	runtime.GOMAXPROCS(prevProcs)

	// Resolution study: cold pass pays every (scene, factor) derivation
	// once; the warm steady state reuses them across models and runs.
	suite.Workers = -1
	chipvqa.ResetRenderCache()
	start := now()
	if _, err := suite.EvaluateAtResolution("GPT4o", 16); err != nil {
		return err
	}
	cold := now().Sub(start)
	res16 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := suite.EvaluateAtResolution("GPT4o", 16); err != nil {
				panic(err)
			}
		}
	})
	renderCold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range suite.Benchmark.Questions {
				img := visual.Render(q.Visual)
				visual.ReleaseImage(img)
			}
		}
	})
	render8 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range suite.Benchmark.Questions {
				_ = chipvqa.QuestionImage(q, 8)
			}
		}
	})
	render8Clone := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range suite.Benchmark.Questions {
				img := chipvqa.RenderQuestion(q, 8)
				visual.ReleaseImage(img) // caller-owned clone, safe to recycle
			}
		}
	})
	rep, err := suite.Evaluate("GPT4o")
	if err != nil {
		return err
	}
	boot := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = rep.BootstrapCI(2000, 0.95)
		}
	})

	// Judge hot path: re-judge every stored (question, response) pair of
	// the GPT4o report. Steady-state allocs/op must be 0 (the scratch
	// buffers and expression memo absorb everything after warm-up).
	qByID := make(map[string]*chipvqa.Question, len(suite.Benchmark.Questions))
	for _, q := range suite.Benchmark.Questions {
		qByID[q.ID] = q
	}
	judge := eval.Judge{}
	for _, qr := range rep.Results { // warm-up: grow buffers, fill memo
		judge.Correct(qByID[qr.QuestionID], qr.Response)
	}
	judgeRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, qr := range rep.Results {
				judge.Correct(qByID[qr.QuestionID], qr.Response)
			}
		}
	})
	// Normalise hot path over canonical inputs: the fast-path gate must
	// return every golden text unchanged without allocating.
	norms := make([]string, 0, len(suite.Benchmark.Questions))
	for _, q := range suite.Benchmark.Questions {
		norms = append(norms, eval.Normalize(q.Golden.Text))
	}
	normRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range norms {
				_ = eval.Normalize(s)
			}
		}
	})

	// Sharded grid sweep: the digest of every worker count must match
	// the workers=1 run byte for byte before any timing is recorded.
	fmt.Println("timing sharded grid sweep (workers 1/2/4/8)...")
	models := make([]chipvqa.Model, 0, len(names))
	for _, name := range names {
		m, err := suite.Model(name)
		if err != nil {
			return err
		}
		models = append(models, m)
	}
	var grid []gridPoint
	var baseDigest string
	for _, w := range []int{1, 2, 4, 8} {
		r := eval.Runner{Workers: w}
		reports, err := r.EvaluateAllContext(ctx, models, suite.Benchmark)
		if err != nil {
			return err
		}
		d := reportsDigest(reports)
		switch {
		case baseDigest == "":
			baseDigest = d
		case d != baseDigest:
			return fmt.Errorf("grid sweep not deterministic: workers=%d digest %s != workers=1 digest %s",
				w, d, baseDigest)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.EvaluateAllInto(ctx, models, suite.Benchmark, reports); err != nil {
					panic(err)
				}
			}
		})
		grid = append(grid, gridPoint{Workers: w, NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()})
	}
	stats := chipvqa.RenderCacheStats()

	// Scale section (schema v4). Captured after the cache counters above
	// so the budgeted streaming runs (which reset the cache) don't
	// clobber the sweep's hit/miss record.
	fmt.Println("timing pack codec and streaming evaluation (10k/100k)...")
	const packPerCat = 2000 // 10k questions
	var packBuf bytes.Buffer
	pw := dataset.NewPackWriter(&packBuf, "bench-pack")
	start = now()
	if err := chipvqa.StreamExtended("bench-pack", packPerCat, 512, pw.WriteShard); err != nil {
		return err
	}
	if err := pw.Close(); err != nil {
		return err
	}
	packCold := now().Sub(start)
	start = now()
	if _, err := dataset.ReadPackBytes(packBuf.Bytes()); err != nil {
		return err
	}
	packLoad := now().Sub(start)

	const streamBudget = 1 << 20
	var streamCache visual.CacheStats
	streamQPS := func(perCat int) (float64, error) {
		chipvqa.ResetRenderCache()
		chipvqa.SetRenderCacheBudget(streamBudget)
		m, err := suite.Model("GPT4o")
		if err != nil {
			return 0, err
		}
		r := eval.Runner{Workers: -1, Opts: eval.InferenceOptions{DownsampleFactor: 8}}
		start := now()
		reports, err := r.EvaluateShards([]chipvqa.Model{m}, func(yield func(chipvqa.Shard) error) error {
			return chipvqa.StreamExtended("bench-stream", perCat, 1024, yield)
		})
		elapsed := now().Sub(start)
		streamCache = chipvqa.RenderCacheStats()
		chipvqa.SetRenderCacheBudget(0)
		chipvqa.ResetRenderCache()
		if err != nil {
			return 0, err
		}
		return float64(len(reports[0].Results)) / elapsed.Seconds(), nil
	}
	qps10k, err := streamQPS(2000)
	if err != nil {
		return err
	}
	qps100k, err := streamQPS(20000)
	if err != nil {
		return err
	}

	// Adaptive section (schema v5): the acceptance-fold tournament —
	// calibrate on the fold's full grid, then tournament the zoo with a
	// third of the grid's question budget. The timing covers both halves.
	fmt.Println("timing adaptive IRT tournament (acceptance fold)...")
	suite.Workers = -1
	start = now()
	adp, err := suite.AdaptiveContext(ctx, "fold-j", 30, chipvqa.AdaptiveConfig{Seed: "acceptance"})
	if err != nil {
		return err
	}
	adaptiveNs := now().Sub(start).Nanoseconds()

	snap := benchSnapshot{
		Schema:                      "chipvqa-bench/5",
		Date:                        snapshotDate(),
		GoMaxProcs:                  runtime.GOMAXPROCS(0),
		NumCPU:                      runtime.NumCPU(),
		TableIISerialNsPerOp:        serial.NsPerOp(),
		TableIISerialAllocsPerOp:    serial.AllocsPerOp(),
		TableIIParallelNsPerOp:      parallel.NsPerOp(),
		TableIIParallelAllocsPerOp:  parallel.AllocsPerOp(),
		TableIIGrid:                 grid,
		Resolution16ColdNs:          cold.Nanoseconds(),
		Resolution16WarmNsPerOp:     res16.NsPerOp(),
		Resolution16WarmAllocsPerOp: res16.AllocsPerOp(),
		RenderAllColdNsPerOp:        renderCold.NsPerOp(),
		RenderAllColdAllocsPerOp:    renderCold.AllocsPerOp(),
		RenderAll8xWarmNsPerOp:      render8.NsPerOp(),
		RenderAll8xWarmAllocsPerOp:  render8.AllocsPerOp(),
		RenderAll8xCloneNsPerOp:     render8Clone.NsPerOp(),
		RenderAll8xCloneAllocsPerOp: render8Clone.AllocsPerOp(),
		BootstrapCINsPerOp:          boot.NsPerOp(),
		BootstrapCIAllocsPerOp:      boot.AllocsPerOp(),
		JudgeAllNsPerOp:             judgeRes.NsPerOp(),
		JudgeAllAllocsPerOp:         judgeRes.AllocsPerOp(),
		NormalizeNsPerOp:            normRes.NsPerOp(),
		NormalizeAllocsPerOp:        normRes.AllocsPerOp(),
		RenderCacheHits:             stats.Hits,
		RenderCacheMisses:           stats.Misses,
		RenderCacheHitRate:          stats.HitRate(),
		Pack10kColdNs:               packCold.Nanoseconds(),
		Pack10kBytes:                int64(packBuf.Len()),
		PackLoad10kNs:               packLoad.Nanoseconds(),
		StreamEval10kQPS:            qps10k,
		StreamEval100kQPS:           qps100k,
		StreamCacheBudget:           streamBudget,
		StreamCachePeakBytes:        streamCache.PeakBytes,
		StreamCacheEvictions:        streamCache.Evictions,
		AdaptiveQuestionsAsked:      adp.QuestionsAsked,
		AdaptiveFullGridQuestions:   adp.GridQuestions,
		AdaptiveRankAgreement:       adp.RankAgreement,
		AdaptiveNs:                  adaptiveNs,
	}
	if parallel.NsPerOp() > 0 {
		snap.TableIISpeedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	}
	if packLoad > 0 {
		snap.PackLoad10kSpeedup = float64(packCold.Nanoseconds()) / float64(packLoad.Nanoseconds())
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("Table II: serial %.1f ms/op, parallel %.1f ms/op (%.2fx, NumCPU=%d)\n",
		float64(snap.TableIISerialNsPerOp)/1e6, float64(snap.TableIIParallelNsPerOp)/1e6,
		snap.TableIISpeedup, snap.NumCPU)
	fmt.Printf("16x resolution: cold %.1f ms, warm %.1f ms/op\n",
		float64(snap.Resolution16ColdNs)/1e6, float64(snap.Resolution16WarmNsPerOp)/1e6)
	fmt.Printf("render all 142: cold %.1f ms/op; 8x warm %.3f ms/op, 8x clone %.3f ms/op\n",
		float64(snap.RenderAllColdNsPerOp)/1e6,
		float64(snap.RenderAll8xWarmNsPerOp)/1e6, float64(snap.RenderAll8xCloneNsPerOp)/1e6)
	fmt.Printf("bootstrap CI: %.3f ms/op (%d allocs/op)\n",
		float64(snap.BootstrapCINsPerOp)/1e6, snap.BootstrapCIAllocsPerOp)
	fmt.Printf("judge 142 pairs: %.1f us/op (%d allocs/op); normalize 142: %.1f us/op (%d allocs/op)\n",
		float64(snap.JudgeAllNsPerOp)/1e3, snap.JudgeAllAllocsPerOp,
		float64(snap.NormalizeNsPerOp)/1e3, snap.NormalizeAllocsPerOp)
	for _, g := range snap.TableIIGrid {
		fmt.Printf("grid workers=%d: %.1f ms/op (%d allocs/op)\n",
			g.Workers, float64(g.NsPerOp)/1e6, g.AllocsPerOp)
	}
	fmt.Printf("render cache: %d hits / %d misses (%.1f%% hit rate)\n",
		stats.Hits, stats.Misses, 100*stats.HitRate())
	fmt.Printf("pack 10k: encode %.0f ms (%d bytes), cold load %.1f ms (%.1fx)\n",
		float64(snap.Pack10kColdNs)/1e6, snap.Pack10kBytes,
		float64(snap.PackLoad10kNs)/1e6, snap.PackLoad10kSpeedup)
	fmt.Printf("stream eval: %.0f q/s at 10k, %.0f q/s at 100k (cache peak %d of %d budget, %d evictions)\n",
		snap.StreamEval10kQPS, snap.StreamEval100kQPS,
		snap.StreamCachePeakBytes, snap.StreamCacheBudget, snap.StreamCacheEvictions)
	fmt.Printf("adaptive: %d of %d questions (%.1f%%), rank agreement %.3f, %.0f ms total\n",
		snap.AdaptiveQuestionsAsked, snap.AdaptiveFullGridQuestions,
		100*float64(snap.AdaptiveQuestionsAsked)/float64(max(snap.AdaptiveFullGridQuestions, 1)),
		snap.AdaptiveRankAgreement, float64(snap.AdaptiveNs)/1e6)
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// cmdBenchDiff compares two bench snapshots field by field:
// `chipvqa benchdiff OLD.json NEW.json`. A regression — any
// *_ns_per_op growing more than 20%, any *_allocs_per_op growing at
// all, or any *rank_agreement decreasing at all — makes the command
// fail, which is what lets scripts/benchdiff.sh gate on it. Fields present in only one snapshot (schema evolution)
// are reported informationally and never fail the diff, so snapshots
// with different schema versions diff on their shared fields. When the
// two snapshots were taken on machines with different num_cpu, timing
// fields are not comparable: they are printed with a skipped-field
// note and never counted as regressions (allocs/op is
// machine-independent and still gates).
// cmdBenchDiff compares two small JSON files — no cancellation point
// needed, hence the blank context.
func cmdBenchDiff(_ context.Context, args []string) error {
	fs := newFlagSet("benchdiff")
	tol := fs.Float64("tol", 0.20, "allowed fractional ns/op growth before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usagef("usage: chipvqa benchdiff OLD.json NEW.json")
	}
	oldSnap, oldSchema, err := loadFlatSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, newSchema, err := loadFlatSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	if oldSchema != newSchema {
		fmt.Printf("note: schema %q vs %q — only shared fields are compared; the rest are listed informationally\n",
			oldSchema, newSchema)
	}
	gateTiming := oldSnap["num_cpu"] == newSnap["num_cpu"]
	if !gateTiming {
		fmt.Printf("note: num_cpu %g vs %g — timing fields skipped (not comparable across machines); allocs/op still gates\n",
			oldSnap["num_cpu"], newSnap["num_cpu"])
	}
	keys := make([]string, 0, len(oldSnap))
	for k := range oldSnap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		ov := oldSnap[k]
		nv, ok := newSnap[k]
		if !ok {
			fmt.Printf("  %-40s dropped (was %g)\n", k, ov)
			continue
		}
		switch {
		case strings.HasSuffix(k, "_ns_per_op") || strings.HasSuffix(k, ".ns_per_op") || strings.HasSuffix(k, "_ns"):
			delta := 0.0
			if ov > 0 {
				delta = nv/ov - 1
			}
			status := "ok"
			switch {
			case !gateTiming:
				status = "skipped (num_cpu differs)"
			case nv > ov*(1+*tol):
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %+.1f%% ns/op", k, 100*delta))
			}
			fmt.Printf("  %-40s %12.0f -> %12.0f ns (%+.1f%%) %s\n", k, ov, nv, 100*delta, status)
		case strings.HasSuffix(k, "allocs_per_op"):
			status := "ok"
			if nv > ov {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %g -> %g allocs/op", k, ov, nv))
			}
			fmt.Printf("  %-40s %12g -> %12g allocs/op %s\n", k, ov, nv, status)
		case strings.HasSuffix(k, "rank_agreement"):
			// Quality gate, not a timing: the adaptive ranking must keep
			// reproducing the full-grid ranking. Any decrease fails,
			// machine-independently.
			status := "ok"
			if nv < ov {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %g -> %g", k, ov, nv))
			}
			fmt.Printf("  %-40s %12g -> %12g %s\n", k, ov, nv, status)
		}
	}
	newKeys := make([]string, 0)
	for k := range newSnap {
		if _, ok := oldSnap[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		fmt.Printf("  %-40s (new) %g\n", k, newSnap[k])
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d perf regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Println("no regressions")
	return nil
}

// loadFlatSnapshot reads a snapshot JSON and flattens every numeric
// field into path-keyed values ("table_ii_grid.0.ns_per_op"), so the
// diff handles nested sections and schema growth uniformly. The schema
// identifier is returned separately so the diff can note when the two
// snapshots come from different schema versions.
func loadFlatSnapshot(path string) (map[string]float64, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	schema := ""
	if obj, ok := raw.(map[string]any); ok {
		schema, _ = obj["schema"].(string)
	}
	out := make(map[string]float64)
	flattenNumeric("", raw, out)
	return out, schema, nil
}

// flattenNumeric walks parsed JSON, recording numeric leaves under
// dotted path keys. Writing into a map from a map range is
// order-independent, so the traversal needs no sorting.
func flattenNumeric(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, val := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenNumeric(key, val, out)
		}
	case []any:
		for i, val := range t {
			flattenNumeric(fmt.Sprintf("%s.%d", prefix, i), val, out)
		}
	case float64:
		out[prefix] = t
	}
}
