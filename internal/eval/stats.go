package eval

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// ConfidenceInterval is a percentile bootstrap interval for Pass@1.
type ConfidenceInterval struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
}

// String renders the interval.
func (ci ConfidenceInterval) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f] @ %.0f%%", ci.Point, ci.Lo, ci.Hi, ci.Level*100)
}

// bootstrapChunk is the number of resamples sharing one rng stream.
// Chunking makes the resample schedule independent of how many workers
// execute it: chunk c always draws from the stream keyed by c, so a
// serial run and any parallel run produce identical statistics.
const bootstrapChunk = 256

// BootstrapCI computes a percentile-bootstrap confidence interval for a
// report's overall Pass@1. With only 142 questions the benchmark's
// Pass@1 estimates carry real sampling noise — roughly ±0.08 at 95% —
// which is worth reporting next to any Table II-style comparison.
// Resampling is deterministic per (model, resamples, level): the
// resamples are split into fixed chunks, each with its own keyed rng
// stream, and the chunks run on up to GOMAXPROCS workers.
func (r *Report) BootstrapCI(resamples int, level float64) ConfidenceInterval {
	return r.bootstrapCI(resamples, level, runtime.GOMAXPROCS(0))
}

// bootstrapCI is the worker-count-explicit core of BootstrapCI, split
// out so tests can prove the result is identical for any worker count.
//
// The resampling is batched (DESIGN.md §12). A bootstrap resample of a
// binary statistic draws n questions uniformly with replacement and
// counts hits, so the hit count of one resample is distributed exactly
// Binomial(n, K/n) where K is the number of correct answers: instead
// of n per-question index draws, each resample draws a single uniform
// variate and inverts the precomputed binomial CDF — the identical
// Monte Carlo in one draw instead of n (measured ~2.8 ns per index
// draw on the reference host, the per-draw scheme could never reach
// the batched budget). The remaining machinery is allocation-batched:
// the per-question verdicts are packed into a bitset once (K is its
// popcount), each chunk's stream key extends a shared precomputed hash
// prefix instead of formatting fmt.Sprint key strings, resample counts
// accumulate into a pooled per-chunk histogram, and the two percentile
// order statistics are selected by a rank walk over the merged
// histogram rather than sorting all resample statistics.
// TestBootstrapCIMatchesReference pins the batched machinery against a
// naive sort-based transcription of the same scheme; chunk streams
// keyed by chunk index keep the result independent of worker count.
//
//hot:stats bootstrap resampling; per-chunk work must not allocate
func (r *Report) bootstrapCI(resamples int, level float64, workers int) ConfidenceInterval {
	n := len(r.Results)
	if n == 0 {
		return ConfidenceInterval{Level: level}
	}
	if resamples < 100 {
		resamples = 100
	}
	// Correctness bitset, packed once; the binomial parameter is its
	// popcount.
	bitset := make([]uint64, (n+63)/64)
	for i, q := range r.Results {
		if q.Correct {
			bitset[i>>6] |= 1 << uint(i&63)
		}
	}
	k := 0
	for _, w := range bitset {
		k += bits.OnesCount64(w)
	}
	cdf := binomialCDF(n, k)
	// hist[h] counts resamples whose hit count is exactly h. Merging
	// per-chunk histograms is commutative addition, so the merged result
	// is independent of chunk completion order and of the worker count.
	hist := make([]int, n+1)
	var histMu sync.Mutex
	prefix := rng.NewHasher("bootstrap", r.ModelName).Int(resamples).Float(level)
	chunks := (resamples + bootstrapChunk - 1) / bootstrapChunk
	//lint:ignore ctxflow the resample loop is a ~50µs CPU burst on the caller's goroutine; a cancellation seam here would cost a ctx plumb through the public CI API for no observable gain
	forEach(context.Background(), workers, chunks, func(c int) {
		gen := prefix.Int(c).Stream()
		local := getHist(n + 1)
		lo := c * bootstrapChunk
		hi := lo + bootstrapChunk
		if hi > resamples {
			hi = resamples
		}
		for b := lo; b < hi; b++ {
			local[invertCDF(cdf, gen.Float64())]++
		}
		histMu.Lock()
		for h, cnt := range local {
			hist[h] += cnt
		}
		histMu.Unlock()
		putHist(local)
	})
	alpha := (1 - level) / 2
	loIdx := clampRank(int(alpha*float64(resamples)), resamples)
	hiIdx := clampRank(int((1-alpha)*float64(resamples)), resamples)
	lo := float64(nthHits(hist, loIdx)) / float64(n)
	hi := float64(nthHits(hist, hiIdx)) / float64(n)
	return ConfidenceInterval{Point: r.Pass1(), Lo: lo, Hi: hi, Level: level}
}

// binomialCDF returns the cumulative distribution of Binomial(n, k/n):
// cdf[h] = P(hits <= h). Log-space factorials keep the tails finite
// for any n (a direct pmf recurrence underflows to zero near h=0 once
// (1-p)^n drops below the subnormal range). The last entry is pinned
// to 1 so CDF inversion can never fall off the end.
func binomialCDF(n, k int) []float64 {
	cdf := make([]float64, n+1)
	switch k {
	case 0:
		for i := range cdf {
			cdf[i] = 1
		}
		return cdf
	case n:
		cdf[n] = 1
		return cdf
	}
	p := float64(k) / float64(n)
	lp, lq := math.Log(p), math.Log1p(-p)
	// lgFact[i] = log(i!), built incrementally — no Lgamma calls.
	lgFact := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		lgFact[i] = lgFact[i-1] + math.Log(float64(i))
	}
	sum := 0.0
	for h := 0; h <= n; h++ {
		logPMF := lgFact[n] - lgFact[h] - lgFact[n-h] +
			float64(h)*lp + float64(n-h)*lq
		sum += math.Exp(logPMF)
		cdf[h] = sum
	}
	cdf[n] = 1
	return cdf
}

// invertCDF returns the smallest h with u < cdf[h] — one binomial
// variate per uniform draw.
//
//hot:stats per-resample CDF inversion
func invertCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// clampRank clamps a percentile rank into [0, resamples-1]. Both ends
// are clamped identically: historically only the upper index was, and
// an extreme level (level >= 1 pushing alpha <= 0, or a level > 1
// making alpha negative) indexed out of bounds on the low side.
func clampRank(idx, resamples int) int {
	if idx < 0 {
		return 0
	}
	if idx >= resamples {
		return resamples - 1
	}
	return idx
}

// nthHits returns the k-th smallest (0-indexed) resample hit count
// recorded in the histogram — the partial selection that replaces
// sorting. Equivalent to sorting all resample statistics ascending and
// taking element k, because hits/n is monotone in hits.
func nthHits(hist []int, k int) int {
	cum := 0
	for h, cnt := range hist {
		cum += cnt
		if cum > k {
			return h
		}
	}
	return len(hist) - 1
}

// histPool recycles per-chunk hit-count histograms across bootstrap
// calls. Ownership mirrors the pixel-pool discipline: a chunk closure
// checks one out, fills it, merges it, returns it.
var histPool sync.Pool

// getHist returns a zeroed histogram with at least size slots.
func getHist(size int) []int {
	if v := histPool.Get(); v != nil {
		h := *(v.(*[]int))
		if cap(h) >= size {
			h = h[:size]
			for i := range h {
				h[i] = 0
			}
			return h
		}
	}
	return make([]int, size)
}

// putHist returns a histogram to the pool.
func putHist(h []int) {
	histPool.Put(&h)
}

// McNemarResult is the outcome of a paired comparison of two models on
// the same benchmark.
type McNemarResult struct {
	// OnlyA counts questions model A got right and B got wrong; OnlyB
	// the reverse; Both and Neither complete the contingency table.
	OnlyA, OnlyB, Both, Neither int
	// Statistic is the continuity-corrected McNemar chi-square.
	Statistic float64
	// PValue is the two-sided p-value (chi-square with 1 dof).
	PValue float64
}

// Significant reports whether the difference is significant at alpha.
func (m McNemarResult) Significant(alpha float64) bool {
	return m.PValue < alpha && m.OnlyA+m.OnlyB > 0
}

// String renders the comparison.
func (m McNemarResult) String() string {
	return fmt.Sprintf("onlyA=%d onlyB=%d both=%d neither=%d chi2=%.3f p=%.3f",
		m.OnlyA, m.OnlyB, m.Both, m.Neither, m.Statistic, m.PValue)
}

// McNemar runs the paired McNemar test between two reports over the same
// question set (matched by question ID). Benchmark papers comparing
// models on a fixed question set should use a paired test — the 142
// shared questions give it far more power than comparing two independent
// Pass@1 values.
func McNemar(a, b *Report) (McNemarResult, error) {
	if len(a.Results) != len(b.Results) {
		return McNemarResult{}, fmt.Errorf("eval: reports cover %d vs %d questions",
			len(a.Results), len(b.Results))
	}
	byID := make(map[string]bool, len(b.Results))
	for _, q := range b.Results {
		byID[q.QuestionID] = q.Correct
	}
	var res McNemarResult
	for _, q := range a.Results {
		bCorrect, ok := byID[q.QuestionID]
		if !ok {
			return McNemarResult{}, fmt.Errorf("eval: question %s missing from second report", q.QuestionID)
		}
		switch {
		case q.Correct && bCorrect:
			res.Both++
		case q.Correct:
			res.OnlyA++
		case bCorrect:
			res.OnlyB++
		default:
			res.Neither++
		}
	}
	n := res.OnlyA + res.OnlyB
	if n == 0 {
		res.Statistic = 0
		res.PValue = 1
		return res, nil
	}
	diff := math.Abs(float64(res.OnlyA-res.OnlyB)) - 1 // continuity correction
	if diff < 0 {
		diff = 0
	}
	res.Statistic = diff * diff / float64(n)
	// Chi-square(1) survival function: P(X > x) = erfc(sqrt(x/2)).
	res.PValue = math.Erfc(math.Sqrt(res.Statistic / 2))
	return res, nil
}
