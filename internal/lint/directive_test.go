package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		in        string
		analyzers []string
		reason    string
		wantErr   bool
	}{
		{"//lint:ignore nodeterm bench timestamps are cosmetic", []string{"nodeterm"}, "bench timestamps are cosmetic", false},
		{"//lint:ignore nodeterm,errdrop shared reason", []string{"nodeterm", "errdrop"}, "shared reason", false},
		{"  //lint:ignore maporder leading space ok  ", []string{"maporder"}, "leading space ok", false},
		{"//lint:ignore nodeterm", nil, "", true},         // no reason
		{"//lint:ignore  ", nil, "", true},                // no analyzer
		{"//lint:ignore nodeterm, x y", nil, "", true},    // empty name in list
		{"//lint:ignore NoDeterm reason", nil, "", true},  // uppercase name
		{"//lint:disable nodeterm reason", nil, "", true}, // unknown verb
		{"//lint:", nil, "", true},
		{"// ordinary comment", nil, "", true},
	}
	for _, c := range cases {
		d, err := ParseDirective(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseDirective(%q): want error, got %+v", c.in, d)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDirective(%q): %v", c.in, err)
			continue
		}
		if strings.Join(d.Analyzers, ",") != strings.Join(c.analyzers, ",") || d.Reason != c.reason {
			t.Errorf("ParseDirective(%q) = %+v, want %v %q", c.in, d, c.analyzers, c.reason)
		}
	}
}

// FuzzParseDirective guards the build gate's weakest point: the
// directive parser sees every //lint: comment in the module, so
// malformed input must come back as an error, never a panic, and
// accepted directives must satisfy the documented invariants.
func FuzzParseDirective(f *testing.F) {
	f.Add("//lint:ignore nodeterm a reason")
	f.Add("//lint:ignore a,b,c spaced   reason  here")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore ,,, x")
	f.Add("//lint:\x00\xff")
	f.Add("lint:ignore not a comment")
	f.Add("//lint:ignore é unicode name")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDirective(s) // must never panic
		if err != nil {
			return
		}
		if len(d.Analyzers) == 0 {
			t.Fatalf("ParseDirective(%q): accepted with no analyzers", s)
		}
		for _, a := range d.Analyzers {
			if !validAnalyzerName(a) {
				t.Fatalf("ParseDirective(%q): accepted invalid analyzer name %q", s, a)
			}
		}
		if strings.TrimSpace(d.Reason) == "" {
			t.Fatalf("ParseDirective(%q): accepted empty reason", s)
		}
	})
}

// parseRawPkg builds an untyped Package, enough for the suppression
// machinery (which reads only Fset and Files).
func parseRawPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "suppresstest", Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressionPlacement(t *testing.T) {
	src := `package p

func a() {
	trailing() //lint:ignore fake covered by trailing comment
	//lint:ignore fake covered by own-line comment
	ownline()
	uncovered()
	//lint:ignore other wrong analyzer name
	wrongname()
}

//lint:ignore fake
func malformed() {}
`
	pkg := parseRawPkg(t, src)

	// A fake analyzer that reports once on every line 3..10.
	fake := &Analyzer{Name: "fake", Run: func(pass *Pass) {
		file := pass.Pkg.Fset.File(pass.Pkg.Files[0].Pos())
		for line := 3; line <= 10; line++ {
			pass.Reportf(file.LineStart(line), "finding on line %d", line)
		}
	}}
	diags := Run([]*Package{pkg}, []*Analyzer{fake})

	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	// Lines 4 (trailing) and 6 (own-line target) are suppressed; the
	// malformed directive at line 11 is itself reported.
	want := []string{
		"fake:finding on line 3",
		"fake:finding on line 5", // the own-line directive's own line is not a target
		"fake:finding on line 7",
		"fake:finding on line 8",
		"fake:finding on line 9",
		"fake:finding on line 10",
		"directive://lint:ignore needs an analyzer name and a reason",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(got), got, len(want))
	}
	sortStrings(got)
	sortStrings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
