// Package analog implements the analog-design substrate: a complex-valued
// modified-nodal-analysis (MNA) circuit solver with controlled sources, a
// rational transfer-function engine (poles, zeros, Bode data, phase
// margin), small-signal MOSFET helpers and feedback analysis. The Analog
// Design questions of the benchmark are generated from these engines.
package analog

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Ground is the reference node name.
const Ground = "0"

// ElementKind enumerates circuit element types.
type ElementKind int

// Circuit element kinds.
const (
	KindResistor ElementKind = iota
	KindCapacitor
	KindInductor
	KindVSource // independent voltage source (AC value)
	KindISource // independent current source (AC value)
	KindVCVS    // voltage-controlled voltage source (E element)
	KindVCCS    // voltage-controlled current source (G element, e.g. MOSFET gm)
)

// Element is a two-terminal (or four-terminal controlled) element.
type Element struct {
	Kind  ElementKind
	Name  string
	Plus  string // positive terminal node
	Minus string
	// Value: ohms, farads, henries, volts, amps, or gain/transconductance.
	Value float64
	// Control nodes for VCVS/VCCS.
	CtrlPlus, CtrlMinus string
}

// Circuit is a linear(ised) circuit described by a list of elements.
type Circuit struct {
	Elements []Element
}

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return &Circuit{} }

// R adds a resistor between two nodes.
func (c *Circuit) R(name, plus, minus string, ohms float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindResistor, Name: name, Plus: plus, Minus: minus, Value: ohms})
	return c
}

// C adds a capacitor.
func (c *Circuit) C(name, plus, minus string, farads float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindCapacitor, Name: name, Plus: plus, Minus: minus, Value: farads})
	return c
}

// L adds an inductor.
func (c *Circuit) L(name, plus, minus string, henries float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindInductor, Name: name, Plus: plus, Minus: minus, Value: henries})
	return c
}

// V adds an independent voltage source (value in volts, AC magnitude).
func (c *Circuit) V(name, plus, minus string, volts float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindVSource, Name: name, Plus: plus, Minus: minus, Value: volts})
	return c
}

// I adds an independent current source that injects Value amps into the
// Plus node (and draws them out of the Minus node), i.e. the current
// flows from Minus to Plus inside the source.
func (c *Circuit) I(name, plus, minus string, amps float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindISource, Name: name, Plus: plus, Minus: minus, Value: amps})
	return c
}

// VCVS adds a voltage-controlled voltage source with the given gain.
func (c *Circuit) VCVS(name, plus, minus, ctrlPlus, ctrlMinus string, gain float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindVCVS, Name: name, Plus: plus, Minus: minus,
		CtrlPlus: ctrlPlus, CtrlMinus: ctrlMinus, Value: gain})
	return c
}

// VCCS adds a voltage-controlled current source (transconductance gm in
// siemens); current Value*(Vctrl) flows from Plus to Minus inside the
// source.
func (c *Circuit) VCCS(name, plus, minus, ctrlPlus, ctrlMinus string, gm float64) *Circuit {
	c.Elements = append(c.Elements, Element{Kind: KindVCCS, Name: name, Plus: plus, Minus: minus,
		CtrlPlus: ctrlPlus, CtrlMinus: ctrlMinus, Value: gm})
	return c
}

// Nodes returns the sorted non-ground node names.
func (c *Circuit) Nodes() []string {
	set := make(map[string]bool)
	for _, e := range c.Elements {
		for _, n := range []string{e.Plus, e.Minus, e.CtrlPlus, e.CtrlMinus} {
			if n != "" && n != Ground {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Solution holds node voltages (complex phasors) of a solved circuit.
type Solution struct {
	Voltages map[string]complex128
	// BranchCurrents holds the currents through voltage-source-like
	// elements (V, VCVS, L), keyed by element name, flowing from Plus to
	// Minus through the element.
	BranchCurrents map[string]complex128
}

// VoltageAt returns the phasor voltage of a node (ground is 0).
func (s *Solution) VoltageAt(node string) complex128 {
	if node == Ground {
		return 0
	}
	return s.Voltages[node]
}

// Vdiff returns V(plus) - V(minus).
func (s *Solution) Vdiff(plus, minus string) complex128 {
	return s.VoltageAt(plus) - s.VoltageAt(minus)
}

// SolveAC solves the circuit at angular frequency omega (rad/s) using
// modified nodal analysis. omega = 0 gives the DC operating point of the
// linear circuit (capacitors open, inductors short).
func (c *Circuit) SolveAC(omega float64) (*Solution, error) {
	nodes := c.Nodes()
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	// Extra unknowns: branch currents of V, VCVS and L elements.
	var branches []int // indices into c.Elements
	for i, e := range c.Elements {
		if e.Kind == KindVSource || e.Kind == KindVCVS || e.Kind == KindInductor {
			branches = append(branches, i)
		}
	}
	n := len(nodes)
	m := len(branches)
	size := n + m
	if size == 0 {
		return &Solution{Voltages: map[string]complex128{}, BranchCurrents: map[string]complex128{}}, nil
	}
	A := make([][]complex128, size)
	for i := range A {
		A[i] = make([]complex128, size+1) // augmented
	}
	at := func(node string) int {
		if node == Ground {
			return -1
		}
		return index[node]
	}
	stampAdmittance := func(p, q int, y complex128) {
		if p >= 0 {
			A[p][p] += y
		}
		if q >= 0 {
			A[q][q] += y
		}
		if p >= 0 && q >= 0 {
			A[p][q] -= y
			A[q][p] -= y
		}
	}
	s := complex(0, omega)
	branchIdx := make(map[int]int, m) // element index -> row/col offset
	for bi, ei := range branches {
		branchIdx[ei] = n + bi
	}
	for ei, e := range c.Elements {
		p, q := at(e.Plus), at(e.Minus)
		switch e.Kind {
		case KindResistor:
			if e.Value == 0 {
				return nil, fmt.Errorf("analog: resistor %s has zero resistance", e.Name)
			}
			stampAdmittance(p, q, complex(1/e.Value, 0))
		case KindCapacitor:
			stampAdmittance(p, q, s*complex(e.Value, 0))
		case KindISource:
			// Injects into Plus, draws from Minus.
			if p >= 0 {
				A[p][size] += complex(e.Value, 0)
			}
			if q >= 0 {
				A[q][size] -= complex(e.Value, 0)
			}
		case KindVSource:
			b := branchIdx[ei]
			if p >= 0 {
				A[p][b] += 1
				A[b][p] += 1
			}
			if q >= 0 {
				A[q][b] -= 1
				A[b][q] -= 1
			}
			A[b][size] += complex(e.Value, 0)
		case KindInductor:
			b := branchIdx[ei]
			if p >= 0 {
				A[p][b] += 1
				A[b][p] += 1
			}
			if q >= 0 {
				A[q][b] -= 1
				A[b][q] -= 1
			}
			A[b][b] -= s * complex(e.Value, 0)
		case KindVCVS:
			b := branchIdx[ei]
			cp, cq := at(e.CtrlPlus), at(e.CtrlMinus)
			if p >= 0 {
				A[p][b] += 1
				A[b][p] += 1
			}
			if q >= 0 {
				A[q][b] -= 1
				A[b][q] -= 1
			}
			if cp >= 0 {
				A[b][cp] -= complex(e.Value, 0)
			}
			if cq >= 0 {
				A[b][cq] += complex(e.Value, 0)
			}
		case KindVCCS:
			cp, cq := at(e.CtrlPlus), at(e.CtrlMinus)
			g := complex(e.Value, 0)
			if p >= 0 && cp >= 0 {
				A[p][cp] += g
			}
			if p >= 0 && cq >= 0 {
				A[p][cq] -= g
			}
			if q >= 0 && cp >= 0 {
				A[q][cp] -= g
			}
			if q >= 0 && cq >= 0 {
				A[q][cq] += g
			}
		}
	}
	x, err := solveComplex(A)
	if err != nil {
		return nil, fmt.Errorf("analog: %w", err)
	}
	sol := &Solution{
		Voltages:       make(map[string]complex128, n),
		BranchCurrents: make(map[string]complex128, m),
	}
	for i, node := range nodes {
		sol.Voltages[node] = x[i]
	}
	for bi, ei := range branches {
		sol.BranchCurrents[c.Elements[ei].Name] = x[n+bi]
	}
	return sol, nil
}

// SolveDC solves the circuit at omega = 0.
func (c *Circuit) SolveDC() (*Solution, error) { return c.SolveAC(0) }

// Transfer computes the voltage transfer V(out)/V(in-source value) over a
// frequency sweep, returning one complex gain per omega. The source is
// the named independent voltage source; its value is used as reference.
func (c *Circuit) Transfer(sourceName, outNode string, omegas []float64) ([]complex128, error) {
	var src *Element
	for i := range c.Elements {
		if c.Elements[i].Name == sourceName {
			src = &c.Elements[i]
			break
		}
	}
	if src == nil || src.Kind != KindVSource {
		return nil, fmt.Errorf("analog: no voltage source named %q", sourceName)
	}
	if src.Value == 0 {
		return nil, fmt.Errorf("analog: source %q has zero amplitude", sourceName)
	}
	out := make([]complex128, len(omegas))
	for i, w := range omegas {
		sol, err := c.SolveAC(w)
		if err != nil {
			return nil, err
		}
		out[i] = sol.VoltageAt(outNode) / complex(src.Value, 0)
	}
	return out, nil
}

// solveComplex performs Gaussian elimination with partial pivoting on an
// augmented complex matrix (n rows, n+1 columns).
func solveComplex(a [][]complex128) ([]complex128, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		bestMag := cmplx.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if m := cmplx.Abs(a[r][col]); m > bestMag {
				best, bestMag = r, m
			}
		}
		if bestMag < 1e-15 {
			return nil, fmt.Errorf("singular system at column %d (floating node or source loop?)", col)
		}
		a[col], a[best] = a[best], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	// Back substitution.
	x := make([]complex128, n)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// ParallelR returns the parallel combination of resistances.
func ParallelR(rs ...float64) float64 {
	g := 0.0
	for _, r := range rs {
		if r <= 0 {
			return 0
		}
		g += 1 / r
	}
	if g == 0 {
		return math.Inf(1)
	}
	return 1 / g
}

// SeriesR returns the series combination of resistances.
func SeriesR(rs ...float64) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r
	}
	return sum
}

// EquivalentResistance computes the resistance seen between two nodes of
// a resistive circuit by injecting a 1 A test current and measuring the
// resulting voltage.
func (c *Circuit) EquivalentResistance(plus, minus string) (float64, error) {
	test := &Circuit{Elements: append([]Element{}, c.Elements...)}
	test.I("Itest", plus, minus, 1)
	sol, err := test.SolveDC()
	if err != nil {
		return 0, err
	}
	v := sol.Vdiff(plus, minus)
	return real(v), nil
}
