//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector. Timing gates skip under it: instrumentation slows the
// memory-dense decode path far more than the generation baseline, so
// ratios measured under -race say nothing about real performance.
const raceEnabled = true
