// Corpus for the suppression machinery itself: a dense block of
// trailing and own-line directives pins the per-file line→code-end
// index that decides which line each directive covers. Every directive
// here must be used (the stale-suppression check runs module-wide), and
// the unsuppressed sites must still fire.
package directivetest

import "time"

// manyTrailing stresses the trailing-placement path: each directive
// shares its line with the code it covers.
func manyTrailing() []time.Time {
	var ts []time.Time
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 1
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 2
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 3
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 4
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 5
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 6
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 7
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 8
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 9
	ts = append(ts, time.Now()) //lint:ignore nodeterm corpus: trailing suppression 10
	return ts
}

// manyOwnLine stresses the own-line path: each directive stands alone
// and covers the next line.
func manyOwnLine() []time.Time {
	var ts []time.Time
	//lint:ignore nodeterm corpus: own-line suppression 1
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 2
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 3
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 4
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 5
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 6
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 7
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 8
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 9
	ts = append(ts, time.Now())
	//lint:ignore nodeterm corpus: own-line suppression 10
	ts = append(ts, time.Now())
	return ts
}

// unsuppressed proves the index does not over-suppress: these sit
// between directive-dense functions and must still fire.
func unsuppressed() (time.Time, time.Time) {
	a := time.Now() // want `\[nodeterm\] time\.Now reads the wall clock`
	b := time.Now() // want `time\.Now reads the wall clock`
	return a, b
}
