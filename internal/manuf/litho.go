package manuf

import (
	"fmt"
	"math"
)

// LithoSystem is a projection lithography configuration.
type LithoSystem struct {
	WavelengthNM float64 // exposure wavelength
	NA           float64 // numerical aperture
	K1           float64 // process factor (Rayleigh k1)
	K2           float64 // depth-of-focus factor
}

// ArF returns a 193 nm immersion-class scanner configuration.
func ArF() LithoSystem {
	return LithoSystem{WavelengthNM: 193, NA: 1.35, K1: 0.3, K2: 0.5}
}

// KrF returns a 248 nm scanner configuration.
func KrF() LithoSystem {
	return LithoSystem{WavelengthNM: 248, NA: 0.8, K1: 0.4, K2: 0.5}
}

// EUV returns a 13.5 nm scanner configuration.
func EUV() LithoSystem {
	return LithoSystem{WavelengthNM: 13.5, NA: 0.33, K1: 0.4, K2: 0.5}
}

// Resolution returns the Rayleigh minimum half-pitch: k1 * lambda / NA.
func (l LithoSystem) Resolution() float64 {
	if l.NA == 0 {
		return math.Inf(1)
	}
	return l.K1 * l.WavelengthNM / l.NA
}

// DepthOfFocus returns k2 * lambda / NA^2.
func (l LithoSystem) DepthOfFocus() float64 {
	if l.NA == 0 {
		return math.Inf(1)
	}
	return l.K2 * l.WavelengthNM / (l.NA * l.NA)
}

// String renders the configuration.
func (l LithoSystem) String() string {
	return fmt.Sprintf("lambda=%.1f nm, NA=%.2f, k1=%.2f", l.WavelengthNM, l.NA, l.K1)
}

// RET enumerates resolution-enhancement techniques — the subject of the
// paper's own Manufacture sample question ("What is the lithography
// resolution enhancement technique depicted in the figure?").
type RET int

// Resolution enhancement techniques.
const (
	OPC RET = iota // optical proximity correction
	PSM            // phase-shift mask
	SMO            // source-mask optimisation
	OAI            // off-axis illumination
	MPT            // multiple patterning
)

// String names the technique.
func (r RET) String() string {
	switch r {
	case OPC:
		return "optical proximity correction (OPC)"
	case PSM:
		return "phase-shift mask (PSM)"
	case SMO:
		return "source-mask optimization (SMO)"
	case OAI:
		return "off-axis illumination (OAI)"
	case MPT:
		return "multiple patterning"
	default:
		return fmt.Sprintf("RET(%d)", int(r))
	}
}

// Signature describes the visual signature each technique leaves on a
// mask or illumination figure, used to build recognition questions.
func (r RET) Signature() string {
	switch r {
	case OPC:
		return "mask polygons decorated with serifs, hammerheads and jogs around the drawn shape"
	case PSM:
		return "alternating mask openings marked with 0 and 180 degree phase regions"
	case SMO:
		return "a freeform pixelated illumination source co-optimised with the mask"
	case OAI:
		return "an annular or quadrupole illumination pupil instead of a disk"
	case MPT:
		return "one dense layer decomposed into two interleaved masks (colored A/B)"
	default:
		return ""
	}
}

// PitchSplit returns how many exposures multiple patterning needs to
// print a target pitch on a system with the given single-exposure pitch
// limit.
func PitchSplit(targetPitch, singleExposurePitch float64) int {
	if targetPitch >= singleExposurePitch {
		return 1
	}
	n := int(math.Ceil(singleExposurePitch / targetPitch))
	return n
}

// MaskErrorFactor returns the wafer CD change for a mask CD change given
// the MEEF value and magnification.
func MaskErrorFactor(maskDeltaNM, meef, magnification float64) float64 {
	if magnification == 0 {
		magnification = 4
	}
	return meef * maskDeltaNM / magnification
}
