package lint

import (
	"strings"
	"testing"
)

// TestStaleSuppressionReported pins the stale-directive check: a
// well-formed //lint:ignore that matches no finding of an analyzer
// that ran is itself a "directive" finding, while directives for
// analyzers outside the run stay untouched (a -only run must not flag
// the suppressions of analyzers it skipped).
func TestStaleSuppressionReported(t *testing.T) {
	src := `package p

func a() {
	hit() //lint:ignore fake suppresses a real finding
	clean() //lint:ignore fake nothing fires here, so this is stale
	clean() //lint:ignore other analyzer not in this run
}
`
	pkg := parseRawPkg(t, src)
	fake := &Analyzer{Name: "fake", Run: func(pass *Pass) {
		file := pass.Pkg.Fset.File(pass.Pkg.Files[0].Pos())
		pass.Reportf(file.LineStart(4), "finding on line 4")
	}}
	diags := Run([]*Package{pkg}, []*Analyzer{fake})

	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the stale report", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "directive" || d.Pos.Line != 5 {
		t.Fatalf("got %s at line %d, want a directive finding at line 5", d, d.Pos.Line)
	}
	if !strings.Contains(d.Message, "stale //lint:ignore") || !strings.Contains(d.Message, "no fake finding") {
		t.Fatalf("unexpected stale message: %q", d.Message)
	}
}

// TestStaleSuppressionScopedToRanAnalyzers runs zero analyzers: no
// suppression can be judged stale when nothing ran.
func TestStaleSuppressionScopedToRanAnalyzers(t *testing.T) {
	src := `package p

func a() {
	clean() //lint:ignore fake would be stale if fake ran
}
`
	pkg := parseRawPkg(t, src)
	if diags := Run([]*Package{pkg}, nil); len(diags) != 0 {
		t.Fatalf("got %v, want no diagnostics when no analyzers run", diags)
	}
}
