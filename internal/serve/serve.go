// Package serve is the eval-as-a-service layer: a stdlib net/http
// server exposing the ChipVQA benchmark (question browsing, rendered
// question images) and run management (launch, stream, cancel) over a
// small JSON API. It composes seams that already exist underneath —
// the in-order eval.Observer for live per-question results, end-to-end
// context.Context cancellation for client disconnects, pinned
// SceneCache handles for image serving under a byte budget, and the
// weighted-FIFO eval.WorkerPool for fair multi-tenant scheduling — so
// everything a client observes over the wire inherits the engine's
// determinism guarantees: for a fixed (spec, seed) the event stream
// and final report are byte-identical to an offline EvaluateAll, and a
// disconnect mid-stream leaves a deterministic prefix report behind.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                         server + scheduler state
//	GET    /v1/collections                  available question collections
//	GET    /v1/models                       model zoo names
//	GET    /v1/questions                    list (category/type/topic filters)
//	GET    /v1/questions/{id}               one question, full prompt
//	GET    /v1/questions/{id}/image.png     rendered visual (PNG)
//	POST   /v1/runs                         launch run (optionally streaming)
//	GET    /v1/runs                         list runs (?state=, ?kind= filters)
//	GET    /v1/runs/{id}                    run status
//	GET    /v1/runs/{id}/events             event stream (NDJSON or SSE)
//	GET    /v1/runs/{id}/report             final (or prefix) report
//	DELETE /v1/runs/{id}                    cancel
package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/visual"
)

// Collection is one named, browsable set of questions.
type Collection struct {
	Name      string
	Benchmark *dataset.Benchmark
}

// Config assembles a Server. Benchmark and Models are required.
type Config struct {
	// Benchmark is the standard collection, served under the name
	// "standard" and used by runs that don't name a collection.
	Benchmark *dataset.Benchmark
	// Challenge, when non-nil, is served as the "challenge" collection
	// and is the target of kind:"challenge" runs.
	Challenge *dataset.Benchmark
	// Extra appends further named collections (e.g. a CVQB pack loaded
	// via StreamPack). Names must be unique and not collide with the
	// built-in "standard"/"challenge".
	Extra []Collection

	// Models is the zoo runs evaluate, in canonical order.
	Models []eval.Model

	// PoolWorkers is the machine-wide worker-token budget shared by all
	// runs; < 1 means runtime.GOMAXPROCS(0).
	PoolWorkers int
	// MaxSessions caps concurrent tenants; < 1 defaults to 16.
	MaxSessions int
	// WorkersPerSession clamps any single run's grant; < 1 defaults to
	// an equal split of the pool across MaxSessions.
	WorkersPerSession int

	// Cache renders question images; nil uses visual.Default.
	Cache *visual.SceneCache

	// AccessLog, when non-nil, receives one JSON line per request.
	// Each line is emitted as a single Write call.
	AccessLog io.Writer

	// BaseContext scopes detached (non-streaming) runs; nil means
	// context.Background(). Cancelling it cancels every detached run.
	BaseContext context.Context
}

// Server is the HTTP daemon. Construct with New, expose via Handler,
// and call Drain for graceful shutdown.
type Server struct {
	collections []Collection
	byName      map[string]*dataset.Benchmark
	qIndex      map[string]map[string]*dataset.Question
	models      []eval.Model
	modelByName map[string]eval.Model
	modelNames  []string
	cache       *visual.SceneCache
	sched       *scheduler
	reg         *registry
	base        context.Context
	accessLog   io.Writer
	mux         *http.ServeMux

	// eventGate, when set before the server handles traffic, is called
	// by the run observer before each event is appended — a test seam
	// for deterministic mid-stream disconnects.
	eventGate func(ctx context.Context, runID string, seq int)

	// calMu guards cals, the per-fold adaptive calibration cache. A
	// calibration costs a full (zoo x fold) grid evaluation, so it is
	// built once per (seed, per_category) and shared by every adaptive
	// run against that fold. Entries are only stored on success.
	calMu sync.Mutex
	cals  map[string]*calEntry
}

// calEntry serialises calibration builds for one fold key: the first
// run against an uncalibrated fold registers the entry and builds, and
// concurrent runs wait on ready instead of each paying the reference
// grid. cal/err are written exactly once, before ready closes.
type calEntry struct {
	ready chan struct{}
	cal   *adaptive.Calibration
	err   error
}

// calibration returns the cached calibration for (seed, perCategory),
// building it on first use. The build runs under the server's base
// context — not the requesting run's — so a client disconnect cannot
// strand a half-priced grid; the finished bank is cached for everyone.
// The grid is expensive, so it runs outside every lock: calMu only
// covers the entry-claim, and failed builds are deregistered so a later
// run retries (waiters raced into the failed build share its error).
func (s *Server) calibration(seed string, perCategory, workers int) (*adaptive.Calibration, error) {
	key := fmt.Sprintf("%s\x00%d", seed, perCategory)
	s.calMu.Lock()
	e, ok := s.cals[key]
	if !ok {
		e = &calEntry{ready: make(chan struct{})}
		s.cals[key] = e
	}
	s.calMu.Unlock()
	if ok {
		<-e.ready
		return e.cal, e.err
	}
	// The calibration grid is reference material, not part of any run's
	// event stream: no observer, full-resolution images.
	fold, err := core.BuildExtended(seed, perCategory)
	if err == nil {
		e.cal, e.err = adaptive.NewCalibration(s.base, eval.Runner{Workers: workers}, s.models, fold)
	} else {
		e.err = err
	}
	if e.err != nil {
		s.calMu.Lock()
		delete(s.cals, key)
		s.calMu.Unlock()
	}
	close(e.ready)
	return e.cal, e.err
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Benchmark == nil {
		return nil, fmt.Errorf("serve: Config.Benchmark is required")
	}
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: Config.Models is required")
	}
	ctx := cfg.BaseContext
	if ctx == nil {
		ctx = context.Background()
	}
	cache := cfg.Cache
	if cache == nil {
		cache = visual.Default
	}
	s := &Server{
		byName:      make(map[string]*dataset.Benchmark),
		qIndex:      make(map[string]map[string]*dataset.Question),
		modelByName: make(map[string]eval.Model),
		cache:       cache,
		reg:         newRegistry(),
		base:        ctx,
		accessLog:   cfg.AccessLog,
		cals:        make(map[string]*calEntry),
	}
	add := func(name string, b *dataset.Benchmark) error {
		if _, dup := s.byName[name]; dup {
			return fmt.Errorf("serve: duplicate collection %q", name)
		}
		s.byName[name] = b
		s.collections = append(s.collections, Collection{Name: name, Benchmark: b})
		idx := make(map[string]*dataset.Question, b.Len())
		for _, q := range b.Questions {
			idx[q.ID] = q
		}
		s.qIndex[name] = idx
		return nil
	}
	if err := add("standard", cfg.Benchmark); err != nil {
		return nil, err
	}
	if cfg.Challenge != nil {
		if err := add("challenge", cfg.Challenge); err != nil {
			return nil, err
		}
	}
	for _, c := range cfg.Extra {
		if c.Name == "" || c.Benchmark == nil {
			return nil, fmt.Errorf("serve: extra collection needs a name and a benchmark")
		}
		if err := add(c.Name, c.Benchmark); err != nil {
			return nil, err
		}
	}
	for _, m := range cfg.Models {
		name := m.Name()
		if _, dup := s.modelByName[name]; dup {
			return nil, fmt.Errorf("serve: duplicate model %q", name)
		}
		s.modelByName[name] = m
		s.modelNames = append(s.modelNames, name)
	}
	s.models = append([]eval.Model(nil), cfg.Models...)
	s.sched = newScheduler(eval.NewWorkerPool(cfg.PoolWorkers), cfg.MaxSessions, cfg.WorkersPerSession)
	s.mux = s.routes()
	return s, nil
}

// routes wires the Go 1.22 enhanced-pattern mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/collections", s.handleCollections)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/questions", s.handleQuestions)
	mux.HandleFunc("GET /v1/questions/{id}", s.handleQuestion)
	mux.HandleFunc("GET /v1/questions/{id}/image.png", s.handleQuestionImage)
	mux.HandleFunc("POST /v1/runs", s.handleRunLaunch)
	mux.HandleFunc("GET /v1/runs", s.handleRunList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleRunDelete)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleRunReport)
	return mux
}

// Handler returns the server's root handler, wrapped in the access-log
// middleware when configured.
func (s *Server) Handler() http.Handler {
	if s.accessLog == nil {
		return s.mux
	}
	return s.logged(s.mux)
}

// Draining reports whether graceful drain has begun.
func (s *Server) Draining() bool { return s.reg.isDraining() }

// Drain performs graceful shutdown: stop admitting runs, wait for
// in-flight runs to finish until ctx is done, then force-cancel the
// stragglers and wait for them to unwind (bounded, because every run's
// remaining work is ctx-scoped). It returns how many runs were
// force-cancelled; 0 means everything finished within the deadline.
func (s *Server) Drain(ctx context.Context) int {
	s.reg.beginDrain()
	if s.reg.waitIdle(ctx) == nil {
		return 0
	}
	forced := s.reg.cancelAll()
	s.reg.waitIdleForever()
	return forced
}

// collection resolves a collection name ("" = standard).
func (s *Server) collection(name string) (*dataset.Benchmark, bool) {
	if name == "" {
		name = "standard"
	}
	b, ok := s.byName[name]
	return b, ok
}
