package adaptive

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/eval"
)

// Calibration bundles a fold with its calibrated 2PL item bank and the
// full-grid reference reports that produced it. Building one costs a
// complete (cohort x fold) grid evaluation — the expensive step a
// deployment pays once per fold and then amortises across every
// adaptive tournament run against the bank (the serve layer memoises
// exactly this object per fold).
type Calibration struct {
	Fold *dataset.Benchmark
	Bank []BankItem
	// Reference holds the calibration cohort's full-grid reports in
	// cohort order — the Table II-style ranking adaptive runs are
	// measured against.
	Reference []*eval.Report

	refPass1 map[string]float64
}

// NewCalibration evaluates the cohort over the whole fold, runs the
// classical item analysis, and maps it into a calibrated item bank.
func NewCalibration(ctx context.Context, r eval.Runner, cohort []eval.Model, fold *dataset.Benchmark) (*Calibration, error) {
	if len(cohort) == 0 {
		return nil, fmt.Errorf("adaptive: empty calibration cohort")
	}
	reports, err := r.EvaluateAllContext(ctx, cohort, fold)
	if err != nil {
		return nil, err
	}
	items, err := eval.ItemAnalysis(reports)
	if err != nil {
		return nil, err
	}
	bank, err := Bank(fold, Calibrate(items))
	if err != nil {
		return nil, err
	}
	c := &Calibration{
		Fold:      fold,
		Bank:      bank,
		Reference: reports,
		refPass1:  make(map[string]float64, len(reports)),
	}
	for _, rep := range reports {
		c.refPass1[rep.ModelName] = rep.Pass1()
	}
	return c, nil
}

// ReferenceScore returns the cohort's full-grid Pass@1 for the named
// model, and whether the model was part of the calibration cohort.
func (c *Calibration) ReferenceScore(name string) (float64, bool) {
	v, ok := c.refPass1[name]
	return v, ok
}

// Result is one adaptive tournament's outcome over a calibrated bank.
type Result struct {
	// Reports hold each model's adaptive transcript (the questions it
	// was actually asked, in asked order), in tournament model order.
	Reports []*eval.Report
	// Standings carry the final ability estimate, question count and
	// stop reason per model, in the same order.
	Standings []Standing
	// QuestionsAsked is the total issued across all models;
	// GridQuestions is what the full grid would have cost.
	QuestionsAsked int
	GridQuestions  int
	// RankAgreement compares the adaptive ability ranking against the
	// calibration cohort's full-grid Pass@1 ranking over the
	// tournament's models (1.0 = every strictly ordered reference pair
	// reproduced). NaN when a tournament model was not in the cohort.
	RankAgreement float64
}

// Run executes one adaptive tournament over the calibrated bank. On
// cancellation it returns the context error alongside a Result built
// from the deterministic delivered prefix — the same partial-report
// contract as the static pipeline.
func (c *Calibration) Run(ctx context.Context, r eval.Runner, models []eval.Model, cfg Config) (*Result, error) {
	trn, err := NewTournament(models, c.Bank, cfg)
	if err != nil {
		return nil, err
	}
	reports, runErr := r.EvaluateAdaptiveContext(ctx, models, trn)
	res := &Result{
		Reports:        reports,
		Standings:      trn.Standings(),
		QuestionsAsked: trn.QuestionsAsked(),
		GridQuestions:  len(models) * len(c.Fold.Questions),
		RankAgreement:  math.NaN(),
	}
	ref := make([]float64, len(models))
	known := true
	for i, m := range models {
		v, ok := c.ReferenceScore(m.Name())
		if !ok {
			known = false
			break
		}
		ref[i] = v
	}
	if known {
		res.RankAgreement = RankAgreement(ref, trn.Abilities())
	}
	return res, runErr
}
