package eval

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/rng"
)

// ConfidenceInterval is a percentile bootstrap interval for Pass@1.
type ConfidenceInterval struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
}

// String renders the interval.
func (ci ConfidenceInterval) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f] @ %.0f%%", ci.Point, ci.Lo, ci.Hi, ci.Level*100)
}

// bootstrapChunk is the number of resamples sharing one rng stream.
// Chunking makes the resample schedule independent of how many workers
// execute it: chunk c always draws from the stream keyed by c, so a
// serial run and any parallel run produce identical statistics.
const bootstrapChunk = 256

// BootstrapCI computes a percentile-bootstrap confidence interval for a
// report's overall Pass@1. With only 142 questions the benchmark's
// Pass@1 estimates carry real sampling noise — roughly ±0.08 at 95% —
// which is worth reporting next to any Table II-style comparison.
// Resampling is deterministic per (model, resamples, level): the
// resamples are split into fixed chunks, each with its own keyed rng
// stream, and the chunks run on up to GOMAXPROCS workers.
func (r *Report) BootstrapCI(resamples int, level float64) ConfidenceInterval {
	return r.bootstrapCI(resamples, level, runtime.GOMAXPROCS(0))
}

// bootstrapCI is the worker-count-explicit core of BootstrapCI, split
// out so tests can prove the result is identical for any worker count.
func (r *Report) bootstrapCI(resamples int, level float64, workers int) ConfidenceInterval {
	n := len(r.Results)
	if n == 0 {
		return ConfidenceInterval{Level: level}
	}
	if resamples < 100 {
		resamples = 100
	}
	correct := make([]bool, n)
	for i, q := range r.Results {
		correct[i] = q.Correct
	}
	stats := make([]float64, resamples)
	chunks := (resamples + bootstrapChunk - 1) / bootstrapChunk
	forEach(context.Background(), workers, chunks, func(c int) {
		gen := rng.New("bootstrap", r.ModelName, fmt.Sprint(resamples), fmt.Sprint(level), fmt.Sprint(c))
		lo := c * bootstrapChunk
		hi := lo + bootstrapChunk
		if hi > resamples {
			hi = resamples
		}
		for b := lo; b < hi; b++ {
			hits := 0
			for i := 0; i < n; i++ {
				if correct[gen.IntN(n)] {
					hits++
				}
			}
			stats[b] = float64(hits) / float64(n)
		}
	})
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo := stats[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return ConfidenceInterval{Point: r.Pass1(), Lo: lo, Hi: stats[hiIdx], Level: level}
}

// McNemarResult is the outcome of a paired comparison of two models on
// the same benchmark.
type McNemarResult struct {
	// OnlyA counts questions model A got right and B got wrong; OnlyB
	// the reverse; Both and Neither complete the contingency table.
	OnlyA, OnlyB, Both, Neither int
	// Statistic is the continuity-corrected McNemar chi-square.
	Statistic float64
	// PValue is the two-sided p-value (chi-square with 1 dof).
	PValue float64
}

// Significant reports whether the difference is significant at alpha.
func (m McNemarResult) Significant(alpha float64) bool {
	return m.PValue < alpha && m.OnlyA+m.OnlyB > 0
}

// String renders the comparison.
func (m McNemarResult) String() string {
	return fmt.Sprintf("onlyA=%d onlyB=%d both=%d neither=%d chi2=%.3f p=%.3f",
		m.OnlyA, m.OnlyB, m.Both, m.Neither, m.Statistic, m.PValue)
}

// McNemar runs the paired McNemar test between two reports over the same
// question set (matched by question ID). Benchmark papers comparing
// models on a fixed question set should use a paired test — the 142
// shared questions give it far more power than comparing two independent
// Pass@1 values.
func McNemar(a, b *Report) (McNemarResult, error) {
	if len(a.Results) != len(b.Results) {
		return McNemarResult{}, fmt.Errorf("eval: reports cover %d vs %d questions",
			len(a.Results), len(b.Results))
	}
	byID := make(map[string]bool, len(b.Results))
	for _, q := range b.Results {
		byID[q.QuestionID] = q.Correct
	}
	var res McNemarResult
	for _, q := range a.Results {
		bCorrect, ok := byID[q.QuestionID]
		if !ok {
			return McNemarResult{}, fmt.Errorf("eval: question %s missing from second report", q.QuestionID)
		}
		switch {
		case q.Correct && bCorrect:
			res.Both++
		case q.Correct:
			res.OnlyA++
		case bCorrect:
			res.OnlyB++
		default:
			res.Neither++
		}
	}
	n := res.OnlyA + res.OnlyB
	if n == 0 {
		res.Statistic = 0
		res.PValue = 1
		return res, nil
	}
	diff := math.Abs(float64(res.OnlyA-res.OnlyB)) - 1 // continuity correction
	if diff < 0 {
		diff = 0
	}
	res.Statistic = diff * diff / float64(n)
	// Chi-square(1) survival function: P(X > x) = erfc(sqrt(x/2)).
	res.PValue = math.Erfc(math.Sqrt(res.Statistic / 2))
	return res, nil
}
