package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleInstructionLatency(t *testing.T) {
	r := SimulatePipeline([]Instr{{Op: OpALU, Dest: 1, Src1: 2, Src2: 3}}, ClassicFiveStage())
	if r.Cycles != 5 {
		t.Errorf("one instruction through 5 stages = %d cycles, want 5", r.Cycles)
	}
	if r.CPI() != 5 {
		t.Errorf("CPI = %v", r.CPI())
	}
}

func TestIndependentStream(t *testing.T) {
	// N independent instructions: N + 4 cycles.
	prog := make([]Instr, 10)
	for i := range prog {
		prog[i] = Instr{Op: OpALU, Dest: i + 1, Src1: 20, Src2: 21}
	}
	r := SimulatePipeline(prog, ClassicFiveStage())
	if r.Cycles != 14 {
		t.Errorf("10 independent instructions = %d cycles, want 14", r.Cycles)
	}
	if r.Stalls != 0 {
		t.Errorf("stalls = %d, want 0", r.Stalls)
	}
}

func TestLoadUseHazard(t *testing.T) {
	if s := LoadUseStalls(FullBypass()); s != 1 {
		t.Errorf("load-use with full forwarding = %d stalls, want 1", s)
	}
	if s := LoadUseStalls(NoBypass()); s != 2 {
		t.Errorf("load-use without forwarding = %d stalls, want 2", s)
	}
	if s := LoadUseStalls(BypassConfig{EXtoEX: true}); s != 2 {
		t.Errorf("load-use with only EX-EX forwarding = %d stalls, want 2", s)
	}
}

func TestALUDependencyStalls(t *testing.T) {
	prog := []Instr{
		{Op: OpALU, Dest: 1, Src1: 2, Src2: 3},
		{Op: OpALU, Dest: 4, Src1: 1, Src2: 3},
	}
	// Full forwarding: back to back, no stall.
	r := SimulatePipeline(prog, ClassicFiveStage())
	if r.Stalls != 0 {
		t.Errorf("ALU-ALU with forwarding: %d stalls, want 0", r.Stalls)
	}
	// No forwarding: wait for write-back (2 stalls with write-before-
	// read register file).
	r = SimulatePipeline(prog, PipelineConfig{Bypass: NoBypass()})
	if r.Stalls != 2 {
		t.Errorf("ALU-ALU without forwarding: %d stalls, want 2", r.Stalls)
	}
}

func TestBranchPenalty(t *testing.T) {
	prog := []Instr{
		{Op: OpBranch, Src1: 1, Src2: 2, Taken: true},
		{Op: OpALU, Dest: 3, Src1: 4, Src2: 5},
	}
	r := SimulatePipeline(prog, ClassicFiveStage())
	if r.FlushBubbles != 2 {
		t.Errorf("taken branch bubbles = %d, want 2", r.FlushBubbles)
	}
	// Not-taken branch costs nothing.
	prog[0].Taken = false
	r = SimulatePipeline(prog, ClassicFiveStage())
	if r.FlushBubbles != 0 {
		t.Errorf("not-taken branch bubbles = %d, want 0", r.FlushBubbles)
	}
}

func TestQuickBypassNeverHurts(t *testing.T) {
	// Property: enabling forwarding never increases total cycles on a
	// random program.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		prog := make([]Instr, n)
		for i := range prog {
			op := []OpClass{OpALU, OpLoad, OpStore}[r.Intn(3)]
			prog[i] = Instr{
				Op:   op,
				Dest: r.Intn(8),
				Src1: r.Intn(8),
				Src2: r.Intn(8),
			}
			if op == OpStore {
				prog[i].Dest = 0
			}
		}
		full := SimulatePipeline(prog, PipelineConfig{Bypass: FullBypass()})
		none := SimulatePipeline(prog, PipelineConfig{Bypass: NoBypass()})
		return full.Cycles <= none.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIssueOrderMonotone(t *testing.T) {
	// Property: the in-order pipeline issues instructions in strictly
	// increasing EX cycles.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		prog := make([]Instr, n)
		for i := range prog {
			prog[i] = Instr{Op: OpALU, Dest: 1 + r.Intn(7), Src1: 1 + r.Intn(7)}
		}
		res := SimulatePipeline(prog, ClassicFiveStage())
		for i := 1; i < len(res.IssueCycle); i++ {
			if res.IssueCycle[i] <= res.IssueCycle[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCriticalPathFrequency(t *testing.T) {
	f := CriticalPathFrequency([]float64{0.8, 1.0, 1.5, 1.2, 0.9}, 0.1)
	want := 1000 / 1.6
	if diff := f - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("frequency %v, want %v", f, want)
	}
	if CriticalPathFrequency(nil, 0) != 0 {
		t.Error("empty stage list should give 0")
	}
}

func TestInstrFormat(t *testing.T) {
	cases := []struct {
		i    Instr
		want string
	}{
		{Instr{Op: OpLoad, Dest: 1, Src1: 2}, "lw r1, 0(r2)"},
		{Instr{Op: OpALU, Dest: 3, Src1: 1, Src2: 4}, "add r3, r1, r4"},
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpALU, Label: "custom"}, "custom"},
	}
	for _, c := range cases {
		if got := c.i.Format(); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	r := SimulatePipeline(nil, ClassicFiveStage())
	if r.Cycles != 0 || r.CPI() != 0 {
		t.Errorf("empty program: %+v", r)
	}
}
