package analog

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// GenerateExtra produces additional Analog Design questions, cycling
// through seed-parameterised instances of the package's templates.
func GenerateExtra(seed string, count int) []*dataset.Question {
	return GenerateExtraRange(seed, 0, count)
}

// GenerateExtraRange produces only the extended questions with indices
// in [lo, hi); each is a pure function of (seed, index), so a window is
// byte-identical to the same slice of a full build.
func GenerateExtraRange(seed string, lo, hi int) []*dataset.Question {
	if hi <= lo {
		return nil
	}
	qs := make([]*dataset.Question, 0, hi-lo)
	for i := lo; i < hi; i++ {
		qs = append(qs, ExtraAt(seed, i))
	}
	return qs
}

// ExtraAt builds the i-th extended Analog Design question of a fold.
func ExtraAt(seed string, i int) *dataset.Question {
	inst := fmt.Sprintf("%s-%d", seed, i)
	id := fmt.Sprintf("xa-%s-%02d", seed, i)
	switch i % 5 {
	case 0:
		return extraLadder(id, inst)
	case 1:
		return extraDivider(id, inst)
	case 2:
		return extraCSGain(id, inst)
	case 3:
		return extraRCCutoff(id, inst)
	default:
		return extraClosedLoop(id, inst)
	}
}

// resistorE24 picks a plausible resistor value.
func resistorE24(r interface{ IntN(int) int }) float64 {
	bases := []float64{1.0, 1.5, 2.2, 3.3, 4.7, 6.8}
	scales := []float64{100, 1000, 10000}
	return bases[r.IntN(len(bases))] * scales[r.IntN(len(scales))]
}

func extraLadder(id, inst string) *dataset.Question {
	r := rng.New("analog-extra-ladder", inst)
	r1, r2, r3 := resistorE24(r), resistorE24(r), resistorE24(r)
	c := NewCircuit()
	c.R("R1", "a", "b", r1).R("R2", "b", Ground, r2).R("R3", "b", Ground, r3)
	req, err := c.EquivalentResistance("a", Ground)
	if err != nil {
		panic(err)
	}
	format := func(v float64) string { return FormatSI(v, "Ohm") }
	scene := ResistorNetworkScene("Resistor network", "",
		[]string{"R1=" + format(r1), "R2=" + format(r2), "R3=" + format(r3)})
	return dataset.NewMCNumeric(id, dataset.Analog, "equivalent-resistance",
		"For the resistor network in the figure (R1 in series with the parallel pair R2, "+
			"R3), what is the equivalent resistance seen from terminal a to ground?",
		scene, req, "Ohm", 0.02, format(req), NumericDistractors(req, format), 0.45)
}

func extraDivider(id, inst string) *dataset.Question {
	r := rng.New("analog-extra-div", inst)
	vs := []float64{3.3, 5, 9, 12}[r.IntN(4)]
	r1, r2, rl := resistorE24(r), resistorE24(r), resistorE24(r)
	c := NewCircuit()
	c.V("Vs", "in", Ground, vs).R("R1", "in", "mid", r1).
		R("R2", "mid", Ground, r2).R("RL", "mid", Ground, rl)
	sol, err := c.SolveDC()
	if err != nil {
		panic(err)
	}
	vl := real(sol.VoltageAt("mid"))
	format := func(v float64) string { return FormatPlain(round3(v), "V") }
	scene := ResistorNetworkScene("Loaded voltage divider", "Vs",
		[]string{fmt.Sprintf("Vs=%g V", vs), "R1=" + FormatSI(r1, "Ohm"),
			"R2=" + FormatSI(r2, "Ohm"), "RL=" + FormatSI(rl, "Ohm")})
	return dataset.NewMCNumeric(id, dataset.Analog, "voltage-divider",
		"Given the source and resistor values annotated in the figure, determine the "+
			"voltage across the load resistor RL. Answer in units of V.",
		scene, vl, "V", 0.02, format(vl), NumericDistractors(vl, format), 0.5)
}

func extraCSGain(id, inst string) *dataset.Question {
	r := rng.New("analog-extra-cs", inst)
	gm := float64(1+r.IntN(8)) * 1e-3
	rd := resistorE24(r)
	m := MOSFET{Gm: gm, Ro: math.Inf(1)}
	gain := CommonSourceGain(m, rd)
	format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
	scene := AmplifierScene("Common-source stage", "common-source amplifier",
		[]string{"gm=" + FormatSI(gm, "S"), "RD=" + FormatSI(rd, "Ohm")})
	return dataset.NewMCNumeric(id, dataset.Analog, "cs-gain",
		"The common-source amplifier in the figure is biased in saturation with the "+
			"parameters annotated (neglect channel-length modulation). What is its "+
			"small-signal voltage gain vout/vin?",
		scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.5)
}

func extraRCCutoff(id, inst string) *dataset.Question {
	r := rng.New("analog-extra-rc", inst)
	res := resistorE24(r)
	cap := []float64{1e-9, 10e-9, 100e-9, 1e-6}[r.IntN(4)]
	fc := RCLowPassCutoffHz(res, cap)
	format := func(v float64) string { return FormatSI(v, "Hz") }
	scene := ResistorNetworkScene("First-order RC low-pass filter", "Vin",
		[]string{"R=" + FormatSI(res, "Ohm"), "C=" + FormatSI(cap, "F")})
	return dataset.NewMCNumeric(id, dataset.Analog, "rc-cutoff",
		"For the first-order RC low-pass filter in the figure, what is the -3 dB cutoff "+
			"frequency?",
		scene, fc, "Hz", 0.03, format(fc), NumericDistractors(fc, format), 0.45)
}

func extraClosedLoop(id, inst string) *dataset.Question {
	r := rng.New("analog-extra-cl", inst)
	a0 := []float64{1e3, 1e4, 1e5}[r.IntN(3)]
	beta := []float64{0.001, 0.01, 0.1}[r.IntN(3)]
	acl := ClosedLoopGain(a0, beta)
	format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
	scene := BlockDiagramScene("Negative feedback loop",
		[]string{"A", "OUTPUT"},
		[]string{fmt.Sprintf("A = %g", a0), fmt.Sprintf("beta = %g", beta),
			"feedback subtracts at input"})
	return dataset.NewMCNumeric(id, dataset.Analog, "closed-loop",
		"The negative-feedback system in the figure has forward gain A and feedback "+
			"factor beta as annotated. What is the closed-loop gain A/(1+A*beta)?",
		scene, acl, "V/V", 0.02, format(acl), NumericDistractors(acl, format), 0.5)
}
