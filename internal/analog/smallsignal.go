package analog

import "math"

// MOSFET holds the small-signal parameters of a transistor biased in
// saturation: transconductance gm (S), output resistance ro (ohm), and
// optionally body transconductance gmb.
type MOSFET struct {
	Gm  float64
	Ro  float64
	Gmb float64
}

// GmFromBias returns gm = 2*ID/Vov, the square-law relation
// device-parameter questions exercise.
func GmFromBias(id, vov float64) float64 {
	if vov == 0 {
		return 0
	}
	return 2 * id / vov
}

// RoFromLambda returns ro = 1/(lambda*ID).
func RoFromLambda(lambda, id float64) float64 {
	if lambda == 0 || id == 0 {
		return math.Inf(1)
	}
	return 1 / (lambda * id)
}

// CommonSourceGain returns the small-signal voltage gain of a
// common-source stage with drain resistor RD: Av = -gm*(RD || ro).
func CommonSourceGain(m MOSFET, rd float64) float64 {
	return -m.Gm * ParallelR(rd, m.Ro)
}

// CommonSourceCircuit builds the small-signal equivalent as an MNA
// circuit (for cross-checking the closed form against the solver).
func CommonSourceCircuit(m MOSFET, rd float64) *Circuit {
	c := NewCircuit()
	c.V("Vin", "in", Ground, 1)
	c.VCCS("M1", "out", Ground, "in", Ground, m.Gm)
	c.R("RD", "out", Ground, rd)
	if !math.IsInf(m.Ro, 0) && m.Ro > 0 {
		c.R("ro", "out", Ground, m.Ro)
	}
	return c
}

// SourceFollowerGain returns the gain of a common-drain stage with
// source resistor RS (body effect ignored):
// Av = gm*RS' / (1 + gm*RS') with RS' = RS || ro.
func SourceFollowerGain(m MOSFET, rs float64) float64 {
	rsp := ParallelR(rs, m.Ro)
	return m.Gm * rsp / (1 + m.Gm*rsp)
}

// CommonGateGain returns the gain of a common-gate stage with load RD
// (source driven, ro ignored when infinite): Av = +gm*(RD || ro).
func CommonGateGain(m MOSFET, rd float64) float64 {
	return m.Gm * ParallelR(rd, m.Ro)
}

// DiffPairGain returns the differential gain of a resistively loaded
// differential pair: Ad = -gm*(RD || ro).
func DiffPairGain(m MOSFET, rd float64) float64 {
	return -m.Gm * ParallelR(rd, m.Ro)
}

// CascodeOutputResistance returns the output resistance of a cascode:
// Rout = ro2 + ro1 + gm2*ro2*ro1 ~ gm2*ro2*ro1.
func CascodeOutputResistance(m1, m2 MOSFET) float64 {
	return m2.Ro + m1.Ro + m2.Gm*m2.Ro*m1.Ro
}

// MirrorOutputCurrent returns the output current of a current mirror
// whose output device is scaled (W/L)out / (W/L)ref times the reference.
func MirrorOutputCurrent(iref, ratio float64) float64 { return iref * ratio }

// InvertingOpAmpGain is the ideal closed-loop gain -R2/R1.
func InvertingOpAmpGain(r1, r2 float64) float64 { return -r2 / r1 }

// NonInvertingOpAmpGain is the ideal closed-loop gain 1 + R2/R1.
func NonInvertingOpAmpGain(r1, r2 float64) float64 { return 1 + r2/r1 }

// InstrumentationAmpGain is the classic three-op-amp in-amp gain
// (1 + 2R/Rg) for unity second stage.
func InstrumentationAmpGain(r, rg float64) float64 { return 1 + 2*r/rg }

// RCLowPassCutoffHz returns f_c = 1/(2*pi*R*C).
func RCLowPassCutoffHz(r, c float64) float64 { return 1 / (2 * math.Pi * r * c) }

// FlashComparators returns the comparator count of an n-bit flash ADC.
func FlashComparators(bits int) int { return 1<<bits - 1 }

// SARCycles returns the conversion cycles of an n-bit SAR ADC.
func SARCycles(bits int) int { return bits }

// PipelineResidueGain returns the interstage residue gain of a pipeline
// ADC stage resolving bitsPerStage bits: 2^bits.
func PipelineResidueGain(bitsPerStage int) float64 {
	return math.Pow(2, float64(bitsPerStage))
}

// ClosedLoopGain returns A/(1+A*beta), the negative-feedback relation.
func ClosedLoopGain(a, beta float64) float64 { return a / (1 + a*beta) }

// LoopGain returns T = A*beta.
func LoopGain(a, beta float64) float64 { return a * beta }

// ClosedLoopBandwidth returns the closed-loop -3 dB frequency of a
// single-pole amplifier under feedback: f_p*(1 + A0*beta); equivalently
// GBW / closed-loop gain for large loop gain.
func ClosedLoopBandwidth(fp, a0, beta float64) float64 { return fp * (1 + a0*beta) }

// GainBandwidthProduct returns A0 * fp of a single-pole amplifier.
func GainBandwidthProduct(a0, fp float64) float64 { return a0 * fp }
