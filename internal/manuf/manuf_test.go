package manuf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// --- Etch -------------------------------------------------------------

func TestPaperBOEWorkedExample(t *testing.T) {
	// The paper's own §III-B5 example: 5:1 BOE at 100 nm/min, 10%
	// over-etch of a 500 nm film -> 5.5 minutes.
	p := BOE5to1()
	if tm := p.TimeToClear(500, 0.10); math.Abs(tm-5.5) > 1e-12 {
		t.Errorf("BOE over-etch time %v, want 5.5", tm)
	}
}

func TestSelectivityLoss(t *testing.T) {
	p := RIEOxide()
	// 0.5 min over-etch: 200/15 * 0.5 = 6.67 nm of Si.
	if loss := p.SubstrateLoss(0.5); math.Abs(loss-200.0/15/2) > 1e-9 {
		t.Errorf("substrate loss %v", loss)
	}
	// Infinite selectivity consumes nothing.
	if loss := BOE5to1().SubstrateLoss(1); loss != 0 {
		t.Errorf("infinite selectivity loss %v", loss)
	}
}

func TestLateralEtchAndBias(t *testing.T) {
	iso := BOE5to1()
	if u := iso.LateralEtch(2); u != 200 {
		t.Errorf("isotropic undercut %v", u)
	}
	if b := iso.EtchBias(2); b != 400 {
		t.Errorf("etch bias %v", b)
	}
	aniso := RIEOxide()
	if u := aniso.LateralEtch(2); u != 0 {
		t.Errorf("anisotropic undercut %v, want 0", u)
	}
}

func TestQuickEtchTimeScalesWithThickness(t *testing.T) {
	// Property: etch time is linear in thickness and over-etch fraction.
	p := BOE5to1()
	f := func(thRaw, ovRaw uint8) bool {
		th := float64(thRaw) + 1
		ov := float64(ovRaw%50) / 100
		tm := p.TimeToClear(th, ov)
		return math.Abs(tm-th*(1+ov)/p.Rate) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilmStack(t *testing.T) {
	stack := FilmStack{Layers: []Film{
		{Material: "SiO2", ThicknessNM: 200},
		{Material: "Si3N4", ThicknessNM: 100},
	}}
	rates := map[string]float64{"SiO2": 100, "Si3N4": 50}
	tm, err := stack.TotalEtchTime(rates)
	if err != nil {
		t.Fatal(err)
	}
	if tm != 4 {
		t.Errorf("stack time %v, want 4", tm)
	}
	if _, err := stack.TotalEtchTime(map[string]float64{"SiO2": 100}); err == nil {
		t.Error("missing rate accepted")
	}
}

// --- Lithography ---------------------------------------------------------

func TestRayleigh(t *testing.T) {
	sys := ArF()
	want := 0.3 * 193 / 1.35
	if r := sys.Resolution(); math.Abs(r-want) > 1e-9 {
		t.Errorf("resolution %v, want %v", r, want)
	}
	dof := KrF().DepthOfFocus()
	if math.Abs(dof-0.5*248/(0.8*0.8)) > 1e-9 {
		t.Errorf("DOF %v", dof)
	}
	if !math.IsInf((LithoSystem{}).Resolution(), 1) {
		t.Error("zero-NA resolution should be infinite")
	}
}

func TestQuickHigherNAResolvesFiner(t *testing.T) {
	// Property: increasing NA at fixed lambda and k1 always improves
	// (reduces) the resolvable feature size.
	f := func(naRaw uint8) bool {
		na1 := 0.3 + float64(naRaw%100)/100
		na2 := na1 + 0.1
		a := LithoSystem{WavelengthNM: 193, NA: na1, K1: 0.3}
		b := LithoSystem{WavelengthNM: 193, NA: na2, K1: 0.3}
		return b.Resolution() < a.Resolution()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRETSignatures(t *testing.T) {
	for _, ret := range []RET{OPC, PSM, SMO, OAI, MPT} {
		if ret.String() == "" || ret.Signature() == "" {
			t.Errorf("RET %d missing name or signature", int(ret))
		}
	}
}

func TestPitchSplit(t *testing.T) {
	if n := PitchSplit(40, 76); n != 2 {
		t.Errorf("split %d, want 2", n)
	}
	if n := PitchSplit(80, 76); n != 1 {
		t.Errorf("split %d, want 1", n)
	}
	if n := PitchSplit(20, 76); n != 4 {
		t.Errorf("split %d, want 4", n)
	}
}

func TestMaskErrorFactor(t *testing.T) {
	if d := MaskErrorFactor(4, 2, 4); d != 2 {
		t.Errorf("MEEF delta %v", d)
	}
	// Zero magnification defaults to 4x.
	if d := MaskErrorFactor(4, 2, 0); d != 2 {
		t.Errorf("default magnification delta %v", d)
	}
}

// --- Diffusion -------------------------------------------------------------

func TestConstantSourceProfile(t *testing.T) {
	s := DiffusionStep{D: 1e-13, TimeS: 3600}
	cs := 1e20
	if c := s.ConstantSourceProfile(cs, 0); c != cs {
		t.Errorf("surface concentration %v", c)
	}
	// Monotone decreasing with depth.
	prev := cs
	for x := 1e-6; x < 1e-4; x *= 2 {
		c := s.ConstantSourceProfile(cs, x)
		if c > prev {
			t.Errorf("profile not monotone at %v", x)
		}
		prev = c
	}
}

func TestJunctionDepthConsistency(t *testing.T) {
	s := DiffusionStep{D: 1e-13, TimeS: 3600}
	cs, cb := 1e20, 1e16
	xj := s.JunctionDepthConstantSource(cs, cb)
	if xj <= 0 {
		t.Fatal("junction depth should be positive")
	}
	// The profile at xj equals the background within bisection accuracy.
	if c := s.ConstantSourceProfile(cs, xj); math.Abs(c-cb)/cb > 1e-3 {
		t.Errorf("C(xj) = %v, want %v", c, cb)
	}
	if s.JunctionDepthConstantSource(cs, 2*cs) != 0 {
		t.Error("background above surface concentration should yield 0")
	}
}

func TestLimitedSourceDoseConservation(t *testing.T) {
	// Integrate the Gaussian numerically; it should return the dose.
	s := DiffusionStep{D: 1e-13, TimeS: 3600}
	const q = 1e15
	sum := 0.0
	dx := 1e-7
	for x := 0.0; x < 1e-3; x += dx {
		sum += s.LimitedSourceProfile(q, x) * dx
	}
	// Half-space integral equals Q/2... the standard drive-in profile
	// integrates to Q over x >= 0 with the 1/sqrt(pi D t) prefactor.
	if math.Abs(sum-q)/q > 0.01 {
		t.Errorf("integrated dose %v, want %v", sum, q)
	}
}

func TestArrhenius(t *testing.T) {
	d1000 := ArrheniusD(1, 3.5, 1273)
	d1100 := ArrheniusD(1, 3.5, 1373)
	if d1100 <= d1000 {
		t.Error("diffusivity must rise with temperature")
	}
}

func TestDealGroveRegimes(t *testing.T) {
	// Short time: linear regime, x ~ (B/A) t.
	x := OxideGrowthDealGrove(0.5, 0.2, 0, 0.01)
	if math.Abs(x-0.5*0.01)/x > 0.05 {
		t.Errorf("linear regime thickness %v", x)
	}
	// Long time: parabolic regime, x ~ sqrt(B t).
	x = OxideGrowthDealGrove(0.5, 0.2, 0, 100)
	if math.Abs(x-math.Sqrt(0.2*100))/x > 0.05 {
		t.Errorf("parabolic regime thickness %v", x)
	}
	// Initial oxide shifts the curve.
	if OxideGrowthDealGrove(0.5, 0.2, 0.1, 1) <= OxideGrowthDealGrove(0.5, 0.2, 0, 1) {
		t.Error("initial oxide ignored")
	}
}

func TestSheetResistance(t *testing.T) {
	rs := SheetResistance(1.7e-6, 2e-5)
	if math.Abs(rs-0.085) > 1e-9 {
		t.Errorf("sheet resistance %v", rs)
	}
	if !math.IsInf(SheetResistance(1, 0), 1) {
		t.Error("zero thickness should be infinite")
	}
}

// --- Yield ---------------------------------------------------------------

func TestYieldModels(t *testing.T) {
	y := PoissonYield(1, 0.5)
	if math.Abs(y-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("poisson %v", y)
	}
	if MurphyYield(0, 0.5) != 1 || PoissonYield(0, 0.5) != 1 {
		t.Error("zero area should yield 1")
	}
}

func TestQuickYieldOrdering(t *testing.T) {
	// Property: for any positive defect count, Seeds >= Murphy >=
	// Poisson (heavier-tailed defect models are more forgiving).
	f := func(aRaw, dRaw uint8) bool {
		a := float64(aRaw%40)/10 + 0.1
		d := float64(dRaw%30)/10 + 0.05
		p := PoissonYield(a, d)
		m := MurphyYield(a, d)
		s := SeedsYield(a, d)
		return s >= m-1e-12 && m >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGrossDiePerWafer(t *testing.T) {
	// 300 mm wafer, 100 mm2 dies: pi*150^2/100 - pi*300/sqrt(200) =
	// 706.9 - 66.6 ~ 640.
	n := GrossDiePerWafer(300, 100)
	if n < 630 || n < 1 || n > 650 {
		t.Errorf("gross die %d, want ~640", n)
	}
	if GrossDiePerWafer(300, 0) != 0 {
		t.Error("zero-area die should be 0")
	}
	good := GoodDiePerWafer(300, 100, 0.2)
	if good >= n {
		t.Error("good die should be fewer than gross")
	}
}

func TestClassifyWaferMap(t *testing.T) {
	cases := []struct {
		pts  [][2]float64
		want DefectClass
	}{
		{[][2]float64{{-0.6, -0.55}, {-0.3, -0.28}, {0, 0.02}, {0.3, 0.31}, {0.6, 0.58}}, DefectScratch},
		{[][2]float64{{0.9, 0}, {0, 0.92}, {-0.88, 0}, {0, -0.9}}, DefectEdgeRing},
		{[][2]float64{{0.05, 0}, {0, 0.1}, {-0.08, 0.02}}, DefectCenter},
		{[][2]float64{{0.4, 0.4}, {0.45, 0.42}, {0.42, 0.38}, {0.38, 0.44}}, DefectCluster},
		{nil, DefectRandom},
	}
	for i, c := range cases {
		if got := ClassifyWaferMap(c.pts); got != c.want {
			t.Errorf("case %d: classified %v, want %v", i, got, c.want)
		}
	}
}

func TestDefectSignatures(t *testing.T) {
	for _, d := range []DefectClass{DefectRandom, DefectCluster, DefectScratch, DefectEdgeRing, DefectCenter} {
		if d.String() == "" || d.Signature() == "" {
			t.Errorf("defect class %d missing name or signature", int(d))
		}
	}
}

// --- Question generation ------------------------------------------------------

func TestGenerateComposition(t *testing.T) {
	qs := Generate()
	if len(qs) != 20 {
		t.Fatalf("generated %d, want 20", len(qs))
	}
	mc, sa := 0, 0
	kinds := map[visual.Kind]int{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
		if q.Type == dataset.MultipleChoice {
			mc++
		} else {
			sa++
		}
		kinds[q.Visual.Kind]++
	}
	if mc != 6 || sa != 14 {
		t.Errorf("mc=%d sa=%d, want 6/14", mc, sa)
	}
	want := map[visual.Kind]int{
		visual.KindFigure: 4, visual.KindStructure: 4, visual.KindLayout: 4,
		visual.KindDiagram: 3, visual.KindFlow: 2, visual.KindMixed: 2,
		visual.KindSchematic: 1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("visual %s: %d, want %d", k, kinds[k], n)
		}
	}
}

func TestBOEQuestionGolden(t *testing.T) {
	for _, q := range Generate() {
		if q.ID == "m03" {
			if math.Abs(q.Golden.Number-5.5) > 1e-9 {
				t.Errorf("m03 golden %v, want 5.5 (the paper's worked example)", q.Golden.Number)
			}
		}
	}
}
