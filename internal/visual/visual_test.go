package visual

import (
	"image"
	"testing"
	"testing/quick"
)

func inkCount(img *image.RGBA) int {
	b := img.Bounds()
	n := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			i := img.PixOffset(x, y)
			if img.Pix[i] < 250 || img.Pix[i+1] < 250 || img.Pix[i+2] < 250 {
				n++
			}
		}
	}
	return n
}

// --- Canvas ----------------------------------------------------------

func TestCanvasLine(t *testing.T) {
	c := NewCanvas(20, 20)
	c.Line(0, 0, 19, 19, ColorBlack)
	img := c.Image()
	// Endpoints and a midpoint must be painted.
	for _, p := range []image.Point{{0, 0}, {19, 19}, {10, 10}} {
		i := img.PixOffset(p.X, p.Y)
		if img.Pix[i] != 0 {
			t.Errorf("pixel %v not drawn", p)
		}
	}
}

func TestCanvasLineClipping(t *testing.T) {
	// Out-of-bounds drawing must not panic.
	c := NewCanvas(10, 10)
	c.Line(-5, -5, 15, 15, ColorBlack)
	c.Circle(9, 9, 30, ColorRed)
	c.FillRect(-3, -3, 30, 30, ColorBlue)
	c.Text(-10, -10, "clip", 2, ColorBlack)
}

func TestCanvasRectAndCircle(t *testing.T) {
	c := NewCanvas(40, 40)
	c.Rect(5, 5, 30, 30, ColorBlack)
	img := c.Image()
	for _, p := range []image.Point{{5, 5}, {30, 5}, {5, 30}, {30, 30}, {17, 5}} {
		if img.Pix[img.PixOffset(p.X, p.Y)] != 0 {
			t.Errorf("rect corner/edge %v not drawn", p)
		}
	}
	// Interior untouched.
	if img.Pix[img.PixOffset(17, 17)] != 255 {
		t.Error("rect interior painted")
	}
	c2 := NewCanvas(40, 40)
	c2.Circle(20, 20, 10, ColorBlack)
	img2 := c2.Image()
	for _, p := range []image.Point{{30, 20}, {10, 20}, {20, 30}, {20, 10}} {
		if img2.Pix[img2.PixOffset(p.X, p.Y)] != 0 {
			t.Errorf("circle cardinal point %v not drawn", p)
		}
	}
}

func TestCanvasText(t *testing.T) {
	c := NewCanvas(200, 30)
	c.Text(2, 2, "ABC 123", 2, ColorBlack)
	if inkCount(c.Image()) < 50 {
		t.Error("text drew almost nothing")
	}
	if w := TextWidth("ABCD", 1); w != 4*(glyphW+1) {
		t.Errorf("TextWidth = %d", w)
	}
	if w := TextWidth("AB\nABCD", 1); w != 4*(glyphW+1) {
		t.Errorf("multi-line TextWidth = %d", w)
	}
}

func TestCanvasMinimumSize(t *testing.T) {
	c := NewCanvas(0, -5)
	w, h := c.Size()
	if w < 1 || h < 1 {
		t.Errorf("size %dx%d", w, h)
	}
}

// --- Scene & rendering -------------------------------------------------

func sampleScene(kind Kind) *Scene {
	s := NewScene(kind, "Sample")
	s.Add(Element{Type: ElemBox, Name: "b1", Label: "BLOCK", X: 50, Y: 50, X2: 200, Y2: 120, Critical: true})
	s.Add(Element{Type: ElemArrow, Name: "a1", X: 200, Y: 85, X2: 300, Y2: 85})
	s.Add(Element{Type: ElemValue, Name: "v1", Label: "R=1k", X: 100, Y: 200, Critical: true})
	s.Add(Element{Type: ElemResistor, Name: "r1", Label: "R1", X: 300, Y: 200, X2: 400, Y2: 200})
	s.Add(Element{Type: ElemGate, Name: "g1", Label: "NAND", X: 420, Y: 250})
	s.Add(Element{Type: ElemTrace, Name: "t1", Points: []Point{{60, 300}, {120, 300}, {120, 280}, {180, 280}}})
	return s
}

func TestRenderProducesInk(t *testing.T) {
	for k := 0; k < NumKinds; k++ {
		img := Render(sampleScene(Kind(k)))
		if inkCount(img) < 100 {
			t.Errorf("kind %s rendered almost nothing", Kind(k))
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := Render(sampleScene(KindSchematic))
	b := Render(sampleScene(KindSchematic))
	if len(a.Pix) != len(b.Pix) {
		t.Fatal("size mismatch")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestRenderAllElementTypes(t *testing.T) {
	s := NewScene(KindSchematic, "All")
	types := []ElementType{
		ElemGate, ElemTransistor, ElemResistor, ElemCapacitor, ElemInductor,
		ElemSource, ElemWire, ElemLabel, ElemValue, ElemBox, ElemArrow,
		ElemTrace, ElemCell, ElemRect, ElemPoint, ElemCurvePt, ElemAxis,
		ElemEquationText,
	}
	for i, ty := range types {
		x := float64(40 + (i%6)*100)
		y := float64(60 + (i/6)*120)
		s.Add(Element{
			Type: ty, Name: "e", Label: "X", X: x, Y: y, X2: x + 60, Y2: y + 40,
			Points: []Point{{x, y}, {x + 30, y + 10}},
			Attrs:  map[string]string{"layer": "metal1", "polarity": "nmos", "kind": "current", "row": "0", "col": "0"},
		})
	}
	if inkCount(Render(s)) < 200 {
		t.Error("element sampler rendered almost nothing")
	}
}

func TestSceneCriticalAndFind(t *testing.T) {
	s := sampleScene(KindDiagram)
	crit := s.CriticalElements()
	if len(crit) != 2 {
		t.Errorf("critical elements %d, want 2", len(crit))
	}
	if _, ok := s.Find("v1"); !ok {
		t.Error("Find failed")
	}
	if _, ok := s.Find("nope"); ok {
		t.Error("Find found a ghost")
	}
}

func TestSceneDescribeDetail(t *testing.T) {
	s := sampleScene(KindDiagram)
	full := s.Describe(1)
	terse := s.Describe(0.2)
	if len(full) <= len(terse) {
		t.Errorf("full description (%d) should exceed terse (%d)", len(full), len(terse))
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := 0; k < NumKinds; k++ {
		kind := Kind(k)
		back, err := ParseKind(kind.String())
		if err != nil || back != kind {
			t.Errorf("kind %d round trip: %v %v", k, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

func TestDescribeOneCoversTypes(t *testing.T) {
	for _, e := range sampleScene(KindDiagram).Elements {
		if e.DescribeOne() == "" {
			t.Errorf("empty description for element %q", e.Name)
		}
	}
}

// --- Downsampling ----------------------------------------------------------

func TestDownsampleDimensions(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 640, 480))
	small := Downsample(img, 8)
	if small.Bounds().Dx() != 80 || small.Bounds().Dy() != 60 {
		t.Errorf("8x dims %v", small.Bounds())
	}
	if out := Downsample(img, 1); out.Bounds() != img.Bounds() {
		t.Error("1x should preserve dimensions")
	}
	// Non-divisible sizes round up.
	odd := image.NewRGBA(image.Rect(0, 0, 13, 9))
	s2 := Downsample(odd, 4)
	if s2.Bounds().Dx() != 4 || s2.Bounds().Dy() != 3 {
		t.Errorf("odd dims %v", s2.Bounds())
	}
}

func TestDownsamplePreservesConstant(t *testing.T) {
	c := NewCanvas(64, 64)
	c.Fill(ColorBlue)
	small := Downsample(c.Image(), 8)
	i := small.PixOffset(3, 3)
	if small.Pix[i] != ColorBlue.R || small.Pix[i+1] != ColorBlue.G || small.Pix[i+2] != ColorBlue.B {
		t.Error("constant image changed under box filter")
	}
}

func TestQuickDownsampleAverages(t *testing.T) {
	// Property: downsampled pixel values stay within [min, max] of the
	// source (box filter is an average).
	f := func(seed uint8) bool {
		img := image.NewRGBA(image.Rect(0, 0, 16, 16))
		for i := range img.Pix {
			img.Pix[i] = uint8(int(seed) * (i + 1) % 256)
		}
		small := Downsample(img, 4)
		for _, p := range small.Pix {
			_ = p // values are averages of bytes; always in range by construction
		}
		return small.Bounds().Dx() == 4 && small.Bounds().Dy() == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLegibilityLoss(t *testing.T) {
	// No loss at original resolution.
	if l := LegibilityLoss(1, 0.5); l != 0 {
		t.Errorf("loss at 1x = %v", l)
	}
	// 8x keeps low-salience annotations readable (the §IV-B finding).
	if l := LegibilityLoss(8, 0.65); l != 0 {
		t.Errorf("loss at 8x salience 0.65 = %v, want 0", l)
	}
	// 16x destroys detail for small annotations but not big shapes.
	small := LegibilityLoss(16, 0.65)
	large := LegibilityLoss(16, 0.95)
	if small <= large {
		t.Errorf("16x loss: small %v should exceed large %v", small, large)
	}
	if small < 0.2 {
		t.Errorf("16x small-annotation loss %v too mild", small)
	}
}

func TestQuickLegibilityMonotone(t *testing.T) {
	// Property: loss is non-decreasing in downsample factor and
	// non-increasing in salience.
	f := func(fRaw, sRaw uint8) bool {
		factor := 1 + int(fRaw)%31
		sal := 0.1 + float64(sRaw%90)/100
		l1 := LegibilityLoss(factor, sal)
		l2 := LegibilityLoss(factor+4, sal)
		l3 := LegibilityLoss(factor, sal+0.05)
		return l2 >= l1-1e-12 && l3 <= l1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Patch encoder ------------------------------------------------------------

func TestEncodePatches(t *testing.T) {
	img := Render(sampleScene(KindSchematic))
	f := EncodePatches(img, 16)
	if f.PatchesX != 40 || f.PatchesY != 30 {
		t.Errorf("patch grid %dx%d", f.PatchesX, f.PatchesY)
	}
	if len(f.Vectors) != f.PatchesX*f.PatchesY {
		t.Errorf("vector count %d", len(f.Vectors))
	}
	if f.InkFraction() <= 0 {
		t.Error("rendered scene should have inked patches")
	}
	blank := EncodePatches(NewCanvas(64, 64).Image(), 16)
	if blank.InkFraction() != 0 {
		t.Error("blank canvas should have zero ink")
	}
}

func TestEncodePatchesEdgeEnergy(t *testing.T) {
	// A vertical edge produces horizontal gradient energy.
	c := NewCanvas(32, 32)
	c.FillRect(16, 0, 31, 31, ColorBlack)
	f := EncodePatches(c.Image(), 32)
	v := f.Vectors[0]
	if v[2] <= 0 {
		t.Errorf("horizontal edge energy %v, want positive", v[2])
	}
}

// --- Builders --------------------------------------------------------------

func TestBuilders(t *testing.T) {
	bd := NewBlockDiagram(KindDiagram, "T", []string{"A", "B", "C"}, []string{"x=1"})
	if len(bd.CriticalElements()) < 4 {
		t.Errorf("block diagram criticals %d", len(bd.CriticalElements()))
	}
	tbl := NewTableScene(KindTable, "T", []string{"k", "v"},
		[][]string{{"a", "1"}, {"b", "2"}}, map[int]bool{1: true})
	crit := tbl.CriticalElements()
	if len(crit) != 2 {
		t.Errorf("table criticals %d, want 2 (value column)", len(crit))
	}
	fig := NewAnnotatedFigure(KindFigure, "T", "caption", []string{"a", "b"})
	if len(fig.CriticalElements()) != 3 {
		t.Errorf("figure criticals %d", len(fig.CriticalElements()))
	}
	grid := NewGridScene(KindDiagram, "T", 3, 3, map[[2]int]string{{0, 0}: "A"})
	if len(grid.Elements) != 9 {
		t.Errorf("grid elements %d", len(grid.Elements))
	}
	wf := NewWaveformScene("T", map[string][]int{"clk": {0, 1, 0, 1}}, []string{"clk"})
	if len(wf.Elements) != 1 {
		t.Errorf("waveform elements %d", len(wf.Elements))
	}
	if inkCount(Render(wf)) < 20 {
		t.Error("waveform rendered almost nothing")
	}
}

func TestThickLineAndAddAll(t *testing.T) {
	c := NewCanvas(40, 40)
	c.ThickLine(5, 20, 35, 20, 4, ColorBlack)
	// A thick horizontal line paints pixels above and below the axis.
	img := c.Image()
	if img.Pix[img.PixOffset(20, 19)] != 0 || img.Pix[img.PixOffset(20, 21)] != 0 {
		t.Error("thick line has no thickness")
	}
	c.ThickLine(5, 5, 10, 5, 1, ColorBlack) // degenerates to Line

	s := NewScene(KindDiagram, "t")
	s.AddAll(
		Element{Type: ElemBox, Name: "a"},
		Element{Type: ElemBox, Name: "b"},
	)
	if len(s.Elements) != 2 {
		t.Errorf("AddAll added %d", len(s.Elements))
	}
}

func TestGateShapes(t *testing.T) {
	// Every gate kind renders distinctly and with ink.
	kinds := []string{"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF", "DFF"}
	imgs := make(map[string]int, len(kinds))
	for _, k := range kinds {
		s := NewScene(KindSchematic, "")
		s.Add(Element{Type: ElemGate, Name: "g", Label: k, X: 100, Y: 100})
		imgs[k] = inkCount(Render(s))
		if imgs[k] < 20 {
			t.Errorf("gate %s rendered %d ink pixels", k, imgs[k])
		}
	}
	// Inverting variants carry a bubble: more ink than the base shape.
	if imgs["NAND"] <= imgs["AND"] {
		t.Error("NAND should add a bubble over AND")
	}
}

func TestTextMultilineAndUnknownGlyph(t *testing.T) {
	c := NewCanvas(120, 60)
	c.Text(4, 4, "AB\nCD", 1, ColorBlack)
	c.Text(4, 30, "é", 1, ColorBlack) // unknown rune falls back to '?'
	if inkCount(c.Image()) < 10 {
		t.Error("multiline text drew nothing")
	}
}

func TestLayerColorFallback(t *testing.T) {
	if LayerColor("poly") == LayerColor("unknown-layer") {
		t.Error("poly should have a dedicated color")
	}
	if LayerColor("unknown-layer") != ColorGray {
		t.Error("unknown layers should be gray")
	}
}

func TestKindStringFallback(t *testing.T) {
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should still print")
	}
}
