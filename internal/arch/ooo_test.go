package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOoOIndependentStream(t *testing.T) {
	// Eight independent ALU ops on a 2-wide core with 2 ALUs: 4 cycles.
	prog := make([]Instr, 8)
	for i := range prog {
		prog[i] = Instr{Op: OpALU, Dest: i + 1, Src1: 20}
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("8 independent ops, 2-wide: %d cycles, want 4", res.Cycles)
	}
	if ipc := res.IPC(); ipc != 2 {
		t.Errorf("IPC %v, want 2", ipc)
	}
}

func TestOoODependencyChain(t *testing.T) {
	// A pure RAW chain serialises completely regardless of width.
	prog := []Instr{
		{Op: OpALU, Dest: 1, Src1: 9},
		{Op: OpALU, Dest: 2, Src1: 1},
		{Op: OpALU, Dest: 3, Src1: 2},
		{Op: OpALU, Dest: 4, Src1: 3},
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("chain of 4: %d cycles, want 4", res.Cycles)
	}
}

func TestOoOHidesLoadLatency(t *testing.T) {
	// A load (3 cycles) plus independent ALU work: the ALU work fills
	// the shadow of the load.
	prog := []Instr{
		{Op: OpLoad, Dest: 1, Src1: 9},
		{Op: OpALU, Dest: 2, Src1: 8},
		{Op: OpALU, Dest: 3, Src1: 8},
		{Op: OpALU, Dest: 4, Src1: 1}, // consumer of the load
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		t.Fatal(err)
	}
	// Load issues cycle 1, completes 3; consumer issues cycle 4.
	if res.IssueCycle[3] != 4 {
		t.Errorf("load consumer issued at %d, want 4", res.IssueCycle[3])
	}
	// The two independent ALU ops issued before the load finished.
	if res.IssueCycle[1] > 2 || res.IssueCycle[2] > 2 {
		t.Errorf("independent work not hoisted: issue cycles %v", res.IssueCycle)
	}
}

func TestOoORenamingIgnoresWAW(t *testing.T) {
	// Two writes to r1 with no reads between them: renaming lets them
	// proceed in parallel (WAW is not a dependency).
	prog := []Instr{
		{Op: OpALU, Dest: 1, Src1: 8},
		{Op: OpALU, Dest: 1, Src1: 9},
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueCycle[0] != 1 || res.IssueCycle[1] != 1 {
		t.Errorf("WAW pair issued at %v, want both cycle 1", res.IssueCycle)
	}
}

func TestOoOStructuralHazard(t *testing.T) {
	// Two loads with a single memory unit serialise on the unit.
	prog := []Instr{
		{Op: OpLoad, Dest: 1, Src1: 8},
		{Op: OpLoad, Dest: 2, Src1: 9},
	}
	res, err := SimulateOoO(prog, DefaultOoO())
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueCycle[1] != res.CompleteCycle[0]+1 {
		t.Errorf("second load issued at %d, first completes %d",
			res.IssueCycle[1], res.CompleteCycle[0])
	}
}

func TestOoOConfigValidation(t *testing.T) {
	prog := []Instr{{Op: OpALU, Dest: 1}}
	bad := DefaultOoO()
	bad.IssueWidth = 0
	if _, err := SimulateOoO(prog, bad); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = DefaultOoO()
	bad.Units[FUALU] = 0
	if _, err := SimulateOoO(prog, bad); err == nil {
		t.Error("zero ALU count accepted")
	}
	if _, err := InOrderBaselineCycles(prog, bad); err == nil {
		t.Error("in-order baseline accepted bad config")
	}
}

func TestOoOEmptyProgram(t *testing.T) {
	res, err := SimulateOoO(nil, DefaultOoO())
	if err != nil || res.Cycles != 0 {
		t.Errorf("empty program: %v %v", res, err)
	}
	c, err := InOrderBaselineCycles(nil, DefaultOoO())
	if err != nil || c != 0 {
		t.Errorf("empty in-order baseline: %d %v", c, err)
	}
}

func randomOoOProgram(r *rand.Rand) []Instr {
	n := 2 + r.Intn(14)
	prog := make([]Instr, n)
	for i := range prog {
		op := []OpClass{OpALU, OpALU, OpLoad, OpStore}[r.Intn(4)]
		prog[i] = Instr{Op: op, Dest: r.Intn(8), Src1: r.Intn(8), Src2: r.Intn(8)}
		if op == OpStore {
			prog[i].Dest = 0
		}
	}
	return prog
}

func TestQuickOoONeverSlowerThanInOrder(t *testing.T) {
	// Property: dataflow scheduling with a window never takes longer
	// than the in-order single-issue baseline on the same machine.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomOoOProgram(r)
		cfg := DefaultOoO()
		ooo, err := SimulateOoO(prog, cfg)
		if err != nil {
			return false
		}
		inOrder, err := InOrderBaselineCycles(prog, cfg)
		if err != nil {
			return false
		}
		return ooo.Cycles <= inOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickOoORespectsRAW(t *testing.T) {
	// Property: no instruction issues before its RAW producers complete.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomOoOProgram(r)
		res, err := SimulateOoO(prog, DefaultOoO())
		if err != nil {
			return false
		}
		lastWriter := map[int]int{}
		for i, ins := range prog {
			for _, src := range []int{ins.Src1, ins.Src2} {
				if src == 0 {
					continue
				}
				if w, ok := lastWriter[src]; ok {
					if res.IssueCycle[i] <= res.CompleteCycle[w] {
						return false
					}
				}
			}
			if ins.Dest != 0 {
				lastWriter[ins.Dest] = i
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickWiderNeverSlower(t *testing.T) {
	// Property: increasing issue width never increases cycles.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomOoOProgram(r)
		narrow := DefaultOoO()
		narrow.IssueWidth = 1
		wide := DefaultOoO()
		wide.IssueWidth = 4
		a, err1 := SimulateOoO(prog, narrow)
		b, err2 := SimulateOoO(prog, wide)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Cycles <= a.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
