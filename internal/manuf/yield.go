package manuf

import "math"

// PoissonYield returns the die yield under the Poisson model:
// Y = exp(-A*D) with die area A (cm^2) and defect density D (1/cm^2).
func PoissonYield(areaCM2, defectDensity float64) float64 {
	return math.Exp(-areaCM2 * defectDensity)
}

// MurphyYield returns the die yield under Murphy's model:
// Y = ((1 - exp(-A*D)) / (A*D))^2.
func MurphyYield(areaCM2, defectDensity float64) float64 {
	ad := areaCM2 * defectDensity
	if ad == 0 {
		return 1
	}
	f := (1 - math.Exp(-ad)) / ad
	return f * f
}

// SeedsYield returns Y = 1/(1 + A*D), the Seeds (exponential defect
// distribution) model.
func SeedsYield(areaCM2, defectDensity float64) float64 {
	return 1 / (1 + areaCM2*defectDensity)
}

// GrossDiePerWafer estimates the die count on a circular wafer with the
// standard edge-corrected formula:
// N = pi*(d/2)^2/A - pi*d/sqrt(2*A), with wafer diameter d (mm) and die
// area A (mm^2).
func GrossDiePerWafer(waferDiameterMM, dieAreaMM2 float64) int {
	if dieAreaMM2 <= 0 {
		return 0
	}
	r := waferDiameterMM / 2
	n := math.Pi*r*r/dieAreaMM2 - math.Pi*waferDiameterMM/math.Sqrt(2*dieAreaMM2)
	if n < 0 {
		return 0
	}
	return int(n)
}

// GoodDiePerWafer multiplies the gross count by the yield model result.
func GoodDiePerWafer(waferDiameterMM, dieAreaMM2, defectDensityPerCM2 float64) int {
	gross := GrossDiePerWafer(waferDiameterMM, dieAreaMM2)
	areaCM2 := dieAreaMM2 / 100
	return int(float64(gross) * PoissonYield(areaCM2, defectDensityPerCM2))
}

// DefectClass enumerates wafer-map defect signatures.
type DefectClass int

// Common wafer-map defect classes.
const (
	DefectRandom DefectClass = iota
	DefectCluster
	DefectScratch
	DefectEdgeRing
	DefectCenter
)

// String names the class.
func (d DefectClass) String() string {
	switch d {
	case DefectRandom:
		return "random particles"
	case DefectCluster:
		return "cluster defect"
	case DefectScratch:
		return "scratch"
	case DefectEdgeRing:
		return "edge ring"
	case DefectCenter:
		return "center spot"
	default:
		return "unknown"
	}
}

// Signature describes how the class looks on a wafer map.
func (d DefectClass) Signature() string {
	switch d {
	case DefectRandom:
		return "failing dies scattered uniformly across the wafer"
	case DefectCluster:
		return "a tight blob of failing dies in one region"
	case DefectScratch:
		return "a thin straight or arc-shaped line of failing dies"
	case DefectEdgeRing:
		return "failing dies concentrated in an annulus at the wafer edge"
	case DefectCenter:
		return "failing dies concentrated at the wafer center"
	default:
		return ""
	}
}

// ClassifyWaferMap applies simple geometric rules to a failing-die
// coordinate list (wafer radius normalised to 1): line-fit residual
// detects scratches, mean radius detects edge rings and center spots,
// dispersion detects clusters, else random.
func ClassifyWaferMap(fails [][2]float64) DefectClass {
	n := len(fails)
	if n == 0 {
		return DefectRandom
	}
	var meanR, mx, my float64
	for _, f := range fails {
		meanR += math.Hypot(f[0], f[1])
		mx += f[0]
		my += f[1]
	}
	meanR /= float64(n)
	mx /= float64(n)
	my /= float64(n)
	// Spread around the centroid.
	var spread float64
	for _, f := range fails {
		spread += math.Hypot(f[0]-mx, f[1]-my)
	}
	spread /= float64(n)
	if lineResidual(fails) < 0.05 && n >= 4 && spread > 0.2 {
		return DefectScratch
	}
	switch {
	case meanR > 0.8:
		return DefectEdgeRing
	case meanR < 0.25:
		return DefectCenter
	case spread < 0.2:
		return DefectCluster
	default:
		return DefectRandom
	}
}

// lineResidual returns the RMS perpendicular distance of the points to
// their best-fit line (total least squares via 2x2 eigen decomposition).
func lineResidual(pts [][2]float64) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 1
	}
	var mx, my float64
	for _, p := range pts {
		mx += p[0]
		my += p[1]
	}
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p[0]-mx, p[1]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	// Smaller eigenvalue of the covariance = variance normal to line.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	lambda := (tr - math.Sqrt(tr*tr-4*det)) / 2
	if lambda < 0 {
		lambda = 0
	}
	return math.Sqrt(lambda / n)
}
