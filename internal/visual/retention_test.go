package visual

import "testing"

func TestDetailRetentionOrdering(t *testing.T) {
	// On a rendered scene with text annotations, retention must fall
	// monotonically with the downsampling factor — the pixel-level
	// ground truth behind LegibilityLoss.
	s := sampleScene(KindSchematic)
	for i := 0; i < 6; i++ {
		s.Add(Element{Type: ElemValue, Name: nameN("v", i),
			Label: "R=2.2k C=100n gm=4m", X: 60, Y: float64(330 + 18*i)})
	}
	img := Render(s)
	r1 := DetailRetention(img, Downsample(img, 1))
	r8 := DetailRetention(img, Downsample(img, 8))
	r16 := DetailRetention(img, Downsample(img, 16))
	if r1 < 0.99 {
		t.Errorf("retention at 1x = %v, want ~1", r1)
	}
	if !(r8 > r16) {
		t.Errorf("retention should fall with factor: 8x %v vs 16x %v", r8, r16)
	}
	if r16 > 0.95 {
		t.Errorf("16x retention %v suspiciously high for a text-heavy figure", r16)
	}
}

func nameN(p string, i int) string { return p + string(rune('0'+i)) }

func TestDetailRetentionAgreesWithLegibilityLoss(t *testing.T) {
	// The analytic model and the pixel measurement must agree in
	// ordering: higher modelled loss at 16x than at 8x corresponds to
	// lower measured retention at 16x than at 8x.
	s := sampleScene(KindSchematic)
	img := Render(s)
	measured8 := DetailRetention(img, Downsample(img, 8))
	measured16 := DetailRetention(img, Downsample(img, 16))
	modelled8 := LegibilityLoss(8, 0.65)
	modelled16 := LegibilityLoss(16, 0.65)
	if (modelled16 > modelled8) != (measured16 < measured8) {
		t.Errorf("model and measurement disagree: loss %v->%v, retention %v->%v",
			modelled8, modelled16, measured8, measured16)
	}
}

func TestDetailRetentionBlank(t *testing.T) {
	blank := NewCanvas(64, 64).Image()
	if r := DetailRetention(blank, Downsample(blank, 8)); r != 1 {
		t.Errorf("blank image retention %v, want 1 (nothing to lose)", r)
	}
}
