package arch

import "fmt"

// VMConfig describes a paged virtual memory system.
type VMConfig struct {
	PageSize     int // bytes, power of two
	VirtualBits  int
	PhysicalBits int
}

// OffsetBits returns the page-offset width.
func (c VMConfig) OffsetBits() int { return log2i(c.PageSize) }

// VPNBits returns the virtual page number width.
func (c VMConfig) VPNBits() int { return c.VirtualBits - c.OffsetBits() }

// PFNBits returns the physical frame number width.
func (c VMConfig) PFNBits() int { return c.PhysicalBits - c.OffsetBits() }

// PageTableEntries returns the number of entries of a flat page table.
func (c VMConfig) PageTableEntries() int { return 1 << c.VPNBits() }

// Split decomposes a virtual address into (vpn, offset).
func (c VMConfig) Split(va uint64) (vpn, offset uint64) {
	ob := uint(c.OffsetBits())
	return va >> ob, va & (1<<ob - 1)
}

// Translate maps a virtual address through a page table (vpn -> pfn),
// returning the physical address or a page-fault error.
func (c VMConfig) Translate(va uint64, pageTable map[uint64]uint64) (uint64, error) {
	vpn, off := c.Split(va)
	pfn, ok := pageTable[vpn]
	if !ok {
		return 0, fmt.Errorf("arch: page fault on VPN 0x%x", vpn)
	}
	return pfn<<uint(c.OffsetBits()) | off, nil
}

// TLB is a small fully associative translation cache with LRU
// replacement.
type TLB struct {
	entries int
	slots   []tlbSlot
	tick    uint64

	Hits   int
	Misses int
}

type tlbSlot struct {
	valid bool
	vpn   uint64
	pfn   uint64
	used  uint64
}

// NewTLB returns a TLB with the given entry count.
func NewTLB(entries int) *TLB {
	return &TLB{entries: entries, slots: make([]tlbSlot, entries)}
}

// Lookup translates a VPN, filling from the page table on a miss.
// Returns the PFN and whether it hit.
func (t *TLB) Lookup(vpn uint64, pageTable map[uint64]uint64) (uint64, bool, error) {
	t.tick++
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].vpn == vpn {
			t.Hits++
			t.slots[i].used = t.tick
			return t.slots[i].pfn, true, nil
		}
	}
	t.Misses++
	pfn, ok := pageTable[vpn]
	if !ok {
		return 0, false, fmt.Errorf("arch: page fault on VPN 0x%x", vpn)
	}
	victim := 0
	for i := range t.slots {
		if !t.slots[i].valid {
			victim = i
			break
		}
		if t.slots[i].used < t.slots[victim].used {
			victim = i
		}
	}
	t.slots[victim] = tlbSlot{valid: true, vpn: vpn, pfn: pfn, used: t.tick}
	return pfn, false, nil
}

// MultiLevelEntries returns the per-level entry counts of a multi-level
// page table given the per-level index bit widths.
func MultiLevelEntries(levelBits []int) []int {
	out := make([]int, len(levelBits))
	for i, b := range levelBits {
		out[i] = 1 << b
	}
	return out
}
