package eval

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/dataset"
)

// InferenceOptions carries the evaluation-time knobs of §IV.
type InferenceOptions struct {
	// DownsampleFactor degrades the question image by the given integer
	// factor before the model sees it (1 = original resolution); the
	// §IV-B study uses 8 and 16.
	DownsampleFactor int
}

// Model is anything that can answer a benchmark question: the simulated
// VLMs of internal/vlm and the agent system of internal/agent both
// implement it. Implementations must be safe for concurrent Answer
// calls; everything in this repository is read-only after construction.
type Model interface {
	Name() string
	Answer(q *dataset.Question, opts InferenceOptions) string
}

// QuestionResult records one (model, question) outcome.
type QuestionResult struct {
	QuestionID string
	Category   dataset.Category
	Response   string
	Correct    bool
}

// Report aggregates Pass@1 over a benchmark run.
type Report struct {
	ModelName string
	Results   []QuestionResult
}

// Pass1 returns overall Pass@1.
func (r *Report) Pass1() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	c := 0
	for _, q := range r.Results {
		if q.Correct {
			c++
		}
	}
	return float64(c) / float64(len(r.Results))
}

// Pass1ByCategory returns Pass@1 per discipline.
func (r *Report) Pass1ByCategory() map[dataset.Category]float64 {
	total := make(map[dataset.Category]int)
	correct := make(map[dataset.Category]int)
	for _, q := range r.Results {
		total[q.Category]++
		if q.Correct {
			correct[q.Category]++
		}
	}
	out := make(map[dataset.Category]float64, len(total))
	for c, t := range total {
		out[c] = float64(correct[c]) / float64(t)
	}
	return out
}

// Runner evaluates models over a benchmark with a judge. It is a
// pre-composed instance of the staged pipeline (pipeline.go): a Source
// streams the questions, Inference and JudgeStage run on the worker
// pool, and a report sink collects results in canonical order.
//
// Workers selects the evaluation engine:
//
//	> 0  that many pooled worker goroutines
//	== 0 serial (the zero value keeps its historical behaviour)
//	< 0  auto: runtime.GOMAXPROCS(0) workers
//
// Results are deterministic regardless of Workers: every stochastic
// decision draws from an rng stream keyed by (model, question, stage),
// never from shared generator state, and results land in question order.
// A parallel run therefore produces byte-identical reports to a serial
// one (see TestTableIIDeterministicAcrossWorkers).
type Runner struct {
	Judge Judge
	Opts  InferenceOptions
	// Workers bounds concurrent question evaluations; see the type doc.
	Workers int
	// Observer, when non-nil, receives every completed event in
	// deterministic question order — the metrics/tracing seam. See the
	// Observer interface for the cancellation semantics.
	Observer Observer
}

// NewRunner returns a Runner with Workers defaulted to
// runtime.GOMAXPROCS(0) — the engine the paper-scale experiments
// (12 models x 2 collections x 142 questions) should run on.
func NewRunner() Runner {
	return Runner{Workers: runtime.GOMAXPROCS(0)}
}

// EffectiveWorkers normalizes the Workers knob: negative means auto
// (GOMAXPROCS), zero means serial, positive is taken as-is.
func (r Runner) EffectiveWorkers() int {
	switch {
	case r.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case r.Workers == 0:
		return 1
	default:
		return r.Workers
	}
}

// forEach runs fn(i) for every i in [0, n) on a fixed pool of at most
// workers goroutines pulling indices from a shared counter. workers <= 1
// (or tiny n) degenerates to an inline serial loop. Cancellation is
// cooperative at item granularity: the context is checked before each
// claim, an item in flight always completes, and no index is ever
// claimed twice. fn must be safe to call from multiple goroutines.
func forEach(ctx context.Context, workers, n int, fn func(int)) {
	forEachWorker(ctx, workers, n, func(_, i int) { fn(i) })
}

// forEachWorker is forEach with the executing worker's pool slot
// (0..effective workers-1; always 0 on the serial path) passed to fn.
// The slot index is what per-worker state — the judge's Scratch
// checkouts in Pipeline.Run — hangs off: a slot is owned by exactly one
// goroutine for the whole run, so slot-indexed state needs no locking.
// The slot must not influence results, only where reusable state lives;
// determinism across worker counts stays with the caller.
func forEachWorker(ctx context.Context, workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}()
	}
	wg.Wait()
}

// pipeline composes the Runner's stages over a source and sink.
func (r Runner) pipeline(src Source, sink Sink) *Pipeline {
	return &Pipeline{
		Source:   src,
		Infer:    modelInference{opts: r.Opts},
		Judge:    judgeStage{judge: r.Judge},
		Sink:     sink,
		Observer: r.Observer,
		Workers:  r.EffectiveWorkers(),
	}
}

// Evaluate runs one model over the benchmark.
func (r Runner) Evaluate(m Model, b *dataset.Benchmark) *Report {
	//lint:ignore errdrop context.Background never cancels, so the only possible error is nil
	rep, _ := r.EvaluateContext(context.Background(), m, b)
	return rep
}

// EvaluateContext runs one model over the benchmark with cooperative
// cancellation. On cancel it returns ctx.Err() together with a partial
// report holding a consistent prefix of the question order; every
// result present is byte-identical to the full run's.
func (r Runner) EvaluateContext(ctx context.Context, m Model, b *dataset.Benchmark) (*Report, error) {
	rep := &Report{}
	err := r.EvaluateInto(ctx, m, b, rep)
	return rep, err
}

// EvaluateInto is EvaluateContext writing into a caller-retained
// report: rep's ModelName is overwritten and its Results slice is
// truncated and refilled in place when its capacity already fits the
// benchmark, so a loop evaluating many models (or the same model
// repeatedly, as the benchmarks do) reuses one QuestionResult buffer
// instead of allocating per run.
func (r Runner) EvaluateInto(ctx context.Context, m Model, b *dataset.Benchmark, rep *Report) error {
	rep.ModelName = m.Name()
	rep.Results = sizeResults(rep.Results, len(b.Questions))
	sink := &reportSink{nq: len(b.Questions), reports: []*Report{rep}}
	return r.pipeline(benchmarkSource{model: m, questions: b.Questions}, sink).Run(ctx)
}

// sizeResults truncates rs for refilling, reallocating only when the
// capacity cannot hold n results.
func sizeResults(rs []QuestionResult, n int) []QuestionResult {
	if cap(rs) < n {
		return make([]QuestionResult, 0, n)
	}
	return rs[:0]
}

// EvaluateAll runs every model and returns reports in input order. The
// (model, question) grid is flattened into one task list so the worker
// pool stays busy across model boundaries — a cheap model finishing
// early does not idle its workers while an expensive one lags.
func (r Runner) EvaluateAll(models []Model, b *dataset.Benchmark) []*Report {
	//lint:ignore errdrop context.Background never cancels, so the only possible error is nil
	out, _ := r.EvaluateAllContext(context.Background(), models, b)
	return out
}

// EvaluateAllContext is EvaluateAll with cooperative cancellation. On
// cancel the returned reports hold a consistent prefix of the
// flattened model-major order: models before the cut-off are complete,
// the model at the cut-off has a prefix of its questions, later models
// are empty.
func (r Runner) EvaluateAllContext(ctx context.Context, models []Model, b *dataset.Benchmark) ([]*Report, error) {
	// One header block and one backing array for the whole grid instead
	// of two allocations per model. The three-index slice expressions
	// cap each report's window at its own nq results, so an append past
	// a model's share can never bleed into its neighbour's window.
	nq := len(b.Questions)
	out := make([]*Report, len(models))
	headers := make([]Report, len(models))
	backing := make([]QuestionResult, len(models)*nq)
	for i := range models {
		out[i] = &headers[i]
		out[i].Results = backing[i*nq : i*nq : (i+1)*nq]
	}
	err := r.EvaluateAllInto(ctx, models, b, out)
	return out, err
}

// EvaluateAllInto is EvaluateAllContext writing into caller-retained
// reports (one per model, same order): each report's ModelName is
// overwritten and its Results refilled in place when capacity fits, so
// a grid evaluated repeatedly — resolution sweeps, benchmark loops —
// reuses its QuestionResult buffers across runs.
func (r Runner) EvaluateAllInto(ctx context.Context, models []Model, b *dataset.Benchmark, reports []*Report) error {
	if len(reports) != len(models) {
		return fmt.Errorf("eval: %d reports for %d models", len(reports), len(models))
	}
	nq := len(b.Questions)
	for i, m := range models {
		reports[i].ModelName = m.Name()
		reports[i].Results = sizeResults(reports[i].Results, nq)
	}
	if nq == 0 || len(models) == 0 {
		return nil
	}
	sink := &reportSink{nq: nq, reports: reports}
	return r.pipeline(gridSource{models: models, questions: b.Questions}, sink).Run(ctx)
}

// FormatTableII renders reports in the layout of the paper's Table II:
// one row per model, Pass@1 per category plus overall, for the
// with-choice and without-choice runs side by side.
func FormatTableII(withChoice, noChoice []*Report) string {
	var sb strings.Builder
	cats := dataset.Categories()
	sb.WriteString(fmt.Sprintf("%-20s |", "Model"))
	for _, c := range cats {
		sb.WriteString(fmt.Sprintf(" %-7s", truncate(c.Short(), 7)))
	}
	sb.WriteString(" | all   ")
	if noChoice != nil {
		sb.WriteString("||")
		for _, c := range cats {
			sb.WriteString(fmt.Sprintf(" %-7s", truncate(c.Short(), 7)))
		}
		sb.WriteString(" | all")
	}
	sb.WriteString("\n")
	for i, rep := range withChoice {
		sb.WriteString(fmt.Sprintf("%-20s |", rep.ModelName))
		by := rep.Pass1ByCategory()
		for _, c := range cats {
			sb.WriteString(fmt.Sprintf(" %.2f   ", by[c]))
		}
		sb.WriteString(fmt.Sprintf("| %.2f  ", rep.Pass1()))
		if noChoice != nil && i < len(noChoice) {
			sb.WriteString("||")
			byN := noChoice[i].Pass1ByCategory()
			for _, c := range cats {
				sb.WriteString(fmt.Sprintf(" %.2f   ", byN[c]))
			}
			sb.WriteString(fmt.Sprintf("| %.2f", noChoice[i].Pass1()))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// WrongQuestions lists IDs the model missed, sorted.
func (r *Report) WrongQuestions() []string {
	var out []string
	for _, q := range r.Results {
		if !q.Correct {
			out = append(out, q.QuestionID)
		}
	}
	sort.Strings(out)
	return out
}

// truncate shortens s to at most n runes. Truncating by bytes could
// split a multi-byte rune in a category short name and emit invalid
// UTF-8 into the table.
func truncate(s string, n int) string {
	if utf8.RuneCountInString(s) <= n {
		return s
	}
	rs := []rune(s)
	return string(rs[:n])
}
