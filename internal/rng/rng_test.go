package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New("model", "q1", "stage")
	b := New("model", "q1", "stage")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed parts produced different streams")
		}
	}
}

func TestStreamIsolation(t *testing.T) {
	// Different part lists must give different streams (with
	// overwhelming probability).
	a := New("model", "q1")
	b := New("model", "q2")
	same := 0
	for i := 0; i < 20; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams suspiciously correlated: %d/20 equal", same)
	}
	// Concatenation ambiguity is prevented by separators:
	// ("ab", "c") != ("a", "bc").
	if Seed("ab", "c") == Seed("a", "bc") {
		t.Error("seed parts not separated")
	}
}

func TestBernoulliEdges(t *testing.T) {
	if Bernoulli(0, "x") {
		t.Error("p=0 fired")
	}
	if !Bernoulli(1, "x") {
		t.Error("p=1 did not fire")
	}
	// Deterministic per stream.
	if Bernoulli(0.5, "a", "b") != Bernoulli(0.5, "a", "b") {
		t.Error("bernoulli not deterministic")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if Bernoulli(0.3, "freq", string(rune(i))) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("empirical rate %v for p=0.3", rate)
	}
}

func TestQuickPickInRange(t *testing.T) {
	f := func(nRaw uint8, key string) bool {
		n := int(nRaw%20) + 1
		p := Pick(n, key)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Pick(0, "x") != 0 || Pick(1, "x") != 0 {
		t.Error("degenerate Pick")
	}
}
