package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeAccessLogE2E drives a logged server through a browse + run
// round-trip and verifies every request produced one well-formed JSON
// access record. When CHIPVQA_SERVE_ACCESS_LOG names a path the log is
// written there (CI uploads it as a build artifact); otherwise it goes
// to a temp dir.
func TestServeAccessLogE2E(t *testing.T) {
	path := os.Getenv("CHIPVQA_SERVE_ACCESS_LOG")
	if path == "" {
		path = filepath.Join(t.TempDir(), "access.jsonl")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	cfg.AccessLog = f
	_, ts := startServer(t, cfg)

	wantLines := 0
	get := func(p string, wantStatus int) {
		t.Helper()
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", p, resp.StatusCode, wantStatus)
		}
		wantLines++
	}
	get("/healthz", http.StatusOK)
	get("/v1/questions?category=Digital&limit=2", http.StatusOK)
	get("/v1/questions?category=bogus", http.StatusBadRequest)
	get("/v1/questions/no-such-id", http.StatusNotFound)
	st := postRun(t, ts, `{"models":["GPT4o"],"session":"logged"}`, http.StatusCreated)
	wantLines++
	waitTerminal(t, ts, st.ID) // polls GET /v1/runs/{id} — logged too
	get("/v1/runs/"+st.ID+"/report", http.StatusOK)

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	logf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = logf.Close() }()

	type record struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Query  string  `json:"query"`
		Status int     `json:"status"`
		Bytes  int     `json:"bytes"`
		DurMS  float64 `json:"dur_ms"`
		Remote string  `json:"remote"`
	}
	var recs []record
	sc := bufio.NewScanner(logf)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("malformed access record %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) < wantLines {
		t.Fatalf("log has %d records, want at least %d", len(recs), wantLines)
	}

	byKey := make(map[string]record)
	for _, r := range recs {
		if r.Method == "" || !strings.HasPrefix(r.Path, "/") || r.Status == 0 || r.Remote == "" {
			t.Errorf("incomplete record: %+v", r)
		}
		if _, err := time.Parse(time.RFC3339Nano, r.Time); err != nil {
			t.Errorf("record time %q is not RFC3339Nano: %v", r.Time, err)
		}
		byKey[r.Method+" "+r.Path] = r
	}
	checks := map[string]int{
		"GET /healthz":                      http.StatusOK,
		"GET /v1/questions":                 http.StatusBadRequest, // last hit wins: the bogus-category call
		"GET /v1/questions/no-such-id":      http.StatusNotFound,
		"POST /v1/runs":                     http.StatusCreated,
		"GET /v1/runs/" + st.ID + "/report": http.StatusOK,
	}
	for key, status := range checks {
		r, ok := byKey[key]
		if !ok {
			t.Errorf("no access record for %s", key)
			continue
		}
		if r.Status != status {
			t.Errorf("%s logged status %d, want %d", key, r.Status, status)
		}
		if r.Bytes <= 0 {
			t.Errorf("%s logged %d bytes", key, r.Bytes)
		}
	}
	if r := byKey["GET /v1/questions"]; r.Query != "category=bogus" {
		t.Errorf("query string not captured: %+v", r)
	}
}
