package serve

import (
	"context"
	"errors"
	"sync"

	"repro/internal/eval"
)

// errTooManySessions rejects a run whose session would push the server
// past its concurrent-tenant cap.
var errTooManySessions = errors.New("serve: too many concurrent sessions")

// scheduler is the multi-tenant admission layer over one shared
// eval.WorkerPool. A session is any client-chosen string; the scheduler
// caps how many distinct sessions hold or await workers at once
// (-max-sessions) and clamps each run's grant to the per-session share
// (-workers-per-session). Fairness across admitted sessions comes from
// the pool's weighted FIFO queue: requests are served strictly in
// arrival order and the head is never starved by lighter requests
// behind it.
type scheduler struct {
	pool       *eval.WorkerPool
	perSession int

	mu          sync.Mutex
	maxSessions int
	active      map[string]int // session → runs admitted (incl. queued)
}

// newScheduler builds the admission layer. pool must be non-nil;
// maxSessions < 1 defaults to 16; perSession < 1 defaults to an equal
// split of the pool across the session cap (minimum 1).
func newScheduler(pool *eval.WorkerPool, maxSessions, perSession int) *scheduler {
	if maxSessions < 1 {
		maxSessions = 16
	}
	if perSession < 1 {
		perSession = pool.Cap() / maxSessions
		if perSession < 1 {
			perSession = 1
		}
	}
	return &scheduler{
		pool:        pool,
		perSession:  perSession,
		maxSessions: maxSessions,
		active:      make(map[string]int),
	}
}

// enter admits a run into its session, or refuses when the session is
// new and the tenant cap is reached. The returned leave func is
// idempotent and must be called when the run ends.
func (sc *scheduler) enter(session string) (func(), error) {
	sc.mu.Lock()
	if sc.active[session] == 0 && len(sc.active) >= sc.maxSessions {
		sc.mu.Unlock()
		return nil, errTooManySessions
	}
	sc.active[session]++
	sc.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { sc.exit(session) }) }, nil
}

// exit drops one run from a session's admission count.
func (sc *scheduler) exit(session string) {
	sc.mu.Lock()
	if sc.active[session] > 1 {
		sc.active[session]--
	} else {
		delete(sc.active, session)
	}
	sc.mu.Unlock()
}

// acquire blocks for the run's worker grant. want < 1 asks for the full
// per-session share; any request is clamped to that share so one tenant
// cannot monopolise the pool.
func (sc *scheduler) acquire(ctx context.Context, want int) (int, func(), error) {
	if want < 1 || want > sc.perSession {
		want = sc.perSession
	}
	return sc.pool.Acquire(ctx, want)
}

// sessions is the current number of distinct admitted sessions.
func (sc *scheduler) sessions() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.active)
}
