package digital

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/visual"
)

// Generate produces the 35 Digital Design questions of the benchmark
// (all multiple choice, per §III-B1): 20 schematics, 6 tables, 6
// diagrams, 2 equation sheets and 1 neural-net figure. Every golden
// answer is computed by the engines in this package; distractors are
// verified non-equivalent mutations.
func Generate() []*dataset.Question {
	var qs []*dataset.Question
	add := func(q *dataset.Question) { qs = append(qs, q) }

	// --- Schematics -------------------------------------------------

	// d01..d04: analyse a random two-level gate circuit.
	circuitSpecs := []struct {
		id    string
		seed  string
		depth int
	}{
		{"d01", "alpha", 2}, {"d02", "beta", 2}, {"d03", "gamma", 3}, {"d04", "delta", 3},
	}
	for _, spec := range circuitSpecs {
		n, _ := randomCircuit(spec.seed, spec.depth)
		tt, err := n.TruthTable("F")
		if err != nil {
			panic(err)
		}
		golden := Minimize(tt.Vars, tt.Minterms(), nil)
		scene := CircuitScene(n, "Logic circuit", nil)
		add(dataset.NewMC(spec.id, dataset.Digital, "gate-analysis",
			"The figure shows a logic circuit built from basic gates with inputs "+
				joinVars(tt.Vars)+". Which expression describes the output F of the circuit?",
			scene, "F = "+golden.String(),
			expressionDistractors(spec.id, tt.Vars, tt.Minterms(), "F"),
			0.45+0.05*float64(spec.depth)))
	}

	// d05, d06: NAND-NAND implementation.
	for i, seed := range []string{"nand1", "nand2"} {
		id := fmt.Sprintf("d%02d", 5+i)
		vars := []string{"A", "B", "C"}
		minterms := randomMinterms(seed, 3, 3+i)
		golden := Minimize(vars, minterms, nil)
		n := nandNandNetlist(golden, vars)
		scene := CircuitScene(n, "NAND-only circuit", nil)
		add(dataset.NewMC(id, dataset.Digital, "nand-nand",
			"The circuit in the figure is built exclusively from NAND gates in a "+
				"two-level NAND-NAND structure. Which sum-of-products function does it implement?",
			scene, "F = "+golden.String(),
			expressionDistractors(id, vars, minterms, "F"), 0.55))
	}

	// d07, d08: 4:1 multiplexer with data inputs tied to constants or C.
	muxCases := []struct {
		id   string
		data [4]string // value on data input i, selected by S1 S0 = i
	}{
		{"d07", [4]string{"0", "C", "C'", "1"}},
		{"d08", [4]string{"C", "1", "0", "C"}},
	}
	for _, mc := range muxCases {
		golden := muxFunction(mc.data)
		scene := muxScene(mc.data)
		add(dataset.NewMC(mc.id, dataset.Digital, "mux",
			"A 4:1 multiplexer has select inputs S1 (MSB) and S0, and its four data "+
				"inputs D0..D3 are tied to the constants and signals shown in the figure. "+
				"Which function F(S1, S0, C) does the circuit realize?",
			scene, "F = "+golden.String(),
			expressionDistractors(mc.id, []string{"C", "S0", "S1"},
				Minterms(golden, []string{"C", "S0", "S1"}), "F"), 0.6))
	}

	// d09, d10: circuit recognition (half adder, full adder).
	add(recognitionQuestion("d09", halfAdderNetlist(), "half adder",
		[3]string{"full adder", "2-bit magnitude comparator", "2-to-1 multiplexer"},
		"The figure shows the truth-table behaviour and gate-level circuit for adding "+
			"two 1-bit integers, producing a sum and a carry. What is this circuit usually called?"))
	// d10 deliberately carries the benchmark's shortest prompt (Table I
	// reports prompts from 5 tokens up): the figure must do all the work.
	add(recognitionQuestion("d10", fullAdderNetlist(), "full adder",
		[3]string{"half adder", "4-bit ripple-carry adder", "carry-lookahead unit"},
		"Name this circuit."))

	// d11, d12: output as a function of C with A, B fixed.
	gateValueCases := []struct {
		id     string
		a, b   bool
		kind   GateKind
		second GateKind
	}{
		{"d11", true, false, GateAnd, GateOr},
		{"d12", true, true, GateNand, GateXor},
	}
	for _, gc := range gateValueCases {
		n := NewNetlist().
			AddGate(gc.kind, "G1", "n1", "A", "B").
			AddGate(gc.second, "G2", "F", "n1", "C")
		golden := gateValueAnswer(n, gc.a, gc.b)
		scene := CircuitScene(n, "Two-gate network", nil)
		scene.Add(visual.Element{
			Type: visual.ElemValue, Name: "pin-values",
			Label: fmt.Sprintf("A=%d B=%d", boolBit(gc.a), boolBit(gc.b)),
			X:     30, Y: 30, Salience: 0.65, Critical: true,
		})
		add(dataset.NewMC(gc.id, dataset.Digital, "gate-eval",
			fmt.Sprintf("With the input values A=%d and B=%d annotated in the figure, "+
				"the output F of the circuit equals which of the following?",
				boolBit(gc.a), boolBit(gc.b)),
			scene, golden, dataset.PickOthers(golden, []string{"0", "1", "C", "C'"}), 0.35))
	}

	// d13, d14: SR latch behaviour from a cross-coupled NOR schematic.
	latchCases := []struct {
		id     string
		s, r   int
		golden string
		others [3]string
	}{
		{"d13", 1, 0, "Q is set to 1",
			[3]string{"Q is reset to 0", "Q holds its previous value", "Q oscillates (invalid)"}},
		{"d14", 0, 0, "Q holds its previous value",
			[3]string{"Q is set to 1", "Q is reset to 0", "Q oscillates (invalid)"}},
	}
	for _, lc := range latchCases {
		n := NewNetlist().
			AddGate(GateNor, "G1", "Q", "R", "Qb").
			AddGate(GateNor, "G2", "Qb", "S", "Q")
		scene := CircuitScene(n, "Cross-coupled NOR latch", map[string]bool{"Q": true, "Qb": true})
		scene.Add(visual.Element{
			Type: visual.ElemValue, Name: "sr-values",
			Label: fmt.Sprintf("S=%d R=%d", lc.s, lc.r),
			X:     30, Y: 30, Salience: 0.65, Critical: true,
		})
		add(dataset.NewMC(lc.id, dataset.Digital, "latch",
			fmt.Sprintf("The figure shows a latch built from two cross-coupled NOR gates. "+
				"With S=%d and R=%d applied as annotated, what happens to the output Q?", lc.s, lc.r),
			scene, lc.golden, lc.others, 0.5))
	}

	// d15: ring counter state after k clocks.
	{
		const bits, k = 4, 5
		seq := RingCounter(bits, k)
		golden := BitString(seq[k], bits)
		scene := counterScene(bits, "Ring counter", "ring")
		add(dataset.NewMC("d15", dataset.Digital, "ring-counter",
			fmt.Sprintf("The figure shows a %d-bit ring counter initialised to %s. "+
				"What is the register state after %d clock pulses?",
				bits, BitString(seq[0], bits), k),
			scene, golden,
			[3]string{BitString(seq[k-1], bits),
				BitString(seq[k]>>1|(seq[k]&1)<<(bits-1), bits),
				BitString(seq[k]^0b0011, bits)}, 0.45))
	}
	// d16: Johnson counter state after k clocks.
	{
		const bits, k = 3, 4
		seq := JohnsonCounter(bits, k)
		golden := BitString(seq[k], bits)
		distract := map[string]bool{golden: true}
		var others [3]string
		cands := []string{BitString(seq[k-1], bits), BitString(seq[k]^0b100, bits),
			BitString(seq[k]^0b001, bits), BitString(seq[k]^0b111, bits)}
		oi := 0
		for _, c := range cands {
			if oi < 3 && !distract[c] {
				others[oi] = c
				distract[c] = true
				oi++
			}
		}
		scene := counterScene(bits, "Johnson counter", "johnson")
		add(dataset.NewMC("d16", dataset.Digital, "johnson-counter",
			fmt.Sprintf("The figure shows a %d-bit Johnson (twisted-ring) counter starting "+
				"from the all-zeros state. What is the register state after %d clock pulses?", bits, k),
			scene, golden, others, 0.5))
	}

	// d17: 3-to-8 decoder output line.
	{
		input := 0b101
		scene := decoderScene(3, input)
		golden := fmt.Sprintf("Y%d", input)
		add(dataset.NewMC("d17", dataset.Digital, "decoder",
			"The 3-to-8 decoder in the figure has its address inputs driven with the "+
				"binary value annotated on the schematic (A2 is the MSB). Which output line is asserted?",
			scene, golden, [3]string{"Y2", "Y3", "Y7"}, 0.35))
	}
	// d18: priority encoder.
	{
		// Inputs asserted: I1, I4, I6; highest index wins.
		scene := encoderScene([]int{1, 4, 6})
		add(dataset.NewMC("d18", dataset.Digital, "priority-encoder",
			"An 8-to-3 priority encoder (highest index has priority) receives the request "+
				"lines asserted as shown in the figure. What code appears on the outputs A2 A1 A0?",
			scene, "110", [3]string{"001", "100", "111"}, 0.45))
	}
	// d19: equality comparator recognition.
	{
		n := NewNetlist().
			AddGate(GateXnor, "G1", "e0", "A0", "B0").
			AddGate(GateXnor, "G2", "e1", "A1", "B1").
			AddGate(GateAnd, "G3", "EQ", "e0", "e1")
		scene := CircuitScene(n, "Mystery two-bit circuit", nil)
		add(dataset.NewMC("d19", dataset.Digital, "comparator",
			"The circuit in the figure combines two XNOR gates and an AND gate over the "+
				"bit pairs (A1,B1) and (A0,B0). What does the output EQ indicate?",
			scene, "EQ=1 exactly when the two 2-bit words are equal",
			[3]string{"EQ=1 exactly when A > B", "EQ is the sum bit of A+B",
				"EQ=1 exactly when both words are zero"}, 0.4))
	}
	// d20: 2-bit ripple-carry adder numeric result.
	{
		a, b := 0b10, 0b11
		res := Add(a, b, 3, false)
		scene := adderScene(a, b)
		golden := BitString(res.Sum, 3)
		add(dataset.NewMC("d20", dataset.Digital, "ripple-adder",
			"The 2-bit ripple-carry adder in the figure receives the operand values "+
				"annotated on its inputs. What 3-bit result (carry, sum1, sum0) does it produce?",
			scene, golden, [3]string{BitString(res.Sum^0b001, 3), BitString(res.Sum^0b100, 3),
				BitString((a+b+1)&0b111, 3)}, 0.4))
	}

	// --- Tables -----------------------------------------------------

	// d21, d22: derive minimal SOP from a Karnaugh map (the "excitation
	// map" figure style of §III-B1).
	for i, seed := range []string{"tt1", "tt2"} {
		id := fmt.Sprintf("d%02d", 21+i)
		vars := []string{"A", "B", "C"}
		minterms := randomMinterms(seed, 3, 4)
		tt := FromMinterms(vars, minterms)
		golden := Minimize(vars, minterms, nil)
		scene, err := KMapScene(tt, "F", "Karnaugh map")
		if err != nil {
			panic(err)
		}
		add(dataset.NewMC(id, dataset.Digital, "kmap-derive",
			"Derive the minimal sum-of-products function F for the Karnaugh map shown "+
				"in the figure (rows and columns are Gray-coded).",
			scene, "F = "+golden.String(),
			expressionDistractors(id, vars, minterms, "F"), 0.5))
	}
	// d23: parity recognition.
	{
		vars := []string{"A", "B", "C"}
		parity := MustParse("A ^ B ^ C")
		tt := NewTruthTable(parity, vars)
		scene := TruthTableScene(tt, "F", "Mystery function")
		add(dataset.NewMC("d23", dataset.Digital, "tt-recognize",
			"The truth table in the figure defines a function F of three inputs. "+
				"Which well-known function is it?",
			scene, "odd parity (3-input XOR)",
			[3]string{"even parity (3-input XNOR)", "2-out-of-3 majority", "3-input NAND"}, 0.4))
	}
	// d24: SR flip-flop characteristic equation from excitation maps —
	// the exact example discussed in §III-B1 of the paper.
	{
		vars := []string{"S", "R", "q"}
		// Q+ rows for (S,R,q): derived from NextState, S=R=1 rows are
		// don't-cares.
		var minterms, dontCares []int
		for m := 0; m < 8; m++ {
			s, r, q := m&4 != 0, m&2 != 0, m&1 != 0
			if s && r {
				dontCares = append(dontCares, m)
				continue
			}
			qn, err := NextState(FFSR, q, s, r)
			if err != nil {
				panic(err)
			}
			if qn {
				minterms = append(minterms, m)
			}
		}
		tt := FromMinterms(vars, minterms)
		scene := TruthTableScene(tt, "Q+", "SR state table and excitation map")
		golden := Minimize(vars, minterms, dontCares)
		add(dataset.NewMC("d24", dataset.Digital, "sr-characteristic",
			"Derive the function for Q given the state table and excitation maps as shown "+
				"in the figure (q is the present state, Q the next state).",
			scene, "Q = "+golden.String(),
			[3]string{"Q = S'q + S", "Q = Sq' + R'q'", "Q = S'R'q + SR"}, 0.7))
	}
	// d25: binary counter next state.
	{
		const bits = 3
		state := 0b101
		seq := Counter(bits, state, 2)
		tt := FromMinterms([]string{"Q2", "Q1", "Q0"}, []int{1, 3, 5, 7})
		scene := TruthTableScene(tt, "T0", "Counter excitation table")
		golden := BitString(seq[1], bits)
		add(dataset.NewMC("d25", dataset.Digital, "counter-next",
			fmt.Sprintf("A %d-bit synchronous binary up-counter is currently in state %s. "+
				"Using the excitation table shown, what is the state after the next clock edge?",
				bits, BitString(state, bits)),
			scene, golden,
			[3]string{BitString(seq[2], bits), BitString(state, bits), BitString(state-1, bits)}, 0.45))
	}
	// d26: majority function from table.
	{
		vars := []string{"A", "B", "C"}
		maj := MustParse("AB + AC + BC")
		tt := NewTruthTable(maj, vars)
		minterms := tt.Minterms()
		scene := TruthTableScene(tt, "F", "Voting circuit table")
		golden := Minimize(vars, minterms, nil)
		add(dataset.NewMC("d26", dataset.Digital, "majority",
			"The truth table in the figure describes a 3-input voting circuit. "+
				"Which minimal sum-of-products expression implements it?",
			scene, "F = "+golden.String(),
			expressionDistractors("d26", vars, minterms, "F"), 0.5))
	}

	// --- Diagrams ---------------------------------------------------

	// d27, d28: shift register contents after k shifts.
	shiftCases := []struct {
		id      string
		initial int
		bits    int
		shifts  int
		serial  []int
	}{
		{"d27", 0b1011, 4, 2, []int{0, 1}},
		{"d28", 0b0110, 4, 3, []int{1, 0, 1}},
	}
	for _, sc := range shiftCases {
		state := sc.initial
		for _, in := range sc.serial[:sc.shifts] {
			state = (state >> 1) | in<<(sc.bits-1)
		}
		labels := make([]string, sc.bits)
		for i := range labels {
			labels[i] = fmt.Sprintf("FF%d=%d", sc.bits-1-i, (sc.initial>>(sc.bits-1-i))&1)
		}
		scene := BlockChainScene(labels, "Right-shift register", true)
		golden := BitString(state, sc.bits)
		add(dataset.NewMC(sc.id, dataset.Digital, "shift-register",
			fmt.Sprintf("The 4-bit right-shift register in the figure holds the value shown. "+
				"After %d clock pulses with the serial input sequence %v (first value first), "+
				"what does the register contain?", sc.shifts, sc.serial[:sc.shifts]),
			scene, golden,
			[3]string{BitString(sc.initial, sc.bits), BitString(state>>1, sc.bits),
				BitString((state<<1)&(1<<sc.bits-1), sc.bits)}, 0.55))
	}
	// d29: critical path depth.
	{
		n, _ := randomCircuit("depth", 4)
		d, err := n.Depth("F")
		if err != nil {
			panic(err)
		}
		scene := CircuitScene(n, "Gate network", nil)
		scene.Kind = visual.KindDiagram
		add(dataset.NewMCNumeric("d29", dataset.Digital, "critical-path",
			"Assuming every gate in the figure has one unit of delay and wires are ideal, "+
				"how many gate delays long is the critical path from the inputs to F?",
			scene, float64(d), "gate delays", 0,
			fmt.Sprintf("%d gate delays", d),
			[3]string{fmt.Sprintf("%d gate delays", d-1), fmt.Sprintf("%d gate delays", d+1),
				fmt.Sprintf("%d gate delays", d+2)}, 0.5))
	}
	// d30: two's-complement value of a register.
	{
		word := 0b10110100
		val := FromTwosComplement(word, 8)
		scene := RegisterScene(word, 8, "8-bit register")
		add(dataset.NewMCNumeric("d30", dataset.Digital, "twos-complement",
			"The 8-bit register in the figure holds the bit pattern shown. Interpreted as a "+
				"two's-complement signed integer, what is its decimal value?",
			scene, float64(val), "", 0,
			fmt.Sprint(val),
			[3]string{fmt.Sprint(word), fmt.Sprint(-word & 0xff), fmt.Sprint(val + 128)}, 0.45))
	}
	// d31: Gray code successor.
	{
		v := 5 // binary 101, gray 111
		g := GrayEncode(v)
		gNext := GrayEncode(v + 1)
		scene := RegisterScene(g, 3, "Gray-code register")
		add(dataset.NewMC("d31", dataset.Digital, "gray-code",
			"The register in the figure holds a 3-bit Gray-code value. What is the next "+
				"codeword in the Gray sequence?",
			scene, BitString(gNext, 3),
			[3]string{BitString(g+1, 3), BitString(v+1, 3), BitString(gNext^0b111, 3)}, 0.55))
	}
	// d32: D flip-flop sampling.
	{
		scene := dffTimingScene()
		add(dataset.NewMC("d32", dataset.Digital, "dff-timing",
			"The timing diagram in the figure shows the D input and clock of a positive-"+
				"edge-triggered D flip-flop. D is 1 at the first rising edge and 0 at the second. "+
				"What is Q after the second rising clock edge?",
			scene, "0", [3]string{"1", "Q holds its initial value", "metastable (undefined)"}, 0.4))
	}

	// --- Equation sheets ---------------------------------------------

	// d33: simplify an SOP expression.
	{
		raw := "AB'C + ABC + A'BC + ABC'"
		e := MustParse(raw)
		vars := Vars(e)
		golden := Minimize(vars, Minterms(e, vars), nil)
		scene := EquationsScene([]string{"F = " + raw}, "Simplify the function")
		add(dataset.NewMC("d33", dataset.Digital, "simplify",
			"Simplify the sum-of-products function shown in the figure to a minimal "+
				"sum-of-products form.",
			scene, "F = "+golden.String(),
			expressionDistractors("d33", vars, Minterms(e, vars), "F"), 0.55))
	}
	// d34: De Morgan equivalence.
	{
		scene := EquationsScene([]string{"G = (A + B)'"}, "Equivalent form")
		add(dataset.NewMC("d34", dataset.Digital, "demorgan",
			"Using De Morgan's theorem, which expression is equivalent to the function G "+
				"shown in the figure?",
			scene, "G = A'B'", [3]string{"G = A' + B'", "G = AB", "G = (AB)'"}, 0.35))
	}

	// --- Neural nets --------------------------------------------------

	// d35: perceptron implementing a logic gate.
	{
		scene := PerceptronScene([]float64{1, 1}, 1.5, "Threshold unit")
		add(dataset.NewMC("d35", dataset.Digital, "perceptron",
			"The single threshold unit in the figure fires (outputs 1) when the weighted sum "+
				"of its binary inputs meets the threshold annotated. Which logic function of "+
				"x1 and x2 does it compute?",
			scene, "AND", [3]string{"OR", "XOR", "NAND"}, 0.45))
	}

	return qs
}

// randomCircuit builds a deterministic pseudo-random combinational
// circuit over A, B, C with the requested depth, output net F.
func randomCircuit(seed string, depth int) (*Netlist, []string) {
	r := rng.New("digital-circuit", seed)
	kinds := []GateKind{GateAnd, GateOr, GateNand, GateNor, GateXor}
	n := NewNetlist()
	level := []string{"A", "B", "C"}
	gi := 0
	for d := 1; d <= depth; d++ {
		width := 2
		if d == depth {
			width = 1
		}
		var next []string
		for w := 0; w < width; w++ {
			gi++
			out := fmt.Sprintf("n%d", gi)
			if d == depth {
				out = "F"
			}
			k := kinds[r.IntN(len(kinds))]
			a := level[r.IntN(len(level))]
			b := level[r.IntN(len(level))]
			if b == a {
				b = level[(dataset.IndexOf(level, a)+1)%len(level)]
			}
			n.AddGate(k, fmt.Sprintf("G%d", gi), out, a, b)
			next = append(next, out)
		}
		// Keep one input visible to deeper levels for variety.
		next = append(next, level[r.IntN(len(level))])
		level = next
	}
	return n, []string{"A", "B", "C"}
}

// randomMinterms picks count distinct minterms over n variables.
func randomMinterms(seed string, vars, count int) []int {
	r := rng.New("digital-minterms", seed)
	perm := r.Perm(1 << vars)
	ms := append([]int{}, perm[:count]...)
	dataset.SortInts(ms)
	return ms
}

// expressionDistractors derives three plausible but non-equivalent
// expressions by perturbing the minterm set and re-minimising, so the
// distractors look syntactically similar to the golden answer — the
// property §III-B1 demands of answer options.
func expressionDistractors(seed string, vars []string, minterms []int, lhs string) [3]string {
	golden := Minimize(vars, minterms, nil)
	r := rng.New("digital-distract", seed)
	var out [3]string
	seen := map[string]bool{golden.String(): true}
	size := 1 << len(vars)
	for i := 0; i < 3; {
		// Flip one or two rows of the truth table.
		set := make(map[int]bool)
		for _, m := range minterms {
			set[m] = true
		}
		flips := 1 + r.IntN(2)
		for f := 0; f < flips; f++ {
			m := r.IntN(size)
			if set[m] {
				delete(set, m)
			} else {
				set[m] = true
			}
		}
		if len(set) == 0 || len(set) == size {
			continue
		}
		var ms []int
		for m := range set {
			ms = append(ms, m)
		}
		dataset.SortInts(ms)
		cand := Minimize(vars, ms, nil)
		cs := cand.String()
		if seen[cs] || Equivalent(cand, golden) {
			continue
		}
		seen[cs] = true
		out[i] = lhs + " = " + cs
		i++
	}
	return out
}

// gateValueAnswer evaluates the two-gate network with A, B fixed and C
// free, classifying F as "0", "1", "C" or "C'".
func gateValueAnswer(n *Netlist, a, b bool) string {
	eval := func(c bool) bool {
		v, err := n.Eval(map[string]bool{"A": a, "B": b, "C": c}, nil)
		if err != nil {
			panic(err)
		}
		return v["F"]
	}
	f0, f1 := eval(false), eval(true)
	switch {
	case !f0 && !f1:
		return "0"
	case f0 && f1:
		return "1"
	case !f0 && f1:
		return "C"
	default:
		return "C'"
	}
}

func recognitionQuestion(id string, n *Netlist, name string, others [3]string, prompt string) *dataset.Question {
	scene := CircuitScene(n, "Mystery circuit", nil)
	return dataset.NewMC(id, dataset.Digital, "recognition", prompt, scene, name, others, 0.4)
}

func halfAdderNetlist() *Netlist {
	return NewNetlist().
		AddGate(GateXor, "G1", "S", "A", "B").
		AddGate(GateAnd, "G2", "Cout", "A", "B")
}

func fullAdderNetlist() *Netlist {
	return NewNetlist().
		AddGate(GateXor, "G1", "p", "A", "B").
		AddGate(GateXor, "G2", "S", "p", "Cin").
		AddGate(GateAnd, "G3", "g", "A", "B").
		AddGate(GateAnd, "G4", "h", "p", "Cin").
		AddGate(GateOr, "G5", "Cout", "g", "h")
}

// nandNandNetlist converts an SOP expression into a two-level NAND-NAND
// structure (one NAND per product term, one output NAND).
func nandNandNetlist(sop Expr, vars []string) *Netlist {
	n := NewNetlist()
	terms := sopTerms(sop)
	var mids []string
	for i, t := range terms {
		mid := fmt.Sprintf("t%d", i)
		lits := productLiterals(t)
		ins := make([]string, 0, len(lits))
		for _, l := range lits {
			if l.negated {
				inv := l.name + "n"
				n.AddGate(GateNot, "INV"+l.name, inv, l.name)
				ins = append(ins, inv)
			} else {
				ins = append(ins, l.name)
			}
		}
		if len(ins) == 1 {
			ins = append(ins, ins[0])
		}
		n.AddGate(GateNand, fmt.Sprintf("N%d", i), mid, ins...)
		mids = append(mids, mid)
	}
	if len(mids) == 1 {
		mids = append(mids, mids[0])
	}
	n.AddGate(GateNand, "NOUT", "F", mids...)
	return n
}

type literal struct {
	name    string
	negated bool
}

func sopTerms(e Expr) []Expr {
	if or, ok := e.(*Or); ok {
		return or.Xs
	}
	return []Expr{e}
}

func productLiterals(e Expr) []literal {
	switch t := e.(type) {
	case *And:
		var out []literal
		for _, x := range t.Xs {
			out = append(out, productLiterals(x)...)
		}
		return out
	case *Not:
		if v, ok := t.X.(*Var); ok {
			return []literal{{name: v.Name, negated: true}}
		}
	case *Var:
		return []literal{{name: t.Name}}
	}
	return nil
}

// muxFunction computes F(S1,S0,C) of a 4:1 mux whose data inputs carry
// the strings "0", "1", "C" or "C'".
func muxFunction(data [4]string) Expr {
	sel := [][2]Expr{
		{&Not{X: &Var{Name: "S1"}}, &Not{X: &Var{Name: "S0"}}},
		{&Not{X: &Var{Name: "S1"}}, &Var{Name: "S0"}},
		{&Var{Name: "S1"}, &Not{X: &Var{Name: "S0"}}},
		{&Var{Name: "S1"}, &Var{Name: "S0"}},
	}
	var terms []Expr
	for i, d := range data {
		var dExpr Expr
		switch d {
		case "0":
			continue
		case "1":
			dExpr = nil
		case "C":
			dExpr = &Var{Name: "C"}
		case "C'":
			dExpr = &Not{X: &Var{Name: "C"}}
		}
		parts := []Expr{sel[i][0], sel[i][1]}
		if dExpr != nil {
			parts = append(parts, dExpr)
		}
		terms = append(terms, &And{Xs: parts})
	}
	if len(terms) == 0 {
		return &Const{Value: false}
	}
	var full Expr
	if len(terms) == 1 {
		full = terms[0]
	} else {
		full = &Or{Xs: terms}
	}
	vars := Vars(full)
	return Minimize(vars, Minterms(full, vars), nil)
}

func muxScene(data [4]string) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, "4:1 multiplexer")
	s.Add(visual.Element{
		Type: visual.ElemBox, Name: "mux", Label: "4:1 MUX",
		X: 260, Y: 120, X2: 380, Y2: 320, Critical: true,
	})
	for i, d := range data {
		y := 140.0 + float64(i)*45
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: fmt.Sprintf("d%d", i),
			Label: fmt.Sprintf("D%d=%s", i, d), X: 150, Y: y,
			Salience: 0.7, Critical: true,
		})
		s.Add(visual.Element{
			Type: visual.ElemWire, Name: fmt.Sprintf("wd%d", i),
			X: 215, Y: y + 6, X2: 260, Y2: y + 6,
		})
	}
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "sel", Label: "S1 S0", X: 290, Y: 350, Salience: 0.8,
	})
	s.Add(visual.Element{
		Type: visual.ElemArrow, Name: "out", X: 380, Y: 220, X2: 450, Y2: 220, Label: "F",
	})
	return s
}

func counterScene(bits int, title, kind string) *visual.Scene {
	labels := make([]string, bits)
	for i := range labels {
		labels[i] = fmt.Sprintf("FF%d", bits-1-i)
	}
	s := BlockChainScene(labels, title, true)
	s.Kind = visual.KindSchematic
	// Feedback wire from last to first marks the counter style.
	s.Add(visual.Element{
		Type: visual.ElemArrow, Name: "feedback", Label: kind,
		X: 50 + float64(bits-1)*120 + 80, Y: 196,
		X2: 50, Y2: 196, Salience: 0.8, Critical: true,
	})
	return s
}

func decoderScene(bits, input int) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, "3-to-8 decoder")
	s.Add(visual.Element{
		Type: visual.ElemBox, Name: "dec", Label: "DEC 3:8",
		X: 240, Y: 100, X2: 360, Y2: 360, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemValue, Name: "addr",
		Label: fmt.Sprintf("A2 A1 A0 = %s", BitString(input, bits)),
		X:     60, Y: 220, Salience: 0.65, Critical: true,
	})
	for i := 0; i < 1<<bits; i++ {
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: fmt.Sprintf("y%d", i),
			Label: fmt.Sprintf("Y%d", i), X: 380, Y: 110 + float64(i)*30,
		})
	}
	return s
}

func encoderScene(asserted []int) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, "8-to-3 priority encoder")
	s.Add(visual.Element{
		Type: visual.ElemBox, Name: "enc", Label: "PRI ENC 8:3",
		X: 260, Y: 100, X2: 400, Y2: 360, Critical: true,
	})
	on := make(map[int]bool)
	for _, a := range asserted {
		on[a] = true
	}
	for i := 0; i < 8; i++ {
		v := 0
		if on[i] {
			v = 1
		}
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("i%d", i),
			Label: fmt.Sprintf("I%d=%d", i, v), X: 170, Y: 110 + float64(i)*30,
			Salience: 0.65, Critical: on[i],
		})
	}
	return s
}

func adderScene(a, b int) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, "2-bit ripple-carry adder")
	for i := 0; i < 2; i++ {
		x := 200 + float64(i)*180
		s.Add(visual.Element{
			Type: visual.ElemBox, Name: fmt.Sprintf("fa%d", i), Label: "FA",
			X: x, Y: 160, X2: x + 90, Y2: 240, Critical: true,
		})
	}
	s.Add(visual.Element{
		Type: visual.ElemValue, Name: "ops",
		Label: fmt.Sprintf("A=%s B=%s", BitString(a, 2), BitString(b, 2)),
		X:     60, Y: 80, Salience: 0.65, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemArrow, Name: "carry", X: 290, Y: 200, X2: 380, Y2: 200, Label: "c",
	})
	return s
}

func dffTimingScene() *visual.Scene {
	// Bit-per-half-cycle waveforms: CLK rises at samples 1 and 5; D is 1
	// at the first rising edge and 0 at the second.
	s := visual.NewWaveformScene("D flip-flop timing", map[string][]int{
		"CLK": {0, 1, 1, 0, 0, 1, 1, 0},
		"D":   {1, 1, 0, 0, 0, 0, 1, 1},
	}, []string{"CLK", "D"})
	return s
}

func joinVars(vars []string) string {
	out := ""
	for i, v := range vars {
		if i > 0 {
			out += ", "
		}
		out += v
	}
	return out
}
