package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// NoDeterm enforces the determinism seams of DESIGN.md §6: every run of
// the evaluation engine must be bit-reproducible, so no wall-clock
// reads, environment lookups or ad-hoc random generators may appear in
// library code. Allowed seams:
//
//   - internal/rng, the single randomness package (streams keyed by
//     rng.New/rng.Seed);
//   - files named clock.go, the injectable wall-clock seam (cmd/chipvqa
//     routes its bench timestamps through one `var now = time.Now`
//     there, so tests can pin it);
//   - _test.go files (excluded by the loader).
//
// Everything else must take time and randomness as inputs.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbids time.Now/time.Since/os.Getenv and direct math/rand use outside " +
		"internal/rng and the clock.go seam; all randomness must be keyed through rng.New/rng.Seed",
	Run: runNoDeterm,
}

// timeFuncs are the wall-clock reads nodeterm forbids.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// envFuncs are the os environment reads nodeterm forbids: they make
// output depend on ambient process state.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

func runNoDeterm(pass *Pass) {
	if pathHasSuffix(pass.Pkg.Path, "internal/rng") {
		return // the blessed randomness seam
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		if filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename) == "clock.go" {
			continue // the blessed wall-clock seam
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if timeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; inject it through a clock.go seam (var now = time.Now)",
						sel.Sel.Name)
				}
			case "os":
				if envFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"os.%s makes output depend on ambient environment; pass configuration explicitly",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"direct %s use breaks stream-keyed determinism; draw from internal/rng (rng.New/rng.Seed) instead",
					pn.Imported().Path())
			}
			return true
		})
	}
}
