package digital

import (
	"fmt"
	"sort"
)

// GateKind enumerates gate types of the netlist simulator.
type GateKind int

// Supported gate kinds.
const (
	GateAnd GateKind = iota
	GateOr
	GateNot
	GateNand
	GateNor
	GateXor
	GateXnor
	GateBuf
)

var gateNames = [...]string{"AND", "OR", "NOT", "NAND", "NOR", "XOR", "XNOR", "BUF"}

// String names the gate the way schematics label it.
func (k GateKind) String() string {
	if k < 0 || int(k) >= len(gateNames) {
		return fmt.Sprintf("GateKind(%d)", int(k))
	}
	return gateNames[k]
}

// Gate is one combinational gate: output net driven from input nets.
type Gate struct {
	Kind   GateKind
	Name   string
	Inputs []string
	Output string
}

// Eval computes the gate output from input values.
func (g *Gate) Eval(in []bool) bool {
	switch g.Kind {
	case GateAnd, GateNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if g.Kind == GateNand {
			return !v
		}
		return v
	case GateOr, GateNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if g.Kind == GateNor {
			return !v
		}
		return v
	case GateXor, GateXnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if g.Kind == GateXnor {
			return !v
		}
		return v
	case GateNot:
		return !in[0]
	case GateBuf:
		return in[0]
	default:
		return false
	}
}

// Netlist is a combinational circuit plus optional D flip-flops. Nets are
// named; primary inputs are nets no gate drives.
type Netlist struct {
	Gates []*Gate
	// DFFs maps flop output net -> D input net; flops break combinational
	// cycles and are stepped by Clock.
	DFFs map[string]string
}

// NewNetlist returns an empty netlist.
func NewNetlist() *Netlist {
	return &Netlist{DFFs: make(map[string]string)}
}

// AddGate appends a gate and returns the netlist for chaining.
func (n *Netlist) AddGate(kind GateKind, name, output string, inputs ...string) *Netlist {
	n.Gates = append(n.Gates, &Gate{Kind: kind, Name: name, Inputs: inputs, Output: output})
	return n
}

// AddDFF registers a D flip-flop with output q fed by net d.
func (n *Netlist) AddDFF(q, d string) *Netlist {
	n.DFFs[q] = d
	return n
}

// PrimaryInputs lists nets that no gate or flop drives, sorted.
func (n *Netlist) PrimaryInputs() []string {
	driven := make(map[string]bool)
	for _, g := range n.Gates {
		driven[g.Output] = true
	}
	for q := range n.DFFs {
		driven[q] = true
	}
	seen := make(map[string]bool)
	var ins []string
	for _, g := range n.Gates {
		for _, in := range g.Inputs {
			if !driven[in] && !seen[in] {
				seen[in] = true
				ins = append(ins, in)
			}
		}
	}
	for _, d := range n.DFFs {
		if !driven[d] && !seen[d] {
			seen[d] = true
			ins = append(ins, d)
		}
	}
	sort.Strings(ins)
	return ins
}

// Eval settles the combinational logic for the given primary-input and
// flop-state values, returning every net's value. It iterates to a fixed
// point in topological fashion and reports an error on combinational
// cycles.
func (n *Netlist) Eval(inputs map[string]bool, state map[string]bool) (map[string]bool, error) {
	values := make(map[string]bool, len(inputs)+len(state)+len(n.Gates))
	known := make(map[string]bool, len(values))
	for k, v := range inputs {
		values[k] = v
		known[k] = true
	}
	for q := range n.DFFs {
		values[q] = state[q]
		known[q] = true
	}
	remaining := make([]*Gate, len(n.Gates))
	copy(remaining, n.Gates)
	for len(remaining) > 0 {
		progressed := false
		var still []*Gate
		for _, g := range remaining {
			ready := true
			in := make([]bool, len(g.Inputs))
			for i, name := range g.Inputs {
				if !known[name] {
					ready = false
					break
				}
				in[i] = values[name]
			}
			if !ready {
				still = append(still, g)
				continue
			}
			values[g.Output] = g.Eval(in)
			known[g.Output] = true
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("digital: combinational cycle or undriven input among %d gates", len(still))
		}
		remaining = still
	}
	return values, nil
}

// Clock settles the logic then advances every flip-flop, returning the
// next flop state.
func (n *Netlist) Clock(inputs, state map[string]bool) (map[string]bool, error) {
	values, err := n.Eval(inputs, state)
	if err != nil {
		return nil, err
	}
	next := make(map[string]bool, len(n.DFFs))
	for q, d := range n.DFFs {
		next[q] = values[d]
	}
	return next, nil
}

// Depth returns the longest gate chain from any primary input or flop
// output to net target — the unit-delay critical path length.
func (n *Netlist) Depth(target string) (int, error) {
	byOutput := make(map[string]*Gate, len(n.Gates))
	for _, g := range n.Gates {
		byOutput[g.Output] = g
	}
	memo := make(map[string]int)
	visiting := make(map[string]bool)
	var depth func(net string) (int, error)
	depth = func(net string) (int, error) {
		if d, ok := memo[net]; ok {
			return d, nil
		}
		g, ok := byOutput[net]
		if !ok {
			return 0, nil // primary input or flop output
		}
		if visiting[net] {
			return 0, fmt.Errorf("digital: combinational cycle through %s", net)
		}
		visiting[net] = true
		defer delete(visiting, net)
		maxIn := 0
		for _, in := range g.Inputs {
			d, err := depth(in)
			if err != nil {
				return 0, err
			}
			if d > maxIn {
				maxIn = d
			}
		}
		memo[net] = maxIn + 1
		return maxIn + 1, nil
	}
	return depth(target)
}

// TruthTable exhaustively simulates a purely combinational netlist and
// returns the truth table of the target net over the primary inputs.
func (n *Netlist) TruthTable(target string) (*TruthTable, error) {
	if len(n.DFFs) > 0 {
		return nil, fmt.Errorf("digital: truth table requires a combinational netlist")
	}
	ins := n.PrimaryInputs()
	if len(ins) > 16 {
		return nil, fmt.Errorf("digital: too many inputs (%d) for exhaustive simulation", len(ins))
	}
	t := &TruthTable{Vars: ins, Out: make([]bool, 1<<len(ins))}
	for m := 0; m < 1<<len(ins); m++ {
		assign := make(map[string]bool, len(ins))
		for i, v := range ins {
			assign[v] = m&(1<<(len(ins)-1-i)) != 0
		}
		values, err := n.Eval(assign, nil)
		if err != nil {
			return nil, err
		}
		out, ok := values[target]
		if !ok {
			return nil, fmt.Errorf("digital: net %q not driven", target)
		}
		t.Out[m] = out
	}
	return t, nil
}
