package analog

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/visual"
)

func TestGenerateComposition(t *testing.T) {
	qs := Generate()
	if len(qs) != 44 {
		t.Fatalf("generated %d questions, want 44", len(qs))
	}
	kinds := map[visual.Kind]int{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
		if q.Category != dataset.Analog {
			t.Errorf("%s: wrong category", q.ID)
		}
		if q.Type != dataset.MultipleChoice {
			t.Errorf("%s: Analog questions are all multiple choice (§III-B2)", q.ID)
		}
		kinds[q.Visual.Kind]++
	}
	want := map[visual.Kind]int{
		visual.KindSchematic: 30,
		visual.KindCurve:     5,
		visual.KindDiagram:   5,
		visual.KindEquation:  1,
		visual.KindEquations: 1,
		visual.KindMixed:     2,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("visual %s: %d, want %d", k, kinds[k], n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(), Generate()
	for i := range a {
		if a[i].Prompt != b[i].Prompt || a[i].Golden.Choice != b[i].Golden.Choice {
			t.Fatalf("question %d (%s) differs between runs", i, a[i].ID)
		}
	}
}

func TestChoicesDistinct(t *testing.T) {
	for _, q := range Generate() {
		seen := make(map[string]bool)
		for _, c := range q.Choices {
			if seen[c] {
				t.Errorf("%s: duplicate option %q", q.ID, c)
			}
			seen[c] = true
		}
	}
}

func TestNumericGoldensConsistent(t *testing.T) {
	// Every numeric question's golden Text must parse to its golden
	// Number (through the same SI formatting that produced it).
	for _, q := range Generate() {
		if q.Golden.Unit == "" && q.Golden.Tolerance == 0 {
			continue
		}
		got := q.Choices[q.Golden.Choice]
		if got != q.Golden.Text {
			t.Errorf("%s: golden Text %q != correct option %q", q.ID, q.Golden.Text, got)
		}
	}
}

func TestVoltageDividerGoldenMatchesPaperStyle(t *testing.T) {
	// a05 mirrors the Fig. 3 MathVista example: Vs=5, R1=1k, R2=2.2k,
	// RL=4.7k. RL || R2 = 1.4985k; V = 5 * 1.4985/(1+1.4985) = 2.999 V.
	qs := Generate()
	var a05 *dataset.Question
	for _, q := range qs {
		if q.ID == "a05" {
			a05 = q
		}
	}
	if a05 == nil {
		t.Fatal("a05 missing")
	}
	want := 5 * ParallelR(2200, 4700) / (1000 + ParallelR(2200, 4700))
	if math.Abs(a05.Golden.Number-want) > 1e-3 {
		t.Errorf("a05 golden %v, want %v", a05.Golden.Number, want)
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2200, "Ohm", "2.2 kOhm"},
		{0.004, "S", "4 mS"},
		{100e-6, "A", "100 uA"},
		{1e4, "rad/s", "10 krad/s"},
		{0, "V", "0 V"},
		{-10, "V/V", "-10 V/V"},
		{1.5e9, "Hz", "1.5 GHz"},
		{3.3e-12, "F", "3.3 pF"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit); got != c.want {
			t.Errorf("FormatSI(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestNumericDistractorsDistinct(t *testing.T) {
	format := func(v float64) string { return FormatPlain(v, "V") }
	for _, golden := range []float64{1, -10, 0.5, 100, 3} {
		d := NumericDistractors(golden, format)
		seen := map[string]bool{format(golden): true}
		for _, s := range d {
			if s == "" {
				t.Fatalf("empty distractor for golden %v", golden)
			}
			if seen[s] {
				t.Fatalf("duplicate distractor %q for golden %v", s, golden)
			}
			seen[s] = true
		}
	}
}

func TestNumericDistractorsDegenerate(t *testing.T) {
	// Golden of 0 collapses many candidates; the fallback must still
	// produce three distinct options.
	format := func(v float64) string { return FormatPlain(v, "") }
	d := NumericDistractors(0, format)
	seen := map[string]bool{format(0): true}
	for _, s := range d {
		if seen[s] {
			t.Fatalf("duplicate distractor %q for golden 0: %v", s, d)
		}
		seen[s] = true
	}
}
