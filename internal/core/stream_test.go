package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dataset"
)

func benchmarkJSON(t *testing.T, b *dataset.Benchmark) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestStreamMatchesMonolith is the core determinism contract of the
// shard pipeline: the streamed fold, concatenated, must be
// byte-identical to BuildExtended — including with a shard size that
// does not divide the total and one larger than the whole fold.
func TestStreamMatchesMonolith(t *testing.T) {
	mono, err := BuildExtended("stream-a", 40)
	if err != nil {
		t.Fatalf("BuildExtended: %v", err)
	}
	monoJSON := benchmarkJSON(t, mono)
	for _, shardSize := range []int{1, 7, 37, 40, 200, 1000} {
		streamed, err := CollectExtended("stream-a", 40, shardSize)
		if err != nil {
			t.Fatalf("CollectExtended(shard=%d): %v", shardSize, err)
		}
		if got := benchmarkJSON(t, streamed); !bytes.Equal(got, monoJSON) {
			t.Errorf("shard size %d: streamed fold differs from monolithic build", shardSize)
		}
	}
}

// TestStreamShardGeometry checks that shards arrive in order, cover the
// fold exactly once, and only the final shard is short.
func TestStreamShardGeometry(t *testing.T) {
	const perCategory, shardSize = 13, 9
	total := 5 * perCategory
	next, idx := 0, 0
	err := StreamExtended("geom", perCategory, shardSize, func(s dataset.Shard) error {
		if s.Index != idx {
			t.Errorf("shard index = %d, want %d", s.Index, idx)
		}
		if s.Start != next {
			t.Errorf("shard %d start = %d, want %d", s.Index, s.Start, next)
		}
		if s.End() < total && len(s.Questions) != shardSize {
			t.Errorf("shard %d has %d questions, want %d", s.Index, len(s.Questions), shardSize)
		}
		next = s.End()
		idx++
		return nil
	})
	if err != nil {
		t.Fatalf("StreamExtended: %v", err)
	}
	if next != total {
		t.Errorf("stream covered %d questions, want %d", next, total)
	}
}

// TestStreamFoldsDisjointAtShardBoundaries is the scale variant of the
// fold-disjointness guarantee: two folds streamed with a large
// perCategory and a shard size that straddles category boundaries must
// share no question IDs, and each fold must be byte-identical whether
// built monolithically or via StreamExtended.
func TestStreamFoldsDisjointAtShardBoundaries(t *testing.T) {
	const perCategory, shardSize = 2000, 777
	seen := make(map[string]string, 2*5*perCategory)
	for _, seed := range []string{"fold-a", "fold-b"} {
		err := StreamExtended(seed, perCategory, shardSize, func(s dataset.Shard) error {
			for _, q := range s.Questions {
				if prev, dup := seen[q.ID]; dup {
					return fmt.Errorf("ID %s appears in folds %s and %s", q.ID, prev, seed)
				}
				seen[q.ID] = seed
			}
			return nil
		})
		if err != nil {
			t.Fatalf("StreamExtended(%s): %v", seed, err)
		}
	}
	if want := 2 * 5 * perCategory; len(seen) != want {
		t.Fatalf("saw %d distinct IDs, want %d", len(seen), want)
	}
	// Identity monolith-vs-stream at a smaller size keeps the test fast;
	// combined with the pure-per-index generators it extends to any size.
	for _, seed := range []string{"fold-a", "fold-b"} {
		mono, err := BuildExtended(seed, 60)
		if err != nil {
			t.Fatalf("BuildExtended(%s): %v", seed, err)
		}
		streamed, err := CollectExtended(seed, 60, shardSize)
		if err != nil {
			t.Fatalf("CollectExtended(%s): %v", seed, err)
		}
		if !bytes.Equal(benchmarkJSON(t, mono), benchmarkJSON(t, streamed)) {
			t.Errorf("fold %s: streamed build differs from monolithic build", seed)
		}
	}
}

func TestStreamExtendedRejectsBadArgs(t *testing.T) {
	nop := func(dataset.Shard) error { return nil }
	if err := StreamExtended("s", 0, 4, nop); err == nil {
		t.Error("perCategory=0 accepted")
	}
	if err := StreamExtended("s", 4, 0, nop); err == nil {
		t.Error("shardSize=0 accepted")
	}
	if err := StreamExtended("s", 4, 4, nil); err == nil {
		t.Error("nil yield accepted")
	}
}

func TestStreamExtendedStopsOnYieldError(t *testing.T) {
	sentinel := errors.New("stop here")
	calls := 0
	err := StreamExtended("stop", 10, 5, func(s dataset.Shard) error {
		calls++
		if s.Index == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Errorf("yield called %d times, want 3", calls)
	}
}
