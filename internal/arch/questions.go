package arch

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// Generate produces the 20 Architecture questions (7 multiple choice and
// 13 short answer, per Table I): 10 diagrams, 3 tables, 2 figures, 2
// structures, 2 mixed and 1 neural-net figure. Every golden answer is
// computed by the simulators in this package.
func Generate() []*dataset.Question {
	var qs []*dataset.Question
	add := func(q *dataset.Question) { qs = append(qs, q) }

	// Shared example program: the paper motivates exactly this style of
	// question ("how a bolded bypass path ... affects the cycles per
	// instruction").
	prog := []Instr{
		{Op: OpLoad, Dest: 1, Src1: 2},
		{Op: OpALU, Dest: 3, Src1: 1, Src2: 4},
		{Op: OpALU, Dest: 5, Src1: 3, Src2: 1},
		{Op: OpStore, Src1: 5, Src2: 2},
		{Op: OpALU, Dest: 6, Src1: 4, Src2: 2},
	}
	progLines := make([]string, len(prog))
	for i, ins := range prog {
		progLines[i] = ins.Format()
	}

	// --- Diagrams (ar01..ar10) ----------------------------------------

	// ar01: CPI with the bolded load->ALU bypass present.
	{
		r := SimulatePipeline(prog, ClassicFiveStage())
		scene := pipelineScene("5-stage pipeline with load-to-ALU bypass (bold)", progLines, true)
		add(dataset.NewSANumber("ar01", dataset.Architecture, "pipeline-cpi",
			"The figure shows a classic 5-stage pipeline whose bolded bypass path forwards "+
				"load data from the memory stage to the ALU input, alongside full ALU forwarding. "+
				"For the 5-instruction program listed in the figure, what is the CPI "+
				"(total cycles divided by instruction count, counting pipeline fill)?",
			scene, r.CPI(), "CPI", 0.02, 0.7))
	}
	// ar02: CPI with no forwarding at all.
	{
		r := SimulatePipeline(prog, PipelineConfig{Bypass: NoBypass(), BranchPenalty: 2})
		scene := pipelineScene("5-stage pipeline without forwarding", progLines, false)
		add(dataset.NewSANumber("ar02", dataset.Architecture, "pipeline-cpi-nofwd",
			"The pipeline in the figure has no forwarding paths; dependent instructions "+
				"stall until the writing instruction completes write-back (the register file "+
				"is written in the first half of the cycle and read in the second half). "+
				"For the program listed, what is the CPI including pipeline fill?",
			scene, r.CPI(), "CPI", 0.02, 0.75))
	}
	// ar03: load-use stall count with full forwarding (MC).
	{
		stalls := LoadUseStalls(FullBypass())
		scene := pipelineScene("Load-use hazard", []string{"lw r1, 0(r2)", "add r3, r1, r4"}, true)
		add(dataset.NewMCNumeric("ar03", dataset.Architecture, "load-use",
			"In the fully forwarded 5-stage pipeline of the figure, how many stall cycles "+
				"does the dependent add suffer immediately after the load?",
			scene, float64(stalls), "cycles", 0,
			fmt.Sprintf("%d cycle", stalls),
			[3]string{"0 cycles", "2 cycles", "3 cycles"}, 0.45))
	}
	// ar04: maximum frequency from stage latencies.
	{
		stages := []float64{0.8, 1.0, 1.5, 1.2, 0.9}
		const overhead = 0.1
		f := CriticalPathFrequency(stages, overhead)
		ann := make([]string, len(stages))
		names := []string{"IF", "ID", "EX", "MEM", "WB"}
		for i := range stages {
			ann[i] = fmt.Sprintf("%s: %.1f ns", names[i], stages[i])
		}
		ann = append(ann, fmt.Sprintf("latch overhead: %.1f ns", overhead))
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Pipeline stage latencies", names, ann)
		add(dataset.NewSANumber("ar04", dataset.Architecture, "max-frequency",
			"The pipeline stages in the figure have the latencies annotated, and every "+
				"pipeline latch adds the overhead shown. What is the maximum clock frequency "+
				"of the machine in MHz?",
			scene, f, "MHz", 0.02, 0.55))
	}
	// ar05: total cycles with taken branches (static not-taken fetch).
	{
		bprog := []Instr{
			{Op: OpALU, Dest: 1, Src1: 2, Src2: 3},
			{Op: OpBranch, Src1: 1, Src2: 0, Taken: true},
			{Op: OpALU, Dest: 4, Src1: 2, Src2: 3},
			{Op: OpBranch, Src1: 4, Src2: 0, Taken: true},
			{Op: OpALU, Dest: 5, Src1: 2, Src2: 3},
		}
		r := SimulatePipeline(bprog, ClassicFiveStage())
		lines := make([]string, len(bprog))
		for i, ins := range bprog {
			lines[i] = ins.Format()
		}
		scene := pipelineScene("Pipeline with control hazards", lines, true)
		add(dataset.NewSANumber("ar05", dataset.Architecture, "branch-penalty",
			"The 5-stage pipeline in the figure resolves branches in EX, so each taken "+
				"branch costs two bubbles. Both branches in the listed program are taken. "+
				"How many total cycles does the program take, counting pipeline fill?",
			scene, float64(r.Cycles), "cycles", 0, 0.65))
	}
	// ar06: mesh diameter (MC).
	{
		d, err := Diameter(Mesh2D, 16)
		if err != nil {
			panic(err)
		}
		scene := visual.NewGridScene(visual.KindDiagram, "4x4 on-chip network", 4, 4,
			map[[2]int]string{{0, 0}: "A", {3, 3}: "B"})
		add(dataset.NewMCNumeric("ar06", dataset.Architecture, "mesh-diameter",
			"The figure shows a 4x4 mesh network-on-chip. What is the network diameter "+
				"(the largest minimal hop count between any node pair, such as the corners A and B)?",
			scene, float64(d), "hops", 0,
			fmt.Sprintf("%d hops", d), [3]string{"4 hops", "8 hops", "3 hops"}, 0.5))
	}
	// ar07: torus hop count.
	{
		hops := TorusHops(4, 4, 0, 0, 3, 3)
		scene := visual.NewGridScene(visual.KindDiagram, "4x4 torus with wraparound links", 4, 4,
			map[[2]int]string{{0, 0}: "SRC", {3, 3}: "DST"})
		add(dataset.NewSANumber("ar07", dataset.Architecture, "torus-hops",
			"The 4x4 torus in the figure has wraparound links in both dimensions. What is "+
				"the minimal hop count from the node marked SRC at (0,0) to DST at (3,3)?",
			scene, float64(hops), "hops", 0, 0.55))
	}
	// ar08: AMAT from a hierarchy diagram.
	{
		amat := AMAT(1, 100, 0.05)
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Memory hierarchy",
			[]string{"CPU", "L1", "DRAM"},
			[]string{"L1 hit time: 1 cycle", "L1 miss rate: 5%", "miss penalty: 100 cycles"})
		add(dataset.NewSANumber("ar08", dataset.Architecture, "amat",
			"For the memory hierarchy in the figure with the hit time, miss rate and miss "+
				"penalty annotated, what is the average memory access time in cycles?",
			scene, amat, "cycles", 0.02, 0.5))
	}
	// ar09: out-of-order structure identification (MC).
	{
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Out-of-order core",
			[]string{"FETCH", "DECODE", "X", "ISSUE Q", "ALUs", "ROB"},
			[]string{"block X maps architectural to physical registers"})
		add(dataset.NewMC("ar09", dataset.Architecture, "ooo-rename",
			"In the out-of-order machine of the figure, the block marked X rewrites each "+
				"instruction's architectural register names to physical registers to remove WAR "+
				"and WAW hazards. What is this structure called?",
			scene, "register rename table (register alias table)",
			[3]string{"reorder buffer", "reservation station", "load-store queue"}, 0.6))
	}
	// ar10: vector execution time.
	{
		const lanes, n, startup = 4, 64, 8
		cycles := startup + n/lanes
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Vector unit",
			[]string{"VREG FILE", "LANE x4", "CHAIN"},
			[]string{"vector length: 64 elements", "lanes: 4", "startup: 8 cycles"})
		add(dataset.NewSANumber("ar10", dataset.Architecture, "vector-time",
			"The vector unit in the figure executes one vector instruction over the vector "+
				"length annotated, processing one element per lane per cycle after the startup "+
				"latency. How many cycles does the instruction take?",
			scene, float64(cycles), "cycles", 0, 0.6))
	}

	// --- Tables (ar11..ar13) --------------------------------------------

	// ar11: cache geometry.
	{
		cfg := CacheConfig{SizeBytes: 32 * 1024, BlockSize: 64, Ways: 4}
		sets := cfg.Sets()
		scene := visual.NewTableScene(visual.KindTable, "Cache parameters",
			[]string{"parameter", "value"},
			[][]string{
				{"capacity", "32 KiB"},
				{"block size", "64 B"},
				{"associativity", "4-way"},
			}, map[int]bool{1: true})
		add(dataset.NewSANumber("ar11", dataset.Architecture, "cache-sets",
			"For the cache described by the parameter table in the figure, how many sets "+
				"does the cache have?",
			scene, float64(sets), "sets", 0, 0.5))
	}
	// ar12: MESI final state (MC).
	{
		trace := []CoherenceTraceStep{
			{Core: 0, Write: false},
			{Core: 1, Write: false},
			{Core: 1, Write: true},
			{Core: 0, Write: false},
		}
		states, _, err := RunMESI(2, trace)
		if err != nil {
			panic(err)
		}
		rows := [][]string{
			{"1", "core 0", "read"},
			{"2", "core 1", "read"},
			{"3", "core 1", "write"},
			{"4", "core 0", "read"},
		}
		scene := visual.NewTableScene(visual.KindTable, "Access trace to one cache line",
			[]string{"step", "core", "op"}, rows, map[int]bool{1: true, 2: true})
		golden := states[1].String()
		others := mesiOthers(golden)
		add(dataset.NewMC("ar12", dataset.Architecture, "mesi",
			"Two cores with private caches keep one shared line coherent with the MESI "+
				"protocol. After the access trace listed in the figure, what is the state of the "+
				"line in core 1's cache?",
			scene, fmt.Sprintf("%s (in core 1)", golden), others, 0.7))
	}
	// ar13: virtual address translation.
	{
		cfg := VMConfig{PageSize: 4096, VirtualBits: 16, PhysicalBits: 15}
		pt := map[uint64]uint64{0x0: 0x2, 0x1: 0x7, 0x2: 0x4, 0x3: 0x0}
		va := uint64(0x1abc)
		pa, err := cfg.Translate(va, pt)
		if err != nil {
			panic(err)
		}
		scene := visual.NewTableScene(visual.KindTable, "Page table (4 KiB pages)",
			[]string{"VPN", "PFN"},
			[][]string{{"0x0", "0x2"}, {"0x1", "0x7"}, {"0x2", "0x4"}, {"0x3", "0x0"}},
			map[int]bool{0: true, 1: true})
		add(dataset.NewSANumber("ar13", dataset.Architecture, "vm-translate",
			fmt.Sprintf("Using the page table in the figure (4 KiB pages, 16-bit virtual "+
				"addresses), translate the virtual address 0x%X. Give the physical address as a "+
				"decimal number.", va),
			scene, float64(pa), "", 0, 0.65))
	}

	// --- Figures (ar14, ar15) --------------------------------------------

	// ar14: 2-bit predictor mispredictions on a loop.
	{
		outcomes := LoopOutcomes(4, 3) // 4-iteration loop run 3 times
		miss := RunPredictor(NewTwoBit(4), 0x40, outcomes)
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "2-bit saturating counter FSM",
			"states: 00 01 10 11; taken moves right, not-taken moves left",
			[]string{"initial state: 01 (weakly not-taken)",
				"branch: loop of 4 iterations, run 3 times (TTTN repeated)"})
		add(dataset.NewSANumber("ar14", dataset.Architecture, "2bit-predictor",
			"The figure shows the FSM of a 2-bit saturating-counter branch predictor and "+
				"the outcome pattern of a loop branch. Starting from the weakly not-taken state, "+
				"how many mispredictions occur over the whole 12-outcome stream?",
			scene, float64(miss), "mispredictions", 0, 0.75))
	}
	// ar15: endianness (MC).
	{
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "Memory bytes at address 0x100",
			"0x100: 0x78, 0x101: 0x56, 0x102: 0x34, 0x103: 0x12",
			[]string{"a 32-bit word is loaded from address 0x100"})
		add(dataset.NewMC("ar15", dataset.Architecture, "endianness",
			"The figure shows four bytes stored in memory starting at address 0x100. On a "+
				"little-endian machine, what 32-bit value does a word load from 0x100 return?",
			scene, "0x12345678",
			[3]string{"0x78563412", "0x56781234", "0x34127856"}, 0.5))
	}

	// --- Structures (ar16, ar17) ------------------------------------------

	// ar16: TLB hits over a page-touch pattern.
	{
		tlb := NewTLB(2)
		pt := map[uint64]uint64{0: 10, 1: 11, 2: 12}
		pattern := []uint64{0, 1, 0, 2, 0, 1}
		hits := 0
		for _, vpn := range pattern {
			if _, hit, err := tlb.Lookup(vpn, pt); err != nil {
				panic(err)
			} else if hit {
				hits++
			}
		}
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "2-entry fully associative TLB",
			"two tag/PFN slots with LRU replacement",
			[]string{"page reference sequence: 0, 1, 0, 2, 0, 1"})
		add(dataset.NewSANumber("ar16", dataset.Architecture, "tlb-hits",
			"The 2-entry fully associative TLB in the figure uses LRU replacement and "+
				"starts empty. For the page reference sequence annotated, how many lookups hit?",
			scene, float64(hits), "hits", 0, 0.7))
	}
	// ar17: direct-mapped cache misses (MC).
	{
		cache, err := NewCache(CacheConfig{SizeBytes: 256, BlockSize: 16, Ways: 1, Policy: LRU})
		if err != nil {
			panic(err)
		}
		trace := []uint64{0x00, 0x10, 0x100, 0x00, 0x110, 0x10}
		_, misses := cache.Run(trace)
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "Direct-mapped cache",
			"256 B, 16 B blocks, 16 sets",
			[]string{"access sequence (byte addresses): 0x00, 0x10, 0x100, 0x00, 0x110, 0x10"})
		add(dataset.NewMCNumeric("ar17", dataset.Architecture, "cache-misses",
			"The direct-mapped cache in the figure starts empty and services the byte-address "+
				"sequence annotated. How many of the six accesses miss?",
			scene, float64(misses), "misses", 0,
			fmt.Sprintf("%d misses", misses),
			[3]string{"3 misses", "4 misses", fmt.Sprintf("%d misses", misses+1)}, 0.7))
	}

	// --- Mixed (ar18, ar19) -------------------------------------------------

	// ar18: pipeline speedup.
	{
		// Single-cycle time = sum of stages; pipelined cycle = max stage.
		stages := []float64{1, 1, 1.5, 1, 1}
		sum := 0.0
		worst := 0.0
		for _, s := range stages {
			sum += s
			if s > worst {
				worst = s
			}
		}
		speedup := sum / worst
		scene := visual.NewTableScene(visual.KindMixed, "Pipelining a single-cycle datapath",
			[]string{"stage", "latency (ns)"},
			[][]string{{"IF", "1"}, {"ID", "1"}, {"EX", "1.5"}, {"MEM", "1"}, {"WB", "1"}},
			map[int]bool{1: true})
		add(dataset.NewSANumber("ar18", dataset.Architecture, "pipeline-speedup",
			"A single-cycle datapath with the stage latencies tabulated in the figure is "+
				"pipelined into five stages (ignore latch overhead). On a long instruction "+
				"stream with no hazards, what asymptotic speedup does pipelining deliver?",
			scene, speedup, "x", 0.02, 0.6))
	}
	// ar19: effective CPI with memory stalls.
	{
		base, missRate, penalty, memPerInstr := 1.0, 0.04, 50.0, 0.3
		cpi := base + memPerInstr*missRate*penalty
		scene := visual.NewTableScene(visual.KindMixed, "Core and cache parameters",
			[]string{"parameter", "value"},
			[][]string{
				{"base CPI", "1.0"},
				{"loads+stores per instr", "0.3"},
				{"miss rate", "4%"},
				{"miss penalty", "50 cycles"},
			}, map[int]bool{1: true})
		add(dataset.NewSANumber("ar19", dataset.Architecture, "effective-cpi",
			"Using the core and cache parameters tabulated in the figure, what is the "+
				"effective CPI including memory stall cycles?",
			scene, cpi, "CPI", 0.02, 0.6))
	}

	// --- Neural nets (ar20) --------------------------------------------------

	{
		const n = 8
		macs := n * n
		scene := visual.NewGridScene(visual.KindNeuralNets, "Systolic array accelerator", 4, 4, nil)
		scene.Add(visual.Element{
			Type: visual.ElemValue, Name: "dims", Label: "array size: 8 x 8 PEs",
			X: 80, Y: 320, Salience: 0.65, Critical: true,
		})
		add(dataset.NewMCNumeric("ar20", dataset.Architecture, "systolic",
			"The figure sketches a weight-stationary systolic array for neural-network "+
				"inference with the dimensions annotated. How many multiply-accumulate units "+
				"does the array contain?",
			scene, float64(macs), "MACs", 0,
			fmt.Sprintf("%d MACs", macs),
			[3]string{"8 MACs", "16 MACs", "128 MACs"}, 0.5))
	}

	if len(qs) != 20 {
		panic(fmt.Sprintf("arch: generated %d questions, want 20", len(qs)))
	}
	return qs
}

// pipelineScene draws a 5-stage pipeline with the program listing and an
// optional bolded bypass arc — the figure style the paper's Architecture
// section describes.
func pipelineScene(title string, program []string, bypass bool) *visual.Scene {
	s := visual.NewBlockDiagram(visual.KindDiagram, title,
		[]string{"IF", "ID", "EX", "MEM", "WB"}, nil)
	if bypass {
		// Bold arc from MEM output back to EX input.
		s.Add(visual.Element{
			Type: visual.ElemArrow, Name: "bypass", Label: "bypass",
			X: 60 + 3*150 + 50, Y: 170, X2: 60 + 2*150 + 50, Y2: 170,
			Salience: 0.8, Critical: true,
		})
	}
	for i, line := range program {
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: fmt.Sprintf("prog%d", i), Label: line,
			X: 70, Y: 280 + float64(i)*22, Salience: 0.7, Critical: true,
		})
	}
	return s
}

func mesiOthers(golden string) [3]string {
	var out [3]string
	i := 0
	for _, s := range []string{"M", "E", "S", "I"} {
		if s != golden && i < 3 {
			out[i] = fmt.Sprintf("%s (in core 1)", s)
			i++
		}
	}
	return out
}
