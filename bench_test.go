// Benchmark harness: one testing.B benchmark per experiment of the
// paper (see DESIGN.md §4 for the experiment index E1..E8) plus the
// ablations of DESIGN.md §5. Each benchmark prints the rows/series the
// corresponding table or figure reports, then times the regeneration.
//
// Run everything:  go test -bench=. -benchmem
package chipvqa_test

import (
	"context"
	"crypto/sha256"
	"fmt"
	"testing"

	chipvqa "repro"
	"repro/internal/agent"
	"repro/internal/arch"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/manuf"
	"repro/internal/rng"
	"repro/internal/visual"
	"repro/internal/vlm"
)

// E1 — Table I: benchmark statistics.
func BenchmarkTableI(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	b.Logf("\n%s", suite.FormatTableI())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = suite.Stats()
	}
}

// E2 — Table II (left): zero-shot Pass@1 with multiple choice.
func BenchmarkTableIIWithChoice(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	with, _ := suite.TableII()
	b.Logf("\n%s", chipvqa.FormatTableII(with, nil))
	models := suite.ModelNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range models {
			if _, err := suite.Evaluate(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E2b — the same Table II sweep pinned to the serial engine: the
// baseline the parallel engine is measured against.
func BenchmarkTableIISerial(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	suite.Workers = 1
	models := suite.ModelNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range models {
			if _, err := suite.Evaluate(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E2c — the identical sweep on the pooled engine at GOMAXPROCS
// workers. Compare against BenchmarkTableIISerial for the speedup; the
// equivalence test proves the reports are byte-identical.
func BenchmarkTableIIParallel(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	suite.Workers = -1 // auto: GOMAXPROCS
	models := suite.ModelNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range models {
			if _, err := suite.Evaluate(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E2d — the full 12x142 (model, question) grid as one flattened task
// list on the pooled engine: the shape TableII actually runs.
func BenchmarkTableIIGrid(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	suite.Workers = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, _ := suite.TableII()
		if len(with) != 12 {
			b.Fatal("short report set")
		}
	}
}

// E2e — the sharded grid sweep behind the bench snapshot's
// table_ii_grid section: the full (model, question) grid through
// EvaluateAllInto at fixed worker counts 1/2/4/8, each shard count
// first proven byte-identical to the workers=1 run via a digest over
// every model name, question ID, response and verdict. The scaling is
// recorded by the benchmark numbers but never asserted — on a 1-CPU
// host the sharded runs legitimately show none; only the structural
// property (identical output) is checked.
func BenchmarkTableIIGridSharded(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	var models []chipvqa.Model
	for _, name := range suite.ModelNames() {
		m, err := suite.Model(name)
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	digest := func(reports []*chipvqa.Report) string {
		h := sha256.New()
		for _, r := range reports {
			_, _ = h.Write([]byte(r.ModelName))
			for _, q := range r.Results {
				_, _ = h.Write([]byte{0})
				_, _ = h.Write([]byte(q.QuestionID))
				_, _ = h.Write([]byte(q.Response))
				if q.Correct {
					_, _ = h.Write([]byte{1})
				}
			}
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	serial := eval.Runner{Workers: 1}
	base := digest(serial.EvaluateAll(models, suite.Benchmark))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			r := eval.Runner{Workers: w}
			reports, err := r.EvaluateAllContext(context.Background(), models, suite.Benchmark)
			if err != nil {
				b.Fatal(err)
			}
			if d := digest(reports); d != base {
				b.Fatalf("workers=%d digest %s != serial digest %s", w, d, base)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.EvaluateAllInto(context.Background(), models, suite.Benchmark, reports); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Hot-path micro-benchmarks (DESIGN.md §12): judging every stored
// (question, response) pair of one report and re-normalising the
// canonical golden texts. Both must report 0 allocs/op in the steady
// state — TestJudgeZeroAlloc and TestNormalizeZeroAlloc pin the same
// property as hard test failures.
func BenchmarkJudgeAll(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	rep, err := suite.Evaluate("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	qByID := make(map[string]*chipvqa.Question, suite.Benchmark.Len())
	for _, q := range suite.Benchmark.Questions {
		qByID[q.ID] = q
	}
	judge := eval.Judge{}
	for _, qr := range rep.Results { // warm-up: grow buffers, fill memo
		judge.Correct(qByID[qr.QuestionID], qr.Response)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qr := range rep.Results {
			judge.Correct(qByID[qr.QuestionID], qr.Response)
		}
	}
}

func BenchmarkNormalizeCanonical(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	var norms []string
	for _, q := range suite.Benchmark.Questions {
		norms = append(norms, eval.Normalize(q.Golden.Text))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range norms {
			_ = eval.Normalize(s)
		}
	}
}

// E3 — Table II (right): challenge collection (options removed).
func BenchmarkTableIINoChoice(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	var reports []*chipvqa.Report
	for _, name := range suite.ModelNames() {
		rep, err := suite.EvaluateChallenge(name)
		if err != nil {
			b.Fatal(err)
		}
		reports = append(reports, rep)
	}
	b.Logf("\n%s", chipvqa.FormatTableII(reports, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range suite.ModelNames() {
			if _, err := suite.EvaluateChallenge(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E4 — Table III: agent system versus direct GPT-4o.
func BenchmarkTableIII(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	vals, err := suite.TableIII()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\nWith Choice: GPT4o %.2f  Agent %.2f\nNo Choice:   GPT4o %.2f  Agent %.2f",
		vals[0], vals[1], vals[2], vals[3])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — §IV-B resolution study: GPT-4o on Digital at 1x/8x/16x.
func BenchmarkResolution(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	m, err := suite.Model("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	digital := &dataset.Benchmark{Name: "digital", Questions: suite.Benchmark.Filter(
		func(q *chipvqa.Question) bool { return q.Category == chipvqa.Digital })}
	for _, f := range []int{1, 8, 16} {
		r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: f}}
		b.Logf("downsample %2dx: Pass@1 = %.2f", f, r.Evaluate(m, digital).Pass1())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range []int{1, 8, 16} {
			r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: f}}
			r.Evaluate(m, digital)
		}
	}
}

// E6 — Fig. 1/3 breadth: discipline x visual-type coverage matrix.
func BenchmarkCoverage(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	b.Logf("\n%s", dataset.FormatCoverage(suite.Benchmark.CoverageMatrix()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = suite.Benchmark.CoverageMatrix()
	}
}

// E7 — §IV-A LLaVA backbone scaling case study.
func BenchmarkBackboneScaling(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	for _, p := range vlm.LLaVAFamily() {
		rep, err := suite.Evaluate(p.Name)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%-16s backbone=%-12s strength=%.2f Pass@1=%.2f",
			p.Name, p.Backbone, p.BackboneStrength, rep.Pass1())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range vlm.LLaVAFamily() {
			if _, err := suite.Evaluate(p.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E8 — §IV-A MC-as-RAG effect: per-model gap between collections.
func BenchmarkChoiceGap(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	with, without := suite.TableII()
	for i := range with {
		b.Logf("%-20s gap=%+.2f", with[i].ModelName, with[i].Pass1()-without[i].Pass1())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, n := suite.TableII()
		_ = w[0].Pass1() - n[0].Pass1()
	}
}

// Ablation — guessing floor: what part of the MC advantage is the 25%
// guess floor? Compare the random-guess baseline on MC questions against
// an abstaining baseline.
func BenchmarkAblationNoGuess(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	mc := &dataset.Benchmark{Name: "mc", Questions: suite.Benchmark.Filter(
		func(q *chipvqa.Question) bool { return len(q.Choices) == 4 })}
	r := eval.Runner{}
	guess := r.Evaluate(guessBaseline{}, mc).Pass1()
	abstain := r.Evaluate(abstainBaseline{}, mc).Pass1()
	b.Logf("random guess on MC: %.2f   abstain: %.2f   floor contribution: %.2f",
		guess, abstain, guess-abstain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Evaluate(guessBaseline{}, mc)
	}
}

type guessBaseline struct{}

func (guessBaseline) Name() string { return "random-guess" }
func (guessBaseline) Answer(q *chipvqa.Question, _ chipvqa.InferenceOptions) string {
	if len(q.Choices) == 4 {
		return string(rune('a' + rng.Pick(4, "bench-guess", q.ID)))
	}
	return "unknown"
}

type abstainBaseline struct{}

func (abstainBaseline) Name() string                                              { return "abstain" }
func (abstainBaseline) Answer(*chipvqa.Question, chipvqa.InferenceOptions) string { return "" }

// Ablation — perception vs knowledge bottleneck: sweep the perception
// policy at fixed solve calibration; the pass rate barely moves at full
// resolution (the LLM backbone is the bottleneck, the paper's second
// finding) but collapses at 16x as perception tightens.
func BenchmarkAblationBottleneck(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	m, err := suite.Model("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	sim := m.(*vlm.SimulatedVLM)
	defer sim.SetPerception(vlm.DefaultPerception())
	for _, thr := range []float64{0.4, 0.6, 0.8, 1.0} {
		p := vlm.DefaultPerception()
		p.RecallThreshold = thr
		sim.SetPerception(p)
		r1 := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: 1}}
		r16 := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: 16}}
		b.Logf("recall threshold %.1f: pass@1 %.2f at 1x, %.2f at 16x",
			thr, r1.Evaluate(sim, suite.Benchmark).Pass1(),
			r16.Evaluate(sim, suite.Benchmark).Pass1())
	}
	sim.SetPerception(vlm.DefaultPerception())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: 16}}
		r.Evaluate(sim, suite.Benchmark)
	}
}

// Ablation — judge strictness: the hybrid judge versus exact-match-only.
func BenchmarkAblationJudge(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	m, err := suite.Model("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	lenient := eval.Runner{Judge: eval.Judge{}}
	strict := eval.Runner{Judge: eval.Judge{Strict: true}}
	b.Logf("hybrid judge: %.2f   strict judge: %.2f",
		lenient.Evaluate(m, suite.Benchmark).Pass1(),
		strict.Evaluate(m, suite.Benchmark).Pass1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strict.Evaluate(m, suite.Benchmark)
	}
}

// Ablation — agent description fidelity: sweep the designer boost and
// watch the Table III gain move; at boost 0 the agent can only lose
// (information-lossy text relay), explaining the Manufacture regression.
func BenchmarkAblationAgentFidelity(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	m, err := suite.Model("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	tool := m.(*vlm.SimulatedVLM)
	r := eval.Runner{}
	base := r.Evaluate(tool, suite.Benchmark).Pass1()
	for _, boost := range []float64{0, 0.1, 0.21, 0.4} {
		ag := agent.New(tool)
		ag.Cfg.DesignerBoostMC = boost
		rep := r.Evaluate(ag, suite.Benchmark)
		b.Logf("designer boost %.2f: agent %.2f (GPT4o direct %.2f)", boost, rep.Pass1(), base)
	}
	b.ResetTimer()
	ag := agent.New(tool)
	for i := 0; i < b.N; i++ {
		r.Evaluate(ag, suite.Benchmark)
	}
}

// Extension — extended-collection generation (the paper's future-work
// dataset-collection direction): generate and evaluate a 50-question
// fold.
func BenchmarkExtendedCollection(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	ext, err := suite.Extended("bench-fold", 10)
	if err != nil {
		b.Fatal(err)
	}
	m, err := suite.Model("GPT4o")
	if err != nil {
		b.Fatal(err)
	}
	r := eval.Runner{}
	b.Logf("extended fold: %d questions, GPT4o Pass@1 = %.2f",
		ext.Len(), r.Evaluate(m, ext).Pass1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fold, err := suite.Extended("bench-fold", 10)
		if err != nil {
			b.Fatal(err)
		}
		r.Evaluate(m, fold)
	}
}

// Extension — domain-adaptation learning curve (the paper's future-work
// VLM-training direction): fine-tune LLaVA-7b on nested folds and
// evaluate held-out.
func BenchmarkFineTuneStudy(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	m, err := suite.Model("LLaVA-7b")
	if err != nil {
		b.Fatal(err)
	}
	base := m.(*vlm.SimulatedVLM)
	pool, err := suite.Extended("train-pool", 30)
	if err != nil {
		b.Fatal(err)
	}
	test, err := suite.Extended("test-fold", 10)
	if err != nil {
		b.Fatal(err)
	}
	curve := vlm.LearningCurve(base, pool, test, []int{0, 10, 30}, vlm.DefaultTraining())
	for _, pt := range curve {
		b.Logf("train %2d/category: held-out Pass@1 = %.3f", pt.TrainPerCategory, pt.Pass1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vlm.LearningCurve(base, pool, test, []int{0, 10, 30}, vlm.DefaultTraining())
	}
}

// Extension — statistical comparison machinery: bootstrap CI + paired
// McNemar on the Table II leaders.
func BenchmarkStatisticalComparison(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	res, cis, err := suite.Compare("GPT4o", "LLaMA-3.2-90B")
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("GPT4o %s vs LLaMA-3.2-90B %s; McNemar %s", cis[0], cis[1], res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := suite.Compare("GPT4o", "LLaMA-3.2-90B"); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension — item analysis: per-question difficulty and discrimination
// across the twelve models (the evidence behind the paper's
// "comprehensive difficulties" claim).
func BenchmarkItemAnalysis(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	r := eval.Runner{}
	var reports []*chipvqa.Report
	for _, name := range suite.ModelNames() {
		m, err := suite.Model(name)
		if err != nil {
			b.Fatal(err)
		}
		reports = append(reports, r.Evaluate(m, suite.Benchmark))
	}
	items, err := eval.ItemAnalysis(reports)
	if err != nil {
		b.Fatal(err)
	}
	unsolved := 0
	for _, it := range items {
		if it.Difficulty == 0 {
			unsolved++
		}
	}
	b.Logf("%d/%d questions unsolved by every model; hardest: %s",
		unsolved, len(items), eval.HardestItems(items, 1)[0].QuestionID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ItemAnalysis(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// Supporting substrate benchmark — out-of-order vs in-order execution on
// a mixed instruction stream (the ILP engine behind the Architecture
// questions).
func BenchmarkOoOvsInOrder(b *testing.B) {
	prog := []arch.Instr{
		{Op: arch.OpLoad, Dest: 1, Src1: 9},
		{Op: arch.OpALU, Dest: 2, Src1: 8},
		{Op: arch.OpALU, Dest: 3, Src1: 8},
		{Op: arch.OpALU, Dest: 4, Src1: 1},
		{Op: arch.OpLoad, Dest: 5, Src1: 9},
		{Op: arch.OpALU, Dest: 6, Src1: 5},
		{Op: arch.OpALU, Dest: 7, Src1: 2, Src2: 3},
		{Op: arch.OpStore, Src1: 7, Src2: 9},
	}
	cfg := arch.DefaultOoO()
	ooo, err := arch.SimulateOoO(prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	inOrder, err := arch.InOrderBaselineCycles(prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("OoO %d cycles (IPC %.2f) vs in-order %d cycles (speedup %.2fx)",
		ooo.Cycles, ooo.IPC(), inOrder, float64(inOrder)/float64(ooo.Cycles))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.SimulateOoO(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Supporting substrate benchmark — aerial-image OPC: measure the
// proximity effect on a dense grating and the mask bias that corrects
// it (the physics behind the m01 RET question).
func BenchmarkAerialOPC(b *testing.B) {
	sim := manuf.NewAerialSimulator(manuf.KrF())
	const cd, pitch = 150.0, 400.0
	errBefore := sim.ProximityError(cd, pitch, 5)
	bias, ok := sim.ApplyBiasOPC(cd, pitch, 5)
	if !ok {
		b.Fatal("OPC did not converge")
	}
	b.Logf("dense grating CD error %.1f nm; corrective mask bias %.1f nm", errBefore, bias)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sim.ApplyBiasOPC(cd, pitch, 5); !ok {
			b.Fatal("OPC did not converge")
		}
	}
}

// Supporting micro-benchmarks: the raster pipeline the real benchmark
// images flow through (render + downsample + patch encoding).
func BenchmarkRenderPipeline(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	q := suite.Benchmark.Questions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := visual.Render(q.Visual)
		small := visual.Downsample(img, 8)
		_ = visual.EncodePatches(small, 16)
	}
}

// The span raster kernel cold: every question's scene rasterised from
// scratch, each frame handed back to the pixel pool. No cache — this is
// the kernel itself, amortised over all 142 figures.
func BenchmarkRenderAllCold(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range suite.Benchmark.Questions {
			img := visual.Render(q.Visual)
			visual.ReleaseImage(img)
		}
	}
}

// The zero-copy read path: QuestionImage returns the cache-shared frame
// directly, so a warm call is a map lookup.
func BenchmarkQuestionImageWarm(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	for _, q := range suite.Benchmark.Questions {
		_ = chipvqa.QuestionImage(q, 8) // prime the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range suite.Benchmark.Questions {
			_ = chipvqa.QuestionImage(q, 8)
		}
	}
}

// The cloning read path: RenderQuestion pays a pooled row-copy per call
// for a mutable frame. The gap to BenchmarkQuestionImageWarm is the
// price of the private copy.
func BenchmarkRenderQuestionClone(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	for _, q := range suite.Benchmark.Questions {
		_ = chipvqa.QuestionImage(q, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range suite.Benchmark.Questions {
			img := chipvqa.RenderQuestion(q, 8)
			visual.ReleaseImage(img)
		}
	}
}

// The separable downsample kernel alone, at the ablation factors.
func BenchmarkDownsample(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	img := visual.Render(suite.Benchmark.Questions[0].Visual)
	for _, f := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("%dx", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := visual.Downsample(img, f)
				visual.ReleaseImage(out)
			}
		})
	}
}

// The same pipeline through the scene cache: after the first iteration
// every render and downsample is a lookup. The gap to
// BenchmarkRenderPipeline is the per-question win the evaluation engine
// gets on repeated sweeps.
func BenchmarkRenderPipelineCached(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	q := suite.Benchmark.Questions[0]
	cache := visual.NewSceneCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small := cache.Downsampled(q.Visual, 8)
		_ = visual.EncodePatches(small, 16)
	}
}

// §IV-B sweep at 16x with the scene cache shared across models: the
// per-scene legibility tables are derived once, not 12 times.
func BenchmarkResolutionSweepAllModels(b *testing.B) {
	suite := chipvqa.MustNewSuite()
	suite.Workers = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range suite.ModelNames() {
			if _, err := suite.EvaluateAtResolution(name, 16); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBuildBenchmark times full dataset generation (all five
// discipline engines).
func BenchmarkBuildBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = chipvqa.MustNewSuite()
	}
}

func init() {
	// Fail fast in benchmarks if the benchmark composition drifts.
	s := chipvqa.MustNewSuite()
	if s.Benchmark.Len() != 142 {
		panic(fmt.Sprintf("benchmark has %d questions", s.Benchmark.Len()))
	}
}
