package lint

import (
	"go/ast"
	"go/types"
)

// PoolOwn machine-checks the pixel-pool ownership contract documented
// in internal/visual/pool.go:
//
//   - Images returned by the scene cache (SceneCache.Render,
//     SceneCache.Downsampled, CachedRender, CachedDownsample,
//     chipvqa.QuestionImage) are shared; releasing one hands a live
//     cached buffer back to the pool and corrupts every later reader.
//   - Images returned by Render, Downsample, Clone and RenderQuestion
//     are caller-owned and may be released exactly once.
//   - Images handed out by SceneCache.AcquireRender and
//     SceneCache.AcquireDownsampled are cache-owned too: the paired
//     release func is the only legal way to end the pin, and calling
//     ReleaseImage on the image would recycle a buffer the cache may
//     still hand to other readers.
//   - After ReleaseImage(v), v must not be released again, returned, or
//     stored into a field — its Pix is gone.
//
// The check is an intraprocedural must-analysis: variable states
// (owned / shared / released) flow through straight-line code, both
// branches of an if/switch are analyzed and re-joined (a fact must hold
// on every path to survive the join), and loop bodies are analyzed
// conservatively without iterating.
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc: "enforces the pixel-pool ownership contract: never release cache-shared images, " +
		"never double-release, never use a released image",
	Run: runPoolOwn,
}

// ownState is the per-variable lattice of the poolown analysis.
type ownState int

const (
	ownUnknown  ownState = iota
	ownOwned             // caller-owned pooled image; releasable once
	ownShared            // cache-shared image; must never be released
	ownReleased          // already handed back to the pool
)

// poolEnv maps image variables to their ownership state.
type poolEnv map[*types.Var]ownState

func (e poolEnv) clone() poolEnv {
	c := make(poolEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// join merges two branch environments into the must-intersection:
// a state survives only if both paths agree on it.
func (e poolEnv) join(a, b poolEnv) {
	for k := range e {
		delete(e, k)
	}
	for k, va := range a {
		if vb, ok := b[k]; ok && va == vb {
			e[k] = va
		}
	}
}

func runPoolOwn(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &poolWalker{pass: pass}
					w.block(make(poolEnv), n.Body.List)
				}
				return false
			case *ast.FuncLit:
				w := &poolWalker{pass: pass}
				w.block(make(poolEnv), n.Body.List)
				return false
			}
			return true
		})
	}
}

// poolWalker carries the analysis through one function body.
type poolWalker struct {
	pass *Pass
}

func (w *poolWalker) info() *types.Info { return w.pass.Pkg.Info }

// block analyzes a statement sequence, threading env through it.
func (w *poolWalker) block(env poolEnv, stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(env, s)
	}
}

func (w *poolWalker) stmt(env poolEnv, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(env, s)
	case *ast.ExprStmt:
		w.expr(env, s.X)
	case *ast.DeferStmt:
		w.expr(env, s.Call)
	case *ast.GoStmt:
		w.expr(env, s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if id, ok := unparen(r).(*ast.Ident); ok {
				if v := w.varOf(id); v != nil && env[v] == ownReleased {
					w.pass.Reportf(r.Pos(),
						"%s escapes via return after ReleaseImage; its pixel buffer is back in the pool", id.Name)
				}
			}
		}
	case *ast.BlockStmt:
		w.block(env, s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(env, s.Init)
		}
		w.expr(env, s.Cond)
		thenEnv := env.clone()
		w.block(thenEnv, s.Body.List)
		elseEnv := env.clone()
		if s.Else != nil {
			w.stmt(elseEnv, s.Else)
		}
		env.join(thenEnv, elseEnv)
	case *ast.ForStmt:
		// One-shot conservative pass over the body: releases inside the
		// loop are checked against the entry state but do not leak out
		// (the loop may run zero times).
		if s.Init != nil {
			w.stmt(env, s.Init)
		}
		w.block(env.clone(), s.Body.List)
	case *ast.RangeStmt:
		w.block(env.clone(), s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(env, s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(env.clone(), cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(env.clone(), cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(env, s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.bind(env, name, vs.Values[i])
						}
					}
				}
			}
		}
	}
}

// assign classifies RHS producers into variable states and checks
// field stores of released images.
func (w *poolWalker) assign(env poolEnv, s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.expr(env, r)
	}
	for i, lhs := range s.Lhs {
		if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
			// x.f = v where v was released: escaping dead buffer.
			if i < len(s.Rhs) {
				if id, ok := unparen(s.Rhs[i]).(*ast.Ident); ok {
					if v := w.varOf(id); v != nil && env[v] == ownReleased {
						w.pass.Reportf(s.Rhs[i].Pos(),
							"%s escapes via field store %s after ReleaseImage", id.Name, exprString(sel))
					}
				}
			}
			continue
		}
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := w.varOf(id)
		if v == nil {
			continue
		}
		switch {
		case len(s.Lhs) == len(s.Rhs):
			env[v] = w.classify(env, s.Rhs[i])
		case i == 0 && len(s.Rhs) == 1 && w.isAcquireCall(s.Rhs[0]):
			// img, release := c.AcquireRender(s): the image stays
			// cache-owned; the release func is the only legal path.
			env[v] = ownShared
		default:
			delete(env, v) // multi-value assignment: unknown
		}
		if env[v] == ownUnknown {
			delete(env, v)
		}
	}
}

// bind handles `var v = expr` declarations.
func (w *poolWalker) bind(env poolEnv, name *ast.Ident, val ast.Expr) {
	w.expr(env, val)
	if v := w.varOf(name); v != nil {
		if st := w.classify(env, val); st != ownUnknown {
			env[v] = st
		}
	}
}

// classify determines the ownership state an expression's value carries.
func (w *poolWalker) classify(env poolEnv, e ast.Expr) ownState {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeOf(w.info(), e)
		switch {
		case isSharedProducer(fn):
			return ownShared
		case isOwnedProducer(fn):
			return ownOwned
		}
	case *ast.Ident:
		if v := w.varOf(e); v != nil {
			return env[v] // aliasing propagates the state
		}
	}
	return ownUnknown
}

// expr scans an expression tree for ReleaseImage calls and applies
// their effects; nested function literals are skipped.
func (w *poolWalker) expr(env poolEnv, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(w.info(), call); isFuncIn(fn, "internal/visual", "ReleaseImage") && len(call.Args) == 1 {
			w.release(env, call.Args[0])
		}
		return true
	})
}

// release applies ReleaseImage(arg) to the environment and reports
// contract violations.
func (w *poolWalker) release(env poolEnv, arg ast.Expr) {
	switch arg := unparen(arg).(type) {
	case *ast.CallExpr:
		if fn := calleeOf(w.info(), arg); isSharedProducer(fn) {
			w.pass.Reportf(arg.Pos(),
				"releasing the shared cached image returned by %s; cache-owned buffers must never be released", fn.Name())
		}
	case *ast.Ident:
		v := w.varOf(arg)
		if v == nil {
			return
		}
		switch env[v] {
		case ownShared:
			w.pass.Reportf(arg.Pos(),
				"releasing %s, which holds a shared cache-owned image; only Render/Downsample/Clone results may be released", arg.Name)
		case ownReleased:
			w.pass.Reportf(arg.Pos(), "double release of %s on this path", arg.Name)
		default:
			env[v] = ownReleased
		}
	}
}

// varOf resolves an identifier to its variable object.
func (w *poolWalker) varOf(id *ast.Ident) *types.Var {
	obj := w.info().Uses[id]
	if obj == nil {
		obj = w.info().Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// isAcquireCall reports whether e calls a pinned-handle producer
// (SceneCache.AcquireRender / AcquireDownsampled). Their (image,
// release) results keep the image cache-owned: only the release func
// may end the pin, never ReleaseImage.
func (w *poolWalker) isAcquireCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(w.info(), call)
	return isMethodOn(fn, "internal/visual", "SceneCache", "AcquireRender") ||
		isMethodOn(fn, "internal/visual", "SceneCache", "AcquireDownsampled")
}

// isSharedProducer reports whether fn returns a cache-shared image that
// must never be released (see internal/visual/pool.go's contract).
func isSharedProducer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return isFuncIn(fn, "internal/visual", "CachedRender") ||
		isFuncIn(fn, "internal/visual", "CachedDownsample") ||
		isMethodOn(fn, "internal/visual", "SceneCache", "Render") ||
		isMethodOn(fn, "internal/visual", "SceneCache", "Downsampled") ||
		(fn.Name() == "QuestionImage" && fn.Pkg() != nil && fn.Pkg().Name() == "chipvqa")
}

// isOwnedProducer reports whether fn returns a caller-owned pooled
// image the caller may release exactly once.
func isOwnedProducer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return isFuncIn(fn, "internal/visual", "Render") ||
		isFuncIn(fn, "internal/visual", "Downsample") ||
		isFuncIn(fn, "internal/visual", "Clone") ||
		(fn.Name() == "RenderQuestion" && fn.Pkg() != nil && fn.Pkg().Name() == "chipvqa")
}
