// Modelzoo: the §IV-A studies — the full Table II comparison, the
// MC-as-RAG gap, the open-vs-proprietary gap, and the LLaVA backbone
// scaling case study.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/vlm"
)

func main() {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	with, without := suite.TableII()
	fmt.Println("TABLE II  Zero-Shot Evaluation on ChipVQA")
	fmt.Print(chipvqa.FormatTableII(with, without))

	// The MC-as-RAG effect: every model drops when options are removed.
	fmt.Println("\nMC-as-RAG gap (Pass@1 with options minus without):")
	for i := range with {
		fmt.Printf("  %-20s %+.2f\n", with[i].ModelName, with[i].Pass1()-without[i].Pass1())
	}

	// Open-source vs proprietary.
	var bestOpen float64
	var bestOpenName string
	var proprietary float64
	for i, p := range vlm.Profiles() {
		pass := with[i].Pass1()
		if p.OpenSource {
			if pass > bestOpen {
				bestOpen, bestOpenName = pass, p.Name
			}
		} else {
			proprietary = pass
		}
	}
	fmt.Printf("\nbest open-source (%s): %.2f  proprietary GPT-4o: %.2f  gap: %.2f\n",
		bestOpenName, bestOpen, proprietary, proprietary-bestOpen)

	// LLaVA backbone scaling: accuracy should track the text backbone.
	fmt.Println("\nLLaVA backbone case study (stronger LLM backbone -> higher Pass@1):")
	byName := make(map[string]float64)
	for _, r := range with {
		byName[r.ModelName] = r.Pass1()
	}
	for _, p := range vlm.LLaVAFamily() {
		fmt.Printf("  %-16s backbone %-12s strength %.2f  Pass@1 %.2f\n",
			p.Name, p.Backbone, p.BackboneStrength, byName[p.Name])
	}
}
