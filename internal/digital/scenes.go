package digital

import (
	"fmt"
	"sort"

	"repro/internal/visual"
)

// CircuitScene draws a netlist as a schematic: gates placed in columns by
// logic depth, wires between them, input labels on the left. Gates and
// their connectivity are the critical content of circuit-analysis
// questions.
func CircuitScene(n *Netlist, title string, criticalNets map[string]bool) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, title)

	depthOf := make(map[string]int)
	for _, g := range n.Gates {
		d, err := n.Depth(g.Output)
		if err != nil {
			d = 1
		}
		depthOf[g.Output] = d
	}
	// Column layout: inputs at depth 0.
	colX := func(d int) float64 { return 70 + float64(d)*130 }
	pos := make(map[string]visual.Point) // net -> source position

	ins := n.PrimaryInputs()
	for i, in := range ins {
		y := 80 + float64(i)*70
		pos[in] = visual.Point{X: colX(0), Y: y}
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: "in-" + in, Label: in,
			X: colX(0) - 30, Y: y - 6, Salience: 0.85,
		})
	}
	// Flop outputs also act as sources.
	var flopOuts []string
	for q := range n.DFFs {
		flopOuts = append(flopOuts, q)
	}
	sort.Strings(flopOuts)
	for i, q := range flopOuts {
		y := 80 + float64(len(ins)+i)*70
		pos[q] = visual.Point{X: colX(0), Y: y}
		s.Add(visual.Element{
			Type: visual.ElemGate, Name: "ff-" + q, Label: "DFF",
			X: colX(0) - 50, Y: y - 15, Critical: criticalNets[q],
		})
	}

	// Row counters per column.
	rowInCol := make(map[int]int)
	gateAt := make(map[string]visual.Point)
	for _, g := range n.Gates {
		d := depthOf[g.Output]
		row := rowInCol[d]
		rowInCol[d]++
		x := colX(d)
		y := 70 + float64(row)*85
		gateAt[g.Output] = visual.Point{X: x, Y: y + 15}
		pos[g.Output] = visual.Point{X: x + 45, Y: y + 15}
		s.Add(visual.Element{
			Type: visual.ElemGate, Name: g.Name, Label: g.Kind.String(),
			X: x, Y: y, Critical: criticalNets == nil || criticalNets[g.Output],
		})
	}
	// Wires from each input source to each consuming gate.
	for _, g := range n.Gates {
		to := gateAt[g.Output]
		for k, in := range g.Inputs {
			from, ok := pos[in]
			if !ok {
				continue
			}
			s.Add(visual.Element{
				Type: visual.ElemWire,
				Name: fmt.Sprintf("w-%s-%s-%d", in, g.Name, k),
				X:    from.X, Y: from.Y,
				X2: to.X, Y2: to.Y + float64(k*8-8),
			})
		}
	}
	return s
}

// TruthTableScene draws a truth table; the output-column cells are the
// critical content.
func TruthTableScene(t *TruthTable, outName, title string) *visual.Scene {
	s := visual.NewScene(visual.KindTable, title)
	const cw, ch = 46, 24
	x0, y0 := 60.0, 50.0
	cols := len(t.Vars) + 1
	// Header row.
	headers := append(append([]string{}, t.Vars...), outName)
	for c := 0; c < cols; c++ {
		s.Add(visual.Element{
			Type: visual.ElemCell, Name: fmt.Sprintf("h%d", c), Label: headers[c],
			X: x0 + float64(c)*cw, Y: y0, X2: x0 + float64(c+1)*cw, Y2: y0 + ch,
			Attrs: map[string]string{"row": "h", "col": fmt.Sprint(c)}, Salience: 0.9,
		})
	}
	for m := range t.Out {
		y := y0 + float64(m+1)*ch
		bits := t.Row(m)
		for c, b := range bits {
			s.Add(visual.Element{
				Type: visual.ElemCell, Name: fmt.Sprintf("c%d-%d", m, c),
				Label: fmt.Sprint(boolBit(b)),
				X:     x0 + float64(c)*cw, Y: y, X2: x0 + float64(c+1)*cw, Y2: y + ch,
				Attrs: map[string]string{"row": fmt.Sprint(m), "col": fmt.Sprint(c)},
			})
		}
		s.Add(visual.Element{
			Type: visual.ElemCell, Name: fmt.Sprintf("out%d", m),
			Label: fmt.Sprint(boolBit(t.Out[m])),
			X:     x0 + float64(cols-1)*cw, Y: y, X2: x0 + float64(cols)*cw, Y2: y + ch,
			Attrs:    map[string]string{"row": fmt.Sprint(m), "col": "out"},
			Salience: 0.7, Critical: true,
		})
	}
	s.Height = int(y0) + (len(t.Out)+2)*ch + 40
	return s
}

// RegisterScene draws an n-bit register with its bit values annotated —
// used by data-representation questions where the bits are the critical
// content.
func RegisterScene(word, bits int, title string) *visual.Scene {
	s := visual.NewScene(visual.KindDiagram, title)
	const cw, ch = 40, 40
	x0, y0 := 80.0, 120.0
	for i := 0; i < bits; i++ {
		bit := (word >> (bits - 1 - i)) & 1
		s.Add(visual.Element{
			Type: visual.ElemCell, Name: fmt.Sprintf("bit%d", i),
			Label: fmt.Sprint(bit),
			X:     x0 + float64(i)*cw, Y: y0, X2: x0 + float64(i+1)*cw, Y2: y0 + ch,
			Attrs:    map[string]string{"row": "0", "col": fmt.Sprint(i)},
			Salience: 0.75, Critical: true,
		})
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("idx%d", i),
			Label: fmt.Sprint(bits - 1 - i),
			X:     x0 + float64(i)*cw + 14, Y: y0 - 16,
		})
	}
	return s
}

// BlockChainScene draws a left-to-right chain of labelled blocks joined
// by arrows (shift registers, simple datapaths).
func BlockChainScene(labels []string, title string, critical bool) *visual.Scene {
	s := visual.NewScene(visual.KindDiagram, title)
	const bw, bh = 80, 46
	x0, y0 := 50.0, 150.0
	for i, l := range labels {
		x := x0 + float64(i)*(bw+40)
		s.Add(visual.Element{
			Type: visual.ElemBox, Name: fmt.Sprintf("blk%d", i), Label: l,
			X: x, Y: y0, X2: x + bw, Y2: y0 + bh, Critical: critical,
		})
		if i > 0 {
			s.Add(visual.Element{
				Type: visual.ElemArrow, Name: fmt.Sprintf("ar%d", i),
				X: x - 40, Y: y0 + bh/2, X2: x, Y2: y0 + bh/2,
			})
		}
	}
	return s
}

// EquationsScene draws a list of equations as text; each line is
// critical.
func EquationsScene(lines []string, title string) *visual.Scene {
	s := visual.NewScene(visual.KindEquations, title)
	for i, l := range lines {
		s.Add(visual.Element{
			Type: visual.ElemEquationText, Name: fmt.Sprintf("eq%d", i), Label: l,
			X: 60, Y: 80 + float64(i)*50, Salience: 0.8, Critical: true,
		})
	}
	return s
}

// PerceptronScene draws a single-layer perceptron: input nodes, weighted
// edges and a threshold unit. Weights and threshold are the critical
// annotations.
func PerceptronScene(weights []float64, threshold float64, title string) *visual.Scene {
	s := visual.NewScene(visual.KindNeuralNets, title)
	outX, outY := 420.0, 200.0
	s.Add(visual.Element{
		Type: visual.ElemBox, Name: "unit", Label: fmt.Sprintf("sum >= %.1f", threshold),
		X: outX, Y: outY - 30, X2: outX + 120, Y2: outY + 30,
		Salience: 0.8, Critical: true,
	})
	for i, w := range weights {
		y := 100 + float64(i)*120
		s.Add(visual.Element{
			Type: visual.ElemBox, Name: fmt.Sprintf("x%d", i), Label: fmt.Sprintf("x%d", i+1),
			X: 80, Y: y - 20, X2: 140, Y2: y + 20,
		})
		s.Add(visual.Element{
			Type: visual.ElemArrow, Name: fmt.Sprintf("w%d", i),
			Label: fmt.Sprintf("w=%.1f", w),
			X:     140, Y: y, X2: outX, Y2: outY,
			Salience: 0.7, Critical: true,
		})
	}
	s.Add(visual.Element{
		Type: visual.ElemArrow, Name: "out", X: outX + 120, Y: outY, X2: outX + 180, Y2: outY,
		Label: "y",
	})
	return s
}
