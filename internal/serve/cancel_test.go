package serve

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
)

// prefixReportBytes marshals the offline reference truncated to the
// first n (model-major) results — the report a cancelled single-model
// run must record.
func prefixReportBytes(t *testing.T, full []*eval.Report, n int) []byte {
	t.Helper()
	if len(full) != 1 {
		t.Fatalf("prefix helper handles single-model runs, got %d reports", len(full))
	}
	trunc := &eval.Report{ModelName: full[0].ModelName, Results: full[0].Results[:n]}
	body, err := MarshalReports([]*eval.Report{trunc})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// gateServer builds a server whose eventGate blocks the run pipeline
// just before appending event `stopAt`, until the run's own context is
// cancelled. reached receives the run id once the gate is hit.
func gateServer(t *testing.T, stopAt int) (*Server, *httptest.Server, chan string) {
	t.Helper()
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan string, 8)
	s.eventGate = func(ctx context.Context, runID string, seq int) {
		if seq == stopAt {
			reached <- runID
			<-ctx.Done()
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(dctx)
	})
	return s, ts, reached
}

// TestServeDisconnectRecordsPrefix closes a streaming client mid-run
// and asserts the registry records the deterministic prefix: exactly
// the events delivered before the cancellation point, byte-identical
// to the offline report truncated at that point.
func TestServeDisconnectRecordsPrefix(t *testing.T) {
	const stopAt = 5
	offline := offlineReports(t, []string{"GPT4o"}, 1)
	s, ts, reached := gateServer(t, stopAt)

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"models":["GPT4o"],"workers":1,"session":"dc","stream":"ndjson"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Read the prefix the server managed to flush, then hang up.
	sc := bufio.NewScanner(resp.Body)
	var got []string
	for len(got) < stopAt && sc.Scan() {
		got = append(got, sc.Text())
	}
	if len(got) != stopAt {
		t.Fatalf("read %d events before gate, want %d (scan err %v)", len(got), stopAt, sc.Err())
	}
	var runID string
	select {
	case runID = <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("gate never reached")
	}
	_ = resp.Body.Close() // the disconnect — cancels the request-scoped run

	rn, ok := s.reg.get(runID)
	if !ok {
		t.Fatalf("run %s not registered", runID)
	}
	select {
	case <-rn.done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not unwind after disconnect")
	}

	events, state, _ := rn.snapshot(0)
	if state != runCancelled {
		t.Fatalf("run state %s, want cancelled", state)
	}
	// The gate blocked *inside* the observer for event stopAt; the
	// cancellation released it, that event was appended, and delivery
	// stopped deterministically right after — prefix = stopAt+1.
	if len(events) != stopAt+1 {
		t.Fatalf("recorded %d events, want %d", len(events), stopAt+1)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.QuestionID != offline[0].Results[i].QuestionID || ev.Correct != offline[0].Results[i].Correct {
			t.Errorf("event %d (%s) differs from offline result (%s)", i, ev.QuestionID, offline[0].Results[i].QuestionID)
		}
	}
	want := prefixReportBytes(t, offline, stopAt+1)
	if got := fetchReport(t, ts, runID); !bytes.Equal(got, want) {
		t.Errorf("prefix report differs from truncated offline report\ngot:  %s\nwant: %s", got, want)
	}
}

// TestServeDeleteCancelsRun cancels a detached run via DELETE and
// asserts the same deterministic-prefix contract, plus the 409 on
// fetching a report mid-run.
func TestServeDeleteCancelsRun(t *testing.T) {
	const stopAt = 7
	offline := offlineReports(t, []string{"GPT4o"}, 1)
	_, ts, reached := gateServer(t, stopAt)

	st := postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"del"}`, http.StatusCreated)
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("gate never reached")
	}

	// Mid-run the report is not available yet.
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-run report = %d, want 409", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID+"?wait=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}

	end := waitTerminal(t, ts, st.ID)
	if end.State != "cancelled" {
		t.Fatalf("state %s, want cancelled", end.State)
	}
	if end.Events != stopAt+1 {
		t.Fatalf("recorded %d events, want %d", end.Events, stopAt+1)
	}
	want := prefixReportBytes(t, offline, stopAt+1)
	if got := fetchReport(t, ts, st.ID); !bytes.Equal(got, want) {
		t.Errorf("DELETE prefix report differs from truncated offline report")
	}

	// Cancelling again is idempotent.
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second DELETE = %d, want 202", resp.StatusCode)
	}
}

// TestServeDrainGraceful lets in-flight runs finish: drain must wait
// for them (forced == 0), refuse new runs with 503, and leave complete
// reports behind.
func TestServeDrainGraceful(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	b, _ := fixture(t)

	st := postRun(t, ts, `{"models":["GPT4o"],"session":"drain-a"}`, http.StatusCreated)
	st2 := postRun(t, ts, `{"models":["LLaVA-7b"],"session":"drain-b"}`, http.StatusCreated)

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if forced := s.Drain(dctx); forced != 0 {
		t.Fatalf("graceful drain force-cancelled %d runs", forced)
	}
	if !s.Draining() {
		t.Error("server not marked draining")
	}

	for _, id := range []string{st.ID, st2.ID} {
		end := waitTerminal(t, ts, id)
		if end.State != "done" || end.Events != b.Len() {
			t.Errorf("run %s ended %s with %d events, want done/%d", id, end.State, end.Events, b.Len())
		}
	}

	// Draining servers refuse new runs but still serve reads.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"models":["GPT4o"]}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "draining" {
		t.Errorf("healthz status %q, want draining", h.Status)
	}
}

// TestServeDrainForcesStragglers drains while runs are wedged at the
// gate: the deadline passes, drain force-cancels them, every run still
// records its deterministic prefix, and the whole drain completes
// promptly after the deadline rather than hanging.
func TestServeDrainForcesStragglers(t *testing.T) {
	const stopAt = 4
	offline := offlineReports(t, []string{"GPT4o"}, 1)
	s, ts, reached := gateServer(t, stopAt)

	ids := make([]string, 3)
	for i := range ids {
		ids[i] = postRun(t, ts,
			`{"models":["GPT4o"],"workers":1,"session":"wedge-`+string(rune('a'+i))+`"}`,
			http.StatusCreated).ID
	}
	for range ids {
		select {
		case <-reached:
		case <-time.After(10 * time.Second):
			t.Fatal("gate never reached for all runs")
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	forced := s.Drain(dctx)
	if forced != len(ids) {
		t.Fatalf("forced %d runs, want %d", forced, len(ids))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced drain took %s", elapsed)
	}

	want := prefixReportBytes(t, offline, stopAt+1)
	for _, id := range ids {
		end := waitTerminal(t, ts, id)
		if end.State != "cancelled" || end.Events != stopAt+1 {
			t.Errorf("run %s ended %s with %d events, want cancelled/%d", id, end.State, end.Events, stopAt+1)
		}
		if got := fetchReport(t, ts, id); !bytes.Equal(got, want) {
			t.Errorf("run %s prefix report differs from truncated offline report", id)
		}
	}
}

// TestServeStreamFollowsDrain attaches a follower to a detached run,
// then drains: the follower's stream must end with a summary (not just
// the connection dropping) once the run is force-cancelled.
func TestServeStreamFollowsDrain(t *testing.T) {
	const stopAt = 3
	s, ts, reached := gateServer(t, stopAt)
	st := postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"follow"}`, http.StatusCreated)
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("gate never reached")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var lines []string
	var scanErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
		if err != nil {
			scanErr = err
			return
		}
		defer func() { _ = resp.Body.Close() }()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		scanErr = sc.Err()
	}()

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.Drain(dctx)
	wg.Wait()
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if len(lines) != stopAt+2 { // stopAt+1 events + summary
		t.Fatalf("follower saw %d lines, want %d", len(lines), stopAt+2)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"done":true`) || !strings.Contains(last, `"state":"cancelled"`) {
		t.Errorf("follower stream ended without a cancelled summary: %s", last)
	}
}
