package phys

import "fmt"

// Block is a rectangular macro with a width and height.
type Block struct {
	Name string
	W, H float64
}

// SliceOp combines two floorplan subtrees.
type SliceOp int

// Slicing operators: H stacks vertically (one above the other), V places
// side by side.
const (
	SliceH SliceOp = iota // horizontal cut: heights add, widths max
	SliceV                // vertical cut: widths add, heights max
)

// SlicingNode is a node of a slicing-tree floorplan: either a leaf block
// or an operator over two children.
type SlicingNode struct {
	Leaf        *Block
	Op          SliceOp
	Left, Right *SlicingNode
}

// LeafNode wraps a block.
func LeafNode(b Block) *SlicingNode { return &SlicingNode{Leaf: &b} }

// Combine joins two subtrees with an operator.
func Combine(op SliceOp, l, r *SlicingNode) *SlicingNode {
	return &SlicingNode{Op: op, Left: l, Right: r}
}

// Shape returns the bounding box (w, h) of the subtree.
func (n *SlicingNode) Shape() (w, h float64) {
	if n.Leaf != nil {
		return n.Leaf.W, n.Leaf.H
	}
	lw, lh := n.Left.Shape()
	rw, rh := n.Right.Shape()
	switch n.Op {
	case SliceH:
		return maxF(lw, rw), lh + rh
	default:
		return lw + rw, maxF(lh, rh)
	}
}

// Area returns the bounding-box area of the subtree.
func (n *SlicingNode) Area() float64 {
	w, h := n.Shape()
	return w * h
}

// DeadSpace returns bounding-box area minus the sum of block areas.
func (n *SlicingNode) DeadSpace() float64 {
	return n.Area() - n.blockArea()
}

func (n *SlicingNode) blockArea() float64 {
	if n.Leaf != nil {
		return n.Leaf.W * n.Leaf.H
	}
	return n.Left.blockArea() + n.Right.blockArea()
}

// ParsePolish builds a slicing tree from a normalised Polish expression
// over the named blocks, e.g. "A B V C H" (operands push, operators pop
// two). V is the vertical-cut (side-by-side) operator, H horizontal.
func ParsePolish(expr []string, blocks map[string]Block) (*SlicingNode, error) {
	var stack []*SlicingNode
	for _, tok := range expr {
		switch tok {
		case "H", "V":
			if len(stack) < 2 {
				return nil, fmt.Errorf("phys: polish expression underflow at %q", tok)
			}
			r := stack[len(stack)-1]
			l := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			op := SliceV
			if tok == "H" {
				op = SliceH
			}
			stack = append(stack, Combine(op, l, r))
		default:
			b, ok := blocks[tok]
			if !ok {
				return nil, fmt.Errorf("phys: unknown block %q", tok)
			}
			stack = append(stack, LeafNode(b))
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("phys: polish expression leaves %d subtrees", len(stack))
	}
	return stack[0], nil
}

// AspectRatio returns w/h of the subtree.
func (n *SlicingNode) AspectRatio() float64 {
	w, h := n.Shape()
	if h == 0 {
		return 0
	}
	return w / h
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
