package manuf

import "math"

// DiffusionStep models a constant-source or limited-source dopant
// diffusion at a given temperature.
type DiffusionStep struct {
	// D is the diffusivity in cm^2/s at the process temperature.
	D float64
	// TimeS is the diffusion time in seconds.
	TimeS float64
}

// DiffusionLength returns 2*sqrt(D*t) in cm, the characteristic depth
// scale.
func (s DiffusionStep) DiffusionLength() float64 {
	return 2 * math.Sqrt(s.D*s.TimeS)
}

// ConstantSourceProfile returns the concentration at depth x (cm) for a
// constant surface concentration Cs: C(x) = Cs * erfc(x / (2 sqrt(Dt))).
func (s DiffusionStep) ConstantSourceProfile(cs, x float64) float64 {
	l := 2 * math.Sqrt(s.D*s.TimeS)
	if l == 0 {
		if x == 0 {
			return cs
		}
		return 0
	}
	return cs * math.Erfc(x/l)
}

// LimitedSourceProfile returns the Gaussian drive-in profile for a fixed
// dose Q (atoms/cm^2): C(x) = Q/sqrt(pi D t) * exp(-x^2/(4 D t)).
func (s DiffusionStep) LimitedSourceProfile(q, x float64) float64 {
	dt := s.D * s.TimeS
	if dt == 0 {
		return 0
	}
	return q / math.Sqrt(math.Pi*dt) * math.Exp(-x*x/(4*dt))
}

// JunctionDepthConstantSource solves C(xj) = Cb for the constant-source
// profile: xj = 2 sqrt(Dt) * erfcinv(Cb/Cs), via bisection.
func (s DiffusionStep) JunctionDepthConstantSource(cs, cb float64) float64 {
	if cb >= cs || cb <= 0 {
		return 0
	}
	l := 2 * math.Sqrt(s.D*s.TimeS)
	lo, hi := 0.0, 12*l
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if s.ConstantSourceProfile(cs, mid) > cb {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ArrheniusD returns D = D0 * exp(-Ea / (k*T)) with Ea in eV and T in
// kelvin.
func ArrheniusD(d0, eaEV, tempK float64) float64 {
	const kBoltzmannEV = 8.617333262e-5
	return d0 * math.Exp(-eaEV/(kBoltzmannEV*tempK))
}

// OxideGrowthDealGrove returns the oxide thickness (um) grown in time t
// (hours) under the Deal–Grove model with linear and parabolic rate
// constants B/A (um/h) and B (um^2/h), starting from initial thickness
// x0: x^2 + A x = B (t + tau).
func OxideGrowthDealGrove(bOverA, b, x0, tHours float64) float64 {
	if bOverA <= 0 || b <= 0 {
		return x0
	}
	a := b / bOverA
	tau := (x0*x0 + a*x0) / b
	// Solve x^2 + A x - B(t+tau) = 0.
	disc := a*a + 4*b*(tHours+tau)
	return (-a + math.Sqrt(disc)) / 2
}

// SheetResistance returns rho/t for a uniform film (ohm/sq) given
// resistivity (ohm*cm) and thickness (cm).
func SheetResistance(resistivity, thickness float64) float64 {
	if thickness == 0 {
		return math.Inf(1)
	}
	return resistivity / thickness
}

// IonImplantPeakDepth returns the projected range Rp for a simple
// energy-scaled model: Rp = k * E (nm per keV), a first-order
// approximation exercises use.
func IonImplantPeakDepth(energyKeV, nmPerKeV float64) float64 {
	return energyKeV * nmPerKeV
}
