package agent

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/vlm"
)

func setup(t *testing.T) (*dataset.Benchmark, *dataset.Benchmark, *Agent, *vlm.SimulatedVLM) {
	t.Helper()
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	zoo := vlm.NewZoo(b)
	tool, ok := zoo.Model("GPT4o")
	if !ok {
		t.Fatal("GPT4o missing")
	}
	return b, b.Challenge(), New(tool), tool
}

// TestTableIII is the headline check for the agent study: the paper
// reports 0.44 -> 0.49 with choices and 0.20 -> 0.21 without.
func TestTableIII(t *testing.T) {
	b, chal, ag, tool := setup(t)
	r := eval.Runner{}
	baseStd := r.Evaluate(tool, b).Pass1()
	agentStd := r.Evaluate(ag, b).Pass1()
	baseChal := r.Evaluate(tool, chal).Pass1()
	agentChal := r.Evaluate(ag, chal).Pass1()

	if math.Abs(agentStd-0.49) > 0.02 {
		t.Errorf("agent with-choice %.3f, paper reports 0.49", agentStd)
	}
	if math.Abs(agentChal-0.21) > 0.02 {
		t.Errorf("agent no-choice %.3f, paper reports 0.21", agentChal)
	}
	if agentStd <= baseStd {
		t.Errorf("agent (%.3f) should beat direct GPT-4o (%.3f) with choices", agentStd, baseStd)
	}
	if agentChal < baseChal-0.01 {
		t.Errorf("agent no-choice %.3f fell below GPT-4o %.3f", agentChal, baseChal)
	}
}

func TestManufactureRegression(t *testing.T) {
	// §IV-C: "we observed a decrease in pass rates in certain scenarios,
	// particularly in the manufacturing category".
	_, chal, ag, tool := setup(t)
	r := eval.Runner{}
	baseChal := r.Evaluate(tool, chal).Pass1ByCategory()[dataset.Manufacture]
	agentChal := r.Evaluate(ag, chal).Pass1ByCategory()[dataset.Manufacture]
	if agentChal >= baseChal {
		t.Errorf("agent manufacture (no-choice) %.3f did not regress vs %.3f", agentChal, baseChal)
	}
}

func TestTranscriptShape(t *testing.T) {
	b, _, ag, _ := setup(t)
	q := b.Questions[0]
	answer, transcript := ag.Run(q, eval.InferenceOptions{})
	if answer == "" {
		t.Error("empty agent answer")
	}
	if len(transcript) < 1 || len(transcript) > ag.Cfg.MaxRounds {
		t.Errorf("transcript rounds %d outside [1, %d]", len(transcript), ag.Cfg.MaxRounds)
	}
	for _, call := range transcript {
		if call.Request == "" || call.Response == "" {
			t.Error("empty tool call")
		}
	}
	out := FormatTranscript(transcript)
	if !strings.Contains(out, "designer>") || !strings.Contains(out, "tool>") {
		t.Errorf("transcript format missing roles:\n%s", out)
	}
}

func TestAgentDeterministic(t *testing.T) {
	b, _, ag, _ := setup(t)
	for _, q := range b.Questions[:20] {
		a1 := ag.Answer(q, eval.InferenceOptions{})
		a2 := ag.Answer(q, eval.InferenceOptions{})
		if a1 != a2 {
			t.Fatalf("%s: agent answers differ: %q vs %q", q.ID, a1, a2)
		}
	}
}

func TestAgentName(t *testing.T) {
	_, _, ag, _ := setup(t)
	if !strings.Contains(ag.Name(), "GPT-4-Turbo") || !strings.Contains(ag.Name(), "GPT4o") {
		t.Errorf("name %q should identify designer and tool", ag.Name())
	}
}

func TestDescriptionFidelityOrdering(t *testing.T) {
	// Photograph-like content must verbalise worse than schematic-like.
	b, _, _, _ := setup(t)
	var figureF, schematicF float64
	for _, q := range b.Questions {
		switch q.Visual.Kind.String() {
		case "figure":
			figureF = descriptionFidelity(q.Visual.Kind)
		case "schematic":
			schematicF = descriptionFidelity(q.Visual.Kind)
		}
	}
	if figureF >= schematicF {
		t.Errorf("figure fidelity %.2f should be below schematic %.2f", figureF, schematicF)
	}
}

func TestZeroBoostOnlyLoses(t *testing.T) {
	// With no designer boost the agent can only lose answers through
	// the lossy text relay.
	b, _, _, tool := setup(t)
	ag := New(tool)
	ag.Cfg.DesignerBoostMC = 0
	ag.Cfg.DesignerBoostSA = 0
	r := eval.Runner{}
	base := r.Evaluate(tool, b).Pass1()
	got := r.Evaluate(ag, b).Pass1()
	if got > base {
		t.Errorf("zero-boost agent %.3f beat its own tool %.3f", got, base)
	}
}
