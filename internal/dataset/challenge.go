package dataset

// Challenge builds the "ChipVQA challenge collection" of §IV-A: every
// multiple-choice question is replaced by a short-answer question whose
// prompt is unchanged but whose answer options are removed. The golden
// answer becomes the content of the previously-correct option. Questions
// that already were short answer pass through untouched (shallow copy).
func (b *Benchmark) Challenge() *Benchmark {
	out := &Benchmark{Name: b.Name + "-challenge"}
	out.Questions = make([]*Question, 0, len(b.Questions))
	for _, q := range b.Questions {
		out.Questions = append(out.Questions, q.StripChoices())
	}
	return out
}

// StripChoices returns a short-answer variant of the question. For a
// question that is already short answer, it returns a copy unchanged.
func (q *Question) StripChoices() *Question {
	cp := *q
	cp.Challenge = true
	if q.Type != MultipleChoice {
		return &cp
	}
	cp.Type = ShortAnswer
	cp.Choices = nil
	golden := q.Golden
	// The correct option's content becomes the expected short answer.
	// Its kind is recorded on the original answer: options that hold a
	// number keep numeric comparison; expressions keep canonical
	// comparison; everything else is a phrase. Accept already lists the
	// equivalents the judge should honor.
	switch {
	case golden.Unit != "" || golden.Tolerance > 0:
		cp.Golden = Answer{
			Kind:      AnswerNumber,
			Number:    golden.Number,
			Unit:      golden.Unit,
			Tolerance: golden.Tolerance,
			Text:      golden.Text,
			Accept:    golden.Accept,
		}
	case looksLikeExpression(golden.Text):
		cp.Golden = Answer{Kind: AnswerExpression, Text: golden.Text, Accept: golden.Accept}
	default:
		cp.Golden = Answer{Kind: AnswerPhrase, Text: golden.Text, Accept: golden.Accept}
	}
	return &cp
}

// looksLikeExpression is a heuristic for option contents that are boolean
// expressions such as "Q = S'R'q + SR'": presence of the operators the
// digital substrate uses.
func looksLikeExpression(s string) bool {
	hasOp := false
	hasLetter := false
	for _, r := range s {
		switch {
		case r == '\'' || r == '+' || r == '^' || r == '&':
			hasOp = true
		case r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z':
			hasLetter = true
		case r == ' ' || r == '=' || r == '(' || r == ')' || r >= '0' && r <= '9':
			// allowed
		default:
			return false
		}
	}
	return hasOp && hasLetter
}
