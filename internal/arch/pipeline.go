// Package arch implements the computer-architecture substrate: a 5-stage
// in-order pipeline simulator with configurable bypass paths, branch
// predictors, a set-associative cache simulator, the MESI coherence
// state machine, virtual-memory translation and network-on-chip topology
// analysis. The Architecture questions of the benchmark are generated
// from these engines.
package arch

import "fmt"

// OpClass classifies instructions the pipeline models.
type OpClass int

// Instruction classes.
const (
	OpALU OpClass = iota
	OpLoad
	OpStore
	OpBranch
	OpNop
)

// Instr is one instruction in a pipelined program: a destination register
// (0 = none) and up to two source registers (0 = unused).
type Instr struct {
	Op   OpClass
	Dest int
	Src1 int
	Src2 int
	// Taken applies to branches and drives the flush penalty.
	Taken bool
	Label string
}

// BypassConfig selects which forwarding paths exist in the pipeline.
// With all false the pipeline resolves hazards purely by stalling until
// write-back; register file write-before-read in the same cycle is
// always assumed (a value written in WB is readable in ID that cycle).
type BypassConfig struct {
	EXtoEX  bool // ALU result forwarded from EX/MEM latch to EX input
	MEMtoEX bool // load data (or older ALU result) forwarded from MEM/WB latch to EX input
}

// FullBypass returns the standard fully forwarded configuration.
func FullBypass() BypassConfig { return BypassConfig{EXtoEX: true, MEMtoEX: true} }

// NoBypass returns the stall-only configuration.
func NoBypass() BypassConfig { return BypassConfig{} }

// PipelineConfig describes the simulated machine.
type PipelineConfig struct {
	Bypass BypassConfig
	// BranchPenalty is the number of bubbles after a taken branch
	// (branches resolved in EX give 2 in a 5-stage machine).
	BranchPenalty int
}

// ClassicFiveStage is the default MIPS-style configuration: full
// forwarding and branches resolved in EX (2-cycle taken penalty).
func ClassicFiveStage() PipelineConfig {
	return PipelineConfig{Bypass: FullBypass(), BranchPenalty: 2}
}

// PipelineResult summarises one simulation.
type PipelineResult struct {
	Instructions int
	Cycles       int
	Stalls       int
	FlushBubbles int
	// IssueCycle[i] is the cycle (1-based) instruction i enters EX.
	IssueCycle []int
}

// CPI returns cycles per instruction.
func (r PipelineResult) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// SimulatePipeline runs the program through a 5-stage in-order pipeline
// (IF ID EX MEM WB) and returns the cycle accounting. The model:
//
//   - one instruction issues to EX per cycle in program order;
//   - an instruction needing a source produced by an earlier instruction
//     stalls in ID until a bypass path or the register file provides it;
//   - ALU results are available at end of EX, load data at end of MEM;
//   - a register-file write in WB is readable by ID in the same cycle;
//   - taken branches insert BranchPenalty bubbles.
//
// This is the standard hazard model graduate pipeline questions use, so
// the simulator's CPI matches hand analysis instruction by instruction.
func SimulatePipeline(prog []Instr, cfg PipelineConfig) PipelineResult {
	res := PipelineResult{Instructions: len(prog)}
	if len(prog) == 0 {
		return res
	}
	res.IssueCycle = make([]int, len(prog))
	// readyEX[r]: earliest cycle in which value of r can be consumed by
	// EX via some path. Initially 0 (register file has the value).
	readyBypass := make(map[int]int) // earliest EX-consume cycle via bypass
	readyRF := make(map[int]int)     // earliest EX-consume cycle via register file only
	exCycle := 0                     // EX cycle of the previous instruction
	for i, ins := range prog {
		earliest := exCycle + 1
		for _, src := range []int{ins.Src1, ins.Src2} {
			if src == 0 {
				continue
			}
			need := 0
			if c, ok := readyBypass[src]; ok && cfg.bypassUsable() {
				need = c
			} else if c, ok := readyRF[src]; ok {
				need = c
			}
			if need > earliest {
				earliest = need
			}
		}
		stall := earliest - (exCycle + 1)
		res.Stalls += stall
		exCycle = earliest
		res.IssueCycle[i] = exCycle
		// Publish this instruction's result availability.
		if ins.Dest != 0 {
			switch ins.Op {
			case OpALU:
				if cfg.Bypass.EXtoEX {
					readyBypass[ins.Dest] = exCycle + 1
				} else if cfg.Bypass.MEMtoEX {
					readyBypass[ins.Dest] = exCycle + 2
				} else {
					delete(readyBypass, ins.Dest)
				}
				// Register file path: WB at exCycle+3 readable same cycle
				// in ID, so EX consume at exCycle+3... ID in cycle c reads,
				// EX in c+1? Model: value written in WB (cycle exCycle+3)
				// is readable in ID that cycle, consumed in EX the next.
				readyRF[ins.Dest] = exCycle + 3
			case OpLoad:
				if cfg.Bypass.MEMtoEX {
					readyBypass[ins.Dest] = exCycle + 2
				} else {
					delete(readyBypass, ins.Dest)
				}
				readyRF[ins.Dest] = exCycle + 3
			default:
				readyRF[ins.Dest] = exCycle + 3
				delete(readyBypass, ins.Dest)
			}
		}
		if ins.Op == OpBranch && ins.Taken {
			res.FlushBubbles += cfg.BranchPenalty
			exCycle += cfg.BranchPenalty
		}
	}
	// Total cycles: last EX cycle + MEM + WB + the 2 front-end fill
	// cycles (IF, ID of the first instruction).
	res.Cycles = exCycle + 2 + 2
	return res
}

func (c PipelineConfig) bypassUsable() bool {
	return c.Bypass.EXtoEX || c.Bypass.MEMtoEX
}

// LoadUseStalls returns the stall cycles a dependent instruction incurs
// immediately after a load under the configuration: the classic
// load-use hazard (1 with full forwarding, 2 with none).
func LoadUseStalls(cfg BypassConfig) int {
	prog := []Instr{
		{Op: OpLoad, Dest: 1},
		{Op: OpALU, Dest: 2, Src1: 1},
	}
	r := SimulatePipeline(prog, PipelineConfig{Bypass: cfg})
	return r.Stalls
}

// CriticalPathFrequency converts per-stage latencies (ns) into the
// maximum clock frequency (MHz): the slowest stage plus overhead sets
// the cycle time.
func CriticalPathFrequency(stageNS []float64, overheadNS float64) float64 {
	worst := 0.0
	for _, s := range stageNS {
		if s > worst {
			worst = s
		}
	}
	cycle := worst + overheadNS
	if cycle <= 0 {
		return 0
	}
	return 1000 / cycle // ns -> MHz
}

// SpeedupIdealPipeline returns the ideal speedup of an n-stage pipeline
// over a single-cycle machine on a long instruction stream.
func SpeedupIdealPipeline(stages int) float64 { return float64(stages) }

// Format renders an instruction like "lw r1, 0(r2)".
func (i Instr) Format() string {
	if i.Label != "" {
		return i.Label
	}
	switch i.Op {
	case OpLoad:
		return fmt.Sprintf("lw r%d, 0(r%d)", i.Dest, i.Src1)
	case OpStore:
		return fmt.Sprintf("sw r%d, 0(r%d)", i.Src1, i.Src2)
	case OpBranch:
		return fmt.Sprintf("beq r%d, r%d, L", i.Src1, i.Src2)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("add r%d, r%d, r%d", i.Dest, i.Src1, i.Src2)
	}
}
