package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/visual"
)

// fixtureBenchmark builds a small benchmark by hand covering the shapes
// the codec must round-trip: MC and SA questions, Accept lists, scene
// elements with Points and Attrs, the Challenge flag, and repeated
// strings that exercise the intern table. (Build-based round-trip tests
// live in internal/core, whose test binary links the real disciplines;
// this binary deliberately does not — see registry_test.go.)
func fixtureBenchmark() *Benchmark {
	sceneA := visual.NewScene(visual.KindSchematic, "RC filter")
	sceneA.AddAll(
		visual.Element{Type: visual.ElemResistor, Name: "R1", Label: "R=1k",
			X: 10, Y: 20, X2: 30, Y2: 20, Critical: true,
			Attrs: map[string]string{"layer": "m1", "net": "vin"}},
		visual.Element{Type: visual.ElemTrace, Name: "vout", Label: "vout(t)",
			Points: []visual.Point{{X: 0, Y: 0}, {X: 1, Y: 0.63}, {X: 2, Y: 0.86}}},
	)
	sceneB := visual.NewScene(visual.KindTable, "Cache parameters")
	sceneB.Add(visual.Element{Type: visual.ElemCell, Name: "c00", Label: "32 KiB",
		Attrs: map[string]string{"row": "0", "col": "0"}, Critical: true})
	return &Benchmark{
		Name: "fixture",
		Questions: []*Question{
			{
				ID: "fx-mc-0", Category: Analog, Type: MultipleChoice,
				Topic: "rc-cutoff", Prompt: "What is the cutoff frequency?",
				Choices: []string{"159 Hz", "1.59 kHz", "15.9 kHz", "159 kHz"},
				Golden: Answer{Kind: AnswerChoice, Choice: 1, Text: "1.59 kHz",
					Number: 1590, Unit: "Hz", Tolerance: 0.02},
				Visual: sceneA, Difficulty: 0.45,
			},
			{
				ID: "fx-sa-0", Category: Architecture, Type: ShortAnswer,
				Topic: "cache-sets", Prompt: "How many sets does the cache have?",
				Golden: Answer{Kind: AnswerNumber, Number: 128, Unit: "sets",
					Accept: []string{"128 sets", "2^7"}},
				Visual: sceneB, Challenge: true, Difficulty: 0.5,
			},
			{
				ID: "fx-sa-1", Category: Digital, Type: ShortAnswer,
				Topic: "rc-cutoff", Prompt: "Same unit again exercises interning.",
				Golden:     Answer{Kind: AnswerPhrase, Text: "it does", Unit: "Hz"},
				Visual:     visual.NewScene(visual.KindEquation, "RC filter"),
				Difficulty: 0.8,
			},
		},
	}
}

func fixturePack(t *testing.T, b *Benchmark) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePack(&buf, b); err != nil {
		t.Fatalf("WritePack: %v", err)
	}
	return buf.Bytes()
}

// TestPackFixtureRoundTrip checks full value fidelity on the hand-built
// shapes: pack(load(pack(b))) must equal pack(b) byte for byte and the
// loaded questions must JSON-match the originals field for field.
func TestPackFixtureRoundTrip(t *testing.T) {
	b := fixtureBenchmark()
	first := fixturePack(t, b)
	loaded, err := ReadPack(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("ReadPack: %v", err)
	}
	if loaded.Name != b.Name {
		t.Errorf("name = %q, want %q", loaded.Name, b.Name)
	}
	if second := fixturePack(t, loaded); !bytes.Equal(first, second) {
		t.Error("pack(load(pack(b))) differs from pack(b)")
	}
	var origJSON, loadJSON bytes.Buffer
	if err := b.WriteJSON(&origJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := loaded.WriteJSON(&loadJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(origJSON.Bytes(), loadJSON.Bytes()) {
		t.Error("loaded benchmark not JSON-identical to original")
	}
	// Spot-check the fields JSON does not carry.
	if !loaded.Questions[1].Challenge {
		t.Error("Challenge flag lost in round trip")
	}
}

// TestPackInterningReusesStrings verifies the size win the intern table
// exists for. Interning promotes a string on its second occurrence, so
// the win shows up from the third copy of a question onward: every
// repeated topic, unit, choice, label and attribute collapses to a
// one- or two-byte reference, leaving the unique ID as the dominant
// marginal cost.
func TestPackInterningReusesStrings(t *testing.T) {
	// String-heavy and float-light on purpose: floats never intern, so a
	// question dominated by repeated strings shows the table's effect.
	scene := visual.NewScene(visual.KindEquation, "a shared equation panel title")
	clone := func(id string) *Question {
		return &Question{
			ID: id, Category: Digital, Type: ShortAnswer,
			Topic:  "interning-topic-with-some-length",
			Prompt: "a deliberately repeated prompt kept under the interning cap",
			Golden: Answer{Kind: AnswerPhrase, Text: "a repeated phrase answer",
				Accept: []string{"first alias of the answer", "second alias of the answer"}},
			Visual: scene, Difficulty: 0.5,
		}
	}
	many := &Benchmark{Name: "n"}
	for i := 0; i < 21; i++ {
		many.Questions = append(many.Questions, clone(fmt.Sprintf("fx-mc-%02d", i)))
	}
	allLen := len(fixturePack(t, many))
	oneLen := len(fixturePack(t, &Benchmark{Name: "n", Questions: many.Questions[:1]}))
	fresh := oneLen - len(fixturePack(t, &Benchmark{Name: "n"}))
	perClone := (allLen - oneLen) / 20
	if perClone*2 >= fresh {
		t.Errorf("marginal cost per repeated question %d >= half of fresh encode %d; interning ineffective",
			perClone, fresh)
	}
}

// TestParsePackParallelMatchesSerial forces the worker-pool decode path
// (ReadPack only engages it when GOMAXPROCS > 1) and checks it yields
// exactly the sequential result, and that decode errors still surface.
func TestParsePackParallelMatchesSerial(t *testing.T) {
	b := fixtureBenchmark()
	many := &Benchmark{Name: "par"}
	for i := 0; i < 100; i++ {
		q := *b.Questions[i%len(b.Questions)]
		q.ID = fmt.Sprintf("par-%03d", i)
		many.Questions = append(many.Questions, &q)
	}
	raw := fixturePack(t, many)
	serial, err := parsePack(raw, 1)
	if err != nil {
		t.Fatalf("parsePack(workers=1): %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := parsePack(raw, workers)
		if err != nil {
			t.Fatalf("parsePack(workers=%d): %v", workers, err)
		}
		var sj, pj bytes.Buffer
		if err := serial.WriteJSON(&sj); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteJSON(&pj); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
			t.Errorf("workers=%d: parallel decode differs from sequential", workers)
		}
	}
	// A corrupted record must fail identically regardless of parallelism.
	bad := bytes.Clone(raw)
	bad[len(bad)/2] ^= 0x40
	for _, workers := range []int{1, 4} {
		if _, err := parsePack(bad, workers); err == nil {
			t.Errorf("workers=%d: corruption went undetected", workers)
		}
	}
}

func TestPackRejectsBadHeader(t *testing.T) {
	if _, err := NewPackReader(bytes.NewReader([]byte("JUNKdata"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	pw := NewPackWriter(&buf, "v")
	if err := pw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw := buf.Bytes()
	raw[4] = 0x7f // version byte
	if _, err := NewPackReader(bytes.NewReader(raw)); err == nil {
		t.Error("future version accepted")
	}
}

func TestPackRejectsTruncation(t *testing.T) {
	good := fixturePack(t, fixtureBenchmark())
	for _, n := range []int{3, 10, len(good) / 2, len(good) - 1} {
		if _, err := ReadPack(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestPackDetectsCorruption flips bytes at several positions and
// expects a decode error or checksum failure — never a silent wrong
// benchmark.
func TestPackDetectsCorruption(t *testing.T) {
	good := fixturePack(t, fixtureBenchmark())
	for _, pos := range []int{len(good) / 3, len(good) / 2, len(good) - 5} {
		bad := bytes.Clone(good)
		bad[pos] ^= 0x40
		if _, err := ReadPack(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at byte %d went undetected", pos)
		}
	}
}

// failAfter errors once n bytes have been written — exercising the
// writer's error surfacing through WriteQuestion and Close (the
// cmdRender Close-error discipline, satellite of ISSUE 7).
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestPackWriterSurfacesWriteErrors(t *testing.T) {
	b := fixtureBenchmark()
	for _, limit := range []int{0, 2, 40, 200} {
		pw := NewPackWriter(&failAfter{n: limit}, b.Name)
		var firstErr error
		for _, q := range b.Questions {
			if err := pw.WriteQuestion(q); err != nil {
				firstErr = err
				break
			}
		}
		if err := pw.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr == nil {
			t.Errorf("limit %d: no error surfaced", limit)
		}
		if err := pw.WriteQuestion(b.Questions[0]); err == nil {
			t.Errorf("limit %d: write after Close accepted", limit)
		}
	}
}

func TestStreamPackGeometry(t *testing.T) {
	b := fixtureBenchmark()
	raw := fixturePack(t, b)
	var starts []int
	err := StreamPack(bytes.NewReader(raw), 2, func(s Shard) error {
		starts = append(starts, s.Start)
		if s.Index != len(starts)-1 {
			t.Errorf("shard index %d out of order", s.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamPack: %v", err)
	}
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 2 {
		t.Errorf("shard starts = %v, want [0 2]", starts)
	}
}

func TestStreamPackStopsOnYieldError(t *testing.T) {
	raw := fixturePack(t, fixtureBenchmark())
	sentinel := errors.New("stop")
	calls := 0
	err := StreamPack(bytes.NewReader(raw), 1, func(Shard) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Errorf("yield called %d times, want 1", calls)
	}
}

func TestStreamPackRejectsBadArgs(t *testing.T) {
	nop := func(Shard) error { return nil }
	if err := StreamPack(bytes.NewReader(nil), 0, nop); err == nil {
		t.Error("shardSize=0 accepted")
	}
	if err := StreamPack(bytes.NewReader(nil), 4, nil); err == nil {
		t.Error("nil yield accepted")
	}
	if err := StreamPack(io.LimitReader(bytes.NewReader(nil), 0), 4, nop); err == nil {
		t.Error("empty stream accepted")
	}
}
