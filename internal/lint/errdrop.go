package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags silently discarded error results in non-test code: a
// call whose error result is dropped on the floor either as a bare
// statement or through a blank identifier. Blessed idioms that stay
// legal:
//
//   - `_, _ = h.Write(...)` — the hash-write idiom (hash.Hash.Write is
//     documented to never fail); any all-blank assignment whose callee
//     is a Write* method qualifies;
//   - fmt.Print/Fprint console output as a bare statement;
//   - strings.Builder / bytes.Buffer writes (documented to never fail);
//   - deferred calls (`defer f.Close()`), which are conventional and
//     need interprocedural flow to check meaningfully;
//   - _test.go files (excluded by the loader).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error results outside test files, excluding the blessed " +
		"`_, _ =` hash-write idiom, fmt console output, builder writes and deferred calls",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.ExprStmt:
				checkBareCall(pass, n)
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			}
			return true
		})
	}
}

// checkBareCall flags expression statements whose call produces an
// error nobody looks at.
func checkBareCall(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	tv, ok := info.Types[call]
	if !ok || !resultHasError(tv.Type) {
		return
	}
	fn := calleeOf(info, call)
	if isConsoleOutput(fn) || isInfallibleWriter(fn) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is silently dropped; handle it or assign it explicitly",
		exprString(call.Fun))
}

// checkBlankError flags assignments that route an error result into the
// blank identifier.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	// The blessed hash-write idiom: every result blank and the callee a
	// Write* method.
	if allBlank(as.Lhs) && len(as.Rhs) == 1 {
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn := calleeOf(info, call); fn != nil && recvNamed(fn) != nil && hasPrefixAny(fn.Name(), "Write") {
				return
			}
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment from one call: match blanks to result types.
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errorType) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _; handle it or document why it cannot fail",
					exprString(call.Fun))
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			tv, ok := info.Types[as.Rhs[i]]
			if ok && tv.Type != nil && types.Identical(tv.Type, errorType) {
				pass.Reportf(lhs.Pos(), "error value discarded with _; handle it or document why it cannot fail")
			}
		}
	}
}

// resultHasError reports whether a call's result type is or contains
// error.
func resultHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// isConsoleOutput reports whether fn is fmt's print family — the repo's
// idiomatic console output, whose error return (a broken stdout pipe)
// is not actionable.
func isConsoleOutput(fn *types.Func) bool {
	return fn != nil && pkgOf(fn) == "fmt" && hasPrefixAny(fn.Name(), "Print", "Fprint")
}

// isInfallibleWriter reports whether fn is a strings.Builder or
// bytes.Buffer write, both documented to never return an error.
func isInfallibleWriter(fn *types.Func) bool {
	if fn == nil || !hasPrefixAny(fn.Name(), "Write") {
		return false
	}
	return isMethodOn(fn, "strings", "Builder", fn.Name()) || isMethodOn(fn, "bytes", "Buffer", fn.Name())
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isBlank(e) {
			return false
		}
	}
	return len(exprs) > 0
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
