#!/bin/sh
# Run the repo's determinism / buffer-lifecycle analyzers
# (cmd/chipvqa-lint) over the whole module. Part of tier-1 verify; see
# DESIGN.md §9 for what each analyzer enforces and the
# `//lint:ignore <analyzer> <reason>` suppression policy.
#
# Usage: scripts/lint.sh [-only analyzer[,analyzer...]]
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/chipvqa-lint "$@" ./...
