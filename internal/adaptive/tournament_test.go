package adaptive

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/visual"
)

// testBank builds a small benchmark plus a calibrated-looking bank with
// a spread of item locations, so selection has real choices to make.
func testBank(t *testing.T, n int) (*dataset.Benchmark, []BankItem) {
	t.Helper()
	b := &dataset.Benchmark{Name: "t"}
	params := make([]ItemParams, n)
	for i := 0; i < n; i++ {
		scene := visual.NewScene(visual.KindSchematic, "s")
		scene.Add(visual.Element{Type: visual.ElemBox, Name: "b", Critical: true})
		id := fmt.Sprintf("t%03d", i)
		b.Questions = append(b.Questions, &dataset.Question{
			ID: id, Category: dataset.Category(i % dataset.NumCategories),
			Type: dataset.MultipleChoice, Prompt: "p?", Difficulty: 0.5,
			Visual:  scene,
			Choices: []string{"w", "x", "right", "z"},
			Golden:  dataset.Answer{Kind: dataset.AnswerChoice, Choice: 2, Text: "right"},
		})
		params[i] = ItemParams{
			QuestionID: id,
			Disc:       0.5 + 1.5*float64(i%4)/3,
			Diff:       -2 + 4*float64(i)/float64(n-1),
		}
	}
	bank, err := Bank(b, params)
	if err != nil {
		t.Fatal(err)
	}
	return b, bank
}

// skillModel answers correctly with a deterministic per-question draw
// at the given rate — a stand-in VLM whose behaviour is a pure function
// of (name, question ID).
type skillModel struct {
	name string
	rate float64
}

func (m skillModel) Name() string { return m.name }
func (m skillModel) Answer(q *dataset.Question, _ eval.InferenceOptions) string {
	if rng.Bernoulli(m.rate, "test-skill", m.name, q.ID) {
		return "right"
	}
	return "w"
}

func testModels() []eval.Model {
	return []eval.Model{
		skillModel{"weak", 0.15},
		skillModel{"mid", 0.45},
		skillModel{"strong", 0.80},
	}
}

func TestBankValidation(t *testing.T) {
	b, bank := testBank(t, 10)
	params := make([]ItemParams, len(bank))
	for i, it := range bank {
		params[i] = it.Params
	}
	if _, err := Bank(b, params[:9]); err == nil {
		t.Error("Bank accepted a missing item param")
	}
	dup := append(append([]ItemParams{}, params...), params[0])
	if _, err := Bank(b, dup); err == nil {
		t.Error("Bank accepted duplicate item params")
	}
	wrong := append([]ItemParams{}, params...)
	wrong[3].QuestionID = "no-such-question"
	if _, err := Bank(b, wrong); err == nil {
		t.Error("Bank accepted params for an unknown question")
	}
}

func TestNewTournamentValidation(t *testing.T) {
	_, bank := testBank(t, 10)
	models := testModels()
	if _, err := NewTournament(nil, bank, Config{}); err == nil {
		t.Error("accepted empty model list")
	}
	if _, err := NewTournament(models, nil, Config{}); err == nil {
		t.Error("accepted empty bank")
	}
	if _, err := NewTournament(append(models, models[0]), bank, Config{}); err == nil {
		t.Error("accepted duplicate model")
	}
	broken := append([]BankItem{}, bank...)
	broken[2].Params.QuestionID = "mismatch"
	if _, err := NewTournament(models, broken, Config{}); err == nil {
		t.Error("accepted bank item whose params name a different question")
	}
	broken = append([]BankItem{}, bank...)
	broken[4].Question = bank[5].Question
	if _, err := NewTournament(models, broken, Config{}); err == nil {
		t.Error("accepted duplicate bank question")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(150, 12)
	if c.Seed != "adaptive" {
		t.Errorf("Seed default %q", c.Seed)
	}
	if c.MaxQuestions != 150 {
		t.Errorf("MaxQuestions default %d, want bank size", c.MaxQuestions)
	}
	if c.TotalBudget != 600 {
		t.Errorf("TotalBudget default %d, want models*bank/3 = 600", c.TotalBudget)
	}
	if c.MinQuestions != 6 || c.Z != 1.96 || c.SEStop != 0.15 {
		t.Errorf("defaults %+v", c)
	}
	// The budget floor always admits the seeded first question per model.
	if c := (Config{TotalBudget: 1}).withDefaults(150, 12); c.TotalBudget != 12 {
		t.Errorf("TotalBudget floor %d, want one per model", c.TotalBudget)
	}
	if c := (Config{MinQuestions: 50, MaxQuestions: 20}).withDefaults(150, 3); c.MinQuestions != 20 {
		t.Errorf("MinQuestions %d not clamped to MaxQuestions", c.MinQuestions)
	}
}

// transcript renders the full observable adaptive run — the canonical
// event order with annotations — as one string for byte comparison.
func transcript(evs []eval.Event) string {
	var sb strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&sb, "%d %s %s %q %v %v %.17g %.17g %q\n",
			ev.Seq, ev.Model.Name(), ev.Question.ID, ev.Response, ev.Correct,
			ev.Adaptive, ev.Ability, ev.AbilitySE, ev.StopReason)
	}
	return sb.String()
}

func runTournament(t *testing.T, workers int, cfg Config, cancelAt int) (string, *Tournament, []*eval.Report) {
	t.Helper()
	_, bank := testBank(t, 36)
	models := testModels()
	trn, err := NewTournament(models, bank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var evs []eval.Event
	r := eval.Runner{Workers: workers, Observer: eval.ObserverFunc(func(ev eval.Event) {
		evs = append(evs, ev)
		if cancelAt >= 0 && ev.Seq == cancelAt {
			cancel()
		}
	})}
	reports, err := r.EvaluateAdaptiveContext(ctx, models, trn)
	if cancelAt >= 0 {
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	} else if err != nil {
		t.Fatal(err)
	}
	return transcript(evs), trn, reports
}

// TestTournamentDeterministicAcrossWorkers is the §6 invariant extended
// to dynamic scheduling: the complete adaptive transcript — item
// choices, outcomes, posterior updates, stop reasons — is byte-identical
// for 1, 2 and 8 workers (run under -race in CI).
func TestTournamentDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: "det"}
	want, wantTrn, _ := runTournament(t, 1, cfg, -1)
	if want == "" {
		t.Fatal("empty transcript")
	}
	for _, workers := range []int{2, 8} {
		got, gotTrn, _ := runTournament(t, workers, cfg, -1)
		if got != want {
			t.Fatalf("workers=%d transcript differs from serial run:\n%s\nvs\n%s", workers, got, want)
		}
		if gotTrn.QuestionsAsked() != wantTrn.QuestionsAsked() {
			t.Fatalf("workers=%d asked %d, serial asked %d", workers, gotTrn.QuestionsAsked(), wantTrn.QuestionsAsked())
		}
		a, b := wantTrn.Standings(), gotTrn.Standings()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d standing %d: %+v vs %+v", workers, i, b[i], a[i])
			}
		}
	}
}

// TestTournamentSeedReproducible: two runs with the same Config.Seed
// are identical transcripts — the bit-reproducibility-given-(models,
// seed) half of the acceptance contract.
func TestTournamentSeedReproducible(t *testing.T) {
	a1, _, _ := runTournament(t, 4, Config{Seed: "s1"}, -1)
	a2, _, _ := runTournament(t, 4, Config{Seed: "s1"}, -1)
	if a1 != a2 {
		t.Fatal("same seed produced different transcripts")
	}
}

// TestTournamentCancelPrefix: cancelling mid-run delivers exactly the
// canonical prefix — byte-equal to the head of the uncancelled
// transcript — for any worker count, and reports hold per-model
// prefixes of the full run's results.
func TestTournamentCancelPrefix(t *testing.T) {
	cfg := Config{Seed: "prefix"}
	full, _, fullReports := runTournament(t, 1, cfg, -1)
	const cancelAt = 17
	for _, workers := range []int{1, 2, 8} {
		got, _, gotReports := runTournament(t, workers, cfg, cancelAt)
		lines := strings.SplitAfter(full, "\n")
		want := strings.Join(lines[:cancelAt+1], "")
		if got != want {
			t.Fatalf("workers=%d: cancelled transcript is not the canonical prefix:\n%s\nvs\n%s", workers, got, want)
		}
		for mi := range gotReports {
			g, f := gotReports[mi].Results, fullReports[mi].Results
			if len(g) > len(f) {
				t.Fatalf("workers=%d model %d: partial run has more results than full run", workers, mi)
			}
			for i := range g {
				if g[i] != f[i] {
					t.Fatalf("workers=%d model %d result %d: %+v vs full %+v", workers, mi, i, g[i], f[i])
				}
			}
		}
	}
}

// TestTournamentBudgetsAndStops pins the stopping machinery: the global
// budget binds exactly, per-model caps bind, and every seat ends frozen
// with a non-empty reason.
func TestTournamentBudgetsAndStops(t *testing.T) {
	// Z is blown up so the separation stop can never fire and SEStop is
	// driven out of reach, isolating the budget machinery under test.
	t.Run("global-budget", func(t *testing.T) {
		cfg := Config{Seed: "b", TotalBudget: 30, SEStop: 0.0001, Z: 1e9}
		_, trn, _ := runTournament(t, 4, cfg, -1)
		if got := trn.QuestionsAsked(); got != 30 {
			t.Fatalf("asked %d, want the exact global budget 30", got)
		}
		for _, st := range trn.Standings() {
			if st.StopReason == "" {
				t.Fatalf("model %s finished without a stop reason", st.Model)
			}
		}
	})
	t.Run("per-model-cap", func(t *testing.T) {
		cfg := Config{Seed: "b", MaxQuestions: 7, SEStop: 0.0001, Z: 1e9}
		_, trn, _ := runTournament(t, 4, cfg, -1)
		for _, st := range trn.Standings() {
			if st.Asked > 7 {
				t.Fatalf("model %s asked %d > cap 7", st.Model, st.Asked)
			}
			if st.StopReason != "budget" {
				t.Fatalf("model %s stopped %q, want budget", st.Model, st.StopReason)
			}
		}
	})
	t.Run("exhausted", func(t *testing.T) {
		// Budget larger than models*bank: every chain drains the bank.
		cfg := Config{Seed: "b", TotalBudget: 1000, SEStop: 0.0001, Z: 1e9}
		_, trn, _ := runTournament(t, 4, cfg, -1)
		for _, st := range trn.Standings() {
			if st.Asked != 36 || st.StopReason != "exhausted" {
				t.Fatalf("model %s: asked %d stop %q, want 36/exhausted", st.Model, st.Asked, st.StopReason)
			}
		}
	})
}

// TestTournamentAnnotatesEvents: every delivered event carries the
// adaptive annotations, the final event per model carries its stop
// reason, and ability matches the recorded standings.
func TestTournamentAnnotatesEvents(t *testing.T) {
	_, bank := testBank(t, 36)
	models := testModels()
	trn, err := NewTournament(models, bank, Config{Seed: "ann"})
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[string]eval.Event)
	count := make(map[string]int)
	r := eval.Runner{Workers: 4, Observer: eval.ObserverFunc(func(ev eval.Event) {
		if !ev.Adaptive {
			t.Errorf("event %d not marked adaptive", ev.Seq)
		}
		if ev.StopReason != "" && last[ev.Model.Name()].StopReason != "" {
			t.Errorf("model %s has two stop-reason events", ev.Model.Name())
		}
		last[ev.Model.Name()] = ev
		count[ev.Model.Name()]++
	})}
	reports, err := r.EvaluateAdaptive(models, trn)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range trn.Standings() {
		ev, ok := last[st.Model]
		if !ok {
			t.Fatalf("model %s delivered no events", st.Model)
		}
		if ev.StopReason != st.StopReason {
			t.Errorf("model %s final event stop %q, standings say %q", st.Model, ev.StopReason, st.StopReason)
		}
		if ev.Ability != st.Ability || ev.AbilitySE != st.SE {
			t.Errorf("model %s final event ability (%v, %v), standings (%v, %v)",
				st.Model, ev.Ability, ev.AbilitySE, st.Ability, st.SE)
		}
		if count[st.Model] != st.Asked {
			t.Errorf("model %s delivered %d events, standings say %d asked", st.Model, count[st.Model], st.Asked)
		}
	}
	// The per-model reports hold the adaptive chains in asked order.
	for mi, rep := range reports {
		if rep.ModelName != models[mi].Name() {
			t.Errorf("report %d for %q, want %q", mi, rep.ModelName, models[mi].Name())
		}
		if len(rep.Results) != count[rep.ModelName] {
			t.Errorf("report %s has %d results, observer saw %d", rep.ModelName, len(rep.Results), count[rep.ModelName])
		}
	}
}

// TestTournamentSharedChains pins the paired-comparison design: models
// with identical outcome histories walk identical item chains (the
// tie-break key deliberately excludes the model), so near-tied models
// are compared on common items.
func TestTournamentSharedChains(t *testing.T) {
	_, bank := testBank(t, 36)
	models := []eval.Model{
		skillModel{"twin-a", 1.0}, // both always right: identical histories
		skillModel{"twin-b", 1.0},
	}
	trn, err := NewTournament(models, bank, Config{Seed: "twin", TotalBudget: 20, SEStop: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	chains := map[string][]string{}
	r := eval.Runner{Workers: 4, Observer: eval.ObserverFunc(func(ev eval.Event) {
		chains[ev.Model.Name()] = append(chains[ev.Model.Name()], ev.Question.ID)
	})}
	if _, err := r.EvaluateAdaptive(models, trn); err != nil {
		t.Fatal(err)
	}
	a, b := chains["twin-a"], chains["twin-b"]
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("chain lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("twins diverged at step %d: %s vs %s", i, a[i], b[i])
		}
	}
}
