package eval

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseNumber drives the number extractor with arbitrary responses.
// The invariants: never panic, never report ok for an input with no
// digit, never produce NaN, and always return a canonical (lowercase)
// unit token.
func FuzzParseNumber(f *testing.F) {
	for _, seed := range []string{
		"2.2 kOhm", "-10 V/V", "about 43 nm of silicon", "+3.3V",
		"1e3 Hz", "9e999", "1.5GHz", "2 MegOhm", "-40 degrees",
		"no number here", "", "-", "+", "e5", "0x1f", "..5", "1.2.3",
		"∞ ohms", "１２３", "-0", "1e", "1e+", "470uF and 2 mV",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, resp string) {
		v, unit, ok := ParseNumber(resp)
		if !ok {
			if v != 0 || unit != "" {
				t.Fatalf("ParseNumber(%q) not ok but returned (%v, %q)", resp, v, unit)
			}
			return
		}
		if !strings.ContainsAny(resp, "0123456789") {
			t.Fatalf("ParseNumber(%q) ok without any digit", resp)
		}
		if math.IsNaN(v) {
			t.Fatalf("ParseNumber(%q) produced NaN", resp)
		}
		if unit != strings.ToLower(unit) {
			t.Fatalf("ParseNumber(%q) unit %q not canonical lowercase", resp, unit)
		}
	})
}

// FuzzNormalize checks Normalize is idempotent and produces the
// canonical form: no uppercase ASCII, no dropped punctuation, no runs
// of spaces, no leading/trailing space.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"  The  Answer. ", "NAND!", "2.5, roughly", "\"quoted\"",
		"multi\nline\tresponse", "數字", "a", "", "-3 dB.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if again := Normalize(n); again != n {
			t.Fatalf("Normalize not idempotent: %q -> %q -> %q", s, n, again)
		}
		if strings.ContainsAny(n, "ABCDEFGHIJKLMNOPQRSTUVWXYZ.,!\"") {
			t.Fatalf("Normalize(%q) = %q kept case or dropped punctuation", s, n)
		}
		if strings.Contains(n, "  ") || n != strings.TrimSpace(n) {
			t.Fatalf("Normalize(%q) = %q has uncollapsed whitespace", s, n)
		}
	})
}

// TestParseNumberSignedAndPrefixed is the table the fuzz targets grew out
// of: signed values and SI-prefixed units, including the case-sensitive
// mega/milli split, reduce to base units.
func TestParseNumberSignedAndPrefixed(t *testing.T) {
	cases := []struct {
		resp  string
		value float64
		unit  string
	}{
		{"-3.3 V", -3.3, "v"},
		{"+5v", 5, "v"},
		{"2.2 kOhm", 2200, "ohm"},
		{"-10 V/V", -10, "v/v"},
		{"470uF", 470e-6, "f"},
		{"1.5GHz", 1.5e9, "hz"},
		{"2 MegOhm", 2e6, "ohm"},
		{"2 Mrad/s", 2e6, "rad/s"},
		{"2 mrad/s", 2e-3, "rad/s"},
		{"+0.5 mV", 0.5e-3, "v"},
		{"gain is -1e2 V/V overall", -100, "v/v"},
		{"-40 degrees", -40, "deg"},
		{"roughly -2.5e-3 A", -2.5e-3, "a"},
	}
	for _, c := range cases {
		v, unit, ok := ParseNumber(c.resp)
		if !ok {
			t.Errorf("ParseNumber(%q) not ok", c.resp)
			continue
		}
		if !NumbersClose(v, c.value, 1e-9) || unit != c.unit {
			t.Errorf("ParseNumber(%q) = (%v, %q), want (%v, %q)",
				c.resp, v, unit, c.value, c.unit)
		}
	}
	for _, bad := range []string{"", "no digits", "-", "+ volts"} {
		if _, _, ok := ParseNumber(bad); ok {
			t.Errorf("ParseNumber(%q) ok, want not ok", bad)
		}
	}
}

// TestContainsPhraseBoundaries exercises the word-boundary matcher
// directly at its edges: substring hits inside words must be rejected,
// and the scan must keep looking past a mid-word hit for a later
// boundary-aligned one.
func TestContainsPhraseBoundaries(t *testing.T) {
	cases := []struct {
		haystack, needle string
		want             bool
	}{
		{"and", "and", true},
		{"and gate", "and", true},
		{"x and y", "and", true},
		{"nand and", "and", true}, // first hit mid-word, second aligned
		{"operand and", "and", true},
		{"standard", "and", false}, // inside a word
		{"operand", "and", false},
		{"and5", "and", false}, // digits are word chars
		{"5and", "and", false},
		{"and-gate", "and", true}, // '-' is a boundary
		{"a", "a", true},          // single-char: exact match only
		{"a b", "a", false},
		{"", "and", false},
		{"anything", "", false},
	}
	for _, c := range cases {
		if got := containsPhrase(c.haystack, c.needle); got != c.want {
			t.Errorf("containsPhrase(%q, %q) = %v, want %v",
				c.haystack, c.needle, got, c.want)
		}
	}
}
