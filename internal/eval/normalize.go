// Package eval implements the hybrid evaluation harness of §IV: answer
// normalisation, an equivalence judge standing in for the paper's
// GPT-4-based auto-evaluation (rule-based and therefore exactly
// reproducible), Pass@1 metrics per discipline, and the evaluation
// runner that produces the rows of Tables II and III.
package eval

import (
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Normalize lowercases, trims and collapses whitespace and strips
// surrounding punctuation — the canonical form short answers are
// compared in. Already-canonical input is returned unchanged without
// allocating, the common case for golden answers normalised at build
// time and for re-normalising a previous Normalize result.
//
//hot:normalize per-event judge path (DESIGN.md §12); canonical inputs must not allocate
func Normalize(s string) string {
	if isNormalized(s) {
		return s
	}
	return string(appendNormalized(nil, s))
}

// isNormalized reports whether Normalize(s) == s, using a conservative
// single-pass ASCII check: any non-ASCII byte sends the string to the
// slow path (Unicode lowering and space folding can change bytes in
// ways a scan without allocation cannot cheaply rule out).
//
//hot:normalize fast-path gate for Normalize
func isNormalized(s string) bool {
	if len(s) == 0 {
		return true
	}
	if s[0] == ' ' || s[len(s)-1] == ' ' {
		return false
	}
	prevSpace := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= utf8.RuneSelf:
			return false
		case c == ' ':
			if prevSpace {
				return false
			}
			prevSpace = true
		case c >= 'A' && c <= 'Z':
			return false
		case c == '.' || c == ',' || c == '!' || c == '"':
			return false
		case c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r':
			return false
		default:
			prevSpace = false
		}
	}
	return true
}

// appendNormalized appends the canonical form of s to dst and returns
// the extended slice — the allocation-free core behind Normalize and
// the judge's Scratch buffers. The transform matches the historical
// Builder loop byte for byte: lowercase, collapse runs of Unicode
// whitespace to one ' ', drop `.` `,` `!` `"` (without interrupting a
// whitespace run), trim both ends.
//
//hot:normalize every judged response flows through here
func appendNormalized(dst []byte, s string) []byte {
	base := len(dst)
	lastSpace := false
	i := 0
	for i < len(s) {
		c := s[i]
		if c < utf8.RuneSelf {
			// ASCII fast path: no rune decoding, no case tables.
			switch {
			case c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r':
				if !lastSpace && len(dst) > base {
					dst = append(dst, ' ')
					lastSpace = true
				}
			case c == '.' || c == ',' || c == '!' || c == '"':
				// Sentence punctuation dropped; keep signs, parens, units.
			default:
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				dst = append(dst, c)
				lastSpace = false
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		r = unicode.ToLower(r)
		switch {
		case unicode.IsSpace(r):
			if !lastSpace && len(dst) > base {
				dst = append(dst, ' ')
				lastSpace = true
			}
		default:
			dst = utf8.AppendRune(dst, r)
			lastSpace = false
		}
	}
	// At most one trailing collapsed space to trim.
	if lastSpace {
		dst = dst[:len(dst)-1]
	}
	return dst
}

// baseUnits are unit spellings reduced to a canonical token.
var baseUnits = map[string]string{
	"ohm": "ohm", "ohms": "ohm", "Ω": "ohm",
	"v": "v", "volt": "v", "volts": "v",
	"a": "a", "amp": "a", "amps": "a", "ampere": "a", "amperes": "a",
	"s": "s", "siemens": "s_siemens", "sec": "s", "second": "s", "seconds": "s",
	"hz": "hz", "hertz": "hz",
	"f": "f", "farad": "f", "farads": "f",
	"db":      "db",
	"degrees": "deg", "degree": "deg", "deg": "deg",
	"rad/s": "rad/s", "rads": "rad/s",
	"v/v": "v/v",
	"min": "min", "minute": "min", "minutes": "min",
	"nm": "nm", "um": "um", "mm": "mm", "cm": "cm", "ps": "ps", "ns": "ns",
	"mv": "mv", "mhz": "mhz", "khz": "khz", "ghz": "ghz",
	"cycles": "count", "cycle": "count", "hops": "count", "hop": "count",
	"sets": "count", "tracks": "count", "units": "count", "unit": "count",
	"edges": "count", "masks": "count", "dies": "count", "die": "count",
	"buffers": "count", "comparators": "count", "macs": "count",
	"violations": "count", "misses": "count", "hits": "count",
	"mispredictions": "count", "x": "count", "%": "percent", "percent": "percent",
	"cpi": "count", "mhz2": "mhz",
	"sq": "count", "ohm/sq": "ohm/sq", "ohms/sq": "ohm/sq",
	"gate": "count", "gates": "count", "delays": "count",
}

// ParseNumber extracts the first numeric value from a response together
// with any SI-scaled unit, returning the value scaled to base units and
// the canonical unit token (empty when none). ok is false when the
// response contains no number.
//
// Examples: "2.2 kOhm" -> (2200, "ohm"); "-10 V/V" -> (-10, "v/v");
// "about 43 nm of silicon" -> (43, "nm").
//
//hot:number per-event judge path for numeric answers; steady-state zero-alloc
func ParseNumber(resp string) (value float64, unit string, ok bool) {
	s := strings.TrimSpace(resp)
	// Find the first number. Digits and signs are ASCII, and ASCII bytes
	// never occur inside a multi-byte UTF-8 rune, so a byte scan over
	// the raw string is exact — no lowered copy needed.
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			start = i
			break
		}
		if (c == '-' || c == '+') && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, "", false
	}
	end := start
	if s[end] == '-' || s[end] == '+' {
		end++
	}
	seenDot := false
	seenExp := false
	for end < len(s) {
		c := s[end]
		switch {
		case c >= '0' && c <= '9':
			end++
		case c == '.' && !seenDot:
			seenDot = true
			end++
		case (c == 'e' || c == 'E') && !seenExp && end+1 < len(s) &&
			(s[end+1] == '-' || s[end+1] == '+' || s[end+1] >= '0' && s[end+1] <= '9'):
			// Exponent only when followed by digits (avoid eating words
			// like "edges").
			j := end + 1
			if s[j] == '-' || s[j] == '+' {
				j++
			}
			if j < len(s) && s[j] >= '0' && s[j] <= '9' {
				seenExp = true
				end = j
			} else {
				goto numDone
			}
		default:
			goto numDone
		}
	}
numDone:
	v, err := strconv.ParseFloat(s[start:end], 64)
	if err != nil {
		return 0, "", false
	}
	// Parse the unit token following the number, preserving case so the
	// mega/milli distinction ("Mrad/s" vs "mrad/s") survives.
	tok := leadingUnitToken(strings.TrimLeft(s[end:], " \t"))
	value, unit = applyUnit(v, tok)
	return value, unit, true
}

func leadingUnitToken(s string) string {
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '/' || c == '%' {
			end++
		} else {
			break
		}
	}
	return s[:end]
}

// caseSensitivePrefixes maps SI prefixes preserving the mega/milli case
// distinction; tried longest first.
var caseSensitivePrefixes = []struct {
	text string
	mult float64
}{
	{"meg", 1e6}, {"Meg", 1e6}, {"MEG", 1e6},
	{"G", 1e9}, {"M", 1e6}, {"k", 1e3}, {"K", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
	{"N", 1e-9}, {"P", 1e-12},
}

// applyUnit resolves an attached unit token like "kOhm", "mV", "ns" into
// (scaledValue, canonicalBaseUnit). Well-known compound spellings are
// handled first; otherwise a case-sensitive SI prefix is split off.
// tok is ASCII by construction (leadingUnitToken admits only
// [a-zA-Z/%]), so an in-place ASCII fold into a stack buffer replaces
// the old strings.ToLower copy; only the unknown-unit fallback return
// still materialises a lowered string.
//
//hot:number unit resolution on the numeric judge path
func applyUnit(v float64, tok string) (float64, string) {
	if tok == "" {
		return v, ""
	}
	var arr [24]byte
	low := appendLowerASCII(arr[:0], tok)
	// Exact unit (handles compound tokens like mV, ns, kHz, rad/s
	// directly — these carry their own scale). "mhz" always means MHz:
	// millihertz does not occur in this domain.
	if u, ok := baseUnits[string(low)]; ok {
		switch {
		case string(low) == "mv":
			return v * 1e-3, "v"
		case string(low) == "khz":
			return v * 1e3, "hz"
		case string(low) == "mhz":
			return v * 1e6, "hz"
		case string(low) == "ghz":
			return v * 1e9, "hz"
		default:
			return v, u
		}
	}
	for _, p := range caseSensitivePrefixes {
		if strings.HasPrefix(tok, p.text) {
			if u, ok := baseUnits[string(low[len(p.text):])]; ok {
				return v * p.mult, u
			}
		}
	}
	return v, string(low)
}

// appendLowerASCII appends s to dst with A-Z folded to a-z. Exact for
// the ASCII-only tokens leadingUnitToken produces.
func appendLowerASCII(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// NumbersClose compares two values with a relative tolerance, treating
// tolerances below 1e-9 as exact comparison of rounded values.
func NumbersClose(a, b, tol float64) bool {
	if tol < 1e-9 {
		return a == b
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-12 {
		return diff <= tol
	}
	return diff/scale <= tol
}
