package digital

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// GenerateExtra produces additional Digital Design questions beyond the
// fixed 142-question collection — the paper's future-work direction of
// "ChipVQA-oriented dataset collection". Questions cycle through the
// package's templates with seed-parameterised instances; IDs are
// prefixed so they never collide with the standard collection.
func GenerateExtra(seed string, count int) []*dataset.Question {
	return GenerateExtraRange(seed, 0, count)
}

// GenerateExtraRange produces only the extended questions with indices
// in [lo, hi). Every question is a pure function of (seed, index), so a
// window is byte-identical to the same slice of a full build — the
// contract the streaming shard assembly relies on.
func GenerateExtraRange(seed string, lo, hi int) []*dataset.Question {
	if hi <= lo {
		return nil
	}
	qs := make([]*dataset.Question, 0, hi-lo)
	for i := lo; i < hi; i++ {
		qs = append(qs, ExtraAt(seed, i))
	}
	return qs
}

// ExtraAt builds the i-th extended Digital Design question of a fold.
func ExtraAt(seed string, i int) *dataset.Question {
	inst := fmt.Sprintf("%s-%d", seed, i)
	id := fmt.Sprintf("xd-%s-%02d", seed, i)
	switch i % 6 {
	case 0:
		return extraTruthTable(id, inst)
	case 1:
		return extraCircuit(id, inst)
	case 2:
		return extraCounter(id, inst)
	case 3:
		return extraTwosComplement(id, inst)
	case 4:
		return extraDetector(id, inst)
	default:
		return extraGray(id, inst)
	}
}

func extraTruthTable(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-tt", inst)
	vars := []string{"A", "B", "C"}
	count := 2 + r.IntN(4)
	minterms := randomMinterms("x"+inst, 3, count)
	tt := FromMinterms(vars, minterms)
	golden := Minimize(vars, minterms, nil)
	scene := TruthTableScene(tt, "F", "Truth table")
	return dataset.NewMC(id, dataset.Digital, "tt-derive",
		"Derive the minimal sum-of-products function F for the truth table shown in the figure.",
		scene, "F = "+golden.String(),
		expressionDistractors("x"+id, vars, minterms, "F"), 0.5)
}

func extraCircuit(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-circuit", inst)
	depth := 2 + r.IntN(2)
	n, _ := randomCircuit("x"+inst, depth)
	tt, err := n.TruthTable("F")
	if err != nil {
		panic(err)
	}
	golden := Minimize(tt.Vars, tt.Minterms(), nil)
	scene := CircuitScene(n, "Logic circuit", nil)
	return dataset.NewMC(id, dataset.Digital, "gate-analysis",
		"The figure shows a logic circuit built from basic gates. Which expression "+
			"describes the output F?",
		scene, "F = "+golden.String(),
		expressionDistractors("x"+id, tt.Vars, tt.Minterms(), "F"), 0.5)
}

func extraCounter(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-counter", inst)
	bits := 3 + r.IntN(2)
	state := r.IntN(1 << bits)
	seq := Counter(bits, state, 1)
	golden := BitString(seq[1], bits)
	scene := counterScene(bits, "Binary counter", "binary")
	mask := 1<<bits - 1
	others := dataset.DistinctOptions(golden,
		BitString(seq[1]^1, bits),
		BitString(state, bits),
		BitString((state+2)&mask, bits),
		BitString(seq[1]^2, bits),
		BitString((state+3)&mask, bits))
	return dataset.NewMC(id, dataset.Digital, "counter-next",
		fmt.Sprintf("A %d-bit synchronous binary up-counter shown in the figure is in "+
			"state %s. What is its state after the next clock edge?", bits, BitString(state, bits)),
		scene, golden, others, 0.4)
}

func extraTwosComplement(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-tc", inst)
	word := r.IntN(256)
	if word < 128 {
		word += 128 // force a negative value for interest
	}
	val := FromTwosComplement(word, 8)
	scene := RegisterScene(word, 8, "8-bit register")
	others := dataset.DistinctOptions(fmt.Sprint(val),
		fmt.Sprint(word), fmt.Sprint(-val), fmt.Sprint(val+128), fmt.Sprint(val-1))
	return dataset.NewMCNumeric(id, dataset.Digital, "twos-complement",
		"The 8-bit register in the figure holds the bit pattern shown. Interpreted as a "+
			"two's-complement signed integer, what is its decimal value?",
		scene, float64(val), "", 0,
		fmt.Sprint(val), others, 0.45)
}

func extraDetector(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-det", inst)
	patterns := [][]int{{1, 0, 1}, {1, 1, 0}, {0, 1, 1}, {1, 0, 0}}
	pattern := patterns[r.IntN(len(patterns))]
	st, err := SequenceDetectorTable(pattern)
	if err != nil {
		panic(err)
	}
	stream := make([]int, 6)
	for i := range stream {
		stream[i] = r.IntN(2)
	}
	_, outs, err := st.Step(0, stream)
	if err != nil {
		panic(err)
	}
	detections := 0
	for _, o := range outs {
		detections += o
	}
	fsm, err := SynthesizeDFF(st)
	if err != nil {
		panic(err)
	}
	scene := EquationsScene(append([]string{
		fmt.Sprintf("overlapping detector for pattern %v", pattern)},
		fsm.Equations()...), "Sequence detector synthesis")
	golden := fmt.Sprintf("%d detections", detections)
	others := dataset.DistinctOptions(golden,
		fmt.Sprintf("%d detections", detections+1),
		fmt.Sprintf("%d detections", detections+2),
		fmt.Sprintf("%d detections", maxInt(0, detections-1)),
		fmt.Sprintf("%d detections", detections+3))
	return dataset.NewMC(id, dataset.Digital, "sequence-detector",
		fmt.Sprintf("The figure lists the synthesized next-state and output equations of "+
			"an overlapping sequence detector for the pattern %v (state in Q bits, input X, "+
			"output Z). Starting from state 0, how many times does Z assert over the input "+
			"stream %v?", pattern, stream),
		scene, golden, others, 0.75)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func extraGray(id, inst string) *dataset.Question {
	r := rng.New("digital-extra-gray", inst)
	v := r.IntN(7)
	g := GrayEncode(v)
	gNext := GrayEncode(v + 1)
	scene := RegisterScene(g, 3, "Gray-code register")
	others := dataset.DistinctOptions(BitString(gNext, 3),
		BitString((g+1)&7, 3),
		BitString((v+1)&7, 3),
		BitString(gNext^0b111, 3),
		BitString(gNext^0b010, 3),
		BitString(gNext^0b100, 3),
		BitString(gNext^0b001, 3))
	return dataset.NewMC(id, dataset.Digital, "gray-code",
		"The register in the figure holds a 3-bit Gray-code value. What is the next "+
			"codeword in the Gray sequence?",
		scene, BitString(gNext, 3), others, 0.55)
}
