package dataset

import (
	"strings"
	"unicode"
)

// CountTokens approximates the prompt-token count the way byte-pair
// tokenizers behave on technical English: words, numbers, punctuation
// marks and operators each contribute tokens, and long words split into
// subword pieces of roughly four characters. Table I's prompt-token
// statistics are computed with this counter.
func CountTokens(s string) int {
	tokens := 0
	i := 0
	runes := []rune(s)
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r):
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || runes[j] == '\'') {
				j++
			}
			word := j - i
			// Subword pieces of ~4 chars beyond the first 4.
			tokens += 1 + (word-1)/4
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
				j++
			}
			tokens += 1 + (j-i-1)/3
			i = j
		default:
			// Punctuation and operators: one token each, but collapse
			// runs of the same mark.
			j := i
			for j < len(runes) && runes[j] == r {
				j++
			}
			tokens++
			i = j
		}
	}
	return tokens
}

// TokenStats summarises a distribution of per-question prompt-token
// counts: the rows of the "Prompt Token" block of Table I.
type TokenStats struct {
	Mean float64
	Std  float64
	Min  int
	P25  int
	P50  int
	P75  int
	Max  int
}

// PromptTokenStats computes the Table I prompt-token statistics over the
// benchmark's question prompts (the crafted text, before answer options
// are appended — Table I describes "the prompts in each question").
func (b *Benchmark) PromptTokenStats() TokenStats {
	counts := make([]int, 0, len(b.Questions))
	for _, q := range b.Questions {
		counts = append(counts, CountTokens(q.Prompt))
	}
	return summarize(counts)
}

func summarize(counts []int) TokenStats {
	if len(counts) == 0 {
		return TokenStats{}
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	SortInts(sorted)
	var sum, sumSq float64
	for _, c := range counts {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	n := float64(len(counts))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return TokenStats{
		Mean: mean,
		Std:  sqrt(variance),
		Min:  sorted[0],
		P25:  percentile(sorted, 0.25),
		P50:  percentile(sorted, 0.50),
		P75:  percentile(sorted, 0.75),
		Max:  sorted[len(sorted)-1],
	}
}

func percentile(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// sqrt is a dependency-free Newton iteration; the dataset package stays
// independent of math for this single use.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// WordCount counts whitespace-separated words, a secondary prompt
// complexity signal used by the simulated models.
func WordCount(s string) int { return len(strings.Fields(s)) }
