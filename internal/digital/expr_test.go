package digital

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndEval(t *testing.T) {
	cases := []struct {
		expr   string
		assign map[string]bool
		want   bool
	}{
		{"A", map[string]bool{"A": true}, true},
		{"A'", map[string]bool{"A": true}, false},
		{"AB", map[string]bool{"A": true, "B": true}, true},
		{"AB", map[string]bool{"A": true, "B": false}, false},
		{"A + B", map[string]bool{"A": false, "B": true}, true},
		{"A ^ B", map[string]bool{"A": true, "B": true}, false},
		{"A ^ B", map[string]bool{"A": true, "B": false}, true},
		{"(A + B)'", map[string]bool{"A": false, "B": false}, true},
		{"A'B' + AB", map[string]bool{"A": true, "B": true}, true},
		{"A'B' + AB", map[string]bool{"A": false, "B": true}, false},
		{"0", nil, false},
		{"1", nil, true},
		{"1'", nil, false},
		{"A*B", map[string]bool{"A": true, "B": true}, true},
		{"Q = S'R' + Sq", map[string]bool{"S": true, "R": false, "q": true}, true},
		{"Q = S'R' + Sq", map[string]bool{"S": true, "R": false, "q": false}, false},
		{"x1 + x2", map[string]bool{"x1": false, "x2": true}, true},
		{"A''", map[string]bool{"A": true}, true},
		{"(AB)'", map[string]bool{"A": true, "B": false}, true},
	}
	for _, c := range cases {
		e, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		if got := e.Eval(c.assign); got != c.want {
			t.Errorf("Eval(%q, %v) = %v, want %v", c.expr, c.assign, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "A +", "(A", "A)", "+B", "A # B", "()", "'A"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Rendering an expression and reparsing it must preserve the
	// function.
	exprs := []string{
		"A'B + AB'",
		"(A + B)(C + D)",
		"A ^ B ^ C",
		"AB + A'C + BC'",
		"((A + B')C)'",
		"A'B'C' + ABC",
	}
	for _, s := range exprs {
		e := MustParse(s)
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q failed: %v", s, e.String(), err)
		}
		if !Equivalent(e, back) {
			t.Errorf("round trip changed function: %q -> %q", s, e.String())
		}
	}
}

func TestVars(t *testing.T) {
	e := MustParse("B'A + C(A + x2)")
	got := Vars(e)
	want := []string{"A", "B", "C", "x2"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestEquivalenceLaws(t *testing.T) {
	laws := []struct {
		a, b string
	}{
		{"(A + B)'", "A'B'"},           // De Morgan
		{"(AB)'", "A' + B'"},           // De Morgan
		{"A''", "A"},                   // double negation
		{"A + A'", "1"},                // complement
		{"AA'", "0"},                   // contradiction
		{"A + AB", "A"},                // absorption
		{"A(A + B)", "A"},              // absorption
		{"A ^ B", "A'B + AB'"},         // xor expansion
		{"A + B", "B + A"},             // commutativity
		{"A(B + C)", "AB + AC"},        // distribution
		{"A + A'B", "A + B"},           // redundancy
		{"(A ^ B) ^ C", "A ^ (B ^ C)"}, // xor associativity
	}
	for _, l := range laws {
		if !EquivalentStrings(l.a, l.b) {
			t.Errorf("%q should be equivalent to %q", l.a, l.b)
		}
	}
	notEquiv := [][2]string{
		{"A + B", "AB"},
		{"A'", "A"},
		{"A ^ B", "A + B"},
	}
	for _, ne := range notEquiv {
		if EquivalentStrings(ne[0], ne[1]) {
			t.Errorf("%q should NOT be equivalent to %q", ne[0], ne[1])
		}
	}
}

func TestEquivalentStringsBadInput(t *testing.T) {
	if EquivalentStrings("A +", "A") {
		t.Error("unparseable input must not be equivalent")
	}
	if EquivalentStrings("A", "((") {
		t.Error("unparseable input must not be equivalent")
	}
}

// randomExpr builds a random expression over up to 4 variables.
func randomExpr(r *rand.Rand, depth int) Expr {
	vars := []string{"A", "B", "C", "D"}
	if depth <= 0 || r.Intn(3) == 0 {
		return &Var{Name: vars[r.Intn(len(vars))]}
	}
	switch r.Intn(4) {
	case 0:
		return &Not{X: randomExpr(r, depth-1)}
	case 1:
		return &And{Xs: []Expr{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	case 2:
		return &Or{Xs: []Expr{randomExpr(r, depth-1), randomExpr(r, depth-1)}}
	default:
		return &Xor{A: randomExpr(r, depth-1), B: randomExpr(r, depth-1)}
	}
}

func TestQuickStringReparseEquivalence(t *testing.T) {
	// Property: String() always reparses to an equivalent expression.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		back, err := Parse(e.String())
		if err != nil {
			return false
		}
		return Equivalent(e, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleNegation(t *testing.T) {
	// Property: Not(Not(e)) is equivalent to e.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		return Equivalent(e, &Not{X: &Not{X: e}})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorganGeneral(t *testing.T) {
	// Property: (a+b)' == a'b' for random subexpressions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 3)
		b := randomExpr(r, 3)
		lhs := &Not{X: &Or{Xs: []Expr{a, b}}}
		rhs := &And{Xs: []Expr{&Not{X: a}, &Not{X: b}}}
		return Equivalent(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMintermsConvention(t *testing.T) {
	// F = AB over [A, B]: only minterm 3 (A=1, B=1 with A as MSB).
	e := MustParse("AB")
	ms := Minterms(e, []string{"A", "B"})
	if len(ms) != 1 || ms[0] != 3 {
		t.Fatalf("Minterms(AB) = %v, want [3]", ms)
	}
	// F = A over [A, B]: minterms 2 and 3.
	ms = Minterms(MustParse("A"), []string{"A", "B"})
	if len(ms) != 2 || ms[0] != 2 || ms[1] != 3 {
		t.Fatalf("Minterms(A) = %v, want [2 3]", ms)
	}
}
