package eval

import "sync"

// Scratch holds the reusable normalisation buffers behind one worker's
// judge calls, so the per-event hot path (DESIGN.md §12) runs without
// allocating in the steady state.
//
// Ownership follows the pixel-pool discipline of DESIGN.md §8 that
// poolown machine-checks for buffers: a Scratch belongs to exactly one
// goroutine at a time. The pipeline's worker loop checks one out per
// worker for the duration of a run (Pipeline.Run threads it to the
// Inference/Judge stages through the event); the standalone
// Judge.Correct path borrows one from a package pool per call. The
// byte slices it hands out (normA/normB) alias its internal buffers
// and are invalidated by the next call on the same buffer — callers
// must finish comparing before re-normalising into the same slot.
type Scratch struct {
	a, b []byte
}

// normA normalises s into the first scratch slot and returns the
// canonical bytes. Valid until the next normA call on this Scratch.
func (sc *Scratch) normA(s string) []byte {
	sc.a = appendNormalized(sc.a[:0], s)
	return sc.a
}

// normB normalises s into the second scratch slot — for the golden /
// candidate side of a comparison, so both operands can be live at once.
func (sc *Scratch) normB(s string) []byte {
	sc.b = appendNormalized(sc.b[:0], s)
	return sc.b
}

// scratchPool backs the standalone Judge.Correct path and seeds the
// pipeline's per-worker checkouts. Buffers start at 128 bytes — larger
// than any canonical answer in the shipped benchmark — and grow to the
// longest response they ever normalise.
var scratchPool = sync.Pool{New: func() any {
	return &Scratch{a: make([]byte, 0, 128), b: make([]byte, 0, 128)}
}}

// getScratch checks a Scratch out of the pool; the caller owns it until
// putScratch.
func getScratch() *Scratch {
	return scratchPool.Get().(*Scratch)
}

// putScratch returns a Scratch to the pool. The caller must hold no
// live normA/normB slices across this call.
func putScratch(sc *Scratch) {
	scratchPool.Put(sc)
}
