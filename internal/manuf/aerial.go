package manuf

import "math"

// This file models 1-D aerial-image formation — the optics behind the
// benchmark's OPC/RET questions. A binary mask pattern is blurred by the
// projection optics' point-spread function (Gaussian approximation with
// width set by lambda/NA), and the resist prints wherever the image
// intensity clears a threshold. The model reproduces the classic
// proximity effects: printed lines narrow as pitch shrinks toward the
// resolution limit, isolated and dense features print differently, and a
// mask bias (the simplest OPC) restores the target CD.

// AerialSimulator holds the optical configuration for 1-D image
// computation. Positions and sizes are in nanometres.
type AerialSimulator struct {
	System LithoSystem
	// Threshold is the resist's normalised intensity threshold in
	// (0, 1); 0.5 models a standard positive resist at nominal dose.
	Threshold float64
	// StepNM is the simulation grid pitch.
	StepNM float64
}

// NewAerialSimulator returns a simulator for the given optics with a
// 0.5 threshold and 1 nm grid.
func NewAerialSimulator(sys LithoSystem) *AerialSimulator {
	return &AerialSimulator{System: sys, Threshold: 0.5, StepNM: 1}
}

// psfSigma returns the Gaussian PSF width: the Airy-disk radius
// 0.61*lambda/NA mapped to an equivalent Gaussian sigma (~/2.2).
func (a *AerialSimulator) psfSigma() float64 {
	if a.System.NA == 0 {
		return math.Inf(1)
	}
	return 0.61 * a.System.WavelengthNM / a.System.NA / 2.2
}

// MaskFeature is one transparent opening of a 1-D bright-field... the
// model uses dark-field convention: features are the drawn (printing)
// lines, i.e. intensity ~1 inside a feature before blur.
type MaskFeature struct {
	CenterNM float64
	WidthNM  float64
}

// Intensity returns the normalised aerial-image intensity at position x
// for the mask features: each opening contributes the integral of the
// Gaussian PSF across its extent (an erf pair), and contributions add.
func (a *AerialSimulator) Intensity(features []MaskFeature, x float64) float64 {
	sigma := a.psfSigma()
	if math.IsInf(sigma, 1) {
		return 0
	}
	s := sigma * math.Sqrt2
	total := 0.0
	for _, f := range features {
		lo := f.CenterNM - f.WidthNM/2
		hi := f.CenterNM + f.WidthNM/2
		total += 0.5 * (math.Erf((x-lo)/s) - math.Erf((x-hi)/s))
	}
	if total < 0 {
		return 0
	}
	return total
}

// PrintedCD returns the printed linewidth of the feature nearest x0: the
// width of the contiguous region around x0 where intensity exceeds the
// resist threshold. Zero means the feature failed to print.
func (a *AerialSimulator) PrintedCD(features []MaskFeature, x0 float64) float64 {
	step := a.StepNM
	if step <= 0 {
		step = 1
	}
	if a.Intensity(features, x0) < a.Threshold {
		return 0
	}
	// Walk outward until the intensity drops below threshold.
	left := x0
	for a.Intensity(features, left-step) >= a.Threshold {
		left -= step
		if x0-left > 1e5 {
			break
		}
	}
	right := x0
	for a.Intensity(features, right+step) >= a.Threshold {
		right += step
		if right-x0 > 1e5 {
			break
		}
	}
	return right - left
}

// LineInGrating builds an n-line grating of the given CD and pitch
// centred at zero and returns the features plus the centre line's
// position.
func LineInGrating(cd, pitch float64, n int) ([]MaskFeature, float64) {
	if n < 1 {
		n = 1
	}
	features := make([]MaskFeature, n)
	mid := n / 2
	for i := range features {
		features[i] = MaskFeature{CenterNM: float64(i-mid) * pitch, WidthNM: cd}
	}
	return features, 0
}

// ProximityError returns printed-minus-drawn CD for the centre line of a
// grating: the dense-vs-iso proximity effect RET questions reason about.
func (a *AerialSimulator) ProximityError(cd, pitch float64, lines int) float64 {
	features, x0 := LineInGrating(cd, pitch, lines)
	return a.PrintedCD(features, x0) - cd
}

// ApplyBiasOPC finds the mask bias (added symmetrically to every line's
// width) that makes the centre line print at the target CD, via
// bisection over [-cd/2, +cd]. ok is false when no bias in range
// achieves the target within the simulation grid (2 nm).
func (a *AerialSimulator) ApplyBiasOPC(cd, pitch float64, lines int) (bias float64, ok bool) {
	printAt := func(b float64) float64 {
		features, x0 := LineInGrating(cd+b, pitch, lines)
		return a.PrintedCD(features, x0)
	}
	lo, hi := -cd/2, cd
	// Printed CD grows monotonically with bias.
	if printAt(lo) > cd || printAt(hi) < cd {
		return 0, false
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if printAt(mid) < cd {
			lo = mid
		} else {
			hi = mid
		}
	}
	bias = (lo + hi) / 2
	got := printAt(bias)
	return bias, math.Abs(got-cd) <= 2
}

// ImageLogSlope returns the normalised image log slope (NILS) at the
// nominal line edge — the standard lithographic-quality metric; higher
// is better, and it collapses as pitch approaches the resolution limit.
func (a *AerialSimulator) ImageLogSlope(cd, pitch float64, lines int) float64 {
	features, x0 := LineInGrating(cd, pitch, lines)
	edge := x0 + cd/2
	const h = 0.5
	i1 := a.Intensity(features, edge-h)
	i2 := a.Intensity(features, edge+h)
	mid := a.Intensity(features, edge)
	if mid <= 0 {
		return 0
	}
	slope := (i1 - i2) / (2 * h) / mid // d(ln I)/dx magnitude
	return slope * cd
}
