package visual

import "image"

// Downsample reduces an image by an integer factor with box filtering.
// It is the resolution-degradation operator of the paper's §IV-B study:
// the original images are "down-sampled 8x and 16x respectively".
func Downsample(src *image.RGBA, factor int) *image.RGBA {
	if factor <= 1 {
		out := image.NewRGBA(src.Bounds())
		copy(out.Pix, src.Pix)
		return out
	}
	b := src.Bounds()
	w := (b.Dx() + factor - 1) / factor
	h := (b.Dy() + factor - 1) / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var r, g, bsum, a, n uint32
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx := b.Min.X + ox*factor + dx
					sy := b.Min.Y + oy*factor + dy
					if sx >= b.Max.X || sy >= b.Max.Y {
						continue
					}
					i := src.PixOffset(sx, sy)
					r += uint32(src.Pix[i])
					g += uint32(src.Pix[i+1])
					bsum += uint32(src.Pix[i+2])
					a += uint32(src.Pix[i+3])
					n++
				}
			}
			if n == 0 {
				n = 1
			}
			j := dst.PixOffset(ox, oy)
			dst.Pix[j] = uint8(r / n)
			dst.Pix[j+1] = uint8(g / n)
			dst.Pix[j+2] = uint8(bsum / n)
			dst.Pix[j+3] = uint8(a / n)
		}
	}
	return dst
}

// LegibilityLoss estimates, for a downsampling factor, the fraction of
// fine detail that becomes unreadable for an element of the given
// salience. It is calibrated so that 8x downsampling of a 640x480 figure
// is essentially harmless while 16x wipes out small annotations — the
// behaviour §IV-B measured on the Digital category (0.49 → 0.49 → 0.37).
//
// The model: a glyph drawn at scale 1 is 5x7 logical pixels. After
// downsampling by f it occupies 5/f x 7/f device pixels; readability
// collapses once a glyph drops below about half a pixel of stroke width.
// Salience acts as a proxy for drawn size (labels and values are small,
// gates and boxes are big).
func LegibilityLoss(factor int, salience float64) float64 {
	if factor <= 1 {
		return 0
	}
	// Effective stroke size in device pixels for an element whose drawn
	// size scales with salience: prominent elements span ~100px, small
	// annotations ~7px.
	size := 7 + 93*salience
	device := size / float64(factor)
	switch {
	case device >= 6:
		return 0
	case device <= 1:
		return 0.95
	default:
		// Linear ramp between fully legible (6px) and unreadable (1px).
		return 0.95 * (6 - device) / 5
	}
}
