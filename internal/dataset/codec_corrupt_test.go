package dataset

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// This file is the adversarial counterpart to the happy-path corruption
// spot checks in codec_test.go: exhaustive truncation and bit-flip
// sweeps plus hand-crafted hostile frames, run through both decode
// paths (ReadPackBytes and StreamPack). The contract under test is
// uniform: hostile bytes produce an error — never a panic and never an
// allocation sized by attacker-controlled lengths.

// streamCollect drains StreamPack into a flat question list so stream
// results can be compared against the whole-buffer decoder. Question
// pointers survive yield (only the shard slice itself is recycled).
func streamCollect(data []byte, shardSize int) ([]*Question, error) {
	var qs []*Question
	err := StreamPack(bytes.NewReader(data), shardSize, func(s Shard) error {
		qs = append(qs, s.Questions...)
		return nil
	})
	return qs, err
}

// TestPackEveryPrefixTruncation cuts the fixture pack at every byte
// boundary — header, intern records, question payloads, trailer count,
// and each checksum byte — and requires both decoders to reject every
// prefix. This subsumes the sampled truncation points in
// TestPackRejectsTruncation.
func TestPackEveryPrefixTruncation(t *testing.T) {
	good := fixturePack(t, fixtureBenchmark())
	for n := 0; n < len(good); n++ {
		if _, err := ReadPackBytes(good[:n]); err == nil {
			t.Errorf("ReadPackBytes accepted %d-byte prefix of a %d-byte pack", n, len(good))
		}
		if _, err := streamCollect(good[:n], 2); err == nil {
			t.Errorf("StreamPack accepted %d-byte prefix of a %d-byte pack", n, len(good))
		}
	}
}

// TestPackChecksumTrailerFlips corrupts each byte of the CRC-32C
// trailer individually; both decoders must call out the mismatch
// rather than fail with a vaguer frame error.
func TestPackChecksumTrailerFlips(t *testing.T) {
	good := fixturePack(t, fixtureBenchmark())
	for i := len(good) - 4; i < len(good); i++ {
		bad := bytes.Clone(good)
		bad[i] ^= 0xff
		if _, err := ReadPackBytes(bad); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("ReadPackBytes with flipped trailer byte %d: err = %v, want checksum mismatch", i, err)
		}
		if _, err := streamCollect(bad, 2); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("StreamPack with flipped trailer byte %d: err = %v, want checksum mismatch", i, err)
		}
	}
}

// TestPackOversizedLengths hand-crafts frames whose declared lengths
// vastly exceed the stream: the packMaxPayload and remaining-bytes
// guards must reject them before any length-sized allocation happens.
// (A decoder that allocated first would turn a 20-byte input into a
// multi-gigabyte make — the test completing at all is the assertion.)
func TestPackOversizedLengths(t *testing.T) {
	header := func(nameLen uint64) []byte {
		h := []byte(packMagic)
		h = binary.AppendUvarint(h, packVersion)
		h = binary.AppendUvarint(h, nameLen)
		return h
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"huge name length", header(1 << 62)},
		{"name length just past cap", header(packMaxPayload + 1)},
		{"huge record length", binary.AppendUvarint(header(0), 1<<62)},
		{"record length just past cap", binary.AppendUvarint(header(0), packMaxPayload+1)},
		{"varint overflow", append(header(0), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
		{"plausible length, no payload", binary.AppendUvarint(header(0), 1<<20)},
	}
	for _, tc := range cases {
		if _, err := ReadPackBytes(tc.data); err == nil {
			t.Errorf("ReadPackBytes(%s) accepted hostile frame", tc.name)
		}
		if _, err := streamCollect(tc.data, 2); err == nil {
			t.Errorf("StreamPack(%s) accepted hostile frame", tc.name)
		}
	}
}

// TestPackEveryByteFlip inverts each byte of the pack in turn. Flips
// inside CRC-covered records must be detected; flips in the header are
// either rejected (magic, version, lengths) or — for the benchmark
// name, which the record checksum deliberately does not cover —
// decoded into an observably different pack. What is never acceptable
// is a panic or a silent byte-identical decode.
func TestPackEveryByteFlip(t *testing.T) {
	good := fixturePack(t, fixtureBenchmark())
	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0xff
		b, err := ReadPackBytes(bad)
		if err != nil {
			continue
		}
		var reenc bytes.Buffer
		if err := WritePack(&reenc, b); err != nil {
			t.Fatalf("re-encoding decode of flip at byte %d: %v", i, err)
		}
		if bytes.Equal(reenc.Bytes(), good) {
			t.Errorf("flip at byte %d decoded byte-identical to the original", i)
		}
	}
}

// FuzzPackCorruption drives arbitrary bytes through both decoders. The
// properties: neither path panics; whenever the strict whole-buffer
// decoder accepts an input, the streaming decoder accepts it too and
// yields the same questions (the reverse is not required — StreamPack
// reads from an unbounded io.Reader and cannot see trailing garbage
// after the checksum, which ReadPackBytes rejects).
func FuzzPackCorruption(f *testing.F) {
	var buf bytes.Buffer
	if err := WritePack(&buf, fixtureBenchmark()); err != nil {
		f.Fatalf("WritePack: %v", err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(packMagic))
	f.Add(good[:len(good)/2])
	mutant := bytes.Clone(good)
	mutant[len(mutant)/3] ^= 0x40
	f.Add(mutant)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadPackBytes(data)
		qs, serr := streamCollect(data, 3)
		if err != nil {
			return
		}
		if serr != nil {
			t.Fatalf("ReadPackBytes accepted input StreamPack rejected: %v", serr)
		}
		if len(qs) != len(b.Questions) {
			t.Fatalf("stream decoded %d questions, whole-buffer decoded %d", len(qs), len(b.Questions))
		}
		var bj, sj bytes.Buffer
		if err := b.WriteJSON(&bj); err != nil {
			t.Fatal(err)
		}
		if err := (&Benchmark{Name: b.Name, Questions: qs}).WriteJSON(&sj); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bj.Bytes(), sj.Bytes()) {
			t.Fatal("stream and whole-buffer decodes of an accepted input differ")
		}
	})
}
