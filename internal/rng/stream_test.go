package rng

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// TestStreamMatchesRand pins the inline Stream implementation against
// math/rand/v2 draw-for-draw: raw Uint64, the power-of-two mask path,
// the Lemire reduction (including bounds large enough to exercise the
// rejection loop), and Float64. If the standard library's PCG or
// bounded reduction ever changes, this fails before any golden hash
// does.
func TestStreamMatchesRand(t *testing.T) {
	bounds := []uint64{
		1, 2, 3, 7, 8, 13, 64, 142, 1000, 1 << 20,
		(1 << 62) + 12345, // huge non-power-of-two: high rejection rate
		(1 << 63) - 25,    // near the int boundary
	}
	for seedCase := 0; seedCase < 8; seedCase++ {
		parts := []string{"stream-test", fmt.Sprint(seedCase)}
		// Construct the stdlib generator directly (not via New) so this
		// test pins Stream against math/rand/v2 itself.
		s := Seed(parts...)
		ref := rand.New(rand.NewPCG(s, s^seedMix))
		st := NewStream(parts...)
		for i := 0; i < 256; i++ {
			if got, want := st.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Uint64 = %d, rand = %d", seedCase, i, got, want)
			}
		}
		for _, n := range bounds {
			ref := New(append(parts, fmt.Sprint(n))...)
			st := NewStream(append(parts, fmt.Sprint(n))...)
			for i := 0; i < 256; i++ {
				if got, want := st.Uint64N(n), ref.Uint64N(n); got != want {
					t.Fatalf("seed %d n=%d draw %d: Uint64N = %d, rand = %d", seedCase, n, i, got, want)
				}
			}
		}
		refF := New(append(parts, "float")...)
		stF := NewStream(append(parts, "float")...)
		for i := 0; i < 256; i++ {
			if got, want := stF.Float64(), refF.Float64(); got != want {
				t.Fatalf("seed %d draw %d: Float64 = %v, rand = %v", seedCase, i, got, want)
			}
		}
	}
}

// TestStreamIntNMatchesRand checks the int wrapper against rand.IntN on
// the exact bound the bootstrap uses (the question count) and a few
// others.
func TestStreamIntNMatchesRand(t *testing.T) {
	for _, n := range []int{1, 3, 142, 4096} {
		ref := New("intn", fmt.Sprint(n))
		st := NewStream("intn", fmt.Sprint(n))
		for i := 0; i < 512; i++ {
			if got, want := st.IntN(n), ref.IntN(n); got != want {
				t.Fatalf("n=%d draw %d: IntN = %d, rand = %d", n, i, got, want)
			}
		}
	}
}

// TestStreamIntNPanicsOnInvalid matches rand.Rand.IntN's contract.
func TestStreamIntNPanicsOnInvalid(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IntN(%d) did not panic", n)
				}
			}()
			st := NewStream("panic")
			st.IntN(n)
		}()
	}
}

// TestHasherMatchesSeed pins the incremental Hasher against Seed over
// the equivalent flat part list, including the Int and Float extensions
// that replace fmt.Sprint-formatted key parts.
func TestHasherMatchesSeed(t *testing.T) {
	cases := []struct {
		hashed uint64
		parts  []string
	}{
		{uint64(NewHasher()), nil},
		{uint64(NewHasher("bootstrap")), []string{"bootstrap"}},
		{uint64(NewHasher("bootstrap", "gpt-4o")), []string{"bootstrap", "gpt-4o"}},
		{uint64(NewHasher("a").String("b").String("")), []string{"a", "b", ""}},
		{uint64(NewHasher("a").Int(12)), []string{"a", "12"}},
		{uint64(NewHasher("a").Int(-7)), []string{"a", "-7"}},
		{uint64(NewHasher("a").Int(0)), []string{"a", "0"}},
		{uint64(NewHasher("ci").Int(2000).Float(0.95).Int(3)), []string{"ci", "2000", "0.95", "3"}},
		{uint64(NewHasher("ci").Float(1)), []string{"ci", "1"}},
		{uint64(NewHasher("ci").Float(0.123456789012345)), []string{"ci", fmt.Sprint(0.123456789012345)}},
	}
	for _, c := range cases {
		if want := Seed(c.parts...); c.hashed != want {
			t.Errorf("Hasher over %q = %d, Seed = %d", c.parts, c.hashed, want)
		}
	}
}

// TestHasherStreamMatchesNew ties it together: a stream derived from a
// Hasher identity is draw-for-draw the stream New returns for the same
// parts — the property the bootstrap's chunk scheduling relies on.
func TestHasherStreamMatchesNew(t *testing.T) {
	st := NewHasher("bootstrap", "model-x").Int(2000).Float(0.95).Int(5).Stream()
	ref := New("bootstrap", "model-x", "2000", "0.95", "5")
	for i := 0; i < 128; i++ {
		if got, want := st.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

// TestHasherZeroAlloc pins the whole per-chunk key derivation —
// extending a prefix hash with a chunk index and sealing a stream — at
// zero allocations, the point of replacing fmt.Sprint keys.
func TestHasherZeroAlloc(t *testing.T) {
	base := NewHasher("bootstrap", "model", "2000", "0.95")
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		st := base.Int(17).Stream()
		sink += st.Uint64N(142)
	})
	if allocs != 0 {
		t.Errorf("per-chunk stream derivation allocates %.1f times; want 0", allocs)
	}
	_ = sink
}
