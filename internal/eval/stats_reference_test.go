package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// referenceBootstrapCI is a naive sort-based transcription of the
// resampling scheme — same chunked streams, same per-resample CDF
// inversion, but collecting every resample statistic into a float
// slice, sorting it and indexing the percentiles, the way the
// pre-batching implementation did. It is the oracle the batched
// histogram/rank-walk machinery must match bit for bit.
func referenceBootstrapCI(r *Report, resamples int, level float64, workers int) ConfidenceInterval {
	n := len(r.Results)
	if n == 0 {
		return ConfidenceInterval{Level: level}
	}
	if resamples < 100 {
		resamples = 100
	}
	k := 0
	for _, q := range r.Results {
		if q.Correct {
			k++
		}
	}
	cdf := binomialCDF(n, k)
	stats := make([]float64, resamples)
	chunks := (resamples + bootstrapChunk - 1) / bootstrapChunk
	prefix := rng.NewHasher("bootstrap", r.ModelName).Int(resamples).Float(level)
	forEach(context.Background(), workers, chunks, func(c int) {
		gen := prefix.Int(c).Stream()
		lo := c * bootstrapChunk
		hi := lo + bootstrapChunk
		if hi > resamples {
			hi = resamples
		}
		for b := lo; b < hi; b++ {
			u := gen.Float64()
			// Linear scan instead of binary search: independent of the
			// optimised inversion.
			h := 0
			for h < n && cdf[h] <= u {
				h++
			}
			stats[b] = float64(h) / float64(n)
		}
	})
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	loIdx := clampRank(int(alpha*float64(resamples)), resamples)
	hiIdx := clampRank(int((1-alpha)*float64(resamples)), resamples)
	return ConfidenceInterval{Point: r.Pass1(), Lo: stats[loIdx], Hi: stats[hiIdx], Level: level}
}

// statsTestReport builds a report with a deterministic correctness
// pattern: question i is correct when the keyed stream says so with
// probability p.
func statsTestReport(name string, n int, p float64) *Report {
	r := &Report{ModelName: name}
	for i := 0; i < n; i++ {
		r.Results = append(r.Results, QuestionResult{
			QuestionID: fmt.Sprintf("q%03d", i),
			Correct:    rng.Bernoulli(p, "stats-ref", name, fmt.Sprint(i)),
		})
	}
	return r
}

// TestBootstrapCIMatchesReference proves the batched implementation
// (bitset popcount + hash-prefix keys + binary-search inversion +
// histogram rank-walk selection) reproduces the naive sort-based
// transcription of the same scheme bit for bit, across sizes that
// cover partial chunks, multiple chunks, boundary resample counts,
// degenerate reports and several worker counts.
func TestBootstrapCIMatchesReference(t *testing.T) {
	configs := []struct {
		n         int
		p         float64
		resamples int
		level     float64
	}{
		{142, 0.62, 2000, 0.95},
		{142, 0.62, 100, 0.95},   // minimum resamples, single partial chunk
		{142, 0.62, 256, 0.90},   // exactly one full chunk
		{142, 0.62, 257, 0.90},   // chunk boundary + 1
		{7, 0.5, 500, 0.99},      // tiny n
		{64, 1.0, 300, 0.95},     // all correct: degenerate interval
		{64, 0.0, 300, 0.95},     // none correct
		{200, 0.3, 1024, 0.6827}, // non-round level exercises the Float key
	}
	for _, cfg := range configs {
		rep := statsTestReport(fmt.Sprintf("m-%d-%v", cfg.n, cfg.p), cfg.n, cfg.p)
		for _, workers := range []int{1, 3, 8} {
			got := rep.bootstrapCI(cfg.resamples, cfg.level, workers)
			want := referenceBootstrapCI(rep, cfg.resamples, cfg.level, workers)
			if got != want {
				t.Errorf("n=%d resamples=%d level=%v workers=%d:\n got %+v\nwant %+v",
					cfg.n, cfg.resamples, cfg.level, workers, got, want)
			}
		}
	}
}

// TestBinomialCDFExact pins binomialCDF against binomial coefficients
// computed directly at sizes small enough for exact float arithmetic.
func TestBinomialCDFExact(t *testing.T) {
	choose := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	for _, cfg := range []struct{ n, k int }{{10, 3}, {12, 6}, {9, 1}, {20, 19}} {
		p := float64(cfg.k) / float64(cfg.n)
		cdf := binomialCDF(cfg.n, cfg.k)
		sum := 0.0
		for h := 0; h <= cfg.n; h++ {
			sum += choose(cfg.n, h) * math.Pow(p, float64(h)) * math.Pow(1-p, float64(cfg.n-h))
			want := sum
			if h == cfg.n {
				want = 1
			}
			if math.Abs(cdf[h]-want) > 1e-9 {
				t.Errorf("n=%d k=%d: cdf[%d] = %.12f, want %.12f", cfg.n, cfg.k, h, cdf[h], want)
			}
		}
	}
	// Degenerate parameters take the closed-form branches.
	zero := binomialCDF(5, 0)
	for h, v := range zero {
		if v != 1 {
			t.Errorf("k=0: cdf[%d] = %v, want 1", h, v)
		}
	}
	one := binomialCDF(5, 5)
	for h, v := range one {
		want := 0.0
		if h == 5 {
			want = 1
		}
		if v != want {
			t.Errorf("k=n: cdf[%d] = %v, want %v", h, v, want)
		}
	}
}

// TestBootstrapCINormalApprox sanity-checks the interval against the
// normal approximation p ± z*sqrt(p(1-p)/n): with 142 questions and
// 2000 resamples the percentile bootstrap of a binomial must land
// within a couple of discretisation steps of it.
func TestBootstrapCINormalApprox(t *testing.T) {
	rep := statsTestReport("approx", 142, 0.62)
	k := 0
	for _, q := range rep.Results {
		if q.Correct {
			k++
		}
	}
	p := float64(k) / 142
	ci := rep.bootstrapCI(2000, 0.95, 1)
	se := math.Sqrt(p * (1 - p) / 142)
	tol := 3.0 / 142 // three hit-count steps
	if math.Abs(ci.Lo-(p-1.96*se)) > tol {
		t.Errorf("Lo = %.4f, normal approx %.4f (p=%.4f se=%.4f)", ci.Lo, p-1.96*se, p, se)
	}
	if math.Abs(ci.Hi-(p+1.96*se)) > tol {
		t.Errorf("Hi = %.4f, normal approx %.4f", ci.Hi, p+1.96*se)
	}
}

// TestBootstrapCIBoundaryIndexing pins the percentile indexing at
// resamples=100 where int(alpha*float64(resamples)) rounding bites:
// the low index must be clamped exactly like the high one, and extreme
// levels must stay in bounds instead of panicking.
func TestBootstrapCIBoundaryIndexing(t *testing.T) {
	rep := statsTestReport("boundary", 50, 0.4)
	cases := []struct {
		level        float64
		loIdx, hiIdx int
	}{
		{0.95, 2, 97}, // alpha=0.025: int(2.5)=2, int(97.5)=97
		{0.90, 4, 95}, // alpha=(1-0.9)/2 is 0.04999…, not 0.05: int(alpha*100) = 4
		{0.99, 0, 99}, // alpha=0.005: int(0.5)=0, int(99.5)=99
		{1.0, 0, 99},  // alpha=0: low rank 0, high rank clamped from 100
		{0.0, 50, 50}, // alpha=0.5: both ranks int(50)=50 — median
		{1.5, 0, 99},  // alpha<0: low rank clamped up (old code panicked)
	}
	for _, c := range cases {
		if got := clampRank(int((1-c.level)/2*100), 100); got != c.loIdx {
			t.Errorf("level=%v: lo rank = %d, want %d", c.level, got, c.loIdx)
		}
		if got := clampRank(int((1-(1-c.level)/2)*100), 100); got != c.hiIdx {
			t.Errorf("level=%v: hi rank = %d, want %d", c.level, got, c.hiIdx)
		}
		ci := rep.bootstrapCI(100, c.level, 1)
		if ci.Lo > ci.Hi {
			t.Errorf("level=%v: interval inverted: %+v", c.level, ci)
		}
	}
	// The order statistics the clamped ranks select must agree with an
	// explicit sort at the boundary count.
	got := rep.bootstrapCI(100, 0.99, 1)
	want := referenceBootstrapCI(rep, 100, 0.99, 1)
	if got != want {
		t.Errorf("resamples=100 level=0.99: got %+v want %+v", got, want)
	}
}
