// Package lint is a small stdlib-only static-analysis framework plus the
// repo-specific analyzers that machine-check the reproduction's
// determinism and buffer-lifecycle invariants.
//
// The evaluation engine's core guarantee — parallel runs byte-identical
// to serial ones (DESIGN.md §6/§7, TestTableIIDeterministicAcrossWorkers)
// — rests on conventions: all randomness flows through internal/rng, no
// wall clock or map-iteration order reaches report output, and pooled
// pixel buffers obey the ownership contract of internal/visual/pool.go.
// The analyzers here turn those conventions into compile-time checks run
// by cmd/chipvqa-lint on every build (tier-1 verify).
//
// The framework is deliberately minimal: a type-checked package loader
// (load.go) built on go/parser + go/types with a source-mode stdlib
// importer (no golang.org/x/tools dependency), an Analyzer interface, a
// `//lint:ignore <name> <reason>` suppression mechanism, and a
// `// want "regexp"` expectation harness for corpus tests (linttest.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. Lowercase identifier, e.g. "nodeterm".
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A Diagnostic is one finding, attributed to an analyzer and a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the classic file:line:col form the
// driver prints and the corpus harness matches against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags    *[]Diagnostic
	suppress map[suppressKey]bool
}

// suppressKey identifies one (file, line, analyzer) suppression target.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a finding at pos unless a //lint:ignore directive for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.suppress[suppressKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every shipped analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoDeterm, MapOrder, PoolOwn, ErrDrop, HotAlloc}
}

// Run executes the analyzers over the packages and returns all findings
// sorted by position. Malformed //lint: control comments are reported as
// findings of the pseudo-analyzer "directive", so a typo in a
// suppression can never silently disable a check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppress, bad := collectSuppressions(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, suppress: suppress}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// collectSuppressions scans a package's comments for //lint:ignore
// directives and returns the suppression set plus diagnostics for any
// malformed //lint: comment. A trailing comment suppresses its own
// line; a comment on its own line suppresses the next line.
func collectSuppressions(pkg *Package) (map[suppressKey]bool, []Diagnostic) {
	suppress := make(map[suppressKey]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !IsDirective(c.Text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d, err := ParseDirective(c.Text)
				if err != nil {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  err.Error(),
					})
					continue
				}
				line := pos.Line
				if !commentTrailsCode(pkg.Fset, f, c) {
					line++
				}
				for _, name := range d.Analyzers {
					suppress[suppressKey{pos.Filename, line, name}] = true
				}
			}
		}
	}
	return suppress, bad
}

// commentTrailsCode reports whether the comment shares its line with
// code (a trailing comment) rather than standing on a line of its own.
func commentTrailsCode(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	trails := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trails {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			trails = true
		}
		return !trails
	})
	return trails
}

// isTestFile reports whether the file position belongs to a _test.go
// file. The loader excludes test files, but analyzers guard anyway so
// they stay correct if handed a test-inclusive package.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
