package dataset

import (
	"fmt"
	"strings"

	"repro/internal/visual"
)

// Stats mirrors the full content of Table I: totals, the MC/SA split,
// per-category counts, the visual-type histogram and prompt-token
// statistics.
type Stats struct {
	Total int
	MC    int
	SA    int

	PerCategory map[Category]int
	PerVisual   map[visual.Kind]int

	Tokens TokenStats
}

// ComputeStats derives Table I from a benchmark.
func (b *Benchmark) ComputeStats() Stats {
	s := Stats{
		PerCategory: make(map[Category]int),
		PerVisual:   make(map[visual.Kind]int),
	}
	for _, q := range b.Questions {
		s.Total++
		if q.Type == MultipleChoice {
			s.MC++
		} else {
			s.SA++
		}
		s.PerCategory[q.Category]++
		s.PerVisual[q.Visual.Kind]++
	}
	s.Tokens = b.PromptTokenStats()
	return s
}

// FormatTableI renders the statistics in the layout of the paper's
// Table I.
func (s Stats) FormatTableI() string {
	var sb strings.Builder
	sb.WriteString("TABLE I  Statistics of ChipVQA\n")
	sb.WriteString(fmt.Sprintf("%-16s %6s %6s %6s\n", "Data", "Total", "MC", "SA"))
	sb.WriteString(fmt.Sprintf("%-16s %6d %6d %6d\n", "", s.Total, s.MC, s.SA))
	sb.WriteString("\nCategory            Count\n")
	for _, c := range Categories() {
		sb.WriteString(fmt.Sprintf("  %-17s %5d\n", c, s.PerCategory[c]))
	}
	sb.WriteString("\nVisual              Count\n")
	for k := 0; k < visual.NumKinds; k++ {
		kind := visual.Kind(k)
		if n := s.PerVisual[kind]; n > 0 {
			sb.WriteString(fmt.Sprintf("  %-17s %5d\n", kind, n))
		}
	}
	t := s.Tokens
	sb.WriteString("\nPrompt Token        Length\n")
	sb.WriteString(fmt.Sprintf("  %-17s %7.2f\n", "mean", t.Mean))
	sb.WriteString(fmt.Sprintf("  %-17s %7.2f\n", "std", t.Std))
	sb.WriteString(fmt.Sprintf("  %-17s %5d\n", "min", t.Min))
	sb.WriteString(fmt.Sprintf("  %-17s %5d\n", "25%", t.P25))
	sb.WriteString(fmt.Sprintf("  %-17s %5d\n", "50%", t.P50))
	sb.WriteString(fmt.Sprintf("  %-17s %5d\n", "75%", t.P75))
	sb.WriteString(fmt.Sprintf("  %-17s %5d\n", "max", t.Max))
	return sb.String()
}

// CoverageMatrix reports, per (category, visual kind), how many questions
// exercise that combination — the breadth claim of Fig. 1/Fig. 3.
func (b *Benchmark) CoverageMatrix() [][]int {
	m := make([][]int, NumCategories)
	for i := range m {
		m[i] = make([]int, visual.NumKinds)
	}
	for _, q := range b.Questions {
		m[q.Category][q.Visual.Kind]++
	}
	return m
}

// FormatCoverage renders the coverage matrix as a table.
func FormatCoverage(m [][]int) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-14s", "Category"))
	for k := 0; k < visual.NumKinds; k++ {
		sb.WriteString(fmt.Sprintf("%11s", visual.Kind(k).String()))
	}
	sb.WriteString("\n")
	for c := 0; c < NumCategories; c++ {
		sb.WriteString(fmt.Sprintf("%-14s", Category(c).Short()))
		for k := 0; k < visual.NumKinds; k++ {
			sb.WriteString(fmt.Sprintf("%11d", m[c][k]))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
