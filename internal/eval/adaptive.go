package eval

import (
	"context"
	"fmt"
)

// Adaptive evaluation entry points: run the staged pipeline off a
// dynamic ItemScheduler (internal/adaptive.Tournament is the
// production implementation) instead of a static grid. Events
// interleave models in the scheduler's canonical issue order, so the
// report sink keys results by model identity rather than by Seq
// arithmetic; within one model, results land in the order its
// questions were asked — the model's adaptive transcript.

// modelSink routes each event to its model's report. The pipeline
// calls Consume in Seq order from one goroutine, so per-model result
// order is the deterministic delivery order restricted to that model.
type modelSink struct {
	index   map[string]int
	reports []*Report
}

func (s *modelSink) Consume(ev Event) {
	mi, ok := s.index[ev.Model.Name()]
	if !ok {
		return
	}
	s.reports[mi].Results = append(s.reports[mi].Results, QuestionResult{
		QuestionID: ev.Question.ID,
		Category:   ev.Question.Category,
		Response:   ev.Response,
		Correct:    ev.Correct,
	})
}

// EvaluateAdaptive runs the models against a dynamic scheduler and
// returns one report per model, in input order. The scheduler decides
// which (model, question) pairs run and when each model stops; see
// internal/adaptive for the IRT tournament that drives this.
func (r Runner) EvaluateAdaptive(models []Model, sched ItemScheduler) ([]*Report, error) {
	//lint:ignore errdrop context.Background never cancels, so the only possible error is nil
	out, _ := r.EvaluateAdaptiveContext(context.Background(), models, sched)
	return out, nil
}

// EvaluateAdaptiveContext is EvaluateAdaptive with cooperative
// cancellation. On cancel it returns ctx.Err() and the reports hold
// the deterministic delivered prefix of the adaptive transcript — the
// same events, byte for byte, that a full run would have delivered
// first. Observers on the Runner see every event in canonical order
// with the scheduler's annotations (ability, stop reason) applied.
func (r Runner) EvaluateAdaptiveContext(ctx context.Context, models []Model, sched ItemScheduler) ([]*Report, error) {
	if sched == nil {
		return nil, fmt.Errorf("eval: nil adaptive scheduler")
	}
	reports := make([]*Report, len(models))
	sink := &modelSink{index: make(map[string]int, len(models)), reports: reports}
	for i, m := range models {
		reports[i] = &Report{ModelName: m.Name()}
		if _, dup := sink.index[m.Name()]; dup {
			return nil, fmt.Errorf("eval: duplicate model %q", m.Name())
		}
		sink.index[m.Name()] = i
	}
	if len(models) == 0 {
		return reports, nil
	}
	p := &Pipeline{
		Scheduler: sched,
		Infer:     modelInference{opts: r.Opts},
		Judge:     judgeStage{judge: r.Judge},
		Sink:      sink,
		Observer:  r.Observer,
		Workers:   r.EffectiveWorkers(),
	}
	return reports, p.Run(ctx)
}
