// Corpus for the goleak analyzer: goroutine spawn sites with no
// visible completion join, next to the joined lifecycles that must stay
// clean.
package goleaktest

import (
	"context"
	"sync"
)

func work(n int) int { return n * 2 }

// ---- firing ----

func nakedSpawn(n int) {
	go func() { // want `\[goleak\] goroutine has no completion join: no WaitGroup Done, no channel send or close, no ctx\.Done\(\)-bounded wait`
		work(n)
	}()
}

func spawnNamedNoCarrier(n int) {
	go work(n) // want `go work\(\.\.\.\) passes no WaitGroup, channel, or context; the spawned goroutine cannot signal completion`
}

// ---- non-firing: join through the body ----

func joinsViaWaitGroup(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(n)
	}()
	wg.Wait()
}

func joinsViaSend(n int) chan int {
	out := make(chan int, 1)
	go func() {
		out <- work(n)
	}()
	return out
}

func joinsViaClose(n int) chan struct{} {
	done := make(chan struct{})
	go func() {
		work(n)
		close(done)
	}()
	return done
}

func joinsViaCtx(ctx context.Context, n int) {
	go func() {
		select {
		case <-ctx.Done():
		default:
			work(n)
		}
	}()
}

// ---- non-firing: join carried through arguments or receiver ----

func worker(results chan int, n int) { results <- work(n) }

func spawnWithChannel(n int) chan int {
	results := make(chan int, 1)
	go worker(results, n)
	return results
}

func waiter(wg *sync.WaitGroup, n int) {
	defer wg.Done()
	work(n)
}

func spawnWithWaitGroup(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go waiter(&wg, n)
	wg.Wait()
}

func ctxWorker(ctx context.Context, n int) {
	if ctx.Err() == nil {
		work(n)
	}
}

func spawnWithCtx(ctx context.Context, n int) {
	go ctxWorker(ctx, n)
}

// pipeline is the struct-held-contract idiom: the receiver carries the
// WaitGroup, so go p.run() is joinable through p.
type pipeline struct {
	wg sync.WaitGroup
	n  int
}

func (p *pipeline) run() {
	defer p.wg.Done()
	work(p.n)
}

func (p *pipeline) start() {
	p.wg.Add(1)
	go p.run()
}

func suppressedSpawn(n int) {
	//lint:ignore goleak corpus case demonstrating an explained suppression
	go func() {
		work(n)
	}()
}
