#!/bin/sh
# Run the repo's static gates: gofmt formatting plus the determinism /
# buffer-lifecycle analyzers (cmd/chipvqa-lint) over the whole module.
# Part of tier-1 verify; see DESIGN.md §9 for what each analyzer
# enforces and the `//lint:ignore <analyzer> <reason>` suppression
# policy.
#
# Usage: scripts/lint.sh [-only analyzer[,analyzer...]]
set -e
cd "$(dirname "$0")/.."
# Formatting gate: gofmt -l prints offending files and stays exit 0, so
# turn any output into a failure.
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
exec go run ./cmd/chipvqa-lint "$@" ./...
