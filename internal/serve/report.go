package serve

import (
	"encoding/json"

	"repro/internal/eval"
)

// Canonical report JSON: the single marshalling used by the /report
// endpoint and by the conformance suite's byte-identity assertions.
// Field order, number formatting and the trailing newline are part of
// the wire contract — an offline EvaluateAllContext run marshalled
// through MarshalReports must be byte-identical to the served body.

// ReportDoc is one model's wire-form report.
type ReportDoc struct {
	Model   string      `json:"model"`
	Pass1   float64     `json:"pass1"`
	Results []ResultDoc `json:"results"`
}

// ResultDoc is one (model, question) outcome in a ReportDoc.
type ResultDoc struct {
	QuestionID string `json:"question_id"`
	Category   string `json:"category"`
	Response   string `json:"response"`
	Correct    bool   `json:"correct"`
}

// reportsEnvelope is the top-level /report body.
type reportsEnvelope struct {
	Reports []ReportDoc `json:"reports"`
}

// MarshalReports renders reports in the canonical wire form.
func MarshalReports(reports []*eval.Report) ([]byte, error) {
	env := reportsEnvelope{Reports: make([]ReportDoc, len(reports))}
	for i, r := range reports {
		doc := ReportDoc{
			Model:   r.ModelName,
			Pass1:   r.Pass1(),
			Results: make([]ResultDoc, len(r.Results)),
		}
		for j, q := range r.Results {
			doc.Results[j] = ResultDoc{
				QuestionID: q.QuestionID,
				Category:   q.Category.Short(),
				Response:   q.Response,
				Correct:    q.Correct,
			}
		}
		env.Reports[i] = doc
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// marshalReports is the internal alias used by handlers.
func marshalReports(reports []*eval.Report) ([]byte, error) {
	return MarshalReports(reports)
}
