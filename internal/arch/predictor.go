package arch

// Predictor is a branch direction predictor simulated over an outcome
// stream (true = taken).
type Predictor interface {
	// Predict returns the predicted direction for a branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name identifies the scheme.
	Name() string
}

// StaticPredictor always predicts the same direction.
type StaticPredictor struct{ Taken bool }

// Predict implements Predictor.
func (p *StaticPredictor) Predict(uint64) bool { return p.Taken }

// Update implements Predictor.
func (p *StaticPredictor) Update(uint64, bool) {}

// Name implements Predictor.
func (p *StaticPredictor) Name() string {
	if p.Taken {
		return "static taken"
	}
	return "static not-taken"
}

// OneBitPredictor is a last-outcome predictor with a direct-mapped table.
type OneBitPredictor struct {
	table []bool
}

// NewOneBit returns a 1-bit predictor with 2^bits entries.
func NewOneBit(bits int) *OneBitPredictor {
	return &OneBitPredictor{table: make([]bool, 1<<bits)}
}

// Predict implements Predictor.
func (p *OneBitPredictor) Predict(pc uint64) bool {
	return p.table[pc%uint64(len(p.table))]
}

// Update implements Predictor.
func (p *OneBitPredictor) Update(pc uint64, taken bool) {
	p.table[pc%uint64(len(p.table))] = taken
}

// Name implements Predictor.
func (p *OneBitPredictor) Name() string { return "1-bit" }

// TwoBitPredictor uses saturating 2-bit counters (0,1 predict not taken;
// 2,3 predict taken), initialised weakly not-taken.
type TwoBitPredictor struct {
	table []uint8
}

// NewTwoBit returns a 2-bit predictor with 2^bits entries.
func NewTwoBit(bits int) *TwoBitPredictor {
	t := &TwoBitPredictor{table: make([]uint8, 1<<bits)}
	for i := range t.table {
		t.table[i] = 1 // weakly not-taken
	}
	return t
}

// Predict implements Predictor.
func (p *TwoBitPredictor) Predict(pc uint64) bool {
	return p.table[pc%uint64(len(p.table))] >= 2
}

// Update implements Predictor.
func (p *TwoBitPredictor) Update(pc uint64, taken bool) {
	i := pc % uint64(len(p.table))
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
}

// Name implements Predictor.
func (p *TwoBitPredictor) Name() string { return "2-bit saturating" }

// GsharePredictor XORs a global history register with the pc to index a
// 2-bit counter table.
type GsharePredictor struct {
	table   []uint8
	history uint64
	bits    int
}

// NewGshare returns a gshare predictor with 2^bits counters and a
// history register of the same width.
func NewGshare(bits int) *GsharePredictor {
	g := &GsharePredictor{table: make([]uint8, 1<<bits), bits: bits}
	for i := range g.table {
		g.table[i] = 1
	}
	return g
}

func (p *GsharePredictor) index(pc uint64) uint64 {
	mask := uint64(len(p.table) - 1)
	return (pc ^ p.history) & mask
}

// Predict implements Predictor.
func (p *GsharePredictor) Predict(pc uint64) bool { return p.table[p.index(pc)] >= 2 }

// Update implements Predictor.
func (p *GsharePredictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.history = (p.history << 1) & uint64(len(p.table)-1)
	if taken {
		p.history |= 1
	}
}

// Name implements Predictor.
func (p *GsharePredictor) Name() string { return "gshare" }

// RunPredictor feeds an outcome stream for a single branch pc and
// returns the misprediction count.
func RunPredictor(p Predictor, pc uint64, outcomes []bool) int {
	miss := 0
	for _, taken := range outcomes {
		if p.Predict(pc) != taken {
			miss++
		}
		p.Update(pc, taken)
	}
	return miss
}

// LoopOutcomes builds the outcome stream of a loop branch that is taken
// iters-1 times then falls through, repeated reps times.
func LoopOutcomes(iters, reps int) []bool {
	var out []bool
	for r := 0; r < reps; r++ {
		for i := 0; i < iters-1; i++ {
			out = append(out, true)
		}
		out = append(out, false)
	}
	return out
}
