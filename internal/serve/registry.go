package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/eval"
)

// runState is the lifecycle of one launched run. Transitions are
// monotone: queued → running → one of the three terminal states.
type runState int

const (
	runQueued runState = iota
	runRunning
	runDone      // finished every question
	runCancelled // ctx cancel (client disconnect, DELETE, or drain)
	runFailed    // admission or evaluation error
)

// terminal reports whether no further events can arrive.
func (s runState) terminal() bool { return s >= runDone }

func (s runState) String() string {
	switch s {
	case runQueued:
		return "queued"
	case runRunning:
		return "running"
	case runDone:
		return "done"
	case runCancelled:
		return "cancelled"
	case runFailed:
		return "failed"
	}
	return fmt.Sprintf("runState(%d)", int(s))
}

// errDraining rejects new runs once graceful drain has begun.
var errDraining = errors.New("serve: draining, not admitting new runs")

// run is one launched evaluation. Its event log is append-only and
// delivered in the pipeline's canonical Seq order (the eval Observer is
// invoked under the reorder buffer's lock), so every subscriber —
// however late it attaches — replays the identical byte stream.
type run struct {
	id      string
	session string
	spec    RunSpec
	ctx     context.Context
	cancel  context.CancelFunc
	leave   func() // scheduler session exit; idempotent
	done    chan struct{}

	mu      sync.Mutex
	state   runState
	workers int // granted budget once running
	events  []RunEvent
	notify  chan struct{} // closed+replaced on every append/state change
	reports []*eval.Report
	failure string
}

// RunEvent is one per-question result on the wire. Seq is the global
// in-order event index for the run; timestamps are deliberately absent
// so streams are byte-deterministic for a fixed (spec, seed).
type RunEvent struct {
	Seq        int    `json:"seq"`
	Model      string `json:"model"`
	QuestionID string `json:"question_id"`
	Category   string `json:"category"`
	Type       string `json:"type"`
	Response   string `json:"response"`
	Correct    bool   `json:"correct"`
	// Adaptive runs annotate every event with the model's posterior
	// ability estimate after this outcome, and the model's final event
	// carries its stop reason. Pointer fields keep static-run streams
	// byte-identical to earlier schema versions (the keys are absent,
	// not zero).
	Ability    *float64 `json:"ability,omitempty"`
	AbilitySE  *float64 `json:"ability_se,omitempty"`
	StopReason string   `json:"stop_reason,omitempty"`
}

// appendEvent records the next in-order event and wakes subscribers.
func (r *run) appendEvent(ev RunEvent) {
	r.mu.Lock()
	ev.Seq = len(r.events)
	r.events = append(r.events, ev)
	wake := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(wake)
}

// eventCount is the number of events appended so far.
func (r *run) eventCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// begin marks the run running with its granted worker budget.
func (r *run) begin(workers int) {
	r.mu.Lock()
	r.state = runRunning
	r.workers = workers
	wake := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(wake)
}

// finish records the terminal state plus whatever reports exist (for a
// cancelled run these hold the deterministic completed prefix).
func (r *run) finish(reports []*eval.Report, err error) {
	r.mu.Lock()
	r.reports = reports
	switch {
	case err == nil:
		r.state = runDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.state = runCancelled
	default:
		r.state = runFailed
		r.failure = err.Error()
	}
	wake := r.notify
	r.notify = make(chan struct{})
	r.mu.Unlock()
	close(wake)
}

// snapshot returns the events from index `from` on, the current state,
// and a channel closed at the next change. The returned slice aliases
// the append-only log: entries are never mutated after append, so
// readers may hold it without the lock.
func (r *run) snapshot(from int) ([]RunEvent, runState, chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(r.events) {
		from = len(r.events)
	}
	return r.events[from:], r.state, r.notify
}

// registry owns every run the server has launched, hands out sequential
// ids, and tracks in-flight executions so drain can wait for quiescence
// without a WaitGroup Add/Wait reuse race: the inflight count is bumped
// under the same lock that refuses new runs once draining.
type registry struct {
	mu       sync.Mutex
	runs     map[string]*run
	order    []*run
	nextID   int
	inflight int
	changed  chan struct{} // closed+replaced whenever a run exits
	draining bool
}

func newRegistry() *registry {
	return &registry{
		runs:    make(map[string]*run),
		changed: make(chan struct{}),
	}
}

// create registers a new run under parent's cancellation scope, or
// refuses with errDraining. The caller owns starting the execution
// goroutine; runExited must be called exactly once when it ends.
func (g *registry) create(parent context.Context, session string, spec RunSpec, leave func()) (*run, error) {
	ctx, cancel := context.WithCancel(parent)
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	g.nextID++
	r := &run{
		id:      fmt.Sprintf("r%04d", g.nextID),
		session: session,
		spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		leave:   leave,
		done:    make(chan struct{}),
		notify:  make(chan struct{}),
	}
	g.runs[r.id] = r
	g.order = append(g.order, r)
	g.inflight++
	g.mu.Unlock()
	return r, nil
}

// get looks a run up by id.
func (g *registry) get(id string) (*run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}

// list returns every run in creation order.
func (g *registry) list() []*run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*run, len(g.order))
	copy(out, g.order)
	return out
}

// runExited marks one execution goroutine finished.
func (g *registry) runExited() {
	g.mu.Lock()
	g.inflight--
	wake := g.changed
	g.changed = make(chan struct{})
	g.mu.Unlock()
	close(wake)
}

// beginDrain stops create from admitting further runs.
func (g *registry) beginDrain() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
}

// isDraining reports whether drain has begun.
func (g *registry) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// counts returns (total runs, in-flight executions).
func (g *registry) counts() (int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.order), g.inflight
}

// cancelAll cancels every non-terminal run, returning how many.
func (g *registry) cancelAll() int {
	forced := 0
	for _, r := range g.list() {
		r.mu.Lock()
		live := !r.state.terminal()
		r.mu.Unlock()
		if live {
			r.cancel()
			forced++
		}
	}
	return forced
}

// waitIdle blocks until no executions are in flight or ctx is done.
func (g *registry) waitIdle(ctx context.Context) error {
	for {
		g.mu.Lock()
		n := g.inflight
		ch := g.changed
		g.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// waitIdleForever blocks until no executions are in flight. It is only
// called after cancelAll, whose ctx cancellations bound every run's
// remaining work, so the wait terminates.
func (g *registry) waitIdleForever() {
	for {
		g.mu.Lock()
		n := g.inflight
		ch := g.changed
		g.mu.Unlock()
		if n == 0 {
			return
		}
		<-ch
	}
}
