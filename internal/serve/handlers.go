package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// httpError writes the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}

// writeJSON marshals v with a status code (single Write, newline-
// terminated).
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(body, '\n'))
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.reg.isDraining() {
		status = "draining"
	}
	runs, inflight := s.reg.counts()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
		Runs     int    `json:"runs"`
		Active   int    `json:"active"`
		PoolCap  int    `json:"pool_cap"`
		PoolFree int    `json:"pool_free"`
		Queued   int    `json:"queued"`
	}{
		Status:   status,
		Sessions: s.sched.sessions(),
		Runs:     runs,
		Active:   inflight,
		PoolCap:  s.sched.pool.Cap(),
		PoolFree: s.sched.pool.Free(),
		Queued:   s.sched.pool.Queued(),
	})
}

// handleCollections is GET /v1/collections.
func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	type collectionDoc struct {
		Name      string `json:"name"`
		Questions int    `json:"questions"`
	}
	out := struct {
		Collections []collectionDoc `json:"collections"`
	}{}
	for _, c := range s.collections {
		out.Collections = append(out.Collections, collectionDoc{Name: c.Name, Questions: c.Benchmark.Len()})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleModels is GET /v1/models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Models []string `json:"models"`
	}{Models: s.modelNames})
}

// parseCategory resolves a ?category= value against the five
// disciplines (short or full Table I name, case-insensitive).
func parseCategory(v string) (dataset.Category, bool) {
	for _, c := range dataset.Categories() {
		if strings.EqualFold(v, c.Short()) || strings.EqualFold(v, c.String()) {
			return c, true
		}
	}
	return 0, false
}

// questionSummary is one row of the question listing.
type questionSummary struct {
	ID         string  `json:"id"`
	Category   string  `json:"category"`
	Type       string  `json:"type"`
	Topic      string  `json:"topic,omitempty"`
	Difficulty float64 `json:"difficulty"`
}

// handleQuestions is GET /v1/questions with collection / category /
// type / topic filters plus limit/offset paging.
func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("collection")
	bench, ok := s.collection(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
		return
	}
	keep := func(*dataset.Question) bool { return true }
	if v := q.Get("category"); v != "" {
		cat, ok := parseCategory(v)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown category %q", v)
			return
		}
		prev := keep
		keep = func(qu *dataset.Question) bool { return prev(qu) && qu.Category == cat }
	}
	if v := q.Get("type"); v != "" {
		var t dataset.QType
		switch {
		case strings.EqualFold(v, "MC"):
			t = dataset.MultipleChoice
		case strings.EqualFold(v, "SA"):
			t = dataset.ShortAnswer
		default:
			httpError(w, http.StatusBadRequest, "type must be MC or SA, got %q", v)
			return
		}
		prev := keep
		keep = func(qu *dataset.Question) bool { return prev(qu) && qu.Type == t }
	}
	if v := q.Get("topic"); v != "" {
		prev := keep
		keep = func(qu *dataset.Question) bool { return prev(qu) && qu.Topic == v }
	}
	limit, offset := 0, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	matched := bench.Filter(keep)
	total := len(matched)
	if offset > len(matched) {
		offset = len(matched)
	}
	matched = matched[offset:]
	if limit > 0 && limit < len(matched) {
		matched = matched[:limit]
	}
	out := struct {
		Collection string            `json:"collection"`
		Total      int               `json:"total"`
		Count      int               `json:"count"`
		Questions  []questionSummary `json:"questions"`
	}{
		Collection: collectionName(name),
		Total:      total,
		Count:      len(matched),
		Questions:  make([]questionSummary, len(matched)),
	}
	for i, qu := range matched {
		out.Questions[i] = questionSummary{
			ID:         qu.ID,
			Category:   qu.Category.Short(),
			Type:       qu.Type.String(),
			Topic:      qu.Topic,
			Difficulty: qu.Difficulty,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// collectionName normalizes "" to the default collection name.
func collectionName(name string) string {
	if name == "" {
		return "standard"
	}
	return name
}

// lookupQuestion resolves {id} within ?collection=.
func (s *Server) lookupQuestion(w http.ResponseWriter, r *http.Request) (*dataset.Question, bool) {
	name := r.URL.Query().Get("collection")
	if _, ok := s.collection(name); !ok {
		httpError(w, http.StatusNotFound, "unknown collection %q", name)
		return nil, false
	}
	id := r.PathValue("id")
	q, ok := s.qIndex[collectionName(name)][id]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown question %q in collection %q", id, collectionName(name))
		return nil, false
	}
	return q, true
}

// handleQuestion is GET /v1/questions/{id}.
func (s *Server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	q, ok := s.lookupQuestion(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID         string   `json:"id"`
		Collection string   `json:"collection"`
		Category   string   `json:"category"`
		Type       string   `json:"type"`
		Topic      string   `json:"topic,omitempty"`
		Difficulty float64  `json:"difficulty"`
		Prompt     string   `json:"prompt"`
		Choices    []string `json:"choices,omitempty"`
		Challenge  bool     `json:"challenge,omitempty"`
	}{
		ID:         q.ID,
		Collection: collectionName(r.URL.Query().Get("collection")),
		Category:   q.Category.Short(),
		Type:       q.Type.String(),
		Topic:      q.Topic,
		Difficulty: q.Difficulty,
		Prompt:     q.Prompt,
		Choices:    q.Choices,
		Challenge:  q.Challenge,
	})
}

// handleQuestionImage is GET /v1/questions/{id}/image.png: the rendered
// visual, optionally degraded by ?factor=. Encoding reads pixels
// through a pinned cache handle (EncodedPNG → AcquireDownsampled) and
// the encoded bytes are themselves budget-charged cache entries, so the
// LRU invariant PeakBytes <= Budget holds under concurrent image
// traffic.
func (s *Server) handleQuestionImage(w http.ResponseWriter, r *http.Request) {
	q, ok := s.lookupQuestion(w, r)
	if !ok {
		return
	}
	factor := 1
	if v := r.URL.Query().Get("factor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || !validDownsample(n) {
			httpError(w, http.StatusBadRequest, "factor must be one of 1,2,4,8,16,32, got %q", v)
			return
		}
		factor = n
	}
	data, err := s.cache.EncodedPNG(q.Visual, factor)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode %s: %v", q.ID, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "image/png")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
