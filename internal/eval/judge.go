package eval

import (
	"strings"

	"repro/internal/dataset"
	"repro/internal/digital"
)

// Judge checks whether a model response is equivalent to a question's
// golden answer. It plays the role of the paper's hybrid evaluation
// (GPT-4 auto-check plus manual review): because every golden answer in
// this reproduction is structured, the check is deterministic rules —
// choice-letter matching, numeric comparison with units and tolerance,
// canonical boolean-expression equivalence, and normalised phrase
// matching with accepted synonyms.
type Judge struct {
	// Strict disables the lenient paths (option-content matching,
	// synonym lists, containment) and requires exact normalised matches;
	// used by the judge-strictness ablation.
	Strict bool
}

// Correct reports whether the response answers the question correctly.
func (j Judge) Correct(q *dataset.Question, response string) bool {
	response = strings.TrimSpace(response)
	if response == "" {
		return false
	}
	switch q.Golden.Kind {
	case dataset.AnswerChoice:
		return j.correctChoice(q, response)
	case dataset.AnswerNumber:
		return j.correctNumber(q.Golden, response)
	case dataset.AnswerExpression:
		return j.correctExpression(q.Golden, response)
	default:
		return j.correctPhrase(q.Golden, response)
	}
}

// correctChoice accepts the option letter ("b", "b)", "(b)", "option b",
// "answer: b") or, unless strict, the full content of the correct
// option.
func (j Judge) correctChoice(q *dataset.Question, response string) bool {
	letter, ok := extractChoiceLetter(response)
	if ok {
		return letter == q.Golden.Choice
	}
	if j.Strict {
		return false
	}
	// Content match: the response must match the correct option and not
	// merely mention another option's content.
	norm := Normalize(response)
	correct := Normalize(q.Choices[q.Golden.Choice])
	if norm == correct {
		return true
	}
	// A response that contains exactly one option's content counts as
	// choosing it.
	matched := -1
	for i, c := range q.Choices {
		if containsPhrase(norm, Normalize(c)) {
			if matched >= 0 {
				return false // ambiguous
			}
			matched = i
		}
	}
	return matched == q.Golden.Choice
}

// extractChoiceLetter pulls an option letter a-d from typical response
// shapes; ok is false when the response doesn't look like a letter pick.
func extractChoiceLetter(response string) (int, bool) {
	s := strings.ToLower(strings.TrimSpace(response))
	for _, prefix := range []string{"answer:", "answer is", "option", "choice", "(", ""} {
		t := strings.TrimSpace(strings.TrimPrefix(s, prefix))
		if len(t) == 0 {
			continue
		}
		c := t[0]
		if c < 'a' || c > 'd' {
			continue
		}
		// Must be a bare letter, not the start of a word.
		if len(t) == 1 {
			return int(c - 'a'), true
		}
		switch t[1] {
		case ')', '.', ':', ' ', ']':
			return int(c - 'a'), true
		}
	}
	return 0, false
}

func (j Judge) correctNumber(g dataset.Answer, response string) bool {
	rv, runit, ok := ParseNumber(response)
	if !ok {
		return false
	}
	// Canonicalise the golden value through the same unit machinery.
	gv, gunit := applyUnit(g.Number, leadingUnitToken(g.Unit))
	tol := g.Tolerance
	if runit == "" {
		// Unitless response: assume the asked-for unit.
		return NumbersClose(rv, g.Number, tol)
	}
	if runit != gunit {
		return false
	}
	return NumbersClose(rv, gv, tol)
}

func (j Judge) correctExpression(g dataset.Answer, response string) bool {
	// Strip a leading "F =" / "Q =" from both sides; the digital
	// canonicaliser checks functional equivalence.
	if digital.EquivalentStrings(g.Text, response) {
		return true
	}
	if j.Strict {
		return false
	}
	for _, acc := range g.Accept {
		if digital.EquivalentStrings(acc, response) {
			return true
		}
	}
	return false
}

func (j Judge) correctPhrase(g dataset.Answer, response string) bool {
	norm := Normalize(response)
	golden := Normalize(g.Text)
	if norm == golden {
		return true
	}
	if j.Strict {
		return false
	}
	if containsPhrase(norm, golden) ||
		(len(golden) >= 12 && len(norm) >= 8 && containsPhrase(golden, norm)) {
		return true
	}
	for _, acc := range g.Accept {
		na := Normalize(acc)
		if na == "" {
			continue
		}
		if norm == na || containsPhrase(norm, na) {
			return true
		}
	}
	return false
}

// containsPhrase reports whether haystack contains needle as a
// word-boundary-aligned phrase (so "standard" never matches the golden
// "and"). Single-character needles only match the exact whole response.
func containsPhrase(haystack, needle string) bool {
	if needle == "" {
		return false
	}
	if len(needle) < 2 {
		return haystack == needle
	}
	idx := 0
	for {
		i := strings.Index(haystack[idx:], needle)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(needle)
		beforeOK := start == 0 || !isWordChar(haystack[start-1])
		afterOK := end == len(haystack) || !isWordChar(haystack[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
