package visual

import (
	"bytes"
	"errors"
	"image/png"
	"sync"
	"testing"
)

var errCorrupt = errors.New("cached PNG bytes diverged from reference encoding")

func TestSceneCacheEncodedPNGRoundTrip(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindSchematic)
	data, err := c.EncodedPNG(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := Downsample(Render(s), 8)
	if img.Bounds() != want.Bounds() {
		t.Fatalf("decoded bounds %v, want %v", img.Bounds(), want.Bounds())
	}
	for y := want.Bounds().Min.Y; y < want.Bounds().Max.Y; y++ {
		for x := want.Bounds().Min.X; x < want.Bounds().Max.X; x++ {
			gr, gg, gb, ga := img.At(x, y).RGBA()
			wr, wg, wb, wa := want.At(x, y).RGBA()
			if gr != wr || gg != wg || gb != wb || ga != wa {
				t.Fatalf("pixel (%d,%d) decodes to %v, want %v", x, y, img.At(x, y), want.At(x, y))
			}
		}
	}
}

func TestSceneCacheEncodedPNGMemoizedAndDeterministic(t *testing.T) {
	c := NewSceneCache()
	s := sampleScene(KindLayout)
	first, err := c.EncodedPNG(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	second, err := c.EncodedPNG(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Error("second call re-encoded instead of returning the cached slice")
	}
	after := c.Stats()
	if after.Misses != before.Misses {
		t.Errorf("warm call counted a miss: %+v -> %+v", before, after)
	}

	// Distinct factors are distinct entries with distinct encodings.
	other, err := c.EncodedPNG(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, other) {
		t.Error("factor 4 and 8 produced identical PNG bytes")
	}

	// A fresh cache (and the Default-backed helper) must produce the
	// same bytes — the wire image is a deterministic function of
	// (scene, factor).
	again, err := NewSceneCache().EncodedPNG(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("EncodedPNG differs across caches for the same scene")
	}
	viaDefault, err := CachedPNG(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, viaDefault) {
		t.Error("CachedPNG differs from a private cache's encoding")
	}
}

// TestSceneCacheEncodedPNGUnderBudget hammers the PNG path on a small
// budget from many goroutines: the budget invariant must hold with
// encoded-bytes entries in the mix, and every returned slice must stay
// valid (evicting the raw pixels must not corrupt handed-out PNGs).
func TestSceneCacheEncodedPNGUnderBudget(t *testing.T) {
	c := NewSceneCache()
	c.SetBudget(64 << 10)
	scenes := []*Scene{
		sampleScene(KindSchematic),
		sampleScene(KindLayout),
		sampleScene(KindCurve),
	}
	reference := make(map[*Scene][]byte)
	for _, s := range scenes {
		data, err := NewSceneCache().EncodedPNG(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		reference[s] = data
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s := scenes[(g+i)%len(scenes)]
				data, err := c.EncodedPNG(s, 8)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, reference[s]) {
					errs <- errCorrupt
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.PeakBytes > st.Budget {
		t.Errorf("peak %d exceeded budget %d", st.PeakBytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Log("note: no evictions under budget — budget may be loose for this fixture")
	}
}
