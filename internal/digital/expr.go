// Package digital implements the digital-design substrate: a boolean
// expression engine (parser, evaluator, canonicaliser), truth tables,
// Quine–McCluskey two-level minimisation, a gate-level netlist simulator,
// flip-flop excitation analysis and two's-complement arithmetic. The
// ChipVQA Digital Design questions are generated from these engines, and
// the evaluation judge uses the canonicaliser to compare expression
// answers the way the paper's GPT-4 judge checked equivalence.
package digital

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a boolean expression AST node.
type Expr interface {
	// Eval computes the expression under a variable assignment.
	Eval(assign map[string]bool) bool
	// String renders the expression in the benchmark's notation:
	// juxtaposition for AND, + for OR, postfix ' for NOT, ^ for XOR.
	String() string
	// vars accumulates variable names.
	vars(set map[string]bool)
}

// Var is a variable reference.
type Var struct{ Name string }

// Const is the constant 0 or 1.
type Const struct{ Value bool }

// Not is logical complement.
type Not struct{ X Expr }

// And is the conjunction of two or more terms.
type And struct{ Xs []Expr }

// Or is the disjunction of two or more terms.
type Or struct{ Xs []Expr }

// Xor is exclusive or of exactly two terms.
type Xor struct{ A, B Expr }

// Eval implements Expr.
func (v *Var) Eval(a map[string]bool) bool { return a[v.Name] }

// Eval implements Expr.
func (c *Const) Eval(map[string]bool) bool { return c.Value }

// Eval implements Expr.
func (n *Not) Eval(a map[string]bool) bool { return !n.X.Eval(a) }

// Eval implements Expr.
func (x *And) Eval(a map[string]bool) bool {
	for _, e := range x.Xs {
		if !e.Eval(a) {
			return false
		}
	}
	return true
}

// Eval implements Expr.
func (x *Or) Eval(a map[string]bool) bool {
	for _, e := range x.Xs {
		if e.Eval(a) {
			return true
		}
	}
	return false
}

// Eval implements Expr.
func (x *Xor) Eval(a map[string]bool) bool { return x.A.Eval(a) != x.B.Eval(a) }

func (v *Var) vars(s map[string]bool) { s[v.Name] = true }
func (c *Const) vars(map[string]bool) {}
func (n *Not) vars(s map[string]bool) { n.X.vars(s) }
func (x *And) vars(s map[string]bool) {
	for _, e := range x.Xs {
		e.vars(s)
	}
}
func (x *Or) vars(s map[string]bool) {
	for _, e := range x.Xs {
		e.vars(s)
	}
}
func (x *Xor) vars(s map[string]bool) { x.A.vars(s); x.B.vars(s) }

// String implements Expr.
func (v *Var) String() string { return v.Name }

// String implements Expr.
func (c *Const) String() string {
	if c.Value {
		return "1"
	}
	return "0"
}

// String implements Expr.
func (n *Not) String() string {
	switch x := n.X.(type) {
	case *Var:
		return x.Name + "'"
	case *Const:
		return x.String() + "'"
	default:
		return "(" + n.X.String() + ")'"
	}
}

// String implements Expr.
func (x *And) String() string {
	parts := make([]string, len(x.Xs))
	for i, e := range x.Xs {
		if _, isOr := e.(*Or); isOr {
			parts[i] = "(" + e.String() + ")"
		} else if _, isXor := e.(*Xor); isXor {
			parts[i] = "(" + e.String() + ")"
		} else {
			parts[i] = e.String()
		}
	}
	return strings.Join(parts, "")
}

// String implements Expr.
func (x *Or) String() string {
	parts := make([]string, len(x.Xs))
	for i, e := range x.Xs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " + ")
}

// String implements Expr.
func (x *Xor) String() string {
	return xorOperand(x.A) + " ^ " + xorOperand(x.B)
}

// xorOperand parenthesises OR operands of an XOR so the rendering
// reparses with the same structure ('+' binds looser than '^').
func xorOperand(e Expr) string {
	if _, isOr := e.(*Or); isOr {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Vars returns the sorted variable names appearing in the expression.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Parser. Grammar (standard digital-design notation):
//
//	or     := xor ('+' xor)*
//	xor    := and ('^' and)*
//	and    := unary (unary | '*' unary)*      (juxtaposition is AND)
//	unary  := primary '\''*                   (postfix complement)
//	primary:= VAR | '0' | '1' | '(' or ')'
//
// Variables are single letters optionally followed by digits or a
// trailing lowercase/uppercase distinction (Q, q, S, R, x1, ...).
// ---------------------------------------------------------------------

type parser struct {
	src []rune
	pos int
}

// Parse parses an expression in the benchmark's boolean notation.
// A leading "NAME =" assignment prefix (as in "Q = S'R' + Sq") is
// accepted and skipped.
func Parse(s string) (Expr, error) {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "="); i >= 0 && !strings.ContainsAny(s[:i], "+^()'") {
		s = s[i+1:]
	}
	p := &parser{src: []rune(s)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("digital: trailing input at %d in %q", p.pos, s)
	}
	return e, nil
}

// MustParse parses or panics; for use in generators with known-good input.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() rune {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.peek() == '+' {
		p.pos++
		t, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &Or{Xs: terms}, nil
}

func (p *parser) parseXor() (Expr, error) {
	a, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '^' {
		p.pos++
		b, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		a = &Xor{A: a, B: b}
	}
	return a, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for {
		r := p.peek()
		if r == '*' {
			p.pos++
			r = p.peek()
		}
		if isVarStart(r) || r == '(' || r == '0' || r == '1' {
			t, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
			continue
		}
		break
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &And{Xs: terms}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '\'' {
		p.pos++
		e = &Not{X: e}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	r := p.peek()
	switch {
	case r == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("digital: missing ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	case r == '0':
		p.pos++
		return &Const{Value: false}, nil
	case r == '1':
		p.pos++
		return &Const{Value: true}, nil
	case isVarStart(r):
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		return &Var{Name: string(p.src[start:p.pos])}, nil
	case r == 0:
		return nil, fmt.Errorf("digital: unexpected end of expression")
	default:
		return nil, fmt.Errorf("digital: unexpected %q at %d", r, p.pos)
	}
}

func isVarStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

// ---------------------------------------------------------------------
// Canonical form and equivalence.
// ---------------------------------------------------------------------

// Minterms returns the sorted minterm indices of the expression over the
// given ordered variable list (bit 0 of the index is the last variable,
// the textbook convention).
func Minterms(e Expr, vars []string) []int {
	n := len(vars)
	var out []int
	assign := make(map[string]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i, v := range vars {
			assign[v] = m&(1<<(n-1-i)) != 0
		}
		if e.Eval(assign) {
			out = append(out, m)
		}
	}
	return out
}

// Equivalent reports whether two expressions compute the same function
// over the union of their variables.
func Equivalent(a, b Expr) bool {
	set := make(map[string]bool)
	a.vars(set)
	b.vars(set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	if len(vars) > 20 {
		return false // refuse pathological inputs
	}
	assign := make(map[string]bool, len(vars))
	for m := 0; m < 1<<len(vars); m++ {
		for i, v := range vars {
			assign[v] = m&(1<<i) != 0
		}
		if a.Eval(assign) != b.Eval(assign) {
			return false
		}
	}
	return true
}

// EquivalentStrings parses both strings and reports functional
// equivalence; a parse failure yields false.
func EquivalentStrings(a, b string) bool {
	ea, err := Parse(a)
	if err != nil {
		return false
	}
	eb, err := Parse(b)
	if err != nil {
		return false
	}
	return Equivalent(ea, eb)
}
