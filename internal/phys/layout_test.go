package phys

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// --- Placement -------------------------------------------------------------

func TestLegalizeRowKnown(t *testing.T) {
	cells := []Cell{
		{Name: "A", X: 0, Width: 3},
		{Name: "B", X: 2, Width: 3},
		{Name: "C", X: 4, Width: 3},
	}
	pos, disp, err := LegalizeRow(cells, 12)
	if err != nil {
		t.Fatal(err)
	}
	// A stays at 0, B pushes to 3, C pushes to 6: displacement 1 + 2.
	if pos["A"] != 0 || pos["B"] != 3 || pos["C"] != 6 {
		t.Errorf("positions %v", pos)
	}
	if disp != 3 {
		t.Errorf("displacement %v, want 3", disp)
	}
}

func TestLegalizeRowOverflow(t *testing.T) {
	cells := []Cell{{Name: "A", X: 0, Width: 10}, {Name: "B", X: 0, Width: 10}}
	if _, _, err := LegalizeRow(cells, 12); err == nil {
		t.Error("over-capacity row accepted")
	}
}

func TestLegalizeRightEdgeClamp(t *testing.T) {
	// A cell desired beyond the row end must clamp inside.
	cells := []Cell{{Name: "A", X: 19, Width: 4}}
	pos, _, err := LegalizeRow(cells, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pos["A"] != 16 {
		t.Errorf("clamped position %v, want 16", pos["A"])
	}
}

func TestQuickLegalizeNoOverlap(t *testing.T) {
	// Property: legalised cells never overlap and always fit the row.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		cells := make([]Cell, n)
		total := 0.0
		for i := range cells {
			w := float64(1 + r.Intn(4))
			total += w
			cells[i] = Cell{Name: nodeName(i), X: float64(r.Intn(20)), Width: w}
		}
		rowW := total + float64(r.Intn(10))
		pos, _, err := LegalizeRow(cells, rowW)
		if err != nil {
			return false
		}
		type span struct{ lo, hi float64 }
		var spans []span
		for _, c := range cells {
			x := pos[c.Name]
			if x < -1e-9 || x+c.Width > rowW+1e-9 {
				return false
			}
			spans = append(spans, span{x, x + c.Width})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			if spans[i].lo < spans[i-1].hi-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowUtilization(t *testing.T) {
	cells := []Cell{{Width: 4}, {Width: 6}, {Width: 5}}
	if u := RowUtilization(cells, 20); math.Abs(u-0.75) > 1e-12 {
		t.Errorf("utilization %v", u)
	}
	if u := RowUtilization(cells, 0); u != 0 {
		t.Errorf("zero row %v", u)
	}
}

func TestPinAccessTracks(t *testing.T) {
	if n := PinAccessTracks(9, 1); n != 7 {
		t.Errorf("tracks %d", n)
	}
	if n := PinAccessTracks(2, 2); n != 0 {
		t.Errorf("negative tracks clamped: %d", n)
	}
}

// --- Floorplanning ------------------------------------------------------------

func TestSlicingShapes(t *testing.T) {
	a := LeafNode(Block{Name: "A", W: 4, H: 6})
	b := LeafNode(Block{Name: "B", W: 4, H: 4})
	c := LeafNode(Block{Name: "C", W: 6, H: 8})
	// A over B: width max(4,4)=4, height 6+4=10.
	ab := Combine(SliceH, a, b)
	w, h := ab.Shape()
	if w != 4 || h != 10 {
		t.Errorf("A H B shape %vx%v", w, h)
	}
	// (A over B) beside C: width 4+6=10, height max(10,8)=10.
	root := Combine(SliceV, ab, c)
	w, h = root.Shape()
	if w != 10 || h != 10 {
		t.Errorf("root shape %vx%v", w, h)
	}
	if root.Area() != 100 {
		t.Errorf("area %v", root.Area())
	}
	// Dead space: 100 - (24 + 16 + 48) = 12.
	if d := root.DeadSpace(); d != 12 {
		t.Errorf("dead space %v", d)
	}
}

func TestParsePolish(t *testing.T) {
	blocks := map[string]Block{
		"A": {Name: "A", W: 4, H: 6},
		"B": {Name: "B", W: 4, H: 4},
		"C": {Name: "C", W: 6, H: 8},
	}
	tree, err := ParsePolish([]string{"A", "B", "H", "C", "V"}, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Area() != 100 {
		t.Errorf("area %v", tree.Area())
	}
	if _, err := ParsePolish([]string{"A", "H"}, blocks); err == nil {
		t.Error("underflow accepted")
	}
	if _, err := ParsePolish([]string{"A", "B"}, blocks); err == nil {
		t.Error("leftover operands accepted")
	}
	if _, err := ParsePolish([]string{"Z"}, blocks); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestQuickDeadSpaceNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var stack []*SlicingNode
		for i := 0; i < 4; i++ {
			stack = append(stack, LeafNode(Block{
				W: float64(1 + r.Intn(8)), H: float64(1 + r.Intn(8)),
			}))
		}
		for len(stack) > 1 {
			op := SliceH
			if r.Intn(2) == 0 {
				op = SliceV
			}
			n := Combine(op, stack[len(stack)-2], stack[len(stack)-1])
			stack = append(stack[:len(stack)-2], n)
		}
		return stack[0].DeadSpace() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAspectRatio(t *testing.T) {
	n := LeafNode(Block{W: 8, H: 4})
	if ar := n.AspectRatio(); ar != 2 {
		t.Errorf("aspect %v", ar)
	}
}

// --- DRC ------------------------------------------------------------------

func TestSpacingAndOverlap(t *testing.T) {
	a := Rect{X0: 0, Y0: 0, X1: 4, Y1: 10}
	b := Rect{X0: 6, Y0: 0, X1: 10, Y1: 10}
	if s := Spacing(a, b); s != 2 {
		t.Errorf("spacing %d", s)
	}
	c := Rect{X0: 2, Y0: 2, X1: 8, Y1: 8}
	if !Overlaps(a, c) {
		t.Error("overlap not detected")
	}
	if Overlaps(a, b) {
		t.Error("false overlap")
	}
	if s := Spacing(a, c); s != 0 {
		t.Errorf("overlapping spacing %d", s)
	}
	// Diagonal neighbours.
	d := Rect{X0: 7, Y0: 13, X1: 9, Y1: 15}
	if s := Spacing(a, d); s != 3 {
		t.Errorf("diagonal spacing %d, want 3 (max of gaps)", s)
	}
}

func TestRectWidth(t *testing.T) {
	if w := (Rect{X0: 0, Y0: 0, X1: 4, Y1: 20}).Width(); w != 4 {
		t.Errorf("width %d", w)
	}
	if w := (Rect{X0: 0, Y0: 0, X1: 20, Y1: 3}).Width(); w != 3 {
		t.Errorf("width %d", w)
	}
}

func TestCheckDRC(t *testing.T) {
	shapes := []Rect{
		{Name: "M1a", Layer: "metal1", X0: 0, Y0: 0, X1: 4, Y1: 20},
		{Name: "M1b", Layer: "metal1", X0: 6, Y0: 0, X1: 10, Y1: 20},  // spacing 2, OK
		{Name: "M1c", Layer: "metal1", X0: 11, Y0: 0, X1: 14, Y1: 20}, // spacing 1 to M1b: violation
		{Name: "M1d", Layer: "metal1", X0: 20, Y0: 0, X1: 22, Y1: 8},  // width 2: violation
		{Name: "M2a", Layer: "metal2", X0: 0, Y0: 0, X1: 1, Y1: 5},    // no rule for metal2
	}
	rules := map[string]DRCRule{"metal1": {MinWidth: 3, MinSpacing: 2}}
	v := CheckDRC(shapes, rules)
	var widths, spacings int
	for _, viol := range v {
		switch viol.Kind {
		case "width":
			widths++
		case "spacing":
			spacings++
		}
		if viol.String() == "" {
			t.Error("empty violation string")
		}
	}
	if widths != 1 || spacings != 1 {
		t.Errorf("violations: %d width, %d spacing (want 1, 1): %v", widths, spacings, v)
	}
}

// --- Question generation ------------------------------------------------------

func TestGenerateComposition(t *testing.T) {
	qs := Generate()
	if len(qs) != 23 {
		t.Fatalf("generated %d, want 23", len(qs))
	}
	mc, sa := 0, 0
	kinds := map[visual.Kind]int{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
		if q.Type == dataset.MultipleChoice {
			mc++
		} else {
			sa++
		}
		kinds[q.Visual.Kind]++
	}
	if mc != 7 || sa != 16 {
		t.Errorf("mc=%d sa=%d, want 7/16", mc, sa)
	}
	want := map[visual.Kind]int{
		visual.KindLayout: 12, visual.KindDiagram: 5, visual.KindFlow: 2,
		visual.KindSchematic: 2, visual.KindMixed: 2,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("visual %s: %d, want %d", k, kinds[k], n)
		}
	}
}

func TestSteinerQuestionGolden(t *testing.T) {
	// p01's golden must equal the Steiner length of the stated
	// terminals, and be at most the star cost p02 compares against.
	terminals := []Pt{{1, 1}, {7, 2}, {3, 6}, {6, 7}}
	_, _, steinerLen := SteinerTree(terminals)
	star := StarCost(terminals, Pt{4, 4})
	for _, q := range Generate() {
		if q.ID == "p01" && q.Golden.Number != float64(steinerLen) {
			t.Errorf("p01 golden %v, want %d", q.Golden.Number, steinerLen)
		}
		if q.ID == "p02" && steinerLen > star {
			t.Errorf("p02 premise broken: steiner %d > star %d", steinerLen, star)
		}
	}
}
