package vlm

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
)

// Zoo holds the twelve simulated models calibrated against a specific
// benchmark instance. Calibration fixes, per model and per category,
// exactly which questions each model answers correctly in each format so
// that the measured Pass@1 lands on the paper's Table II values up to
// rounding — while the perception stage still degrades answers
// mechanically at reduced resolution and the agent study can reuse the
// same decisions.
type Zoo struct {
	models []*SimulatedVLM
}

// NewZoo calibrates the full Table II model list against the benchmark.
func NewZoo(b *dataset.Benchmark) *Zoo {
	z := &Zoo{}
	for _, p := range Profiles() {
		z.models = append(z.models, calibrate(p, b))
	}
	return z
}

// Models returns the simulated models in Table II row order.
func (z *Zoo) Models() []*SimulatedVLM { return z.models }

// EvalModels returns the models as eval.Model values.
func (z *Zoo) EvalModels() []eval.Model {
	out := make([]eval.Model, len(z.models))
	for i, m := range z.models {
		out[i] = m
	}
	return out
}

// Model returns the named model.
func (z *Zoo) Model(name string) (*SimulatedVLM, bool) {
	for _, m := range z.models {
		if m.profile.Name == name {
			return m, true
		}
	}
	return nil, false
}

// calibrate derives per-question decisions from the profile's Table II
// targets over the given benchmark.
func calibrate(p Profile, b *dataset.Benchmark) *SimulatedVLM {
	m := &SimulatedVLM{
		profile:    p,
		perception: DefaultPerception(),
		mc:         make(map[string]decision),
		sa:         make(map[string]decision),
		saStd:      make(map[string]decision),
	}
	byCat := b.ByCategory()
	for _, cat := range dataset.Categories() {
		qs := byCat[cat]
		if len(qs) == 0 {
			continue
		}
		calibrateCategory(m, cat, qs)
	}
	return m
}

// calibrateCategory assigns decisions for one discipline.
//
// Short-answer form ("challenge" columns of Table II): kChal questions
// out of all n are answered correctly, selected by a seeded permutation.
// These decisions also serve the category's native short-answer
// questions in the standard run.
//
// Multiple-choice form: the standard-collection target T_L applies to
// the whole category (MC and native-SA questions together), so the MC
// correct count is the remainder after the native-SA correct answers are
// accounted for. Correct MC answers split into genuinely solved and
// lucky guesses (flavour in the response text); failures split into
// wrong-letter guesses and format-breaking answers according to the
// backbone's instruction-following quality — which is how weak models
// (Kosmos-2, Paligemma) score below the 25% guessing floor, exactly as
// Table II shows.
func calibrateCategory(m *SimulatedVLM, cat dataset.Category, qs []*dataset.Question) {
	p := m.profile
	n := len(qs)
	var mcQs, saQs []*dataset.Question
	for _, q := range qs {
		if q.Type == dataset.MultipleChoice {
			mcQs = append(mcQs, q)
		} else {
			saQs = append(saQs, q)
		}
	}

	// --- Short-answer decisions over every question in the category.
	kChal := roundCount(p.NoChoice[cat], n)
	permSA := rng.New(p.Name, cat.Short(), "sa").Perm(n)
	saCorrect := make(map[string]bool, kChal)
	for i, idx := range permSA {
		q := qs[idx]
		if i < kChal {
			m.sa[q.ID] = decSolve
			saCorrect[q.ID] = true
		} else {
			m.sa[q.ID] = decWrongAnswer
		}
	}

	// --- Standard-run decisions. The standard-collection target T_L
	// covers MC and native-SA questions together. Native-SA answers are
	// kept consistent with the challenge run where the budget allows
	// (the paper ran the two collections separately, so small per-run
	// differences on identical questions are expected — temperature 0.1
	// is near- but not fully deterministic).
	kTotal := roundCount(p.WithChoice[cat], n)
	saChalCorrectNative := 0
	for _, q := range saQs {
		if saCorrect[q.ID] {
			saChalCorrectNative++
		}
	}
	kSAStd := saChalCorrectNative
	if kSAStd > kTotal {
		kSAStd = kTotal
	}
	kMC := kTotal - kSAStd
	if kMC > len(mcQs) {
		// Shift the overflow back onto native SA questions.
		overflow := kMC - len(mcQs)
		kMC = len(mcQs)
		kSAStd += overflow
		if kSAStd > len(saQs) {
			kSAStd = len(saQs)
		}
	}
	// Assign native-SA standard-run decisions: challenge-correct ones
	// first so the runs agree wherever possible.
	ordered := make([]*dataset.Question, 0, len(saQs))
	for _, q := range saQs {
		if saCorrect[q.ID] {
			ordered = append(ordered, q)
		}
	}
	for _, q := range saQs {
		if !saCorrect[q.ID] {
			ordered = append(ordered, q)
		}
	}
	for i, q := range ordered {
		if i < kSAStd {
			m.saStd[q.ID] = decSolve
		} else {
			m.saStd[q.ID] = decWrongAnswer
		}
	}
	permMC := rng.New(p.Name, cat.Short(), "mc").Perm(len(mcQs))
	// Of the correct MC answers, most are solved, the rest are lucky
	// guesses (only the response phrasing differs).
	kSolve := int(math.Round(float64(kMC) * 0.8))
	// Failures: instruction-following quality decides letter-guess vs
	// malformed output.
	follow := 0.4 + 0.6*p.BackboneStrength
	if follow > 1 {
		follow = 1
	}
	fails := len(mcQs) - kMC
	kGuessWrong := int(math.Round(float64(fails) * follow))
	for i, idx := range permMC {
		q := mcQs[idx]
		switch {
		case i < kSolve:
			m.mc[q.ID] = decSolve
		case i < kMC:
			m.mc[q.ID] = decGuessCorrect
		case i < kMC+kGuessWrong:
			m.mc[q.ID] = decGuessWrong
		default:
			m.mc[q.ID] = decMalformed
		}
	}
}

// roundCount converts a target rate into a question count.
func roundCount(rate float64, n int) int {
	k := int(math.Round(rate * float64(n)))
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// CorrectSet returns the IDs a model answers correctly in the given run
// (standard = MC plus native SA; challenge = everything as SA) — the
// agent study builds on the GPT-4o sets.
func (m *SimulatedVLM) CorrectSet(challengeRun bool) map[string]bool {
	out := make(map[string]bool)
	if challengeRun {
		for id, d := range m.sa {
			if d == decSolve {
				out[id] = true
			}
		}
		return out
	}
	for id, d := range m.mc {
		if d == decSolve || d == decGuessCorrect {
			out[id] = true
		}
	}
	for id, d := range m.saStd {
		if d == decSolve {
			out[id] = true
		}
	}
	return out
}
