package dataset

// Shard is one contiguous window of a benchmark fold delivered by a
// streaming builder. Questions carries at most the stream's shard size
// entries and is positioned at global index Start within the fold's
// canonical category-major order, so concatenating every shard in
// Index order reproduces the monolithic build exactly.
//
// Ownership: the slice is valid for the duration of the yield callback
// and must not be retained afterwards — the producer is free to reuse
// or drop it. Consumers that need questions beyond the callback must
// copy the slice (the *Question values themselves are immutable after
// generation and safe to keep).
type Shard struct {
	// Index is the zero-based shard number within the stream.
	Index int
	// Start is the global index of Questions[0] in the fold.
	Start int
	// Questions holds the shard's window of the fold.
	Questions []*Question
}

// End returns the global index one past the shard's last question.
func (s Shard) End() int { return s.Start + len(s.Questions) }
