package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the intra-module static call graph the facts layer
// (facts.go) propagates over. One node per declared function or method
// with a body; edges are statically resolved calls (calleeOf), so
// indirect calls through function values and interface methods are not
// edges — analyzers treat them as non-blocking unknowns, which keeps
// the may-block fact a must-style under-approximation instead of
// "everything blocks".

// A cgNode is one declared function in the call graph.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// syncCallees are the statically resolved callees reachable on the
	// caller's own goroutine: calls inside `go func() { ... }` bodies
	// are excluded, because their blocking happens on the spawned
	// goroutine, not the spawner's.
	syncCallees []*types.Func

	// seedBlock is non-empty when the body itself contains a blocking
	// operation (channel op, select with no default, or a call to a
	// blocking stdlib root) outside goroutine-spawned literals; it
	// holds the first such reason in source order.
	seedBlock string

	// spawns reports whether the body contains any go statement,
	// including inside nested function literals.
	spawns bool

	takesCtx bool
}

// A callGraph indexes the module's declared functions. order preserves
// (file, declaration) source order, which keeps every downstream
// iteration — and therefore every derived diagnostic — deterministic.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	order []*cgNode
}

// buildCallGraph collects one node per function declaration across the
// packages. Packages without type information (possible in tests that
// hand-build a Package) contribute no nodes.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*cgNode)}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{fn: fn, decl: fd, pkg: pkg, takesCtx: signatureTakesCtx(fn)}
				collectBody(pkg.Info, fd.Body, n)
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	return g
}

// collectBody records spawn sites, direct blocking operations and the
// synchronously reachable callees of one function body. Bodies of
// goroutine-spawned function literals contribute neither blocking
// seeds nor sync callees, but go statements anywhere (including inside
// nested literals) mark the function as a spawner. Non-spawned
// function literals (deferred closures, sort.Slice callbacks, sync.Once
// arguments) are treated as running on the caller's goroutine — a
// conservative over-approximation that matches how this module uses
// them.
func collectBody(info *types.Info, body ast.Node, n *cgNode) {
	seed := func(async bool, reason string) {
		if !async && n.seedBlock == "" {
			n.seedBlock = reason
		}
	}
	var walk func(node ast.Node, async bool)
	walk = func(node ast.Node, async bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				n.spawns = true
				// Arguments are evaluated on the caller's goroutine;
				// only the call itself runs asynchronously.
				for _, arg := range x.Call.Args {
					walk(arg, async)
				}
				if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				}
				return false
			case *ast.CallExpr:
				if fn := calleeOf(info, x); fn != nil && !async {
					n.syncCallees = append(n.syncCallees, fn)
					if reason, ok := blockingRoot(fn); ok {
						seed(async, reason)
					}
				}
			case *ast.SendStmt:
				seed(async, "sends on a channel")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					seed(async, "receives from a channel")
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						seed(async, "ranges over a channel")
					}
				}
			case *ast.SelectStmt:
				if !selectHasDefault(x) {
					seed(async, "selects with no default")
				}
			}
			return true
		})
	}
	walk(body, false)
}

// selectHasDefault reports whether a select statement has a default
// clause (which makes it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// signatureTakesCtx reports whether the function signature has a
// context.Context parameter.
func signatureTakesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
