package eval

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// --- Normalisation -----------------------------------------------------

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Hello World.  ", "hello world"},
		{"A,  B", "a b"},
		{"Multi\n  line\ttext", "multi line text"},
		{"keep-dashes_and'quotes", "keep-dashes_and'quotes"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in    string
		value float64
		unit  string
		ok    bool
	}{
		{"2.2 kOhm", 2200, "ohm", true},
		{"-10 V/V", -10, "v/v", true},
		{"4 mS", 0.004, "s", true},
		{"100 uA", 100e-6, "a", true},
		{"about 43 nm of silicon", 43, "nm", true},
		{"5.5 minutes", 5.5, "min", true},
		{"answer: 42", 42, "", true},
		{"1e4 rad/s", 1e4, "rad/s", true},
		{"10 krad/s", 1e4, "rad/s", true},
		{"60%", 60, "percent", true},
		{"3 mV", 0.003, "v", true},
		{"625 MHz", 625e6, "hz", true},
		{"1.5 GHz", 1.5e9, "hz", true},
		{"no numbers here", 0, "", false},
		{"", 0, "", false},
		{"-3", -3, "", true},
		{"7 hops", 7, "count", true},
		{"0.085 Ohm/sq", 0.085, "ohm/sq", true},
		{"12 edges", 12, "count", true},
		// Unicode regression: full case-mapping must not desync byte
		// offsets (found by fuzzing: 'İ' lowers to a longer sequence).
		{"İİİİİİ 42 Hz", 42, "hz", true},
	}
	for _, c := range cases {
		v, u, ok := ParseNumber(c.in)
		if ok != c.ok {
			t.Errorf("ParseNumber(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if u != c.unit {
			t.Errorf("ParseNumber(%q) unit=%q, want %q", c.in, u, c.unit)
		}
		if !NumbersClose(v, c.value, 1e-9) {
			t.Errorf("ParseNumber(%q) value=%v, want %v", c.in, v, c.value)
		}
	}
}

func TestNumbersClose(t *testing.T) {
	if !NumbersClose(100, 102, 0.05) {
		t.Error("2% off should pass 5% tolerance")
	}
	if NumbersClose(100, 120, 0.05) {
		t.Error("20% off should fail 5% tolerance")
	}
	if !NumbersClose(5, 5, 0) {
		t.Error("exact equality with zero tolerance")
	}
	if NumbersClose(5, 6, 0) {
		t.Error("zero tolerance should be exact")
	}
	if !NumbersClose(0, 0, 0.02) {
		t.Error("zero-zero")
	}
}

func TestQuickParseNumberRoundTrip(t *testing.T) {
	// Property: formatting a float and reparsing it recovers the value.
	f := func(raw int32) bool {
		v := float64(raw) / 100
		got, _, ok := ParseNumber(fmt.Sprintf("%g", v))
		return ok && NumbersClose(got, v, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Judge ----------------------------------------------------------------

func mcQuestion() *dataset.Question {
	scene := visual.NewScene(visual.KindSchematic, "s")
	scene.Add(visual.Element{Type: visual.ElemBox, Name: "b", Critical: true})
	return &dataset.Question{
		ID: "jq1", Category: dataset.Digital, Type: dataset.MultipleChoice,
		Prompt: "pick one", Difficulty: 0.5, Visual: scene,
		Choices: []string{"half adder", "full adder", "comparator", "decoder"},
		Golden:  dataset.Answer{Kind: dataset.AnswerChoice, Choice: 1, Text: "full adder"},
	}
}

func TestJudgeChoiceLetterForms(t *testing.T) {
	q := mcQuestion()
	j := Judge{}
	correct := []string{"b", "B", "b)", "(b)", "b.", "option b", "choice B:", "answer: b", "b) full adder"}
	for _, r := range correct {
		if !j.Correct(q, r) {
			t.Errorf("response %q should be correct", r)
		}
	}
	wrong := []string{"a", "c)", "(d)", "answer: a", "", "e", "because"}
	for _, r := range wrong {
		if j.Correct(q, r) {
			t.Errorf("response %q should be wrong", r)
		}
	}
}

func TestJudgeChoiceContentMatch(t *testing.T) {
	q := mcQuestion()
	j := Judge{}
	if !j.Correct(q, "full adder") {
		t.Error("bare correct content rejected")
	}
	if !j.Correct(q, "it is a full adder circuit") {
		t.Error("correct content in a sentence rejected")
	}
	if j.Correct(q, "half adder") {
		t.Error("wrong option content accepted")
	}
	// Ambiguity: mentioning two options is not an answer.
	if j.Correct(q, "either a full adder or a half adder") {
		t.Error("ambiguous response accepted")
	}
	// Strict mode: content matching disabled.
	if (Judge{Strict: true}).Correct(q, "full adder") {
		t.Error("strict judge should require a letter")
	}
}

func TestJudgeWordBoundaryRegression(t *testing.T) {
	// The bug class fixed during development: "standard" must not match
	// the golden "and"; substrings need word boundaries.
	q := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerPhrase, Text: "AND"},
	}
	j := Judge{}
	if j.Correct(q, "it is a standard configuration") {
		t.Error("'standard' matched golden 'and'")
	}
	if !j.Correct(q, "AND") {
		t.Error("exact short phrase rejected")
	}
	q2 := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerPhrase, Text: "hold violations",
			Accept: []string{"hold"}},
	}
	if !j.Correct(q2, "it fixes hold violations") {
		t.Error("word-boundary phrase rejected")
	}
	if !j.Correct(q2, "hold time fixing") {
		t.Error("accepted synonym rejected")
	}
	if j.Correct(q2, "household issues") {
		t.Error("'household' matched 'hold'")
	}
}

func TestJudgeNumber(t *testing.T) {
	j := Judge{}
	q := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerNumber, Number: 2200, Unit: "Ohm", Tolerance: 0.02},
	}
	for _, good := range []string{"2200 Ohm", "2.2 kOhm", "2200", "approximately 2.2 kohm", "2180 ohms"} {
		if !j.Correct(q, good) {
			t.Errorf("%q should be accepted", good)
		}
	}
	for _, bad := range []string{"2.2 Ohm", "2200 V", "4.4 kOhm", "nothing", "2.2 kHz"} {
		if j.Correct(q, bad) {
			t.Errorf("%q should be rejected", bad)
		}
	}
	// Unit-bearing golden vs scaled response unit.
	qm := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerNumber, Number: 625, Unit: "MHz", Tolerance: 0.02},
	}
	for _, good := range []string{"625 MHz", "0.625 GHz", "625"} {
		if !j.Correct(qm, good) {
			t.Errorf("%q should be accepted for 625 MHz", good)
		}
	}
}

func TestJudgeExpression(t *testing.T) {
	j := Judge{}
	q := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerExpression, Text: "F = A'B + AB'"},
	}
	for _, good := range []string{"A'B + AB'", "F = AB' + A'B", "A ^ B", "F = A ^ B"} {
		if !j.Correct(q, good) {
			t.Errorf("%q should be equivalent", good)
		}
	}
	for _, bad := range []string{"A + B", "AB", "gibberish((", ""} {
		if j.Correct(q, bad) {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

func TestJudgePhraseAccepts(t *testing.T) {
	j := Judge{}
	q := &dataset.Question{
		Golden: dataset.Answer{
			Kind: dataset.AnswerPhrase, Text: "clock tree synthesis",
			Accept: []string{"CTS"},
		},
	}
	for _, good := range []string{"clock tree synthesis", "Clock Tree Synthesis.", "the CTS step", "it performs clock tree synthesis before routing"} {
		if !j.Correct(q, good) {
			t.Errorf("%q should be accepted", good)
		}
	}
	if j.Correct(q, "routing") {
		t.Error("wrong phrase accepted")
	}
}

// --- Runner ---------------------------------------------------------------

type fixedModel struct {
	name string
	fn   func(q *dataset.Question) string
}

func (m fixedModel) Name() string { return m.name }
func (m fixedModel) Answer(q *dataset.Question, _ InferenceOptions) string {
	return m.fn(q)
}

func testBenchmark(n int) *dataset.Benchmark {
	b := &dataset.Benchmark{Name: "t"}
	for i := 0; i < n; i++ {
		scene := visual.NewScene(visual.KindSchematic, "s")
		scene.Add(visual.Element{Type: visual.ElemBox, Name: "b", Critical: true})
		cat := dataset.Category(i % dataset.NumCategories)
		b.Questions = append(b.Questions, &dataset.Question{
			ID: fmt.Sprintf("t%02d", i), Category: cat,
			Type: dataset.MultipleChoice, Prompt: "p?", Difficulty: 0.5,
			Visual:  scene,
			Choices: []string{"w", "x", "right", "z"},
			Golden:  dataset.Answer{Kind: dataset.AnswerChoice, Choice: 2, Text: "right"},
		})
	}
	return b
}

func TestRunnerPass1(t *testing.T) {
	b := testBenchmark(10)
	always := fixedModel{"always", func(q *dataset.Question) string { return "c" }}
	never := fixedModel{"never", func(q *dataset.Question) string { return "a" }}
	r := Runner{}
	if p := r.Evaluate(always, b).Pass1(); p != 1 {
		t.Errorf("always-right pass@1 %v", p)
	}
	if p := r.Evaluate(never, b).Pass1(); p != 0 {
		t.Errorf("always-wrong pass@1 %v", p)
	}
	rep := r.Evaluate(always, b)
	by := rep.Pass1ByCategory()
	for c, v := range by {
		if v != 1 {
			t.Errorf("category %v pass %v", c, v)
		}
	}
	if len(rep.WrongQuestions()) != 0 {
		t.Error("always-right has wrong questions")
	}
}

func TestRunnerConcurrentMatchesSerial(t *testing.T) {
	b := testBenchmark(40)
	m := fixedModel{"half", func(q *dataset.Question) string {
		if q.ID[len(q.ID)-1]%2 == 0 {
			return "c"
		}
		return "a"
	}}
	serial := Runner{Workers: 1}.Evaluate(m, b)
	parallel := Runner{Workers: 8}.Evaluate(m, b)
	if serial.Pass1() != parallel.Pass1() {
		t.Errorf("serial %v != parallel %v", serial.Pass1(), parallel.Pass1())
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestFormatTableII(t *testing.T) {
	b := testBenchmark(10)
	r := Runner{}
	rep := r.Evaluate(fixedModel{"m1", func(*dataset.Question) string { return "c" }}, b)
	out := FormatTableII([]*Report{rep}, []*Report{rep})
	if out == "" {
		t.Fatal("empty table")
	}
	outSingle := FormatTableII([]*Report{rep}, nil)
	if len(outSingle) >= len(out) {
		t.Error("single-collection table should be narrower")
	}
}

func TestEmptyReport(t *testing.T) {
	rep := &Report{}
	if rep.Pass1() != 0 {
		t.Error("empty report pass@1")
	}
}

func TestEvaluateAll(t *testing.T) {
	b := testBenchmark(10)
	models := []Model{
		fixedModel{"m1", func(*dataset.Question) string { return "c" }},
		fixedModel{"m2", func(*dataset.Question) string { return "a" }},
	}
	reps := Runner{}.EvaluateAll(models, b)
	if len(reps) != 2 || reps[0].ModelName != "m1" || reps[1].ModelName != "m2" {
		t.Fatalf("reports %v", reps)
	}
	if reps[0].Pass1() != 1 || reps[1].Pass1() != 0 {
		t.Errorf("pass@1 %v %v", reps[0].Pass1(), reps[1].Pass1())
	}
}

func TestJudgeExpressionAccepts(t *testing.T) {
	j := Judge{}
	q := &dataset.Question{
		Golden: dataset.Answer{Kind: dataset.AnswerExpression, Text: "F = AB",
			Accept: []string{"F = BA"}},
	}
	if !j.Correct(q, "BA") {
		t.Error("accept-list expression rejected")
	}
	strict := Judge{Strict: true}
	if !strict.Correct(q, "AB") {
		t.Error("strict judge should still take the canonical form")
	}
}

func TestJudgeFuzzNeverPanics(t *testing.T) {
	// The judge must survive arbitrary model output on every answer
	// kind, and essentially never accept random noise.
	goldens := []*dataset.Question{
		mcQuestion(),
		{Golden: dataset.Answer{Kind: dataset.AnswerNumber, Number: 42, Unit: "Hz", Tolerance: 0.02}},
		{Golden: dataset.Answer{Kind: dataset.AnswerExpression, Text: "F = AB + C'"}},
		{Golden: dataset.Answer{Kind: dataset.AnswerPhrase, Text: "clock tree synthesis"}},
	}
	j := Judge{}
	f := func(raw []byte) bool {
		s := string(raw)
		for _, q := range goldens {
			// Must not panic; random bytes must not be judged correct
			// (the probability of randomly hitting an equivalent answer
			// is negligible for these goldens).
			if j.Correct(q, s) {
				// Allow the two real possibilities: a random string that
				// happens to start with the right option letter, or one
				// that happens to contain digits parsing to the golden
				// value (e.g. bytes spelling "42") — those are correct
				// answers, not judge bugs.
				if q.Golden.Kind == dataset.AnswerChoice {
					continue
				}
				if q.Golden.Kind == dataset.AnswerNumber {
					if v, _, ok := ParseNumber(s); ok && NumbersClose(v, q.Golden.Number, q.Golden.Tolerance) {
						continue
					}
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
