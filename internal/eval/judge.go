package eval

import (
	"bytes"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/dataset"
	"repro/internal/digital"
)

// Judge checks whether a model response is equivalent to a question's
// golden answer. It plays the role of the paper's hybrid evaluation
// (GPT-4 auto-check plus manual review): because every golden answer in
// this reproduction is structured, the check is deterministic rules —
// choice-letter matching, numeric comparison with units and tolerance,
// canonical boolean-expression equivalence, and normalised phrase
// matching with accepted synonyms.
type Judge struct {
	// Strict disables the lenient paths (option-content matching,
	// synonym lists, containment) and requires exact normalised matches;
	// used by the judge-strictness ablation.
	Strict bool
}

// Correct reports whether the response answers the question correctly.
// It borrows a Scratch from the package pool; callers that judge in a
// loop (the pipeline's worker goroutines) should hold their own Scratch
// and call CorrectWith instead.
func (j Judge) Correct(q *dataset.Question, response string) bool {
	sc := getScratch()
	ok := j.CorrectWith(q, response, sc)
	putScratch(sc)
	return ok
}

// CorrectWith is Correct with a caller-owned Scratch, the zero-alloc
// form for per-worker judging. sc must not be shared with a concurrent
// caller; nil falls back to the pool.
//
//hot:judge per-event dispatch (DESIGN.md §12)
func (j Judge) CorrectWith(q *dataset.Question, response string, sc *Scratch) bool {
	if sc == nil {
		return j.Correct(q, response)
	}
	response = strings.TrimSpace(response)
	if response == "" {
		return false
	}
	switch q.Golden.Kind {
	case dataset.AnswerChoice:
		return j.correctChoice(q, response, sc)
	case dataset.AnswerNumber:
		return j.correctNumber(q.Golden, response)
	case dataset.AnswerExpression:
		return j.correctExpression(q.Golden, response)
	default:
		return j.correctPhrase(q.Golden, response, sc)
	}
}

// correctChoice accepts the option letter ("b", "b)", "(b)", "option b",
// "answer: b") or, unless strict, the full content of the correct
// option.
//
//hot:judge choice-answer path
func (j Judge) correctChoice(q *dataset.Question, response string, sc *Scratch) bool {
	letter, ok := extractChoiceLetter(response)
	if ok {
		return letter == q.Golden.Choice
	}
	if j.Strict {
		return false
	}
	// Content match: the response must match the correct option and not
	// merely mention another option's content.
	norm := sc.normA(response)
	if bytes.Equal(norm, sc.normB(q.Choices[q.Golden.Choice])) {
		return true
	}
	// A response that contains exactly one option's content counts as
	// choosing it.
	matched := -1
	for i, c := range q.Choices {
		if containsPhraseBytes(norm, sc.normB(c)) {
			if matched >= 0 {
				return false // ambiguous
			}
			matched = i
		}
	}
	return matched == q.Golden.Choice
}

// choicePrefixes are the response framings extractChoiceLetter strips
// before looking for a bare option letter; tried in order, "" last so a
// raw letter still matches.
var choicePrefixes = [...]string{"answer:", "answer is", "option", "choice", "(", ""}

// extractChoiceLetter pulls an option letter a-d from typical response
// shapes; ok is false when the response doesn't look like a letter pick.
// ASCII responses — every response the shipped models emit — are
// scanned case-insensitively in place; only non-ASCII input pays for a
// full Unicode lowering so the historical semantics hold exactly.
//
//hot:judge choice-answer path
func extractChoiceLetter(response string) (int, bool) {
	s := strings.TrimSpace(response)
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			s = strings.ToLower(s)
			break
		}
	}
	for _, prefix := range choicePrefixes {
		t := s
		if prefix != "" && hasFoldPrefixASCII(s, prefix) {
			t = s[len(prefix):]
		}
		t = strings.TrimSpace(t)
		if len(t) == 0 {
			continue
		}
		c := t[0]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c < 'a' || c > 'd' {
			continue
		}
		// Must be a bare letter, not the start of a word.
		if len(t) == 1 {
			return int(c - 'a'), true
		}
		switch t[1] {
		case ')', '.', ':', ' ', ']':
			return int(c - 'a'), true
		}
	}
	return 0, false
}

// hasFoldPrefixASCII reports whether s starts with the lowercase ASCII
// prefix under ASCII case folding.
func hasFoldPrefixASCII(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != prefix[i] {
			return false
		}
	}
	return true
}

//hot:judge numeric-answer path
func (j Judge) correctNumber(g dataset.Answer, response string) bool {
	rv, runit, ok := ParseNumber(response)
	if !ok {
		return false
	}
	// Canonicalise the golden value through the same unit machinery.
	gv, gunit := applyUnit(g.Number, leadingUnitToken(g.Unit))
	tol := g.Tolerance
	if runit == "" {
		// Unitless response: assume the asked-for unit.
		return NumbersClose(rv, g.Number, tol)
	}
	if runit != gunit {
		return false
	}
	return NumbersClose(rv, gv, tol)
}

func (j Judge) correctExpression(g dataset.Answer, response string) bool {
	// Strip a leading "F =" / "Q =" from both sides; the digital
	// canonicaliser checks functional equivalence.
	if equivalentExpr(g.Text, response) {
		return true
	}
	if j.Strict {
		return false
	}
	for _, acc := range g.Accept {
		if equivalentExpr(acc, response) {
			return true
		}
	}
	return false
}

// exprMemoCap bounds the equivalence memo; past it, results are still
// computed but no longer cached. An eval run sees at most
// models×questions×(1+accepts) distinct pairs, far below the cap.
const exprMemoCap = 1 << 16

// exprMemo caches digital.EquivalentStrings verdicts per
// (golden, response) pair. Parsing and truth-table comparison are pure,
// so memoisation cannot change any verdict — it only makes repeated
// sweeps over the same grid (benchmark loops, multi-model evaluation)
// allocation-free and parse-free in the steady state.
var exprMemo struct {
	sync.RWMutex
	m map[exprKey]bool
}

type exprKey struct {
	golden, response string
}

// equivalentExpr is a memoised digital.EquivalentStrings.
func equivalentExpr(golden, response string) bool {
	k := exprKey{golden, response}
	exprMemo.RLock()
	v, ok := exprMemo.m[k]
	exprMemo.RUnlock()
	if ok {
		return v
	}
	v = digital.EquivalentStrings(golden, response)
	exprMemo.Lock()
	if exprMemo.m == nil {
		exprMemo.m = make(map[exprKey]bool)
	}
	if len(exprMemo.m) < exprMemoCap {
		exprMemo.m[k] = v
	}
	exprMemo.Unlock()
	return v
}

//hot:judge phrase-answer path
func (j Judge) correctPhrase(g dataset.Answer, response string, sc *Scratch) bool {
	norm := sc.normA(response)
	golden := sc.normB(g.Text)
	if bytes.Equal(norm, golden) {
		return true
	}
	if j.Strict {
		return false
	}
	if containsPhraseBytes(norm, golden) ||
		(len(golden) >= 12 && len(norm) >= 8 && containsPhraseBytes(golden, norm)) {
		return true
	}
	for _, acc := range g.Accept {
		na := sc.normB(acc)
		if len(na) == 0 {
			continue
		}
		if bytes.Equal(norm, na) || containsPhraseBytes(norm, na) {
			return true
		}
	}
	return false
}

// containsPhrase reports whether haystack contains needle as a
// word-boundary-aligned phrase (so "standard" never matches the golden
// "and"). Single-character needles only match the exact whole response.
func containsPhrase(haystack, needle string) bool {
	if needle == "" {
		return false
	}
	if len(needle) < 2 {
		return haystack == needle
	}
	idx := 0
	for {
		i := strings.Index(haystack[idx:], needle)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(needle)
		beforeOK := start == 0 || !isWordChar(haystack[start-1])
		afterOK := end == len(haystack) || !isWordChar(haystack[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

// containsPhraseBytes is containsPhrase over scratch-buffer operands;
// TestContainsPhraseBytesMatchesString pins the two implementations
// together.
//
//hot:judge phrase containment over scratch buffers
func containsPhraseBytes(haystack, needle []byte) bool {
	if len(needle) == 0 {
		return false
	}
	if len(needle) < 2 {
		return bytes.Equal(haystack, needle)
	}
	idx := 0
	for {
		i := bytes.Index(haystack[idx:], needle)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(needle)
		beforeOK := start == 0 || !isWordChar(haystack[start-1])
		afterOK := end == len(haystack) || !isWordChar(haystack[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
