package digital

import (
	"strconv"
	"testing"

	"repro/internal/visual"
)

func TestKMapScene3Var(t *testing.T) {
	tt := FromMinterms([]string{"A", "B", "C"}, []int{1, 3, 5})
	s, err := KMapScene(tt, "F", "K-map")
	if err != nil {
		t.Fatal(err)
	}
	// All 8 minterm cells present, Gray-adjacent layout: cells labelled
	// with the table's output values.
	found := 0
	for _, e := range s.Elements {
		if e.Type != visual.ElemCell {
			continue
		}
		m, err := strconv.Atoi(e.Attrs["minterm"])
		if err != nil {
			t.Fatalf("bad minterm attr %q", e.Attrs["minterm"])
		}
		want := "0"
		if tt.Out[m] {
			want = "1"
		}
		if e.Label != want {
			t.Errorf("cell m%d labelled %q, want %q", m, e.Label, want)
		}
		found++
	}
	if found != 8 {
		t.Fatalf("%d cells, want 8", found)
	}
	// Renders.
	img := visual.Render(s)
	if img.Bounds().Dx() == 0 {
		t.Fatal("empty render")
	}
}

func TestKMapScene4Var(t *testing.T) {
	tt := FromMinterms([]string{"A", "B", "C", "D"}, []int{0, 5, 10, 15})
	s, err := KMapScene(tt, "F", "K-map")
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	seen := map[string]bool{}
	for _, e := range s.Elements {
		if e.Type == visual.ElemCell {
			cells++
			if seen[e.Attrs["minterm"]] {
				t.Errorf("duplicate minterm cell %s", e.Attrs["minterm"])
			}
			seen[e.Attrs["minterm"]] = true
		}
	}
	if cells != 16 {
		t.Fatalf("%d cells, want 16", cells)
	}
}

func TestKMapGrayAdjacency(t *testing.T) {
	// Horizontally adjacent K-map cells must differ in exactly one
	// variable — the property that makes the map work.
	tt := FromMinterms([]string{"A", "B", "C"}, nil)
	s, _ := KMapScene(tt, "F", "K-map")
	byPos := map[[2]string]int{}
	for _, e := range s.Elements {
		if e.Type == visual.ElemCell {
			m, _ := strconv.Atoi(e.Attrs["minterm"])
			byPos[[2]string{e.Attrs["row"], e.Attrs["col"]}] = m
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			a := byPos[[2]string{strconv.Itoa(r), strconv.Itoa(c)}]
			b := byPos[[2]string{strconv.Itoa(r), strconv.Itoa(c + 1)}]
			if popcount(a^b) != 1 {
				t.Errorf("cells (%d,%d)-(%d,%d): minterms %d,%d differ in %d bits",
					r, c, r, c+1, a, b, popcount(a^b))
			}
		}
	}
}

func TestKMapRejectsBadArity(t *testing.T) {
	tt := FromMinterms([]string{"A", "B"}, []int{1})
	if _, err := KMapScene(tt, "F", "K-map"); err == nil {
		t.Error("2-variable K-map accepted")
	}
}
