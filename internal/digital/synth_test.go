package digital

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSynthesizeRoundTrip(t *testing.T) {
	// Synthesize the classic "101" overlapping detector and verify the
	// gate-level machine agrees with the state table on a long stream.
	st, err := SequenceDetectorTable([]int{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := SynthesizeDFF(st)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{1, 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1}
	wantStates, wantOut, err := st.Step(0, inputs)
	if err != nil {
		t.Fatal(err)
	}
	gotStates, gotOut := fsm.Run(0, inputs)
	for i := range wantStates {
		if gotStates[i] != wantStates[i] {
			t.Fatalf("state diverges at %d: got %v want %v", i, gotStates, wantStates)
		}
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("output diverges at %d: got %v want %v", i, gotOut, wantOut)
		}
	}
}

func TestSequenceDetectorOutputs(t *testing.T) {
	st, err := SequenceDetectorTable([]int{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 1 1 0 1 1 0: detections at positions 3 and 6 (1-based).
	_, outs, err := st.Step(0, []int{1, 1, 0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 0, 0, 1}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outputs %v, want %v", outs, want)
		}
	}
}

func TestSequenceDetectorOverlap(t *testing.T) {
	// "11" detector with overlap: stream 1 1 1 fires at steps 2 and 3.
	st, err := SequenceDetectorTable([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, outs, err := st.Step(0, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outputs %v, want %v", outs, want)
		}
	}
}

func TestQuickSynthesisMatchesTable(t *testing.T) {
	// Property: for random state tables, the synthesized logic replays
	// identically to the behavioural table.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		st := &StateTable{NumStates: n, Next: make([][2]int, n), Output: make([][2]int, n)}
		for s := 0; s < n; s++ {
			for b := 0; b <= 1; b++ {
				st.Next[s][b] = r.Intn(n)
				st.Output[s][b] = r.Intn(2)
			}
		}
		fsm, err := SynthesizeDFF(st)
		if err != nil {
			return false
		}
		inputs := make([]int, 12)
		for i := range inputs {
			inputs[i] = r.Intn(2)
		}
		wantStates, wantOut, err := st.Step(0, inputs)
		if err != nil {
			return false
		}
		gotStates, gotOut := fsm.Run(0, inputs)
		for i := range wantStates {
			if gotStates[i] != wantStates[i] {
				return false
			}
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := SynthesizeDFF(&StateTable{NumStates: 1, Next: make([][2]int, 1)}); err == nil {
		t.Error("single-state machine accepted")
	}
	bad := &StateTable{NumStates: 2, Next: [][2]int{{0, 5}, {0, 0}}}
	if _, err := SynthesizeDFF(bad); err == nil {
		t.Error("invalid transition accepted")
	}
	if _, err := SequenceDetectorTable(nil); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := SequenceDetectorTable([]int{1, 2}); err == nil {
		t.Error("non-binary pattern accepted")
	}
}

func TestEquationsRender(t *testing.T) {
	st, _ := SequenceDetectorTable([]int{1, 0, 1})
	fsm, err := SynthesizeDFF(st)
	if err != nil {
		t.Fatal(err)
	}
	eqs := fsm.Equations()
	if len(eqs) != fsm.StateBits+1 {
		t.Fatalf("equations %v", eqs)
	}
	for _, e := range eqs {
		if e == "" {
			t.Error("empty equation")
		}
	}
}
