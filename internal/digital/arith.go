package digital

import "fmt"

// ToTwosComplement encodes a signed value in an n-bit two's-complement
// word, reporting overflow when the value does not fit.
func ToTwosComplement(value, bits int) (word int, err error) {
	min := -(1 << (bits - 1))
	max := 1<<(bits-1) - 1
	if value < min || value > max {
		return 0, fmt.Errorf("digital: %d does not fit in %d-bit two's complement", value, bits)
	}
	return value & (1<<bits - 1), nil
}

// FromTwosComplement decodes an n-bit two's-complement word to a signed
// value.
func FromTwosComplement(word, bits int) int {
	word &= 1<<bits - 1
	if word&(1<<(bits-1)) != 0 {
		return word - 1<<bits
	}
	return word
}

// AddResult describes an n-bit addition: the truncated sum word, the
// carry out of the MSB, and signed (two's-complement) overflow.
type AddResult struct {
	Sum      int
	CarryOut bool
	Overflow bool
}

// Add performs n-bit binary addition of two words (given as unsigned bit
// patterns) plus a carry-in, with full carry/overflow reporting — the
// ripple-carry adder behaviour Digital Design questions probe.
func Add(a, b, bits int, carryIn bool) AddResult {
	mask := 1<<bits - 1
	a &= mask
	b &= mask
	cin := 0
	if carryIn {
		cin = 1
	}
	full := a + b + cin
	sum := full & mask
	carryOut := full>>bits != 0
	// Signed overflow: carry into MSB differs from carry out of MSB.
	sa := a&(1<<(bits-1)) != 0
	sb := b&(1<<(bits-1)) != 0
	ss := sum&(1<<(bits-1)) != 0
	overflow := sa == sb && ss != sa
	return AddResult{Sum: sum, CarryOut: carryOut, Overflow: overflow}
}

// Sub computes a-b in n bits via two's complement (a + ~b + 1).
func Sub(a, b, bits int) AddResult {
	mask := 1<<bits - 1
	return Add(a, ^b&mask, bits, true)
}

// FullAdderOutputs returns (sum, carry) of a one-bit full adder.
func FullAdderOutputs(a, b, cin bool) (sum, carry bool) {
	sum = a != b != cin
	carry = a && b || cin && (a != b)
	return sum, carry
}

// BitString renders the low n bits of a word, MSB first.
func BitString(word, bits int) string {
	out := make([]byte, bits)
	for i := 0; i < bits; i++ {
		if word&(1<<(bits-1-i)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// ParseBits parses an MSB-first bit string to a word.
func ParseBits(s string) (int, error) {
	v := 0
	for _, r := range s {
		switch r {
		case '0':
			v <<= 1
		case '1':
			v = v<<1 | 1
		case ' ', '_':
			// grouping allowed
		default:
			return 0, fmt.Errorf("digital: bad bit %q in %q", r, s)
		}
	}
	return v, nil
}

// GrayEncode converts binary to Gray code.
func GrayEncode(v int) int { return v ^ v>>1 }

// GrayDecode converts Gray code back to binary.
func GrayDecode(g int) int {
	v := 0
	for g != 0 {
		v ^= g
		g >>= 1
	}
	return v
}

// Parity returns the even-parity bit of the low n bits of word (1 when
// the count of ones is odd, making the total even).
func Parity(word, bits int) int {
	p := 0
	for i := 0; i < bits; i++ {
		p ^= word >> i & 1
	}
	return p
}

// SignExtend widens an n-bit two's-complement word to m bits.
func SignExtend(word, fromBits, toBits int) int {
	return FromTwosComplement(word, fromBits) & (1<<toBits - 1)
}
