package main

import (
	"testing"
	"time"
)

// TestSnapshotDateUsesInjectedClock pins the clock seam and checks the
// bench snapshot's date field — the reason `now` is a variable rather
// than a direct time.Now call (and the one seam nodeterm whitelists).
func TestSnapshotDateUsesInjectedClock(t *testing.T) {
	defer func(orig func() time.Time) { now = orig }(now)
	now = func() time.Time {
		return time.Date(2025, time.March, 14, 23, 59, 0, 0, time.FixedZone("UTC+7", 7*3600))
	}
	// 23:59 at UTC+7 is 16:59 UTC the same day: the date must be the
	// UTC one, independent of the host zone.
	if got, want := snapshotDate(), "2025-03-14"; got != want {
		t.Fatalf("snapshotDate() = %q, want %q", got, want)
	}
}

// TestInjectedClockMeasuresElapsed drives the same pattern cmdBench
// uses (start := now(); ...; now().Sub(start)) against a scripted clock.
func TestInjectedClockMeasuresElapsed(t *testing.T) {
	defer func(orig func() time.Time) { now = orig }(now)
	base := time.Date(2025, time.March, 14, 9, 0, 0, 0, time.UTC)
	ticks := 0
	now = func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * 250 * time.Millisecond)
	}
	start := now()
	elapsed := now().Sub(start)
	if elapsed != 250*time.Millisecond {
		t.Fatalf("elapsed = %v, want 250ms", elapsed)
	}
}
