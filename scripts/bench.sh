#!/bin/sh
# Record the repo's perf trajectory: time the evaluation engine
# (Table II serial vs parallel, the cached resolution sweep, the raster
# kernel, bootstrap CI) and write a BENCH_N.json snapshot at the repo
# root.
#
# Usage: scripts/bench.sh [N]   (default N=1 -> BENCH_1.json)
set -e
cd "$(dirname "$0")/.."
N="${1:-1}"
# Preflight: the full tier-1 gate must be clean — a snapshot taken
# from a tree that fails vet/lint/tests would record numbers no one
# can reproduce.
sh scripts/verify.sh
# Smoke-run every benchmark once first: a benchmark that panics or
# b.Fatals must fail the script before a snapshot is written.
go test -run '^$' -bench=. -benchtime=1x ./...
go run ./cmd/chipvqa bench -o "BENCH_${N}.json"
# Post-run report: diff against the previous snapshot when one exists.
# Informational only — single-shot snapshot noise should not fail a
# recording run; scripts/benchdiff.sh is the gating entry point.
PREV="BENCH_$((N - 1)).json"
if [ -f "$PREV" ]; then
    sh scripts/benchdiff.sh "$PREV" "BENCH_${N}.json" ||
        echo "bench.sh: regressions vs $PREV reported above (informational)"
fi
