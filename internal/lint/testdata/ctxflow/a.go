// Corpus for the ctxflow analyzer: context parameters that are never
// consulted while the function spawns or blocks, and unbounded
// context.Background/TODO minting, next to the blessed idioms that must
// stay clean.
package ctxflowtest

import "context"

// ---- rule 1: ctx received but never consulted ----

func sendsWithoutCtx(ctx context.Context, ch chan int) { // want `\[ctxflow\] sendsWithoutCtx receives ctx but never consults it, yet it may block \(sends on a channel\)`
	ch <- 1
}

func spawnsWithoutCtx(ctx context.Context, done chan struct{}) { // want `spawnsWithoutCtx receives ctx but never consults it, yet it spawns goroutines`
	go func() {
		done <- struct{}{}
	}()
}

// helperBlock gives transitive propagation something to find: it has no
// ctx of its own, so rule 1 does not apply here.
func helperBlock(ch chan int) int {
	return <-ch
}

func blocksTransitively(ctx context.Context, ch chan int) int { // want `blocksTransitively receives ctx but never consults it, yet it may block \(calls ctxflowtest\.helperBlock\)`
	return helperBlock(ch)
}

// ---- rule 1 non-firing ----

// consultsDone selects on ctx.Done, so the blocking is ctx-bounded.
func consultsDone(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// forwardsCtx hands ctx to the callee; consultation happens there.
func forwardsCtx(ctx context.Context, ch chan int) int {
	return consultsDone(ctx, ch)
}

// checksErr polls ctx.Err before blocking.
func checksErr(ctx context.Context, ch chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	return <-ch
}

// underscoreCtx opted out explicitly: the signature keeps interface
// compatibility, and the blank name documents the non-use.
func underscoreCtx(_ context.Context, ch chan int) int {
	return <-ch
}

// pureWithCtx never spawns or blocks, so an unused ctx is harmless.
func pureWithCtx(ctx context.Context, a, b int) int {
	return a + b
}

// ---- rule 2: Background/TODO minting ----

func mintsBackground(ch chan int) {
	ctx := context.Background() // want `context\.Background\(\) mints an unbounded context outside main/tests`
	consultsDone(ctx, ch)
}

func mintsTODO(ch chan int) {
	ctx := context.TODO() // want `context\.TODO\(\) mints an unbounded context outside main/tests`
	consultsDone(ctx, ch)
}

// ---- rule 2 non-firing ----

func runContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// wrapsContextVariant is the blessed non-Context-wrapping-Context idiom:
// Background passed directly to a *Context callee.
func wrapsContextVariant(n int) int {
	return runContext(context.Background(), n)
}

// defaultsNilCtx is the blessed nil-guard default at an API boundary.
func defaultsNilCtx(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return runContext(ctx, n)
}

// blessedSeam is on the ctxflowSeams allow list, pinning the seam
// mechanism: entry points with no caller context may mint one.
func blessedSeam(n int) int {
	ctx := context.Background()
	return runContext(ctx, n)
}

func suppressedMint(ch chan int) {
	//lint:ignore ctxflow corpus case demonstrating an explained suppression
	ctx := context.Background()
	consultsDone(ctx, ch)
}
