package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak flags goroutine spawn sites with no visible completion join.
// Every `go` statement in the engine must leave a way for the spawner
// (or a context) to learn the goroutine finished: a sync.WaitGroup
// Done, a send on or close of a channel, or a ctx.Done()-bounded wait.
// A goroutine with none of those outlives its caller silently — under
// the serving roadmap (ROADMAP item 1) that is a per-request leak.
//
// The check is syntactic over the spawned body (plus, for `go f(...)`,
// the argument list): passing a WaitGroup, channel, or context into
// the spawned function counts as a join, because the completion
// signal's shape then lives in the callee.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "a go statement must join back: WaitGroup.Done, a channel send/close, or a ctx.Done()-bounded body; " +
		"otherwise the goroutine's completion is unobservable",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) {
	info := pass.Pkg.Info
	if info == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, info, g)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, info *types.Info, g *ast.GoStmt) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if !bodyJoins(info, lit.Body) {
			pass.Reportf(g.Pos(),
				"goroutine has no completion join: no WaitGroup Done, no channel send or close, no ctx.Done()-bounded wait; its exit is unobservable")
		}
		return
	}
	// go f(args...): the join, if any, must travel through the
	// arguments (or the receiver's own state, which we cannot see —
	// passing a WaitGroup/channel/context is the visible contract).
	for _, arg := range g.Call.Args {
		if t := info.TypeOf(arg); t != nil && joinCarrier(t) {
			return
		}
	}
	if recvCarriesJoin(info, g.Call) {
		return
	}
	pass.Reportf(g.Pos(),
		"go %s(...) passes no WaitGroup, channel, or context; the spawned goroutine cannot signal completion",
		exprString(g.Call.Fun))
}

// bodyJoins reports whether a spawned function literal body contains at
// least one join signal: a WaitGroup.Done call, a channel send, a
// close(), or a receive/select touching ctx.Done().
func bodyJoins(info *types.Info, body ast.Node) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joins = true
		case *ast.CallExpr:
			if isBuiltin(info, n, "close") {
				joins = true
				break
			}
			fn := calleeOf(info, n)
			switch {
			case isMethodOn(fn, "sync", "WaitGroup", "Done"):
				joins = true
			case isMethodOn(fn, "context", "Context", "Done"):
				joins = true
			}
		}
		return !joins
	})
	return joins
}

// joinCarrier reports whether a value of type t can carry a completion
// signal into a spawned function: channels, *sync.WaitGroup, and
// context.Context qualify.
func joinCarrier(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	return false
}

// recvCarriesJoin reports whether `go x.M(...)` invokes a method whose
// receiver type contains a join carrier field (a WaitGroup, channel, or
// context stored in the struct) — the pipeline-object idiom, where the
// struct itself is the completion contract.
func recvCarriesJoin(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if joinCarrier(ft) {
			return true
		}
		// A WaitGroup held by value is as good as a pointer to one.
		if named, ok := ft.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	return false
}
