package digital

import "fmt"

// FlipFlopKind enumerates the classic flip-flop types.
type FlipFlopKind int

// Flip-flop kinds.
const (
	FFD FlipFlopKind = iota
	FFT
	FFSR
	FFJK
)

// String names the flip-flop kind.
func (k FlipFlopKind) String() string {
	switch k {
	case FFD:
		return "D"
	case FFT:
		return "T"
	case FFSR:
		return "SR"
	case FFJK:
		return "JK"
	default:
		return fmt.Sprintf("FlipFlopKind(%d)", int(k))
	}
}

// NextState computes a flip-flop's next state from its current state and
// excitation inputs (a for D/T/S/J, b for R/K; b ignored for D and T).
// The SR combination S=R=1 is invalid and reported as an error.
func NextState(kind FlipFlopKind, q, a, b bool) (bool, error) {
	switch kind {
	case FFD:
		return a, nil
	case FFT:
		return q != a, nil
	case FFSR:
		if a && b {
			return false, fmt.Errorf("digital: SR flip-flop with S=R=1 is invalid")
		}
		if a {
			return true, nil
		}
		if b {
			return false, nil
		}
		return q, nil
	case FFJK:
		switch {
		case a && b:
			return !q, nil
		case a:
			return true, nil
		case b:
			return false, nil
		default:
			return q, nil
		}
	default:
		return false, fmt.Errorf("digital: unknown flip-flop kind %d", int(kind))
	}
}

// CharacteristicEquation returns the textbook characteristic equation of
// the flip-flop kind, with Q the present state.
func CharacteristicEquation(kind FlipFlopKind) string {
	switch kind {
	case FFD:
		return "Q+ = D"
	case FFT:
		return "Q+ = T^Q"
	case FFSR:
		return "Q+ = S + R'Q"
	case FFJK:
		return "Q+ = JQ' + K'Q"
	default:
		return ""
	}
}

// Excitation returns the required excitation inputs (a, b) to move a
// flip-flop from state q to state qn. For D and T, b is always false and
// unused. For SR and JK, don't-care positions are resolved to false (the
// minimal-drive convention used when deriving excitation tables).
func Excitation(kind FlipFlopKind, q, qn bool) (a, b bool) {
	switch kind {
	case FFD:
		return qn, false
	case FFT:
		return q != qn, false
	case FFSR:
		switch {
		case !q && qn:
			return true, false // set
		case q && !qn:
			return false, true // reset
		default:
			return false, false // hold
		}
	case FFJK:
		switch {
		case !q && qn:
			return true, false // J=1, K=x -> 0
		case q && !qn:
			return false, true // J=x -> 0, K=1
		default:
			return false, false
		}
	default:
		return false, false
	}
}

// Counter simulates an n-bit synchronous counter built from T flip-flops
// with the standard carry chain (bit i toggles when all lower bits are 1),
// returning the state sequence for the requested number of clock cycles
// starting from start.
func Counter(bits int, start int, cycles int) []int {
	mask := 1<<bits - 1
	out := make([]int, 0, cycles+1)
	s := start & mask
	out = append(out, s)
	for c := 0; c < cycles; c++ {
		s = (s + 1) & mask
		out = append(out, s)
	}
	return out
}

// RingCounter returns the state sequence of an n-bit ring counter
// initialised with a single one in bit 0 (bit 0 printed as the MSB of the
// state word).
func RingCounter(bits int, cycles int) []int {
	out := make([]int, 0, cycles+1)
	s := 1 << (bits - 1)
	out = append(out, s)
	for c := 0; c < cycles; c++ {
		// Rotate right within the field.
		lsb := s & 1
		s = s>>1 | lsb<<(bits-1)
		out = append(out, s)
	}
	return out
}

// JohnsonCounter returns the state sequence of an n-bit Johnson (twisted
// ring) counter starting from all zeros.
func JohnsonCounter(bits int, cycles int) []int {
	out := make([]int, 0, cycles+1)
	s := 0
	out = append(out, s)
	for c := 0; c < cycles; c++ {
		msbComplement := 1 &^ (s & 1)
		s = s>>1 | msbComplement<<(bits-1)
		out = append(out, s)
	}
	return out
}

// StateTable is a Mealy/Moore state table over one input bit: for each
// present state and input value it gives the next state (and output for
// Mealy machines).
type StateTable struct {
	NumStates int
	Next      [][2]int // Next[s][in]
	Output    [][2]int // Output[s][in]; nil for Moore tables using MooreOut
	MooreOut  []int
}

// Step runs the machine from state s on the input sequence, returning
// the visited state sequence (including the start) and output sequence.
func (st *StateTable) Step(s int, inputs []int) (states, outputs []int, err error) {
	states = append(states, s)
	for _, in := range inputs {
		if s < 0 || s >= st.NumStates || in < 0 || in > 1 {
			return nil, nil, fmt.Errorf("digital: state %d / input %d out of range", s, in)
		}
		if st.Output != nil {
			outputs = append(outputs, st.Output[s][in])
		} else if st.MooreOut != nil {
			outputs = append(outputs, st.MooreOut[s])
		}
		s = st.Next[s][in]
		states = append(states, s)
	}
	return states, outputs, nil
}
