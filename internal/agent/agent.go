// Package agent implements the §IV-C agent study: a text-only "chip
// designer" model (GPT-4-Turbo in the paper) that cannot see the image
// and instead interrogates a vision tool (GPT-4o) which describes the
// visual content in text. The designer's stronger text reasoning wins
// questions the direct VLM missed, but description-lossy visual kinds
// (photograph-like figures and structures — common in the Manufacture
// category) lose information in the text relay, reproducing both Table
// III's overall gain and its Manufacture regression.
package agent

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/visual"
	"repro/internal/vlm"
)

// ToolCall is one round of the designer-tool conversation.
type ToolCall struct {
	Request  string
	Response string
}

// Config tunes the agent mechanism; Default() is calibrated so the
// overall Pass@1 matches Table III.
type Config struct {
	// DesignerBoostMC/SA is the probability that the designer's stronger
	// text reasoning solves a question the direct VLM missed, given a
	// faithful tool description (with and without answer options).
	DesignerBoostMC float64
	DesignerBoostSA float64
	// MaxRounds bounds the designer-tool interaction loop.
	MaxRounds int
}

// Default returns the calibrated configuration.
func Default() Config {
	return Config{DesignerBoostMC: 0.21, DesignerBoostSA: 0.04, MaxRounds: 3}
}

// descriptionFidelity is the probability that the vision tool's text
// description preserves every detail the question needs, per visual
// kind. Schematic-like content verbalises well; photograph-like content
// (figures, structures) does not — the mechanism behind the paper's
// observed Manufacture regression.
func descriptionFidelity(k visual.Kind) float64 {
	switch k {
	case visual.KindFigure:
		return 0.50
	case visual.KindStructure:
		return 0.60
	case visual.KindMixed:
		return 0.70
	case visual.KindCurve:
		return 0.80
	case visual.KindLayout:
		return 0.85
	default:
		return 0.97
	}
}

// Agent is the designer+tool system; it implements eval.Model so the
// standard runner produces Table III.
type Agent struct {
	DesignerName string
	Tool         *vlm.SimulatedVLM
	Cfg          Config
}

var _ eval.Model = (*Agent)(nil)

// New builds the paper's configuration: a GPT-4-Turbo designer using the
// given vision tool (GPT-4o in the paper).
func New(tool *vlm.SimulatedVLM) *Agent {
	return &Agent{DesignerName: "GPT-4-Turbo", Tool: tool, Cfg: Default()}
}

// Name implements eval.Model.
func (a *Agent) Name() string {
	return fmt.Sprintf("Agent(%s+%s)", a.DesignerName, a.Tool.Name())
}

// Answer implements eval.Model by running the designer-tool loop.
func (a *Agent) Answer(q *dataset.Question, opts eval.InferenceOptions) string {
	answer, _ := a.Run(q, opts)
	return answer
}

// Run executes the interaction loop and returns the final answer plus
// the tool-call transcript — the paper's "interactive process repeats
// until the chip designer arrives at an answer".
func (a *Agent) Run(q *dataset.Question, opts eval.InferenceOptions) (string, []ToolCall) {
	var transcript []ToolCall

	// Round 1: the designer always asks for an overall description.
	faithful := rng.Bernoulli(a.fidelity(q), "agent", q.ID, "describe", fmt.Sprint(q.Type))
	desc := a.describe(q, 0.8)
	transcript = append(transcript, ToolCall{
		Request:  "Describe the figure attached to this question.",
		Response: desc,
	})

	// Further rounds: the designer drills into critical details; a
	// faithful tool run resolves them, an unfaithful one keeps missing
	// the load-bearing annotation no matter how it is asked.
	rounds := 1 + rng.Pick(a.Cfg.MaxRounds, "agent", q.ID, "rounds")
	for r := 1; r < rounds; r++ {
		req := "Read out the annotated values and labels relevant to the question."
		resp := a.describe(q, 0.95)
		if !faithful {
			resp = "The annotations are not clearly identifiable in the image."
		}
		transcript = append(transcript, ToolCall{Request: req, Response: resp})
	}

	// The direct VLM's outcome on this question anchors the decision.
	baseCorrect := eval.Judge{}.Correct(q, a.Tool.Answer(q, opts))

	switch {
	case baseCorrect && !faithful:
		// The tool could have answered directly, but the designer only
		// sees the lossy description and goes wrong.
		return a.wrongAnswer(q), transcript
	case baseCorrect:
		return a.goldenAnswer(q), transcript
	case !faithful:
		return a.wrongAnswer(q), transcript
	default:
		// Faithful description of a question the direct VLM missed: the
		// designer's stronger text-side reasoning sometimes recovers it —
		// but only for content that verbalises losslessly (schematics,
		// tables, equations); reading exact quantities out of
		// photograph-like figures through a text relay does not recover
		// questions the VLM itself could not do.
		if a.fidelity(q) < 0.9 {
			return a.wrongAnswer(q), transcript
		}
		boost := a.Cfg.DesignerBoostSA
		if q.Type == dataset.MultipleChoice {
			boost = a.Cfg.DesignerBoostMC
		}
		if rng.Bernoulli(boost, "agent", q.ID, "boost", fmt.Sprint(q.Type)) {
			return a.goldenAnswer(q), transcript
		}
		return a.wrongAnswer(q), transcript
	}
}

func (a *Agent) fidelity(q *dataset.Question) float64 {
	if q.Visual == nil {
		return 1
	}
	return descriptionFidelity(q.Visual.Kind)
}

func (a *Agent) describe(q *dataset.Question, detail float64) string {
	if q.Visual == nil {
		return "No figure is attached."
	}
	d := q.Visual.Describe(detail)
	// Clip very long scene dumps the way a chat tool response would.
	if len(d) > 1200 {
		d = d[:1200] + " ..."
	}
	return d
}

func (a *Agent) goldenAnswer(q *dataset.Question) string {
	if q.Type == dataset.MultipleChoice {
		return fmt.Sprintf("%s) %s", dataset.ChoiceLetter(q.Golden.Choice), q.Choices[q.Golden.Choice])
	}
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		if q.Golden.Text != "" {
			return q.Golden.Text
		}
		return fmt.Sprintf("%g %s", q.Golden.Number, q.Golden.Unit)
	default:
		return q.Golden.Text
	}
}

func (a *Agent) wrongAnswer(q *dataset.Question) string {
	if q.Type == dataset.MultipleChoice {
		off := 1 + rng.Pick(3, "agent", q.ID, "wrong")
		return dataset.ChoiceLetter((q.Golden.Choice + off) % 4)
	}
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		return fmt.Sprintf("%g %s", q.Golden.Number*2.9+1, q.Golden.Unit)
	case dataset.AnswerExpression:
		return "F = A'B + C"
	default:
		return "based on the description, a conventional structure of this type"
	}
}

// FormatTranscript renders a transcript for display.
func FormatTranscript(calls []ToolCall) string {
	var sb strings.Builder
	for i, c := range calls {
		sb.WriteString(fmt.Sprintf("round %d designer> %s\n", i+1, c.Request))
		sb.WriteString(fmt.Sprintf("round %d tool>     %s\n", i+1, firstLine(c.Response)))
	}
	return sb.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
