package adaptive

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
)

// BankItem pairs one question with its calibrated 2PL parameters.
type BankItem struct {
	Question *dataset.Question
	Params   ItemParams
}

// Bank builds the item bank for a benchmark from calibrated parameters,
// pairing questions and params by QuestionID; every question must have
// parameters and vice versa.
func Bank(b *dataset.Benchmark, params []ItemParams) ([]BankItem, error) {
	byID := make(map[string]ItemParams, len(params))
	for _, p := range params {
		if _, dup := byID[p.QuestionID]; dup {
			return nil, fmt.Errorf("adaptive: duplicate item params for %q", p.QuestionID)
		}
		byID[p.QuestionID] = p
	}
	if len(byID) != len(b.Questions) {
		return nil, fmt.Errorf("adaptive: %d item params for %d questions", len(byID), len(b.Questions))
	}
	out := make([]BankItem, len(b.Questions))
	for i, q := range b.Questions {
		p, ok := byID[q.ID]
		if !ok {
			return nil, fmt.Errorf("adaptive: no item params for question %q", q.ID)
		}
		out[i] = BankItem{Question: q, Params: p}
	}
	return out, nil
}

// Config tunes a Tournament. The zero value picks conservative
// defaults; Seed is the run identity every tie-break draw is keyed by
// and should be set (it defaults to "adaptive").
type Config struct {
	// Seed feeds every internal/rng tie-break stream, making distinct
	// adaptive runs over the same bank reproducibly different.
	Seed string
	// MinQuestions a model must answer before any early stop (default
	// 6, clamped to MaxQuestions).
	MinQuestions int
	// MaxQuestions caps one model's chain (default len(bank): no
	// per-model cap beyond the bank — TotalBudget is the binding
	// constraint and reallocates freely across models).
	MaxQuestions int
	// TotalBudget caps the whole tournament's issued questions (default
	// models*len(bank)/3 — a third of the full grid). Models that
	// early-stop return their unused share to the pool, so contested
	// near-ties get extra depth exactly where ranking needs it.
	TotalBudget int
	// Z is the half-width multiplier of the ability confidence
	// interval used by the separation stop (default 1.96).
	Z float64
	// SEStop freezes a model once its posterior standard error falls
	// below this (default 0.15). It is a precision backstop: separation
	// and the budget pool are the primary stops.
	SEStop float64
}

func (c Config) withDefaults(bankSize, nModels int) Config {
	if c.Seed == "" {
		c.Seed = "adaptive"
	}
	if c.MaxQuestions <= 0 || c.MaxQuestions > bankSize {
		c.MaxQuestions = bankSize
	}
	if c.TotalBudget <= 0 {
		c.TotalBudget = nModels * bankSize / 3
	}
	if c.TotalBudget < nModels {
		c.TotalBudget = nModels
	}
	if c.MinQuestions <= 0 {
		c.MinQuestions = 6
	}
	if c.MinQuestions > c.MaxQuestions {
		c.MinQuestions = c.MaxQuestions
	}
	if c.Z <= 0 {
		c.Z = 1.96
	}
	if c.SEStop <= 0 {
		c.SEStop = 0.15
	}
	return c
}

// seat is one model's tournament state.
type seat struct {
	model  eval.Model
	est    *Estimator
	asked  []bool // by bank index
	nAsked int
	frozen bool
	reason string
}

// Tournament runs an adaptive evaluation over a calibrated item bank:
// it implements eval.ItemScheduler, so eval.EvaluateAdaptive plugs it
// straight into the staged pipeline. Each model's question chain is
// sequential (the next item depends on the model's own judged history),
// and distinct models' chains interleave freely — the pipeline
// parallelises across models while the reorder buffer keeps the global
// event order canonical.
//
// Determinism: Seq numbers are assigned when an item is issued, items
// are issued either at construction (item 0 of every model, in model
// order) or inside Record (which the pipeline calls strictly in Seq
// order), and selection depends only on recorded outcomes and
// rng-keyed item identities. The whole schedule is therefore a pure
// function of (models, bank, Config) — workers 1 and workers 8 produce
// the same transcript byte for byte.
type Tournament struct {
	mu          sync.Mutex
	bank        []BankItem
	itemIndex   map[string]int // QuestionID -> bank index
	seatIndex   map[string]int // model name -> seat index
	seats       []*seat
	cfg         Config
	ready       []eval.Event // issued, not yet claimed by a worker
	nextSeq     int
	outstanding int // claimed, not yet recorded
	issuedTotal int
}

// NewTournament validates the bank and models and seeds item 0 for
// every model.
func NewTournament(models []eval.Model, bank []BankItem, cfg Config) (*Tournament, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("adaptive: no models")
	}
	if len(bank) == 0 {
		return nil, fmt.Errorf("adaptive: empty item bank")
	}
	t := &Tournament{
		bank:      bank,
		itemIndex: make(map[string]int, len(bank)),
		seatIndex: make(map[string]int, len(models)),
		cfg:       cfg.withDefaults(len(bank), len(models)),
	}
	for i, it := range bank {
		if it.Question == nil {
			return nil, fmt.Errorf("adaptive: bank item %d has no question", i)
		}
		if it.Question.ID != it.Params.QuestionID {
			return nil, fmt.Errorf("adaptive: bank item %d pairs question %q with params for %q",
				i, it.Question.ID, it.Params.QuestionID)
		}
		if _, dup := t.itemIndex[it.Question.ID]; dup {
			return nil, fmt.Errorf("adaptive: duplicate bank question %q", it.Question.ID)
		}
		t.itemIndex[it.Question.ID] = i
	}
	for _, m := range models {
		name := m.Name()
		if _, dup := t.seatIndex[name]; dup {
			return nil, fmt.Errorf("adaptive: duplicate model %q", name)
		}
		t.seatIndex[name] = len(t.seats)
		t.seats = append(t.seats, &seat{
			model: m,
			est:   NewEstimator(),
			asked: make([]bool, len(bank)),
		})
	}
	for si := range t.seats {
		t.issue(si)
	}
	return t, nil
}

// SizeHint bounds useful pipeline parallelism: each model advances one
// question at a time, so at most one in-flight item per seat.
func (t *Tournament) SizeHint() int { return len(t.seats) }

// Next implements eval.ItemScheduler.
func (t *Tournament) Next() (eval.Event, eval.ScheduleState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ready) > 0 {
		ev := t.ready[0]
		t.ready = t.ready[1:]
		t.outstanding++
		return ev, eval.ScheduleReady
	}
	if t.outstanding == 0 {
		return eval.Event{}, eval.ScheduleDone
	}
	return eval.Event{}, eval.ScheduleWait
}

// Record implements eval.ItemScheduler: fold the judged outcome into
// the model's posterior, annotate the event with the updated ability,
// apply the stopping rules, and issue the model's next item when it
// stays live. The pipeline calls this strictly in Seq order, so every
// piece of tournament state evolves along the canonical event order.
func (t *Tournament) Record(ev *eval.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.outstanding--
	si, ok := t.seatIndex[ev.Model.Name()]
	if !ok {
		return
	}
	s := t.seats[si]
	bi, ok := t.itemIndex[ev.Question.ID]
	if !ok {
		return
	}
	s.est.Observe(t.bank[bi].Params, ev.Correct)
	ability, se := s.est.Estimate()
	ev.Adaptive = true
	ev.Ability = ability
	ev.AbilitySE = se
	switch {
	case s.nAsked >= len(t.bank):
		t.freeze(s, "exhausted")
	case s.nAsked >= t.cfg.MaxQuestions || t.issuedTotal >= t.cfg.TotalBudget:
		t.freeze(s, "budget")
	case s.nAsked < t.cfg.MinQuestions:
	case se <= t.cfg.SEStop:
		t.freeze(s, "precise")
	case t.separated(si):
		t.freeze(s, "separated")
	}
	if s.frozen {
		ev.StopReason = s.reason
		return
	}
	t.issue(si)
}

// freeze marks a seat terminal with its stop reason.
func (t *Tournament) freeze(s *seat, reason string) {
	s.frozen = true
	s.reason = reason
}

// separated reports whether the seat's Z-interval around its ability
// is disjoint from every other seat's — its rank can no longer cross
// any competitor's at the configured confidence, so asking it more
// questions cannot change the tournament ordering.
func (t *Tournament) separated(si int) bool {
	lo, hi := t.interval(si)
	for sj := range t.seats {
		if sj == si {
			continue
		}
		lo2, hi2 := t.interval(sj)
		if hi >= lo2 && hi2 >= lo {
			return false
		}
	}
	return true
}

func (t *Tournament) interval(si int) (lo, hi float64) {
	ability, se := t.seats[si].est.Estimate()
	return ability - t.cfg.Z*se, ability + t.cfg.Z*se
}

// issue selects the seat's next item — the unasked bank item with
// maximum Fisher information at the current ability estimate — and
// appends it to the ready queue with the next Seq. Information ties
// break on an rng stream keyed by (seed, question identity) — never by
// bank position, and deliberately not by model, so models with equal
// ability estimates walk identical item chains and near-tied models are
// compared on (mostly) common items rather than independent subsets.
// Hash collisions fall back to QuestionID order, so the choice is
// total, deterministic, and stable under any reordering of the bank
// slice... the §6 invariant for dynamic sources.
func (t *Tournament) issue(si int) {
	s := t.seats[si]
	ability, _ := s.est.Estimate()
	best := -1
	var bestInfo float64
	var bestKey uint64
	for bi := range t.bank {
		if s.asked[bi] {
			continue
		}
		info := t.bank[bi].Params.Information(ability)
		if best >= 0 && info < bestInfo {
			continue
		}
		// NewHasher is bit-compatible with rng.Seed but stays off the
		// hash.Hash interface, so selection cannot block under t.mu.
		key := uint64(rng.NewHasher("adaptive-select", t.cfg.Seed, t.bank[bi].Params.QuestionID))
		switch {
		case best < 0 || info > bestInfo:
		case key < bestKey:
		case key == bestKey && t.bank[bi].Params.QuestionID < t.bank[best].Params.QuestionID:
		default:
			continue
		}
		best, bestInfo, bestKey = bi, info, key
	}
	if best < 0 {
		t.freeze(s, "exhausted")
		return
	}
	s.asked[best] = true
	s.nAsked++
	t.issuedTotal++
	t.ready = append(t.ready, eval.Event{
		Seq:      t.nextSeq,
		Model:    s.model,
		Question: t.bank[best].Question,
	})
	t.nextSeq++
}

// Standing is one model's final (or current) tournament state.
type Standing struct {
	Model      string
	Ability    float64
	SE         float64
	Asked      int
	StopReason string
}

// Standings returns per-model state in construction (model) order.
// After the pipeline drains, StopReason is non-empty for every model;
// on a cancelled run it reflects the recorded prefix.
func (t *Tournament) Standings() []Standing {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Standing, len(t.seats))
	for i, s := range t.seats {
		ability, se := s.est.Estimate()
		out[i] = Standing{
			Model:      s.model.Name(),
			Ability:    ability,
			SE:         se,
			Asked:      s.nAsked,
			StopReason: s.reason,
		}
	}
	return out
}

// QuestionsAsked is the total number of items issued across all models.
func (t *Tournament) QuestionsAsked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.issuedTotal
}

// Abilities returns the ability estimates in model order — the score
// vector RankAgreement compares against a full-grid reference.
func (t *Tournament) Abilities() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.seats))
	for i, s := range t.seats {
		out[i], _ = s.est.Estimate()
	}
	return out
}
