package digital

import "fmt"

// SynthesizedFSM is the result of classical sequential synthesis: one
// minimised D-flip-flop input equation per state bit plus the output
// equation, over variables named Q0..Qk-1 (state, Q0 = LSB) and X (the
// input). This is the full textbook flow behind the benchmark's
// state-table questions: encode states, derive excitation tables,
// minimise with Quine–McCluskey.
type SynthesizedFSM struct {
	StateBits int
	// Next[i] drives D of state bit i.
	Next []Expr
	// Output is the Mealy output equation (nil when the table has no
	// outputs).
	Output Expr
	// Vars is the variable order shared by all equations:
	// [Qk-1, ..., Q0, X].
	Vars []string
}

// SynthesizeDFF performs D-flip-flop synthesis of a (Mealy) state table
// with a one-bit input, using the natural binary state encoding
// (state s -> bits of s). Unused state codes become don't-cares, so the
// minimiser exploits them exactly as the hand method does.
func SynthesizeDFF(st *StateTable) (*SynthesizedFSM, error) {
	if st.NumStates < 2 {
		return nil, fmt.Errorf("digital: need at least 2 states, got %d", st.NumStates)
	}
	if len(st.Next) != st.NumStates {
		return nil, fmt.Errorf("digital: next-state table has %d rows, want %d", len(st.Next), st.NumStates)
	}
	bits := 1
	for 1<<bits < st.NumStates {
		bits++
	}
	// Variable order: Q(bits-1) .. Q0, X — MSB first to match the
	// TruthTable convention.
	vars := make([]string, 0, bits+1)
	for i := bits - 1; i >= 0; i-- {
		vars = append(vars, fmt.Sprintf("Q%d", i))
	}
	vars = append(vars, "X")

	size := 1 << (bits + 1)
	var dontCares []int
	onSets := make([][]int, bits)
	var outOn []int
	for m := 0; m < size; m++ {
		state := m >> 1
		input := m & 1
		if state >= st.NumStates {
			dontCares = append(dontCares, m)
			continue
		}
		next := st.Next[state][input]
		if next < 0 || next >= st.NumStates {
			return nil, fmt.Errorf("digital: state %d input %d transitions to invalid state %d",
				state, input, next)
		}
		for b := 0; b < bits; b++ {
			if next&(1<<b) != 0 {
				onSets[b] = append(onSets[b], m)
			}
		}
		if st.Output != nil && st.Output[state][input] != 0 {
			outOn = append(outOn, m)
		}
	}
	fsm := &SynthesizedFSM{StateBits: bits, Vars: vars, Next: make([]Expr, bits)}
	for b := 0; b < bits; b++ {
		fsm.Next[b] = Minimize(vars, onSets[b], dontCares)
	}
	if st.Output != nil {
		fsm.Output = Minimize(vars, outOn, dontCares)
	}
	return fsm, nil
}

// Step runs one clock of the synthesized machine: given the current
// state code and input bit, it evaluates the D equations (and output).
func (f *SynthesizedFSM) Step(state, input int) (next int, output int) {
	assign := make(map[string]bool, f.StateBits+1)
	for i := 0; i < f.StateBits; i++ {
		assign[fmt.Sprintf("Q%d", i)] = state&(1<<i) != 0
	}
	assign["X"] = input != 0
	for b, e := range f.Next {
		if e.Eval(assign) {
			next |= 1 << b
		}
	}
	if f.Output != nil && f.Output.Eval(assign) {
		output = 1
	}
	return next, output
}

// Run replays an input sequence from a start state, returning the
// visited states (including the start) and outputs — directly comparable
// to StateTable.Step.
func (f *SynthesizedFSM) Run(start int, inputs []int) (states, outputs []int) {
	states = append(states, start)
	s := start
	for _, in := range inputs {
		var out int
		s, out = f.Step(s, in)
		states = append(states, s)
		outputs = append(outputs, out)
	}
	return states, outputs
}

// Equations renders the synthesis result as the textbook equation list.
func (f *SynthesizedFSM) Equations() []string {
	out := make([]string, 0, f.StateBits+1)
	for b := f.StateBits - 1; b >= 0; b-- {
		out = append(out, fmt.Sprintf("D%d = %s", b, f.Next[b].String()))
	}
	if f.Output != nil {
		out = append(out, "Z = "+f.Output.String())
	}
	return out
}

// SequenceDetectorTable builds the classic overlapping sequence-detector
// Mealy machine for a binary pattern: the machine outputs 1 when the
// last len(pattern) inputs equal the pattern. States track the longest
// matched prefix.
func SequenceDetectorTable(pattern []int) (*StateTable, error) {
	n := len(pattern)
	if n < 1 {
		return nil, fmt.Errorf("digital: empty pattern")
	}
	for _, b := range pattern {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("digital: pattern bits must be 0/1")
		}
	}
	st := &StateTable{
		NumStates: n,
		Next:      make([][2]int, n),
		Output:    make([][2]int, n),
	}
	// nextPrefix(s, bit): longest prefix of pattern that is a suffix of
	// (matched prefix of length s) + bit.
	nextPrefix := func(s, bit int) int {
		seq := append(append([]int{}, pattern[:s]...), bit)
		for l := min(n, len(seq)); l > 0; l-- {
			match := true
			for i := 0; i < l; i++ {
				if seq[len(seq)-l+i] != pattern[i] {
					match = false
					break
				}
			}
			if match {
				if l == n {
					// Full match: overlap state is the longest proper
					// prefix that is also a suffix.
					continue
				}
				return l
			}
		}
		return 0
	}
	for s := 0; s < n; s++ {
		for bit := 0; bit <= 1; bit++ {
			if s == n-1 && bit == pattern[n-1] {
				st.Output[s][bit] = 1
			}
			st.Next[s][bit] = nextPrefix(s, bit)
		}
	}
	return st, nil
}
