//go:build !race

// Allocation pins for the hot paths of DESIGN.md §12. The race
// detector instruments allocations, so these run only in the plain
// test pass; the race pass still exercises the same code through the
// functional tests.

package eval

import (
	"testing"

	"repro/internal/dataset"
)

// TestNormalizeZeroAlloc pins the canonical-input fast path: Normalize
// must return already-normalised strings unchanged without allocating.
func TestNormalizeZeroAlloc(t *testing.T) {
	inputs := []string{
		"",
		"full adder",
		"clock tree synthesis",
		"2200 ohm",
		"a'b + ab'",
	}
	for _, in := range inputs {
		in := in
		if got := Normalize(in); got != in {
			t.Fatalf("Normalize(%q) = %q, not canonical", in, got)
		}
		var sink string
		allocs := testing.AllocsPerRun(100, func() {
			sink = Normalize(in)
		})
		if allocs != 0 {
			t.Errorf("Normalize(%q): %v allocs/op, want 0", in, allocs)
		}
		_ = sink
	}
}

// TestParseNumberZeroAlloc pins ParseNumber — including the SI-prefix
// unit resolution with uppercase spellings — at zero steady-state
// allocations.
func TestParseNumberZeroAlloc(t *testing.T) {
	inputs := []string{
		"2.2 kOhm",
		"2 Mrad/s",
		"625 MHz",
		"-10 V/V",
		"about 43 nm of silicon",
		"1.5e3 Hz",
		"answer: 7",
	}
	for _, in := range inputs {
		in := in
		if _, _, ok := ParseNumber(in); !ok {
			t.Fatalf("ParseNumber(%q) found no number", in)
		}
		allocs := testing.AllocsPerRun(100, func() {
			ParseNumber(in)
		})
		if allocs != 0 {
			t.Errorf("ParseNumber(%q): %v allocs/op, want 0", in, allocs)
		}
	}
}

// TestJudgeZeroAlloc pins the full judge dispatch for all four answer
// kinds at zero steady-state allocations. One warm-up call per case
// grows the pooled Scratch buffers and populates the expression memo —
// the steady state every evaluation loop after the first reaches.
func TestJudgeZeroAlloc(t *testing.T) {
	j := Judge{}
	cases := []struct {
		name     string
		q        *dataset.Question
		response string
	}{
		{"choice-letter", mcQuestion(), "answer: b"},
		{"choice-content", mcQuestion(), "it is a full adder circuit"},
		{"number", &dataset.Question{
			Golden: dataset.Answer{Kind: dataset.AnswerNumber, Number: 2200, Unit: "Ohm", Tolerance: 0.02},
		}, "2.2 kOhm"},
		{"expression", &dataset.Question{
			Golden: dataset.Answer{Kind: dataset.AnswerExpression, Text: "F = A'B + AB'"},
		}, "A ^ B"},
		{"phrase", &dataset.Question{
			Golden: dataset.Answer{
				Kind: dataset.AnswerPhrase, Text: "clock tree synthesis",
				Accept: []string{"CTS"},
			},
		}, "it performs clock tree synthesis before routing"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if !j.Correct(c.q, c.response) { // warm-up; must also be correct
				t.Fatalf("warm-up judge call rejected %q", c.response)
			}
			allocs := testing.AllocsPerRun(100, func() {
				j.Correct(c.q, c.response)
			})
			if allocs != 0 {
				t.Errorf("Judge.Correct(%s): %v allocs/op, want 0", c.name, allocs)
			}
		})
	}
}
