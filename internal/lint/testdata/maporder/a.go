// Corpus for the maporder analyzer: map iteration feeding ordered
// sinks, plus the canonical collect-then-sort fix that must stay clean.
package mapordertest

import (
	"fmt"
	"sort"
	"strings"
)

func appendsUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out inside map iteration`
	}
	return out
}

func printsPerEntry(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration prints in random order`
	}
}

func buildsReport(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `Builder\.WriteString inside map iteration accumulates bytes in random order`
	}
	return sb.String()
}

type summary struct{ Winner string }

func lastWriterWins(m map[string]int, s *summary) {
	for k := range m {
		s.Winner = k // want `assigns s\.Winner inside map iteration \(last writer wins`
	}
}

// sortedKeys is the canonical fix: the appended slice is sorted before
// anything consumes it, so no finding.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapToMap is order-independent: writing into another map is legal.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// accumulate is commutative accumulation over ints: legal.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore maporder corpus case, caller sorts the result
		out = append(out, k)
	}
	return out
}
