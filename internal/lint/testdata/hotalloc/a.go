// Corpus for the hotalloc analyzer: allocation patterns inside
// functions that declare themselves hot with a //hot: marker. Mirrors
// the pre-batching bootstrap resampler, which formatted its rng stream
// keys with fmt.Sprint inside the per-chunk loop.
package hotalloctest

import (
	"fmt"
	"strconv"
)

// hotKeyed formats a per-item key the way the old resampler did.
//
//hot:corpus per-chunk key formatting
func hotKeyed(model string, c int) string {
	return fmt.Sprint(model, "/", c) // want `fmt\.Sprint allocates its result inside hot function hotKeyed`
}

// hotConcat builds the key by concatenation instead.
//
//hot:corpus string building
func hotConcat(model string, c string) string {
	k := model + "/" + c // want `string concatenation allocates inside hot function hotConcat` `string concatenation allocates inside hot function hotConcat`
	k += "!"             // want `string concatenation allocates inside hot function hotConcat`
	return k
}

// hotClosure allocates inside a function literal — still the same hot
// path when the closure runs per item.
//
//hot:corpus closures inherit the marker
func hotClosure(items []string) []string {
	out := make([]string, 0, len(items))
	for i, it := range items {
		f := func() string {
			return fmt.Sprintf("%s#%d", it, i) // want `fmt\.Sprintf allocates its result inside hot function hotClosure`
		}
		out = append(out, f())
	}
	return out
}

// hotClean stays within the discipline: strconv.Append into a caller
// buffer, constant concatenation folded at compile time.
//
//hot:corpus the approved idioms
func hotClean(dst []byte, c int) []byte {
	const prefix = "chunk" + "-" // folded: no runtime allocation
	dst = append(dst, prefix...)
	return strconv.AppendInt(dst, int64(c), 10)
}

// coldKeyed is unmarked: the same patterns are fine on cold paths.
func coldKeyed(model string, c int) string {
	return fmt.Sprint(model, "/", c) + "!"
}

// hotSuppressed shows an explained escape hatch.
//
//hot:corpus suppression interplay
func hotSuppressed(a, b string) string {
	//lint:ignore hotalloc corpus case demonstrating an explained suppression
	return a + b
}
