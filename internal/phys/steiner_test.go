package phys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	if d := Manhattan(Pt{0, 0}, Pt{3, 4}); d != 7 {
		t.Errorf("Manhattan = %d", d)
	}
	if d := Manhattan(Pt{5, 5}, Pt{5, 5}); d != 0 {
		t.Errorf("Manhattan = %d", d)
	}
}

func TestRMSTKnown(t *testing.T) {
	// Three collinear points: MST length is the span.
	_, l := RMST([]Pt{{0, 0}, {5, 0}, {10, 0}})
	if l != 10 {
		t.Errorf("collinear RMST = %d, want 10", l)
	}
	// L-shape: (0,0), (4,0), (4,3) -> 4 + 3.
	_, l = RMST([]Pt{{0, 0}, {4, 0}, {4, 3}})
	if l != 7 {
		t.Errorf("L RMST = %d, want 7", l)
	}
	// Empty and single-point nets.
	if _, l := RMST(nil); l != 0 {
		t.Errorf("empty RMST = %d", l)
	}
	if edges, l := RMST([]Pt{{1, 1}}); l != 0 || len(edges) != 0 {
		t.Errorf("single-point RMST = %d edges %v", l, edges)
	}
}

func TestSteinerImprovesCross(t *testing.T) {
	// Four corners of a plus sign: RMST = 3 sides worth; a Steiner point
	// at the center saves wirelength.
	pts := []Pt{{2, 0}, {0, 2}, {4, 2}, {2, 4}}
	_, rmstLen := RMST(pts)
	_, _, steinerLen := SteinerTree(pts)
	if steinerLen > rmstLen {
		t.Errorf("steiner %d > rmst %d", steinerLen, rmstLen)
	}
	if steinerLen != 8 {
		t.Errorf("cross steiner length = %d, want 8 (two crossing spans)", steinerLen)
	}
}

func TestQuickSteinerNeverWorseThanRMST(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		pts := make([]Pt, n)
		seen := map[Pt]bool{}
		for i := range pts {
			for {
				p := Pt{r.Intn(10), r.Intn(10)}
				if !seen[p] {
					seen[p] = true
					pts[i] = p
					break
				}
			}
		}
		_, rmstLen := RMST(pts)
		_, _, steinerLen := SteinerTree(pts)
		return steinerLen <= rmstLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickHPWLLowerBound(t *testing.T) {
	// Property: HPWL never exceeds the RMST length (it is the classic
	// lower-bound estimator).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		pts := make([]Pt, n)
		for i := range pts {
			pts[i] = Pt{r.Intn(20), r.Intn(20)}
		}
		_, l := RMST(pts)
		return HPWL(pts) <= l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStarAndPathCosts(t *testing.T) {
	pts := []Pt{{0, 0}, {4, 0}, {0, 4}}
	if c := StarCost(pts, Pt{0, 0}); c != 8 {
		t.Errorf("star cost %d, want 8", c)
	}
	if c := PathCost(pts); c != 12 {
		t.Errorf("path cost %d, want 12", c)
	}
	if c := PathCost(nil); c != 0 {
		t.Errorf("empty path cost %d", c)
	}
}

func TestHPWLKnown(t *testing.T) {
	if w := HPWL([]Pt{{2, 3}, {9, 1}, {5, 8}, {11, 6}}); w != (11-2)+(8-1) {
		t.Errorf("HPWL = %d", w)
	}
	if w := HPWL(nil); w != 0 {
		t.Errorf("HPWL(nil) = %d", w)
	}
}

func TestFormatPts(t *testing.T) {
	if s := FormatPts([]Pt{{1, 2}, {3, 4}}); s != "(1,2) (3,4)" {
		t.Errorf("FormatPts = %q", s)
	}
}

func TestMazeRouteStraightLine(t *testing.T) {
	g := NewGrid(10, 10)
	l, err := g.RouteLength(Pt{1, 1}, Pt{7, 1})
	if err != nil {
		t.Fatal(err)
	}
	if l != 6 {
		t.Errorf("straight route %d, want 6", l)
	}
}

func TestQuickMazeEqualsManhattanWithoutObstacles(t *testing.T) {
	f := func(x0r, y0r, x1r, y1r uint8) bool {
		g := NewGrid(12, 12)
		a := Pt{int(x0r) % 12, int(y0r) % 12}
		b := Pt{int(x1r) % 12, int(y1r) % 12}
		l, err := g.RouteLength(a, b)
		return err == nil && l == Manhattan(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMazeDetour(t *testing.T) {
	g := NewGrid(10, 10)
	g.BlockRect(4, 0, 4, 8) // wall with a gap at y=9
	src, dst := Pt{2, 2}, Pt{7, 2}
	d, err := g.Detour(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("detour %d, want positive", d)
	}
	path, err := g.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Path must avoid every blocked cell and be connected.
	for i, p := range path {
		if g.Blocked(p) {
			t.Errorf("path crosses blockage at %v", p)
		}
		if i > 0 && Manhattan(path[i-1], p) != 1 {
			t.Errorf("path not connected at %d: %v -> %v", i, path[i-1], p)
		}
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Error("path endpoints wrong")
	}
}

func TestMazeUnroutable(t *testing.T) {
	g := NewGrid(8, 8)
	g.BlockRect(3, 0, 3, 7) // full wall
	if _, err := g.Route(Pt{0, 0}, Pt{7, 7}); err == nil {
		t.Error("route through full wall should fail")
	}
	if _, err := g.Route(Pt{3, 3}, Pt{0, 0}); err == nil {
		t.Error("blocked source accepted")
	}
}
