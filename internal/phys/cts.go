package phys

import "math"

// HTree models a symmetric H-tree clock distribution network over a
// square die: levels alternate horizontal/vertical splits, and every
// root-to-leaf path has identical length, giving zero structural skew.
type HTree struct {
	Levels  int
	DieSize float64 // side length in um
}

// Sinks returns the number of leaf sinks (4^levels-ish; one H per two
// levels, each H serving 4 quadrants).
func (h HTree) Sinks() int {
	return 1 << uint(h.Levels)
}

// WireLength returns the total wirelength of the H-tree: each level
// halves the segment length in one dimension.
func (h HTree) WireLength() float64 {
	total := 0.0
	segLen := h.DieSize / 2
	segs := 1
	for l := 0; l < h.Levels; l++ {
		total += float64(segs) * segLen
		segs *= 2
		if l%2 == 1 {
			segLen /= 2
		}
	}
	return total
}

// PathLength returns the root-to-sink path length, equal for all sinks.
func (h HTree) PathLength() float64 {
	total := 0.0
	segLen := h.DieSize / 2
	for l := 0; l < h.Levels; l++ {
		total += segLen / 2
		if l%2 == 1 {
			segLen /= 2
		}
	}
	return total
}

// ClockSkew returns the arrival-time difference between the earliest and
// latest sinks given per-sink wire delays.
func ClockSkew(arrivals []float64) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	lo, hi := arrivals[0], arrivals[0]
	for _, a := range arrivals[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return hi - lo
}

// ElmoreDelay computes the Elmore delay of an RC ladder: resistances
// r[i] and downstream capacitances c[i] per segment:
// sum_i r_i * (sum_{j>=i} c_j).
func ElmoreDelay(r, c []float64) float64 {
	n := len(r)
	if len(c) < n {
		n = len(c)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		down := 0.0
		for j := i; j < n; j++ {
			down += c[j]
		}
		total += r[i] * down
	}
	return total
}

// BufferedDelay models inserting k equally spaced buffers on a wire of
// total resistance R and capacitance C with per-buffer delay tb:
// delay = (k+1) * (R/(k+1))*(C/(k+1))*0.5 + k*tb (quadratic wire delay
// split into k+1 segments).
func BufferedDelay(r, c float64, k int, tb float64) float64 {
	n := float64(k + 1)
	return n*(r/n)*(c/n)*0.5 + float64(k)*tb
}

// OptimalBufferCount searches the buffer count minimising BufferedDelay.
func OptimalBufferCount(r, c, tb float64, maxK int) (int, float64) {
	bestK, bestD := 0, BufferedDelay(r, c, 0, tb)
	for k := 1; k <= maxK; k++ {
		if d := BufferedDelay(r, c, k, tb); d < bestD {
			bestK, bestD = k, d
		}
	}
	return bestK, bestD
}

// MeshVsTreeSkew contrasts clock mesh and tree skew: a mesh shorts sink
// arrivals together, reducing skew by roughly the mesh smoothing factor.
func MeshVsTreeSkew(treeSkew float64, smoothing float64) float64 {
	if smoothing < 1 {
		smoothing = 1
	}
	return treeSkew / smoothing
}

// FanoutOf4Delay returns the FO4-style stage delay scaling: base delay
// times log4 of the fanout (>=1).
func FanoutOf4Delay(base float64, fanout float64) float64 {
	if fanout < 1 {
		fanout = 1
	}
	return base * math.Log(fanout) / math.Log(4)
}
