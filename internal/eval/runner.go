package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
)

// InferenceOptions carries the evaluation-time knobs of §IV.
type InferenceOptions struct {
	// DownsampleFactor degrades the question image by the given integer
	// factor before the model sees it (1 = original resolution); the
	// §IV-B study uses 8 and 16.
	DownsampleFactor int
}

// Model is anything that can answer a benchmark question: the simulated
// VLMs of internal/vlm and the agent system of internal/agent both
// implement it.
type Model interface {
	Name() string
	Answer(q *dataset.Question, opts InferenceOptions) string
}

// QuestionResult records one (model, question) outcome.
type QuestionResult struct {
	QuestionID string
	Category   dataset.Category
	Response   string
	Correct    bool
}

// Report aggregates Pass@1 over a benchmark run.
type Report struct {
	ModelName string
	Results   []QuestionResult
}

// Pass1 returns overall Pass@1.
func (r *Report) Pass1() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	c := 0
	for _, q := range r.Results {
		if q.Correct {
			c++
		}
	}
	return float64(c) / float64(len(r.Results))
}

// Pass1ByCategory returns Pass@1 per discipline.
func (r *Report) Pass1ByCategory() map[dataset.Category]float64 {
	total := make(map[dataset.Category]int)
	correct := make(map[dataset.Category]int)
	for _, q := range r.Results {
		total[q.Category]++
		if q.Correct {
			correct[q.Category]++
		}
	}
	out := make(map[dataset.Category]float64, len(total))
	for c, t := range total {
		out[c] = float64(correct[c]) / float64(t)
	}
	return out
}

// Runner evaluates models over a benchmark with a judge.
type Runner struct {
	Judge Judge
	Opts  InferenceOptions
	// Workers bounds concurrent question evaluations (<=1 = serial).
	Workers int
}

// Evaluate runs one model over the benchmark.
func (r Runner) Evaluate(m Model, b *dataset.Benchmark) *Report {
	rep := &Report{ModelName: m.Name(), Results: make([]QuestionResult, len(b.Questions))}
	eval := func(i int) {
		q := b.Questions[i]
		resp := m.Answer(q, r.Opts)
		rep.Results[i] = QuestionResult{
			QuestionID: q.ID,
			Category:   q.Category,
			Response:   resp,
			Correct:    r.Judge.Correct(q, resp),
		}
	}
	if r.Workers <= 1 {
		for i := range b.Questions {
			eval(i)
		}
		return rep
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.Workers)
	for i := range b.Questions {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			eval(i)
			<-sem
		}(i)
	}
	wg.Wait()
	return rep
}

// EvaluateAll runs every model and returns reports in input order.
func (r Runner) EvaluateAll(models []Model, b *dataset.Benchmark) []*Report {
	out := make([]*Report, len(models))
	for i, m := range models {
		out[i] = r.Evaluate(m, b)
	}
	return out
}

// FormatTableII renders reports in the layout of the paper's Table II:
// one row per model, Pass@1 per category plus overall, for the
// with-choice and without-choice runs side by side.
func FormatTableII(withChoice, noChoice []*Report) string {
	var sb strings.Builder
	cats := dataset.Categories()
	sb.WriteString(fmt.Sprintf("%-20s |", "Model"))
	for _, c := range cats {
		sb.WriteString(fmt.Sprintf(" %-7s", truncate(c.Short(), 7)))
	}
	sb.WriteString(" | all   ")
	if noChoice != nil {
		sb.WriteString("||")
		for _, c := range cats {
			sb.WriteString(fmt.Sprintf(" %-7s", truncate(c.Short(), 7)))
		}
		sb.WriteString(" | all")
	}
	sb.WriteString("\n")
	for i, rep := range withChoice {
		sb.WriteString(fmt.Sprintf("%-20s |", rep.ModelName))
		by := rep.Pass1ByCategory()
		for _, c := range cats {
			sb.WriteString(fmt.Sprintf(" %.2f   ", by[c]))
		}
		sb.WriteString(fmt.Sprintf("| %.2f  ", rep.Pass1()))
		if noChoice != nil && i < len(noChoice) {
			sb.WriteString("||")
			byN := noChoice[i].Pass1ByCategory()
			for _, c := range cats {
				sb.WriteString(fmt.Sprintf(" %.2f   ", byN[c]))
			}
			sb.WriteString(fmt.Sprintf("| %.2f", noChoice[i].Pass1()))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// WrongQuestions lists IDs the model missed, sorted.
func (r *Report) WrongQuestions() []string {
	var out []string
	for _, q := range r.Results {
		if !q.Correct {
			out = append(out, q.QuestionID)
		}
	}
	sort.Strings(out)
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
