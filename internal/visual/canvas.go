package visual

import (
	"image"
	"image/color"
	"math"
)

// Canvas is a simple raster drawing surface backed by an RGBA image.
// It provides the primitives the scene renderers need: lines, rectangles,
// circles, arcs and bitmap text. Everything is drawn in device pixels.
//
// The drawing kernel is span-based: every primitive clips against the
// canvas bounds once, then writes whole rows (or row segments) directly
// into the backing Pix buffer. The per-pixel bounds check of the naive
// kernel survives only in Set and in the Bresenham path for diagonal
// lines; the differential tests in reference_test.go prove the span
// kernel's output is byte-identical to the naive one.
type Canvas struct {
	img *image.RGBA
}

// Standard drawing colors used by the renderers.
var (
	ColorBlack = color.RGBA{0, 0, 0, 255}
	ColorWhite = color.RGBA{255, 255, 255, 255}
	ColorGray  = color.RGBA{128, 128, 128, 255}
	ColorRed   = color.RGBA{200, 30, 30, 255}
	ColorBlue  = color.RGBA{30, 60, 200, 255}
	ColorGreen = color.RGBA{20, 140, 60, 255}

	// Layer colors for layout rendering, indexed by layer name.
	layerColors = map[string]color.RGBA{
		"diffusion": {60, 160, 60, 255},
		"poly":      {200, 60, 60, 255},
		"metal1":    {60, 90, 200, 255},
		"metal2":    {170, 80, 200, 255},
		"contact":   {40, 40, 40, 255},
		"nwell":     {220, 210, 120, 255},
		"via":       {90, 90, 90, 255},
		"macro":     {150, 150, 180, 255},
		"cell":      {120, 170, 210, 255},
		"blockage":  {220, 120, 120, 255},
	}
)

// NewCanvas returns a white canvas of the given size. Width and height
// are clamped to at least 1 pixel. The backing buffer comes from the
// shared pixel pool; Fill re-whitens it completely, so recycled buffers
// never leak stale pixels.
func NewCanvas(w, h int) *Canvas {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	img := newRGBA(image.Rect(0, 0, w, h))
	c := &Canvas{img: img}
	c.Fill(ColorWhite)
	return c
}

// Image exposes the underlying RGBA image.
func (c *Canvas) Image() *image.RGBA { return c.img }

// Size returns the canvas dimensions.
func (c *Canvas) Size() (w, h int) {
	b := c.img.Bounds()
	return b.Dx(), b.Dy()
}

// rowSpan returns the raw bytes of row y covering columns [x0, x1).
// Callers must pass in-bounds coordinates.
func (c *Canvas) rowSpan(x0, x1, y int) []uint8 {
	i := c.img.PixOffset(x0, y)
	return c.img.Pix[i : i+4*(x1-x0)]
}

// hspan clips the inclusive column range [x0, x1] on row y against the
// bounds once and returns the raw bytes of the surviving span (nil when
// the row or the whole range is outside).
func (c *Canvas) hspan(x0, x1, y int) []uint8 {
	b := c.img.Bounds()
	if y < b.Min.Y || y >= b.Max.Y {
		return nil
	}
	if x0 < b.Min.X {
		x0 = b.Min.X
	}
	if x1 >= b.Max.X {
		x1 = b.Max.X - 1
	}
	if x0 > x1 {
		return nil
	}
	return c.rowSpan(x0, x1+1, y)
}

// paintSpan writes col across a raw RGBA span (length divisible by 4):
// seed the first pixel, then double with copy.
func paintSpan(p []uint8, col color.RGBA) {
	if len(p) == 0 {
		return
	}
	p[0], p[1], p[2], p[3] = col.R, col.G, col.B, col.A
	for n := 4; n < len(p); n *= 2 {
		copy(p[n:], p[:n])
	}
}

// Fill paints the whole canvas with a color: one painted prototype row,
// copied into every other row.
func (c *Canvas) Fill(col color.RGBA) {
	b := c.img.Bounds()
	if b.Empty() {
		return
	}
	proto := c.rowSpan(b.Min.X, b.Max.X, b.Min.Y)
	paintSpan(proto, col)
	for y := b.Min.Y + 1; y < b.Max.Y; y++ {
		copy(c.rowSpan(b.Min.X, b.Max.X, y), proto)
	}
}

// Set paints one pixel, ignoring out-of-bounds coordinates.
func (c *Canvas) Set(x, y int, col color.RGBA) {
	if image.Pt(x, y).In(c.img.Bounds()) {
		c.img.SetRGBA(x, y, col)
	}
}

// Line draws a 1-pixel line. Horizontal and vertical lines — the
// dominant case in schematics (wires, gate bodies, table rules) — clip
// to bounds once and write the span directly; everything else falls to
// Bresenham.
func (c *Canvas) Line(x0, y0, x1, y1 int, col color.RGBA) {
	switch {
	case y0 == y1:
		x0, x1 = ordered(x0, x1)
		paintSpan(c.hspan(x0, x1, y0), col)
	case x0 == x1:
		c.vline(x0, y0, y1, col)
	default:
		c.bresenham(x0, y0, x1, y1, col)
	}
}

// vline writes a clipped vertical run of single pixels, stepping by
// Stride instead of re-deriving the offset per pixel.
func (c *Canvas) vline(x, y0, y1 int, col color.RGBA) {
	b := c.img.Bounds()
	if x < b.Min.X || x >= b.Max.X {
		return
	}
	y0, y1 = ordered(y0, y1)
	if y0 < b.Min.Y {
		y0 = b.Min.Y
	}
	if y1 >= b.Max.Y {
		y1 = b.Max.Y - 1
	}
	if y0 > y1 {
		return
	}
	pix, stride := c.img.Pix, c.img.Stride
	i := c.img.PixOffset(x, y0)
	for y := y0; y <= y1; y++ {
		pix[i], pix[i+1], pix[i+2], pix[i+3] = col.R, col.G, col.B, col.A
		i += stride
	}
}

// bresenham is the general diagonal path (Bresenham's algorithm).
func (c *Canvas) bresenham(x0, y0, x1, y1 int, col color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := sign(x1 - x0)
	sy := sign(y1 - y0)
	err := dx + dy
	for {
		c.Set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// ThickLine draws a line of the given pixel thickness.
func (c *Canvas) ThickLine(x0, y0, x1, y1, thickness int, col color.RGBA) {
	if thickness <= 1 {
		c.Line(x0, y0, x1, y1, col)
		return
	}
	// Offset perpendicular to the line direction.
	ang := math.Atan2(float64(y1-y0), float64(x1-x0)) + math.Pi/2
	for t := 0; t < thickness; t++ {
		off := float64(t) - float64(thickness-1)/2
		ox := int(math.Round(off * math.Cos(ang)))
		oy := int(math.Round(off * math.Sin(ang)))
		c.Line(x0+ox, y0+oy, x1+ox, y1+oy, col)
	}
}

// Rect draws the outline of a rectangle.
func (c *Canvas) Rect(x0, y0, x1, y1 int, col color.RGBA) {
	x0, x1 = ordered(x0, x1)
	y0, y1 = ordered(y0, y1)
	c.Line(x0, y0, x1, y0, col)
	c.Line(x1, y0, x1, y1, col)
	c.Line(x1, y1, x0, y1, col)
	c.Line(x0, y1, x0, y0, col)
}

// FillRect paints a filled rectangle: clip the rect once, paint one
// prototype row, copy it into the remaining rows.
func (c *Canvas) FillRect(x0, y0, x1, y1 int, col color.RGBA) {
	x0, x1 = ordered(x0, x1)
	y0, y1 = ordered(y0, y1)
	b := c.img.Bounds()
	if y0 < b.Min.Y {
		y0 = b.Min.Y
	}
	if y1 >= b.Max.Y {
		y1 = b.Max.Y - 1
	}
	if y0 > y1 {
		return
	}
	proto := c.hspan(x0, x1, y0)
	if proto == nil {
		return
	}
	paintSpan(proto, col)
	for y := y0 + 1; y <= y1; y++ {
		copy(c.hspan(x0, x1, y), proto)
	}
}

// Circle draws a circle outline with the midpoint algorithm.
func (c *Canvas) Circle(cx, cy, r int, col color.RGBA) {
	if r <= 0 {
		c.Set(cx, cy, col)
		return
	}
	x, y := r, 0
	err := 1 - r
	for x >= y {
		c.Set(cx+x, cy+y, col)
		c.Set(cx+y, cy+x, col)
		c.Set(cx-y, cy+x, col)
		c.Set(cx-x, cy+y, col)
		c.Set(cx-x, cy-y, col)
		c.Set(cx-y, cy-x, col)
		c.Set(cx+y, cy-x, col)
		c.Set(cx+x, cy-y, col)
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// FillCircle paints a filled circle as one chord span per row instead of
// testing every pixel of the bounding square.
func (c *Canvas) FillCircle(cx, cy, r int, col color.RGBA) {
	rr := r * r
	for dy := -r; dy <= r; dy++ {
		s := isqrt(rr - dy*dy)
		paintSpan(c.hspan(cx-s, cx+s, cy+dy), col)
	}
}

// isqrt returns the largest s >= 0 with s*s <= v (0 for negative v). The
// float seed is exact for every chord the renderer meets, but the
// correction loops make the contract independent of rounding.
func isqrt(v int) int {
	if v <= 0 {
		return 0
	}
	s := int(math.Sqrt(float64(v)))
	for (s+1)*(s+1) <= v {
		s++
	}
	for s*s > v {
		s--
	}
	return s
}

// Arc draws a circular arc from a0 to a1 radians (counterclockwise in
// canvas coordinates, i.e. y grows downward).
func (c *Canvas) Arc(cx, cy, r int, a0, a1 float64, col color.RGBA) {
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	steps := int(float64(r)*(a1-a0)) + 8
	for i := 0; i <= steps; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(steps)
		x := cx + int(math.Round(float64(r)*math.Cos(a)))
		y := cy + int(math.Round(float64(r)*math.Sin(a)))
		c.Set(x, y, col)
	}
}

// Polyline draws connected line segments through the points.
func (c *Canvas) Polyline(pts []Point, col color.RGBA) {
	for i := 1; i < len(pts); i++ {
		c.Line(int(pts[i-1].X), int(pts[i-1].Y), int(pts[i].X), int(pts[i].Y), col)
	}
}

// Arrow draws a line with an arrowhead at the destination.
func (c *Canvas) Arrow(x0, y0, x1, y1 int, col color.RGBA) {
	c.Line(x0, y0, x1, y1, col)
	ang := math.Atan2(float64(y1-y0), float64(x1-x0))
	const headLen = 8.0
	const headAng = 0.45
	for _, s := range []float64{+1, -1} {
		hx := float64(x1) - headLen*math.Cos(ang+s*headAng)
		hy := float64(y1) - headLen*math.Sin(ang+s*headAng)
		c.Line(x1, y1, int(math.Round(hx)), int(math.Round(hy)), col)
	}
}

// Text draws a string at (x, y) using the embedded 5x7 bitmap font at the
// given integer scale (1 = 5x7 pixels per glyph).
func (c *Canvas) Text(x, y int, s string, scale int, col color.RGBA) {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		if r == '\n' {
			y += (glyphH + 2) * scale
			cx = x
			continue
		}
		c.glyph(cx, y, r, scale, col)
		cx += (glyphW + 1) * scale
	}
}

// TextWidth reports the pixel width of a string drawn at the given scale.
func TextWidth(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	max, cur := 0, 0
	for _, r := range s {
		if r == '\n' {
			if cur > max {
				max = cur
			}
			cur = 0
			continue
		}
		cur += (glyphW + 1) * scale
	}
	if cur > max {
		max = cur
	}
	return max
}

// glyphRowSpans pre-expands every possible 5-bit glyph row into its runs
// of consecutive set bits, as [start, end) column pairs. A glyph row then
// rasterises as a handful of span paints instead of a scale*scale Set
// loop per set bit.
var glyphRowSpans [1 << glyphW][][2]int

func init() {
	for bits := range glyphRowSpans {
		start := -1
		for colIdx := 0; colIdx < glyphW; colIdx++ {
			set := bits&(1<<(glyphW-1-colIdx)) != 0
			switch {
			case set && start < 0:
				start = colIdx
			case !set && start >= 0:
				glyphRowSpans[bits] = append(glyphRowSpans[bits], [2]int{start, colIdx})
				start = -1
			}
		}
		if start >= 0 {
			glyphRowSpans[bits] = append(glyphRowSpans[bits], [2]int{start, glyphW})
		}
	}
}

func (c *Canvas) glyph(x, y int, r rune, scale int, col color.RGBA) {
	g, ok := font5x7[r]
	if !ok {
		g = font5x7['?']
	}
	for row := 0; row < glyphH; row++ {
		spans := glyphRowSpans[g[row]&(1<<glyphW-1)]
		if len(spans) == 0 {
			continue
		}
		for sy := 0; sy < scale; sy++ {
			yy := y + row*scale + sy
			for _, sp := range spans {
				paintSpan(c.hspan(x+sp[0]*scale, x+sp[1]*scale-1, yy), col)
			}
		}
	}
}

// LayerColor returns the render color for a layout layer name, defaulting
// to gray for unknown layers.
func LayerColor(layer string) color.RGBA {
	if c, ok := layerColors[layer]; ok {
		return c
	}
	return ColorGray
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func ordered(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}
