package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation plumbing of DESIGN.md §11: once a
// function accepts a context.Context, concurrency and blocking work
// inside it must be bounded by that context. Two rules:
//
//  1. A function that receives a ctx parameter but never consults it
//     (no use of the parameter at all) while spawning goroutines or
//     doing may-block work is flagged — the signature promises
//     cancellation the body cannot deliver.
//  2. context.Background()/context.TODO() mint unbounded contexts, so
//     outside package main, tests, and the blessed seam list they are
//     flagged — except when passed directly to a *Context-suffixed
//     wrapper (the documented "non-Context API wraps the Context one"
//     idiom) or used as a nil-ctx default inside an `if ctx == nil`
//     guard.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "a function taking context.Context must consult it before spawning goroutines or blocking; " +
		"context.Background/TODO are confined to main, tests, and blessed seams",
	Run: runCtxFlow,
}

// ctxflowSeams lists functions ("pkgPath.FuncName") allowed to mint
// background contexts: entry points that by design have no caller
// context. The corpus package pins the mechanism.
var ctxflowSeams = map[string]bool{
	"repro/internal/lint/testdata/ctxflow.blessedSeam": true,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	if info == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkCtxConsulted(pass, fd)
			}
		}
		checkBackgroundCalls(pass, f)
	}
}

// checkCtxConsulted implements rule 1 for one function declaration.
func checkCtxConsulted(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	facts := pass.Facts.Of(fn)
	if !facts.Spawns && !facts.MayBlock {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := info.Defs[name].(*types.Var)
			if !ok || !isContextType(obj.Type()) {
				continue
			}
			if identUsed(info, fd.Body, obj) {
				continue
			}
			pass.Reportf(name.Pos(),
				"%s receives ctx but never consults it, yet it %s; forward it, select on ctx.Done(), or rename the parameter to _",
				fd.Name.Name, ctxWhy(facts))
		}
	}
}

// ctxWhy renders the reason rule 1 fired.
func ctxWhy(facts FuncFacts) string {
	switch {
	case facts.Spawns && facts.MayBlock:
		return "spawns goroutines and may block (" + facts.BlockReason + ")"
	case facts.Spawns:
		return "spawns goroutines"
	default:
		return "may block (" + facts.BlockReason + ")"
	}
}

// identUsed reports whether obj is referenced anywhere inside body.
func identUsed(info *types.Info, body ast.Node, obj *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// checkBackgroundCalls implements rule 2 for one file.
func checkBackgroundCalls(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "main" {
		return // binaries own their root context
	}

	for _, fd := range topLevelFuncs(f) {
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := backgroundCall(info, call)
			if !ok {
				return true
			}
			if blessedBackground(info, fd, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() mints an unbounded context outside main/tests; plumb the caller's ctx through instead",
				name)
			return true
		})
	}
}

// backgroundCall reports whether the call is context.Background() or
// context.TODO(), returning which.
func backgroundCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// blessedBackground reports whether a Background/TODO call site is one
// of the allowed idioms:
//
//   - inside a function on the ctxflowSeams allow list;
//   - a direct argument to a call whose callee name ends in "Context"
//     (Evaluate wrapping EvaluateContext and friends);
//   - the sole RHS of `ctx = context.Background()` guarded by
//     `if ctx == nil` (defaulting a nil context at an API boundary).
func blessedBackground(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok && fn.Pkg() != nil {
		if ctxflowSeams[fn.Pkg().Path()+"."+fn.Name()] {
			return true
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == call {
				return true
			}
			callee := ""
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				callee = fun.Name
			case *ast.SelectorExpr:
				callee = fun.Sel.Name
			}
			if !strings.HasSuffix(callee, "Context") {
				return true
			}
			for _, arg := range n.Args {
				if unparen(arg) == call {
					found = true
					return false
				}
			}
		case *ast.IfStmt:
			if nilGuardAssigns(n, call) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// topLevelFuncs returns the file's function declarations with bodies.
func topLevelFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// nilGuardAssigns reports whether ifStmt is `if x == nil { x = <call> }`
// (in either comparison order), the blessed nil-context default.
func nilGuardAssigns(ifStmt *ast.IfStmt, call *ast.CallExpr) bool {
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op.String() != "==" {
		return false
	}
	guarded := nilCompareTarget(cond)
	if guarded == "" {
		return false
	}
	found := false
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if ok && lhs.Name == guarded && unparen(as.Rhs[0]) == call {
			found = true
		}
		return !found
	})
	return found
}

// nilCompareTarget returns the identifier compared against nil in a
// binary ==, or "".
func nilCompareTarget(cond *ast.BinaryExpr) string {
	x, xOK := unparen(cond.X).(*ast.Ident)
	y, yOK := unparen(cond.Y).(*ast.Ident)
	if xOK && yOK {
		switch {
		case y.Name == "nil":
			return x.Name
		case x.Name == "nil":
			return y.Name
		}
	}
	return ""
}
