package visual

import (
	"image"
	"math"
)

// PatchFeatures is the output of the visual encoder stage of the Fig. 2
// VLM pipeline: one feature vector per image patch, in row-major order.
type PatchFeatures struct {
	PatchesX int
	PatchesY int
	Dim      int
	Vectors  [][]float64
}

// EncodePatches splits the image into a grid of patchSize x patchSize
// patches and extracts a small hand-crafted feature vector per patch:
// mean luminance, luminance variance, horizontal and vertical edge
// energy, and ink density (fraction of non-background pixels). This is
// the ViT-style front end of the simulated VLM; the projector stage in
// internal/vlm turns these into token-space summaries.
func EncodePatches(img *image.RGBA, patchSize int) *PatchFeatures {
	if patchSize < 1 {
		patchSize = 16
	}
	b := img.Bounds()
	px := (b.Dx() + patchSize - 1) / patchSize
	py := (b.Dy() + patchSize - 1) / patchSize
	const dim = 5
	f := &PatchFeatures{PatchesX: px, PatchesY: py, Dim: dim}
	f.Vectors = make([][]float64, 0, px*py)
	for gy := 0; gy < py; gy++ {
		for gx := 0; gx < px; gx++ {
			f.Vectors = append(f.Vectors, patchVector(img, b, gx*patchSize, gy*patchSize, patchSize))
		}
	}
	return f
}

// lum4 is the luminance of one raw RGBA pixel.
func lum4(p []uint8) float64 {
	return 0.299*float64(p[0]) + 0.587*float64(p[1]) + 0.114*float64(p[2])
}

// patchVector walks the patch through row slice windows — one bounds
// computation per row instead of a PixOffset call per pixel read. The
// accumulation order matches the per-pixel reference exactly, so the
// float results are bit-identical.
func patchVector(img *image.RGBA, b image.Rectangle, x0, y0, size int) []float64 {
	w, h := b.Dx(), b.Dy()
	x1, y1 := x0+size, y0+size
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	if x0 >= x1 || y0 >= y1 {
		return []float64{255, 0, 0, 0, 0}
	}
	var sum, sumSq, edgeH, edgeV, ink float64
	var n float64
	for y := y0; y < y1; y++ {
		// row covers the patch columns and, when the image continues to
		// the right, one pixel past the patch edge for the horizontal
		// gradient at x1-1.
		si := img.PixOffset(b.Min.X+x0, b.Min.Y+y)
		row := img.Pix[si:]
		var next []uint8
		if y+1 < h {
			ni := img.PixOffset(b.Min.X+x0, b.Min.Y+y+1)
			next = img.Pix[ni:]
		}
		i := 0
		for x := x0; x < x1; x++ {
			l := lum4(row[i:])
			sum += l
			sumSq += l * l
			if l < 200 {
				ink++
			}
			if x+1 < w {
				edgeH += math.Abs(lum4(row[i+4:]) - l)
			}
			if next != nil {
				edgeV += math.Abs(lum4(next[i:]) - l)
			}
			i += 4
			n++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return []float64{mean, math.Sqrt(variance), edgeH / n, edgeV / n, ink / n}
}

// InkFraction reports the fraction of patches that contain any drawn
// content — a cheap global complexity signal the projector can use.
func (f *PatchFeatures) InkFraction() float64 {
	if len(f.Vectors) == 0 {
		return 0
	}
	var inked int
	for _, v := range f.Vectors {
		if v[4] > 0.01 {
			inked++
		}
	}
	return float64(inked) / float64(len(f.Vectors))
}
