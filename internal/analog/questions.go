package analog

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// Generate produces the 44 Analog Design questions (all multiple choice,
// per §III-B2): 30 schematics, 5 Bode/curve plots, 5 block diagrams,
// 1 equation, 1 equation sheet and 2 mixed figures. Golden answers come
// from the MNA solver and the closed-form small-signal engines, which are
// cross-checked against each other in the package tests.
func Generate() []*dataset.Question {
	var qs []*dataset.Question
	add := func(q *dataset.Question) { qs = append(qs, q) }

	mustEq := func(id string, got, want float64) {
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			panic(fmt.Sprintf("analog: %s: solver disagrees with closed form: %g vs %g", id, got, want))
		}
	}

	// --- Schematics (a01..a30) ---------------------------------------

	// a01..a04: equivalent resistance of resistor networks. Golden from
	// the MNA solver's test-current measurement.
	reqCases := []struct {
		id     string
		build  func() *Circuit
		labels []string
		want   float64
	}{
		{
			id: "a01",
			build: func() *Circuit {
				c := NewCircuit()
				c.R("R1", "a", "b", 1000).R("R2", "b", Ground, 2000).R("R3", "b", Ground, 2000)
				return c
			},
			labels: []string{"R1=1 kOhm", "R2=2 kOhm", "R3=2 kOhm"},
			want:   SeriesR(1000, ParallelR(2000, 2000)),
		},
		{
			id: "a02",
			build: func() *Circuit {
				c := NewCircuit()
				c.R("R1", "a", "m", 1000).R("R2", "m", Ground, 3000).R("R3", "a", Ground, 4000)
				return c
			},
			labels: []string{"R1=1 kOhm", "R2=3 kOhm", "R3=4 kOhm"},
			want:   ParallelR(SeriesR(1000, 3000), 4000),
		},
		{
			id: "a03",
			build: func() *Circuit {
				c := NewCircuit()
				c.R("R1", "a", "b", 2000).R("R2", "b", Ground, 6000).
					R("R3", "b", "c", 1000).R("R4", "c", Ground, 2000)
				return c
			},
			labels: []string{"R1=2 kOhm", "R2=6 kOhm", "R3=1 kOhm", "R4=2 kOhm"},
			want:   SeriesR(2000, ParallelR(6000, SeriesR(1000, 2000))),
		},
		{
			id: "a04",
			build: func() *Circuit {
				c := NewCircuit()
				c.R("R1", "a", Ground, 3000).R("R2", "a", Ground, 6000).R("R3", "a", Ground, 2000)
				return c
			},
			labels: []string{"R1=3 kOhm", "R2=6 kOhm", "R3=2 kOhm"},
			want:   ParallelR(3000, 6000, 2000),
		},
	}
	for _, rc := range reqCases {
		req, err := rc.build().EquivalentResistance("a", Ground)
		if err != nil {
			panic(err)
		}
		mustEq(rc.id, req, rc.want)
		format := func(v float64) string { return FormatSI(v, "Ohm") }
		scene := ResistorNetworkScene("Resistor network", "", rc.labels)
		add(dataset.NewMCNumeric(rc.id, dataset.Analog, "equivalent-resistance",
			"For the resistor network in the figure with the values annotated, what is the "+
				"equivalent resistance seen between terminal a and ground?",
			scene, req, "Ohm", 0.02, format(req), NumericDistractors(req, format), 0.4))
	}

	// a05..a08: loaded voltage dividers (the style of the MathVista
	// comparison example in Fig. 3, but solved through the full MNA).
	divCases := []struct {
		id                string
		vs, r1, r2, rl    float64
		extraSeries       float64 // optional R3 in series with RL (0 = none)
		promptAnnotations []string
	}{
		{"a05", 5, 1000, 2200, 4700, 0,
			[]string{"Vs=5 V", "R1=1 kOhm", "R2=2.2 kOhm", "RL=4.7 kOhm"}},
		{"a06", 12, 2000, 3000, 6000, 0,
			[]string{"Vs=12 V", "R1=2 kOhm", "R2=3 kOhm", "RL=6 kOhm"}},
		{"a07", 9, 1000, 1000, 2000, 500,
			[]string{"Vs=9 V", "R1=1 kOhm", "R2=1 kOhm", "R3=0.5 kOhm", "RL=2 kOhm"}},
		{"a08", 3.3, 470, 1000, 1000, 0,
			[]string{"Vs=3.3 V", "R1=470 Ohm", "R2=1 kOhm", "RL=1 kOhm"}},
	}
	for _, dc := range divCases {
		c := NewCircuit()
		c.V("Vs", "in", Ground, dc.vs)
		c.R("R1", "in", "mid", dc.r1)
		c.R("R2", "mid", Ground, dc.r2)
		loadTop := "mid"
		if dc.extraSeries > 0 {
			c.R("R3", "mid", "load", dc.extraSeries)
			loadTop = "load"
		}
		c.R("RL", loadTop, Ground, dc.rl)
		sol, err := c.SolveDC()
		if err != nil {
			panic(err)
		}
		vl := real(sol.VoltageAt(loadTop))
		format := func(v float64) string { return FormatPlain(round3(v), "V") }
		scene := ResistorNetworkScene("Loaded voltage divider", "Vs", dc.promptAnnotations)
		add(dataset.NewMCNumeric(dc.id, dataset.Analog, "voltage-divider",
			"Given the source and resistor values annotated in the figure, determine the "+
				"voltage across the load resistor RL. Answer in units of V.",
			scene, vl, "V", 0.02, format(vl), NumericDistractors(vl, format), 0.5))
	}

	// a09..a12: common-source amplifier small-signal gain.
	csCases := []struct {
		id     string
		gm     float64 // S
		rd, ro float64 // ohm; ro = +Inf ignores channel-length modulation
	}{
		{"a09", 2e-3, 5000, math.Inf(1)},
		{"a10", 1e-3, 10000, 20000},
		{"a11", 4e-3, 2500, math.Inf(1)},
		{"a12", 0.5e-3, 20000, 40000},
	}
	for _, cc := range csCases {
		m := MOSFET{Gm: cc.gm, Ro: cc.ro}
		gain := CommonSourceGain(m, cc.rd)
		// Cross-check against the MNA solver.
		sol, err := CommonSourceCircuit(m, cc.rd).SolveDC()
		if err != nil {
			panic(err)
		}
		mustEq(cc.id, real(sol.VoltageAt("out")), gain)
		params := []string{
			"gm=" + FormatSI(cc.gm, "S"),
			"RD=" + FormatSI(cc.rd, "Ohm"),
		}
		if !math.IsInf(cc.ro, 0) {
			params = append(params, "ro="+FormatSI(cc.ro, "Ohm"))
		}
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := AmplifierScene("Common-source stage", "common-source amplifier", params)
		add(dataset.NewMCNumeric(cc.id, dataset.Analog, "cs-gain",
			"The common-source amplifier in the figure is biased in saturation with the "+
				"small-signal parameters annotated. What is its small-signal voltage gain vout/vin?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.55))
	}

	// a13, a14: source follower gain.
	sfCases := []struct {
		id     string
		gm, rs float64
	}{
		{"a13", 5e-3, 2000},
		{"a14", 2e-3, 1000},
	}
	for _, sc := range sfCases {
		m := MOSFET{Gm: sc.gm, Ro: math.Inf(1)}
		gain := SourceFollowerGain(m, sc.rs)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := AmplifierScene("Source follower", "common-drain (source follower)",
			[]string{"gm=" + FormatSI(sc.gm, "S"), "RS=" + FormatSI(sc.rs, "Ohm")})
		add(dataset.NewMCNumeric(sc.id, dataset.Analog, "sf-gain",
			"For the source follower in the figure (body effect and channel-length modulation "+
				"neglected), what is the small-signal gain vout/vin?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.55))
	}

	// a15, a16: common-gate gain.
	cgCases := []struct {
		id     string
		gm, rd float64
	}{
		{"a15", 2e-3, 5000},
		{"a16", 1e-3, 8000},
	}
	for _, cg := range cgCases {
		m := MOSFET{Gm: cg.gm, Ro: math.Inf(1)}
		gain := CommonGateGain(m, cg.rd)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := AmplifierScene("Common-gate stage", "common-gate amplifier",
			[]string{"gm=" + FormatSI(cg.gm, "S"), "RD=" + FormatSI(cg.rd, "Ohm")})
		add(dataset.NewMCNumeric(cg.id, dataset.Analog, "cg-gain",
			"The common-gate stage in the figure is driven at its source terminal with the "+
				"parameters annotated. What is its small-signal voltage gain vout/vin?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.6))
	}

	// a17, a18: differential pair gain.
	dpCases := []struct {
		id     string
		gm, rd float64
		ro     float64
	}{
		{"a17", 1e-3, 10000, math.Inf(1)},
		{"a18", 2e-3, 5000, 20000},
	}
	for _, dp := range dpCases {
		m := MOSFET{Gm: dp.gm, Ro: dp.ro}
		gain := DiffPairGain(m, dp.rd)
		params := []string{"gm=" + FormatSI(dp.gm, "S"), "RD=" + FormatSI(dp.rd, "Ohm")}
		if !math.IsInf(dp.ro, 0) {
			params = append(params, "ro="+FormatSI(dp.ro, "Ohm"))
		}
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := AmplifierScene("Differential pair", "resistively loaded differential pair", params)
		add(dataset.NewMCNumeric(dp.id, dataset.Analog, "diff-gain",
			"For the resistively loaded differential pair in the figure, what is the "+
				"differential small-signal gain vod/vid?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.65))
	}

	// a19, a20: current mirrors.
	mirrorCases := []struct {
		id          string
		iref, ratio float64
	}{
		{"a19", 100e-6, 2},
		{"a20", 50e-6, 4},
	}
	for _, mc := range mirrorCases {
		iout := MirrorOutputCurrent(mc.iref, mc.ratio)
		format := func(v float64) string { return FormatSI(v, "A") }
		scene := AmplifierScene("Current mirror", "NMOS current mirror",
			[]string{"Iref=" + FormatSI(mc.iref, "A"),
				fmt.Sprintf("(W/L)out = %g x (W/L)ref", mc.ratio)})
		add(dataset.NewMCNumeric(mc.id, dataset.Analog, "current-mirror",
			"The current mirror in the figure copies the reference current with the device "+
				"ratio annotated. Assuming ideal matching and saturation, what is the output current?",
			scene, iout, "A", 0.02, format(iout), NumericDistractors(iout, format), 0.45))
	}

	// a21, a22: RC filter cutoff frequency, cross-checked against the MNA
	// AC sweep.
	rcCases := []struct {
		id   string
		r, c float64
	}{
		{"a21", 1600, 100e-9},
		{"a22", 10000, 1.59e-9},
	}
	for _, rc := range rcCases {
		fc := RCLowPassCutoffHz(rc.r, rc.c)
		// Cross-check: |H| at 2*pi*fc should be ~0.707.
		cir := NewCircuit()
		cir.V("Vin", "in", Ground, 1).R("R", "in", "out", rc.r).C("C", "out", Ground, rc.c)
		g, err := cir.Transfer("Vin", "out", []float64{2 * math.Pi * fc})
		if err != nil {
			panic(err)
		}
		if math.Abs(cmplxAbs(g[0])-1/math.Sqrt2) > 1e-6 {
			panic("analog: RC cutoff cross-check failed")
		}
		format := func(v float64) string { return FormatSI(v, "Hz") }
		scene := ResistorNetworkScene("First-order RC low-pass filter", "Vin",
			[]string{"R=" + FormatSI(rc.r, "Ohm"), "C=" + FormatSI(rc.c, "F")})
		add(dataset.NewMCNumeric(rc.id, dataset.Analog, "rc-cutoff",
			"For the first-order RC low-pass filter in the figure, what is the -3 dB cutoff "+
				"frequency?",
			scene, fc, "Hz", 0.03, format(fc), NumericDistractors(fc, format), 0.45))
	}

	// a23, a24: op-amp closed-loop gains.
	{
		gain := InvertingOpAmpGain(1000, 10000)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := OpAmpScene("Op-amp stage", "R1=1 kOhm", "R2=10 kOhm", true)
		add(dataset.NewMCNumeric("a23", dataset.Analog, "opamp-inverting",
			"Assuming an ideal op-amp, what is the closed-loop voltage gain of the "+
				"inverting amplifier in the figure?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.4))
	}
	{
		gain := NonInvertingOpAmpGain(1000, 9000)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := OpAmpScene("Op-amp stage", "R1=1 kOhm", "R2=9 kOhm", false)
		add(dataset.NewMCNumeric("a24", dataset.Analog, "opamp-noninverting",
			"Assuming an ideal op-amp, what is the closed-loop voltage gain of the "+
				"non-inverting amplifier in the figure?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.4))
	}

	// a25: integrator recognition.
	{
		scene := OpAmpScene("Op-amp circuit", "R1=10 kOhm", "C1=100 nF (feedback capacitor)", true)
		add(dataset.NewMC("a25", dataset.Analog, "integrator",
			"The op-amp circuit in the figure has a resistor at its inverting input and a "+
				"capacitor in the feedback path. What function does this circuit perform?",
			scene, "inverting integrator",
			[3]string{"differentiator", "comparator with hysteresis", "unity-gain buffer"}, 0.45))
	}
	// a26: relaxation oscillator recognition.
	{
		scene := BlockDiagramScene("Comparator-based circuit",
			[]string{"COMPARATOR", "RC NETWORK"},
			[]string{"positive feedback to +", "RC from output to -"})
		scene.Kind = visual.KindSchematic
		add(dataset.NewMC("a26", dataset.Analog, "oscillator",
			"A comparator drives an RC network whose capacitor voltage feeds back to the "+
				"inverting input, while resistive positive feedback sets the thresholds, as shown. "+
				"What circuit is this?",
			scene, "relaxation oscillator (astable multivibrator)",
			[3]string{"monostable one-shot", "Schmitt-trigger buffer", "sample-and-hold"}, 0.55))
	}
	// a27: flash ADC comparator count.
	{
		bits := 4
		nc := float64(FlashComparators(bits))
		format := func(v float64) string { return FormatPlain(v, "comparators") }
		scene := BlockDiagramScene("FLASH ADC",
			[]string{"RESISTOR LADDER", "COMPARATOR BANK", "ENCODER"},
			[]string{fmt.Sprintf("resolution: %d bits", bits)})
		scene.Kind = visual.KindSchematic
		add(dataset.NewMCNumeric("a27", dataset.Analog, "flash-adc",
			"The flash ADC in the figure converts with the resolution annotated. How many "+
				"comparators does its comparator bank require?",
			scene, nc, "comparators", 0,
			format(nc), [3]string{format(16), format(8), format(31)}, 0.5))
	}
	// a28: SAR conversion cycles.
	{
		bits := 10
		n := float64(SARCycles(bits))
		format := func(v float64) string { return FormatPlain(v, "cycles") }
		scene := BlockDiagramScene("SAR ADC",
			[]string{"S/H", "COMPARATOR", "SAR LOGIC", "DAC"},
			[]string{fmt.Sprintf("resolution: %d bits", bits)})
		scene.Kind = visual.KindSchematic
		add(dataset.NewMCNumeric("a28", dataset.Analog, "sar-adc",
			"The successive-approximation ADC in the figure performs a binary search over "+
				"its DAC codes. How many comparison cycles does one conversion take at the "+
				"annotated resolution?",
			scene, n, "cycles", 0,
			format(n), [3]string{format(1023), format(20), format(5)}, 0.5))
	}
	// a29: instrumentation amplifier gain.
	{
		gain := InstrumentationAmpGain(50000, 1000)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := OpAmpScene("Instrumentation amplifier", "Rg=1 kOhm", "R=50 kOhm", false)
		add(dataset.NewMCNumeric("a29", dataset.Analog, "in-amp",
			"The three-op-amp instrumentation amplifier in the figure has a unity-gain "+
				"difference stage. With the gain-setting resistors annotated, what is the overall "+
				"differential gain (1 + 2R/Rg)?",
			scene, gain, "V/V", 0.02, format(gain), NumericDistractors(gain, format), 0.6))
	}
	// a30: feedback topology identification.
	{
		scene := BlockDiagramScene("Feedback amplifier",
			[]string{"AMP A", "LOAD"},
			[]string{"output voltage sampled", "feedback voltage in series with input"})
		scene.Kind = visual.KindSchematic
		add(dataset.NewMC("a30", dataset.Analog, "feedback-topology",
			"The feedback network in the figure samples the output voltage and returns a "+
				"voltage in series with the input. Which feedback topology is this?",
			scene, "series-shunt (voltage-voltage) feedback",
			[3]string{"shunt-series (current-current) feedback",
				"series-series (transconductance) feedback",
				"shunt-shunt (transresistance) feedback"}, 0.7))
	}

	// --- Curves (a31..a35) --------------------------------------------

	// a31: DC gain from a Bode magnitude plot.
	{
		h := SinglePole(100, 1e4)
		pts := h.BodeSweep(1e2, 1e7, 8)
		dcDB := h.MagnitudeDB(1e2)
		format := func(v float64) string { return FormatPlain(round3(v), "dB") }
		scene := BodeScene("Bode magnitude plot", pts,
			[]string{"low-frequency plateau: 40 dB"})
		add(dataset.NewMCNumeric("a31", dataset.Analog, "bode-dcgain",
			"The Bode magnitude plot in the figure shows an amplifier's frequency response. "+
				"What is the low-frequency (DC) gain in dB?",
			scene, round3(dcDB), "dB", 0.03, format(dcDB), NumericDistractors(dcDB, format), 0.4))
	}
	// a32: pole frequency from a Bode plot.
	{
		h := SinglePole(100, 1e4)
		wc := h.CutoffOmega()
		pts := h.BodeSweep(1e2, 1e7, 8)
		format := func(v float64) string { return FormatSI(v, "rad/s") }
		scene := BodeScene("Bode magnitude plot", pts,
			[]string{"gain is 3 dB below the plateau at w = 10 krad/s"})
		add(dataset.NewMCNumeric("a32", dataset.Analog, "bode-pole",
			"From the Bode magnitude plot in the figure, at what angular frequency does the "+
				"amplifier's dominant pole lie (the -3 dB corner)?",
			scene, wc, "rad/s", 0.05, format(wc), NumericDistractors(wc, format), 0.5))
	}
	// a33: roll-off slope.
	{
		h := SinglePole(1000, 1e3)
		pts := h.BodeSweep(1e1, 1e7, 8)
		scene := BodeScene("Bode magnitude plot", pts,
			[]string{"single corner visible"})
		add(dataset.NewMC("a33", dataset.Analog, "bode-slope",
			"Beyond the corner frequency visible in the Bode magnitude plot, at what rate "+
				"does the gain roll off?",
			scene, "-20 dB/decade",
			[3]string{"-40 dB/decade", "-6 dB/decade", "-10 dB/decade"}, 0.4))
	}
	// a34: phase margin.
	{
		h := TwoPole(1000, 1e3, 1e6)
		pm := h.PhaseMarginDeg()
		pts := h.BodeSweep(1e2, 1e8, 8)
		format := func(v float64) string { return FormatPlain(round1(v), "degrees") }
		scene := BodeScene("Loop-gain Bode plot", pts,
			[]string{"poles at 1 krad/s and 1 Mrad/s", "DC gain 60 dB"})
		add(dataset.NewMCNumeric("a34", dataset.Analog, "phase-margin",
			"The loop gain of a two-pole amplifier is plotted in the figure with its pole "+
				"frequencies annotated. What is the phase margin at the unity-gain crossover?",
			scene, round1(pm), "degrees", 0.08, format(pm),
			[3]string{format(90), format(45), format(180 - round1(pm))}, 0.8))
	}
	// a35: unity-gain frequency.
	{
		h := SinglePole(100, 1e4)
		wu := h.UnityGainOmega()
		pts := h.BodeSweep(1e2, 1e8, 8)
		format := func(v float64) string { return FormatSI(v, "rad/s") }
		scene := BodeScene("Bode magnitude plot", pts,
			[]string{"DC gain 40 dB", "pole at 10 krad/s"})
		add(dataset.NewMCNumeric("a35", dataset.Analog, "unity-gain",
			"For the single-pole amplifier whose response is plotted in the figure, at what "+
				"angular frequency does the gain fall to unity (0 dB)?",
			scene, wu, "rad/s", 0.05, format(wu), NumericDistractors(wu, format), 0.6))
	}

	// --- Diagrams (a36..a40) ------------------------------------------

	// a36: closed-loop gain from a feedback block diagram.
	{
		a0, beta := 1e4, 0.01
		acl := ClosedLoopGain(a0, beta)
		format := func(v float64) string { return FormatPlain(round3(v), "V/V") }
		scene := BlockDiagramScene("Negative feedback loop",
			[]string{"A", "OUTPUT"},
			[]string{"A = 10000", "beta = 0.01", "feedback subtracts at input"})
		add(dataset.NewMCNumeric("a36", dataset.Analog, "closed-loop",
			"The negative-feedback system in the figure has forward gain A and feedback "+
				"factor beta as annotated. What is the closed-loop gain A/(1+A*beta)?",
			scene, acl, "V/V", 0.02, format(acl), NumericDistractors(acl, format), 0.5))
	}
	// a37: pipeline ADC residue gain.
	{
		g := PipelineResidueGain(2)
		format := func(v float64) string { return FormatPlain(v, "V/V") }
		scene := BlockDiagramScene("Pipeline ADC stage",
			[]string{"S/H", "SUB-ADC", "DAC", "RESIDUE AMP"},
			[]string{"stage resolves 2 bits"})
		add(dataset.NewMCNumeric("a37", dataset.Analog, "pipeline-residue",
			"Each stage of the pipeline ADC in the figure resolves the number of bits "+
				"annotated and amplifies its residue for the next stage. What interstage residue "+
				"gain does the stage need?",
			scene, g, "V/V", 0,
			format(g), [3]string{format(2), format(8), format(1)}, 0.65))
	}
	// a38: PLL block identification.
	{
		scene := BlockDiagramScene("Phase-locked loop",
			[]string{"PFD", "LOOP FILTER", "X", "DIVIDER"},
			[]string{"block X converts control voltage to frequency"})
		add(dataset.NewMC("a38", dataset.Analog, "pll",
			"In the phase-locked loop of the figure, the block marked X takes the loop "+
				"filter's control voltage and produces the output clock. What is block X?",
			scene, "voltage-controlled oscillator (VCO)",
			[3]string{"phase-frequency detector", "charge pump", "frequency divider"}, 0.45))
	}
	// a39: Miller compensation purpose.
	{
		scene := BlockDiagramScene("Two-stage op-amp",
			[]string{"GM1", "GM2"},
			[]string{"capacitor Cc bridges input and output of second stage"})
		add(dataset.NewMC("a39", dataset.Analog, "miller",
			"The two-stage amplifier in the figure has a capacitor Cc connected across its "+
				"second stage. What is the primary purpose of Cc?",
			scene, "pole splitting: it creates a dominant pole for stability (Miller compensation)",
			[3]string{"it boosts the DC gain of the second stage",
				"it filters power-supply noise from the output",
				"it cancels the input offset voltage"}, 0.7))
	}
	// a40: sample-and-hold recognition.
	{
		scene := BlockDiagramScene("Mystery switched circuit",
			[]string{"SWITCH", "CAP", "BUFFER"},
			[]string{"switch driven by clock phi", "capacitor holds voltage when open"})
		add(dataset.NewMC("a40", dataset.Analog, "sample-hold",
			"A clocked switch charges a capacitor that drives a unity-gain buffer, as shown "+
				"in the figure. What circuit is this?",
			scene, "sample-and-hold",
			[3]string{"charge pump", "switched-capacitor integrator", "peak detector"}, 0.4))
	}

	// --- Equation (a41) -------------------------------------------------

	{
		wp := 1e4
		scene := EquationScene(visual.KindEquation, "Transfer function",
			[]string{"H(s) = 100 / (1 + s/10000)"})
		format := func(v float64) string { return FormatSI(v, "rad/s") }
		add(dataset.NewMCNumeric("a41", dataset.Analog, "tf-pole",
			"The symbolic transfer function in the figure describes a single-pole amplifier. "+
				"At what angular frequency is its pole located?",
			scene, wp, "rad/s", 0.02, format(wp), NumericDistractors(wp, format), 0.4))
	}

	// --- Equations sheet (a42) ------------------------------------------

	{
		// Single-loop KVL: Vs = I*(R1+R2).
		vs, r1, r2 := 9.0, 1000.0, 2000.0
		i := vs / (r1 + r2)
		// Cross-check with MNA.
		c := NewCircuit()
		c.V("Vs", "n1", Ground, vs).R("R1", "n1", "n2", r1).R("R2", "n2", Ground, r2)
		sol, err := c.SolveDC()
		if err != nil {
			panic(err)
		}
		mustEq("a42", real(-sol.BranchCurrents["Vs"]), i)
		format := func(v float64) string { return FormatSI(v, "A") }
		scene := EquationScene(visual.KindEquations, "Loop equations",
			[]string{"KVL: 9 = 1000*I + 2000*I", "solve for the loop current I"})
		add(dataset.NewMCNumeric("a42", dataset.Analog, "kvl",
			"The loop equation in the figure describes a single-loop circuit. What is the "+
				"loop current I?",
			scene, i, "A", 0.02, format(i), NumericDistractors(i, format), 0.35))
	}

	// --- Mixed (a43, a44) -------------------------------------------------

	{
		id, vov := 0.5e-3, 0.25
		gm := GmFromBias(id, vov)
		format := func(v float64) string { return FormatSI(v, "S") }
		scene := MixedScene("Biased transistor with parameter table",
			"NMOS in saturation",
			[][2]string{{"ID", "0.5 mA"}, {"Vov", "0.25 V"}})
		add(dataset.NewMCNumeric("a43", dataset.Analog, "gm-bias",
			"Using the bias point listed in the device table of the figure and the square-law "+
				"relation gm = 2*ID/Vov, what is the transistor's transconductance?",
			scene, gm, "S", 0.02, format(gm), NumericDistractors(gm, format), 0.5))
	}
	{
		a0, fp, acl := 1000.0, 1e3, 10.0
		bw := GainBandwidthProduct(a0, fp) / acl
		format := func(v float64) string { return FormatSI(v, "Hz") }
		scene := MixedScene("Amplifier with response table",
			"op-amp in closed loop",
			[][2]string{{"A0", "1000"}, {"fp", "1 kHz"}, {"closed-loop gain", "10"}})
		add(dataset.NewMCNumeric("a44", dataset.Analog, "gbw",
			"The amplifier described by the table in the figure has a single pole. When "+
				"configured for the closed-loop gain listed, what closed-loop bandwidth results "+
				"(gain-bandwidth product divided by closed-loop gain)?",
			scene, bw, "Hz", 0.03, format(bw), NumericDistractors(bw, format), 0.6))
	}

	return qs
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
func round1(v float64) float64 { return math.Round(v*10) / 10 }

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }
