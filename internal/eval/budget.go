package eval

import (
	"context"
	"runtime"
	"sync"
)

// WorkerPool is a weighted FIFO admission semaphore over a fixed budget
// of evaluation worker tokens. It is the session-budget seam the serving
// layer (internal/serve) schedules tenants through: every run asks for
// its session's worker share before building a Runner, so N concurrent
// runs never oversubscribe one machine-wide pool, and admission order
// is strictly first-come-first-served — the head waiter blocks the
// queue until its full weight is free, so a heavy request is never
// starved by a stream of light ones arriving behind it.
//
// All methods are safe for concurrent use. Token grants are whole: a
// waiter is granted exactly the count it asked for (clamped to the pool
// capacity) or nothing.
type WorkerPool struct {
	mu    sync.Mutex
	cap   int
	free  int
	queue []*poolWaiter // FIFO; queue[0] is the oldest waiter
}

// poolWaiter is one queued Acquire. ready is closed exactly once, when
// the waiter's tokens have been debited from the pool; granted tells a
// cancelled Acquire whether it must hand tokens back.
type poolWaiter struct {
	n       int
	ready   chan struct{}
	granted bool
}

// NewWorkerPool builds a pool of capacity worker tokens; capacity < 1
// means auto — runtime.GOMAXPROCS(0), matching the Runner convention.
func NewWorkerPool(capacity int) *WorkerPool {
	if capacity < 1 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{cap: capacity, free: capacity}
}

// Cap returns the pool's total token budget.
func (p *WorkerPool) Cap() int { return p.cap }

// Free returns the tokens not currently granted. It is a snapshot for
// observability; by the time the caller looks, grants may have moved.
func (p *WorkerPool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// Queued returns the number of waiters not yet granted.
func (p *WorkerPool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Acquire blocks until n worker tokens are granted (FIFO order) or ctx
// is done. n is clamped into [1, Cap]. On success it returns the
// granted count and an idempotent release func the caller must invoke
// when its run finishes; on cancellation it returns ctx's error and no
// tokens remain held.
func (p *WorkerPool) Acquire(ctx context.Context, n int) (int, func(), error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if n < 1 {
		n = 1
	}
	if n > p.cap {
		n = p.cap
	}
	w := &poolWaiter{n: n, ready: make(chan struct{})}
	p.mu.Lock()
	p.queue = append(p.queue, w)
	granted := p.dispatchLocked()
	p.mu.Unlock()
	closeAll(granted)
	select {
	case <-w.ready:
	case <-ctx.Done():
		p.mu.Lock()
		if !w.granted {
			// Still queued: withdraw, then let the new head (which may
			// now fit) through.
			for i, q := range p.queue {
				if q == w {
					p.queue = append(p.queue[:i], p.queue[i+1:]...)
					break
				}
			}
			granted := p.dispatchLocked()
			p.mu.Unlock()
			closeAll(granted)
			return 0, nil, ctx.Err()
		}
		p.mu.Unlock()
		// The grant raced the cancellation: the tokens are ours, so hand
		// them straight back before reporting the cancel.
		p.release(n)
		return 0, nil, ctx.Err()
	}
	var once sync.Once
	release := func() { once.Do(func() { p.release(n) }) }
	return n, release, nil
}

// release credits n tokens and wakes every newly satisfiable waiter.
func (p *WorkerPool) release(n int) {
	p.mu.Lock()
	p.free += n
	granted := p.dispatchLocked()
	p.mu.Unlock()
	closeAll(granted)
}

// dispatchLocked grants waiters strictly from the queue head while
// tokens cover them, returning the ready channels to close once the
// lock is dropped (channel ops never run under the pool mutex).
func (p *WorkerPool) dispatchLocked() []chan struct{} {
	var ready []chan struct{}
	for len(p.queue) > 0 && p.queue[0].n <= p.free {
		w := p.queue[0]
		p.queue = p.queue[1:]
		p.free -= w.n
		w.granted = true
		ready = append(ready, w.ready)
	}
	return ready
}

// closeAll signals a batch of grants.
func closeAll(chs []chan struct{}) {
	for _, ch := range chs {
		close(ch)
	}
}
