package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// offlineReports runs the same evaluation the server would, directly
// through the engine — the reference for every byte-identity check.
func offlineReports(t *testing.T, modelNames []string, workers int) []*eval.Report {
	t.Helper()
	b, models := fixture(t)
	picked := make([]eval.Model, 0, len(modelNames))
	for _, name := range modelNames {
		for _, m := range models {
			if m.Name() == name {
				picked = append(picked, m)
			}
		}
	}
	if len(picked) != len(modelNames) {
		t.Fatalf("models %v not all in zoo", modelNames)
	}
	r := eval.Runner{Workers: workers}
	reports, err := r.EvaluateAllContext(context.Background(), picked, b)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// collectStream POSTs a streaming run and returns the raw event lines
// (NDJSON) or frames (SSE) plus the terminal summary.
func collectNDJSON(t *testing.T, ts *httptest.Server, spec string) ([]string, RunSummary) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("streaming POST = %d (%s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	var sum RunSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil || !sum.Done {
		t.Fatalf("last line %q is not a summary (err %v)", lines[len(lines)-1], err)
	}
	return lines[:len(lines)-1], sum
}

// reconstructReportBytes rebuilds the canonical report body from a
// run's streamed events — the client-side half of the byte-identity
// contract.
func reconstructReportBytes(t *testing.T, modelOrder []string, eventLines []string) []byte {
	t.Helper()
	byModel := make(map[string]*ReportDoc, len(modelOrder))
	docs := make([]ReportDoc, len(modelOrder))
	for i, name := range modelOrder {
		docs[i] = ReportDoc{Model: name, Results: []ResultDoc{}}
		byModel[name] = &docs[i]
	}
	for i, line := range eventLines {
		var ev RunEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Seq != i {
			t.Fatalf("event %d carries seq %d — stream out of order", i, ev.Seq)
		}
		doc, ok := byModel[ev.Model]
		if !ok {
			t.Fatalf("event %d names unknown model %q", i, ev.Model)
		}
		doc.Results = append(doc.Results, ResultDoc{
			QuestionID: ev.QuestionID,
			Category:   ev.Category,
			Response:   ev.Response,
			Correct:    ev.Correct,
		})
	}
	for i := range docs {
		correct := 0
		for _, r := range docs[i].Results {
			if r.Correct {
				correct++
			}
		}
		if n := len(docs[i].Results); n > 0 {
			docs[i].Pass1 = float64(correct) / float64(n)
		}
	}
	body, err := json.Marshal(reportsEnvelope{Reports: docs})
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// fetchReport GETs a run's canonical report body.
func fetchReport(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report = %d (%s)", resp.StatusCode, body)
	}
	return body
}

// TestServeStreamByteIdentity is the tentpole determinism check: for a
// fixed (models, collection), the NDJSON event stream reassembled
// client-side AND the /report body are byte-identical to the offline
// EvaluateAllContext report marshalled through the same canonical
// encoding — the §6/§7 invariant extended across the wire.
func TestServeStreamByteIdentity(t *testing.T) {
	modelNames := []string{"GPT4o", "LLaVA-7b"}
	want, err := MarshalReports(offlineReports(t, modelNames, 2))
	if err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, testConfig(t))
	events, sum := collectNDJSON(t, ts,
		`{"models":["GPT4o","LLaVA-7b"],"workers":2,"session":"identity","stream":"ndjson"}`)

	if got := reconstructReportBytes(t, modelNames, events); !bytes.Equal(got, want) {
		t.Errorf("report reconstructed from the event stream differs from the offline report\nstream: %s\noffline: %s", got, want)
	}
	if sum.State != "done" {
		t.Fatalf("summary state %s (%s)", sum.State, sum.Error)
	}
	if got := fetchReport(t, ts, sum.ID); !bytes.Equal(got, want) {
		t.Errorf("/report body differs from the offline report")
	}

	// A second identical run streams identical bytes, and the /events
	// replay of the first run matches them line for line.
	events2, _ := collectNDJSON(t, ts,
		`{"models":["GPT4o","LLaVA-7b"],"workers":2,"session":"identity","stream":"ndjson"}`)
	if strings.Join(events, "\n") != strings.Join(events2, "\n") {
		t.Error("two identical runs streamed different events")
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + sum.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	replayLines := strings.Split(strings.TrimSuffix(string(replay), "\n"), "\n")
	if got := strings.Join(replayLines[:len(replayLines)-1], "\n"); got != strings.Join(events, "\n") {
		t.Error("late /events replay differs from the live stream")
	}

	// Worker count is invisible on the wire: a serial run of the same
	// spec produces the identical stream.
	serial, _ := collectNDJSON(t, ts,
		`{"models":["GPT4o","LLaVA-7b"],"workers":1,"session":"identity-serial","stream":"ndjson"}`)
	if strings.Join(events, "\n") != strings.Join(serial, "\n") {
		t.Error("workers=1 and workers=2 streamed different events")
	}
}

// TestServeStreamSSE checks the SSE framing carries the same payloads
// as NDJSON: event frames in order, then one done frame.
func TestServeStreamSSE(t *testing.T) {
	_, ts := startServer(t, testConfig(t))
	ndjson, _ := collectNDJSON(t, ts, `{"models":["GPT4o"],"session":"sse-ref","stream":"ndjson"}`)

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"models":["GPT4o"],"session":"sse","stream":"sse"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE POST = %d (%s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	frames := strings.Split(strings.TrimSuffix(string(body), "\n\n"), "\n\n")
	if len(frames) != len(ndjson)+1 {
		t.Fatalf("%d SSE frames, want %d events + 1 done", len(frames), len(ndjson))
	}
	for i, frame := range frames {
		lines := strings.SplitN(frame, "\n", 2)
		if len(lines) != 2 || !strings.HasPrefix(lines[1], "data: ") {
			t.Fatalf("frame %d malformed: %q", i, frame)
		}
		data := strings.TrimPrefix(lines[1], "data: ")
		if i < len(ndjson) {
			if lines[0] != "event: result" {
				t.Fatalf("frame %d type %q, want result", i, lines[0])
			}
			if data != ndjson[i] {
				t.Errorf("frame %d payload differs from NDJSON:\nsse:    %s\nndjson: %s", i, data, ndjson[i])
			}
		} else {
			if lines[0] != "event: done" {
				t.Fatalf("final frame type %q, want done", lines[0])
			}
			var sum RunSummary
			if err := json.Unmarshal([]byte(data), &sum); err != nil || !sum.Done || sum.State != "done" {
				t.Fatalf("bad done frame %q (err %v)", data, err)
			}
		}
	}

	// Accept-header negotiation picks SSE on the replay endpoint.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/r0001/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Accept negotiation served %q", ct)
	}
}

// TestServeStreamExtended streams an extended-fold run and checks the
// event stream against the offline shard evaluation, including the
// ?from= replay window.
func TestServeStreamExtended(t *testing.T) {
	_, models := fixture(t)
	var gpt eval.Model
	for _, m := range models {
		if m.Name() == "GPT4o" {
			gpt = m
		}
	}
	r := eval.Runner{Workers: 2}
	offline := []*eval.Report{{}}
	if err := r.EvaluateShardsContext(context.Background(), []eval.Model{gpt},
		func(yield func(sh dataset.Shard) error) error {
			return core.StreamExtended("serve-ext", 3, 4, yield)
		}, offline); err != nil {
		t.Fatal(err)
	}
	want, err := MarshalReports(offline)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, testConfig(t))
	events, sum := collectNDJSON(t, ts,
		`{"kind":"extended","seed":"serve-ext","per_category":3,"shard_size":4,"models":["GPT4o"],"workers":2,"session":"ext","stream":"ndjson"}`)
	if got := reconstructReportBytes(t, []string{"GPT4o"}, events); !bytes.Equal(got, want) {
		t.Errorf("extended stream differs from offline shard evaluation")
	}
	if got := fetchReport(t, ts, sum.ID); !bytes.Equal(got, want) {
		t.Errorf("extended /report differs from offline shard evaluation")
	}

	// ?from= replays a suffix only.
	resp, err := http.Get(ts.URL + "/v1/runs/" + sum.ID + "/events?from=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != len(events)-10+1 {
		t.Fatalf("from=10 replayed %d lines, want %d", len(lines), len(events)-10+1)
	}
	if lines[0] != events[10] {
		t.Errorf("from=10 starts with %q, want %q", lines[0], events[10])
	}
	resp, err = http.Get(ts.URL + "/v1/runs/" + sum.ID + "/events?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("from=-1 = %d, want 400", resp.StatusCode)
	}
}
