package analog

import (
	"fmt"
	"math"
)

// FormatSI renders a value with an SI prefix and unit, e.g. 2200 Ohm ->
// "2.2 kOhm", 0.004 S -> "4 mS". Values render with up to three
// significant decimals, trimmed.
func FormatSI(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	type prefix struct {
		mult float64
		sym  string
	}
	prefixes := []prefix{
		{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
	}
	av := math.Abs(v)
	for _, p := range prefixes {
		if av >= p.mult*0.9999 {
			return trimNum(v/p.mult) + " " + p.sym + unit
		}
	}
	last := prefixes[len(prefixes)-1]
	return trimNum(v/last.mult) + " " + last.sym + unit
}

// FormatPlain renders a value without SI scaling.
func FormatPlain(v float64, unit string) string {
	s := trimNum(v)
	if unit == "" {
		return s
	}
	return s + " " + unit
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// NumericDistractors builds three plausible wrong numeric options near
// the golden value, formatted with the supplied renderer; the candidates
// are the classic unit/sign/factor slips students make.
func NumericDistractors(golden float64, format func(float64) string) [3]string {
	goldenStr := format(golden)
	cands := []float64{
		golden * 2, golden / 2, -golden, golden * 10, golden / 10,
		golden * 1.5, golden + 1, golden - 1, golden * 3,
	}
	var out [3]string
	seen := map[string]bool{goldenStr: true}
	i := 0
	for _, c := range cands {
		if i >= 3 {
			break
		}
		s := format(c)
		if seen[s] {
			continue
		}
		seen[s] = true
		out[i] = s
		i++
	}
	// Exhausted candidates with duplicates (tiny goldens): fall back to
	// offsets guaranteed distinct.
	for ; i < 3; i++ {
		out[i] = format(golden + float64(i+2))
	}
	return out
}
