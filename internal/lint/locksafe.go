package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafe checks mutex discipline with a branch-joining must-analysis
// in the style of poolown: within one function (or function literal)
// body, every sync.Mutex/RWMutex Lock or RLock must be released on
// every path — by a matching unlock or a deferred one — and nothing
// that can block (channel ops, selects, may-block calls per the facts
// layer) may run while a lock is held. The latter is the deadlock
// shape the reorder buffer and SceneCache must never regress into:
// a blocked holder starves every other goroutine contending for the
// lock, and under the serving roadmap that is a whole-process stall.
//
// Analysis is per-body: lock state does not flow into closures or
// callees. Unlocking a lock this body never acquired is ignored, which
// keeps *Locked-style helper functions (callee unlocks a caller-held
// lock) out of scope rather than misreported.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "every Lock/RLock must be paired with an unlock on all paths (deferred counts), kinds must match, " +
		"and no channel op, select, or may-block call may run while a lock is held",
	Run: runLockSafe,
}

// lockKey identifies one lock by the variable at the root of its
// expression plus the rendered path, so `c.mu` and `d.mu` are distinct
// even when both roots have the same name.
type lockKey struct {
	root *types.Var
	path string
}

// lockState is the must-hold state of one lock on the current path.
type lockState struct {
	kind     string // "Lock" or "RLock"
	pos      token.Pos
	deferred bool // a matching deferred unlock is scheduled
}

// lockEnv maps held locks to their state. Branch analysis clones it.
type lockEnv map[lockKey]lockState

func (e lockEnv) clone() lockEnv {
	c := make(lockEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

type lockWalker struct {
	pass *Pass
	info *types.Info
}

func runLockSafe(pass *Pass) {
	info := pass.Pkg.Info
	if info == nil {
		return
	}
	w := &lockWalker{pass: pass, info: info}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		// Every function declaration and every function literal is its
		// own analysis unit (unlike poolown, nested literals are not
		// skipped: the sync.Once compute closure and worker bodies have
		// lock discipline of their own).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w.checkUnit(n.Body)
				}
			case *ast.FuncLit:
				w.checkUnit(n.Body)
			}
			return true
		})
	}
}

// checkUnit runs the must-analysis over one function body.
func (w *lockWalker) checkUnit(body *ast.BlockStmt) {
	env := lockEnv{}
	if w.block(body.List, env) {
		return
	}
	for _, k := range sortedKeys(env) {
		if st := env[k]; !st.deferred {
			w.pass.Reportf(st.pos, "%s is locked here but not released on every path", k.path)
		}
	}
}

// block walks a statement list, reporting whether the path terminates
// (return, panic, branch) before falling off the end.
func (w *lockWalker) block(list []ast.Stmt, env lockEnv) bool {
	for _, s := range list {
		if w.stmt(s, env) {
			return true
		}
	}
	return false
}

// stmt transfers env across one statement; the result reports path
// termination.
func (w *lockWalker) stmt(s ast.Stmt, env lockEnv) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, env)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && isBuiltin(w.info, call, "panic") {
			return true // deferred unlocks run during panic unwinding
		}
	case *ast.SendStmt:
		w.scan(s.Chan, env)
		w.scan(s.Value, env)
		w.heldCheck(env, s.Pos(), "channel send")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, env)
		}
		for _, k := range sortedKeys(env) {
			if st := env[k]; !st.deferred {
				w.pass.Reportf(s.Pos(), "return without unlocking %s (locked at line %d)", k.path, w.line(st.pos))
			}
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end straight-line flow
	case *ast.DeferStmt:
		w.deferStmt(s, env)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scan(a, env)
		}
		// The spawned body is its own analysis unit, and spawning
		// itself does not block.
	case *ast.BlockStmt:
		return w.block(s.List, env)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, env)
	case *ast.IfStmt:
		return w.ifStmt(s, env)
	case *ast.SwitchStmt:
		return w.switchStmt(s.Init, s.Tag, s.Body, env)
	case *ast.TypeSwitchStmt:
		return w.switchStmt(s.Init, nil, s.Body, env)
	case *ast.SelectStmt:
		return w.selectStmt(s, env)
	case *ast.ForStmt:
		if s.Init != nil && w.stmt(s.Init, env) {
			return true
		}
		if s.Cond != nil {
			w.scan(s.Cond, env)
		}
		body := env.clone()
		terminated := w.block(s.Body.List, body)
		if !terminated && s.Post != nil {
			w.stmt(s.Post, body)
		}
		if !terminated {
			w.loopLeak(env, body)
		}
	case *ast.RangeStmt:
		w.scan(s.X, env)
		if t := w.info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.heldCheck(env, s.Pos(), "range over a channel")
			}
		}
		body := env.clone()
		if !w.block(s.Body.List, body) {
			w.loopLeak(env, body)
		}
	default:
		w.scan(s, env) // assignments, declarations, inc/dec
	}
	return false
}

// scan walks an expression (or expression-bearing statement) applying
// lock operations and blocking checks, without descending into
// function literals (separate units).
func (w *lockWalker) scan(n ast.Node, env lockEnv) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if kind, key, ok := w.lockOp(x); ok {
				w.applyLockOp(kind, key, x.Pos(), env)
				return true
			}
			if fn := calleeOf(w.info, x); fn != nil {
				if _, blocks := w.pass.Facts.MayBlock(fn); blocks {
					w.heldCheck(env, x.Pos(), "call to "+qualifiedName(fn))
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.heldCheck(env, x.Pos(), "channel receive")
			}
		}
		return true
	})
}

// lockOp recognises Lock/Unlock/RLock/RUnlock calls on sync.Mutex and
// sync.RWMutex (including promoted methods of embedded mutexes) and
// resolves the lock's identity. ok is false for untrackable receivers
// (package-qualified or computed expressions).
func (w *lockWalker) lockOp(call *ast.CallExpr) (kind string, key lockKey, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockKey{}, false
	}
	fn := calleeOf(w.info, call)
	if fn == nil {
		return "", lockKey{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", lockKey{}, false
	}
	named := recvNamed(fn)
	if named == nil {
		return "", lockKey{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", lockKey{}, false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
	default:
		return "", lockKey{}, false
	}
	root := w.rootVar(sel.X)
	if root == nil {
		return "", lockKey{}, false
	}
	return fn.Name(), lockKey{root: root, path: exprString(sel.X)}, true
}

// rootVar resolves the variable at the root of a lock expression
// (`c.mu` → c, `shards[i].mu` → shards), or nil when the root is not a
// plain variable.
func (w *lockWalker) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := w.info.Uses[x]
			if obj == nil {
				obj = w.info.Defs[x]
			}
			v, _ := obj.(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// applyLockOp transfers env across one lock operation, reporting
// self-deadlocks, kind mismatches, and double unlocks.
func (w *lockWalker) applyLockOp(kind string, key lockKey, pos token.Pos, env lockEnv) {
	switch kind {
	case "Lock", "RLock":
		if st, held := env[key]; held {
			if kind == "Lock" || st.kind == "Lock" {
				w.pass.Reportf(pos, "acquiring %s while it is already held (locked at line %d): self-deadlock", key.path, w.line(st.pos))
			}
			return
		}
		w.heldCheck(env, pos, "acquiring "+key.path)
		env[key] = lockState{kind: kind, pos: pos}
	case "Unlock", "RUnlock":
		st, held := env[key]
		if !held {
			return // caller-held lock released by a *Locked helper
		}
		if want := unlockFor(st.kind); kind != want {
			w.pass.Reportf(pos, "unlocking %s with %s but it was %s at line %d; use %s",
				key.path, kind, heldVerb(st.kind), w.line(st.pos), want)
		} else if st.deferred {
			w.pass.Reportf(pos, "unlocking %s which already has a deferred unlock scheduled: the deferred unlock will panic", key.path)
		}
		delete(env, key)
	}
}

// unlockFor maps a lock kind to its matching unlock method.
func unlockFor(kind string) string {
	if kind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// heldVerb renders a held kind for diagnostics.
func heldVerb(kind string) string {
	if kind == "RLock" {
		return "read-locked"
	}
	return "locked"
}

// deferStmt processes a defer: a deferred matching unlock discharges
// the pairing obligation; a deferred closure's direct unlocks do the
// same.
func (w *lockWalker) deferStmt(s *ast.DeferStmt, env lockEnv) {
	call := s.Call
	if kind, key, ok := w.lockOp(call); ok {
		if kind != "Unlock" && kind != "RUnlock" {
			return // defer mu.Lock() is nonsense; leave it to review
		}
		st, held := env[key]
		if !held {
			return
		}
		if want := unlockFor(st.kind); kind != want {
			w.pass.Reportf(call.Pos(), "unlocking %s with %s but it was %s at line %d; use %s",
				key.path, kind, heldVerb(st.kind), w.line(st.pos), want)
			return
		}
		if st.deferred {
			w.pass.Reportf(call.Pos(), "unlocking %s which already has a deferred unlock scheduled: the deferred unlock will panic", key.path)
			return
		}
		st.deferred = true
		env[key] = st
		return
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, nested := n.(*ast.FuncLit); nested {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				if kind, key, opOK := w.lockOp(c); opOK && (kind == "Unlock" || kind == "RUnlock") {
					if st, held := env[key]; held && !st.deferred && kind == unlockFor(st.kind) {
						st.deferred = true
						env[key] = st
					}
				}
			}
			return true
		})
		return
	}
	for _, a := range call.Args {
		w.scan(a, env)
	}
}

// heldCheck reports a blocking operation performed while a lock is
// held. The lexicographically smallest held path is reported so the
// diagnostic is deterministic regardless of map order.
func (w *lockWalker) heldCheck(env lockEnv, pos token.Pos, what string) {
	if len(env) == 0 {
		return
	}
	keys := sortedKeys(env)
	st := env[keys[0]]
	w.pass.Reportf(pos, "%s may block while holding %s (locked at line %d)", what, keys[0].path, w.line(st.pos))
}

// loopLeak reports locks acquired inside a loop body that are still
// held when the iteration ends: the next iteration would self-deadlock
// (Mutex) or starve writers (RWMutex).
func (w *lockWalker) loopLeak(entry, body lockEnv) {
	for _, k := range sortedKeys(body) {
		if _, before := entry[k]; before {
			continue
		}
		if st := body[k]; !st.deferred {
			w.pass.Reportf(st.pos, "%s is locked in the loop body but not released by the end of the iteration", k.path)
		}
	}
}

func (w *lockWalker) ifStmt(s *ast.IfStmt, env lockEnv) bool {
	if s.Init != nil && w.stmt(s.Init, env) {
		return true
	}
	w.scan(s.Cond, env)
	branches := make([]lockBranch, 0, 2)
	thenEnv := env.clone()
	branches = append(branches, lockBranch{thenEnv, w.block(s.Body.List, thenEnv)})
	elseEnv := env.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.stmt(s.Else, elseEnv)
	}
	branches = append(branches, lockBranch{elseEnv, elseTerm})
	return w.join(env, branches)
}

func (w *lockWalker) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, env lockEnv) bool {
	if init != nil && w.stmt(init, env) {
		return true
	}
	if tag != nil {
		w.scan(tag, env)
	}
	var branches []lockBranch
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scan(e, env)
		}
		cenv := env.clone()
		branches = append(branches, lockBranch{cenv, w.block(cc.Body, cenv)})
	}
	if !hasDefault {
		branches = append(branches, lockBranch{env.clone(), false})
	}
	return w.join(env, branches)
}

func (w *lockWalker) selectStmt(s *ast.SelectStmt, env lockEnv) bool {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.heldCheck(env, s.Pos(), "select with no default")
	}
	var branches []lockBranch
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cenv := env.clone()
		w.commStmt(cc.Comm, cenv)
		branches = append(branches, lockBranch{cenv, w.block(cc.Body, cenv)})
	}
	// A select always runs exactly one of its cases, so there is no
	// implicit skip branch even without a default.
	return w.join(env, branches)
}

// commStmt walks a select communication op's sub-expressions without
// re-flagging the channel op itself (the select-level heldCheck covers
// it; with a default present the op is non-blocking).
func (w *lockWalker) commStmt(comm ast.Stmt, env lockEnv) {
	switch c := comm.(type) {
	case nil:
	case *ast.SendStmt:
		w.scan(c.Chan, env)
		w.scan(c.Value, env)
	case *ast.ExprStmt:
		if u, ok := unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.scan(u.X, env)
		} else {
			w.scan(c.X, env)
		}
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			if u, ok := unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.scan(u.X, env)
			} else {
				w.scan(r, env)
			}
		}
	}
}

type lockBranch struct {
	env        lockEnv
	terminated bool
}

// join merges branch environments back into env with must-semantics: a
// lock survives the join only when every live branch holds it in the
// same mode; a lock held on some but not all live paths is a
// not-released-on-every-path finding. All-terminated branch sets make
// the following code unreachable.
func (w *lockWalker) join(env lockEnv, branches []lockBranch) bool {
	var live []lockEnv
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b.env)
		}
	}
	if len(live) == 0 {
		for k := range env {
			delete(env, k)
		}
		return true
	}
	seen := make(map[lockKey]bool)
	var order []lockKey
	for _, e := range live {
		for _, k := range sortedKeys(e) {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].path != order[j].path {
			return order[i].path < order[j].path
		}
		return order[i].root.Pos() < order[j].root.Pos()
	})
	for k := range env {
		delete(env, k)
	}
	for _, k := range order {
		var states []lockState
		for _, e := range live {
			if st, ok := e[k]; ok {
				states = append(states, st)
			}
		}
		st := states[0]
		for _, s := range states[1:] {
			if s.pos < st.pos {
				st.pos = s.pos
			}
		}
		if len(states) == len(live) {
			agree := true
			for _, s := range states[1:] {
				if s.kind != states[0].kind || s.deferred != states[0].deferred {
					agree = false
					break
				}
			}
			if agree {
				env[k] = st
				continue
			}
		}
		w.pass.Reportf(st.pos, "%s is locked here but not released on every path", k.path)
	}
	return false
}

// sortedKeys returns env's keys ordered by path (then root position)
// so every iteration-derived diagnostic is deterministic.
func sortedKeys(env lockEnv) []lockKey {
	keys := make([]lockKey, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].root.Pos() < keys[j].root.Pos()
	})
	return keys
}

func (w *lockWalker) line(pos token.Pos) int {
	return w.pass.Pkg.Fset.Position(pos).Line
}
