package rng

import (
	"math/bits"
	"strconv"
)

// seedMix decorrelates the two PCG state words derived from one 64-bit
// seed (the golden-ratio constant). New and NewStream must agree on it:
// a Stream is the inline twin of the *rand.Rand New returns.
const seedMix = 0x9e3779b97f4a7c15

// Stream is an inline, allocation-free twin of the generator New
// returns: the same PCG-DXSM state transition and the same Lemire
// bounded reduction as math/rand/v2, reproduced here so hot loops
// (bootstrap resampling draws hundreds of thousands of values per call)
// pay neither the *rand.Rand allocation nor its per-draw interface
// dispatch. For identical seed parts, Stream produces bit-identical
// output to New — TestStreamMatchesRand pins that equivalence against
// the standard library, so a stdlib algorithm change cannot drift past
// the test suite.
//
// A Stream is a value: copy it to fork the sequence, take a pointer to
// advance it. The zero Stream is the stream of NewStream() with no
// parts (valid but fixed); derive real streams from NewStream or
// Hasher.Stream.
type Stream struct {
	hi, lo uint64
}

// NewStream returns the deterministic stream for the given identity,
// bit-compatible with New(parts...): the n-th Uint64 of both agree.
func NewStream(parts ...string) Stream {
	s := Seed(parts...)
	return Stream{hi: s, lo: s ^ seedMix}
}

// Uint64 advances the PCG-DXSM generator one step. The constants and
// permutation mirror math/rand/v2's PCG exactly.
func (p *Stream) Uint64() uint64 {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	// state = state * mul + inc (128-bit LCG step)
	hi, lo := bits.Mul64(p.lo, mulLo)
	hi += p.hi*mulLo + p.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	p.lo = lo
	p.hi = hi
	// DXSM output permutation
	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= (lo | 1)
	return hi
}

// Uint64N returns a uniform value in [0, n), consuming the stream
// exactly as math/rand/v2's 64-bit reduction does (power-of-two mask,
// otherwise Lemire multiply-shift with rejection), so a Stream and a
// Rand seeded alike stay in lockstep through bounded draws too.
func (p *Stream) Uint64N(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two: mask
		return p.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(p.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(p.Uint64(), n)
		}
	}
	return hi
}

// IntN returns a uniform int in [0, n); it panics if n <= 0, matching
// rand.Rand.IntN.
func (p *Stream) IntN(n int) int {
	if n <= 0 {
		panic("rng: invalid argument to IntN")
	}
	return int(p.Uint64N(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1), matching
// rand.Rand.Float64 draw-for-draw.
func (p *Stream) Float64() float64 {
	return float64(p.Uint64()<<11>>11) / (1 << 53)
}

// fnv-1a constants, matching hash/fnv's 64-bit variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hasher is an incremental form of Seed: a partially-applied stream
// identity. Hot loops that derive many streams sharing a key prefix —
// the bootstrap's (model, resamples, level, chunk) chunks — hash the
// shared parts once and extend per item without formatting key strings:
// Hasher.Int appends the decimal form of an integer directly into the
// hash, byte-identical to hashing strconv.Itoa's (and fmt.Sprint's)
// output, so NewHasher(a).Int(7).Stream() == NewStream(a, "7").
type Hasher uint64

// NewHasher starts a hash over the given parts, exactly as Seed does.
func NewHasher(parts ...string) Hasher {
	h := Hasher(fnvOffset64)
	for _, p := range parts {
		h = h.String(p)
	}
	return h
}

// String extends the identity with one string part.
func (h Hasher) String(s string) Hasher {
	for i := 0; i < len(s); i++ {
		h = (h ^ Hasher(s[i])) * fnvPrime64
	}
	return h * fnvPrime64 // the 0 separator byte: (h ^ 0) * prime
}

// Int extends the identity with the decimal rendering of v, without
// allocating the intermediate string.
func (h Hasher) Int(v int) Hasher {
	var buf [20]byte
	b := strconv.AppendInt(buf[:0], int64(v), 10)
	for _, c := range b {
		h = (h ^ Hasher(c)) * fnvPrime64
	}
	return h * fnvPrime64
}

// Float extends the identity with the shortest decimal rendering of v —
// the same bytes fmt.Sprint(v) produces for a float64.
func (h Hasher) Float(v float64) Hasher {
	var buf [32]byte
	b := strconv.AppendFloat(buf[:0], v, 'g', -1, 64)
	for _, c := range b {
		h = (h ^ Hasher(c)) * fnvPrime64
	}
	return h * fnvPrime64
}

// Stream seals the identity into a generator, bit-compatible with
// NewStream/New over the equivalent part list.
func (h Hasher) Stream() Stream {
	s := uint64(h)
	return Stream{hi: s, lo: s ^ seedMix}
}
