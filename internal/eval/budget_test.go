package eval

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// mustAcquire acquires synchronously and fails the test if it would
// block longer than the deadline.
func mustAcquire(t *testing.T, p *WorkerPool, n int) (int, func()) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, release, err := p.Acquire(ctx, n)
	if err != nil {
		t.Fatalf("Acquire(%d): %v", n, err)
	}
	return got, release
}

func TestWorkerPoolClamping(t *testing.T) {
	p := NewWorkerPool(4)
	if p.Cap() != 4 || p.Free() != 4 {
		t.Fatalf("new pool cap/free = %d/%d, want 4/4", p.Cap(), p.Free())
	}

	got, release := mustAcquire(t, p, 99) // above cap → whole pool
	if got != 4 || p.Free() != 0 {
		t.Fatalf("over-cap acquire granted %d (free %d), want 4 (0)", got, p.Free())
	}
	release()
	release() // idempotent: double release must not over-credit
	if p.Free() != 4 {
		t.Fatalf("free after double release = %d, want 4", p.Free())
	}

	got, release = mustAcquire(t, p, 0) // below min → 1
	if got != 1 || p.Free() != 3 {
		t.Fatalf("zero acquire granted %d (free %d), want 1 (3)", got, p.Free())
	}
	release()

	auto := NewWorkerPool(0)
	if auto.Cap() != runtime.GOMAXPROCS(0) {
		t.Fatalf("auto pool cap = %d, want GOMAXPROCS %d", auto.Cap(), runtime.GOMAXPROCS(0))
	}
}

// TestWorkerPoolFIFOHeadBlocks pins the no-starvation property: a
// heavy waiter at the queue head is served before lighter waiters that
// arrived after it, even when the light ones would fit immediately.
func TestWorkerPoolFIFOHeadBlocks(t *testing.T) {
	p := NewWorkerPool(4)
	_, releaseThree := mustAcquire(t, p, 3)
	_, releaseOne := mustAcquire(t, p, 1)

	type grant struct {
		who string
		n   int
	}
	grants := make(chan grant, 4)
	acquire := func(who string, n int) {
		got, release, err := p.Acquire(context.Background(), n)
		if err != nil {
			grants <- grant{who: who + "-err", n: 0}
			return
		}
		grants <- grant{who: who, n: got}
		_ = release // held for the test's duration
	}
	go acquire("heavy", 3)
	for p.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	go acquire("light", 1)
	for p.Queued() != 2 {
		time.Sleep(time.Millisecond)
	}

	// Free exactly three tokens: only the head (heavy, 3) fits — light
	// must stay queued even though one token would have covered it had
	// it been allowed to jump the queue.
	releaseThree()
	first := <-grants
	if first.who != "heavy" || first.n != 3 {
		t.Fatalf("first grant went to %s(%d), want heavy(3)", first.who, first.n)
	}
	if p.Queued() != 1 {
		t.Fatalf("light jumped the queue: %d waiters left, want 1", p.Queued())
	}
	releaseOne()
	second := <-grants
	if second.who != "light" || second.n != 1 {
		t.Fatalf("second grant went to %s(%d), want light(1)", second.who, second.n)
	}
	if p.Free() != 0 || p.Queued() != 0 {
		t.Fatalf("pool free/queued = %d/%d, want 0/0", p.Free(), p.Queued())
	}
}

// TestWorkerPoolPartialFreeKeepsHeadBlocking frees tokens one at a
// time: the light waiter behind a too-heavy head must keep waiting
// until the head is satisfied.
func TestWorkerPoolPartialFreeKeepsHeadBlocking(t *testing.T) {
	p := NewWorkerPool(4)
	var holds []func()
	for i := 0; i < 4; i++ {
		_, release := mustAcquire(t, p, 1)
		holds = append(holds, release)
	}

	grants := make(chan string, 2)
	go func() {
		_, _, err := p.Acquire(context.Background(), 3)
		if err == nil {
			grants <- "heavy"
		}
	}()
	for p.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := p.Acquire(context.Background(), 1)
		if err == nil {
			grants <- "light"
		}
	}()
	for p.Queued() != 2 {
		time.Sleep(time.Millisecond)
	}

	holds[0]() // one token free: fits light, but heavy holds the head
	select {
	case who := <-grants:
		t.Fatalf("%s granted past a blocked head", who)
	case <-time.After(50 * time.Millisecond):
	}
	holds[1]()
	holds[2]() // three free: the head goes through
	if who := <-grants; who != "heavy" {
		t.Fatalf("first grant %s, want heavy", who)
	}
	holds[3]() // fourth token: now light fits
	if who := <-grants; who != "light" {
		t.Fatalf("second grant %s, want light", who)
	}
}

// TestWorkerPoolCancelWithdraws cancels a queued head waiter and
// asserts the queue moves on: the waiter behind it is dispatched and
// no tokens leak.
func TestWorkerPoolCancelWithdraws(t *testing.T) {
	p := NewWorkerPool(2)
	_, releaseAll := mustAcquire(t, p, 2)

	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, _, err := p.Acquire(ctx, 2)
		headErr <- err
	}()
	for p.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	granted := make(chan func(), 1)
	go func() {
		_, release, err := p.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		granted <- release
	}()
	for p.Queued() != 2 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-headErr; err != context.Canceled {
		t.Fatalf("cancelled head returned %v, want context.Canceled", err)
	}
	// Withdrawal alone doesn't free tokens (none were held) but it must
	// unblock the successor once capacity returns.
	releaseAll()
	release := <-granted
	if p.Free() != 1 || p.Queued() != 0 {
		t.Fatalf("free/queued after cancel = %d/%d, want 1/0", p.Free(), p.Queued())
	}
	release()
	if p.Free() != 2 {
		t.Fatalf("free = %d, want 2", p.Free())
	}
}

// TestWorkerPoolStress hammers the pool from many goroutines with
// mixed weights and random cancels; the invariant under -race is that
// every grant is returned and the pool ends whole.
func TestWorkerPoolStress(t *testing.T) {
	const (
		capTokens = 5
		workers   = 16
		rounds    = 200
	)
	p := NewWorkerPool(capTokens)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		weight := g%capTokens + 1
		cancelEvery := g%3 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if cancelEvery && i%7 == 0 {
					ctx, cancel = context.WithCancel(ctx)
					cancel() // pre-cancelled: exercises the withdraw path
				}
				got, release, err := p.Acquire(ctx, weight)
				cancel()
				if err != nil {
					continue
				}
				if got != weight {
					t.Errorf("granted %d, want %d", got, weight)
				}
				release()
			}
		}()
	}
	wg.Wait()
	if p.Free() != capTokens || p.Queued() != 0 {
		t.Fatalf("pool ends free/queued = %d/%d, want %d/0", p.Free(), p.Queued(), capTokens)
	}
}
