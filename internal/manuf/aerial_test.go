package manuf

import (
	"math"
	"testing"
	"testing/quick"
)

func testSim() *AerialSimulator {
	return NewAerialSimulator(KrF()) // 248 nm, NA 0.8
}

func TestIntensityShape(t *testing.T) {
	sim := testSim()
	features := []MaskFeature{{CenterNM: 0, WidthNM: 600}}
	// Centre of a wide line: nearly full intensity.
	if i := sim.Intensity(features, 0); i < 0.95 {
		t.Errorf("centre intensity %v, want ~1", i)
	}
	// Far away: nearly zero.
	if i := sim.Intensity(features, 2000); i > 0.01 {
		t.Errorf("far-field intensity %v, want ~0", i)
	}
	// The nominal edge of a wide isolated line sits at ~0.5 (the erf
	// midpoint).
	if i := sim.Intensity(features, 300); math.Abs(i-0.5) > 0.02 {
		t.Errorf("edge intensity %v, want ~0.5", i)
	}
}

func TestQuickIntensitySymmetric(t *testing.T) {
	sim := testSim()
	f := func(widthRaw, xRaw uint8) bool {
		w := 50 + float64(widthRaw)
		x := float64(xRaw) * 3
		features := []MaskFeature{{CenterNM: 0, WidthNM: w}}
		a := sim.Intensity(features, x)
		b := sim.Intensity(features, -x)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsolatedLinePrintsAtSize(t *testing.T) {
	sim := testSim()
	// A wide isolated line prints at its drawn size (0.5 threshold at
	// the erf midpoint).
	features := []MaskFeature{{CenterNM: 0, WidthNM: 400}}
	cd := sim.PrintedCD(features, 0)
	if math.Abs(cd-400) > 6 {
		t.Errorf("isolated 400 nm line prints %v nm", cd)
	}
}

func TestSubResolutionFails(t *testing.T) {
	sim := testSim()
	// A line far below the resolution limit never clears threshold.
	features := []MaskFeature{{CenterNM: 0, WidthNM: 20}}
	if cd := sim.PrintedCD(features, 0); cd != 0 {
		t.Errorf("20 nm line printed %v nm on a 248 nm tool", cd)
	}
}

func TestProximityEffect(t *testing.T) {
	sim := testSim()
	// Equal lines and spaces print exactly at size: the blurred profile
	// is symmetric about the 0.5 threshold.
	if err := sim.ProximityError(200, 400, 5); math.Abs(err) > 1 {
		t.Errorf("1:1 duty proximity error %v nm, want 0 by symmetry", err)
	}
	// A 150 nm isolated line sits near the KrF resolution limit: its
	// peak intensity sags and it prints narrower than drawn.
	iso := sim.ProximityError(150, 3000, 5)
	if iso >= -5 {
		t.Errorf("near-limit isolated error %v nm, want clearly negative", iso)
	}
	// Packing neighbours close (but resolved) leaks light into the
	// line, printing it wider than the isolated case — the classic
	// dense-vs-iso proximity bias OPC corrects.
	dense := sim.ProximityError(150, 280, 5)
	if dense <= iso {
		t.Errorf("dense error %v should exceed isolated %v", dense, iso)
	}
	// Below the pitch limit the grating bridges: the printed region
	// spans multiple lines.
	features, x0 := LineInGrating(150, 220, 5)
	if cd := sim.PrintedCD(features, x0); cd <= 220 {
		t.Errorf("sub-limit grating printed %v nm, expected bridged lines", cd)
	}
}

func TestBiasOPCRestoresCD(t *testing.T) {
	sim := testSim()
	const cd, pitch = 150.0, 400.0
	before := sim.ProximityError(cd, pitch, 5)
	if math.Abs(before) < 1 {
		t.Fatalf("expected a proximity error to correct, got %v", before)
	}
	bias, ok := sim.ApplyBiasOPC(cd, pitch, 5)
	if !ok {
		t.Fatal("bias OPC failed to converge")
	}
	// The corrective bias opposes the error.
	if before > 0 && bias >= 0 || before < 0 && bias <= 0 {
		t.Errorf("bias %v does not oppose error %v", bias, before)
	}
	// After correction, the printed CD hits the target.
	features, x0 := LineInGrating(cd+bias, pitch, 5)
	after := sim.PrintedCD(features, x0)
	if math.Abs(after-cd) > 2 {
		t.Errorf("after OPC: printed %v, want %v", after, cd)
	}
}

func TestNILSCollapsesAtTightPitch(t *testing.T) {
	sim := testSim()
	const cd = 200
	loose := sim.ImageLogSlope(cd, 10*cd, 5)
	tight := sim.ImageLogSlope(cd, 2*cd, 5)
	if loose <= 0 {
		t.Fatalf("loose-pitch NILS %v", loose)
	}
	if tight >= loose {
		t.Errorf("NILS should collapse with pitch: tight %v vs loose %v", tight, loose)
	}
}

func TestQuickPrintedCDMonotoneInMaskCD(t *testing.T) {
	// Property: drawing a line wider never prints it narrower.
	sim := testSim()
	f := func(cdRaw uint8) bool {
		cd := 150 + float64(cdRaw%100)
		a := sim.PrintedCD([]MaskFeature{{WidthNM: cd}}, 0)
		b := sim.PrintedCD([]MaskFeature{{WidthNM: cd + 10}}, 0)
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBetterToolPrintsFiner(t *testing.T) {
	// An ArF immersion tool resolves lines a KrF tool cannot.
	arf := NewAerialSimulator(ArF())
	krf := NewAerialSimulator(KrF())
	features := []MaskFeature{{CenterNM: 0, WidthNM: 80}}
	if cd := arf.PrintedCD(features, 0); cd == 0 {
		t.Error("ArF immersion failed to print an 80 nm line")
	}
	if cd := krf.PrintedCD(features, 0); cd != 0 {
		t.Errorf("KrF printed an 80 nm line (%v nm) below its limit", cd)
	}
}
