package digital

import (
	"testing"
	"testing/quick"
)

func TestNextStateTables(t *testing.T) {
	// Exhaustive characteristic tables for all four flip-flop kinds.
	type row struct {
		q, a, b, want bool
		invalid       bool
	}
	tables := map[FlipFlopKind][]row{
		FFD: {
			{q: false, a: false, want: false},
			{q: false, a: true, want: true},
			{q: true, a: false, want: false},
			{q: true, a: true, want: true},
		},
		FFT: {
			{q: false, a: false, want: false},
			{q: false, a: true, want: true},
			{q: true, a: false, want: true},
			{q: true, a: true, want: false},
		},
		FFSR: {
			{q: false, a: false, b: false, want: false},
			{q: true, a: false, b: false, want: true},
			{q: false, a: true, b: false, want: true},
			{q: true, a: false, b: true, want: false},
			{q: false, a: true, b: true, invalid: true},
		},
		FFJK: {
			{q: false, a: false, b: false, want: false},
			{q: true, a: false, b: false, want: true},
			{q: false, a: true, b: false, want: true},
			{q: true, a: false, b: true, want: false},
			{q: false, a: true, b: true, want: true}, // toggle
			{q: true, a: true, b: true, want: false}, // toggle
		},
	}
	for kind, rows := range tables {
		for _, r := range rows {
			got, err := NextState(kind, r.q, r.a, r.b)
			if r.invalid {
				if err == nil {
					t.Errorf("%s q=%v a=%v b=%v: want error", kind, r.q, r.a, r.b)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if got != r.want {
				t.Errorf("%s q=%v a=%v b=%v = %v, want %v", kind, r.q, r.a, r.b, got, r.want)
			}
		}
	}
}

func TestQuickExcitationInverse(t *testing.T) {
	// Property: applying the excitation derived for (q -> qn) actually
	// moves the flip-flop from q to qn, for every kind.
	f := func(kindRaw uint8, q, qn bool) bool {
		kind := FlipFlopKind(kindRaw % 4)
		a, b := Excitation(kind, q, qn)
		got, err := NextState(kind, q, a, b)
		return err == nil && got == qn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCharacteristicEquations(t *testing.T) {
	for _, kind := range []FlipFlopKind{FFD, FFT, FFSR, FFJK} {
		if CharacteristicEquation(kind) == "" {
			t.Errorf("no characteristic equation for %s", kind)
		}
	}
}

func TestCounter(t *testing.T) {
	seq := Counter(3, 5, 4)
	want := []int{5, 6, 7, 0, 1}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("Counter = %v, want %v", seq, want)
		}
	}
}

func TestRingCounterPeriod(t *testing.T) {
	const bits = 4
	seq := RingCounter(bits, bits)
	if seq[0] != seq[bits] {
		t.Errorf("ring counter period != %d: %v", bits, seq)
	}
	// Exactly one hot bit in every state.
	for i, s := range seq {
		if popcount(s) != 1 {
			t.Errorf("state %d = %04b has %d hot bits", i, s, popcount(s))
		}
	}
}

func TestJohnsonCounterPeriod(t *testing.T) {
	const bits = 3
	seq := JohnsonCounter(bits, 2*bits)
	if seq[0] != seq[2*bits] {
		t.Errorf("johnson counter period != %d: %v", 2*bits, seq)
	}
	// All 2n states distinct.
	seen := make(map[int]bool)
	for _, s := range seq[:2*bits] {
		if seen[s] {
			t.Errorf("repeated state %03b before full period: %v", s, seq)
		}
		seen[s] = true
	}
}

func TestStateTableStep(t *testing.T) {
	// A simple 2-state Mealy detector: output 1 when input 1 seen in
	// state 1.
	st := &StateTable{
		NumStates: 2,
		Next:      [][2]int{{0, 1}, {0, 1}},
		Output:    [][2]int{{0, 0}, {0, 1}},
	}
	states, outputs, err := st.Step(0, []int{1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantStates := []int{0, 1, 1, 0, 1}
	wantOut := []int{0, 1, 0, 0}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Fatalf("states %v, want %v", states, wantStates)
		}
	}
	for i := range wantOut {
		if outputs[i] != wantOut[i] {
			t.Fatalf("outputs %v, want %v", outputs, wantOut)
		}
	}
}

func TestStateTableStepErrors(t *testing.T) {
	st := &StateTable{NumStates: 1, Next: [][2]int{{0, 0}}, MooreOut: []int{1}}
	if _, _, err := st.Step(5, []int{0}); err == nil {
		t.Error("out-of-range state accepted")
	}
	if _, _, err := st.Step(0, []int{2}); err == nil {
		t.Error("out-of-range input accepted")
	}
	_, outputs, err := st.Step(0, []int{0, 0})
	if err != nil || len(outputs) != 2 || outputs[0] != 1 {
		t.Errorf("moore outputs %v err %v", outputs, err)
	}
}
