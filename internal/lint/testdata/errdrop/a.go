// Corpus for the errdrop analyzer: silently discarded errors, next to
// the blessed idioms that must stay clean.
package errdroptest

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
)

func bareStatementDrop(name string) {
	os.Remove(name) // want `result of os\.Remove includes an error that is silently dropped`
}

func blankInTuple(s string) int {
	n, _ := strconv.Atoi(s) // want `error result of strconv\.Atoi discarded with _`
	return n
}

func directBlankAssign(f *os.File) {
	_ = f.Close() // want `error value discarded with _`
}

func blessedHashWrite(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // blessed hash-write idiom: no finding
	}
	return h.Sum64()
}

func consoleOutputIsFine(sb *strings.Builder) {
	fmt.Println("progress")
	fmt.Fprintf(os.Stderr, "warning\n")
	sb.WriteString("builders never fail")
}

func deferredCloseIsConventional(f *os.File) {
	defer f.Close()
}

func handled(name string) error {
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("cleanup: %w", err)
	}
	return nil
}

func suppressedDrop(name string) {
	//lint:ignore errdrop corpus case: best-effort cleanup, absence is fine
	os.Remove(name)
}
