package core

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/visual"
)

func TestBuildBenchmarkTableI(t *testing.T) {
	b, err := BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	s := b.ComputeStats()
	targets := Targets()
	if s.Total != targets.Total || s.MC != targets.MC || s.SA != targets.SA {
		t.Fatalf("totals %d/%d/%d, want %d/%d/%d",
			s.Total, s.MC, s.SA, targets.Total, targets.MC, targets.SA)
	}
	for c, want := range targets.PerCategory {
		if s.PerCategory[c] != want {
			t.Errorf("%s: %d, want %d", c, s.PerCategory[c], want)
		}
	}
	total := 0
	for k, want := range targets.PerVisual {
		if s.PerVisual[k] != want {
			t.Errorf("visual %s: %d, want %d", k, s.PerVisual[k], want)
		}
		total += want
	}
	if total != 142 {
		t.Errorf("visual targets sum to %d", total)
	}
}

func TestBenchmarkDeterministic(t *testing.T) {
	// The five discipline generators run concurrently inside
	// BuildBenchmark; the merged sequence must still be identical from
	// build to build (fixed discipline merge order, keyed rng streams).
	a := MustBuild()
	b := MustBuild()
	for i := range a.Questions {
		if a.Questions[i].ID != b.Questions[i].ID ||
			a.Questions[i].Prompt != b.Questions[i].Prompt {
			t.Fatalf("question %d differs between builds", i)
		}
	}
}

func TestExtendedDeterministicAndOrdered(t *testing.T) {
	a, err := BuildExtended("det-fold", 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildExtended("det-fold", 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 30 || b.Len() != 30 {
		t.Fatalf("sizes %d/%d, want 30", a.Len(), b.Len())
	}
	for i := range a.Questions {
		if a.Questions[i].ID != b.Questions[i].ID {
			t.Fatalf("question %d differs between concurrent builds", i)
		}
	}
	// Deterministic merge order: questions grouped by discipline in the
	// fixed category order.
	for i := 1; i < len(a.Questions); i++ {
		if a.Questions[i].Category < a.Questions[i-1].Category {
			t.Fatalf("category order broken at %d: %v after %v",
				i, a.Questions[i].Category, a.Questions[i-1].Category)
		}
	}
}

func TestPromptTokenRange(t *testing.T) {
	// The paper: "prompts ... from 5 to 370 tokens". Generated prompts
	// are in the tens-to-hundreds range; assert sane bounds rather than
	// the unreproducible extremes of hand-written prompts.
	s := MustBuild().PromptTokenStats()
	if s.Min < 5 {
		t.Errorf("min prompt tokens %d, below the paper's minimum of 5", s.Min)
	}
	if s.Max > 370 {
		t.Errorf("max prompt tokens %d, above the paper's maximum of 370", s.Max)
	}
	if s.Mean <= 0 || s.Std <= 0 {
		t.Errorf("degenerate stats %+v", s)
	}
}

// TestGoldenOracle is the central consistency check of the whole
// reproduction: for every question in both collections, an oracle that
// echoes the golden answer must be judged correct, and canonical wrong
// answers must be judged wrong.
func TestGoldenOracle(t *testing.T) {
	b := MustBuild()
	chal := b.Challenge()
	j := eval.Judge{}
	checkAll := func(name string, bench *dataset.Benchmark) {
		for _, q := range bench.Questions {
			golden := oracleAnswer(q)
			if !j.Correct(q, golden) {
				t.Errorf("%s %s: golden answer %q judged wrong", name, q.ID, golden)
			}
			for _, wrong := range wrongAnswers(q) {
				if j.Correct(q, wrong) {
					t.Errorf("%s %s: wrong answer %q judged correct", name, q.ID, wrong)
				}
			}
		}
	}
	checkAll("standard", b)
	checkAll("challenge", chal)
}

func oracleAnswer(q *dataset.Question) string {
	if q.Type == dataset.MultipleChoice {
		return dataset.ChoiceLetter(q.Golden.Choice)
	}
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		if q.Golden.Text != "" {
			return q.Golden.Text
		}
		return fmt.Sprintf("%g %s", q.Golden.Number, q.Golden.Unit)
	default:
		return q.Golden.Text
	}
}

func wrongAnswers(q *dataset.Question) []string {
	if q.Type == dataset.MultipleChoice {
		return []string{dataset.ChoiceLetter((q.Golden.Choice + 1) % 4)}
	}
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		return []string{
			fmt.Sprintf("%g %s", q.Golden.Number*7.7+13, q.Golden.Unit),
			"no idea",
		}
	case dataset.AnswerExpression:
		return []string{"F = xyzzy +", ""}
	default:
		return []string{"a completely unrelated phrase about pipelines", ""}
	}
}

// TestDistractorsJudgedWrong: for every multiple-choice question, each
// distractor's content (submitted as a short answer in the challenge
// collection) must not be judged correct.
func TestDistractorsJudgedWrong(t *testing.T) {
	b := MustBuild()
	chal := b.Challenge()
	byID := make(map[string]*dataset.Question)
	for _, q := range chal.Questions {
		byID[q.ID] = q
	}
	j := eval.Judge{}
	for _, q := range b.Questions {
		if q.Type != dataset.MultipleChoice {
			continue
		}
		cq := byID[q.ID]
		for i, c := range q.Choices {
			if i == q.Golden.Choice {
				continue
			}
			if j.Correct(cq, c) {
				t.Errorf("%s: distractor %q accepted as the challenge answer (golden %q)",
					q.ID, c, cq.Golden.Text)
			}
		}
	}
}

func TestEveryQuestionHasCriticalVisualContent(t *testing.T) {
	// "Each question is paired with at least one visual component
	// essential for deriving the answer" (§III-A).
	for _, q := range MustBuild().Questions {
		if len(q.Visual.CriticalElements()) == 0 {
			t.Errorf("%s: no critical visual elements", q.ID)
		}
	}
}

func TestRenderAllQuestions(t *testing.T) {
	// Every question's scene must rasterise to a non-trivial image.
	for _, q := range MustBuild().Questions {
		img := visual.Render(q.Visual)
		bnds := img.Bounds()
		if bnds.Dx() < 64 || bnds.Dy() < 64 {
			t.Errorf("%s: tiny render %v", q.ID, bnds)
		}
	}
}

func TestCheckCompositionRejectsDrift(t *testing.T) {
	b := MustBuild()
	b.Questions = b.Questions[:141]
	if err := CheckComposition(b); err == nil {
		t.Error("dropped question not detected")
	}
}

func TestCoverageBreadth(t *testing.T) {
	// Fig. 1's breadth claim: every category uses at least 4 distinct
	// visual kinds, and every kind appears somewhere.
	m := MustBuild().CoverageMatrix()
	for c := 0; c < dataset.NumCategories; c++ {
		kinds := 0
		for k := 0; k < visual.NumKinds; k++ {
			if m[c][k] > 0 {
				kinds++
			}
		}
		if kinds < 4 {
			t.Errorf("category %s uses only %d visual kinds", dataset.Category(c), kinds)
		}
	}
	for k := 0; k < visual.NumKinds; k++ {
		used := false
		for c := 0; c < dataset.NumCategories; c++ {
			if m[c][k] > 0 {
				used = true
			}
		}
		if !used {
			t.Errorf("visual kind %s unused", visual.Kind(k))
		}
	}
}

// TestNumericGoldenTextConsistent: for every numeric-golden question, the
// correct option's text must parse (through the judge's own unit
// machinery) to the stored numeric value — guarding against format/value
// drift between the generators and the judge.
func TestNumericGoldenTextConsistent(t *testing.T) {
	j := eval.Judge{}
	for _, q := range MustBuild().Questions {
		if q.Golden.Kind == dataset.AnswerChoice && (q.Golden.Unit != "" || q.Golden.Tolerance > 0) {
			// The challenge variant judges this text numerically.
			cq := q.StripChoices()
			if cq.Golden.Kind != dataset.AnswerNumber {
				continue
			}
			if !j.Correct(cq, q.Golden.Text) {
				t.Errorf("%s: golden option text %q does not judge as %v %s",
					q.ID, q.Golden.Text, q.Golden.Number, q.Golden.Unit)
			}
		}
	}
}
