package vlm

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
)

// TrainingConfig tunes the simulated domain-adaptation study — the
// paper's future-work direction ("ChipVQA-oriented dataset collection,
// VLM training and development, targeting a low-cost yet effective
// open-source foundation model"). The model of adaptation: instruction
// tuning on in-domain VQA raises a model's solve rate per discipline in
// proportion to its training exposure, with diminishing returns, and can
// never teach what the backbone fundamentally lacks (the gain is capped
// by the headroom scaled by MaxGain).
type TrainingConfig struct {
	// MaxGainMC/SA bound the absolute Pass@1 gain per category at full
	// exposure, scaled by the model's headroom (1 - base rate).
	MaxGainMC float64
	MaxGainSA float64
	// SaturationExamples is the per-category training-set size at which
	// exposure reaches ~63% of maximum (exponential saturation).
	SaturationExamples int
}

// DefaultTraining returns a conservative adaptation model: a fully
// saturated category gains at most 25% of its missing headroom on
// multiple choice and 15% on short answer.
func DefaultTraining() TrainingConfig {
	return TrainingConfig{MaxGainMC: 0.25, MaxGainSA: 0.15, SaturationExamples: 20}
}

// FineTuned is a simulated domain-adapted variant of a base model.
type FineTuned struct {
	base    *SimulatedVLM
	cfg     TrainingConfig
	tag     string
	boostMC [dataset.NumCategories]float64
	boostSA [dataset.NumCategories]float64
	// Exposure per category in [0,1], for reporting.
	Exposure [dataset.NumCategories]float64
}

var _ eval.Model = (*FineTuned)(nil)

// FineTune adapts the base model on a training collection. The training
// questions only set per-category exposure; the tuned model is evaluated
// on *held-out* questions, so gains reflect generalisation within a
// discipline, not memorisation.
func FineTune(base *SimulatedVLM, train *dataset.Benchmark, cfg TrainingConfig) *FineTuned {
	ft := &FineTuned{base: base, cfg: cfg, tag: train.Name}
	counts := make(map[dataset.Category]int)
	for _, q := range train.Questions {
		counts[q.Category]++
	}
	p := base.Profile()
	for _, c := range dataset.Categories() {
		exposure := saturate(counts[c], cfg.SaturationExamples)
		ft.Exposure[c] = exposure
		ft.boostMC[c] = cfg.MaxGainMC * exposure * (1 - p.WithChoice[c])
		ft.boostSA[c] = cfg.MaxGainSA * exposure * (1 - p.NoChoice[c])
	}
	return ft
}

// saturate maps a sample count to exposure with exponential diminishing
// returns: 1 - exp(-n/k).
func saturate(n, k int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	return 1 - math.Exp(-float64(n)/float64(k))
}

// Name implements eval.Model.
func (f *FineTuned) Name() string {
	return fmt.Sprintf("%s+tuned(%s)", f.base.Name(), f.tag)
}

// Answer implements eval.Model: the tuned model answers like its base,
// except that on questions the base would miss, the learned in-domain
// skill solves them with the per-category boost probability.
func (f *FineTuned) Answer(q *dataset.Question, opts eval.InferenceOptions) string {
	baseResp := f.base.Answer(q, opts)
	if (eval.Judge{}).Correct(q, baseResp) {
		return baseResp
	}
	boost := f.boostSA[q.Category]
	if q.Type == dataset.MultipleChoice {
		boost = f.boostMC[q.Category]
	}
	if rng.Bernoulli(boost, "finetune", f.base.Name(), f.tag, q.ID) {
		return f.base.goldenResponse(q, true)
	}
	return baseResp
}

// LearningCurvePoint is one measurement of the adaptation study.
type LearningCurvePoint struct {
	TrainPerCategory int
	Pass1            float64
}

// LearningCurve fine-tunes the base model on nested training sets of
// increasing size (drawn from trainPool) and evaluates each tuned model
// on the held-out test collection.
func LearningCurve(base *SimulatedVLM, trainPool, test *dataset.Benchmark,
	sizes []int, cfg TrainingConfig) []LearningCurvePoint {
	byCat := trainPool.ByCategory()
	runner := eval.Runner{}
	out := make([]LearningCurvePoint, 0, len(sizes))
	for _, size := range sizes {
		sub := &dataset.Benchmark{Name: fmt.Sprintf("train-%d", size)}
		for _, c := range dataset.Categories() {
			qs := byCat[c]
			n := size
			if n > len(qs) {
				n = len(qs)
			}
			sub.Questions = append(sub.Questions, qs[:n]...)
		}
		tuned := FineTune(base, sub, cfg)
		rep := runner.Evaluate(tuned, test)
		out = append(out, LearningCurvePoint{TrainPerCategory: size, Pass1: rep.Pass1()})
	}
	return out
}
