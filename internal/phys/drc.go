package phys

import "fmt"

// Rect is an axis-aligned layout rectangle on a named layer.
type Rect struct {
	Name   string
	Layer  string
	X0, Y0 int
	X1, Y1 int
}

// Width returns the smaller dimension (the DRC "width" of a shape).
func (r Rect) Width() int {
	w := r.X1 - r.X0
	h := r.Y1 - r.Y0
	if w < h {
		return w
	}
	return h
}

// Spacing returns the rectilinear gap between two rectangles (0 when they
// touch or overlap).
func Spacing(a, b Rect) int {
	dx := gap(a.X0, a.X1, b.X0, b.X1)
	dy := gap(a.Y0, a.Y1, b.Y0, b.Y1)
	switch {
	case dx > 0 && dy > 0:
		// Diagonal: euclidean rules vary; rectilinear DRC uses the max
		// of the two gaps as the corner-to-corner spacing proxy.
		if dx > dy {
			return dx
		}
		return dy
	case dx > 0:
		return dx
	case dy > 0:
		return dy
	default:
		return 0
	}
}

func gap(a0, a1, b0, b1 int) int {
	switch {
	case b0 >= a1:
		return b0 - a1
	case a0 >= b1:
		return a0 - b1
	default:
		return 0
	}
}

// Overlaps reports whether two rectangles overlap (shared area > 0).
func Overlaps(a, b Rect) bool {
	return a.X0 < b.X1 && b.X0 < a.X1 && a.Y0 < b.Y1 && b.Y0 < a.Y1
}

// DRCRule holds minimum width and spacing per layer.
type DRCRule struct {
	MinWidth   int
	MinSpacing int
}

// Violation describes one design-rule violation.
type Violation struct {
	Kind  string // "width" or "spacing"
	A, B  string // shape names (B empty for width violations)
	Layer string
	Value int // measured value
	Limit int
}

// String renders the violation like a DRC report line.
func (v Violation) String() string {
	if v.Kind == "width" {
		return fmt.Sprintf("width violation: %s on %s is %d < %d", v.A, v.Layer, v.Value, v.Limit)
	}
	return fmt.Sprintf("spacing violation: %s-%s on %s is %d < %d", v.A, v.B, v.Layer, v.Value, v.Limit)
}

// CheckDRC runs width and same-layer spacing checks over the shapes.
func CheckDRC(shapes []Rect, rules map[string]DRCRule) []Violation {
	var out []Violation
	for _, s := range shapes {
		rule, ok := rules[s.Layer]
		if !ok {
			continue
		}
		if w := s.Width(); w < rule.MinWidth {
			out = append(out, Violation{Kind: "width", A: s.Name, Layer: s.Layer, Value: w, Limit: rule.MinWidth})
		}
	}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			a, b := shapes[i], shapes[j]
			if a.Layer != b.Layer {
				continue
			}
			rule, ok := rules[a.Layer]
			if !ok {
				continue
			}
			if Overlaps(a, b) {
				continue // same-net merge assumed
			}
			if sp := Spacing(a, b); sp < rule.MinSpacing {
				out = append(out, Violation{Kind: "spacing", A: a.Name, B: b.Name,
					Layer: a.Layer, Value: sp, Limit: rule.MinSpacing})
			}
		}
	}
	return out
}
