package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// itemReports builds three model reports over five shared questions with
// a known structure: q0 everyone solves, q1 nobody, q2 only the strongest
// model, q3 only the weakest model (negative discrimination), q4 the top
// two. Totals: strong 3/5, middle 2/5, weak 1/5... weak also solves q3,
// so 2/5 — still strictly below strong.
func itemReports() []*Report {
	mk := func(name string, correct [5]bool) *Report {
		r := &Report{ModelName: name}
		ids := []string{"q0", "q1", "q2", "q3", "q4"}
		for i, id := range ids {
			r.Results = append(r.Results, QuestionResult{
				QuestionID: id,
				Category:   dataset.Category(i % dataset.NumCategories),
				Correct:    correct[i],
			})
		}
		return r
	}
	return []*Report{
		mk("strong", [5]bool{true, false, true, false, true}),
		mk("middle", [5]bool{true, false, false, false, true}),
		mk("weak", [5]bool{true, false, false, true, false}),
	}
}

func TestItemAnalysisKnown(t *testing.T) {
	items, err := ItemAnalysis(itemReports())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("%d items", len(items))
	}
	byID := map[string]ItemStats{}
	for _, it := range items {
		byID[it.QuestionID] = it
	}
	if byID["q0"].Difficulty != 1 {
		t.Errorf("q0 difficulty %v, want 1", byID["q0"].Difficulty)
	}
	if byID["q1"].Difficulty != 0 {
		t.Errorf("q1 difficulty %v, want 0", byID["q1"].Difficulty)
	}
	if d := byID["q2"].Difficulty; math.Abs(d-1.0/3) > 1e-9 {
		t.Errorf("q2 difficulty %v, want 1/3", d)
	}
	// q2 separates strong from weak: positive discrimination. q3 is
	// anti-discriminating.
	if byID["q2"].Discrimination <= 0 {
		t.Errorf("q2 discrimination %v, want positive", byID["q2"].Discrimination)
	}
	if byID["q3"].Discrimination >= 0 {
		t.Errorf("q3 discrimination %v, want negative", byID["q3"].Discrimination)
	}
	// Constant items carry no discrimination signal.
	if byID["q0"].Discrimination != 0 || byID["q1"].Discrimination != 0 {
		t.Error("constant items should have zero discrimination")
	}
	if len(byID["q2"].CorrectModels) != 1 || byID["q2"].CorrectModels[0] != "strong" {
		t.Errorf("q2 solvers %v", byID["q2"].CorrectModels)
	}
}

func TestItemAnalysisErrors(t *testing.T) {
	reps := itemReports()
	if _, err := ItemAnalysis(reps[:1]); err == nil {
		t.Error("single-model analysis accepted")
	}
	// Mismatched sizes.
	bad := &Report{ModelName: "bad", Results: reps[0].Results[:2]}
	if _, err := ItemAnalysis([]*Report{reps[0], bad}); err == nil {
		t.Error("mismatched sizes accepted")
	}
	// Mismatched order.
	swapped := &Report{ModelName: "swapped"}
	swapped.Results = append(swapped.Results, reps[0].Results[1], reps[0].Results[0],
		reps[0].Results[2], reps[0].Results[3])
	if _, err := ItemAnalysis([]*Report{reps[0], swapped}); err == nil {
		t.Error("mismatched order accepted")
	}
}

func TestHardestItems(t *testing.T) {
	items, err := ItemAnalysis(itemReports())
	if err != nil {
		t.Fatal(err)
	}
	hard := HardestItems(items, 2)
	if len(hard) != 2 || hard[0].QuestionID != "q1" {
		t.Errorf("hardest %v", hard)
	}
	// Oversized k clamps.
	if len(HardestItems(items, 99)) != 5 {
		t.Error("k clamp failed")
	}
}

// TestHardestItemsTieBreaks pins the full sort key: difficulty, then
// discrimination, then QuestionID — so items tied on both statistics
// still list in a deterministic, position-independent order.
func TestHardestItemsTieBreaks(t *testing.T) {
	items := []ItemStats{
		{QuestionID: "q-c", Difficulty: 0.25, Discrimination: 0.5},
		{QuestionID: "q-a", Difficulty: 0.25, Discrimination: 0.5},
		{QuestionID: "q-b", Difficulty: 0.25, Discrimination: 0.5},
		{QuestionID: "q-sharp", Difficulty: 0.25, Discrimination: 0.9},
		{QuestionID: "q-easy", Difficulty: 0.75, Discrimination: 0.1},
		{QuestionID: "q-hard", Difficulty: 0.10, Discrimination: 0.9},
	}
	want := []string{"q-hard", "q-a", "q-b", "q-c", "q-sharp", "q-easy"}
	got := HardestItems(items, len(items))
	for i, it := range got {
		if it.QuestionID != want[i] {
			t.Fatalf("position %d: %s, want %s (full order %v)", i, it.QuestionID, want[i], got)
		}
	}
	// The order is a pure function of the stats: a permuted input gives
	// the identical listing.
	perm := []ItemStats{items[4], items[0], items[5], items[2], items[1], items[3]}
	for i, it := range HardestItems(perm, len(perm)) {
		if it.QuestionID != want[i] {
			t.Fatalf("permuted input: position %d is %s, want %s", i, it.QuestionID, want[i])
		}
	}
}

func TestDifficultySpreadAndFormat(t *testing.T) {
	items, err := ItemAnalysis(itemReports())
	if err != nil {
		t.Fatal(err)
	}
	spread := DifficultySpread(items)
	if len(spread) == 0 {
		t.Fatal("empty spread")
	}
	for c, s := range spread {
		if s[0] > s[1] || s[1] > s[2] {
			t.Errorf("category %v spread unordered: %v", c, s)
		}
	}
	out := FormatItemReport(items, 2)
	for _, frag := range []string{"item analysis", "hardest 2", "q1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}
