package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// RunSpec is the POST /v1/runs request body. Zero values mean "use the
// server default"; normalizeSpec fills them in so a stored spec always
// reads back fully resolved.
type RunSpec struct {
	// Kind selects the run flavour: "eval" (default) evaluates a named
	// collection, "challenge" is sugar for eval over the challenge
	// collection, "extended" generates a seeded extended fold and
	// evaluates it shard-by-shard, "adaptive" calibrates a 2PL item
	// bank over a seeded extended fold (cached per fold) and runs an
	// IRT tournament with early stopping against it.
	Kind string `json:"kind,omitempty"`
	// Collection names the question set for eval runs ("" = standard).
	Collection string `json:"collection,omitempty"`
	// Models lists zoo model names to evaluate; empty means all, and
	// report order follows this list.
	Models []string `json:"models,omitempty"`
	// Session is the tenant identity for scheduling; "" = "anonymous".
	Session string `json:"session,omitempty"`
	// Workers is the requested worker grant; 0 asks for the session
	// share, and any request is clamped to it. Negative is an error.
	Workers int `json:"workers,omitempty"`
	// Downsample degrades question images by this power-of-two factor
	// before models see them (1 = original).
	Downsample int `json:"downsample,omitempty"`
	// Seed / PerCategory / ShardSize parameterise extended runs.
	Seed        string `json:"seed,omitempty"`
	PerCategory int    `json:"per_category,omitempty"`
	ShardSize   int    `json:"shard_size,omitempty"`
	// Stream, when "ndjson" or "sse", streams the run's events in the
	// POST response body itself; the run is then scoped to the request
	// context, so disconnecting cancels it (deterministic prefix).
	// Empty launches detached and returns 201 immediately.
	Stream string `json:"stream,omitempty"`
}

// RunStatus is the wire form of a run's current state.
type RunStatus struct {
	ID         string   `json:"id"`
	Session    string   `json:"session"`
	Kind       string   `json:"kind"`
	Collection string   `json:"collection,omitempty"`
	State      string   `json:"state"`
	Workers    int      `json:"workers,omitempty"`
	Events     int      `json:"events"`
	Models     []string `json:"models"`
	Error      string   `json:"error,omitempty"`
}

// status snapshots the run for JSON.
func (r *run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunStatus{
		ID:         r.id,
		Session:    r.session,
		Kind:       r.spec.Kind,
		Collection: r.spec.Collection,
		State:      r.state.String(),
		Workers:    r.workers,
		Events:     len(r.events),
		Models:     r.spec.Models,
		Error:      r.failure,
	}
}

// reportsSnapshot returns the run's reports (nil until terminal; the
// slice is never mutated after finish).
func (r *run) reportsSnapshot() []*eval.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reports
}

// validDownsample reports whether f is a supported power-of-two image
// degradation factor (the span kernel's downsampler shifts by log2).
func validDownsample(f int) bool {
	switch f {
	case 1, 2, 4, 8, 16, 32:
		return true
	}
	return false
}

// decodeRunSpec parses the POST body (strict fields, 1 MiB cap).
func decodeRunSpec(w http.ResponseWriter, r *http.Request) (RunSpec, error) {
	var spec RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("bad run spec: %v", err)
	}
	return spec, nil
}

// normalizeSpec validates spec and resolves every default in place, so
// the stored spec fully determines the run.
func (s *Server) normalizeSpec(spec *RunSpec) error {
	switch spec.Kind {
	case "", "eval":
		spec.Kind = "eval"
	case "challenge":
		if spec.Collection != "" && spec.Collection != "challenge" {
			return fmt.Errorf("kind challenge implies collection challenge, not %q", spec.Collection)
		}
		spec.Kind = "eval"
		spec.Collection = "challenge"
	case "extended":
		if spec.Collection != "" {
			return fmt.Errorf("extended runs generate their own questions; collection must be empty")
		}
		if spec.Seed == "" {
			spec.Seed = "fold-a"
		}
		if spec.PerCategory == 0 {
			spec.PerCategory = 10
		}
		if spec.PerCategory < 1 || spec.PerCategory > 2000 {
			return fmt.Errorf("per_category %d outside [1, 2000]", spec.PerCategory)
		}
		if spec.ShardSize == 0 {
			spec.ShardSize = 64
		}
		if spec.ShardSize < 1 || spec.ShardSize > 4096 {
			return fmt.Errorf("shard_size %d outside [1, 4096]", spec.ShardSize)
		}
	case "adaptive":
		if spec.Collection != "" {
			return fmt.Errorf("adaptive runs generate their own fold; collection must be empty")
		}
		if spec.ShardSize != 0 {
			return fmt.Errorf("adaptive runs pull one item at a time; shard_size must be empty")
		}
		if spec.Seed == "" {
			spec.Seed = "fold-a"
		}
		if spec.PerCategory == 0 {
			spec.PerCategory = 10
		}
		if spec.PerCategory < 1 || spec.PerCategory > 2000 {
			return fmt.Errorf("per_category %d outside [1, 2000]", spec.PerCategory)
		}
	default:
		return fmt.Errorf("unknown run kind %q", spec.Kind)
	}
	if spec.Kind == "eval" {
		if spec.Seed != "" || spec.PerCategory != 0 || spec.ShardSize != 0 {
			return fmt.Errorf("seed/per_category/shard_size only apply to extended runs")
		}
		if spec.Collection == "" {
			spec.Collection = "standard"
		}
		if _, ok := s.collection(spec.Collection); !ok {
			return fmt.Errorf("unknown collection %q", spec.Collection)
		}
	}
	if spec.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", spec.Workers)
	}
	if spec.Workers > 4096 {
		return fmt.Errorf("workers %d outside [0, 4096]", spec.Workers)
	}
	if spec.Downsample == 0 {
		spec.Downsample = 1
	}
	if !validDownsample(spec.Downsample) {
		return fmt.Errorf("downsample must be one of 1,2,4,8,16,32, got %d", spec.Downsample)
	}
	if len(spec.Models) == 0 {
		spec.Models = s.modelNames
	} else {
		seen := make(map[string]bool, len(spec.Models))
		for _, name := range spec.Models {
			if _, ok := s.modelByName[name]; !ok {
				return fmt.Errorf("unknown model %q", name)
			}
			if seen[name] {
				return fmt.Errorf("duplicate model %q", name)
			}
			seen[name] = true
		}
	}
	if spec.Session == "" {
		spec.Session = "anonymous"
	}
	if len(spec.Session) > 64 {
		return fmt.Errorf("session name longer than 64 bytes")
	}
	for i := 0; i < len(spec.Session); i++ {
		if c := spec.Session[i]; c < 0x20 || c == 0x7f {
			return fmt.Errorf("session name contains control characters")
		}
	}
	switch spec.Stream {
	case "", "ndjson", "sse":
	default:
		return fmt.Errorf("stream must be empty, \"ndjson\" or \"sse\", got %q", spec.Stream)
	}
	return nil
}

// launch admits a normalized spec and starts its execution goroutine.
func (s *Server) launch(parent context.Context, spec RunSpec) (*run, error) {
	leave, err := s.sched.enter(spec.Session)
	if err != nil {
		return nil, err
	}
	rn, err := s.reg.create(parent, spec.Session, spec, leave)
	if err != nil {
		leave()
		return nil, err
	}
	go s.execute(rn)
	return rn, nil
}

// execute drives one run to a terminal state. It owns the run's
// lifecycle bookkeeping: scheduler exit, context release, done close,
// and the registry's in-flight count.
func (s *Server) execute(r *run) {
	defer s.reg.runExited()
	defer close(r.done)
	defer r.cancel()
	defer r.leave()
	reports, err := s.runEval(r)
	r.finish(reports, err)
}

// runEval acquires the worker grant and runs the evaluation, returning
// whatever reports exist (a deterministic prefix on cancellation).
func (s *Server) runEval(r *run) ([]*eval.Report, error) {
	workers, release, err := s.sched.acquire(r.ctx, r.spec.Workers)
	if err != nil {
		return nil, err
	}
	defer release()
	r.begin(workers)
	runner := eval.Runner{
		Workers:  workers,
		Opts:     eval.InferenceOptions{DownsampleFactor: r.spec.Downsample},
		Observer: s.observerFor(r),
	}
	models := s.modelsFor(r.spec)
	if r.spec.Kind == "adaptive" {
		cal, err := s.calibration(r.spec.Seed, r.spec.PerCategory, workers)
		if err != nil {
			return nil, err
		}
		// The tournament tie-break seed is the fold seed, so a fixed
		// spec fully determines the transcript (bit-reproducible).
		res, runErr := cal.Run(r.ctx, runner, models, adaptive.Config{Seed: r.spec.Seed})
		if res == nil {
			return nil, runErr
		}
		return res.Reports, runErr
	}
	if r.spec.Kind == "extended" {
		reports := make([]*eval.Report, len(models))
		for i := range reports {
			reports[i] = &eval.Report{}
		}
		spec := r.spec
		err := runner.EvaluateShardsContext(r.ctx, models, func(yield func(dataset.Shard) error) error {
			return core.StreamExtended(spec.Seed, spec.PerCategory, spec.ShardSize, yield)
		}, reports)
		return reports, err
	}
	bench, ok := s.collection(r.spec.Collection)
	if !ok {
		return nil, fmt.Errorf("serve: collection %q vanished", r.spec.Collection)
	}
	return runner.EvaluateAllContext(r.ctx, models, bench)
}

// modelsFor resolves the spec's model names (already validated).
func (s *Server) modelsFor(spec RunSpec) []eval.Model {
	out := make([]eval.Model, len(spec.Models))
	for i, name := range spec.Models {
		out[i] = s.modelByName[name]
	}
	return out
}

// observerFor adapts the pipeline's in-order Observer seam onto the
// run's append-only event log. The pipeline invokes it under the
// reorder buffer's delivery lock, so appends happen in canonical Seq
// order and every subscriber replays an identical stream.
func (s *Server) observerFor(r *run) eval.Observer {
	gate := s.eventGate
	return eval.ObserverFunc(func(ev eval.Event) {
		if gate != nil {
			gate(r.ctx, r.id, r.eventCount())
		}
		q := ev.Question
		re := RunEvent{
			Model:      ev.Model.Name(),
			QuestionID: q.ID,
			Category:   q.Category.Short(),
			Type:       q.Type.String(),
			Response:   ev.Response,
			Correct:    ev.Correct,
		}
		if ev.Adaptive {
			ability, se := ev.Ability, ev.AbilitySE
			re.Ability, re.AbilitySE = &ability, &se
			re.StopReason = ev.StopReason
		}
		r.appendEvent(re)
	})
}

// handleRunLaunch is POST /v1/runs.
func (s *Server) handleRunLaunch(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeRunSpec(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.normalizeSpec(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	streaming := spec.Stream != ""
	parent := s.base
	if streaming {
		// The run lives and dies with this request: a client disconnect
		// cancels it, leaving a deterministic prefix report behind.
		parent = r.Context()
	}
	rn, err := s.launch(parent, spec)
	switch {
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, errTooManySessions):
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !streaming {
		w.Header().Set("Location", "/v1/runs/"+rn.id)
		writeJSON(w, http.StatusCreated, rn.status())
		return
	}
	f := formatNDJSON
	if spec.Stream == "sse" {
		f = formatSSE
	}
	streamRun(r.Context(), w, rn, f, 0)
}

// handleRunList is GET /v1/runs: every run in creation order (the
// canonical listing order). ?state= and ?kind= filter; unknown filter
// values are a 400, not an empty listing, so typos fail loudly.
func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	switch state {
	case "", "queued", "running", "done", "cancelled", "failed":
	default:
		httpError(w, http.StatusBadRequest, "unknown state filter %q", state)
		return
	}
	kind := r.URL.Query().Get("kind")
	switch kind {
	case "", "eval", "extended", "adaptive":
	default:
		httpError(w, http.StatusBadRequest, "unknown kind filter %q", kind)
		return
	}
	out := struct {
		Runs []RunStatus `json:"runs"`
	}{Runs: []RunStatus{}}
	for _, rn := range s.reg.list() {
		st := rn.status()
		if state != "" && st.State != state {
			continue
		}
		if kind != "" && st.Kind != kind {
			continue
		}
		out.Runs = append(out.Runs, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRunGet is GET /v1/runs/{id}.
func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rn.status())
}

// handleRunDelete is DELETE /v1/runs/{id}: cancel (idempotent). With
// ?wait=1 it blocks until the run reaches its terminal state, so the
// returned status already reflects the recorded prefix.
func (s *Server) handleRunDelete(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	rn.cancel()
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-rn.done:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusAccepted, rn.status())
}

// handleRunEvents is GET /v1/runs/{id}/events: replay the event log
// from the beginning (or ?from=N) and follow it live until the run
// ends. ?format=ndjson|sse selects the encoding; an Accept header of
// text/event-stream also selects SSE.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	f := formatNDJSON
	switch r.URL.Query().Get("format") {
	case "", "ndjson":
		if r.URL.Query().Get("format") == "" && acceptsSSE(r) {
			f = formatSSE
		}
	case "sse":
		f = formatSSE
	default:
		httpError(w, http.StatusBadRequest, "format must be ndjson or sse")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from %q", v)
			return
		}
		from = n
	}
	streamRun(r.Context(), w, rn, f, from)
}

// handleRunReport is GET /v1/runs/{id}/report: the canonical report
// JSON once the run is terminal (for cancelled runs, the deterministic
// completed prefix). 409 while still running.
func (s *Server) handleRunReport(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	_, state, _ := rn.snapshot(0)
	if !state.terminal() {
		httpError(w, http.StatusConflict, "run %s not finished (state %s)", rn.id, state)
		return
	}
	body, err := marshalReports(rn.reportsSnapshot())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Chipvqa-Run-State", state.String())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
