package visual

import (
	"image"
	"image/color"
	"math"
	"math/rand/v2"
	"testing"
)

// This file retains the pre-span-kernel NAIVE raster implementations —
// per-pixel Set loops with a bounds check on every pixel — exactly as
// they were before the rewrite. They are the correctness oracle: the
// differential tests below (and the five-generator sweep in
// differential_test.go) assert that the span kernel produces
// byte-identical Pix for every primitive, element type and downsample
// factor. Identifiers are exported so the external test package
// (visual_test) can drive the same oracle over the real benchmark
// scenes.

// RefCanvas is the naive reference drawing surface. It implements the
// raster interface, so renderScene/drawElement rasterise through it
// unchanged.
type RefCanvas struct {
	img *image.RGBA
}

// NewRefCanvas mirrors NewCanvas: a white canvas, naive fill.
func NewRefCanvas(w, h int) *RefCanvas {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	c := &RefCanvas{img: image.NewRGBA(image.Rect(0, 0, w, h))}
	c.Fill(ColorWhite)
	return c
}

func (c *RefCanvas) Image() *image.RGBA { return c.img }

// Fill paints every pixel individually (the old Fill).
func (c *RefCanvas) Fill(col color.RGBA) {
	b := c.img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c.img.SetRGBA(x, y, col)
		}
	}
}

// Set paints one pixel, ignoring out-of-bounds coordinates.
func (c *RefCanvas) Set(x, y int, col color.RGBA) {
	if image.Pt(x, y).In(c.img.Bounds()) {
		c.img.SetRGBA(x, y, col)
	}
}

// Line is the old all-Bresenham path with a bounds check per pixel.
func (c *RefCanvas) Line(x0, y0, x1, y1 int, col color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := sign(x1 - x0)
	sy := sign(y1 - y0)
	err := dx + dy
	for {
		c.Set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func (c *RefCanvas) ThickLine(x0, y0, x1, y1, thickness int, col color.RGBA) {
	if thickness <= 1 {
		c.Line(x0, y0, x1, y1, col)
		return
	}
	ang := math.Atan2(float64(y1-y0), float64(x1-x0)) + math.Pi/2
	for t := 0; t < thickness; t++ {
		off := float64(t) - float64(thickness-1)/2
		ox := int(math.Round(off * math.Cos(ang)))
		oy := int(math.Round(off * math.Sin(ang)))
		c.Line(x0+ox, y0+oy, x1+ox, y1+oy, col)
	}
}

func (c *RefCanvas) Rect(x0, y0, x1, y1 int, col color.RGBA) {
	x0, x1 = ordered(x0, x1)
	y0, y1 = ordered(y0, y1)
	c.Line(x0, y0, x1, y0, col)
	c.Line(x1, y0, x1, y1, col)
	c.Line(x1, y1, x0, y1, col)
	c.Line(x0, y1, x0, y0, col)
}

// FillRect paints every pixel of the rectangle individually.
func (c *RefCanvas) FillRect(x0, y0, x1, y1 int, col color.RGBA) {
	x0, x1 = ordered(x0, x1)
	y0, y1 = ordered(y0, y1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c.Set(x, y, col)
		}
	}
}

func (c *RefCanvas) Circle(cx, cy, r int, col color.RGBA) {
	if r <= 0 {
		c.Set(cx, cy, col)
		return
	}
	x, y := r, 0
	err := 1 - r
	for x >= y {
		c.Set(cx+x, cy+y, col)
		c.Set(cx+y, cy+x, col)
		c.Set(cx-y, cy+x, col)
		c.Set(cx-x, cy+y, col)
		c.Set(cx-x, cy-y, col)
		c.Set(cx-y, cy-x, col)
		c.Set(cx+y, cy-x, col)
		c.Set(cx+x, cy-y, col)
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// FillCircle tests every pixel of the bounding square (the old kernel).
func (c *RefCanvas) FillCircle(cx, cy, r int, col color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.Set(cx+dx, cy+dy, col)
			}
		}
	}
}

func (c *RefCanvas) Arc(cx, cy, r int, a0, a1 float64, col color.RGBA) {
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	steps := int(float64(r)*(a1-a0)) + 8
	for i := 0; i <= steps; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(steps)
		x := cx + int(math.Round(float64(r)*math.Cos(a)))
		y := cy + int(math.Round(float64(r)*math.Sin(a)))
		c.Set(x, y, col)
	}
}

func (c *RefCanvas) Polyline(pts []Point, col color.RGBA) {
	for i := 1; i < len(pts); i++ {
		c.Line(int(pts[i-1].X), int(pts[i-1].Y), int(pts[i].X), int(pts[i].Y), col)
	}
}

func (c *RefCanvas) Arrow(x0, y0, x1, y1 int, col color.RGBA) {
	c.Line(x0, y0, x1, y1, col)
	ang := math.Atan2(float64(y1-y0), float64(x1-x0))
	const headLen = 8.0
	const headAng = 0.45
	for _, s := range []float64{+1, -1} {
		hx := float64(x1) - headLen*math.Cos(ang+s*headAng)
		hy := float64(y1) - headLen*math.Sin(ang+s*headAng)
		c.Line(x1, y1, int(math.Round(hx)), int(math.Round(hy)), col)
	}
}

func (c *RefCanvas) Text(x, y int, s string, scale int, col color.RGBA) {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		if r == '\n' {
			y += (glyphH + 2) * scale
			cx = x
			continue
		}
		c.glyph(cx, y, r, scale, col)
		cx += (glyphW + 1) * scale
	}
}

// glyph is the old nested per-pixel Set loop over scaled glyph bits.
func (c *RefCanvas) glyph(x, y int, r rune, scale int, col color.RGBA) {
	g, ok := font5x7[r]
	if !ok {
		g = font5x7['?']
	}
	for row := 0; row < glyphH; row++ {
		bits := g[row]
		for colIdx := 0; colIdx < glyphW; colIdx++ {
			if bits&(1<<(glyphW-1-colIdx)) != 0 {
				for sy := 0; sy < scale; sy++ {
					for sx := 0; sx < scale; sx++ {
						c.Set(x+colIdx*scale+sx, y+row*scale+sy, col)
					}
				}
			}
		}
	}
}

// RenderReference rasterises a scene with the naive kernel through the
// same renderScene/drawElement code as the production Render.
func RenderReference(s *Scene) *image.RGBA {
	c := NewRefCanvas(s.Width, s.Height)
	renderScene(c, s)
	return c.Image()
}

// DownsampleReference is the old per-pixel-block box filter: sum the
// factor x factor block with clamping, divide once. The factor <= 1 path
// copies row-by-row (the seed's whole-buffer copy sheared sub-image
// views; the intent — an exact pixel copy — is what the kernel must
// match).
func DownsampleReference(src *image.RGBA, factor int) *image.RGBA {
	b := src.Bounds()
	if factor <= 1 {
		out := image.NewRGBA(b)
		w4 := 4 * b.Dx()
		for y := b.Min.Y; y < b.Max.Y; y++ {
			si := src.PixOffset(b.Min.X, y)
			di := out.PixOffset(b.Min.X, y)
			copy(out.Pix[di:di+w4], src.Pix[si:si+w4])
		}
		return out
	}
	w := (b.Dx() + factor - 1) / factor
	h := (b.Dy() + factor - 1) / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var r, g, bsum, a, n uint32
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx := b.Min.X + ox*factor + dx
					sy := b.Min.Y + oy*factor + dy
					if sx >= b.Max.X || sy >= b.Max.Y {
						continue
					}
					i := src.PixOffset(sx, sy)
					r += uint32(src.Pix[i])
					g += uint32(src.Pix[i+1])
					bsum += uint32(src.Pix[i+2])
					a += uint32(src.Pix[i+3])
					n++
				}
			}
			if n == 0 {
				n = 1
			}
			j := dst.PixOffset(ox, oy)
			dst.Pix[j] = uint8(r / n)
			dst.Pix[j+1] = uint8(g / n)
			dst.Pix[j+2] = uint8(bsum / n)
			dst.Pix[j+3] = uint8(a / n)
		}
	}
	return dst
}

// EncodePatchesReference is the old per-pixel-accessor patch encoder.
func EncodePatchesReference(img *image.RGBA, patchSize int) *PatchFeatures {
	if patchSize < 1 {
		patchSize = 16
	}
	b := img.Bounds()
	px := (b.Dx() + patchSize - 1) / patchSize
	py := (b.Dy() + patchSize - 1) / patchSize
	const dim = 5
	f := &PatchFeatures{PatchesX: px, PatchesY: py, Dim: dim}
	f.Vectors = make([][]float64, 0, px*py)
	for gy := 0; gy < py; gy++ {
		for gx := 0; gx < px; gx++ {
			f.Vectors = append(f.Vectors, refPatchVector(img, b, gx*patchSize, gy*patchSize, patchSize))
		}
	}
	return f
}

func refPatchVector(img *image.RGBA, b image.Rectangle, x0, y0, size int) []float64 {
	var sum, sumSq, edgeH, edgeV, ink float64
	var n float64
	lum := func(x, y int) float64 {
		i := img.PixOffset(b.Min.X+x, b.Min.Y+y)
		return 0.299*float64(img.Pix[i]) + 0.587*float64(img.Pix[i+1]) + 0.114*float64(img.Pix[i+2])
	}
	for dy := 0; dy < size; dy++ {
		for dx := 0; dx < size; dx++ {
			x, y := x0+dx, y0+dy
			if x >= b.Dx() || y >= b.Dy() {
				continue
			}
			l := lum(x, y)
			sum += l
			sumSq += l * l
			if l < 200 {
				ink++
			}
			if x+1 < b.Dx() {
				edgeH += math.Abs(lum(x+1, y) - l)
			}
			if y+1 < b.Dy() {
				edgeV += math.Abs(lum(x, y+1) - l)
			}
			n++
		}
	}
	if n == 0 {
		return []float64{255, 0, 0, 0, 0}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return []float64{mean, math.Sqrt(variance), edgeH / n, edgeV / n, ink / n}
}

// PixEqual reports whether two images have identical bounds and
// byte-identical pixel rows, returning the first differing offset.
func PixEqual(a, b *image.RGBA) (bool, int) {
	if a.Bounds() != b.Bounds() {
		return false, -1
	}
	bb := a.Bounds()
	w4 := 4 * bb.Dx()
	for y := bb.Min.Y; y < bb.Max.Y; y++ {
		ra := a.Pix[a.PixOffset(bb.Min.X, y) : a.PixOffset(bb.Min.X, y)+w4]
		rb := b.Pix[b.PixOffset(bb.Min.X, y) : b.PixOffset(bb.Min.X, y)+w4]
		for i := range ra {
			if ra[i] != rb[i] {
				return false, a.PixOffset(bb.Min.X, y) + i
			}
		}
	}
	return true, 0
}

// --- Primitive-level differential fuzzing -----------------------------

// drawOp applies the same random primitive to the span kernel and to the
// naive reference.
type drawOp func(c *Canvas, r *RefCanvas)

// randomOps generates a seeded stream of primitives that deliberately
// includes the degenerate and clipped cases: points, H/V lines, shapes
// partly or fully out of bounds, zero-size rects, negative radii, text
// at every scale with newlines and unknown runes.
func randomOps(rng *rand.Rand, w, h int) []drawOp {
	cols := []color.RGBA{ColorBlack, ColorRed, ColorBlue, ColorGreen, ColorGray, ColorWhite}
	col := func() color.RGBA { return cols[rng.IntN(len(cols))] }
	// Coordinates straddle the canvas: [-w/2, 3w/2).
	cx := func() int { return rng.IntN(2*w) - w/2 }
	cy := func() int { return rng.IntN(2*h) - h/2 }
	var ops []drawOp
	for i := 0; i < 120; i++ {
		x0, y0, x1, y1 := cx(), cy(), cx(), cy()
		k := col()
		switch rng.IntN(10) {
		case 0: // general line
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Line(x0, y0, x1, y1, k); r.Line(x0, y0, x1, y1, k) })
		case 1: // horizontal line (dominant schematic case)
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Line(x0, y0, x1, y0, k); r.Line(x0, y0, x1, y0, k) })
		case 2: // vertical line
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Line(x0, y0, x0, y1, k); r.Line(x0, y0, x0, y1, k) })
		case 3:
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.FillRect(x0, y0, x1, y1, k); r.FillRect(x0, y0, x1, y1, k) })
		case 4:
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Rect(x0, y0, x1, y1, k); r.Rect(x0, y0, x1, y1, k) })
		case 5:
			rad := rng.IntN(h) - 2 // includes negative and zero radii
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.FillCircle(x0, y0, rad, k); r.FillCircle(x0, y0, rad, k) })
		case 6:
			rad := rng.IntN(h / 2)
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Circle(x0, y0, rad, k); r.Circle(x0, y0, rad, k) })
		case 7:
			scale := 1 + rng.IntN(3)
			s := []string{"R1=1k", "NAND\nNOR", "é?!", "ABC 123", "x"}[rng.IntN(5)]
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Text(x0, y0, s, scale, k); r.Text(x0, y0, s, scale, k) })
		case 8:
			th := 1 + rng.IntN(4)
			ops = append(ops, func(c *Canvas, r *RefCanvas) {
				c.ThickLine(x0, y0, x1, y1, th, k)
				r.ThickLine(x0, y0, x1, y1, th, k)
			})
		case 9:
			a0, a1 := rng.Float64()*7-3.5, rng.Float64()*7-3.5
			rad := rng.IntN(h / 2)
			ops = append(ops, func(c *Canvas, r *RefCanvas) { c.Arc(x0, y0, rad, a0, a1, k); r.Arc(x0, y0, rad, a0, a1, k) })
		}
	}
	return ops
}

func TestKernelDifferentialPrimitives(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 42))
		w, h := 3+rng.IntN(200), 3+rng.IntN(160)
		c := NewCanvas(w, h)
		r := NewRefCanvas(w, h)
		if ok, off := PixEqual(c.Image(), r.Image()); !ok {
			t.Fatalf("seed %d: fresh canvases differ at offset %d", seed, off)
		}
		for i, op := range randomOps(rng, w, h) {
			op(c, r)
			if ok, off := PixEqual(c.Image(), r.Image()); !ok {
				t.Fatalf("seed %d: op %d diverged at offset %d (canvas %dx%d)", seed, i, off, w, h)
			}
		}
	}
}

func TestKernelDifferentialElementTypes(t *testing.T) {
	// One scene exercising every element type, including clipped
	// placements near and beyond the canvas edge.
	types := []ElementType{
		ElemGate, ElemTransistor, ElemResistor, ElemCapacitor, ElemInductor,
		ElemSource, ElemWire, ElemLabel, ElemValue, ElemBox, ElemArrow,
		ElemTrace, ElemCell, ElemRect, ElemPoint, ElemCurvePt, ElemAxis,
		ElemEquationText,
	}
	gates := []string{"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF", "DFF"}
	s := NewScene(KindSchematic, "Differential: All Elements")
	for i, ty := range types {
		x := float64(30 + (i%6)*105)
		y := float64(50 + (i/6)*130)
		s.Add(Element{
			Type: ty, Name: "e", Label: "X=1", X: x, Y: y, X2: x + 70, Y2: y + 45,
			Points: []Point{{x, y}, {x + 35, y + 12}, {x + 60, y - 8}},
			Attrs:  map[string]string{"layer": "metal1", "polarity": "pmos", "kind": "current", "row": "0", "col": "0"},
		})
	}
	for i, g := range gates {
		s.Add(Element{Type: ElemGate, Name: "g", Label: g, X: float64(20 + i*68), Y: 420})
	}
	// Clipped elements straddling every edge.
	s.AddAll(
		Element{Type: ElemBox, Name: "clip1", Label: "EDGE", X: -30, Y: -20, X2: 60, Y2: 40},
		Element{Type: ElemRect, Name: "clip2", X: 600, Y: 450, X2: 700, Y2: 520, Attrs: map[string]string{"layer": "poly"}},
		Element{Type: ElemPoint, Name: "clip3", X: 639, Y: 479},
		Element{Type: ElemWire, Name: "clip4", X: -50, Y: 240, X2: 700, Y2: 240},
		Element{Type: ElemWire, Name: "clip5", X: 320, Y: -50, X2: 320, Y2: 530},
		Element{Type: ElemLabel, Name: "clip6", Label: "OFF", X: 630, Y: -3},
	)
	got := Render(s)
	want := RenderReference(s)
	if ok, off := PixEqual(got, want); !ok {
		t.Fatalf("element-type render diverged at offset %d", off)
	}
}

func TestKernelDifferentialDownsample(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	sizes := [][2]int{{640, 480}, {64, 64}, {13, 9}, {1, 1}, {16, 3}, {97, 101}}
	factors := []int{1, 2, 3, 4, 5, 7, 8, 16, 33}
	for _, sz := range sizes {
		img := image.NewRGBA(image.Rect(0, 0, sz[0], sz[1]))
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.UintN(256))
		}
		for _, f := range factors {
			got := Downsample(img, f)
			want := DownsampleReference(img, f)
			if ok, off := PixEqual(got, want); !ok {
				t.Fatalf("downsample %dx of %dx%d diverged at offset %d", f, sz[0], sz[1], off)
			}
		}
	}
}

func TestKernelDifferentialDownsampleSubImage(t *testing.T) {
	// Regression for the factor <= 1 stride bug: sub-image views have
	// Stride != 4*Dx, so the old whole-buffer copy sheared rows.
	c := NewCanvas(100, 80)
	c.FillRect(10, 10, 90, 70, ColorBlue)
	c.Line(0, 40, 99, 40, ColorRed)
	c.Text(20, 20, "SUB", 2, ColorBlack)
	sub := c.Image().SubImage(image.Rect(15, 10, 85, 62)).(*image.RGBA)
	for _, f := range []int{0, 1, 2, 4, 8} {
		got := Downsample(sub, f)
		want := DownsampleReference(sub, f)
		if ok, off := PixEqual(got, want); !ok {
			t.Fatalf("sub-image downsample %dx diverged at offset %d", f, off)
		}
	}
	// The factor<=1 copy must reproduce the exact source pixels.
	out := Downsample(sub, 1)
	b := sub.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			if out.RGBAAt(x, y) != sub.RGBAAt(x, y) {
				t.Fatalf("factor<=1 sub-image copy wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestKernelDifferentialEncoder(t *testing.T) {
	s := NewScene(KindSchematic, "Encoder Differential")
	s.AddAll(
		Element{Type: ElemGate, Name: "g", Label: "NAND", X: 100, Y: 100},
		Element{Type: ElemWire, Name: "w", X: 0, Y: 50, X2: 639, Y2: 50},
		Element{Type: ElemValue, Name: "v", Label: "t=3ns", X: 500, Y: 400},
	)
	img := Render(s)
	for _, ps := range []int{16, 32, 7, 1} {
		got := EncodePatches(img, ps)
		want := EncodePatchesReference(img, ps)
		if got.PatchesX != want.PatchesX || got.PatchesY != want.PatchesY {
			t.Fatalf("patch grid mismatch at size %d", ps)
		}
		for i := range want.Vectors {
			for j := range want.Vectors[i] {
				if got.Vectors[i][j] != want.Vectors[i][j] {
					t.Fatalf("patch %d feature %d: %v != %v (size %d)",
						i, j, got.Vectors[i][j], want.Vectors[i][j], ps)
				}
			}
		}
	}
	// Also on a downsampled image (the shape the VLM front end sees) and
	// on a sub-image view.
	small := Downsample(img, 8)
	g, w := EncodePatches(small, 16), EncodePatchesReference(small, 16)
	for i := range w.Vectors {
		for j := range w.Vectors[i] {
			if g.Vectors[i][j] != w.Vectors[i][j] {
				t.Fatalf("downsampled patch %d feature %d differs", i, j)
			}
		}
	}
	sub := img.SubImage(image.Rect(33, 17, 200, 150)).(*image.RGBA)
	g, w = EncodePatches(sub, 16), EncodePatchesReference(sub, 16)
	for i := range w.Vectors {
		for j := range w.Vectors[i] {
			if g.Vectors[i][j] != w.Vectors[i][j] {
				t.Fatalf("sub-image patch %d feature %d differs", i, j)
			}
		}
	}
}

func TestKernelDifferentialBuilders(t *testing.T) {
	// The shared scene builders cover tables, grids, waveforms, block
	// diagrams and annotated figures.
	scenes := []*Scene{
		NewBlockDiagram(KindDiagram, "Pipeline", []string{"IF", "ID", "EX", "MEM", "WB"}, []string{"CPI=1.3", "f=2GHz"}),
		NewTableScene(KindTable, "Truth Table", []string{"A", "B", "Y"},
			[][]string{{"0", "0", "1"}, {"0", "1", "1"}, {"1", "0", "1"}, {"1", "1", "0"}}, map[int]bool{2: true}),
		NewAnnotatedFigure(KindFigure, "Wafer Map", "defect cluster at edge", []string{"yield=91%", "D0=0.4"}),
		NewGridScene(KindDiagram, "Mesh", 4, 4, map[[2]int]string{{0, 0}: "R0", {3, 3}: "R15"}),
		NewWaveformScene("CLK/Q", map[string][]int{"clk": {0, 1, 0, 1, 0, 1}, "q": {0, 0, 1, 1, 0, 0}}, []string{"clk", "q"}),
	}
	for i, s := range scenes {
		got := Render(s)
		want := RenderReference(s)
		if ok, off := PixEqual(got, want); !ok {
			t.Fatalf("builder scene %d (%s) diverged at offset %d", i, s.Title, off)
		}
	}
}

// TestPoolRoundTrip checks the pixel pool lifecycle: a released buffer
// is reused and comes back fully re-whitened through NewCanvas.
func TestPoolRoundTrip(t *testing.T) {
	c := NewCanvas(64, 48)
	c.Fill(ColorBlack)
	img := c.Image()
	ReleaseImage(img)
	if img.Pix != nil {
		t.Fatal("ReleaseImage should nil the Pix of the released image")
	}
	c2 := NewCanvas(64, 48) // may reuse the dirty buffer
	for i, p := range c2.Image().Pix {
		if p != 255 {
			t.Fatalf("recycled canvas not re-whitened at byte %d", i)
		}
	}
	// Release of sub-image views and nil must be safe no-ops.
	ReleaseImage(nil)
	base := NewCanvas(20, 20).Image()
	sub := base.SubImage(image.Rect(2, 2, 10, 10)).(*image.RGBA)
	ReleaseImage(sub)
	if sub.Pix == nil {
		t.Fatal("sub-image view must not be poolable")
	}
}
