package core

import (
	"encoding/json"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/visual"
	"repro/internal/vlm"
)

// These tests close ISSUE 7's acceptance loop: a large extended fold
// evaluated shard-at-a-time inside a fixed SceneCache byte envelope
// must produce reports byte-identical to the monolithic build.

func evalReportsJSON(t *testing.T, reps []*eval.Report) []byte {
	t.Helper()
	js, err := json.Marshal(reps)
	if err != nil {
		t.Fatalf("marshal reports: %v", err)
	}
	return js
}

// streamEvalEnvelope runs the streaming-vs-monolithic comparison for a
// fold of perCategory questions per discipline under the given
// SceneCache budget, returning peak cache bytes observed.
func streamEvalEnvelope(t *testing.T, seed string, perCategory, shardSize int, budget int64) int64 {
	t.Helper()
	// The simulated models answer through the package-level Default
	// cache, so the envelope is configured (and asserted) on it.
	visual.Default.Reset()
	visual.Default.SetBudget(budget)
	defer func() {
		visual.Default.SetBudget(0)
		visual.Default.Reset()
	}()

	mono, err := CollectExtended(seed, perCategory, shardSize)
	if err != nil {
		t.Fatalf("CollectExtended: %v", err)
	}
	// Calibrate one Table II model against the fold; decisions are keyed
	// by question ID, so the streaming pass (fresh question values, same
	// IDs) sees identical behaviour.
	models := vlm.NewZoo(mono).EvalModels()[:1]
	r := eval.Runner{Workers: 4, Opts: eval.InferenceOptions{DownsampleFactor: 8}}

	monoJSON := evalReportsJSON(t, r.EvaluateAll(models, mono))
	visual.Default.Reset() // isolate the streaming pass's cache pressure

	streamed, err := r.EvaluateShards(models, func(yield func(dataset.Shard) error) error {
		return StreamExtended(seed, perCategory, shardSize, yield)
	})
	if err != nil {
		t.Fatalf("EvaluateShards: %v", err)
	}
	if got := evalReportsJSON(t, streamed); string(got) != string(monoJSON) {
		t.Error("streaming reports differ from monolithic evaluation")
	}
	st := visual.Default.Stats()
	if st.PeakBytes > budget {
		t.Errorf("peak cache bytes %d exceed budget %d", st.PeakBytes, budget)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions under a %d-byte budget; envelope untested (stats %+v)", budget, st)
	}
	return st.PeakBytes
}

// TestStreamingEvalFixedMemoryEnvelope is the small always-on version:
// correctness of the envelope machinery at a size every test run can
// afford.
func TestStreamingEvalFixedMemoryEnvelope(t *testing.T) {
	streamEvalEnvelope(t, "envelope", 200, 64, 64<<10)
}

// TestStreamingEval100kEnvelope is the acceptance-scale run: a
// 100k-question extended fold evaluates via the streaming path with
// peak SceneCache bytes within the configured budget, byte-identical to
// the monolithic build. Heavy (two full 100k evaluations), so it is
// skipped in -short and under the race detector; the -race coverage of
// the streaming engine itself lives in internal/eval at workers
// 1/2/4/8.
func TestStreamingEval100kEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-question run skipped in -short")
	}
	if raceEnabled {
		t.Skip("100k-question run skipped under the race detector")
	}
	peak := streamEvalEnvelope(t, "envelope-100k", 20000, 1024, 1<<20)
	t.Logf("peak SceneCache bytes over 100k questions: %d (budget %d)", peak, 1<<20)
}
