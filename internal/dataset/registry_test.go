package dataset

import (
	"sort"
	"strings"
	"testing"
)

func fakeGen(name string, c Category) Generator {
	return Generator{
		Name:     name,
		Category: c,
		Generate: func() []*Question { return nil },
		GenerateExtra: func(seed string, count int) []*Question {
			return nil
		},
	}
}

func mustPanic(t *testing.T, wantSubstr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want panic containing %q", wantSubstr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %v, want message containing %q", r, wantSubstr)
		}
	}()
	fn()
}

// TestRegistry exercises the generator registry end to end in one
// sequence (the registry is process-global, so ordering matters): fakes
// registered out of category order come back in canonical Table I
// order, lookups hit, and every wiring bug panics at registration.
// Discipline packages are NOT imported by this test binary, so the
// registry here holds only the fakes.
func TestRegistry(t *testing.T) {
	for _, g := range []Generator{
		fakeGen("t-phys", Physical),
		fakeGen("t-dig", Digital),
		fakeGen("t-manuf", Manufacture),
	} {
		RegisterGenerator(g)
	}
	gens := Generators()
	if len(gens) != 3 {
		t.Fatalf("Generators() returned %d entries, want 3", len(gens))
	}
	if !sort.SliceIsSorted(gens, func(i, j int) bool { return gens[i].Category < gens[j].Category }) {
		t.Fatalf("Generators() not in canonical category order: %+v", gens)
	}
	if gens[0].Name != "t-dig" || gens[2].Name != "t-phys" {
		t.Fatalf("canonical order wrong: got %s..%s", gens[0].Name, gens[2].Name)
	}

	if g, ok := GeneratorFor(Manufacture); !ok || g.Name != "t-manuf" {
		t.Fatalf("GeneratorFor(Manufacture) = (%+v, %v)", g, ok)
	}
	if _, ok := GeneratorFor(Analog); ok {
		t.Fatal("GeneratorFor(Analog) found a generator that was never registered")
	}

	mustPanic(t, "incomplete", func() {
		RegisterGenerator(Generator{Name: "t-broken", Category: Analog, Generate: func() []*Question { return nil }})
	})
	mustPanic(t, "unknown category", func() {
		RegisterGenerator(fakeGen("t-out-of-range", Category(99)))
	})
	mustPanic(t, "duplicate generator name", func() {
		RegisterGenerator(fakeGen("t-dig", Analog))
	})
	mustPanic(t, "already registered", func() {
		RegisterGenerator(fakeGen("t-dig2", Digital))
	})
}

func TestIndexOf(t *testing.T) {
	xs := []string{"low", "mid", "high"}
	if got := IndexOf(xs, "mid"); got != 1 {
		t.Errorf("IndexOf mid = %d, want 1", got)
	}
	// A miss aliases to 0 by contract — callers use the result modularly.
	if got := IndexOf(xs, "absent"); got != 0 {
		t.Errorf("IndexOf absent = %d, want 0", got)
	}
	if got := IndexOf(nil, "x"); got != 0 {
		t.Errorf("IndexOf on nil = %d, want 0", got)
	}
}

func TestSortInts(t *testing.T) {
	cases := [][]int{
		nil,
		{1},
		{3, 1, 2},
		{5, 5, 1, 0, 5},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
	}
	for _, c := range cases {
		got := append([]int(nil), c...)
		want := append([]int(nil), c...)
		SortInts(got)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SortInts(%v) = %v, want %v", c, got, want)
			}
		}
	}
}

func TestPickOthers(t *testing.T) {
	pool := []string{"0", "1", "C", "C'"}
	got := PickOthers("C", pool)
	if got != [3]string{"0", "1", "C'"} {
		t.Errorf("PickOthers(C) = %v", got)
	}
	// Answer not in the pool: first three entries in pool order.
	if got := PickOthers("zz", pool); got != [3]string{"0", "1", "C"} {
		t.Errorf("PickOthers(zz) = %v", got)
	}
	// Too-small pool leaves trailing slots empty rather than repeating.
	if got := PickOthers("a", []string{"a", "b"}); got != [3]string{"b", "", ""} {
		t.Errorf("PickOthers small pool = %v", got)
	}
}
