// clock.go is the serve package's single wall-clock seam. The nodeterm
// analyzer (internal/lint) forbids time.Now everywhere except
// internal/rng and files named clock.go, so the access log's timestamps
// and request durations route through the injectable `now` below: tests
// pin it to a fixed instant and the rest of the package stays
// clock-free by construction. Timestamps are observability-only — run
// events and reports never contain them, so the served byte streams
// stay deterministic for a fixed (spec, seed).
package serve

import "time"

// now is the injectable wall clock; only the access log reads it.
var now = time.Now
