package adaptive

import (
	"math"
	"testing"

	"repro/internal/eval"
)

func TestCalibrateMapsAndClamps(t *testing.T) {
	items := []eval.ItemStats{
		{QuestionID: "easy", Difficulty: 0.9, Discrimination: 0.5},
		{QuestionID: "hard", Difficulty: 0.1, Discrimination: 0.5},
		{QuestionID: "mid", Difficulty: 0.5, Discrimination: 1.0},
		{QuestionID: "nobody", Difficulty: 0.0, Discrimination: math.NaN()},
		{QuestionID: "everybody", Difficulty: 1.0, Discrimination: -0.8},
		{QuestionID: "nan", Difficulty: math.NaN(), Discrimination: 0.2},
	}
	got := Calibrate(items)
	if len(got) != len(items) {
		t.Fatalf("calibrated %d items, want %d", len(got), len(items))
	}
	byID := make(map[string]ItemParams)
	for _, p := range got {
		if math.IsNaN(p.Diff) || math.IsInf(p.Diff, 0) || math.IsNaN(p.Disc) || math.IsInf(p.Disc, 0) {
			t.Fatalf("item %q calibrated to non-finite params %+v", p.QuestionID, p)
		}
		if p.Disc < 0.5 || p.Disc > 2.0 {
			t.Fatalf("item %q discrimination %v outside [0.5, 2.0]", p.QuestionID, p.Disc)
		}
		byID[p.QuestionID] = p
	}
	if e, h := byID["easy"], byID["hard"]; e.Diff >= h.Diff {
		t.Errorf("easy item location %v not below hard item location %v", e.Diff, h.Diff)
	}
	if m := byID["mid"]; math.Abs(m.Diff) > 1e-12 {
		t.Errorf("p=0.5 item location %v, want 0", m.Diff)
	}
	if m := byID["mid"]; m.Disc != 2.0 {
		t.Errorf("r=1 item discrimination %v, want 2.0", m.Disc)
	}
	// Degenerate difficulties clamp to the same magnitude on both sides.
	if n, e := byID["nobody"], byID["everybody"]; math.Abs(n.Diff+e.Diff) > 1e-9 {
		t.Errorf("clamped locations not symmetric: %v vs %v", n.Diff, e.Diff)
	}
	// NaN difficulty lands on the neutral midpoint.
	if n := byID["nan"]; n.Diff != 0 {
		t.Errorf("NaN difficulty mapped to %v, want 0", n.Diff)
	}
}

func TestItemParamsProbAndInformation(t *testing.T) {
	p := ItemParams{QuestionID: "q", Disc: 1.5, Diff: 0.5}
	if got := p.Prob(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Prob at theta=Diff is %v, want 0.5", got)
	}
	if lo, hi := p.Prob(-3), p.Prob(3); lo >= hi {
		t.Errorf("Prob not increasing: P(-3)=%v >= P(3)=%v", lo, hi)
	}
	// Information peaks where P = 0.5, i.e. at theta = Diff.
	at, off := p.Information(0.5), p.Information(2.0)
	if at <= off {
		t.Errorf("information at the item location (%v) not above off-target (%v)", at, off)
	}
	if want := 1.5 * 1.5 * 0.25; math.Abs(at-want) > 1e-12 {
		t.Errorf("peak information %v, want a^2/4 = %v", at, want)
	}
}

func TestEstimatorPriorAndConvergence(t *testing.T) {
	e := NewEstimator()
	ability, se := e.Estimate()
	if math.Abs(ability) > 1e-9 {
		t.Errorf("prior mean %v, want 0", ability)
	}
	if se < 0.9 || se > 1.1 {
		t.Errorf("prior SE %v, want about 1 (truncated standard normal)", se)
	}
	// Correct answers on mid items push ability up; SE shrinks.
	item := ItemParams{QuestionID: "q", Disc: 1.5, Diff: 0}
	for i := 0; i < 20; i++ {
		e.Observe(item, true)
	}
	upAbility, upSE := e.Estimate()
	if upAbility <= ability {
		t.Errorf("ability %v did not rise after 20 correct answers", upAbility)
	}
	if upSE >= se {
		t.Errorf("SE %v did not shrink after 20 observations (was %v)", upSE, se)
	}
	if e.Observations() != 20 {
		t.Errorf("Observations() = %d, want 20", e.Observations())
	}
	// Wrong answers pull it back down.
	for i := 0; i < 40; i++ {
		e.Observe(item, false)
	}
	downAbility, _ := e.Estimate()
	if downAbility >= upAbility {
		t.Errorf("ability %v did not fall after 40 wrong answers (was %v)", downAbility, upAbility)
	}
}

func TestEstimatorDegenerateHistoriesStayFinite(t *testing.T) {
	cases := []struct {
		name    string
		item    ItemParams
		correct bool
	}{
		{"all-correct-extreme-item", ItemParams{Disc: 2, Diff: 3.9}, true},
		{"all-wrong-extreme-item", ItemParams{Disc: 2, Diff: -3.9}, false},
		{"inf-params", ItemParams{Disc: math.Inf(1), Diff: math.Inf(-1)}, true},
		{"nan-params", ItemParams{Disc: math.NaN(), Diff: math.NaN()}, false},
	}
	for _, tc := range cases {
		e := NewEstimator()
		for i := 0; i < 500; i++ {
			e.Observe(tc.item, tc.correct)
		}
		ability, se := e.Estimate()
		if math.IsNaN(ability) || math.IsInf(ability, 0) || math.IsNaN(se) || math.IsInf(se, 0) {
			t.Errorf("%s: estimate (%v, %v) not finite", tc.name, ability, se)
		}
		if ability < gridLo || ability > gridHi {
			t.Errorf("%s: ability %v escaped the quadrature grid", tc.name, ability)
		}
	}
}

// FuzzObserve pins the numerical hardening: no observation sequence —
// including NaN/infinite item parameters and degenerate all-correct or
// all-wrong histories — may drive the posterior mean or SE non-finite.
func FuzzObserve(f *testing.F) {
	f.Add(1.5, 0.0, true, uint8(200))
	f.Add(math.Inf(1), math.Inf(-1), true, uint8(255))
	f.Add(math.NaN(), math.NaN(), false, uint8(100))
	f.Add(0.0, 4.0, false, uint8(1))
	f.Add(-3.0, 1e300, true, uint8(50))
	f.Fuzz(func(t *testing.T, disc, diff float64, correct bool, reps uint8) {
		e := NewEstimator()
		item := ItemParams{QuestionID: "f", Disc: disc, Diff: diff}
		for i := 0; i < int(reps); i++ {
			e.Observe(item, correct)
			// Interleave the opposite outcome on a sane item so mixed
			// histories get coverage too.
			if i%7 == 3 {
				e.Observe(ItemParams{QuestionID: "g", Disc: 1, Diff: 0}, !correct)
			}
		}
		ability, se := e.Estimate()
		if math.IsNaN(ability) || math.IsInf(ability, 0) || math.IsNaN(se) || math.IsInf(se, 0) {
			t.Fatalf("disc=%v diff=%v correct=%v reps=%d: estimate (%v, %v) not finite",
				disc, diff, correct, reps, ability, se)
		}
		if ability < gridLo || ability > gridHi {
			t.Fatalf("ability %v escaped the grid [%v, %v]", ability, gridLo, gridHi)
		}
	})
}

func TestRankAgreement(t *testing.T) {
	cases := []struct {
		name     string
		ref, got []float64
		want     float64
	}{
		{"perfect", []float64{1, 2, 3}, []float64{10, 20, 30}, 1},
		{"reversed", []float64{1, 2, 3}, []float64{30, 20, 10}, -1},
		{"one-swap", []float64{1, 2, 3}, []float64{20, 10, 30}, 1.0 / 3.0},
		{"candidate-tie", []float64{1, 2}, []float64{5, 5}, 0},
		{"ref-tie-ignored", []float64{1, 1, 2}, []float64{0, 9, 9}, 0.5},
		{"all-ref-tied", []float64{1, 1}, []float64{2, 1}, 1},
		{"empty", nil, nil, 1},
	}
	for _, tc := range cases {
		if got := RankAgreement(tc.ref, tc.got); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: RankAgreement = %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := RankAgreement([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("length mismatch: RankAgreement = %v, want NaN", got)
	}
}
