package dataset

import (
	"fmt"
	"sort"
	"sync"
)

// Generator is one discipline's entry in the benchmark-assembly
// registry: a name, the discipline it covers, the fixed Table I
// question generator and the seed-parameterised extended generator.
// Discipline packages (internal/digital, internal/analog, ...)
// self-register from init, and internal/core assembles collections
// from the registry instead of hard-importing every discipline — the
// inversion that lets alternative assemblies (subsets, shards, new
// disciplines) plug in without touching core.
type Generator struct {
	// Name is the short registry key, conventionally the package name
	// ("digital", "analog", ...).
	Name string
	// Category is the discipline the generator covers; the registry
	// holds at most one generator per category.
	Category Category
	// Generate produces the discipline's share of the fixed
	// 142-question ChipVQA collection.
	Generate func() []*Question
	// GenerateExtra produces count additional seed-parameterised
	// questions for extended collections; distinct seeds must give
	// disjoint folds.
	GenerateExtra func(seed string, count int) []*Question
	// GenerateExtraRange produces only the extended questions with
	// within-category indices in [lo, hi) — the window primitive the
	// streaming shard API is built on. It must satisfy the prefix
	// contract: GenerateExtraRange(seed, lo, hi) is element-for-element
	// identical to GenerateExtra(seed, hi)[lo:], so shard assembly is
	// byte-identical to a monolithic build. Optional for back-compat;
	// when nil, ExtraRange falls back to generating the full prefix.
	GenerateExtraRange func(seed string, lo, hi int) []*Question
}

// ExtraRange returns g's extended questions with indices in [lo, hi),
// using the windowed generator when the discipline registered one and
// the (memory-proportional-to-hi) GenerateExtra prefix fallback
// otherwise. All five built-in disciplines register the windowed form.
func (g Generator) ExtraRange(seed string, lo, hi int) []*Question {
	if hi <= lo {
		return nil
	}
	if g.GenerateExtraRange != nil {
		return g.GenerateExtraRange(seed, lo, hi)
	}
	return g.GenerateExtra(seed, hi)[lo:]
}

// registry is the process-wide generator table. Registration happens
// from package init functions, reads happen at assembly time; the
// mutex covers the (rare) concurrent-test access pattern.
var registry struct {
	mu   sync.Mutex
	gens []Generator
}

// RegisterGenerator adds a discipline generator to the registry. It
// panics on incomplete entries or duplicate names/categories: both are
// wiring bugs that must fail at init, not at first use.
func RegisterGenerator(g Generator) {
	if g.Name == "" || g.Generate == nil || g.GenerateExtra == nil {
		panic(fmt.Sprintf("dataset: incomplete generator registration %+v", g))
	}
	if g.Category < 0 || g.Category >= numCategories {
		panic(fmt.Sprintf("dataset: generator %q registers unknown category %d", g.Name, g.Category))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, have := range registry.gens {
		if have.Name == g.Name {
			panic(fmt.Sprintf("dataset: duplicate generator name %q", g.Name))
		}
		if have.Category == g.Category {
			panic(fmt.Sprintf("dataset: category %s already registered by %q", g.Category, have.Name))
		}
	}
	registry.gens = append(registry.gens, g)
}

// Generators returns the registered generators in canonical Table I
// category order, independent of registration (package-init) order, so
// every assembly built from the registry is deterministic.
func Generators() []Generator {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Generator, len(registry.gens))
	copy(out, registry.gens)
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// GeneratorFor looks up the generator registered for a category.
func GeneratorFor(c Category) (Generator, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, g := range registry.gens {
		if g.Category == c {
			return g, true
		}
	}
	return Generator{}, false
}
