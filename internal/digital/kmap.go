package digital

import (
	"fmt"

	"repro/internal/visual"
)

// grayOrder2 is the Gray-code ordering of two variables along a K-map
// axis: 00, 01, 11, 10.
var grayOrder2 = [4]int{0, 1, 3, 2}

// KMapScene draws a Karnaugh map of a 3- or 4-variable function — the
// "excitation map" figure style of the paper's own Digital Design sample
// question. Rows and columns follow the Gray-code convention so adjacent
// cells differ in one variable; the filled cells are the critical
// content.
//
// For 3 variables [a, b, c]: rows are a (0,1), columns are bc in Gray
// order. For 4 variables [a, b, c, d]: rows are ab, columns cd, both in
// Gray order.
func KMapScene(t *TruthTable, outName, title string) (*visual.Scene, error) {
	nv := len(t.Vars)
	if nv != 3 && nv != 4 {
		return nil, fmt.Errorf("digital: K-map supports 3 or 4 variables, got %d", nv)
	}
	s := visual.NewScene(visual.KindTable, title)
	const cw, ch = 56.0, 40.0
	x0, y0 := 140.0, 90.0

	var rows, cols int
	var rowVars, colVars string
	if nv == 3 {
		rows, cols = 2, 4
		rowVars = t.Vars[0]
		colVars = t.Vars[1] + t.Vars[2]
	} else {
		rows, cols = 4, 4
		rowVars = t.Vars[0] + t.Vars[1]
		colVars = t.Vars[2] + t.Vars[3]
	}
	// Axis labels.
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "axis", Label: rowVars + " \\ " + colVars,
		X: x0 - 80, Y: y0 - 30, Salience: 0.85,
	})
	for r := 0; r < rows; r++ {
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: fmt.Sprintf("row%d", r),
			Label: grayLabel(r, rows), X: x0 - 40, Y: y0 + float64(r)*ch + 12,
			Salience: 0.8,
		})
	}
	for c := 0; c < cols; c++ {
		s.Add(visual.Element{
			Type: visual.ElemLabel, Name: fmt.Sprintf("col%d", c),
			Label: grayLabel(c, cols), X: x0 + float64(c)*cw + 14, Y: y0 - 24,
			Salience: 0.8,
		})
	}
	// Cells: minterm index = row bits (MSB) then column bits.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var m int
			if nv == 3 {
				m = r<<2 | grayOrder2[c]
			} else {
				m = grayOrder2[r]<<2 | grayOrder2[c]
			}
			s.Add(visual.Element{
				Type: visual.ElemCell, Name: fmt.Sprintf("k%d", m),
				Label: fmt.Sprint(boolBit(t.Out[m])),
				X:     x0 + float64(c)*cw, Y: y0 + float64(r)*ch,
				X2: x0 + float64(c+1)*cw, Y2: y0 + float64(r+1)*ch,
				Attrs: map[string]string{
					"row": fmt.Sprint(r), "col": fmt.Sprint(c),
					"minterm": fmt.Sprint(m),
				},
				Salience: 0.7, Critical: true,
			})
		}
	}
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "out", Label: outName,
		X: x0 + float64(cols)*cw + 16, Y: y0 + 12, Salience: 0.85,
	})
	return s, nil
}

func grayLabel(i, n int) string {
	if n == 2 {
		return fmt.Sprint(i)
	}
	return fmt.Sprintf("%02b", grayOrder2[i])
}
