// Agentloop: the §IV-C agent study — a text-only designer model drives a
// vision tool through an interactive describe-and-reason loop. Prints
// two full transcripts and the Table III summary.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/agent"
	"repro/internal/eval"
	"repro/internal/vlm"
)

func main() {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	toolModel, err := suite.Model("GPT4o")
	if err != nil {
		log.Fatal(err)
	}
	tool := toolModel.(*vlm.SimulatedVLM)
	ag := agent.New(tool)

	// Show the interaction loop on two contrasting questions: one whose
	// visual verbalises well (a schematic) and one that does not (a
	// manufacturing figure).
	judge := eval.Judge{}
	for _, id := range []string{"d09", "m03"} {
		for _, q := range suite.Benchmark.Questions {
			if q.ID != id {
				continue
			}
			fmt.Printf("=== question %s (%s, visual: %s) ===\n", q.ID, q.Category, q.Visual.Kind)
			answer, transcript := ag.Run(q, eval.InferenceOptions{})
			fmt.Print(agent.FormatTranscript(transcript))
			fmt.Printf("designer final answer: %s\n", answer)
			fmt.Printf("judged correct: %v\n\n", judge.Correct(q, answer))
		}
	}

	vals, err := suite.TableIII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TABLE III  Evaluation of Agent System on ChipVQA")
	fmt.Printf("  with choice: GPT4o %.2f -> Agent %.2f\n", vals[0], vals[1])
	fmt.Printf("  no choice:   GPT4o %.2f -> Agent %.2f\n", vals[2], vals[3])
}
