package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/visual"
)

// streamResult is one tenant's view of its run, collected from a
// goroutine (no t.Fatal off the test goroutine).
type streamResult struct {
	session string
	lines   []string
	err     error
}

// streamRunLines POSTs a streaming run and returns its event lines and
// terminal summary line, suitable for calling from worker goroutines.
func streamRunLines(ts *httptest.Server, spec string) ([]string, error) {
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("streaming POST = %d (%s)", resp.StatusCode, body)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty stream")
	}
	return lines, nil
}

// TestServeMultiTenantFairness runs 8 tenants concurrently over one
// shared worker pool: every session must complete (weighted FIFO — no
// starvation), and each session's event stream must be byte-identical
// to a sequential reference run, i.e. tenant interleaving never leaks
// into any tenant's observed ordering.
func TestServeMultiTenantFairness(t *testing.T) {
	const tenants = 8
	cfg := testConfig(t)
	cfg.MaxSessions = tenants
	_, ts := startServer(t, cfg)

	// Sequential reference: one tenant alone on the pool.
	ref, err := streamRunLines(ts, `{"models":["GPT4o","LLaVA-7b"],"session":"ref","stream":"ndjson"}`)
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan streamResult, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		session := fmt.Sprintf("tenant-%02d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := fmt.Sprintf(`{"models":["GPT4o","LLaVA-7b"],"session":%q,"stream":"ndjson"}`, session)
			lines, err := streamRunLines(ts, spec)
			results <- streamResult{session: session, lines: lines, err: err}
		}()
	}
	wg.Wait()
	close(results)

	seen := 0
	for res := range results {
		seen++
		if res.err != nil {
			t.Errorf("session %s: %v", res.session, res.err)
			continue
		}
		if len(res.lines) != len(ref) {
			t.Errorf("session %s streamed %d lines, reference has %d", res.session, len(res.lines), len(ref))
			continue
		}
		// Events must match the reference byte-for-byte; the summary
		// line differs only in the run id.
		for j := 0; j < len(ref)-1; j++ {
			if res.lines[j] != ref[j] {
				t.Errorf("session %s event %d diverges from reference\ngot:  %s\nwant: %s",
					res.session, j, res.lines[j], ref[j])
				break
			}
		}
		last := res.lines[len(res.lines)-1]
		if !strings.Contains(last, `"done":true`) || !strings.Contains(last, `"state":"done"`) {
			t.Errorf("session %s ended without a done summary: %s", res.session, last)
		}
	}
	if seen != tenants {
		t.Fatalf("collected %d tenant results, want %d", seen, tenants)
	}

	// The pool must be whole again and no session budget leaked.
	var h struct {
		Sessions int `json:"sessions"`
		Active   int `json:"active"`
		PoolCap  int `json:"pool_cap"`
		PoolFree int `json:"pool_free"`
		Queued   int `json:"queued"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Sessions != 0 || h.Active != 0 || h.Queued != 0 {
		t.Errorf("after runs: sessions=%d active=%d queued=%d, want all 0", h.Sessions, h.Active, h.Queued)
	}
	if h.PoolFree != h.PoolCap {
		t.Errorf("pool leaked tokens: free %d of cap %d", h.PoolFree, h.PoolCap)
	}
}

// TestServeSessionCapRejects wedges MaxSessions tenants at the event
// gate and asserts a new tenant is turned away with 429 while an
// existing tenant may still queue more work.
func TestServeSessionCapRejects(t *testing.T) {
	const stopAt = 2
	cfg := testConfig(t)
	cfg.MaxSessions = 2
	cfg.WorkersPerSession = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan string, 8)
	s.eventGate = func(ctx context.Context, runID string, seq int) {
		if seq == stopAt {
			reached <- runID
			<-ctx.Done()
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		// The wedged runs only unwind by force-cancel, so keep the
		// graceful window short.
		dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		s.Drain(dctx)
	})

	postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"cap-a"}`, http.StatusCreated)
	postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"cap-b"}`, http.StatusCreated)
	for i := 0; i < 2; i++ {
		select {
		case <-reached:
		case <-time.After(10 * time.Second):
			t.Fatal("gate never reached")
		}
	}

	// A third tenant is over the cap.
	postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"cap-c"}`, http.StatusTooManyRequests)
	// An existing tenant is not: the cap counts sessions, not runs.
	postRun(t, ts, `{"models":["GPT4o"],"workers":1,"session":"cap-a"}`, http.StatusCreated)
}

// TestServeImageHammerHoldsBudget hammers the image endpoint from many
// goroutines against a tightly budgeted scene cache, concurrently with
// streaming eval runs, and asserts the cache's high-water mark never
// exceeded its budget — the pinned-handle render path must uphold the
// LRU invariant under multi-tenant load.
func TestServeImageHammerHoldsBudget(t *testing.T) {
	const budget = 1 << 20
	cache := visual.NewSceneCache()
	cache.SetBudget(budget)
	cfg := testConfig(t)
	cfg.Cache = cache
	_, ts := startServer(t, cfg)

	var qs struct {
		Questions []struct {
			ID string `json:"id"`
		} `json:"questions"`
	}
	getJSON(t, ts.URL+"/v1/questions?limit=24", http.StatusOK, &qs)
	if len(qs.Questions) == 0 {
		t.Fatal("no questions to hammer")
	}

	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		factor := []int{1, 2, 4, 8}[g%4]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range qs.Questions {
				url := fmt.Sprintf("%s/v1/questions/%s/image.png?factor=%d", ts.URL, q.ID, factor)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s = %d", url, resp.StatusCode)
					return
				}
			}
		}()
	}
	// Eval runs render through the same cache at the same time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := streamRunLines(ts, `{"models":["GPT4o"],"session":"hammer","stream":"ndjson"}`)
		if err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := cache.Stats()
	if stats.Budget != budget {
		t.Fatalf("budget = %d, want %d", stats.Budget, budget)
	}
	if stats.PeakBytes > stats.Budget {
		t.Errorf("cache peak %d exceeded budget %d under load", stats.PeakBytes, stats.Budget)
	}
	if stats.PeakBytes == 0 {
		t.Error("cache never charged any bytes — hammer did not exercise the cache")
	}
}
