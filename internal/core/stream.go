package core

import (
	"fmt"

	"repro/internal/dataset"
)

// StreamExtended generates the same fold as BuildExtended(seed,
// perCategory) but delivers it as a sequence of shards of at most
// shardSize questions, so a large fold never has to exist as a single
// slice. Shards arrive in canonical category-major order and
// concatenating them is byte-identical to the monolithic build: each
// discipline's extended questions are pure functions of (seed, index),
// and shard windows are cut with the registry's ExtraRange primitive,
// which honours the prefix contract GenerateExtraRange(seed, lo, hi)
// == GenerateExtra(seed, hi)[lo:].
//
// yield is called once per shard, in order, on the calling goroutine;
// returning a non-nil error stops the stream and propagates the error.
// The shard's Questions slice must not be retained after yield returns.
//
// ID disjointness needs no global dedup set here: every discipline
// prefixes its extended IDs with a distinct marker (xd-/xa-/xr-/xm-/
// xp-) followed by the seed and within-category index, so IDs are
// unique across categories and across folds by construction. Each
// question is still individually validated before delivery.
func StreamExtended(seed string, perCategory, shardSize int, yield func(dataset.Shard) error) error {
	if perCategory <= 0 {
		return fmt.Errorf("core: perCategory must be positive, got %d", perCategory)
	}
	if shardSize <= 0 {
		return fmt.Errorf("core: shardSize must be positive, got %d", shardSize)
	}
	if yield == nil {
		return fmt.Errorf("core: StreamExtended requires a yield callback")
	}
	gens, err := registeredGenerators()
	if err != nil {
		return err
	}
	total := len(gens) * perCategory
	for start, idx := 0, 0; start < total; start, idx = start+shardSize, idx+1 {
		end := min(start+shardSize, total)
		qs := make([]*dataset.Question, 0, end-start)
		for g := start / perCategory; g < len(gens) && g*perCategory < end; g++ {
			base := g * perCategory
			lo := max(start, base) - base
			hi := min(end, base+perCategory) - base
			qs = append(qs, gens[g].ExtraRange(seed, lo, hi)...)
		}
		for _, q := range qs {
			if err := q.Validate(); err != nil {
				return fmt.Errorf("core: shard %d: %w", idx, err)
			}
		}
		if err := yield(dataset.Shard{Index: idx, Start: start, Questions: qs}); err != nil {
			return err
		}
	}
	return nil
}

// CollectExtended rebuilds the monolithic fold from its own stream —
// primarily a test and tooling helper proving the equivalence, but also
// the convenient path when a caller wants shard-bounded generation cost
// with a whole-fold result.
func CollectExtended(seed string, perCategory, shardSize int) (*dataset.Benchmark, error) {
	b := &dataset.Benchmark{
		Name:      fmt.Sprintf("ChipVQA-extended-%s", seed),
		Questions: make([]*dataset.Question, 0, 5*perCategory),
	}
	err := StreamExtended(seed, perCategory, shardSize, func(s dataset.Shard) error {
		b.Questions = append(b.Questions, s.Questions...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}
