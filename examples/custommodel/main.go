// Custommodel: plug a user-defined model into the evaluation harness.
// Two baselines run here: a uniform random guesser, which reproduces the
// paper's observation that answer options establish a ~25% floor on
// multiple-choice questions ("a baseline pass rate of 25%"), and an
// abstainer, which shows the floor disappears on short answers.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
	"repro/internal/rng"
)

// randomGuesser picks a uniformly random option letter on multiple
// choice and abstains on short answer.
type randomGuesser struct{}

func (randomGuesser) Name() string { return "random-guess" }

func (randomGuesser) Answer(q *chipvqa.Question, _ chipvqa.InferenceOptions) string {
	if len(q.Choices) == 4 {
		return string(rune('a' + rng.Pick(4, "baseline", q.ID)))
	}
	return "unknown"
}

// abstainer never answers.
type abstainer struct{}

func (abstainer) Name() string { return "abstain" }

func (abstainer) Answer(*chipvqa.Question, chipvqa.InferenceOptions) string { return "" }

func main() {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	runner := eval.Runner{}

	for _, m := range []chipvqa.Model{randomGuesser{}, abstainer{}} {
		std := runner.Evaluate(m, suite.Benchmark)
		chal := runner.Evaluate(m, suite.ChallengeSet)
		fmt.Printf("%-14s standard %.2f   challenge %.2f\n",
			m.Name(), std.Pass1(), chal.Pass1())
	}

	// The MC-only floor: evaluate the guesser on just the 99 MC
	// questions.
	mcOnly := suite.Benchmark.Filter(func(q *chipvqa.Question) bool {
		return len(q.Choices) == 4
	})
	bench := &chipvqa.Benchmark{Name: "mc-only", Questions: mcOnly}
	rep := runner.Evaluate(randomGuesser{}, bench)
	fmt.Printf("\nrandom guessing on the %d multiple-choice questions: Pass@1 = %.2f\n",
		len(mcOnly), rep.Pass1())
	fmt.Println("(the paper's 25% multiple-choice baseline)")
}
