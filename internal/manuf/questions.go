package manuf

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/visual"
)

// Generate produces the 20 Manufacture questions (6 multiple choice and
// 14 short answer, per Table I — the category the paper notes is
// SA-heavy and reasoning-heavy): 4 figures, 4 structures, 4 layouts,
// 3 diagrams, 2 flow charts, 2 mixed and 1 schematic. Golden answers
// come from the process-physics engines in this package.
func Generate() []*dataset.Question {
	var qs []*dataset.Question
	add := func(q *dataset.Question) { qs = append(qs, q) }

	// --- Figures (m01..m04) ------------------------------------------------

	// m01: RET recognition — the paper's own sample question ("What is
	// the lithography resolution enhancement technique depicted in the
	// figure?").
	{
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "Mask pattern detail",
			"drawn rectangle decorated with corner serifs, hammerheads and edge jogs",
			[]string{OPC.Signature()})
		add(dataset.NewMC("m01", dataset.Manufacture, "ret-recognition",
			"What is the lithography resolution enhancement technique depicted in the figure?",
			scene, OPC.String(),
			[3]string{PSM.String(), OAI.String(), MPT.String()}, 0.65))
	}
	// m02: wafer-map defect classification.
	{
		fails := [][2]float64{{-0.6, -0.55}, {-0.3, -0.28}, {0.0, 0.02}, {0.3, 0.31}, {0.6, 0.58}}
		class := ClassifyWaferMap(fails)
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "Wafer bin map",
			"failing dies form a thin straight line across the wafer",
			[]string{"fail coordinates lie on a diagonal line"})
		add(dataset.NewSAPhrase("m02", dataset.Manufacture, "wafer-map",
			"The wafer map in the figure marks failing dies. Based on their spatial "+
				"signature, what class of defect caused them?",
			scene, class.String(),
			[]string{"scratch", "a scratch", "mechanical scratch", "scratch defect"}, 0.6))
	}
	// m03: the paper's BOE over-etch worked example.
	{
		p := BOE5to1()
		const thickness, over = 500.0, 0.10
		t := p.TimeToClear(thickness, over)
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "Si/SiO2 substrate with patterned resist",
			"photoresist opening over a 500 nm SiO2 film on Si",
			[]string{"SiO2 thickness: 500 nm", "5:1 BOE etch rate: 100 nm/min (isotropic)"})
		add(dataset.NewSANumber("m03", dataset.Manufacture, "boe-overetch",
			"Assume 5:1 BOE (buffered HF) etches SiO2 isotropically at 100 nm/min. For the "+
				"structure in the figure, how long should this wafer be placed in 5:1 BOE etchant "+
				"to record a 10% over-etch? Answer in minutes.",
			scene, t, "min", 0.02, 0.7))
	}
	// m04: RIE selectivity substrate loss.
	{
		p := RIEOxide()
		overMinutes := 0.5
		loss := p.SubstrateLoss(overMinutes)
		scene := visual.NewAnnotatedFigure(visual.KindFigure, "RIE over-etch cross-section",
			"oxide cleared; silicon exposed during over-etch",
			[]string{"RIE rate: 200 nm/min on SiO2", "SiO2:Si selectivity 15:1",
				"over-etch duration: 0.5 min"})
		add(dataset.NewSANumber("m04", dataset.Manufacture, "rie-selectivity",
			"The RIE step in the figure etches SiO2 at 200 nm/min with a SiO2:Si "+
				"selectivity of 15:1. During the 0.5 minute over-etch, how many nm of the "+
				"underlying silicon are consumed?",
			scene, loss, "nm", 0.02, 0.75))
	}

	// --- Structures (m05..m08) -----------------------------------------------

	// m05: isotropic undercut.
	{
		p := BOE5to1()
		minutes := 5.5
		undercut := p.LateralEtch(minutes)
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "Wet-etched cross-section",
			"etched cavity curves under the resist edge",
			[]string{"isotropic etch at 100 nm/min", "etch time: 5.5 min"})
		add(dataset.NewSANumber("m05", dataset.Manufacture, "undercut",
			"The isotropic wet etch shown in the cross-section proceeds at the annotated "+
				"rate for 5.5 minutes. How far does the etch undercut the resist edge laterally, "+
				"in nm?",
			scene, undercut, "nm", 0.02, 0.6))
	}
	// m06: anisotropic profile recognition (MC).
	{
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "Two etch profiles",
			"profile A has vertical sidewalls; profile B curves under the mask",
			[]string{"A: straight vertical sidewalls", "B: rounded undercutting sidewalls"})
		add(dataset.NewMC("m06", dataset.Manufacture, "etch-profile",
			"Two etched cross-sections are compared in the figure. Which statement "+
				"correctly matches profile to process?",
			scene, "A is anisotropic dry (RIE) etch; B is isotropic wet etch",
			[3]string{"A is isotropic wet etch; B is anisotropic dry etch",
				"both profiles come from the same wet etch at different temperatures",
				"A is lift-off; B is damascene"}, 0.55))
	}
	// m07: junction depth.
	{
		step := DiffusionStep{D: 1e-13, TimeS: 3600}
		cs, cb := 1e20, 1e16
		xjCM := step.JunctionDepthConstantSource(cs, cb)
		xjUM := xjCM * 1e4
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "Dopant profile after predeposition",
			"erfc-shaped concentration falling from the surface",
			[]string{"Cs = 1e20 /cm3 (constant source)", "background: 1e16 /cm3",
				"D = 1e-13 cm2/s", "t = 1 hour"})
		add(dataset.NewSANumber("m07", dataset.Manufacture, "junction-depth",
			"The constant-source diffusion in the figure runs with the parameters "+
				"annotated. At what depth does the dopant concentration fall to the background "+
				"level (the junction depth)? Answer in um.",
			scene, xjUM, "um", 0.05, 0.85))
	}
	// m08: Deal–Grove oxide growth.
	{
		x := OxideGrowthDealGrove(0.5, 0.2, 0, 2) // B/A=0.5 um/h, B=0.2 um^2/h, 2h
		scene := visual.NewAnnotatedFigure(visual.KindStructure, "Thermal oxidation cross-section",
			"SiO2 film growing into and above the silicon surface",
			[]string{"Deal-Grove: B/A = 0.5 um/h, B = 0.2 um2/h",
				"no initial oxide", "oxidation time: 2 h"})
		add(dataset.NewSANumber("m08", dataset.Manufacture, "deal-grove",
			"Using the Deal-Grove model with the rate constants annotated in the figure "+
				"and no initial oxide, what oxide thickness grows in 2 hours? Answer in um.",
			scene, x, "um", 0.03, 0.85))
	}

	// --- Layouts (m09..m12) ----------------------------------------------------

	// m09: multiple patterning split count.
	{
		n := PitchSplit(40, 76)
		scene := layoutSceneManuf("Dense metal layer to decompose",
			[]string{"target pitch: 40 nm", "single-exposure pitch limit: 76 nm"})
		add(dataset.NewSANumber("m09", dataset.Manufacture, "pitch-split",
			"The metal layer in the figure needs the target pitch annotated, but the "+
				"scanner can only print the single-exposure pitch shown. Into how many "+
				"interleaved masks must the layer be decomposed?",
			scene, float64(n), "masks", 0, 0.6))
	}
	// m10: test-structure recognition (MC).
	{
		scene := layoutSceneManuf("Back-end test structure",
			[]string{"one long metal line meandering back and forth across the die"})
		add(dataset.NewMC("m10", dataset.Manufacture, "test-structure",
			"The layout in the figure shows a single very long metal line folded into a "+
				"meander. What is this test structure used to measure?",
			scene, "metal line continuity and resistance (open-circuit defect monitor)",
			[3]string{"gate oxide breakdown voltage", "contact chain resistance only",
				"transistor threshold voltage matching"}, 0.6))
	}
	// m11: MEEF.
	{
		delta := MaskErrorFactor(4, 2, 4)
		scene := layoutSceneManuf("Mask vs wafer CD",
			[]string{"mask CD error: 4 nm (at mask scale)", "MEEF = 2", "4x reduction scanner"})
		add(dataset.NewSANumber("m11", dataset.Manufacture, "meef",
			"A mask feature in the figure carries the CD error annotated. With the MEEF "+
				"and reduction ratio shown, what CD error appears on the wafer, in nm?",
			scene, delta, "nm", 0.02, 0.7))
	}
	// m12: sheet resistance.
	{
		rs := SheetResistance(1.7e-6, 2e-5) // copper, 200 nm film
		scene := layoutSceneManuf("Metal film test pad",
			[]string{"resistivity: 1.7e-6 Ohm*cm", "film thickness: 200 nm"})
		add(dataset.NewSANumber("m12", dataset.Manufacture, "sheet-resistance",
			"For the metal film in the figure with the resistivity and thickness "+
				"annotated, what is the sheet resistance in Ohm per square?",
			scene, rs, "Ohm/sq", 0.02, 0.65))
	}

	// --- Diagrams (m13..m15) -----------------------------------------------------

	// m13: Rayleigh resolution.
	{
		sys := ArF()
		res := sys.Resolution()
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Projection lithography column",
			[]string{"SOURCE", "MASK", "LENS", "WAFER"},
			[]string{"lambda = 193 nm", "NA = 1.35", "k1 = 0.3"})
		add(dataset.NewSANumber("m13", dataset.Manufacture, "rayleigh",
			"The immersion scanner in the figure operates with the wavelength, NA and k1 "+
				"annotated. Per the Rayleigh criterion R = k1*lambda/NA, what minimum feature "+
				"size can it resolve, in nm?",
			scene, res, "nm", 0.02, 0.6))
	}
	// m14: depth of focus.
	{
		sys := KrF()
		dof := sys.DepthOfFocus()
		scene := visual.NewBlockDiagram(visual.KindDiagram, "Focus budget",
			[]string{"LENS", "FOCAL PLANE", "WAFER TOPO"},
			[]string{"lambda = 248 nm", "NA = 0.8", "k2 = 0.5"})
		add(dataset.NewSANumber("m14", dataset.Manufacture, "dof",
			"For the scanner in the figure, compute the Rayleigh depth of focus "+
				"DOF = k2*lambda/NA^2, in nm.",
			scene, dof, "nm", 0.02, 0.65))
	}
	// m15: EUV wavelength (MC).
	{
		scene := visual.NewBlockDiagram(visual.KindDiagram, "EUV exposure tool",
			[]string{"PLASMA SOURCE", "MIRRORS", "REFLECTIVE MASK", "WAFER"},
			[]string{"all-reflective optics in vacuum"})
		add(dataset.NewMC("m15", dataset.Manufacture, "euv",
			"The all-reflective exposure tool in the figure is an EUV scanner. What "+
				"wavelength does it expose with?",
			scene, "13.5 nm",
			[3]string{"193 nm", "248 nm", "157 nm"}, 0.45))
	}

	// --- Flow charts (m16, m17) -----------------------------------------------------

	// m16: patterning loop order (MC).
	{
		scene := visual.NewBlockDiagram(visual.KindFlow, "Patterning loop",
			[]string{"DEPOSIT", "SPIN RESIST", "EXPOSE", "DEVELOP", "?", "STRIP"},
			[]string{"the boxed step transfers the resist pattern into the film"})
		add(dataset.NewMC("m16", dataset.Manufacture, "pattern-flow",
			"In the patterning loop of the figure, which step fills the box between "+
				"develop and resist strip?",
			scene, "etch",
			[3]string{"chemical-mechanical polish", "ion implantation", "anneal"}, 0.4))
	}
	// m17: develop step identification.
	{
		scene := visual.NewBlockDiagram(visual.KindFlow, "Photolithography sequence",
			[]string{"SPIN COAT", "SOFT BAKE", "EXPOSE", "?", "HARD BAKE"},
			[]string{"the boxed step dissolves the exposed (positive) resist"})
		add(dataset.NewSAPhrase("m17", dataset.Manufacture, "develop-step",
			"The photolithography flow in the figure is missing one step between exposure "+
				"and hard bake — the step that dissolves the exposed regions of a positive "+
				"resist. What is this step called?",
			scene, "develop",
			[]string{"development", "developing", "resist develop", "resist development"}, 0.45))
	}

	// --- Mixed (m18, m19) ---------------------------------------------------------

	// m18: Poisson yield.
	{
		y := PoissonYield(1.0, 0.5) * 100
		scene := visual.NewTableScene(visual.KindMixed, "Die and defect data",
			[]string{"parameter", "value"},
			[][]string{{"die area", "1.0 cm2"}, {"defect density", "0.5 /cm2"},
				{"model", "Poisson"}}, map[int]bool{1: true})
		add(dataset.NewSANumber("m18", dataset.Manufacture, "poisson-yield",
			"Using the Poisson yield model Y = exp(-A*D) with the die area and defect "+
				"density tabulated in the figure, what die yield results, in percent?",
			scene, y, "%", 0.02, 0.6))
	}
	// m19: good die per wafer.
	{
		good := GoodDiePerWafer(300, 100, 0.2)
		scene := visual.NewTableScene(visual.KindMixed, "Wafer economics",
			[]string{"parameter", "value"},
			[][]string{{"wafer diameter", "300 mm"}, {"die area", "100 mm2"},
				{"defect density", "0.2 /cm2"}, {"yield model", "Poisson"}},
			map[int]bool{1: true})
		// m19 carries the benchmark's longest prompt (Table I reports
		// prompts up to 370 tokens): a full industrial costing scenario.
		add(dataset.NewSANumber("m19", dataset.Manufacture, "good-die",
			"A fabless design house is negotiating wafer pricing with its foundry for a "+
				"new networking ASIC and needs an internal estimate of sellable units per wafer "+
				"before the meeting. The product team has frozen the die at the area listed in "+
				"the figure after the last floorplan iteration, and the process engineers have "+
				"shared the current baseline defect density for the target technology, measured "+
				"across the last three months of risk production lots and summarized in the "+
				"same table. Manufacturing will run the standard wafer diameter noted there; "+
				"edge dies that do not fit completely on the wafer cannot be sold and must be "+
				"excluded up front, so use the edge-corrected gross-die estimate "+
				"N = pi*(d/2)^2/A - pi*d/sqrt(2*A), where d is the wafer diameter and A the die "+
				"area, rather than a naive area ratio. Assume defects are randomly distributed "+
				"across the wafer with no clustering, so the Poisson yield model Y = exp(-A*D) "+
				"applies. Ignore yield learning over the ramp, test escapes and assembly "+
				"losses: purchasing only wants the silicon-limited number. Convert the die "+
				"area into the units the defect density is quoted in before applying the "+
				"exponential. Under these assumptions, how many good dies does a wafer "+
				"described in the figure deliver? Round down.",
			scene, float64(good), "dies", 0.02, 0.9))
	}

	// --- Schematic (m20) -------------------------------------------------------------

	{
		scene := visual.NewBlockDiagram(visual.KindSchematic, "Deposition chamber",
			[]string{"GAS INLET", "SHOWERHEAD", "PLASMA", "HEATED CHUCK"},
			[]string{"RF electrode energises the gas above the wafer"})
		add(dataset.NewMC("m20", dataset.Manufacture, "pecvd",
			"The deposition chamber in the figure feeds precursor gas through a "+
				"showerhead into an RF-driven plasma above a heated wafer chuck. What "+
				"deposition technique is this?",
			scene, "plasma-enhanced chemical vapor deposition (PECVD)",
			[3]string{"physical vapor deposition (sputtering)", "atomic layer deposition (thermal)",
				"molecular beam epitaxy"}, 0.55))
	}

	if len(qs) != 20 {
		panic(fmt.Sprintf("manuf: generated %d questions, want 20", len(qs)))
	}
	return qs
}

// layoutSceneManuf draws a simple patterned-layer layout with
// annotations.
func layoutSceneManuf(title string, annotations []string) *visual.Scene {
	s := visual.NewScene(visual.KindLayout, title)
	for i := 0; i < 6; i++ {
		x := 80.0 + float64(i)*70
		s.Add(visual.Element{
			Type: visual.ElemRect, Name: fmt.Sprintf("line%d", i),
			X: x, Y: 80, X2: x + 28, Y2: 300,
			Attrs: map[string]string{"layer": "metal1"},
		})
	}
	for i, a := range annotations {
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("ann%d", i), Label: a,
			X: 80, Y: 330 + float64(i)*24, Salience: 0.65, Critical: true,
		})
	}
	return s
}
