package digital

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/visual"
)

func TestGenerateComposition(t *testing.T) {
	qs := Generate()
	if len(qs) != 35 {
		t.Fatalf("generated %d questions, want 35", len(qs))
	}
	kinds := map[visual.Kind]int{}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
		if q.Category != dataset.Digital {
			t.Errorf("%s: category %v", q.ID, q.Category)
		}
		if q.Type != dataset.MultipleChoice {
			t.Errorf("%s: Digital questions are all multiple choice (§III-B1)", q.ID)
		}
		kinds[q.Visual.Kind]++
	}
	want := map[visual.Kind]int{
		visual.KindSchematic:  20,
		visual.KindTable:      6,
		visual.KindDiagram:    6,
		visual.KindEquations:  2,
		visual.KindNeuralNets: 1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("visual %s: %d questions, want %d", k, kinds[k], n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(), Generate()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Prompt != b[i].Prompt ||
			a[i].Golden.Text != b[i].Golden.Text || a[i].Golden.Choice != b[i].Golden.Choice {
			t.Fatalf("question %d differs between runs", i)
		}
		for j := range a[i].Choices {
			if a[i].Choices[j] != b[i].Choices[j] {
				t.Fatalf("%s: choice %d differs between runs", a[i].ID, j)
			}
		}
	}
}

func TestChoicesDistinct(t *testing.T) {
	for _, q := range Generate() {
		seen := make(map[string]bool)
		for _, c := range q.Choices {
			if c == "" {
				t.Errorf("%s: empty option", q.ID)
			}
			if seen[c] {
				t.Errorf("%s: duplicate option %q", q.ID, c)
			}
			seen[c] = true
		}
	}
}

func TestExpressionDistractorsNotEquivalent(t *testing.T) {
	// For every expression-answer question, the three distractors must
	// not be functionally equivalent to the golden answer — the property
	// §III-B1 demands ("all of which could be inferred, but only one is
	// correct").
	for _, q := range Generate() {
		golden := q.Choices[q.Golden.Choice]
		if !strings.Contains(golden, "=") || !looksBoolean(golden) {
			continue
		}
		for i, c := range q.Choices {
			if i == q.Golden.Choice {
				continue
			}
			if looksBoolean(c) && EquivalentStrings(golden, c) {
				t.Errorf("%s: distractor %q is equivalent to golden %q", q.ID, c, golden)
			}
		}
	}
}

func looksBoolean(s string) bool {
	if i := strings.Index(s, "="); i >= 0 {
		s = s[i+1:]
	}
	_, err := Parse(s)
	return err == nil
}

func TestGoldenExpressionsMatchCircuits(t *testing.T) {
	// Spot-check d01..d04: the golden expression must equal the
	// generated circuit's truth table.
	for _, spec := range []struct {
		seed  string
		depth int
	}{{"alpha", 2}, {"beta", 2}, {"gamma", 3}, {"delta", 3}} {
		n, _ := randomCircuit(spec.seed, spec.depth)
		tt, err := n.TruthTable("F")
		if err != nil {
			t.Fatal(err)
		}
		golden := Minimize(tt.Vars, tt.Minterms(), nil)
		if !agreesOnCares(golden, tt.Vars, tt.Minterms(), nil) {
			t.Errorf("circuit %s: golden expression does not match circuit", spec.seed)
		}
	}
}

func TestMuxFunction(t *testing.T) {
	// Data inputs (D0..D3) = 0, C, C', 1 selected by S1 S0:
	// F = S1'S0 C + S1 S0' C' + S1 S0.
	f := muxFunction([4]string{"0", "C", "C'", "1"})
	want := MustParse("S1'S0C + S1S0'C' + S1S0")
	if !Equivalent(f, want) {
		t.Errorf("mux function %q not equivalent to expected", f)
	}
	// All-zero data gives constant 0.
	zero := muxFunction([4]string{"0", "0", "0", "0"})
	if !Equivalent(zero, &Const{Value: false}) {
		t.Errorf("all-zero mux = %q", zero)
	}
}

func TestGateValueAnswer(t *testing.T) {
	// AND(A,B)=n1 with A=1,B=0 -> n1=0; OR(n1,C) = C.
	n := NewNetlist().
		AddGate(GateAnd, "G1", "n1", "A", "B").
		AddGate(GateOr, "G2", "F", "n1", "C")
	if got := gateValueAnswer(n, true, false); got != "C" {
		t.Errorf("got %q, want C", got)
	}
	// With A=1,B=1: n1=1, OR -> constant 1.
	if got := gateValueAnswer(n, true, true); got != "1" {
		t.Errorf("got %q, want 1", got)
	}
}

func TestCriticalElementsPresent(t *testing.T) {
	// Every digital question must mark at least one critical scene
	// element, or the resolution study has nothing to degrade.
	for _, q := range Generate() {
		if len(q.Visual.CriticalElements()) == 0 {
			t.Errorf("%s: no critical elements in scene", q.ID)
		}
	}
}
