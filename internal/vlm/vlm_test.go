package vlm

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/visual"
)

func buildAll(t *testing.T) (*dataset.Benchmark, *dataset.Benchmark, *Zoo) {
	t.Helper()
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	return b, b.Challenge(), NewZoo(b)
}

func TestProfilesSanity(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("%d profiles, want 12 (Table II rows)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.BackboneStrength <= 0 || p.BackboneStrength > 1 {
			t.Errorf("%s: backbone strength %v", p.Name, p.BackboneStrength)
		}
		if p.Perception <= 0 || p.Perception > 1 {
			t.Errorf("%s: perception %v", p.Name, p.Perception)
		}
		for c := 0; c < dataset.NumCategories; c++ {
			if p.WithChoice[c] < 0 || p.WithChoice[c] > 1 || p.NoChoice[c] < 0 || p.NoChoice[c] > 1 {
				t.Errorf("%s: rate out of range", p.Name)
			}
		}
	}
	// Exactly one proprietary model.
	proprietary := 0
	for _, p := range ps {
		if !p.OpenSource {
			proprietary++
		}
	}
	if proprietary != 1 {
		t.Errorf("%d proprietary models, want 1 (GPT-4o)", proprietary)
	}
	if _, ok := ProfileByName("GPT4o"); !ok {
		t.Error("GPT4o missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ghost profile found")
	}
}

func TestLLaVAFamilyOrdered(t *testing.T) {
	fam := LLaVAFamily()
	if len(fam) != 4 {
		t.Fatalf("LLaVA family size %d", len(fam))
	}
	for i := 1; i < len(fam); i++ {
		if fam[i-1].BackboneStrength > fam[i].BackboneStrength {
			t.Error("family not ordered by backbone strength")
		}
	}
}

// TestTableIICalibration is the headline check: measured Pass@1 must
// land on the paper's Table II values within rounding noise (1/44 for
// the largest category).
func TestTableIICalibration(t *testing.T) {
	b, chal, zoo := buildAll(t)
	r := eval.Runner{}
	const tol = 0.03
	for _, m := range zoo.Models() {
		repStd := r.Evaluate(m, b)
		repChal := r.Evaluate(m, chal)
		byStd := repStd.Pass1ByCategory()
		byChal := repChal.Pass1ByCategory()
		for _, c := range dataset.Categories() {
			if d := math.Abs(byStd[c] - m.Profile().WithChoice[c]); d > tol {
				t.Errorf("%s %s with-choice: %.3f vs paper %.3f (off %.3f)",
					m.Name(), c.Short(), byStd[c], m.Profile().WithChoice[c], d)
			}
			if d := math.Abs(byChal[c] - m.Profile().NoChoice[c]); d > tol {
				t.Errorf("%s %s no-choice: %.3f vs paper %.3f (off %.3f)",
					m.Name(), c.Short(), byChal[c], m.Profile().NoChoice[c], d)
			}
		}
	}
}

func TestGPT4oHeadlineNumbers(t *testing.T) {
	b, chal, zoo := buildAll(t)
	m, _ := zoo.Model("GPT4o")
	r := eval.Runner{}
	std := r.Evaluate(m, b).Pass1()
	noChoice := r.Evaluate(m, chal).Pass1()
	// The abstract's numbers: 44% and 20%.
	if math.Abs(std-0.44) > 0.015 {
		t.Errorf("GPT-4o standard pass@1 %.3f, paper reports 0.44", std)
	}
	if math.Abs(noChoice-0.20) > 0.015 {
		t.Errorf("GPT-4o challenge pass@1 %.3f, paper reports 0.20", noChoice)
	}
}

func TestEveryModelDropsWithoutChoices(t *testing.T) {
	// §IV-A: "a significant performance drop on all models".
	b, chal, zoo := buildAll(t)
	r := eval.Runner{}
	for _, m := range zoo.Models() {
		std := r.Evaluate(m, b).Pass1()
		noChoice := r.Evaluate(m, chal).Pass1()
		if noChoice > std+0.02 {
			t.Errorf("%s improved without options: %.3f -> %.3f", m.Name(), std, noChoice)
		}
	}
}

func TestResolutionStudy(t *testing.T) {
	b, _, zoo := buildAll(t)
	m, _ := zoo.Model("GPT4o")
	digital := &dataset.Benchmark{Name: "digital", Questions: b.Filter(
		func(q *dataset.Question) bool { return q.Category == dataset.Digital })}
	get := func(f int) float64 {
		r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: f}}
		return r.Evaluate(m, digital).Pass1()
	}
	p1, p8, p16 := get(1), get(8), get(16)
	// §IV-B: 8x preserves the pass rate; 16x drops 0.49 -> 0.37.
	if math.Abs(p1-p8) > 0.001 {
		t.Errorf("8x downsampling changed pass@1: %.3f -> %.3f", p1, p8)
	}
	if math.Abs(p1-0.486) > 0.02 {
		t.Errorf("1x digital pass@1 %.3f, want ~0.49", p1)
	}
	if math.Abs(p16-0.371) > 0.03 {
		t.Errorf("16x digital pass@1 %.3f, want ~0.37", p16)
	}
}

func TestZooDeterministic(t *testing.T) {
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	z1, z2 := NewZoo(b), NewZoo(b)
	m1, _ := z1.Model("LLaVA-13b")
	m2, _ := z2.Model("LLaVA-13b")
	for _, q := range b.Questions {
		a1 := m1.Answer(q, eval.InferenceOptions{})
		a2 := m2.Answer(q, eval.InferenceOptions{})
		if a1 != a2 {
			t.Fatalf("%s: answers differ between zoo builds: %q vs %q", q.ID, a1, a2)
		}
	}
}

func TestBuildPromptSystemSupport(t *testing.T) {
	b, _, zoo := buildAll(t)
	q := b.Questions[0]
	withSys, _ := zoo.Model("GPT4o")
	without, _ := zoo.Model("paligemma")
	if p := withSys.BuildPrompt(q); p[:9] != "[system] " {
		t.Errorf("system-prompt model prompt starts %q", p[:20])
	}
	// §IV: Paligemma folds the system prompt into the user turn.
	if p := without.BuildPrompt(q); p[:7] != "[user] " {
		t.Errorf("no-system-prompt model prompt starts %q", p[:20])
	}
}

func TestFallbackOnUnknownQuestion(t *testing.T) {
	b, _, zoo := buildAll(t)
	m, _ := zoo.Model("GPT4o")
	scene := visual.NewScene(visual.KindSchematic, "new")
	scene.Add(visual.Element{Type: visual.ElemBox, Name: "b", Critical: true})
	q := &dataset.Question{
		ID: "zz-unknown", Category: dataset.Digital, Type: dataset.MultipleChoice,
		Prompt: "new question?", Difficulty: 0.5, Visual: scene,
		Choices: []string{"p", "q", "r", "s"},
		Golden:  dataset.Answer{Kind: dataset.AnswerChoice, Choice: 0, Text: "p"},
	}
	resp := m.Answer(q, eval.InferenceOptions{})
	if resp == "" {
		t.Error("empty response to unknown question")
	}
	// Deterministic too.
	if resp != m.Answer(q, eval.InferenceOptions{}) {
		t.Error("fallback not deterministic")
	}
	_ = b
}

func TestPerceptionFailureResponses(t *testing.T) {
	// At an absurd downsampling factor, answers become perception
	// failures and score zero.
	b, _, zoo := buildAll(t)
	m, _ := zoo.Model("GPT4o")
	p := DefaultPerception()
	p.RecallThreshold = 1.01 // impossible
	m.SetPerception(p)
	defer m.SetPerception(DefaultPerception())
	r := eval.Runner{Opts: eval.InferenceOptions{DownsampleFactor: 16}}
	rep := r.Evaluate(m, b)
	if rep.Pass1() > 0.01 {
		t.Errorf("pass@1 %.3f with impossible recall threshold", rep.Pass1())
	}
}

func TestCorrectSetMatchesRunner(t *testing.T) {
	b, chal, zoo := buildAll(t)
	m, _ := zoo.Model("GPT4o")
	j := eval.Judge{}
	// The declared correct set must coincide with what the judge scores.
	set := m.CorrectSet(false)
	for _, q := range b.Questions {
		got := j.Correct(q, m.Answer(q, eval.InferenceOptions{}))
		if got != set[q.ID] {
			t.Errorf("std %s: judge=%v set=%v", q.ID, got, set[q.ID])
		}
	}
	setChal := m.CorrectSet(true)
	for _, q := range chal.Questions {
		got := j.Correct(q, m.Answer(q, eval.InferenceOptions{}))
		if got != setChal[q.ID] {
			t.Errorf("chal %s: judge=%v set=%v", q.ID, got, setChal[q.ID])
		}
	}
}

func TestEvalModelsOrder(t *testing.T) {
	b, _, zoo := buildAll(t)
	models := zoo.EvalModels()
	if len(models) != 12 {
		t.Fatalf("%d models", len(models))
	}
	for i, p := range Profiles() {
		if models[i].Name() != p.Name {
			t.Errorf("model %d is %s, want %s", i, models[i].Name(), p.Name)
		}
	}
	_ = b
}
