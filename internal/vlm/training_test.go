package vlm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func trainTestSplit(t *testing.T) (*dataset.Benchmark, *dataset.Benchmark) {
	t.Helper()
	pool, err := core.BuildExtended("train-pool", 30)
	if err != nil {
		t.Fatal(err)
	}
	test, err := core.BuildExtended("test-fold", 10)
	if err != nil {
		t.Fatal(err)
	}
	return pool, test
}

func TestFineTuneImprovesWeakModel(t *testing.T) {
	std := core.MustBuild()
	zoo := NewZoo(std)
	base, _ := zoo.Model("LLaVA-7b")
	pool, test := trainTestSplit(t)
	tuned := FineTune(base, pool, DefaultTraining())
	r := eval.Runner{}
	basePass := r.Evaluate(base, test).Pass1()
	tunedPass := r.Evaluate(tuned, test).Pass1()
	if tunedPass <= basePass {
		t.Errorf("tuned %.3f did not improve over base %.3f on held-out questions",
			tunedPass, basePass)
	}
	// Adaptation is bounded: it cannot reach perfection.
	if tunedPass > 0.9 {
		t.Errorf("tuned pass %.3f implausibly high", tunedPass)
	}
}

func TestFineTuneNeverHurts(t *testing.T) {
	std := core.MustBuild()
	zoo := NewZoo(std)
	base, _ := zoo.Model("GPT4o")
	pool, test := trainTestSplit(t)
	tuned := FineTune(base, pool, DefaultTraining())
	r := eval.Runner{}
	basePass := r.Evaluate(base, test).Pass1()
	tunedPass := r.Evaluate(tuned, test).Pass1()
	if tunedPass < basePass {
		t.Errorf("tuning regressed %.3f -> %.3f", basePass, tunedPass)
	}
}

func TestFineTuneZeroTrainingIsIdentity(t *testing.T) {
	std := core.MustBuild()
	zoo := NewZoo(std)
	base, _ := zoo.Model("LLaVA-13b")
	empty := &dataset.Benchmark{Name: "empty"}
	tuned := FineTune(base, empty, DefaultTraining())
	for _, q := range std.Questions[:30] {
		if tuned.Answer(q, eval.InferenceOptions{}) != base.Answer(q, eval.InferenceOptions{}) {
			t.Fatalf("%s: zero-exposure tuning changed the answer", q.ID)
		}
	}
	for _, e := range tuned.Exposure {
		if e != 0 {
			t.Error("exposure nonzero with empty training set")
		}
	}
}

func TestLearningCurveMonotoneByConstruction(t *testing.T) {
	std := core.MustBuild()
	zoo := NewZoo(std)
	base, _ := zoo.Model("LLaVA-7b")
	pool, test := trainTestSplit(t)
	curve := LearningCurve(base, pool, test, []int{0, 5, 15, 30}, DefaultTraining())
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	// Exposure grows with the training size, so the boost does; measured
	// Pass@1 can wiggle by one question, so allow slack.
	if curve[len(curve)-1].Pass1 < curve[0].Pass1 {
		t.Errorf("learning curve fell: %v", curve)
	}
}

func TestSaturate(t *testing.T) {
	if s := saturate(0, 20); s != 0 {
		t.Errorf("saturate(0) = %v", s)
	}
	// n = k: 1 - 1/e.
	if s := saturate(20, 20); math.Abs(s-(1-1/math.E)) > 1e-6 {
		t.Errorf("saturate(k) = %v", s)
	}
	// Monotone, bounded by 1.
	prev := 0.0
	for n := 0; n <= 200; n += 10 {
		s := saturate(n, 20)
		if s < prev || s > 1 {
			t.Fatalf("saturate(%d) = %v (prev %v)", n, s, prev)
		}
		prev = s
	}
}

func TestFineTunedName(t *testing.T) {
	std := core.MustBuild()
	zoo := NewZoo(std)
	base, _ := zoo.Model("GPT4o")
	tuned := FineTune(base, &dataset.Benchmark{Name: "foldX"}, DefaultTraining())
	if !strings.Contains(tuned.Name(), "GPT4o") || !strings.Contains(tuned.Name(), "foldX") {
		t.Errorf("name %q", tuned.Name())
	}
}
