package arch

import "fmt"

// Topology enumerates network-on-chip topologies.
type Topology int

// Supported topologies.
const (
	Mesh2D Topology = iota
	Torus2D
	Ring
	Hypercube
	Crossbar
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Mesh2D:
		return "2D mesh"
	case Torus2D:
		return "2D torus"
	case Ring:
		return "ring"
	case Hypercube:
		return "hypercube"
	case Crossbar:
		return "crossbar"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// MeshHops returns the minimal hop count between (x0,y0) and (x1,y1) in
// a 2D mesh (dimension-order routing distance).
func MeshHops(x0, y0, x1, y1 int) int {
	return absInt(x1-x0) + absInt(y1-y0)
}

// TorusHops returns the minimal hop count in a w x h torus with
// wraparound links.
func TorusHops(w, h, x0, y0, x1, y1 int) int {
	dx := absInt(x1 - x0)
	if w-dx < dx {
		dx = w - dx
	}
	dy := absInt(y1 - y0)
	if h-dy < dy {
		dy = h - dy
	}
	return dx + dy
}

// Diameter returns the network diameter (maximum minimal hop count) of a
// topology over n nodes; for mesh/torus n must be a perfect square.
func Diameter(t Topology, n int) (int, error) {
	switch t {
	case Mesh2D:
		side, err := isqrtExact(n)
		if err != nil {
			return 0, err
		}
		return 2 * (side - 1), nil
	case Torus2D:
		side, err := isqrtExact(n)
		if err != nil {
			return 0, err
		}
		return 2 * (side / 2), nil
	case Ring:
		return n / 2, nil
	case Hypercube:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("arch: hypercube needs power-of-two nodes, got %d", n)
		}
		return log2i(n), nil
	case Crossbar:
		return 1, nil
	default:
		return 0, fmt.Errorf("arch: unknown topology %d", int(t))
	}
}

// BisectionWidth returns the bisection link count of a topology over n
// nodes.
func BisectionWidth(t Topology, n int) (int, error) {
	switch t {
	case Mesh2D:
		side, err := isqrtExact(n)
		if err != nil {
			return 0, err
		}
		return side, nil
	case Torus2D:
		side, err := isqrtExact(n)
		if err != nil {
			return 0, err
		}
		return 2 * side, nil
	case Ring:
		return 2, nil
	case Hypercube:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("arch: hypercube needs power-of-two nodes, got %d", n)
		}
		return n / 2, nil
	case Crossbar:
		return n * n / 4, nil
	default:
		return 0, fmt.Errorf("arch: unknown topology %d", int(t))
	}
}

// LinksPerNode returns the per-node link (degree) count.
func LinksPerNode(t Topology, n int) (int, error) {
	switch t {
	case Mesh2D:
		return 4, nil // interior node
	case Torus2D:
		return 4, nil
	case Ring:
		return 2, nil
	case Hypercube:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("arch: hypercube needs power-of-two nodes, got %d", n)
		}
		return log2i(n), nil
	case Crossbar:
		return n - 1, nil
	default:
		return 0, fmt.Errorf("arch: unknown topology %d", int(t))
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func isqrtExact(n int) (int, error) {
	s := 0
	for s*s < n {
		s++
	}
	if s*s != n {
		return 0, fmt.Errorf("arch: %d nodes is not a perfect square", n)
	}
	return s, nil
}
