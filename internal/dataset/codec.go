// Compact binary codec for benchmark folds. The JSON codec in json.go
// optimises for diffability; this one optimises for cold-load speed and
// size at 100k+ question scale. The format is streaming on both sides:
// the writer never needs the whole fold in memory (questions are framed
// one at a time) and the reader can hand back shard-sized windows.
//
// Format (all integers little-endian; uvarint = unsigned LEB128):
//
//	magic   "CVQB"
//	version uvarint (currently 1)
//	name    raw string (uvarint length + bytes)
//	records zero or more: uvarint payloadLen (> 0), payload bytes
//	end     uvarint 0 sentinel
//	trailer uvarint question count, 4-byte CRC-32C of all payloads
//
// A record payload's first byte is its type: 'S' appends the rest of
// the payload to the string-intern table; 'Q' is one question. Strings
// inside question payloads are either inline (tag 0, then uvarint
// length + bytes) or references to the table (tag n >= 2 means entry
// n-2); the writer emits 'S' records before the first question record
// that uses them, so by the time a question arrives the table already
// holds everything it references. Only strings of at most internMaxLen
// bytes are interned and the table is capped at internMaxEntries, so
// decoder memory stays bounded no matter the fold size — unique
// prompts stay inline, while units, topics, labels and attribute keys
// collapse to one- or two-byte references.
//
// Because question records never mutate the table, each one is
// independently decodable once the table is built — ReadPack exploits
// that with a two-pass whole-buffer load (scan frames and verify the
// trailer, then decode records on every CPU), which is where the
// codec's cold-load speedup over fold regeneration comes from.
// StreamPack keeps the sequential incremental path for bounded-memory
// consumption.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/visual"
)

const (
	packMagic        = "CVQB"
	packVersion      = 1
	internMaxLen     = 64
	internMaxEntries = 1 << 16

	recString = 'S'
	recQuest  = 'Q'

	// packMaxPayload bounds a single record; any legitimate question is
	// far below it, so larger frames signal corruption before the
	// decoder allocates for them.
	packMaxPayload = 1 << 26
)

// packCRC is the Castagnoli polynomial table — CRC-32C has hardware
// support on amd64/arm64, so checksumming never dominates a cold load.
var packCRC = crc32.MakeTable(crc32.Castagnoli)

// PackWriter serialises questions into the binary pack format. It does
// not close the underlying writer; callers own that handle and must
// call Close to finish the stream and learn about buffered write
// errors.
type PackWriter struct {
	w       *bufio.Writer
	tab     map[string]int // -1 = seen once, >= 0 = table index
	entries int
	pending []string // interned strings awaiting their 'S' records
	buf     []byte
	sum     uint32
	count   uint64
	closed  bool
	err     error
}

// NewPackWriter starts a pack stream on w with the benchmark name in
// the header.
func NewPackWriter(w io.Writer, name string) *PackWriter {
	pw := &PackWriter{
		w:   bufio.NewWriterSize(w, 1<<16),
		tab: make(map[string]int),
	}
	hdr := []byte(packMagic)
	hdr = binary.AppendUvarint(hdr, packVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	_, pw.err = pw.w.Write(hdr)
	return pw
}

// appendString encodes s as a table reference when it has been seen
// before, promoting it into the table on its second occurrence.
// One-shot strings (IDs, unique prompts) therefore never consume table
// entries — which matters at 100k+ scale, where first-occurrence
// interning would saturate internMaxEntries with strings that never
// repeat and leave no room for the ones that do.
func (pw *PackWriter) appendString(s string) {
	if ref, ok := pw.tab[s]; ok {
		if ref < 0 {
			if len(s) <= internMaxLen && pw.entries < internMaxEntries {
				ref = pw.entries
				pw.entries++
				pw.tab[s] = ref
				pw.pending = append(pw.pending, s)
				pw.buf = binary.AppendUvarint(pw.buf, uint64(ref)+2)
				return
			}
		} else {
			pw.buf = binary.AppendUvarint(pw.buf, uint64(ref)+2)
			return
		}
	} else if len(s) <= internMaxLen && pw.entries < internMaxEntries {
		pw.tab[s] = -1
	}
	pw.buf = binary.AppendUvarint(pw.buf, 0)
	pw.buf = binary.AppendUvarint(pw.buf, uint64(len(s)))
	pw.buf = append(pw.buf, s...)
}

func (pw *PackWriter) appendStrings(ss []string) {
	pw.buf = binary.AppendUvarint(pw.buf, uint64(len(ss)))
	for _, s := range ss {
		pw.appendString(s)
	}
}

func (pw *PackWriter) appendFloat(f float64) {
	pw.buf = binary.LittleEndian.AppendUint64(pw.buf, math.Float64bits(f))
}

func (pw *PackWriter) appendBool(b bool) {
	if b {
		pw.buf = append(pw.buf, 1)
	} else {
		pw.buf = append(pw.buf, 0)
	}
}

func (pw *PackWriter) appendScene(s *visual.Scene) {
	pw.buf = binary.AppendUvarint(pw.buf, uint64(s.Kind))
	pw.appendString(s.Title)
	pw.buf = binary.AppendUvarint(pw.buf, uint64(s.Width))
	pw.buf = binary.AppendUvarint(pw.buf, uint64(s.Height))
	pw.buf = binary.AppendUvarint(pw.buf, uint64(len(s.Elements)))
	for i := range s.Elements {
		e := &s.Elements[i]
		pw.buf = binary.AppendUvarint(pw.buf, uint64(e.Type))
		pw.appendString(e.Name)
		pw.appendString(e.Label)
		pw.appendFloat(e.X)
		pw.appendFloat(e.Y)
		pw.appendFloat(e.X2)
		pw.appendFloat(e.Y2)
		pw.buf = binary.AppendUvarint(pw.buf, uint64(len(e.Points)))
		for _, p := range e.Points {
			pw.appendFloat(p.X)
			pw.appendFloat(p.Y)
		}
		// Attrs keys are sorted so the byte stream (and the intern
		// table evolution) is deterministic regardless of map order.
		pw.buf = binary.AppendUvarint(pw.buf, uint64(len(e.Attrs)))
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pw.appendString(k)
			pw.appendString(e.Attrs[k])
		}
		pw.appendFloat(e.Salience)
		pw.appendBool(e.Critical)
	}
}

// writeFrame emits one length-prefixed record and folds it into the
// running checksum.
func (pw *PackWriter) writeFrame(payload []byte) error {
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(payload)))
	if _, err := pw.w.Write(frame[:n]); err != nil {
		pw.err = err
		return err
	}
	if _, err := pw.w.Write(payload); err != nil {
		pw.err = err
		return err
	}
	pw.sum = crc32.Update(pw.sum, packCRC, payload)
	return nil
}

// WriteQuestion appends one question record to the stream, preceded by
// 'S' records for any strings the question newly interns.
func (pw *PackWriter) WriteQuestion(q *Question) error {
	if pw.err != nil {
		return pw.err
	}
	if pw.closed {
		return fmt.Errorf("dataset: pack: write after Close")
	}
	pw.buf = append(pw.buf[:0], recQuest)
	pw.appendString(q.ID)
	pw.buf = binary.AppendUvarint(pw.buf, uint64(q.Category))
	pw.buf = binary.AppendUvarint(pw.buf, uint64(q.Type))
	pw.appendString(q.Topic)
	pw.appendString(q.Prompt)
	pw.appendStrings(q.Choices)
	pw.buf = binary.AppendUvarint(pw.buf, uint64(q.Golden.Kind))
	pw.buf = binary.AppendUvarint(pw.buf, uint64(q.Golden.Choice))
	pw.appendFloat(q.Golden.Number)
	pw.appendString(q.Golden.Unit)
	pw.appendFloat(q.Golden.Tolerance)
	pw.appendString(q.Golden.Text)
	pw.appendStrings(q.Golden.Accept)
	pw.appendBool(q.Challenge)
	pw.appendFloat(q.Difficulty)
	if q.Visual != nil {
		pw.appendBool(true)
		pw.appendScene(q.Visual)
	} else {
		pw.appendBool(false)
	}

	// Flush the strings this question interned, in table-index order,
	// before the question record that references them.
	for _, s := range pw.pending {
		rec := make([]byte, 0, len(s)+1)
		rec = append(rec, recString)
		rec = append(rec, s...)
		if err := pw.writeFrame(rec); err != nil {
			return err
		}
	}
	pw.pending = pw.pending[:0]
	if err := pw.writeFrame(pw.buf); err != nil {
		return err
	}
	pw.count++
	return nil
}

// WriteShard appends every question of a shard, in order.
func (pw *PackWriter) WriteShard(s Shard) error {
	for _, q := range s.Questions {
		if err := pw.WriteQuestion(q); err != nil {
			return err
		}
	}
	return nil
}

// Close finishes the stream: it writes the end sentinel and trailer and
// flushes buffered bytes, surfacing any write error that occurred along
// the way. It does not close the underlying writer. Close is
// idempotent; later calls return the first result.
func (pw *PackWriter) Close() error {
	if pw.closed {
		return pw.err
	}
	pw.closed = true
	if pw.err != nil {
		return pw.err
	}
	var tail []byte
	tail = binary.AppendUvarint(tail, 0)
	tail = binary.AppendUvarint(tail, pw.count)
	tail = binary.LittleEndian.AppendUint32(tail, pw.sum)
	if _, err := pw.w.Write(tail); err != nil {
		pw.err = err
		return err
	}
	pw.err = pw.w.Flush()
	return pw.err
}

// packAlloc batches the allocations of decoded values: questions,
// scenes, elements, points and string slices are handed out of slab
// arrays refilled in blocks, so a cold load does a small constant
// number of heap allocations per block of questions instead of several
// per question. Windows are capacity-clipped so appends by callers
// never bleed into a neighbouring window.
type packAlloc struct {
	qslab   []Question
	sslab   []visual.Scene
	eslab   []visual.Element
	pslab   []visual.Point
	strslab []string

	// attrs and elems dedupe decoded attribute maps and element windows
	// by the raw bytes of their encoded block: generated folds repeat a
	// handful of attribute sets (and many whole element sections) across
	// thousands of scenes, and building those is the most expensive part
	// of a cold load. Byte-identical blocks share one read-only value —
	// the same contract decoded questions already carry when shared
	// across evaluation workers.
	attrs map[string]map[string]string
	elems map[string][]visual.Element
	kv    []string // scratch for one block's keys and values
}

const packSlabLen = 512

func (a *packAlloc) question() *Question {
	if len(a.qslab) == 0 {
		a.qslab = make([]Question, packSlabLen)
	}
	q := &a.qslab[0]
	a.qslab = a.qslab[1:]
	return q
}

func (a *packAlloc) scene() *visual.Scene {
	if len(a.sslab) == 0 {
		a.sslab = make([]visual.Scene, packSlabLen)
	}
	s := &a.sslab[0]
	a.sslab = a.sslab[1:]
	return s
}

func (a *packAlloc) elements(n int) []visual.Element {
	if len(a.eslab) < n {
		a.eslab = make([]visual.Element, max(8*packSlabLen, n))
	}
	w := a.eslab[:n:n]
	a.eslab = a.eslab[n:]
	return w
}

func (a *packAlloc) points(n int) []visual.Point {
	if len(a.pslab) < n {
		a.pslab = make([]visual.Point, max(8*packSlabLen, n))
	}
	w := a.pslab[:n:n]
	a.pslab = a.pslab[n:]
	return w
}

func (a *packAlloc) strings(n int) []string {
	if len(a.strslab) < n {
		a.strslab = make([]string, max(4*packSlabLen, n))
	}
	w := a.strslab[:n:n]
	a.strslab = a.strslab[n:]
	return w
}

// PackReader decodes a pack stream question by question, rebuilding the
// writer's intern table as it goes, so memory stays proportional to one
// record plus the bounded table — never the fold.
type PackReader struct {
	r     *bufio.Reader
	tab   []string
	name  string
	buf   []byte
	sum   uint32
	read  uint64
	done  bool
	alloc packAlloc
}

// NewPackReader validates the stream header and positions the reader at
// the first record.
func NewPackReader(r io.Reader) (*PackReader, error) {
	pr := &PackReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(packMagic))
	if _, err := io.ReadFull(pr.r, magic); err != nil {
		return nil, fmt.Errorf("dataset: pack: reading magic: %w", err)
	}
	if string(magic) != packMagic {
		return nil, fmt.Errorf("dataset: pack: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(pr.r)
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading version: %w", err)
	}
	if version != packVersion {
		return nil, fmt.Errorf("dataset: pack: unsupported version %d (want %d)", version, packVersion)
	}
	nameLen, err := binary.ReadUvarint(pr.r)
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading name: %w", err)
	}
	if nameLen > packMaxPayload {
		return nil, fmt.Errorf("dataset: pack: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(pr.r, name); err != nil {
		return nil, fmt.Errorf("dataset: pack: reading name: %w", err)
	}
	pr.name = string(name)
	return pr, nil
}

// Name returns the benchmark name from the header.
func (pr *PackReader) Name() string { return pr.name }

// Count returns the number of questions decoded so far.
func (pr *PackReader) Count() int { return int(pr.read) }

// nextPayload returns the next question-record payload (without its
// leading type byte) as a string, folding every record into the
// checksum. 'S' records are applied to the intern table in place and
// skipped. At the end sentinel it verifies the trailer and returns
// io.EOF.
func (pr *PackReader) nextPayload() (string, error) {
	for {
		payloadLen, err := binary.ReadUvarint(pr.r)
		if err != nil {
			return "", fmt.Errorf("dataset: pack: reading frame: %w", err)
		}
		if payloadLen == 0 {
			if err := pr.checkTrailer(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
		if payloadLen > packMaxPayload {
			return "", fmt.Errorf("dataset: pack: implausible record length %d", payloadLen)
		}
		if uint64(cap(pr.buf)) < payloadLen {
			pr.buf = make([]byte, payloadLen)
		}
		pr.buf = pr.buf[:payloadLen]
		if _, err := io.ReadFull(pr.r, pr.buf); err != nil {
			return "", fmt.Errorf("dataset: pack: reading record: %w", err)
		}
		pr.sum = crc32.Update(pr.sum, packCRC, pr.buf)
		switch pr.buf[0] {
		case recString:
			if len(pr.tab) >= internMaxEntries {
				return "", fmt.Errorf("dataset: pack: intern table overflow")
			}
			pr.tab = append(pr.tab, string(pr.buf[1:]))
		case recQuest:
			return string(pr.buf[1:]), nil
		default:
			return "", fmt.Errorf("dataset: pack: unknown record type %#x", pr.buf[0])
		}
	}
}

// Next decodes the next question. It returns io.EOF after the last
// question, once the trailer's count and checksum have verified.
func (pr *PackReader) Next() (*Question, error) {
	if pr.done {
		return nil, io.EOF
	}
	payload, err := pr.nextPayload()
	if err == io.EOF {
		pr.done = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	q, err := decodeQuestion(payload, pr.tab, &pr.alloc)
	if err != nil {
		return nil, err
	}
	pr.read++
	return q, nil
}

func (pr *PackReader) checkTrailer() error {
	count, err := binary.ReadUvarint(pr.r)
	if err != nil {
		return fmt.Errorf("dataset: pack: reading trailer: %w", err)
	}
	if count != pr.read {
		return fmt.Errorf("dataset: pack: trailer count %d, decoded %d", count, pr.read)
	}
	var sum [4]byte
	if _, err := io.ReadFull(pr.r, sum[:]); err != nil {
		return fmt.Errorf("dataset: pack: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != pr.sum {
		return fmt.Errorf("dataset: pack: checksum mismatch")
	}
	return nil
}

// packDecoder walks one question payload. The payload is a string so
// decoded fields can alias it without copying; pos advances as fields
// are consumed. tab is a read-only intern table — a question record
// never mutates it, which is what makes records decodable in parallel.
type packDecoder struct {
	s     string
	pos   int
	tab   []string
	alloc *packAlloc
}

// uvarint has a manually-inlined fast path: almost every varint in a
// question record (tags, counts, enums) is a single byte.
func (d *packDecoder) uvarint() (uint64, error) {
	if d.pos < len(d.s) {
		if b := d.s[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b), nil
		}
	}
	return d.uvarintSlow()
}

func (d *packDecoder) uvarintSlow() (uint64, error) {
	var x uint64
	var shift uint
	for i := d.pos; i < len(d.s); i++ {
		b := d.s[i]
		if b < 0x80 {
			if shift > 63 {
				return 0, fmt.Errorf("dataset: pack: varint overflow")
			}
			d.pos = i + 1
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("dataset: pack: varint overflow")
		}
	}
	return 0, fmt.Errorf("dataset: pack: truncated varint")
}

// count reads a collection length and sanity-checks it against the
// remaining payload, where every collection entry costs at least one
// byte — corrupt counts fail here instead of in make().
func (d *packDecoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.s)-d.pos) {
		return 0, fmt.Errorf("dataset: pack: count %d exceeds payload", v)
	}
	return int(v), nil
}

func (d *packDecoder) str() (string, error) {
	tag, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if tag >= 2 {
		ref := tag - 2
		if ref >= uint64(len(d.tab)) {
			return "", fmt.Errorf("dataset: pack: intern reference %d out of range", ref)
		}
		return d.tab[ref], nil
	}
	if tag == 1 {
		return "", fmt.Errorf("dataset: pack: intern tag inside question record")
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.s)-d.pos) {
		return "", fmt.Errorf("dataset: pack: truncated string")
	}
	s := d.s[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return s, nil
}

func (d *packDecoder) strs() ([]string, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := d.alloc.strings(n)
	for i := range out {
		if out[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *packDecoder) float() (float64, error) {
	if len(d.s)-d.pos < 8 {
		return 0, fmt.Errorf("dataset: pack: truncated float")
	}
	s := d.s[d.pos : d.pos+8]
	v := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
	d.pos += 8
	return math.Float64frombits(v), nil
}

func (d *packDecoder) boolByte() (bool, error) {
	if len(d.s)-d.pos < 1 {
		return false, fmt.Errorf("dataset: pack: truncated bool")
	}
	b := d.s[d.pos]
	d.pos++
	if b > 1 {
		return false, fmt.Errorf("dataset: pack: bad bool byte %d", b)
	}
	return b == 1, nil
}

// attrBlock decodes one attribute block of na pairs whose count varint
// began at mark, returning a map shared with every other element whose
// encoded block is byte-identical (see packAlloc.attrs). Callers must
// treat decoded attribute maps as read-only — the same contract decoded
// questions already carry when shared across evaluation workers.
func (d *packDecoder) attrBlock(mark, na int) (map[string]string, error) {
	if cap(d.alloc.kv) < 2*na {
		d.alloc.kv = make([]string, 2*na)
	}
	kv := d.alloc.kv[:2*na]
	var err error
	for j := range kv {
		if kv[j], err = d.str(); err != nil {
			return nil, err
		}
	}
	block := d.s[mark:d.pos]
	if m, ok := d.alloc.attrs[block]; ok {
		return m, nil
	}
	m := make(map[string]string, na)
	for j := 0; j < 2*na; j += 2 {
		m[kv[j]] = kv[j+1]
	}
	if d.alloc.attrs == nil {
		d.alloc.attrs = make(map[string]map[string]string)
	}
	d.alloc.attrs[block] = m
	return m, nil
}

func (d *packDecoder) scene() (*visual.Scene, error) {
	kind, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	s := d.alloc.scene()
	s.Kind = visual.Kind(kind)
	if s.Title, err = d.str(); err != nil {
		return nil, err
	}
	w, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	h, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	s.Width, s.Height = int(w), int(h)
	mark := d.pos
	ne, err := d.count()
	if err != nil {
		return nil, err
	}
	if ne > 0 {
		if s.Elements, err = d.elementBlock(mark, ne); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// elementBlock decodes one scene's element section of ne elements whose
// count varint began at mark. Scenes whose encoded sections are
// byte-identical share one read-only window (see packAlloc.elems); on a
// cache hit the freshly-parsed window is handed back to the slabs.
func (d *packDecoder) elementBlock(mark, ne int) ([]visual.Element, error) {
	savedE, savedP := d.alloc.eslab, d.alloc.pslab
	w := d.alloc.elements(ne)
	for i := 0; i < ne; i++ {
		e := &w[i]
		typ, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		e.Type = visual.ElementType(typ)
		if e.Name, err = d.str(); err != nil {
			return nil, err
		}
		if e.Label, err = d.str(); err != nil {
			return nil, err
		}
		if e.X, err = d.float(); err != nil {
			return nil, err
		}
		if e.Y, err = d.float(); err != nil {
			return nil, err
		}
		if e.X2, err = d.float(); err != nil {
			return nil, err
		}
		if e.Y2, err = d.float(); err != nil {
			return nil, err
		}
		np, err := d.count()
		if err != nil {
			return nil, err
		}
		// Every field is assigned unconditionally (nil for absent
		// collections): a cache hit below rewinds the slabs, so a
		// window may be handed out again without being re-zeroed.
		e.Points = nil
		if np > 0 {
			e.Points = d.alloc.points(np)
		}
		for j := range e.Points {
			if e.Points[j].X, err = d.float(); err != nil {
				return nil, err
			}
			if e.Points[j].Y, err = d.float(); err != nil {
				return nil, err
			}
		}
		amark := d.pos
		na, err := d.count()
		if err != nil {
			return nil, err
		}
		e.Attrs = nil
		if na > 0 {
			if e.Attrs, err = d.attrBlock(amark, na); err != nil {
				return nil, err
			}
		}
		if e.Salience, err = d.float(); err != nil {
			return nil, err
		}
		if e.Critical, err = d.boolByte(); err != nil {
			return nil, err
		}
	}
	block := d.s[mark:d.pos]
	if shared, ok := d.alloc.elems[block]; ok {
		d.alloc.eslab, d.alloc.pslab = savedE, savedP
		return shared, nil
	}
	if d.alloc.elems == nil {
		d.alloc.elems = make(map[string][]visual.Element)
	}
	d.alloc.elems[block] = w
	return w, nil
}

// decodeQuestion decodes one question payload (without its leading
// record-type byte) against a read-only intern table.
func decodeQuestion(payload string, tab []string, alloc *packAlloc) (*Question, error) {
	d := packDecoder{s: payload, tab: tab, alloc: alloc}
	q := alloc.question()
	var err error
	if q.ID, err = d.str(); err != nil {
		return nil, err
	}
	cat, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	q.Category = Category(cat)
	typ, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	q.Type = QType(typ)
	if q.Topic, err = d.str(); err != nil {
		return nil, err
	}
	if q.Prompt, err = d.str(); err != nil {
		return nil, err
	}
	if q.Choices, err = d.strs(); err != nil {
		return nil, err
	}
	kind, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	q.Golden.Kind = AnswerKind(kind)
	choice, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	q.Golden.Choice = int(choice)
	if q.Golden.Number, err = d.float(); err != nil {
		return nil, err
	}
	if q.Golden.Unit, err = d.str(); err != nil {
		return nil, err
	}
	if q.Golden.Tolerance, err = d.float(); err != nil {
		return nil, err
	}
	if q.Golden.Text, err = d.str(); err != nil {
		return nil, err
	}
	if q.Golden.Accept, err = d.strs(); err != nil {
		return nil, err
	}
	if q.Challenge, err = d.boolByte(); err != nil {
		return nil, err
	}
	if q.Difficulty, err = d.float(); err != nil {
		return nil, err
	}
	hasScene, err := d.boolByte()
	if err != nil {
		return nil, err
	}
	if hasScene {
		if q.Visual, err = d.scene(); err != nil {
			return nil, err
		}
	}
	if d.pos != len(d.s) {
		return nil, fmt.Errorf("dataset: pack: %s: %d trailing bytes in record", q.ID, len(d.s)-d.pos)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: pack: %w", err)
	}
	return q, nil
}

// WritePack serialises a whole benchmark to w in pack format.
func WritePack(w io.Writer, b *Benchmark) error {
	pw := NewPackWriter(w, b.Name)
	for _, q := range b.Questions {
		if err := pw.WriteQuestion(q); err != nil {
			return err
		}
	}
	return pw.Close()
}

// ReadPack loads a whole benchmark previously written in pack format.
//
// Unlike StreamPack it buffers the entire stream: the result holds
// every question anyway, and decoding against one contiguous buffer is
// what lets inline strings alias the image instead of being copied
// record by record. The frame scan verifies the trailer first, then
// question records — which never mutate the intern table — decode on
// one goroutine per CPU, partitioned by index range so the result is
// identical regardless of parallelism.
func ReadPack(r io.Reader) (*Benchmark, error) {
	data, err := slurp(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading stream: %w", err)
	}
	return parsePack(data, runtime.GOMAXPROCS(0))
}

// ReadPackBytes decodes a pack image already held in memory — the
// fastest cold-load path when the caller has the file bytes (e.g. from
// os.ReadFile), since it skips the stream copy ReadPack must make.
func ReadPackBytes(data []byte) (*Benchmark, error) {
	return parsePack(data, runtime.GOMAXPROCS(0))
}

// slurp reads r to EOF, sizing the buffer up front when the reader can
// report its length — io.ReadAll's doubling growth would copy a large
// pack several times over.
func slurp(r io.Reader) ([]byte, error) {
	if sized, ok := r.(interface{ Len() int }); ok {
		data := make([]byte, sized.Len())
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	return io.ReadAll(r)
}

// parsePack decodes a whole pack image with the given decode
// parallelism (workers <= 1 means sequential).
func parsePack(data []byte, workers int) (*Benchmark, error) {
	// The one unavoidable copy: a string image lets every inline string
	// and table entry alias it for free.
	img := string(data)
	pos := 0
	if len(img) < len(packMagic) || img[:len(packMagic)] != packMagic {
		return nil, fmt.Errorf("dataset: pack: bad magic %q", img[:min(len(img), len(packMagic))])
	}
	pos = len(packMagic)
	sd := packDecoder{s: img, pos: pos}
	version, err := sd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading version: %w", err)
	}
	if version != packVersion {
		return nil, fmt.Errorf("dataset: pack: unsupported version %d (want %d)", version, packVersion)
	}
	nameLen, err := sd.count()
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading name: %w", err)
	}
	b := &Benchmark{Name: img[sd.pos : sd.pos+nameLen]}
	sd.pos += nameLen

	// Pass 1: frame scan. Builds the intern table, records question
	// payload spans, and verifies count and checksum before any
	// question decodes.
	var tab []string
	type span struct{ lo, hi int }
	var spans []span
	var sum uint32
	for {
		n, err := sd.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dataset: pack: reading frame: %w", err)
		}
		if n == 0 {
			break
		}
		if n > packMaxPayload {
			return nil, fmt.Errorf("dataset: pack: implausible record length %d", n)
		}
		if n > uint64(len(img)-sd.pos) {
			return nil, fmt.Errorf("dataset: pack: truncated record")
		}
		lo, hi := sd.pos, sd.pos+int(n)
		sd.pos = hi
		sum = crc32.Update(sum, packCRC, data[lo:hi])
		switch img[lo] {
		case recString:
			if len(tab) >= internMaxEntries {
				return nil, fmt.Errorf("dataset: pack: intern table overflow")
			}
			tab = append(tab, img[lo+1:hi])
		case recQuest:
			spans = append(spans, span{lo + 1, hi})
		default:
			return nil, fmt.Errorf("dataset: pack: unknown record type %#x", img[lo])
		}
	}
	count, err := sd.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dataset: pack: reading trailer: %w", err)
	}
	if count != uint64(len(spans)) {
		return nil, fmt.Errorf("dataset: pack: trailer count %d, decoded %d", count, len(spans))
	}
	if len(img)-sd.pos < 4 {
		return nil, fmt.Errorf("dataset: pack: reading checksum: unexpected EOF")
	}
	if got := binary.LittleEndian.Uint32(data[sd.pos:]); got != sum {
		return nil, fmt.Errorf("dataset: pack: checksum mismatch")
	}
	if sd.pos+4 != len(img) {
		return nil, fmt.Errorf("dataset: pack: %d trailing bytes after trailer", len(img)-sd.pos-4)
	}

	// Pass 2: decode question records.
	b.Questions = make([]*Question, len(spans))
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers <= 1 {
		var alloc packAlloc
		for i, sp := range spans {
			if b.Questions[i], err = decodeQuestion(img[sp.lo:sp.hi], tab, &alloc); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := len(spans)*w/workers, len(spans)*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var alloc packAlloc
			for i := lo; i < hi; i++ {
				sp := spans[i]
				q, err := decodeQuestion(img[sp.lo:sp.hi], tab, &alloc)
				if err != nil {
					errs[w] = err
					return
				}
				b.Questions[i] = q
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// StreamPack reads a pack stream and delivers it as shards of at most
// shardSize questions, mirroring core.StreamExtended's delivery
// contract: shards arrive in order on the calling goroutine and the
// Questions slice must not be retained after yield returns. Unlike
// ReadPack it reads and decodes incrementally — peak memory stays
// bounded by one shard plus the intern table, which is the point of
// streaming.
func StreamPack(r io.Reader, shardSize int, yield func(Shard) error) error {
	if shardSize <= 0 {
		return fmt.Errorf("dataset: pack: shardSize must be positive, got %d", shardSize)
	}
	if yield == nil {
		return fmt.Errorf("dataset: pack: StreamPack requires a yield callback")
	}
	pr, err := NewPackReader(r)
	if err != nil {
		return err
	}
	qs := make([]*Question, 0, shardSize)
	start, idx := 0, 0
	flush := func() error {
		if len(qs) == 0 {
			return nil
		}
		if err := yield(Shard{Index: idx, Start: start, Questions: qs}); err != nil {
			return err
		}
		start += len(qs)
		idx++
		qs = qs[:0]
		return nil
	}
	for {
		q, err := pr.Next()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		qs = append(qs, q)
		if len(qs) == shardSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}
