package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// JSON-lines access log. Each completed request emits one record via a
// single Write call, so any writer whose Write is atomic per call (an
// os.File, a locked buffer) yields well-formed lines under concurrency.
// Timestamps come from the clock seam in clock.go and are the only
// wall-clock data the server ever emits.

// logRecord is one access-log line.
type logRecord struct {
	Time   string  `json:"time"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Query  string  `json:"query,omitempty"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	DurMS  float64 `json:"dur_ms"`
	Remote string  `json:"remote,omitempty"`
}

// statusWriter captures the status code and body size while passing
// Flush through so streaming handlers keep working under the logger.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logged wraps h with the access-log middleware.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		rec := logRecord{
			Time:   start.UTC().Format(time.RFC3339Nano),
			Method: r.Method,
			Path:   r.URL.Path,
			Query:  r.URL.RawQuery,
			Status: sw.status,
			Bytes:  sw.bytes,
			DurMS:  float64(now().Sub(start).Microseconds()) / 1000,
			Remote: r.RemoteAddr,
		}
		if rec.Status == 0 {
			rec.Status = http.StatusOK
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return
		}
		_, _ = s.accessLog.Write(append(line, '\n'))
	})
}
