package arch

import "fmt"

// MESIState is a cache-line state in the MESI protocol.
type MESIState int

// MESI states.
const (
	Invalid MESIState = iota
	Shared
	Exclusive
	Modified
)

// String names the state by its protocol letter.
func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("MESIState(%d)", int(s))
	}
}

// CoherenceEvent is an action observed by one cache for a line.
type CoherenceEvent int

// Events: processor-side reads/writes and bus-side snoops.
const (
	ProcRead CoherenceEvent = iota
	ProcWrite
	BusRead    // another cache reads the line
	BusReadX   // another cache requests exclusive ownership
	BusUpgrade // another cache upgrades S->M
)

// String names the event.
func (e CoherenceEvent) String() string {
	switch e {
	case ProcRead:
		return "PrRd"
	case ProcWrite:
		return "PrWr"
	case BusRead:
		return "BusRd"
	case BusReadX:
		return "BusRdX"
	case BusUpgrade:
		return "BusUpgr"
	default:
		return fmt.Sprintf("CoherenceEvent(%d)", int(e))
	}
}

// MESINext returns the next state of a line after the event.
// sharedLine reports whether, on a processor read miss, some other cache
// holds the line (drives the E vs S choice). The second return value
// notes whether the transition writes the line back to memory.
func MESINext(s MESIState, e CoherenceEvent, sharedLine bool) (MESIState, bool) {
	switch s {
	case Invalid:
		switch e {
		case ProcRead:
			if sharedLine {
				return Shared, false
			}
			return Exclusive, false
		case ProcWrite:
			return Modified, false
		default:
			return Invalid, false
		}
	case Shared:
		switch e {
		case ProcRead:
			return Shared, false
		case ProcWrite:
			return Modified, false // issues BusUpgr
		case BusRead:
			return Shared, false
		case BusReadX, BusUpgrade:
			return Invalid, false
		}
	case Exclusive:
		switch e {
		case ProcRead:
			return Exclusive, false
		case ProcWrite:
			return Modified, false // silent upgrade
		case BusRead:
			return Shared, false
		case BusReadX:
			return Invalid, false
		}
	case Modified:
		switch e {
		case ProcRead, ProcWrite:
			return Modified, false
		case BusRead:
			return Shared, true // flush dirty data
		case BusReadX:
			return Invalid, true
		}
	}
	return s, false
}

// CoherenceTraceStep is one step of a multi-core access trace.
type CoherenceTraceStep struct {
	Core  int
	Write bool
}

// RunMESI simulates cores touching one shared line and returns the final
// per-core states plus the number of writebacks (dirty flushes).
func RunMESI(cores int, trace []CoherenceTraceStep) ([]MESIState, int, error) {
	states := make([]MESIState, cores)
	writebacks := 0
	for step, t := range trace {
		if t.Core < 0 || t.Core >= cores {
			return nil, 0, fmt.Errorf("arch: step %d references core %d of %d", step, t.Core, cores)
		}
		// Does any other core hold the line?
		shared := false
		for i, s := range states {
			if i != t.Core && s != Invalid {
				shared = true
			}
		}
		ev := ProcRead
		snoop := BusRead
		if t.Write {
			ev = ProcWrite
			snoop = BusReadX
		}
		// Other cores observe the snoop (only needed when requestor
		// misses or upgrades; modelling every access as a bus event is
		// conservative and standard for exercise traces except silent
		// hits).
		requestorHit := states[t.Core] != Invalid
		silent := requestorHit && (!t.Write || states[t.Core] == Exclusive || states[t.Core] == Modified)
		if !silent {
			for i := range states {
				if i == t.Core {
					continue
				}
				next, wb := MESINext(states[i], snoop, false)
				if wb {
					writebacks++
				}
				states[i] = next
			}
		}
		next, wb := MESINext(states[t.Core], ev, shared)
		if wb {
			writebacks++
		}
		states[t.Core] = next
	}
	return states, writebacks, nil
}
