// Package eval implements the hybrid evaluation harness of §IV: answer
// normalisation, an equivalence judge standing in for the paper's
// GPT-4-based auto-evaluation (rule-based and therefore exactly
// reproducible), Pass@1 metrics per discipline, and the evaluation
// runner that produces the rows of Tables II and III.
package eval

import (
	"strconv"
	"strings"
	"unicode"
)

// Normalize lowercases, trims and collapses whitespace and strips
// surrounding punctuation — the canonical form short answers are
// compared in.
func Normalize(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	var b strings.Builder
	lastSpace := false
	for _, r := range s {
		switch {
		case unicode.IsSpace(r):
			if !lastSpace && b.Len() > 0 {
				b.WriteByte(' ')
				lastSpace = true
			}
		case r == '.' || r == ',' || r == '!' || r == '"':
			// Sentence punctuation dropped; keep signs, parens, units.
		default:
			b.WriteRune(r)
			lastSpace = false
		}
	}
	return strings.TrimSpace(b.String())
}

// baseUnits are unit spellings reduced to a canonical token.
var baseUnits = map[string]string{
	"ohm": "ohm", "ohms": "ohm", "Ω": "ohm",
	"v": "v", "volt": "v", "volts": "v",
	"a": "a", "amp": "a", "amps": "a", "ampere": "a", "amperes": "a",
	"s": "s", "siemens": "s_siemens", "sec": "s", "second": "s", "seconds": "s",
	"hz": "hz", "hertz": "hz",
	"f": "f", "farad": "f", "farads": "f",
	"db":      "db",
	"degrees": "deg", "degree": "deg", "deg": "deg",
	"rad/s": "rad/s", "rads": "rad/s",
	"v/v": "v/v",
	"min": "min", "minute": "min", "minutes": "min",
	"nm": "nm", "um": "um", "mm": "mm", "cm": "cm", "ps": "ps", "ns": "ns",
	"mv": "mv", "mhz": "mhz", "khz": "khz", "ghz": "ghz",
	"cycles": "count", "cycle": "count", "hops": "count", "hop": "count",
	"sets": "count", "tracks": "count", "units": "count", "unit": "count",
	"edges": "count", "masks": "count", "dies": "count", "die": "count",
	"buffers": "count", "comparators": "count", "macs": "count",
	"violations": "count", "misses": "count", "hits": "count",
	"mispredictions": "count", "x": "count", "%": "percent", "percent": "percent",
	"cpi": "count", "mhz2": "mhz",
	"sq": "count", "ohm/sq": "ohm/sq", "ohms/sq": "ohm/sq",
	"gate": "count", "gates": "count", "delays": "count",
}

// ParseNumber extracts the first numeric value from a response together
// with any SI-scaled unit, returning the value scaled to base units and
// the canonical unit token (empty when none). ok is false when the
// response contains no number.
//
// Examples: "2.2 kOhm" -> (2200, "ohm"); "-10 V/V" -> (-10, "v/v");
// "about 43 nm of silicon" -> (43, "nm").
func ParseNumber(resp string) (value float64, unit string, ok bool) {
	raw := strings.TrimSpace(resp)
	// ASCII-only lowering keeps byte offsets aligned with raw (full
	// Unicode case mapping can change byte lengths).
	s := asciiLower(raw)
	// Find the first number.
	start := -1
	for i, r := range s {
		if r >= '0' && r <= '9' {
			start = i
			break
		}
		if (r == '-' || r == '+') && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, "", false
	}
	end := start
	if s[end] == '-' || s[end] == '+' {
		end++
	}
	seenDot := false
	seenExp := false
	for end < len(s) {
		c := s[end]
		switch {
		case c >= '0' && c <= '9':
			end++
		case c == '.' && !seenDot:
			seenDot = true
			end++
		case (c == 'e') && !seenExp && end+1 < len(s) &&
			(s[end+1] == '-' || s[end+1] == '+' || s[end+1] >= '0' && s[end+1] <= '9'):
			// Exponent only when followed by digits (avoid eating words
			// like "edges").
			j := end + 1
			if s[j] == '-' || s[j] == '+' {
				j++
			}
			if j < len(s) && s[j] >= '0' && s[j] <= '9' {
				seenExp = true
				end = j
			} else {
				goto numDone
			}
		default:
			goto numDone
		}
	}
numDone:
	v, err := strconv.ParseFloat(s[start:end], 64)
	if err != nil {
		return 0, "", false
	}
	// Parse the unit token following the number, preserving case so the
	// mega/milli distinction ("Mrad/s" vs "mrad/s") survives.
	tok := leadingUnitToken(strings.TrimLeft(raw[end:], " \t"))
	value, unit = applyUnit(v, tok)
	return value, unit, true
}

// asciiLower lowercases A-Z only, preserving byte length.
func asciiLower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

func leadingUnitToken(s string) string {
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '/' || c == '%' {
			end++
		} else {
			break
		}
	}
	return s[:end]
}

// caseSensitivePrefixes maps SI prefixes preserving the mega/milli case
// distinction; tried longest first.
var caseSensitivePrefixes = []struct {
	text string
	mult float64
}{
	{"meg", 1e6}, {"Meg", 1e6}, {"MEG", 1e6},
	{"G", 1e9}, {"M", 1e6}, {"k", 1e3}, {"K", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
	{"N", 1e-9}, {"P", 1e-12},
}

// applyUnit resolves an attached unit token like "kOhm", "mV", "ns" into
// (scaledValue, canonicalBaseUnit). Well-known compound spellings are
// handled first; otherwise a case-sensitive SI prefix is split off.
func applyUnit(v float64, tok string) (float64, string) {
	if tok == "" {
		return v, ""
	}
	low := strings.ToLower(tok)
	// Exact unit (handles compound tokens like mV, ns, kHz, rad/s
	// directly — these carry their own scale). "mhz" always means MHz:
	// millihertz does not occur in this domain.
	if u, ok := baseUnits[low]; ok {
		switch low {
		case "mv":
			return v * 1e-3, "v"
		case "khz":
			return v * 1e3, "hz"
		case "mhz":
			return v * 1e6, "hz"
		case "ghz":
			return v * 1e9, "hz"
		default:
			return v, u
		}
	}
	for _, p := range caseSensitivePrefixes {
		if strings.HasPrefix(tok, p.text) {
			if u, ok := baseUnits[strings.ToLower(tok[len(p.text):])]; ok {
				return v * p.mult, u
			}
		}
	}
	return v, low
}

// NumbersClose compares two values with a relative tolerance, treating
// tolerances below 1e-9 as exact comparison of rounded values.
func NumbersClose(a, b, tol float64) bool {
	if tol < 1e-9 {
		return a == b
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-12 {
		return diff <= tol
	}
	return diff/scale <= tol
}
