package eval

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestPipelineMatchesMonolith pins the tentpole refactor's equivalence
// guarantee at the unit level: the staged pipeline must produce exactly
// the results the old fused loop produced, for serial and pooled runs.
func TestPipelineMatchesMonolith(t *testing.T) {
	b := testBenchmark(37)
	m := fixedModel{"m", func(q *dataset.Question) string {
		if q.ID[len(q.ID)-1]%2 == 0 {
			return "c"
		}
		return "b"
	}}
	want := func() []QuestionResult {
		j := Judge{}
		var out []QuestionResult
		for _, q := range b.Questions {
			resp := m.fn(q)
			out = append(out, QuestionResult{
				QuestionID: q.ID, Category: q.Category,
				Response: resp, Correct: j.Correct(q, resp),
			})
		}
		return out
	}()
	for _, workers := range []int{0, 1, 8} {
		rep := Runner{Workers: workers}.Evaluate(m, b)
		if len(rep.Results) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(rep.Results), len(want))
		}
		for i := range want {
			if rep.Results[i] != want[i] {
				t.Fatalf("workers=%d result %d: %+v, want %+v", workers, i, rep.Results[i], want[i])
			}
		}
	}
}

// TestObserverSeesEventsInOrder is the event-ordering guarantee of the
// Observer seam: regardless of worker count, events arrive with
// strictly increasing Seq covering the whole run, with stage fields
// populated.
func TestObserverSeesEventsInOrder(t *testing.T) {
	b := testBenchmark(40)
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	for _, workers := range []int{1, 8} {
		var seqs []int
		r := Runner{Workers: workers, Observer: ObserverFunc(func(ev Event) {
			seqs = append(seqs, ev.Seq)
			if ev.Question == nil || ev.Response == "" || ev.Model == nil {
				t.Fatalf("workers=%d: observer saw incomplete event %+v", workers, ev)
			}
		})}
		if _, err := r.EvaluateContext(context.Background(), m, b); err != nil {
			t.Fatal(err)
		}
		if len(seqs) != b.Len() {
			t.Fatalf("workers=%d: observed %d events, want %d", workers, len(seqs), b.Len())
		}
		for i, s := range seqs {
			if s != i {
				t.Fatalf("workers=%d: event %d has seq %d (out of order)", workers, i, s)
			}
		}
	}
}

// TestObserverGridOrder checks the grid run's canonical order: the
// flattened model-major task index, so model boundaries land at
// multiples of the question count.
func TestObserverGridOrder(t *testing.T) {
	b := testBenchmark(11)
	models := []Model{
		fixedModel{"m1", func(*dataset.Question) string { return "c" }},
		fixedModel{"m2", func(*dataset.Question) string { return "a" }},
		fixedModel{"m3", func(*dataset.Question) string { return "b" }},
	}
	var names []string
	r := Runner{Workers: 8, Observer: ObserverFunc(func(ev Event) {
		names = append(names, ev.Model.Name())
	})}
	if _, err := r.EvaluateAllContext(context.Background(), models, b); err != nil {
		t.Fatal(err)
	}
	if len(names) != 3*b.Len() {
		t.Fatalf("observed %d events, want %d", len(names), 3*b.Len())
	}
	for i, name := range names {
		if want := models[i/b.Len()].Name(); name != want {
			t.Fatalf("event %d from %s, want %s (model-major order)", i, name, want)
		}
	}
}

// TestEvaluateContextCancelPartialReport is the cancellation guarantee:
// an observer that cancels after the K-th event yields a partial
// report of exactly K+1 results — the canonical prefix — identical
// across worker counts and byte-identical to the full run's prefix.
func TestEvaluateContextCancelPartialReport(t *testing.T) {
	const cancelAt = 12
	b := testBenchmark(50)
	m := fixedModel{"m", func(q *dataset.Question) string {
		if q.ID[len(q.ID)-1]%3 == 0 {
			return "c"
		}
		return "a"
	}}
	full := Runner{Workers: 1}.Evaluate(m, b)
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		r := Runner{Workers: workers, Observer: ObserverFunc(func(ev Event) {
			if ev.Seq == cancelAt {
				cancel()
			}
		})}
		rep, err := r.EvaluateContext(ctx, m, b)
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(rep.Results) != cancelAt+1 {
			t.Fatalf("workers=%d: partial report has %d results, want %d",
				workers, len(rep.Results), cancelAt+1)
		}
		for i := range rep.Results {
			if rep.Results[i] != full.Results[i] {
				t.Fatalf("workers=%d: partial result %d differs from full run: %+v vs %+v",
					workers, i, rep.Results[i], full.Results[i])
			}
		}
	}
}

// TestEvaluateAllContextCancelPrefix checks the grid variant's partial
// shape: models before the cut are complete, the model at the cut has
// a prefix, later models are empty.
func TestEvaluateAllContextCancelPrefix(t *testing.T) {
	b := testBenchmark(10)
	models := []Model{
		fixedModel{"m1", func(*dataset.Question) string { return "c" }},
		fixedModel{"m2", func(*dataset.Question) string { return "a" }},
		fixedModel{"m3", func(*dataset.Question) string { return "b" }},
	}
	cancelAt := b.Len() + 4 // 5th question of the second model
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		r := Runner{Workers: workers, Observer: ObserverFunc(func(ev Event) {
			if ev.Seq == cancelAt {
				cancel()
			}
		})}
		reps, err := r.EvaluateAllContext(ctx, models, b)
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		wantLens := []int{b.Len(), 5, 0}
		for mi, rep := range reps {
			if len(rep.Results) != wantLens[mi] {
				t.Fatalf("workers=%d: model %d has %d results, want %d",
					workers, mi, len(rep.Results), wantLens[mi])
			}
		}
	}
}

// TestEvaluateContextAlreadyCancelled: a dead context yields an empty
// (but well-formed) report and the context error, for both engines.
func TestEvaluateContextAlreadyCancelled(t *testing.T) {
	b := testBenchmark(10)
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		rep, err := Runner{Workers: workers}.EvaluateContext(ctx, m, b)
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if rep.ModelName != "m" || len(rep.Results) != 0 {
			t.Fatalf("workers=%d: report %+v, want empty report for model m", workers, rep)
		}
	}
}

// TestObserverTimestampsUseClockSeam pins the observability clock: a
// pipeline with an injected clock stamps every event from it, so no
// raw wall-clock read sneaks into the hot path (nodeterm enforces the
// same property statically).
func TestObserverTimestampsUseClockSeam(t *testing.T) {
	b := testBenchmark(6)
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	fixed := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	var stamps []time.Time
	rep := &Report{ModelName: m.Name()}
	p := Runner{Workers: 4}.pipeline(
		benchmarkSource{model: m, questions: b.Questions},
		&reportSink{nq: b.Len(), reports: []*Report{rep}},
	)
	p.Clock = func() time.Time { return fixed }
	p.Observer = ObserverFunc(func(ev Event) { stamps = append(stamps, ev.At) })
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != b.Len() {
		t.Fatalf("observed %d events, want %d", len(stamps), b.Len())
	}
	for i, s := range stamps {
		if !s.Equal(fixed) {
			t.Fatalf("event %d stamped %v, want pinned clock %v", i, s, fixed)
		}
	}
}
