package eval

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fakeReports builds a pair of report lists whose per-category maps
// have entries for every discipline, so any map-iteration-order
// dependence in the formatters would show up as run-to-run drift.
func fakeReports() ([]*Report, []*Report) {
	cats := dataset.Categories()
	mk := func(name string, bias int) *Report {
		r := &Report{ModelName: name}
		for qi := 0; qi < 20; qi++ {
			r.Results = append(r.Results, QuestionResult{
				QuestionID: string(rune('a'+qi%5)) + "0" + string(rune('0'+qi%10)),
				Category:   cats[qi%len(cats)],
				Correct:    (qi+bias)%3 != 0,
			})
		}
		return r
	}
	with := []*Report{mk("ModelA", 0), mk("ModelB", 1), mk("ModelC", 2)}
	without := []*Report{mk("ModelA", 1), mk("ModelB", 2), mk("ModelC", 0)}
	return with, without
}

// TestFormatTableIIByteStable is the regression test behind the
// maporder audit of Pass1ByCategory: the Table II formatter consumes
// the per-category map strictly through the canonical category order,
// so repeated renders must be byte-identical.
func TestFormatTableIIByteStable(t *testing.T) {
	with, without := fakeReports()
	first := FormatTableII(with, without)
	for i := 0; i < 50; i++ {
		w2, n2 := fakeReports() // fresh maps, fresh iteration order
		if got := FormatTableII(w2, n2); got != first {
			t.Fatalf("FormatTableII drifted on run %d:\n%s\nvs\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, "ModelA") {
		t.Fatalf("formatter lost model names:\n%s", first)
	}
}

// TestFormatItemReportByteStable guards the DifficultySpread map path:
// the spread is keyed by category but rendered in dataset.Categories()
// order, so the item report must be byte-stable too.
func TestFormatItemReportByteStable(t *testing.T) {
	with, _ := fakeReports()
	items, err := ItemAnalysis(with)
	if err != nil {
		t.Fatal(err)
	}
	first := FormatItemReport(items, 5)
	for i := 0; i < 50; i++ {
		items2, err := ItemAnalysis(with)
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatItemReport(items2, 5); got != first {
			t.Fatalf("FormatItemReport drifted on run %d", i)
		}
	}
}

// TestPass1ByCategoryCoversAllObservedCategories pins the shape of the
// map the formatters consume: exactly the categories present in the
// results, with correct ratios.
func TestPass1ByCategoryCoversAllObservedCategories(t *testing.T) {
	with, _ := fakeReports()
	by := with[0].Pass1ByCategory()
	if len(by) != len(dataset.Categories()) {
		t.Fatalf("Pass1ByCategory has %d categories, want %d", len(by), len(dataset.Categories()))
	}
	for c, v := range by {
		if v < 0 || v > 1 {
			t.Fatalf("Pass1ByCategory[%v] = %v out of range", c, v)
		}
	}
}
