#!/bin/sh
# Full tier-1 verification gate, in dependency order: vet, build, the
# static gates (gofmt + chipvqa-lint via scripts/lint.sh), the test
# suite, and the race-enabled test suite. Everything that merges must
# pass this; bench.sh runs it as its preflight so no perf snapshot is
# ever recorded from a tree that fails the gate.
#
# Usage: scripts/verify.sh
set -e
cd "$(dirname "$0")/.."
echo "== go vet"
go vet ./...
echo "== go build"
go build ./...
echo "== lint (gofmt + chipvqa-lint)"
sh scripts/lint.sh
echo "== go test"
go test ./...
echo "== go test -race"
go test -race ./...
echo "verify: all tier-1 gates passed"
