// Package core assembles the ChipVQA benchmark — the paper's primary
// contribution — from the five discipline question generators, and
// verifies that the assembled collection matches the composition the
// paper reports in Table I (142 questions; 99 multiple choice and 43
// short answer; the category and visual-type histograms).
package core

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/visual"

	// The discipline packages are imported for effect only: each
	// registers its generators with the dataset registry at init, and
	// assembly below walks the registry instead of calling the packages
	// directly. Dropping one import here (or adding a new discipline's)
	// is the whole wiring change.
	_ "repro/internal/analog"
	_ "repro/internal/arch"
	_ "repro/internal/digital"
	_ "repro/internal/manuf"
	_ "repro/internal/phys"
)

// TableITargets is the composition Table I of the paper specifies.
// The visual-type histogram is partially garbled in the available paper
// text (several counts are unreadable); the unreadable tail entries are
// reconstructed so that the published majority ordering holds
// (schematic 53 > diagram 29 > layout 16) and the total is exactly 142.
type TableITargets struct {
	Total, MC, SA int
	PerCategory   map[dataset.Category]int
	PerVisual     map[visual.Kind]int
}

// Targets returns the Table I composition this reproduction builds.
func Targets() TableITargets {
	return TableITargets{
		Total: 142, MC: 99, SA: 43,
		PerCategory: map[dataset.Category]int{
			dataset.Digital:      35,
			dataset.Analog:       44,
			dataset.Architecture: 20,
			dataset.Manufacture:  20,
			dataset.Physical:     23,
		},
		PerVisual: map[visual.Kind]int{
			visual.KindSchematic:  53,
			visual.KindDiagram:    29,
			visual.KindLayout:     16,
			visual.KindTable:      9,
			visual.KindMixed:      8,
			visual.KindStructure:  6,
			visual.KindFigure:     6,
			visual.KindCurve:      5,
			visual.KindFlow:       4,
			visual.KindEquations:  3,
			visual.KindNeuralNets: 2,
			visual.KindEquation:   1,
		},
	}
}

// registeredGenerators fetches the registry in canonical category
// order and verifies it is complete: one generator per discipline. A
// hole means a discipline package's registration import is missing —
// an assembly-wiring bug, reported as an error rather than a short
// benchmark that would only fail composition checks later.
func registeredGenerators() ([]dataset.Generator, error) {
	gens := dataset.Generators()
	if len(gens) != dataset.NumCategories {
		return nil, fmt.Errorf("core: %d of %d disciplines registered (missing registration import?)",
			len(gens), dataset.NumCategories)
	}
	for i, c := range dataset.Categories() {
		if gens[i].Category != c {
			return nil, fmt.Errorf("core: no generator registered for category %s", c)
		}
	}
	return gens, nil
}

// generateConcurrent runs one job per registered generator concurrently
// and merges the outputs in the registry's canonical category order
// (digital, analog, arch, manuf, phys), so the assembled question
// sequence is identical to a serial build. The generators share no
// mutable state — every stochastic parameter draws from a keyed rng
// stream — which makes the fan-out safe.
func generateConcurrent(gens []dataset.Generator, run func(dataset.Generator) []*dataset.Question) []*dataset.Question {
	parts := make([][]*dataset.Question, len(gens))
	var wg sync.WaitGroup
	wg.Add(len(gens))
	for i, g := range gens {
		go func(i int, g dataset.Generator) {
			defer wg.Done()
			parts[i] = run(g)
		}(i, g)
	}
	wg.Wait()
	var out []*dataset.Question
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// BuildBenchmark generates the full 142-question ChipVQA collection
// from the discipline registry and verifies it against the Table I
// targets. The discipline engines run concurrently; the merge order is
// deterministic.
func BuildBenchmark() (*dataset.Benchmark, error) {
	gens, err := registeredGenerators()
	if err != nil {
		return nil, err
	}
	b := &dataset.Benchmark{Name: "ChipVQA"}
	b.Questions = generateConcurrent(gens, func(g dataset.Generator) []*dataset.Question {
		return g.Generate()
	})
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := CheckComposition(b); err != nil {
		return nil, err
	}
	return b, nil
}

// MustBuild builds the benchmark or panics; for examples and benches.
func MustBuild() *dataset.Benchmark {
	b, err := BuildBenchmark()
	if err != nil {
		panic(err)
	}
	return b
}

// CheckComposition verifies the benchmark against the Table I targets.
func CheckComposition(b *dataset.Benchmark) error {
	t := Targets()
	s := b.ComputeStats()
	if s.Total != t.Total {
		return fmt.Errorf("core: %d questions, want %d", s.Total, t.Total)
	}
	if s.MC != t.MC || s.SA != t.SA {
		return fmt.Errorf("core: MC/SA split %d/%d, want %d/%d", s.MC, s.SA, t.MC, t.SA)
	}
	for c, want := range t.PerCategory {
		if got := s.PerCategory[c]; got != want {
			return fmt.Errorf("core: category %s has %d questions, want %d", c, got, want)
		}
	}
	for k, want := range t.PerVisual {
		if got := s.PerVisual[k]; got != want {
			return fmt.Errorf("core: visual type %s has %d questions, want %d", k, got, want)
		}
	}
	return nil
}
