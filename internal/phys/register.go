package phys

import "repro/internal/dataset"

// The discipline registers its generators with the dataset registry at
// init; internal/core assembles the benchmark from the registry rather
// than hard-importing every discipline package.
func init() {
	dataset.RegisterGenerator(dataset.Generator{
		Name:               "phys",
		Category:           dataset.Physical,
		Generate:           Generate,
		GenerateExtra:      GenerateExtra,
		GenerateExtraRange: GenerateExtraRange,
	})
}
