package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/dataset"
)

// cmdServe runs the eval-as-a-service daemon: benchmark browsing,
// question-image rendering and live-streamed evaluation runs over
// HTTP (see internal/serve for the API). SIGINT/SIGTERM trigger a
// graceful drain: new runs are refused, in-flight runs get up to
// -drain-timeout to finish, stragglers are cancelled (each recording
// its deterministic prefix report) and then the listener closes.
func cmdServe(ctx context.Context, args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8347", "listen address")
	workers := workersFlag(fs)
	maxSessions := fs.Int("max-sessions", 16, "concurrent tenant (session) cap")
	perSession := fs.Int("workers-per-session", 0, "per-run worker clamp (0 = pool split evenly across -max-sessions)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound after SIGINT/SIGTERM")
	packed := fs.String("packed", "", "also serve a .cvqb pack as the \"packed\" collection")
	shardSize := fs.Int("shard", 512, "shard size when loading -packed")
	budget := fs.Int64("cachebudget", 0, "scene-cache byte budget (0 = unlimited)")
	accessLog := fs.String("accesslog", "", "JSON-lines access log file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("usage: chipvqa serve [flags]")
	}
	suite, err := chipvqa.NewSuite()
	if err != nil {
		return err
	}
	if *budget > 0 {
		chipvqa.SetRenderCacheBudget(*budget)
	}
	var extra []chipvqa.ServerCollection
	if *packed != "" {
		bench, err := loadPackedCollection(*packed, *shardSize)
		if err != nil {
			return err
		}
		extra = append(extra, chipvqa.ServerCollection{Name: "packed", Benchmark: bench})
	}
	var logW *os.File
	if *accessLog == "-" {
		logW = os.Stdout
	} else if *accessLog != "" {
		f, err := os.Create(*accessLog)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		logW = f
	}
	cfg := chipvqa.ServerConfig{
		Extra:             extra,
		PoolWorkers:       *workers,
		MaxSessions:       *maxSessions,
		WorkersPerSession: *perSession,
	}
	if logW != nil {
		cfg.AccessLog = logW
	}
	srv, err := suite.NewServer(cfg)
	if err != nil {
		return err
	}
	return serveHTTP(ctx, srv, *addr, *drainTimeout)
}

// loadPackedCollection decodes a .cvqb pack shard-by-shard through
// StreamPack into one browsable benchmark.
func loadPackedCollection(path string, shardSize int) (*chipvqa.Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	bench := &dataset.Benchmark{Name: "packed"}
	err = dataset.StreamPack(f, shardSize, func(sh dataset.Shard) error {
		bench.Questions = append(bench.Questions, sh.Questions...)
		return nil
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return bench, nil
}

// serveHTTP runs the listener until ctx is cancelled, then drains.
func serveHTTP(ctx context.Context, srv *chipvqa.Server, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("chipvqa serve: listening on http://%s\n", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Printf("chipvqa serve: draining (up to %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	forced := srv.Drain(dctx)
	if forced > 0 {
		fmt.Printf("chipvqa serve: drain timeout — cancelled %d run(s), prefix reports recorded\n", forced)
	} else {
		fmt.Println("chipvqa serve: drained cleanly")
	}
	// Runs are all terminal now; close the listener and any lingering
	// connections (streams have already written their summaries).
	err = httpSrv.Close()
	<-errc // join the Serve goroutine (returns ErrServerClosed)
	return err
}
