package visual

import (
	"image"
	"image/color"
	"math"
)

// raster is the primitive set the element renderers draw against.
// *Canvas is the production implementation (the span kernel); the
// differential tests in reference_test.go provide a naive per-pixel
// implementation of the same interface, so both kernels rasterise scenes
// through the identical drawElement code and can be compared
// byte-for-byte.
type raster interface {
	Line(x0, y0, x1, y1 int, col color.RGBA)
	Rect(x0, y0, x1, y1 int, col color.RGBA)
	FillRect(x0, y0, x1, y1 int, col color.RGBA)
	Circle(cx, cy, r int, col color.RGBA)
	FillCircle(cx, cy, r int, col color.RGBA)
	Arc(cx, cy, r int, a0, a1 float64, col color.RGBA)
	Polyline(pts []Point, col color.RGBA)
	Arrow(x0, y0, x1, y1 int, col color.RGBA)
	Text(x, y int, s string, scale int, col color.RGBA)
}

// Render rasterises a scene to an RGBA image at the scene's logical
// resolution. Every element type has a drawing routine, so the output is
// a real picture of the figure — the same picture a human (or a real VLM)
// would be handed. The backing buffer comes from the shared pixel pool;
// callers that own the result (it is not cache-shared) may hand it back
// with ReleaseImage once done.
func Render(s *Scene) *image.RGBA {
	c := NewCanvas(s.Width, s.Height)
	renderScene(c, s)
	return c.Image()
}

// renderScene draws the title and every element on any raster surface.
func renderScene(c raster, s *Scene) {
	// Title along the top edge.
	if s.Title != "" {
		c.Text(8, 4, s.Title, 2, ColorBlack)
	}
	for _, e := range s.Elements {
		drawElement(c, e)
	}
}

func drawElement(c raster, e Element) {
	x, y := int(e.X), int(e.Y)
	x2, y2 := int(e.X2), int(e.Y2)
	switch e.Type {
	case ElemGate:
		drawGate(c, e)
	case ElemTransistor:
		drawTransistor(c, e)
	case ElemResistor:
		drawResistor(c, e)
	case ElemCapacitor:
		drawCapacitor(c, e)
	case ElemInductor:
		drawInductor(c, e)
	case ElemSource:
		drawSource(c, e)
	case ElemWire:
		c.Line(x, y, x2, y2, ColorBlack)
	case ElemLabel:
		c.Text(x, y, e.Label, 2, ColorBlack)
	case ElemValue:
		c.Text(x, y, e.Label, 1, ColorBlue)
	case ElemBox:
		c.Rect(x, y, x2, y2, ColorBlack)
		if e.Label != "" {
			tw := TextWidth(e.Label, 1)
			c.Text((x+x2)/2-tw/2, (y+y2)/2-4, e.Label, 1, ColorBlack)
		}
	case ElemArrow:
		c.Arrow(x, y, x2, y2, ColorBlack)
		if e.Label != "" {
			c.Text((x+x2)/2+3, (y+y2)/2-9, e.Label, 1, ColorGreen)
		}
	case ElemTrace:
		c.Polyline(e.Points, ColorBlue)
		if e.Label != "" {
			c.Text(x, y, e.Label, 1, ColorBlue)
		}
	case ElemCell:
		c.Rect(x, y, x2, y2, ColorBlack)
		if e.Label != "" {
			c.Text(x+3, (y+y2)/2-4, e.Label, 1, ColorBlack)
		}
	case ElemRect:
		col := LayerColor(e.Attrs["layer"])
		c.FillRect(x, y, x2, y2, col)
		c.Rect(x, y, x2, y2, ColorBlack)
		if e.Label != "" {
			c.Text(x+2, y+2, e.Label, 1, ColorBlack)
		}
	case ElemPoint:
		c.FillCircle(x, y, 3, ColorRed)
		if e.Label != "" {
			c.Text(x+5, y-9, e.Label, 1, ColorBlack)
		}
	case ElemCurvePt:
		c.FillCircle(x, y, 2, ColorGreen)
	case ElemAxis:
		c.Arrow(x, y, x2, y2, ColorBlack)
		if e.Label != "" {
			c.Text(x2+4, y2, e.Label, 1, ColorBlack)
		}
	case ElemEquationText:
		c.Text(x, y, e.Label, 2, ColorBlack)
	}
}

// drawGate draws a distinct shape per logic-gate kind so the gate type is
// visually identifiable, matching how schematics are read.
func drawGate(c raster, e Element) {
	x, y := int(e.X), int(e.Y) // top-left of a nominal 40x30 gate body
	const w, h = 40, 30
	kind := e.Label
	switch kind {
	case "AND", "NAND":
		c.Line(x, y, x, y+h, ColorBlack)
		c.Line(x, y, x+w/2, y, ColorBlack)
		c.Line(x, y+h, x+w/2, y+h, ColorBlack)
		c.Arc(x+w/2, y+h/2, h/2, -math.Pi/2, math.Pi/2, ColorBlack)
	case "OR", "NOR", "XOR", "XNOR":
		c.Arc(x-h/2, y+h/2, h/2+h/4, -0.9, 0.9, ColorBlack)
		c.Line(x+4, y, x+w/2, y, ColorBlack)
		c.Line(x+4, y+h, x+w/2, y+h, ColorBlack)
		c.Arc(x+w/2, y+h/2, h/2, -math.Pi/2, math.Pi/2, ColorBlack)
		if kind == "XOR" || kind == "XNOR" {
			c.Arc(x-h/2-5, y+h/2, h/2+h/4, -0.9, 0.9, ColorBlack)
		}
	case "NOT", "BUF":
		c.Line(x, y, x, y+h, ColorBlack)
		c.Line(x, y, x+w-8, y+h/2, ColorBlack)
		c.Line(x, y+h, x+w-8, y+h/2, ColorBlack)
	default: // generic rectangular block (DFF, MUX, ...)
		c.Rect(x, y, x+w, y+h, ColorBlack)
	}
	if kind == "NAND" || kind == "NOR" || kind == "XNOR" || kind == "NOT" {
		c.Circle(x+w+3-4, y+h/2, 3, ColorBlack) // inversion bubble
	}
	name := e.Name
	if name != "" {
		c.Text(x+4, y+h+4, name, 1, ColorBlack)
	}
	if kind != "" && (kind != "AND" && kind != "OR" && kind != "NOT") {
		c.Text(x+4, y-10, kind, 1, ColorGray)
	}
}

func drawTransistor(c raster, e Element) {
	x, y := int(e.X), int(e.Y) // gate contact position
	pmos := e.Attrs["polarity"] == "pmos"
	// Gate bar and channel bar.
	c.Line(x, y-10, x, y+10, ColorBlack)
	c.Line(x+6, y-12, x+6, y+12, ColorBlack)
	// Drain/source stubs.
	c.Line(x+6, y-12, x+20, y-12, ColorBlack)
	c.Line(x+20, y-12, x+20, y-24, ColorBlack)
	c.Line(x+6, y+12, x+20, y+12, ColorBlack)
	c.Line(x+20, y+12, x+20, y+24, ColorBlack)
	// Gate lead.
	if pmos {
		c.Circle(x-5, y, 3, ColorBlack)
		c.Line(x-8, y, x-20, y, ColorBlack)
	} else {
		c.Line(x, y, x-20, y, ColorBlack)
	}
	if e.Name != "" {
		c.Text(x+24, y-4, e.Name, 1, ColorBlack)
	}
}

func drawResistor(c raster, e Element) {
	// Zigzag between (X,Y) and (X2,Y2).
	x0, y0 := e.X, e.Y
	x1, y1 := e.X2, e.Y2
	const segs = 6
	dx, dy := (x1-x0)/segs, (y1-y0)/segs
	// Perpendicular unit * amplitude.
	length := math.Hypot(x1-x0, y1-y0)
	if length == 0 {
		length = 1
	}
	px, py := -(y1-y0)/length*5, (x1-x0)/length*5
	prevX, prevY := x0, y0
	for i := 1; i < segs; i++ {
		s := 1.0
		if i%2 == 0 {
			s = -1.0
		}
		nx := x0 + dx*float64(i) + s*px
		ny := y0 + dy*float64(i) + s*py
		c.Line(int(prevX), int(prevY), int(nx), int(ny), ColorBlack)
		prevX, prevY = nx, ny
	}
	c.Line(int(prevX), int(prevY), int(x1), int(y1), ColorBlack)
	if e.Label != "" {
		c.Text(int((x0+x1)/2)+6, int((y0+y1)/2)-10, e.Label, 1, ColorBlack)
	}
}

func drawCapacitor(c raster, e Element) {
	x0, y0 := int(e.X), int(e.Y)
	x1, y1 := int(e.X2), int(e.Y2)
	mx, my := (x0+x1)/2, (y0+y1)/2
	// Leads.
	c.Line(x0, y0, mx-3, my, ColorBlack)
	c.Line(mx+3, my, x1, y1, ColorBlack)
	// Plates perpendicular to the lead direction.
	ang := math.Atan2(float64(y1-y0), float64(x1-x0)) + math.Pi/2
	const plate = 10.0
	for _, off := range []int{-3, 3} {
		cx := float64(mx + off)
		cy := float64(my)
		c.Line(int(cx-plate*math.Cos(ang)), int(cy-plate*math.Sin(ang)),
			int(cx+plate*math.Cos(ang)), int(cy+plate*math.Sin(ang)), ColorBlack)
	}
	if e.Label != "" {
		c.Text(mx+6, my-12, e.Label, 1, ColorBlack)
	}
}

func drawInductor(c raster, e Element) {
	x0, y0 := int(e.X), int(e.Y)
	x1 := int(e.X2)
	// Horizontal coil of four bumps.
	step := (x1 - x0) / 4
	if step < 4 {
		step = 4
	}
	for i := 0; i < 4; i++ {
		c.Arc(x0+step/2+i*step, y0, step/2, math.Pi, 2*math.Pi, ColorBlack)
	}
	if e.Label != "" {
		c.Text((x0+x1)/2, y0-14, e.Label, 1, ColorBlack)
	}
}

func drawSource(c raster, e Element) {
	x, y := int(e.X), int(e.Y)
	const r = 12
	c.Circle(x, y, r, ColorBlack)
	switch e.Attrs["kind"] {
	case "current":
		c.Arrow(x, y+r-5, x, y-r+5, ColorBlack)
	default: // voltage
		c.Text(x-2, y-r+2, "+", 1, ColorBlack)
		c.Text(x-2, y+2, "-", 1, ColorBlack)
	}
	if e.Label != "" {
		c.Text(x+r+3, y-4, e.Label, 1, ColorBlack)
	}
}
