package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// JSONSchema versions the machine-readable diagnostic format. Bump it
// on any incompatible field change so CI consumers can detect drift.
const JSONSchema = "chipvqa-lint/1"

// jsonReport is the stable envelope written by WriteJSON.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Module      string           `json:"module"`
	Analyzers   []string         `json:"analyzers"`
	Count       int              `json:"count"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as one indented JSON document with a
// versioned schema. File paths are made root-relative (slash-separated)
// so output is stable across checkouts; analyzer names are sorted; the
// diagnostics keep the deterministic order Run produced.
func WriteJSON(w io.Writer, root, module string, analyzers []*Analyzer, diags []Diagnostic) error {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	out := jsonReport{
		Schema:      JSONSchema,
		Module:      module,
		Analyzers:   names,
		Count:       len(diags),
		Diagnostics: make([]jsonDiagnostic, 0, len(diags)),
	}
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !isParentPath(rel) {
				file = rel
			}
		}
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// isParentPath reports whether a relative path escapes its base.
func isParentPath(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}
