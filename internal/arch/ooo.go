package arch

import "fmt"

// The paper's Architecture section lists "out-of-order machines" among
// its topics. This file models a register-renamed, dataflow-scheduled
// core at the level graduate exercises use: RAW dependencies and
// structural (functional-unit / issue-width) constraints limit
// instruction-level parallelism; renaming removes WAR and WAW hazards.

// FUClass is a functional-unit class.
type FUClass int

// Functional-unit classes.
const (
	FUALU FUClass = iota
	FUMem
	FUBranch
	numFUClasses
)

// OoOConfig describes the out-of-order core.
type OoOConfig struct {
	// IssueWidth bounds instructions entering execution per cycle.
	IssueWidth int
	// Units[class] is the number of functional units of the class.
	Units [numFUClasses]int
	// Latency[class] is the execution latency in cycles.
	Latency [numFUClasses]int
}

// DefaultOoO returns a small 2-wide core: 2 ALUs (1 cycle), 1 memory
// unit (3 cycles), 1 branch unit (1 cycle).
func DefaultOoO() OoOConfig {
	var cfg OoOConfig
	cfg.IssueWidth = 2
	cfg.Units = [numFUClasses]int{2, 1, 1}
	cfg.Latency = [numFUClasses]int{1, 3, 1}
	return cfg
}

func fuClassOf(op OpClass) FUClass {
	switch op {
	case OpLoad, OpStore:
		return FUMem
	case OpBranch:
		return FUBranch
	default:
		return FUALU
	}
}

// OoOResult summarises one out-of-order simulation.
type OoOResult struct {
	Instructions int
	Cycles       int
	// IssueCycle[i] is the cycle instruction i starts executing.
	IssueCycle []int
	// CompleteCycle[i] is the cycle instruction i produces its result.
	CompleteCycle []int
}

// IPC returns instructions per cycle.
func (r OoOResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// SimulateOoO schedules the program on the out-of-order core: an
// instruction may start once its RAW producers have completed (perfect
// renaming removes WAR/WAW), a functional unit of its class is free, and
// issue bandwidth remains this cycle. Oldest-ready-first arbitration
// keeps the schedule deterministic. Stores depend on their Src1/Src2;
// memory is otherwise perfectly disambiguated.
func SimulateOoO(prog []Instr, cfg OoOConfig) (OoOResult, error) {
	n := len(prog)
	res := OoOResult{Instructions: n}
	if n == 0 {
		return res, nil
	}
	if cfg.IssueWidth < 1 {
		return res, fmt.Errorf("arch: issue width %d", cfg.IssueWidth)
	}
	for c := FUClass(0); c < numFUClasses; c++ {
		if cfg.Units[c] < 1 || cfg.Latency[c] < 1 {
			return res, fmt.Errorf("arch: class %d needs at least 1 unit and 1 cycle", c)
		}
	}
	res.IssueCycle = make([]int, n)
	res.CompleteCycle = make([]int, n)
	issued := make([]bool, n)
	// lastWriter[r] = instruction index producing register r (for RAW
	// chains under renaming, each read binds to the most recent earlier
	// writer).
	producers := make([][]int, n)
	lastWriter := map[int]int{}
	for i, ins := range prog {
		for _, src := range []int{ins.Src1, ins.Src2} {
			if src == 0 {
				continue
			}
			if w, ok := lastWriter[src]; ok {
				producers[i] = append(producers[i], w)
			}
		}
		if ins.Dest != 0 {
			lastWriter[ins.Dest] = i
		}
	}
	// busyUntil[class][unit] = first free cycle of that unit.
	busy := make([][]int, numFUClasses)
	for c := range busy {
		busy[c] = make([]int, cfg.Units[c])
	}
	remaining := n
	for cycle := 1; remaining > 0; cycle++ {
		if cycle > 1_000_000 {
			return res, fmt.Errorf("arch: schedule did not converge")
		}
		slots := cfg.IssueWidth
		for i := 0; i < n && slots > 0; i++ {
			if issued[i] {
				continue
			}
			ready := true
			for _, p := range producers[i] {
				if !issued[p] || res.CompleteCycle[p] > cycle-1 {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			class := fuClassOf(prog[i].Op)
			unit := -1
			for u, freeAt := range busy[class] {
				if freeAt < cycle {
					unit = u
					break
				}
			}
			if unit < 0 {
				continue // structural hazard
			}
			lat := cfg.Latency[class]
			issued[i] = true
			res.IssueCycle[i] = cycle
			res.CompleteCycle[i] = cycle + lat - 1
			busy[class][unit] = cycle + lat - 1
			slots--
			remaining--
		}
	}
	for _, c := range res.CompleteCycle {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	return res, nil
}

// InOrderBaselineCycles runs the same dataflow/structural model but with
// strictly in-order single issue: instruction i cannot start before
// instruction i-1 has started. The gap to SimulateOoO quantifies the ILP
// an out-of-order window exposes.
func InOrderBaselineCycles(prog []Instr, cfg OoOConfig) (int, error) {
	inOrder := cfg
	inOrder.IssueWidth = 1
	n := len(prog)
	if n == 0 {
		return 0, nil
	}
	// Serialise by adding a chain dependency through a virtual register:
	// simpler: run the scheduler but force oldest-first single issue and
	// require program order for issue.
	res := OoOResult{Instructions: n,
		IssueCycle:    make([]int, n),
		CompleteCycle: make([]int, n),
	}
	producers := make([][]int, n)
	lastWriter := map[int]int{}
	for i, ins := range prog {
		for _, src := range []int{ins.Src1, ins.Src2} {
			if src == 0 {
				continue
			}
			if w, ok := lastWriter[src]; ok {
				producers[i] = append(producers[i], w)
			}
		}
		if ins.Dest != 0 {
			lastWriter[ins.Dest] = i
		}
	}
	busy := make([][]int, numFUClasses)
	for c := range busy {
		if inOrder.Units[c] < 1 || inOrder.Latency[c] < 1 {
			return 0, fmt.Errorf("arch: class %d needs at least 1 unit and 1 cycle", c)
		}
		busy[c] = make([]int, inOrder.Units[c])
	}
	cycle := 0
	for i := 0; i < n; i++ {
		start := cycle + 1
		for _, p := range producers[i] {
			if res.CompleteCycle[p]+1 > start {
				start = res.CompleteCycle[p] + 1
			}
		}
		class := fuClassOf(prog[i].Op)
		// Earliest cycle any unit of the class is free.
		bestFree := busy[class][0]
		for _, f := range busy[class] {
			if f < bestFree {
				bestFree = f
			}
		}
		if bestFree+1 > start {
			start = bestFree + 1
		}
		lat := inOrder.Latency[class]
		res.IssueCycle[i] = start
		res.CompleteCycle[i] = start + lat - 1
		// Occupy the earliest-free unit.
		for u := range busy[class] {
			if busy[class][u] == bestFree {
				busy[class][u] = start + lat - 1
				break
			}
		}
		cycle = start
	}
	worst := 0
	for _, c := range res.CompleteCycle {
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}
