package vlm

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/visual"
)

// decision is the precomputed solve outcome for one (question, format).
type decision int

const (
	decUnknown      decision = iota
	decSolve                 // produces the golden answer
	decGuessCorrect          // fails to solve but its option guess lands
	decGuessWrong            // fails and guesses a wrong option
	decMalformed             // fails to follow the answer format at all
	decWrongAnswer           // short-answer attempt that is wrong
)

// PerceptionPolicy holds the tunable constants of the perception stage;
// the resolution ablation sweeps these.
type PerceptionPolicy struct {
	// RecallThreshold is the fraction of critical scene content the
	// model must still resolve to attempt the question.
	RecallThreshold float64
	// LossScaleBase and LossScalePerception map a profile's Perception
	// to a multiplier on visual.LegibilityLoss:
	// scale = LossScaleBase - LossScalePerception*Perception.
	LossScaleBase       float64
	LossScalePerception float64
}

// DefaultPerception returns the calibrated policy: 8x downsampling is
// harmless, 16x costs roughly a quarter of otherwise-correct answers,
// matching §IV-B.
func DefaultPerception() PerceptionPolicy {
	return PerceptionPolicy{RecallThreshold: 0.65, LossScaleBase: 1.5, LossScalePerception: 0.5}
}

// SimulatedVLM is one Table II model: a capability profile plus the
// precomputed per-question solve decisions the Zoo calibrates against
// the paper's Pass@1 targets.
type SimulatedVLM struct {
	profile    Profile
	perception PerceptionPolicy
	mc         map[string]decision // by question ID, multiple-choice form
	sa         map[string]decision // by question ID, challenge-run short-answer form
	saStd      map[string]decision // native short-answer questions, standard run
}

var _ eval.Model = (*SimulatedVLM)(nil)

// Name implements eval.Model.
func (m *SimulatedVLM) Name() string { return m.profile.Name }

// Profile exposes the capability profile.
func (m *SimulatedVLM) Profile() Profile { return m.profile }

// SetPerception overrides the perception policy (ablations).
func (m *SimulatedVLM) SetPerception(p PerceptionPolicy) { m.perception = p }

// Answer implements eval.Model: it runs the simulated Fig. 2 pipeline —
// system/user prompt assembly, perception over the scene graph at the
// requested resolution, then the calibrated solve stage — and emits the
// model's textual response.
func (m *SimulatedVLM) Answer(q *dataset.Question, opts eval.InferenceOptions) string {
	_ = m.BuildPrompt(q) // prompt assembly, kept for parity with real serving
	if !m.perceives(q, opts.DownsampleFactor) {
		return m.perceptionFailureResponse(q)
	}
	dec := m.decisionFor(q)
	switch dec {
	case decSolve:
		return m.goldenResponse(q, true)
	case decGuessCorrect:
		return dataset.ChoiceLetter(q.Golden.Choice)
	case decGuessWrong:
		return m.wrongLetter(q)
	case decMalformed:
		return m.malformedResponse(q)
	default:
		return m.wrongShortAnswer(q)
	}
}

// BuildPrompt assembles the text prompt as §IV describes: models without
// system-prompt support get the instructions folded into the user turn.
func (m *SimulatedVLM) BuildPrompt(q *dataset.Question) string {
	system := "You are a chip design expert. Answer the question about the attached figure. " +
		"For multiple choice respond with the option letter; for short answer respond concisely."
	user := q.FormatPrompt()
	if m.profile.SupportsSystemPrompt {
		return "[system] " + system + "\n[user] " + user
	}
	return "[user] " + system + " " + user
}

// perceives runs the perception stage: at full resolution the scene
// graph is fully legible; a downsampled image loses low-salience
// critical details per visual.LegibilityLoss, and the model gives up
// when too little of the critical content survives. The per-element
// losses come from the shared scene cache, so they are derived once per
// (scene, factor) rather than once per (model, question) pair; only the
// per-model recovery draws (keyed rng, deterministic) happen here.
func (m *SimulatedVLM) perceives(q *dataset.Question, factor int) bool {
	if factor <= 1 || q.Visual == nil {
		return true
	}
	crit := visual.CachedCriticals(q.Visual)
	if len(crit) == 0 {
		return true
	}
	losses := visual.CachedCriticalLosses(q.Visual, factor)
	scale := m.perception.LossScaleBase - m.perception.LossScalePerception*m.profile.Perception
	recovered := 0
	for i, e := range crit {
		loss := losses[i] * scale
		if loss > 1 {
			loss = 1
		}
		if rng.Bernoulli(1-loss, m.profile.Name, q.ID, "perc", e.Name, fmt.Sprint(factor)) {
			recovered++
		}
	}
	frac := float64(recovered) / float64(len(crit))
	return frac >= m.perception.RecallThreshold
}

func (m *SimulatedVLM) decisionFor(q *dataset.Question) decision {
	var table map[string]decision
	switch {
	case q.Type == dataset.MultipleChoice:
		table = m.mc
	case q.Challenge:
		table = m.sa
	default:
		table = m.saStd
	}
	if d, ok := table[q.ID]; ok && d != decUnknown {
		return d
	}
	// Unseen question: fall back to hash-threshold sampling against the
	// profile's calibration targets.
	var target float64
	if q.Type == dataset.MultipleChoice {
		target = m.profile.WithChoice[q.Category]
	} else {
		target = m.profile.NoChoice[q.Category]
	}
	if rng.Bernoulli(target, m.profile.Name, q.ID, "fallback", q.Type.String()) {
		return decSolve
	}
	if q.Type == dataset.MultipleChoice {
		return decGuessWrong
	}
	return decWrongAnswer
}

// goldenResponse renders the correct answer the way a well-behaved model
// would phrase it.
func (m *SimulatedVLM) goldenResponse(q *dataset.Question, verbose bool) string {
	if q.Type == dataset.MultipleChoice {
		letter := dataset.ChoiceLetter(q.Golden.Choice)
		if verbose {
			return fmt.Sprintf("%s) %s", letter, q.Choices[q.Golden.Choice])
		}
		return letter
	}
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		if q.Golden.Text != "" {
			return q.Golden.Text
		}
		return fmt.Sprintf("%g %s", q.Golden.Number, q.Golden.Unit)
	default:
		return q.Golden.Text
	}
}

func (m *SimulatedVLM) wrongLetter(q *dataset.Question) string {
	off := 1 + rng.Pick(3, m.profile.Name, q.ID, "wrong-letter")
	return dataset.ChoiceLetter((q.Golden.Choice + off) % 4)
}

func (m *SimulatedVLM) malformedResponse(q *dataset.Question) string {
	kind := "figure"
	if q.Visual != nil {
		kind = q.Visual.Kind.String()
	}
	return fmt.Sprintf("The image shows a %s with several connected components. "+
		"It depicts the structure described in the question.", kind)
}

func (m *SimulatedVLM) wrongShortAnswer(q *dataset.Question) string {
	switch q.Golden.Kind {
	case dataset.AnswerNumber:
		// Classic slip: off by a factor well outside tolerance.
		factor := []float64{3.1, 0.31, -1.7}[rng.Pick(3, m.profile.Name, q.ID, "wrong-num")]
		return fmt.Sprintf("%g %s", q.Golden.Number*factor+1, q.Golden.Unit)
	case dataset.AnswerExpression:
		return "F = " + wrongExpressionFor(q)
	default:
		return "it is a standard configuration commonly used in this context"
	}
}

// wrongExpressionFor returns a syntactically plausible expression that
// is not equivalent to the golden answer (a constant-true answer never
// matches the non-trivial functions the benchmark asks for).
func wrongExpressionFor(q *dataset.Question) string {
	return "A + B'"
}

func (m *SimulatedVLM) perceptionFailureResponse(q *dataset.Question) string {
	return "The image resolution is too low to read the annotated values needed to answer."
}
