#!/bin/sh
# Run the repo's static gates: gofmt formatting plus the concurrency /
# determinism / buffer-lifecycle analyzers (cmd/chipvqa-lint) over the
# whole module. Part of tier-1 verify; see DESIGN.md §9 for what each
# analyzer enforces and the `//lint:ignore <analyzer> <reason>`
# suppression policy.
#
# Usage: scripts/lint.sh [-only analyzer[,analyzer...]] [-json]
#
# Exit status mirrors the driver so CI can tell findings from breakage:
#   0  clean
#   1  gofmt violations or analyzer findings (actionable, fail the PR)
#   2  the driver failed to build or the module failed to load
#      (infrastructure problem, not a lint verdict)
set -u
cd "$(dirname "$0")/.."

# Formatting gate: gofmt -l prints offending files and stays exit 0, so
# turn any output into a failure.
unformatted="$(gofmt -l .)" || exit 2
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Build the driver explicitly rather than hiding it inside `go run`: a
# compile failure must surface as exit 2, not be conflated with the
# driver's own findings exit (go run reports 1 for both).
bin="$(mktemp -d)" || exit 2
trap 'rm -rf "$bin"' EXIT
if ! go build -o "$bin/chipvqa-lint" ./cmd/chipvqa-lint; then
    echo "lint.sh: building cmd/chipvqa-lint failed" >&2
    exit 2
fi

"$bin/chipvqa-lint" "$@" ./...
status=$?
if [ "$status" -ge 2 ]; then
    echo "lint.sh: chipvqa-lint internal/load error (exit $status)" >&2
fi
exit "$status"
