package eval

import (
	"context"
	"testing"

	"repro/internal/dataset"
)

// TestContainsPhraseBytesMatchesString differentially pins the byte-
// slice twin used on the scratch-buffer judge path against the string
// original across the boundary shapes that matter: empty and single-
// character needles, word-boundary hits and misses, repeated partial
// matches before a real one.
func TestContainsPhraseBytesMatchesString(t *testing.T) {
	cases := []struct{ haystack, needle string }{
		{"", ""},
		{"a", ""},
		{"a", "a"},
		{"ab", "a"},
		{"a b", "a"},
		{"it is a standard configuration", "and"},
		{"the and gate", "and"},
		{"and", "and"},
		{"household issues", "hold"},
		{"it fixes hold violations", "hold"},
		{"hold", "household"},
		{"xx and and-gate and", "and-gate"},
		{"a full adder circuit", "full adder"},
		{"fullfull adder adder full adder", "full adder"},
		{"2200 ohm resistor", "2200 ohm"},
		{"ends with needle", "needle"},
		{"needle starts", "needle"},
	}
	for _, c := range cases {
		want := containsPhrase(c.haystack, c.needle)
		got := containsPhraseBytes([]byte(c.haystack), []byte(c.needle))
		if got != want {
			t.Errorf("containsPhraseBytes(%q, %q) = %v, containsPhrase = %v",
				c.haystack, c.needle, got, want)
		}
	}
}

// TestApplyUnitSICasePairs pins the case-sensitive SI prefix handling
// that the in-place ASCII fold must not disturb: mega and milli differ
// only by case on the prefix letter, while K/k and the MEG spellings
// are case-insensitive aliases.
func TestApplyUnitSICasePairs(t *testing.T) {
	cases := []struct {
		tok  string
		mult float64
		unit string
	}{
		{"Mrad/s", 1e6, "rad/s"},
		{"mrad/s", 1e-3, "rad/s"},
		{"MEGohm", 1e6, "ohm"},
		{"Megohm", 1e6, "ohm"},
		{"megohm", 1e6, "ohm"},
		{"KOhm", 1e3, "ohm"},
		{"kOhm", 1e3, "ohm"},
		{"kohm", 1e3, "ohm"},
		{"MV", 1e-3, "v"}, // compound "mv" wins over prefix split: historical semantics
		{"mV", 1e-3, "v"},
		{"GHz", 1e9, "hz"},
		{"uA", 1e-6, "a"},
		{"nF", 1e-9, "f"},
	}
	for _, c := range cases {
		v, u := applyUnit(1, c.tok)
		if v != c.mult || u != c.unit {
			t.Errorf("applyUnit(1, %q) = (%v, %q), want (%v, %q)",
				c.tok, v, u, c.mult, c.unit)
		}
	}
}

// TestEvaluateIntoReusesBuffers proves a report evaluated repeatedly
// through EvaluateInto refills its Results backing array in place
// instead of reallocating per run.
func TestEvaluateIntoReusesBuffers(t *testing.T) {
	b := testBenchmark(10)
	m := fixedModel{"m", func(q *dataset.Question) string { return "c" }}
	r := Runner{Workers: 2}
	rep := &Report{}
	if err := r.EvaluateInto(context.Background(), m, b, rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("first run: %d results", len(rep.Results))
	}
	first := &rep.Results[0]
	if err := r.EvaluateInto(context.Background(), m, b, rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("second run: %d results", len(rep.Results))
	}
	if &rep.Results[0] != first {
		t.Error("second EvaluateInto reallocated the Results backing array")
	}
}

// TestEvaluateAllIntoReuse covers the grid form: buffer reuse across
// runs, window isolation between adjacent models sharing one backing
// array, and the length-mismatch guard.
func TestEvaluateAllIntoReuse(t *testing.T) {
	b := testBenchmark(6)
	models := []Model{
		fixedModel{"right", func(q *dataset.Question) string { return "c" }},
		fixedModel{"wrong", func(q *dataset.Question) string { return "a" }},
	}
	r := Runner{Workers: 3}
	reps, err := r.EvaluateAllContext(context.Background(), models, b)
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].Pass1() != 1 || reps[1].Pass1() != 0 {
		t.Fatalf("pass@1 = %v, %v", reps[0].Pass1(), reps[1].Pass1())
	}
	for i, rep := range reps {
		if len(rep.Results) != 6 {
			t.Fatalf("report %d: %d results", i, len(rep.Results))
		}
	}
	first := &reps[0].Results[0]
	if err := r.EvaluateAllInto(context.Background(), models, b, reps); err != nil {
		t.Fatal(err)
	}
	if &reps[0].Results[0] != first {
		t.Error("EvaluateAllInto reallocated a Results backing array")
	}
	if reps[0].Pass1() != 1 || reps[1].Pass1() != 0 {
		t.Errorf("after reuse: pass@1 = %v, %v", reps[0].Pass1(), reps[1].Pass1())
	}
	if err := r.EvaluateAllInto(context.Background(), models, b, reps[:1]); err == nil {
		t.Error("length mismatch not rejected")
	}
}
