package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the hot-path allocation discipline of DESIGN.md
// §12: a function whose doc comment carries a `//hot:` marker declares
// itself part of a zero-alloc steady-state path (the judge dispatch,
// answer normalisation, bootstrap chunk loops), and the AllocsPerRun
// tests pin those paths at 0 allocs/op. The two allocation patterns
// that historically crept back in are caught statically here:
//
//   - fmt.Sprint/Sprintf/Sprintln calls — every call allocates its
//     result string (the bootstrap resampler once burned ~15% of its
//     budget formatting rng stream keys with fmt.Sprint);
//   - runtime string concatenation (s1 + s2, s += x) — allocates a
//     fresh string per evaluation; constant-folded concatenations are
//     exempt because they cost nothing at run time.
//
// The marker form is `//hot:tag explanation`. The colon immediately
// after "hot" makes it a comment directive, which gofmt preserves
// verbatim at the end of a doc comment.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbids fmt.Sprint* calls and runtime string concatenation inside functions " +
		"whose doc comment carries a //hot: marker; hot paths must stay zero-alloc " +
		"(use scratch buffers, strconv.Append*, or preformatted keys)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd.Doc) {
				continue
			}
			checkHotBody(pass, info, fd)
		}
	}
}

// isHotMarked reports whether a doc comment contains a //hot: marker
// line.
func isHotMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//hot:") {
			return true
		}
	}
	return false
}

// checkHotBody walks one hot function's body (function literals
// included — a closure passed to forEach runs on the same hot path)
// and reports the allocation patterns.
func checkHotBody(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := fmtSprintName(info, n); fn != "" {
				pass.Reportf(n.Pos(),
					"fmt.%s allocates its result inside hot function %s; preformat outside the loop or use strconv.Append*",
					fn, name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeStringExpr(info, n) {
				pass.Reportf(n.Pos(),
					"string concatenation allocates inside hot function %s; use a scratch buffer or append",
					name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				pass.Reportf(n.Pos(),
					"string concatenation allocates inside hot function %s; use a scratch buffer or append",
					name)
			}
		}
		return true
	})
}

// fmtSprintName returns the Sprint-family function name when the call
// is fmt.Sprint/Sprintf/Sprintln, else "".
func fmtSprintName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return ""
	}
	if strings.HasPrefix(sel.Sel.Name, "Sprint") {
		return sel.Sel.Name
	}
	return ""
}

// isRuntimeStringExpr reports whether the expression has string type
// and is not a compile-time constant (constant concatenations are
// folded by the compiler and never allocate).
func isRuntimeStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringUnderlying(tv.Type)
}

// isStringType reports whether the expression's type is string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isStringUnderlying(tv.Type)
}

func isStringUnderlying(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
