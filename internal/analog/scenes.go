package analog

import (
	"fmt"
	"math"

	"repro/internal/visual"
)

// ResistorNetworkScene draws a ladder of labelled resistors with a
// driving source; the value annotations are the critical content.
func ResistorNetworkScene(title string, source string, labels []string) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, title)
	s.Add(visual.Element{
		Type: visual.ElemSource, Name: "Vs", Label: source,
		X: 80, Y: 240, Attrs: map[string]string{"kind": "voltage"},
		Salience: 0.9, Critical: source != "",
	})
	x := 150.0
	for i, l := range labels {
		horizontal := i%2 == 0
		if horizontal {
			s.Add(visual.Element{
				Type: visual.ElemResistor, Name: fmt.Sprintf("R%d", i+1), Label: l,
				X: x, Y: 160, X2: x + 90, Y2: 160,
				Salience: 0.68, Critical: true,
			})
			x += 110
		} else {
			s.Add(visual.Element{
				Type: visual.ElemResistor, Name: fmt.Sprintf("R%d", i+1), Label: l,
				X: x, Y: 160, X2: x, Y2: 280,
				Salience: 0.68, Critical: true,
			})
			x += 40
		}
	}
	s.Add(visual.Element{
		Type: visual.ElemWire, Name: "gnd-rail", X: 80, Y: 340, X2: x, Y2: 340,
	})
	return s
}

// AmplifierScene draws a single-transistor amplifier stage with its bias
// elements and annotated device parameters.
func AmplifierScene(title, topology string, params []string) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, title)
	s.Add(visual.Element{
		Type: visual.ElemTransistor, Name: "M1",
		X: 300, Y: 220, Attrs: map[string]string{"polarity": "nmos"},
		Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "topology", Label: topology,
		X: 60, Y: 60, Salience: 0.85, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemResistor, Name: "Rload", Label: "RD",
		X: 320, Y: 100, X2: 320, Y2: 190, Salience: 0.8,
	})
	s.Add(visual.Element{
		Type: visual.ElemWire, Name: "vdd", X: 240, Y: 100, X2: 400, Y2: 100,
	})
	s.Add(visual.Element{
		Type: visual.ElemSource, Name: "vin", Label: "vin",
		X: 180, Y: 260, Attrs: map[string]string{"kind": "voltage"},
	})
	for i, p := range params {
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("param%d", i), Label: p,
			X: 440, Y: 140 + float64(i)*26, Salience: 0.65, Critical: true,
		})
	}
	return s
}

// OpAmpScene draws an op-amp with two feedback resistors annotated.
func OpAmpScene(title string, r1Label, r2Label string, inverting bool) *visual.Scene {
	s := visual.NewScene(visual.KindSchematic, title)
	// Triangle body drawn as a generic gate box with label.
	s.Add(visual.Element{
		Type: visual.ElemGate, Name: "opamp", Label: "OPAMP",
		X: 280, Y: 200, Critical: true,
	})
	cfg := "non-inverting"
	if inverting {
		cfg = "inverting"
	}
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "cfg", Label: cfg + " configuration",
		X: 60, Y: 60, Salience: 0.8, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemResistor, Name: "R1", Label: r1Label,
		X: 120, Y: 215, X2: 260, Y2: 215, Salience: 0.68, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemResistor, Name: "R2", Label: r2Label,
		X: 250, Y: 140, X2: 390, Y2: 140, Salience: 0.68, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemWire, Name: "fb", X: 390, Y: 140, X2: 390, Y2: 215,
	})
	s.Add(visual.Element{
		Type: visual.ElemArrow, Name: "out", X: 330, Y: 215, X2: 430, Y2: 215, Label: "vout",
	})
	return s
}

// BodeScene draws magnitude (and optionally phase) Bode data as a curve
// plot with annotated axis ticks; the plotted break points are critical.
func BodeScene(title string, pts []BodePoint, annotations []string) *visual.Scene {
	s := visual.NewScene(visual.KindCurve, title)
	s.Add(visual.Element{Type: visual.ElemAxis, Name: "x", Label: "w (rad/s, log)",
		X: 60, Y: 380, X2: 580, Y2: 380})
	s.Add(visual.Element{Type: visual.ElemAxis, Name: "y", Label: "dB",
		X: 60, Y: 380, X2: 60, Y2: 60})
	if len(pts) > 1 {
		// Map log(omega) to x and magnitude to y.
		wLo, wHi := pts[0].Omega, pts[len(pts)-1].Omega
		magLo, magHi := pts[0].MagDB, pts[0].MagDB
		for _, p := range pts {
			if p.MagDB < magLo {
				magLo = p.MagDB
			}
			if p.MagDB > magHi {
				magHi = p.MagDB
			}
		}
		if magHi == magLo {
			magHi = magLo + 1
		}
		var poly []visual.Point
		for _, p := range pts {
			fx := log10(p.Omega/wLo) / log10(wHi/wLo)
			fy := (p.MagDB - magLo) / (magHi - magLo)
			poly = append(poly, visual.Point{X: 60 + fx*520, Y: 380 - fy*300})
		}
		s.Add(visual.Element{
			Type: visual.ElemTrace, Name: "mag", Label: "|H| dB",
			X: 70, Y: 70, Points: poly, Critical: true,
		})
	}
	for i, a := range annotations {
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("ann%d", i), Label: a,
			X: 340, Y: 80 + float64(i)*24, Salience: 0.65, Critical: true,
		})
	}
	return s
}

// BlockDiagramScene draws labelled blocks left to right with arrows; used
// for feedback loops, ADC pipelines and PLLs.
func BlockDiagramScene(title string, blocks []string, annotations []string) *visual.Scene {
	s := visual.NewScene(visual.KindDiagram, title)
	const bw, bh = 100, 50
	x0, y0 := 60.0, 180.0
	for i, b := range blocks {
		x := x0 + float64(i)*(bw+50)
		s.Add(visual.Element{
			Type: visual.ElemBox, Name: fmt.Sprintf("b%d", i), Label: b,
			X: x, Y: y0, X2: x + bw, Y2: y0 + bh, Critical: true,
		})
		if i > 0 {
			s.Add(visual.Element{
				Type: visual.ElemArrow, Name: fmt.Sprintf("a%d", i),
				X: x - 50, Y: y0 + bh/2, X2: x, Y2: y0 + bh/2,
			})
		}
	}
	for i, a := range annotations {
		s.Add(visual.Element{
			Type: visual.ElemValue, Name: fmt.Sprintf("ann%d", i), Label: a,
			X: 80, Y: 300 + float64(i)*26, Salience: 0.65, Critical: true,
		})
	}
	return s
}

// EquationScene draws one or more equations as a figure.
func EquationScene(kind visual.Kind, title string, lines []string) *visual.Scene {
	s := visual.NewScene(kind, title)
	for i, l := range lines {
		s.Add(visual.Element{
			Type: visual.ElemEquationText, Name: fmt.Sprintf("eq%d", i), Label: l,
			X: 60, Y: 100 + float64(i)*60, Salience: 0.8, Critical: true,
		})
	}
	return s
}

// MixedScene combines a schematic body with a parameter table, the
// "mixed" visual type of Table I.
func MixedScene(title string, schematicLabel string, tableRows [][2]string) *visual.Scene {
	s := visual.NewScene(visual.KindMixed, title)
	s.Add(visual.Element{
		Type: visual.ElemTransistor, Name: "M1",
		X: 200, Y: 180, Attrs: map[string]string{"polarity": "nmos"}, Critical: true,
	})
	s.Add(visual.Element{
		Type: visual.ElemLabel, Name: "desc", Label: schematicLabel,
		X: 60, Y: 60, Salience: 0.85, Critical: true,
	})
	const cw, ch = 130, 26
	x0, y0 := 360.0, 140.0
	for r, row := range tableRows {
		for c := 0; c < 2; c++ {
			s.Add(visual.Element{
				Type: visual.ElemCell, Name: fmt.Sprintf("t%d-%d", r, c), Label: row[c],
				X: x0 + float64(c)*cw, Y: y0 + float64(r)*ch,
				X2: x0 + float64(c+1)*cw, Y2: y0 + float64(r+1)*ch,
				Attrs:    map[string]string{"row": fmt.Sprint(r), "col": fmt.Sprint(c)},
				Salience: 0.68, Critical: c == 1,
			})
		}
	}
	return s
}

func log10(x float64) float64 { return math.Log10(x) }
