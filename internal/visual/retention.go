package visual

import "image"

// DetailRetention measures, on real pixels, how much fine detail an
// image keeps after degradation: the ratio of total edge energy in the
// degraded image (per original-resolution area) to the original's. A
// value of 1 means no visible loss; small annotations blurring away pull
// it toward 0. This grounds the perception model: LegibilityLoss is the
// analytic stand-in the simulated VLMs use, and the package tests verify
// the two agree in ordering on rendered benchmark figures.
func DetailRetention(orig, degraded *image.RGBA) float64 {
	eo := edgeEnergy(orig)
	if eo == 0 {
		return 1
	}
	// Scale the degraded image's energy to the original's pixel count so
	// the comparison is per unit of original area.
	ob := orig.Bounds()
	db := degraded.Bounds()
	if db.Dx() == 0 || db.Dy() == 0 {
		return 0
	}
	scale := float64(ob.Dx()*ob.Dy()) / float64(db.Dx()*db.Dy())
	// Edge energy scales with linear resolution, not area: a feature
	// spanning k pixels contributes gradient along its boundary length.
	linear := float64(ob.Dx()) / float64(db.Dx())
	ed := edgeEnergy(degraded) * scale / linear
	r := ed / eo
	if r > 1 {
		return 1
	}
	return r
}

// edgeEnergy sums absolute horizontal and vertical luminance gradients.
func edgeEnergy(img *image.RGBA) float64 {
	b := img.Bounds()
	lum := func(x, y int) float64 {
		i := img.PixOffset(x, y)
		return 0.299*float64(img.Pix[i]) + 0.587*float64(img.Pix[i+1]) + 0.114*float64(img.Pix[i+2])
	}
	var e float64
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			l := lum(x, y)
			if x+1 < b.Max.X {
				d := lum(x+1, y) - l
				if d < 0 {
					d = -d
				}
				e += d
			}
			if y+1 < b.Max.Y {
				d := lum(x, y+1) - l
				if d < 0 {
					d = -d
				}
				e += d
			}
		}
	}
	return e
}
