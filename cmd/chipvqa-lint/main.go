// Command chipvqa-lint runs the repo's determinism and buffer-lifecycle
// analyzers (internal/lint) over every package in the module and prints
// file:line:col: [analyzer] diagnostics, exiting non-zero on findings.
//
// It is part of the tier-1 verify gate:
//
//	go run ./cmd/chipvqa-lint ./...
//
// Usage:
//
//	chipvqa-lint [-only name[,name...]] [-json] [./...]
//
// The only accepted package pattern is the whole module (`./...` or no
// argument); the analyzers are invariant checks, not spot tools, and
// several of them reason about cross-package contracts. -only restricts
// the run to a comma-separated subset of analyzers; -json emits the
// diagnostics as one versioned JSON document on stdout (schema
// "chipvqa-lint/1", root-relative slash paths, sorted — suitable as a
// CI artifact). Suppress a single finding with an in-source directive:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable core of the driver.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("chipvqa-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "write diagnostics as a versioned JSON document on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, pat := range fs.Args() {
		if pat != "./..." && pat != "." {
			fmt.Fprintf(stderr, "chipvqa-lint: unsupported pattern %q (the analyzers run module-wide; use ./...)\n", pat)
			return 2
		}
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "chipvqa-lint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "chipvqa-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "chipvqa-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "chipvqa-lint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		if err := lint.WriteJSON(stdout, loader.Root(), loader.ModulePath(), analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "chipvqa-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "chipvqa-lint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the registry.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, analyzerNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

// analyzerNames renders the registry for error messages.
func analyzerNames(all []*lint.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
