package visual_test

// Differential and golden tests over the REAL benchmark scenes: every
// question of every discipline generator is rendered with both the span
// kernel and the retained naive reference (reference_test.go), and the
// Pix buffers must match byte-for-byte at full resolution and at every
// ablation downsample factor. This is what carries the SceneCache
// determinism guarantee (DESIGN.md §7) across the kernel rewrite: if
// the kernels agree on every scene, cached artifacts are unchanged.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/visual"
)

func TestKernelDifferentialAllDisciplines(t *testing.T) {
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	factors := []int{1, 2, 8, 16}
	perCategory := map[dataset.Category]int{}
	for _, q := range b.Questions {
		perCategory[q.Category]++
		img := visual.Render(q.Visual)
		ref := visual.RenderReference(q.Visual)
		if ok, off := visual.PixEqual(img, ref); !ok {
			t.Fatalf("%s (%s): full-resolution render diverged at offset %d", q.ID, q.Category, off)
		}
		for _, f := range factors {
			got := visual.Downsample(img, f)
			want := visual.DownsampleReference(ref, f)
			if ok, off := visual.PixEqual(got, want); !ok {
				t.Fatalf("%s (%s): downsample %dx diverged at offset %d", q.ID, q.Category, f, off)
			}
			visual.ReleaseImage(got)
		}
		visual.ReleaseImage(img)
	}
	if len(perCategory) != 5 {
		t.Fatalf("differential sweep covered %d disciplines, want 5", len(perCategory))
	}
}

// Golden SHA-256 hashes of the rendered Pix of the first question of
// each discipline. Any future kernel change that shifts even one pixel
// of one scene fails here loudly; regenerate the constants only after a
// deliberate, reviewed change to rendering semantics (and re-run the
// differential tests above against an updated reference).
var goldenRenderHashes = map[string]string{
	"Digital Design":  "f5a4f8282a6e8e0a09dba131de93f2129a3fb5c44c700026a72db751266ad01d", // question d01
	"Analog Design":   "0e9b43883b09385dbe05b42be9c4c8a044655300c34a1cfec097658fc51dce28", // question a01
	"Architecture":    "42146ee7fe243d5fea457ca612b6e3175e0946a0c84178a5a6bdabff4a7136d0", // question ar01
	"Manufacture":     "4e1169aa9fda5865069a2e879d95895427e4a58e002a1c19c0b979e140518239", // question m01
	"Physical Design": "46c4993cefebdc94ecf204a25103431dabeefced83c2de80c6b2e3a65d258d6e", // question p01
}

func TestGoldenRenderHashes(t *testing.T) {
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range b.Questions {
		cat := q.Category.String()
		if seen[cat] {
			continue
		}
		seen[cat] = true
		img := visual.Render(q.Visual)
		sum := sha256.Sum256(img.Pix)
		got := hex.EncodeToString(sum[:])
		want, ok := goldenRenderHashes[cat]
		if !ok {
			t.Errorf("no golden hash recorded for category %q (question %s): got %s", cat, q.ID, got)
			continue
		}
		if got != want {
			t.Errorf("category %q (question %s, %dx%d): render hash drifted\n got %s\nwant %s",
				cat, q.ID, img.Bounds().Dx(), img.Bounds().Dy(), got, want)
		}
		visual.ReleaseImage(img)
	}
	if len(seen) != len(goldenRenderHashes) {
		t.Errorf("saw %d categories, golden table has %d", len(seen), len(goldenRenderHashes))
	}
}

// TestGoldenHashesPrint regenerates the golden table when run with
// -run TestGoldenHashesPrint -v; it never fails.
func TestGoldenHashesPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, err := core.BuildBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range b.Questions {
		cat := q.Category.String()
		if seen[cat] {
			continue
		}
		seen[cat] = true
		img := visual.Render(q.Visual)
		sum := sha256.Sum256(img.Pix)
		t.Logf("%q: %q, // %s", cat, hex.EncodeToString(sum[:]), fmt.Sprintf("question %s", q.ID))
	}
}
