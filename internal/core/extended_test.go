package core

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func TestBuildExtendedComposition(t *testing.T) {
	b, err := BuildExtended("fold-a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 50 {
		t.Fatalf("extended size %d, want 50", b.Len())
	}
	perCat := make(map[dataset.Category]int)
	for _, q := range b.Questions {
		perCat[q.Category]++
	}
	for _, c := range dataset.Categories() {
		if perCat[c] != 10 {
			t.Errorf("category %s: %d questions, want 10", c, perCat[c])
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExtendedRejectsBadSize(t *testing.T) {
	if _, err := BuildExtended("x", 0); err == nil {
		t.Error("zero perCategory accepted")
	}
}

func TestExtendedSeedsDisjoint(t *testing.T) {
	a, err := BuildExtended("fold-a", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildExtended("fold-b", 5)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, q := range a.Questions {
		ids[q.ID] = true
	}
	for _, q := range b.Questions {
		if ids[q.ID] {
			t.Errorf("ID %s appears in both folds", q.ID)
		}
	}
	// Different seeds should produce at least some different instances.
	same := 0
	for i := range a.Questions {
		if a.Questions[i].Prompt == b.Questions[i].Prompt &&
			a.Questions[i].Golden.Number == b.Questions[i].Golden.Number {
			same++
		}
	}
	if same == len(a.Questions) {
		t.Error("folds are identical; seed has no effect")
	}
}

func TestExtendedDisjointFromStandard(t *testing.T) {
	std := MustBuild()
	ext, err := BuildExtended("fold-a", 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, q := range std.Questions {
		ids[q.ID] = true
	}
	for _, q := range ext.Questions {
		if ids[q.ID] {
			t.Errorf("extended ID %s collides with the standard collection", q.ID)
		}
	}
}

func TestExtendedGoldenOracle(t *testing.T) {
	// The oracle property must hold on generated extras too.
	b, err := BuildExtended("oracle", 15)
	if err != nil {
		t.Fatal(err)
	}
	j := eval.Judge{}
	for _, q := range b.Questions {
		golden := oracleAnswer(q)
		if !j.Correct(q, golden) {
			t.Errorf("%s: golden %q judged wrong", q.ID, golden)
		}
		if q.Type == dataset.MultipleChoice {
			wrong := dataset.ChoiceLetter((q.Golden.Choice + 1) % 4)
			if j.Correct(q, wrong) {
				t.Errorf("%s: wrong letter judged correct", q.ID)
			}
		}
	}
}

func TestExtendedDeterministic(t *testing.T) {
	a, _ := BuildExtended("det", 10)
	b, _ := BuildExtended("det", 10)
	for i := range a.Questions {
		if a.Questions[i].Prompt != b.Questions[i].Prompt ||
			a.Questions[i].Golden.Text != b.Questions[i].Golden.Text {
			t.Fatalf("question %d differs between identical builds", i)
		}
	}
}

func TestExtendedChoicesDistinct(t *testing.T) {
	b, err := BuildExtended("distinct", 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range b.Questions {
		seen := map[string]bool{}
		for _, c := range q.Choices {
			if seen[c] {
				t.Errorf("%s: duplicate option %q", q.ID, c)
			}
			seen[c] = true
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	b, err := BuildExtended("split", 8)
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitTrainTest(b, 4)
	if train.Len()+test.Len() != b.Len() {
		t.Fatalf("split loses questions: %d + %d != %d", train.Len(), test.Len(), b.Len())
	}
	if test.Len() != (b.Len()+3)/4 {
		t.Errorf("test size %d", test.Len())
	}
	// Disjoint.
	ids := make(map[string]bool)
	for _, q := range train.Questions {
		ids[q.ID] = true
	}
	for _, q := range test.Questions {
		if ids[q.ID] {
			t.Errorf("ID %s in both splits", q.ID)
		}
	}
	// Degenerate testEvery clamps.
	tr2, te2 := SplitTrainTest(b, 0)
	if tr2.Len()+te2.Len() != b.Len() {
		t.Error("clamped split loses questions")
	}
}

func TestExtendedScales(t *testing.T) {
	for _, n := range []int{1, 13, 40} {
		b, err := BuildExtended(fmt.Sprintf("s%d", n), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if b.Len() != 5*n {
			t.Errorf("n=%d: %d questions", n, b.Len())
		}
	}
}
