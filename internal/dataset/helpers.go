package dataset

// Small slice helpers shared by the discipline generators. These used
// to be copy-pasted per package; they live here because every
// generator already imports dataset and their behaviour is part of the
// generators' determinism contract (stable order, no map iteration).

// IndexOf returns the index of x in xs, or 0 when absent — the
// generators use the result modularly to pick "the next" entry, so a
// miss deliberately aliases to the first element rather than failing.
func IndexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

// SortInts sorts a small int slice in place with insertion sort. The
// generators sort minterm lists and token counts of length ≤ a few
// dozen; insertion sort keeps the dataset layer free of a sort import
// for these and is branch-predictable at that size.
func SortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// PickOthers selects the first three pool entries that differ from the
// answer — the standard distractor picker for questions whose options
// come from a fixed label pool. The pool must contain at least three
// non-answer entries; trailing slots stay empty otherwise (callers'
// pools are static literals, checked by the benchmark composition
// tests).
func PickOthers(answer string, pool []string) [3]string {
	var out [3]string
	i := 0
	for _, p := range pool {
		if p != answer && i < 3 {
			out[i] = p
			i++
		}
	}
	return out
}
