package eval

import (
	"sync"
	"sync/atomic"
)

// This file is the pull-based successor of the static Source seam: an
// ItemScheduler hands the pipeline its next task on demand and hears
// every judged outcome back, which is what lets a scheduler *react* —
// an adaptive run picks its next question from the verdicts so far,
// something a Len()/Event(i) grid can never express. Static sources
// remain first-class citizens: newSourceScheduler wraps any Source into
// a trivial scheduler whose behaviour (and therefore whose reports) is
// byte-identical to the pre-seam pipeline.

// ScheduleState is an ItemScheduler's answer to Next.
type ScheduleState int

const (
	// ScheduleReady: the returned event is valid and must be evaluated.
	ScheduleReady ScheduleState = iota
	// ScheduleWait: no event is available right now, but outcomes are
	// still outstanding and recording them may unblock more work. Only
	// legal while at least one issued event has not been recorded —
	// otherwise nothing can ever wake the pipeline again.
	ScheduleWait
	// ScheduleDone: the run is complete; no further events will be
	// issued. Must be sticky: once returned, every later Next must
	// return it too.
	ScheduleDone
)

// ItemScheduler is the pipeline's dynamic source seam.
//
// Next may be called concurrently from every worker; implementations
// guard their own state. Events must be issued with consecutive Seq
// values starting at 0, in the order Next hands them out — the reorder
// buffer delivers strictly in Seq order, so a gap would wedge the run.
//
// Record receives each judged event exactly once, strictly in Seq
// order, from one goroutine at a time, *before* the sink and observer
// see it; a scheduler may annotate the event in place (ability
// estimates, stop reasons) and the annotations travel to the sink,
// observer, and any serving layer on top. Because Record order is the
// canonical delivery order, a scheduler whose decisions are pure
// functions of the outcomes it has recorded is deterministic for any
// worker count — the §6/§7 invariant extended to dynamic sources.
type ItemScheduler interface {
	Next() (Event, ScheduleState)
	Record(ev *Event)
}

// schedulerSize is an optional ItemScheduler extension bounding useful
// parallelism (a static source's length, an adaptive tournament's
// model count); the pipeline clamps its worker pool to it.
type schedulerSize interface {
	SizeHint() int
}

// sourceScheduler adapts a static Source to the ItemScheduler seam: an
// atomic claim counter hands out Event(i) exactly as the pre-seam
// worker loop did, Record is a no-op, and Wait never occurs.
type sourceScheduler struct {
	src  Source
	n    int
	next atomic.Int64
}

func newSourceScheduler(src Source) *sourceScheduler {
	return &sourceScheduler{src: src, n: src.Len()}
}

func (s *sourceScheduler) Next() (Event, ScheduleState) {
	i := int(s.next.Add(1)) - 1
	if i >= s.n {
		return Event{}, ScheduleDone
	}
	return s.src.Event(i), ScheduleReady
}

func (s *sourceScheduler) Record(*Event) {}

func (s *sourceScheduler) SizeHint() int { return s.n }

// schedGate wakes workers parked on ScheduleWait. A worker arms the
// gate only after a first Next returned Wait (so the static path never
// touches it), re-checks the scheduler, and then blocks on the armed
// channel; the delivery path pulses the gate after recording outcomes,
// which closes the channel only when someone is (or may be) waiting —
// the channel is replaced lazily, so a run that never waits never
// allocates here.
type schedGate struct {
	mu    sync.Mutex
	ch    chan struct{}
	armed bool
}

func newSchedGate() *schedGate {
	return &schedGate{ch: make(chan struct{})}
}

// arm returns the channel the next pulse will close.
func (g *schedGate) arm() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.armed = true
	return g.ch
}

// pulse wakes every armed waiter; a no-op when nobody armed since the
// last pulse.
func (g *schedGate) pulse() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.armed {
		return
	}
	close(g.ch)
	g.ch = make(chan struct{})
	g.armed = false
}
