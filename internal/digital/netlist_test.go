package digital

import (
	"testing"
	"testing/quick"
)

func TestGateEval(t *testing.T) {
	cases := []struct {
		kind GateKind
		in   []bool
		want bool
	}{
		{GateAnd, []bool{true, true}, true},
		{GateAnd, []bool{true, false}, false},
		{GateOr, []bool{false, false}, false},
		{GateOr, []bool{false, true}, true},
		{GateNand, []bool{true, true}, false},
		{GateNor, []bool{false, false}, true},
		{GateXor, []bool{true, false}, true},
		{GateXor, []bool{true, true}, false},
		{GateXor, []bool{true, true, true}, true},
		{GateXnor, []bool{true, false}, false},
		{GateNot, []bool{true}, false},
		{GateBuf, []bool{true}, true},
		{GateAnd, []bool{true, true, true, false}, false},
	}
	for _, c := range cases {
		g := &Gate{Kind: c.kind}
		if got := g.Eval(c.in); got != c.want {
			t.Errorf("%s%v = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestHalfAdderTruthTable(t *testing.T) {
	n := halfAdderNetlist()
	for _, c := range []struct {
		a, b, sum, carry bool
	}{
		{false, false, false, false},
		{false, true, true, false},
		{true, false, true, false},
		{true, true, false, true},
	} {
		v, err := n.Eval(map[string]bool{"A": c.a, "B": c.b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v["S"] != c.sum || v["Cout"] != c.carry {
			t.Errorf("half adder A=%v B=%v: S=%v Cout=%v", c.a, c.b, v["S"], v["Cout"])
		}
	}
}

func TestFullAdderMatchesArithmetic(t *testing.T) {
	n := fullAdderNetlist()
	for m := 0; m < 8; m++ {
		a, b, cin := m&4 != 0, m&2 != 0, m&1 != 0
		v, err := n.Eval(map[string]bool{"A": a, "B": b, "Cin": cin}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, wantCarry := FullAdderOutputs(a, b, cin)
		if v["S"] != wantSum || v["Cout"] != wantCarry {
			t.Errorf("full adder %v %v %v: got S=%v C=%v want S=%v C=%v",
				a, b, cin, v["S"], v["Cout"], wantSum, wantCarry)
		}
	}
}

func TestNetlistTruthTable(t *testing.T) {
	n := NewNetlist().
		AddGate(GateAnd, "G1", "n1", "A", "B").
		AddGate(GateOr, "G2", "F", "n1", "C")
	tt, err := n.TruthTable("F")
	if err != nil {
		t.Fatal(err)
	}
	want := NewTruthTable(MustParse("AB + C"), []string{"A", "B", "C"})
	if !tt.Equal(want) {
		t.Errorf("netlist truth table disagrees with AB + C:\n%s", tt.Format("F"))
	}
}

func TestNetlistDepth(t *testing.T) {
	n := NewNetlist().
		AddGate(GateAnd, "G1", "n1", "A", "B").
		AddGate(GateOr, "G2", "n2", "n1", "C").
		AddGate(GateXor, "G3", "F", "n2", "n1")
	d, err := n.Depth("F")
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	if d, _ := n.Depth("A"); d != 0 {
		t.Errorf("input depth = %d, want 0", d)
	}
}

func TestNetlistCycleDetection(t *testing.T) {
	n := NewNetlist().
		AddGate(GateAnd, "G1", "x", "y", "A").
		AddGate(GateOr, "G2", "y", "x", "B")
	if _, err := n.Eval(map[string]bool{"A": true, "B": true}, nil); err == nil {
		t.Error("combinational cycle not detected by Eval")
	}
	if _, err := n.Depth("x"); err == nil {
		t.Error("combinational cycle not detected by Depth")
	}
}

func TestDFFCounter(t *testing.T) {
	// A 1-bit toggle: q <- q' every clock, built from a NOT gate and a
	// DFF.
	n := NewNetlist().
		AddGate(GateNot, "INV", "d", "q").
		AddDFF("q", "d")
	state := map[string]bool{"q": false}
	seq := []bool{}
	for i := 0; i < 4; i++ {
		next, err := n.Clock(nil, state)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, next["q"])
		state = next
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", seq, want)
		}
	}
}

func TestPrimaryInputs(t *testing.T) {
	n := NewNetlist().
		AddGate(GateAnd, "G1", "n1", "B", "A").
		AddGate(GateOr, "G2", "F", "n1", "C")
	ins := n.PrimaryInputs()
	want := []string{"A", "B", "C"}
	if len(ins) != len(want) {
		t.Fatalf("inputs %v, want %v", ins, want)
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Fatalf("inputs %v, want %v", ins, want)
		}
	}
}

func TestQuickNandNandEquivalence(t *testing.T) {
	// Property: the NAND-NAND construction implements the SOP it was
	// built from, for random minterm sets.
	vars := []string{"A", "B", "C"}
	f := func(raw uint8) bool {
		var minterms []int
		for m := 0; m < 8; m++ {
			if raw&(1<<m) != 0 {
				minterms = append(minterms, m)
			}
		}
		if len(minterms) == 0 || len(minterms) == 8 {
			return true // constant functions are not two-level circuits
		}
		sop := Minimize(vars, minterms, nil)
		if _, isConst := sop.(*Const); isConst {
			return true
		}
		n := nandNandNetlist(sop, vars)
		tt, err := n.TruthTable("F")
		if err != nil {
			return false
		}
		want := NewTruthTable(sop, tt.Vars)
		return tt.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTruthTableFormat(t *testing.T) {
	tt := FromMinterms([]string{"A", "B"}, []int{1, 2})
	s := tt.Format("F")
	if s == "" {
		t.Fatal("empty format")
	}
	if got := tt.Minterms(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("minterms %v", got)
	}
	if got := tt.Maxterms(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("maxterms %v", got)
	}
}
