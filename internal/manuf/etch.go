// Package manuf implements the semiconductor-manufacturing substrate:
// etch-process timing (isotropic/anisotropic, selectivity, over-etch),
// Rayleigh lithography resolution and depth of focus, dopant diffusion
// profiles, and yield models. The Manufacture questions of the benchmark
// are generated from these engines.
package manuf

import "fmt"

// EtchProcess describes an etch step for a target film.
type EtchProcess struct {
	Name string
	// Rate is the vertical etch rate of the target film in nm/min.
	Rate float64
	// Selectivity is target:substrate etch-rate ratio (0 = infinite).
	Selectivity float64
	// Anisotropy in [0,1]: 0 = fully isotropic (lateral rate equals
	// vertical), 1 = fully anisotropic (no lateral etch).
	Anisotropy float64
}

// BOE5to1 is the paper's example wet etch: 5:1 buffered HF etching SiO2
// isotropically at 100 nm/min.
func BOE5to1() EtchProcess {
	return EtchProcess{Name: "5:1 BOE", Rate: 100, Anisotropy: 0}
}

// RIEOxide is the paper's example dry etch: 200 nm/min with 15:1
// SiO2:Si selectivity, fully anisotropic.
func RIEOxide() EtchProcess {
	return EtchProcess{Name: "RIE", Rate: 200, Selectivity: 15, Anisotropy: 1}
}

// TimeToClear returns the minutes to etch through a film of the given
// thickness (nm) with the specified over-etch fraction (0.1 = 10%):
// the paper's worked example ("how long should this wafer be placed in
// 5:1 BOE etchant to record a 10% over-etch?").
func (p EtchProcess) TimeToClear(thicknessNM, overEtch float64) float64 {
	if p.Rate <= 0 {
		return 0
	}
	return thicknessNM * (1 + overEtch) / p.Rate
}

// LateralEtch returns the undercut (nm) accumulated during an etch of
// the given duration: lateral rate = vertical rate * (1 - anisotropy).
func (p EtchProcess) LateralEtch(minutes float64) float64 {
	return p.Rate * (1 - p.Anisotropy) * minutes
}

// SubstrateLoss returns the substrate consumed (nm) during an over-etch
// of the given duration, per the process selectivity.
func (p EtchProcess) SubstrateLoss(overEtchMinutes float64) float64 {
	if p.Selectivity <= 0 {
		return 0 // infinitely selective
	}
	return p.Rate / p.Selectivity * overEtchMinutes
}

// EtchBias returns the CD change of a line after an isotropic component
// undercuts both edges.
func (p EtchProcess) EtchBias(minutes float64) float64 {
	return 2 * p.LateralEtch(minutes)
}

// String renders the process like a recipe line.
func (p EtchProcess) String() string {
	return fmt.Sprintf("%s: %.0f nm/min, selectivity %.0f:1, anisotropy %.1f",
		p.Name, p.Rate, p.Selectivity, p.Anisotropy)
}

// FilmStack is a top-down list of film thicknesses (nm) to etch through.
type FilmStack struct {
	Layers []Film
}

// Film is one layer of a stack.
type Film struct {
	Material    string
	ThicknessNM float64
}

// TotalEtchTime returns the minutes to clear the whole stack given a
// per-material rate table; unknown materials yield an error.
func (s FilmStack) TotalEtchTime(rates map[string]float64) (float64, error) {
	total := 0.0
	for _, f := range s.Layers {
		r, ok := rates[f.Material]
		if !ok || r <= 0 {
			return 0, fmt.Errorf("manuf: no etch rate for %q", f.Material)
		}
		total += f.ThicknessNM / r
	}
	return total, nil
}
