// Finetune: the paper's future-work direction — "ChipVQA-oriented
// dataset collection, VLM training and development, targeting a low-cost
// yet effective open-source foundation model". Generates an extended
// training pool, adapts the weakest LLaVA profile on nested folds, and
// reports the held-out learning curve with bootstrap confidence
// intervals.
package main

import (
	"fmt"
	"log"

	chipvqa "repro"
	"repro/internal/eval"
	"repro/internal/vlm"
)

func main() {
	suite, err := chipvqa.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	m, err := suite.Model("LLaVA-7b")
	if err != nil {
		log.Fatal(err)
	}
	base := m.(*vlm.SimulatedVLM)

	pool, err := suite.Extended("train-pool", 30)
	if err != nil {
		log.Fatal(err)
	}
	test, err := suite.Extended("test-fold", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training pool: %d questions, held-out test: %d questions\n\n",
		pool.Len(), test.Len())

	runner := eval.Runner{}
	fmt.Println("learning curve (LLaVA-7b, simulated domain adaptation):")
	for _, size := range []int{0, 5, 10, 20, 30} {
		curve := vlm.LearningCurve(base, pool, test, []int{size}, vlm.DefaultTraining())
		// Re-evaluate to get the full report for a CI.
		tuned := vlm.FineTune(base, subset(pool, size), vlm.DefaultTraining())
		rep := runner.Evaluate(tuned, test)
		ci := rep.BootstrapCI(1000, 0.95)
		fmt.Printf("  %2d train/category: held-out Pass@1 %s\n", curve[0].TrainPerCategory, ci)
	}

	fmt.Println("\nAdaptation saturates (exposure model 1-exp(-n/20)) and cannot")
	fmt.Println("exceed the backbone's headroom — a low-cost tuned open model")
	fmt.Println("narrows, but does not close, the gap to GPT-4o.")

	gpt4o, err := suite.Evaluate("GPT4o")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference: GPT-4o on the standard collection: %.2f\n", gpt4o.Pass1())
}

// subset takes the first n questions per category from the pool,
// walking categories in canonical order so the subset's question order
// (and therefore every downstream report) is deterministic.
func subset(pool *chipvqa.Benchmark, n int) *chipvqa.Benchmark {
	out := &chipvqa.Benchmark{Name: fmt.Sprintf("train-%d", n)}
	by := pool.ByCategory()
	for _, c := range chipvqa.Categories() {
		qs := by[c]
		k := n
		if k > len(qs) {
			k = len(qs)
		}
		out.Questions = append(out.Questions, qs[:k]...)
	}
	return out
}
