package core

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/arch"
	"repro/internal/dataset"
	"repro/internal/digital"
	"repro/internal/manuf"
	"repro/internal/phys"
)

// BuildExtended generates an extended collection beyond the fixed
// 142-question benchmark — the paper's stated future work
// ("ChipVQA-oriented dataset collection"). Each discipline contributes
// perCategory additional seed-parameterised questions from its template
// library; the seed makes disjoint collections ("fold-a", "fold-b", ...)
// for train/test studies.
func BuildExtended(seed string, perCategory int) (*dataset.Benchmark, error) {
	if perCategory <= 0 {
		return nil, fmt.Errorf("core: perCategory must be positive, got %d", perCategory)
	}
	b := &dataset.Benchmark{Name: fmt.Sprintf("ChipVQA-extended-%s", seed)}
	b.Questions = generateConcurrent([5]func() []*dataset.Question{
		func() []*dataset.Question { return digital.GenerateExtra(seed, perCategory) },
		func() []*dataset.Question { return analog.GenerateExtra(seed, perCategory) },
		func() []*dataset.Question { return arch.GenerateExtra(seed, perCategory) },
		func() []*dataset.Question { return manuf.GenerateExtra(seed, perCategory) },
		func() []*dataset.Question { return phys.GenerateExtra(seed, perCategory) },
	})
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// SplitTrainTest partitions a benchmark into a training and a test split
// by taking every k-th question into the test set (k = 1/testFraction),
// preserving category balance because questions are grouped by category.
func SplitTrainTest(b *dataset.Benchmark, testEvery int) (train, test *dataset.Benchmark) {
	if testEvery < 2 {
		testEvery = 2
	}
	train = &dataset.Benchmark{Name: b.Name + "-train"}
	test = &dataset.Benchmark{Name: b.Name + "-test"}
	for i, q := range b.Questions {
		if i%testEvery == 0 {
			test.Questions = append(test.Questions, q)
		} else {
			train.Questions = append(train.Questions, q)
		}
	}
	return train, test
}
