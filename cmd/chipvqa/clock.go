// clock.go is the CLI's single wall-clock seam. The nodeterm analyzer
// (internal/lint) forbids time.Now everywhere except internal/rng and
// files named clock.go, so the bench command's timestamps route through
// the injectable `now` below: tests pin it to a fixed instant and the
// rest of the binary stays clock-free by construction.
package main

import "time"

// now is the injectable wall clock; only bench snapshots read it.
var now = time.Now

// snapshotDate renders the bench snapshot's date field from the
// injected clock.
func snapshotDate() string {
	return now().UTC().Format("2006-01-02")
}
