package eval

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestSourceSchedulerCoversSourceOnce: the static wrapper hands out each
// source index exactly once, then reports done forever.
func TestSourceSchedulerCoversSourceOnce(t *testing.T) {
	b := testBenchmark(9)
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	s := newSourceScheduler(benchmarkSource{model: m, questions: b.Questions})
	seen := make(map[int]bool)
	for {
		ev, st := s.Next()
		if st == ScheduleDone {
			break
		}
		if st != ScheduleReady {
			t.Fatalf("static scheduler returned state %v", st)
		}
		if seen[ev.Seq] {
			t.Fatalf("seq %d handed out twice", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != b.Len() {
		t.Fatalf("claimed %d events, want %d", len(seen), b.Len())
	}
	if _, st := s.Next(); st != ScheduleDone {
		t.Fatal("drained scheduler not done")
	}
	if s.SizeHint() != b.Len() {
		t.Fatalf("SizeHint %d, want %d", s.SizeHint(), b.Len())
	}
}

// chainScheduler issues questions strictly one at a time: the next item
// is only released inside Record. With more workers than ready items
// this forces the ScheduleWait/park/wake path that static sources never
// exercise.
type chainScheduler struct {
	mu          sync.Mutex
	model       Model
	questions   []*dataset.Question
	issued      int
	outstanding bool
	recorded    []int // Seq values in Record order
}

func (c *chainScheduler) Next() (Event, ScheduleState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.issued >= len(c.questions) && !c.outstanding {
		return Event{}, ScheduleDone
	}
	if c.outstanding || c.issued >= len(c.questions) {
		return Event{}, ScheduleWait
	}
	ev := Event{Seq: c.issued, Model: c.model, Question: c.questions[c.issued]}
	c.issued++
	c.outstanding = true
	return ev, ScheduleReady
}

func (c *chainScheduler) Record(ev *Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outstanding = false
	c.recorded = append(c.recorded, ev.Seq)
}

// TestDynamicSchedulerSequentialChain drives the dynamic seam with a
// one-at-a-time chain under a large worker pool: every question must be
// delivered, Record must run strictly in Seq order, and idle workers
// must park on the gate and wake instead of spinning or deadlocking.
func TestDynamicSchedulerSequentialChain(t *testing.T) {
	b := testBenchmark(25)
	m := fixedModel{"m", func(q *dataset.Question) string {
		if q.ID[len(q.ID)-1]%2 == 0 {
			return "c"
		}
		return "a"
	}}
	for _, workers := range []int{1, 8} {
		sched := &chainScheduler{model: m, questions: b.Questions}
		rep := &Report{ModelName: m.Name()}
		p := &Pipeline{
			Scheduler: sched,
			Infer:     modelInference{},
			Judge:     judgeStage{judge: Judge{}},
			Sink:      &reportSink{nq: b.Len(), reports: []*Report{rep}},
			Workers:   workers,
		}
		if err := p.Run(context.Background()); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.Results) != b.Len() {
			t.Fatalf("workers=%d: delivered %d results, want %d", workers, len(rep.Results), b.Len())
		}
		if len(sched.recorded) != b.Len() {
			t.Fatalf("workers=%d: recorded %d outcomes, want %d", workers, len(sched.recorded), b.Len())
		}
		for i, seq := range sched.recorded {
			if seq != i {
				t.Fatalf("workers=%d: Record order %v not strictly Seq order", workers, sched.recorded)
			}
		}
		for i, res := range rep.Results {
			if res.QuestionID != b.Questions[i].ID {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, res.QuestionID, b.Questions[i].ID)
			}
		}
	}
}

// TestSchedulerWinsOverSource: when both seams are set, the dynamic
// scheduler drives the run and the static source is ignored.
func TestSchedulerWinsOverSource(t *testing.T) {
	b := testBenchmark(10)
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	sched := &chainScheduler{model: m, questions: b.Questions[:3]}
	rep := &Report{ModelName: m.Name()}
	p := &Pipeline{
		Scheduler: sched,
		Source:    benchmarkSource{model: m, questions: b.Questions},
		Infer:     modelInference{},
		Judge:     judgeStage{judge: Judge{}},
		Sink:      &reportSink{nq: b.Len(), reports: []*Report{rep}},
		Workers:   4,
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("delivered %d results, want the scheduler's 3 (source must be ignored)", len(rep.Results))
	}
}

// TestSchedGate: a pulse with no one armed is a no-op; an armed waiter
// is released by the next pulse; arming twice reuses the same channel
// until a pulse consumes it.
func TestSchedGate(t *testing.T) {
	g := newSchedGate()
	g.pulse() // nothing armed: must not panic or leak
	ch1 := g.arm()
	ch2 := g.arm()
	if ch1 != ch2 {
		t.Fatal("two arms before a pulse returned different channels")
	}
	select {
	case <-ch1:
		t.Fatal("gate released before pulse")
	default:
	}
	g.pulse()
	select {
	case <-ch1:
	default:
		t.Fatal("pulse did not release the armed channel")
	}
	// A fresh arm after the pulse gets a new, unreleased channel.
	ch3 := g.arm()
	select {
	case <-ch3:
		t.Fatal("stale release leaked into the new arm cycle")
	default:
	}
	g.pulse()
	<-ch3
}

// TestEvaluateAdaptiveValidation covers the entry-point error paths.
func TestEvaluateAdaptiveValidation(t *testing.T) {
	m := fixedModel{"m", func(*dataset.Question) string { return "c" }}
	if _, err := (Runner{}).EvaluateAdaptiveContext(context.Background(), []Model{m}, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := (Runner{}).EvaluateAdaptiveContext(context.Background(), []Model{m, m}, &chainScheduler{}); err == nil {
		t.Error("duplicate model accepted")
	}
	reports, err := (Runner{}).EvaluateAdaptiveContext(context.Background(), nil, &chainScheduler{})
	if err != nil || len(reports) != 0 {
		t.Errorf("empty model list: reports %v err %v", reports, err)
	}
}
