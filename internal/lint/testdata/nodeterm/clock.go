// clock.go is the blessed injectable wall-clock seam: nodeterm skips
// files with this name, so the one `var now = time.Now` assignment that
// tests can override lives here without a suppression comment.
package nodetermtest

import "time"

var now = time.Now

func stamped() string {
	return now().UTC().Format(time.RFC3339)
}
