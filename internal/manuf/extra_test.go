package manuf

import (
	"testing"

	"repro/internal/dataset"
)

func TestGenerateExtraSmoke(t *testing.T) {
	qs := GenerateExtra("unit", 12)
	if len(qs) != 12 {
		t.Fatalf("got %d", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
		if q.Category != dataset.Manufacture {
			t.Errorf("%s: wrong category", q.ID)
		}
	}
	// Determinism.
	qs2 := GenerateExtra("unit", 12)
	for i := range qs {
		if qs[i].Prompt != qs2[i].Prompt || qs[i].Golden.Number != qs2[i].Golden.Number {
			t.Fatalf("extra %d differs between runs", i)
		}
	}
}

func TestMiscHelpers(t *testing.T) {
	if (DiffusionStep{D: 1e-13, TimeS: 3600}).DiffusionLength() <= 0 {
		t.Error("diffusion length")
	}
	if IonImplantPeakDepth(100, 1.2) != 120 {
		t.Error("implant depth")
	}
	if BOE5to1().String() == "" || EUV().String() == "" {
		t.Error("empty descriptions")
	}
	if EUV().WavelengthNM != 13.5 {
		t.Error("EUV wavelength")
	}
	// Zero-Dt profile edge cases.
	s := DiffusionStep{}
	if s.ConstantSourceProfile(10, 0) != 10 || s.ConstantSourceProfile(10, 1) != 0 {
		t.Error("zero-Dt constant source profile")
	}
	if s.LimitedSourceProfile(10, 0) != 0 {
		t.Error("zero-Dt limited source profile")
	}
}
