package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
)

// These tests exercise the binary codec against real builds. They live
// here rather than in internal/dataset because this test binary links
// the five discipline packages (dataset's own test binary deliberately
// keeps the registry free for fakes).

func packBytes(t *testing.T, b *dataset.Benchmark) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WritePack(&buf, b); err != nil {
		t.Fatalf("WritePack: %v", err)
	}
	return buf.Bytes()
}

// TestPackRoundTripByteIdentical is the codec's core contract over a
// real extended fold: packing the loaded fold reproduces the original
// pack byte for byte, and the loaded fold is JSON-identical to the
// in-memory build (covering every serialised field plus nil-vs-empty
// normalisation).
func TestPackRoundTripByteIdentical(t *testing.T) {
	built, err := BuildExtended("codec", 50)
	if err != nil {
		t.Fatalf("BuildExtended: %v", err)
	}
	first := packBytes(t, built)
	loaded, err := dataset.ReadPack(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("ReadPack: %v", err)
	}
	if loaded.Name != built.Name {
		t.Errorf("name = %q, want %q", loaded.Name, built.Name)
	}
	if second := packBytes(t, loaded); !bytes.Equal(first, second) {
		t.Error("pack(load(pack(b))) differs from pack(b)")
	}
	if !bytes.Equal(benchmarkJSON(t, built), benchmarkJSON(t, loaded)) {
		t.Error("loaded fold not JSON-identical to in-memory build")
	}
}

// TestPackRoundTripStandardBenchmark covers the fixed 142-question
// collection — every discipline's hand-built question shapes.
func TestPackRoundTripStandardBenchmark(t *testing.T) {
	built, err := BuildBenchmark()
	if err != nil {
		t.Fatalf("BuildBenchmark: %v", err)
	}
	loaded, err := dataset.ReadPack(bytes.NewReader(packBytes(t, built)))
	if err != nil {
		t.Fatalf("ReadPack: %v", err)
	}
	if !bytes.Equal(benchmarkJSON(t, built), benchmarkJSON(t, loaded)) {
		t.Error("loaded benchmark not JSON-identical to built benchmark")
	}
}

// TestPackSmallerThanJSON pins the "compact" claim: well under half the
// JSON size on a realistic fold.
func TestPackSmallerThanJSON(t *testing.T) {
	b, err := BuildExtended("size", 100)
	if err != nil {
		t.Fatalf("BuildExtended: %v", err)
	}
	packed, js := len(packBytes(t, b)), len(benchmarkJSON(t, b))
	if packed*2 >= js {
		t.Errorf("pack %d bytes vs JSON %d bytes; want < 50%%", packed, js)
	}
}

// TestStreamPackMatchesStreamExtended closes the loop between the two
// shard producers: shards read back from a pack stream must match
// shards generated directly, in geometry and content.
func TestStreamPackMatchesStreamExtended(t *testing.T) {
	const perCategory, shardSize = 30, 11
	var buf bytes.Buffer
	pw := dataset.NewPackWriter(&buf, "ChipVQA-extended-sp")
	if err := StreamExtended("sp", perCategory, shardSize, pw.WriteShard); err != nil {
		t.Fatalf("StreamExtended: %v", err)
	}
	if err := pw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	type flat struct {
		index, start int
		ids          []string
	}
	var direct, packed []flat
	collect := func(dst *[]flat) func(dataset.Shard) error {
		return func(s dataset.Shard) error {
			f := flat{index: s.Index, start: s.Start}
			for _, q := range s.Questions {
				f.ids = append(f.ids, q.ID)
			}
			*dst = append(*dst, f)
			return nil
		}
	}
	if err := StreamExtended("sp", perCategory, shardSize, collect(&direct)); err != nil {
		t.Fatalf("StreamExtended pass 2: %v", err)
	}
	if err := dataset.StreamPack(bytes.NewReader(buf.Bytes()), shardSize, collect(&packed)); err != nil {
		t.Fatalf("StreamPack: %v", err)
	}
	if len(direct) != len(packed) {
		t.Fatalf("%d direct shards vs %d packed shards", len(direct), len(packed))
	}
	for i := range direct {
		if direct[i].index != packed[i].index || direct[i].start != packed[i].start {
			t.Errorf("shard %d geometry mismatch: (%d,%d) vs (%d,%d)", i,
				direct[i].index, direct[i].start, packed[i].index, packed[i].start)
		}
		if fmt.Sprint(direct[i].ids) != fmt.Sprint(packed[i].ids) {
			t.Errorf("shard %d content mismatch", i)
		}
	}
}

// TestPackColdLoadFasterThanRegeneration pins the perf motivation of
// the codec: at 10k-question scale, loading a packed fold must beat
// regenerating it by a wide margin. Generation is the serial streaming
// build — the apples-to-apples single-goroutine comparison. The
// measured ratio on the reference host is 10-12x (the snapshot's
// pack_load_10k_speedup field records it); the test gates at 7x so a
// noisy shared-CI scheduler cannot flake a genuinely order-of-magnitude
// win, while a real codec regression (ratio collapse) still fails.
func TestPackColdLoadFasterThanRegeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	const perCategory = 2000 // 10k questions
	const trials = 3         // min-of-N on both sides filters scheduler/GC noise
	var packed []byte
	genNS := int64(1 << 62)
	for i := 0; i < trials; i++ {
		var buf bytes.Buffer
		pw := dataset.NewPackWriter(&buf, "ChipVQA-extended-cold")
		start := time.Now()
		if err := StreamExtended("cold", perCategory, 512, pw.WriteShard); err != nil {
			t.Fatalf("StreamExtended: %v", err)
		}
		genNS = min(genNS, time.Since(start).Nanoseconds())
		if err := pw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		packed = buf.Bytes()
	}
	loadNS := int64(1 << 62)
	for i := 0; i < trials; i++ {
		start := time.Now()
		loaded, err := dataset.ReadPackBytes(packed)
		if err != nil {
			t.Fatalf("ReadPackBytes: %v", err)
		}
		loadNS = min(loadNS, time.Since(start).Nanoseconds())
		if loaded.Len() != 5*perCategory {
			t.Fatalf("loaded %d questions, want %d", loaded.Len(), 5*perCategory)
		}
	}
	if loadNS*7 > genNS {
		t.Errorf("cold load %dns vs regeneration %dns: want >= 7x speedup", loadNS, genNS)
	}
	t.Logf("pack size %d bytes; load %.1fms vs regen %.1fms (%.1fx)",
		len(packed), float64(loadNS)/1e6, float64(genNS)/1e6, float64(genNS)/float64(loadNS))
}
